//! End-to-end bitwise equivalence of the overlapped offload runtime.
//!
//! The async copy stream must be a pure latency optimisation: with the
//! host pool sharing chunk storage (`Arc<Tensor>`) and all residency
//! bookkeeping done synchronously on the rank thread, enabling prefetch
//! can reorder *when* the simulated transfers run but never what any
//! kernel reads. This suite proves it end to end: a 2-layer / 4-chunk
//! distributed model produces bitwise identical losses and gradients with
//! prefetch on, prefetch off, and prefetch on under different kernel-pool
//! thread budgets — and a full training run reports identical host-pool
//! traffic either way.

use fpdt_comm::run_group;
use fpdt_core::chunk::ChunkPlan;
use fpdt_core::runtime::data::Corpus;
use fpdt_core::runtime::dist::{train, Mode, TrainConfig};
use fpdt_core::runtime::exec::DistAttention;
use fpdt_core::runtime::options::RuntimeOptions;
use fpdt_core::runtime::gpt::GptModel;
use fpdt_model::config::ModelConfig;
use fpdt_tensor::par;
use rayon::pool;
use std::sync::{Mutex, MutexGuard};

static CONFIG_LOCK: Mutex<()> = Mutex::new(());

struct ForcedParallel<'a> {
    _guard: MutexGuard<'a, ()>,
    prev_threshold: usize,
    prev_threads: usize,
}

impl ForcedParallel<'_> {
    fn new(threads: usize) -> Self {
        let guard = CONFIG_LOCK.lock().unwrap();
        ForcedParallel {
            _guard: guard,
            prev_threshold: par::set_par_threshold(1),
            prev_threads: pool::set_threads(threads),
        }
    }
}

impl Drop for ForcedParallel<'_> {
    fn drop(&mut self) {
        pool::set_threads(self.prev_threads);
        par::set_par_threshold(self.prev_threshold);
    }
}

/// One full forward/backward of the distributed model with explicit
/// [`RuntimeOptions`]; returns every rank's (loss_sum, flat gradient
/// vector).
/// Same fixture as `thread_determinism.rs::grad_run`, 4 chunks.
fn grad_run(seed: u64, world: usize, prefetch: bool) -> Vec<(f32, Vec<f32>)> {
    let model_cfg = ModelConfig::tiny(2, 32, 4, 50);
    let seq = 64usize;
    let chunks = 4usize;
    run_group(world, |comm| {
        let plan = ChunkPlan::new(seq, world, chunks).expect("valid plan");
        let rank = comm.rank();
        let mut corpus = Corpus::new(model_cfg.vocab, 0.05, seed ^ 0x5eed);
        let (gx, gy) = corpus.sample(seq);
        let (tokens, targets, pos) = (
            plan.shard(rank, &gx),
            plan.shard(rank, &gy),
            plan.local_positions(rank),
        );
        let mut model = GptModel::new(&model_cfg, seed);
        let opts = RuntimeOptions::from_env()
            .with_offload(true)
            .with_prefetch(prefetch);
        let mut exec = DistAttention::with_opts(std::sync::Arc::new(comm), plan, opts);
        model.zero_grad();
        let stats = model
            .forward_backward(&mut exec, &tokens, &targets, &pos, 2 * chunks, 2)
            .expect("forward/backward succeeds");
        (stats.loss_sum, model.collect_grads())
    })
}

fn assert_bitwise_equal(a: &[(f32, Vec<f32>)], b: &[(f32, Vec<f32>)], what: &str) {
    for (rank, ((la, ga), (lb, gb))) in a.iter().zip(b).enumerate() {
        assert!(
            la.to_bits() == lb.to_bits(),
            "rank {rank} loss differs ({what}): {la} vs {lb}"
        );
        let ga_bits: Vec<u32> = ga.iter().map(|x| x.to_bits()).collect();
        let gb_bits: Vec<u32> = gb.iter().map(|x| x.to_bits()).collect();
        assert_eq!(ga_bits, gb_bits, "rank {rank} gradient bits differ ({what})");
    }
}

#[test]
fn prefetch_on_off_and_thread_budgets_are_bitwise_identical() {
    let reference = {
        let _cfg = ForcedParallel::new(1);
        grad_run(42, 2, false)
    };
    assert!(
        reference.iter().any(|(_, g)| g.iter().any(|&x| x != 0.0)),
        "all-zero gradients would make the comparison vacuous"
    );
    // Prefetch off at 8 threads, prefetch on at 1/2/8: all must match the
    // serial no-prefetch run bit for bit.
    let off_8 = {
        let _cfg = ForcedParallel::new(8);
        grad_run(42, 2, false)
    };
    assert_bitwise_equal(&reference, &off_8, "prefetch off, 8 threads");
    for threads in [1usize, 2, 8] {
        let on = {
            let _cfg = ForcedParallel::new(threads);
            grad_run(42, 2, true)
        };
        assert_bitwise_equal(&reference, &on, &format!("prefetch on, {threads} threads"));
    }
}

#[test]
fn training_reports_identical_losses_and_pool_traffic_either_way() {
    // Whole training loop (optimizer steps included) through the public
    // `train` entry point: the prefetch knob must change neither the loss
    // trajectory nor a single pool counter.
    let base = TrainConfig {
        model: ModelConfig::tiny(2, 32, 4, 50),
        world: 2,
        seq: 64,
        steps: 3,
        mode: Mode::Fpdt {
            chunks: 4,
            offload: true,
        },
        ..TrainConfig::default()
    };
    let (on, off) = {
        let _cfg = ForcedParallel::new(4);
        let on = train(&TrainConfig {
            runtime: base.runtime.with_prefetch(true),
            ..base.clone()
        });
        let off = train(&TrainConfig {
            runtime: base.runtime.with_prefetch(false),
            ..base.clone()
        });
        (on, off)
    };
    let on_bits: Vec<u32> = on.losses.iter().map(|x| x.to_bits()).collect();
    let off_bits: Vec<u32> = off.losses.iter().map(|x| x.to_bits()).collect();
    assert_eq!(on_bits, off_bits, "loss trajectories differ");
    assert_eq!(on.host, off.host, "host-pool statistics differ");
    assert!(on.host.fetches > 0, "offload mode must actually fetch");
    assert!(on.host.bytes_fetched > 0, "fetch byte counter must move");
    assert!(on.host.bytes_offloaded > 0, "offload byte counter must move");
}
