//! Bitwise-identical resume, elastic resharding, and fault recovery.
//!
//! The elastic fault-tolerance contract, end to end:
//!
//! * interrupting a run at any optimizer-window boundary — through an
//!   in-memory segment split or a full `checkpoint` + `Trainer::resume`
//!   round trip through disk shards — continues **bitwise identically**:
//!   same loss bits, same gradient bits, same communication and host-pool
//!   counters as the uninterrupted run, across kernel-thread budgets and
//!   the bf16/balanced runtime knobs;
//! * resizing the thread-device world re-shards flat state exactly;
//! * injected transient collective faults are replayed invisibly inside
//!   the retry budget, and roll the session back to the last step
//!   boundary when the budget is exhausted;
//! * corrupted, truncated, or missing shards surface as typed
//!   [`CkptError`]s, never as panics or silently wrong state.

use fpdt_core::runtime::ckpt::CkptError;
use fpdt_core::runtime::dist::{Mode, TrainConfig, TrainError, TrainReport, Trainer};
use fpdt_core::runtime::options::RuntimeOptions;
use fpdt_tensor::par;
use rayon::pool;
use std::path::PathBuf;
use std::sync::{Mutex, MutexGuard};

static CONFIG_LOCK: Mutex<()> = Mutex::new(());

struct ForcedParallel<'a> {
    _guard: MutexGuard<'a, ()>,
    prev_threshold: usize,
    prev_threads: usize,
}

impl ForcedParallel<'_> {
    fn new(threads: usize) -> Self {
        let guard = CONFIG_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        ForcedParallel {
            _guard: guard,
            prev_threshold: par::set_par_threshold(1),
            prev_threads: pool::set_threads(threads),
        }
    }
}

impl Drop for ForcedParallel<'_> {
    fn drop(&mut self) {
        pool::set_threads(self.prev_threads);
        par::set_par_threshold(self.prev_threshold);
    }
}

fn base_cfg(runtime: RuntimeOptions) -> TrainConfig {
    TrainConfig {
        steps: 6,
        mode: Mode::Fpdt {
            chunks: 4,
            offload: true,
        },
        // pin the recovery knobs so the ambient FPDT_FAULT_INJECT /
        // FPDT_COMM_RETRIES CI leg cannot skew baselines; tests that
        // exercise recovery re-enable them explicitly
        runtime: runtime.with_fault_inject(0).with_comm_retries(0),
        ..TrainConfig::small(Mode::Single)
    }
}

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("fpdt-resume-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn uninterrupted(cfg: &TrainConfig) -> TrainReport {
    let mut t = Trainer::new(cfg.clone());
    t.run_steps(cfg.steps).expect("clean run");
    t.report()
}

/// Train `k` steps, checkpoint to disk, drop the trainer, resume from the
/// shards, finish — the full persistence round trip.
fn resumed(cfg: &TrainConfig, k: usize, tag: &str) -> TrainReport {
    let dir = fresh_dir(tag);
    {
        let mut t = Trainer::new(cfg.clone());
        t.run_steps(k).expect("first segment");
        t.checkpoint(&dir).expect("checkpoint");
    }
    let mut t = Trainer::resume(&dir).expect("resume");
    assert_eq!(t.step(), k, "resume continues at the saved step");
    // runtime knobs are policy, not state: reapply the run's exact knobs
    // so ambient FPDT_* CI legs cannot skew the comparison
    t.set_runtime(cfg.runtime);
    t.run_steps(cfg.steps - k).expect("second segment");
    let report = t.report();
    let _ = std::fs::remove_dir_all(&dir);
    report
}

fn assert_reports_bitwise_equal(a: &TrainReport, b: &TrainReport, what: &str) {
    let (la, lb): (Vec<u32>, Vec<u32>) = (
        a.losses.iter().map(|x| x.to_bits()).collect(),
        b.losses.iter().map(|x| x.to_bits()).collect(),
    );
    assert_eq!(la, lb, "loss bits differ ({what})");
    assert!(!a.grads.is_empty(), "gradients must be captured ({what})");
    let (ga, gb): (Vec<u32>, Vec<u32>) = (
        a.grads.iter().map(|x| x.to_bits()).collect(),
        b.grads.iter().map(|x| x.to_bits()).collect(),
    );
    assert_eq!(ga, gb, "gradient bits differ ({what})");
    assert_eq!(a.comm, b.comm, "comm traffic differs ({what})");
    assert_eq!(a.host, b.host, "host-pool counters differ ({what})");
    assert_eq!(a.opt_state_bytes, b.opt_state_bytes, "opt state ({what})");
}

#[test]
fn resume_is_bitwise_identical_across_thread_budgets() {
    let rt = RuntimeOptions::from_env().with_payload_bf16(false);
    let cfg = base_cfg(rt);
    let reference = {
        let _cfg = ForcedParallel::new(1);
        uninterrupted(&cfg)
    };
    assert!(
        reference.losses.last().unwrap() < &reference.losses[0],
        "run must actually learn: {:?}",
        reference.losses
    );
    assert!(reference.host.fetches > 0, "offload mode must fetch");
    for threads in [1usize, 2, 8] {
        let run = {
            let _cfg = ForcedParallel::new(threads);
            resumed(&cfg, 3, &format!("threads{threads}"))
        };
        assert_reports_bitwise_equal(&reference, &run, &format!("{threads} threads"));
    }
}

#[test]
fn resume_is_bitwise_identical_under_bf16_and_balance_knobs() {
    let _cfg = ForcedParallel::new(4);
    for payload_bf16 in [false, true] {
        for balanced in [false, true] {
            let rt = RuntimeOptions::from_env()
                .with_payload_bf16(payload_bf16)
                .with_balanced(balanced);
            let cfg = base_cfg(rt);
            let whole = uninterrupted(&cfg);
            let split = resumed(&cfg, 2, &format!("bf{payload_bf16}-bal{balanced}"));
            assert_reports_bitwise_equal(
                &whole,
                &split,
                &format!("bf16={payload_bf16} balanced={balanced}"),
            );
        }
    }
}

#[test]
fn resume_reassembles_zero1_moment_shards_exactly() {
    let _cfg = ForcedParallel::new(4);
    let cfg = TrainConfig {
        world: 4,
        zero_shard: true,
        ..base_cfg(RuntimeOptions::from_env().with_payload_bf16(false))
    };
    let whole = uninterrupted(&cfg);
    let split = resumed(&cfg, 3, "zero1");
    assert_reports_bitwise_equal(&whole, &split, "ZeRO-1 sharded moments");
}

#[test]
fn elastic_resize_matches_final_geometry_and_commutes_with_checkpoint() {
    let _cfg = ForcedParallel::new(4);
    let rt = RuntimeOptions::from_env().with_payload_bf16(false);
    let cfg = TrainConfig {
        world: 4,
        ..base_cfg(rt)
    };

    // Train 3 steps at world=4, shrink to world=2, finish.
    let mut elastic = Trainer::new(cfg.clone());
    elastic.run_steps(3).expect("pre-resize segment");
    let dir = fresh_dir("elastic");
    elastic.checkpoint(&dir).expect("checkpoint at resize point");
    elastic.resize(2);
    elastic.run_steps(3).expect("post-resize segment");
    let elastic = elastic.report();

    // The equivalence claim: after the resize point the trajectory matches
    // a fresh run at the final geometry (world is a pure system knob).
    let fresh = uninterrupted(&TrainConfig {
        world: 2,
        ..cfg.clone()
    });
    for (i, (a, b)) in elastic.losses.iter().zip(&fresh.losses).enumerate() {
        assert!(
            (a - b).abs() <= 2e-3 * (1.0 + a.abs().max(b.abs())),
            "step {i}: {a} vs {b}"
        );
    }

    // And checkpoint/resume commutes with resize: resuming the world=4
    // shards, resizing, and finishing is bitwise the in-memory run.
    let mut through_disk = Trainer::resume(&dir).expect("resume world=4 shards");
    through_disk.set_runtime(rt);
    through_disk.resize(2);
    through_disk.run_steps(3).expect("post-resize segment");
    let through_disk = through_disk.report();
    let _ = std::fs::remove_dir_all(&dir);
    assert_reports_bitwise_equal(&elastic, &through_disk, "resize through disk");
}

#[test]
fn injected_faults_inside_retry_budget_are_invisible() {
    let _cfg = ForcedParallel::new(4);
    let clean = uninterrupted(&base_cfg(
        RuntimeOptions::from_env().with_payload_bf16(false),
    ));
    let faulted_rt = RuntimeOptions::from_env()
        .with_payload_bf16(false)
        .with_fault_inject(2)
        .with_comm_retries(4);
    let faulted = uninterrupted(&TrainConfig {
        runtime: faulted_rt,
        ..base_cfg(faulted_rt)
    });
    // a faulted attempt moves zero bytes, a replay moves the full payload
    // once — so the deterministic traffic counters stay equal
    assert_reports_bitwise_equal(&clean, &faulted, "faults within budget");
    assert_eq!(faulted.comm.faults, 2, "both armed faults fired");
    assert_eq!(faulted.comm.retries, 2, "each fault cost one replay");
    assert_eq!(clean.comm.faults, 0);
}

#[test]
fn exhausted_retry_budget_rolls_back_to_the_step_boundary() {
    let _cfg = ForcedParallel::new(4);
    let rt = RuntimeOptions::from_env().with_payload_bf16(false);
    let clean = uninterrupted(&base_cfg(rt));

    let base = base_cfg(rt);
    let mut t = Trainer::new(TrainConfig {
        runtime: base.runtime.with_fault_inject(1),
        ..base
    });
    let err = t.run_steps(6).expect_err("no retry budget: the step fails");
    assert!(
        matches!(err, TrainError::Comm(ref e) if e.is_retryable()),
        "a transient fault surfaced: {err}"
    );
    assert_eq!(t.step(), 0, "rolled back to the last step boundary");
    assert!(t.report().losses.is_empty());

    // The session is not poisoned: disarm injection and run to the end —
    // the trajectory is bitwise the clean run's.
    t.set_runtime(rt);
    t.run_steps(6).expect("recovered run");
    let recovered = t.report();
    let (a, b): (Vec<u32>, Vec<u32>) = (
        clean.losses.iter().map(|x| x.to_bits()).collect(),
        recovered.losses.iter().map(|x| x.to_bits()).collect(),
    );
    assert_eq!(a, b, "post-rollback trajectory matches the clean run");
}

#[test]
fn corrupted_and_missing_shards_surface_typed_errors() {
    let _cfg = ForcedParallel::new(2);
    let cfg = base_cfg(RuntimeOptions::from_env().with_payload_bf16(false));
    let dir = fresh_dir("corrupt");
    let mut t = Trainer::new(cfg);
    t.run_steps(2).expect("segment");
    t.checkpoint(&dir).expect("checkpoint");
    let shards = fpdt_core::runtime::ckpt::shard_paths(&dir).expect("valid set");
    assert_eq!(shards.len(), 2);

    // truncated shard → Corrupt
    let bytes = std::fs::read(&shards[0]).unwrap();
    std::fs::write(&shards[0], &bytes[..bytes.len() / 3]).unwrap();
    assert!(matches!(
        Trainer::resume(&dir).unwrap_err(),
        CkptError::Corrupt(_)
    ));

    // foreign magic → Version
    let mut wrong = bytes.clone();
    wrong[..8].copy_from_slice(b"NOTFPDT!");
    std::fs::write(&shards[0], &wrong).unwrap();
    assert!(matches!(
        Trainer::resume(&dir).unwrap_err(),
        CkptError::Version(_)
    ));

    // restore rank 0, delete rank 1 → Missing
    std::fs::write(&shards[0], &bytes).unwrap();
    std::fs::remove_file(&shards[1]).unwrap();
    assert!(matches!(
        Trainer::resume(&dir).unwrap_err(),
        CkptError::Missing(_)
    ));

    // empty directory → Missing
    std::fs::remove_file(&shards[0]).unwrap();
    assert!(matches!(
        Trainer::resume(&dir).unwrap_err(),
        CkptError::Missing(_)
    ));
    let _ = std::fs::remove_dir_all(&dir);
}
