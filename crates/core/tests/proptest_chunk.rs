//! Property-based tests of the rank-ordinal chunk plan (paper Figure 6):
//! for arbitrary (world, chunks, segment) geometry the shuffle must
//! partition the sequence, gathered chunks must be contiguous and
//! ascending, and shard/unshard must be inverse bijections.

use fpdt_core::chunk::ChunkPlan;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn shuffle_is_a_permutation(
        world in 1usize..7,
        chunks in 1usize..7,
        seg in 1usize..5,
    ) {
        let s = world * chunks * seg;
        let plan = ChunkPlan::new(s, world, chunks).unwrap();
        let mut seen = vec![false; s];
        for r in 0..world {
            for pos in plan.local_positions(r) {
                prop_assert!(!seen[pos], "position {pos} assigned twice");
                seen[pos] = true;
            }
        }
        prop_assert!(seen.into_iter().all(|b| b));
    }

    #[test]
    fn gathered_chunks_partition_into_contiguous_ranges(
        world in 1usize..7,
        chunks in 1usize..7,
        seg in 1usize..5,
    ) {
        let s = world * chunks * seg;
        let plan = ChunkPlan::new(s, world, chunks).unwrap();
        let mut expected_start = 0;
        for c in 0..chunks {
            let pos = plan.gathered_positions(c);
            prop_assert_eq!(pos[0], expected_start);
            prop_assert!(pos.windows(2).all(|w| w[1] == w[0] + 1), "contiguous");
            expected_start = pos.last().unwrap() + 1;
        }
        prop_assert_eq!(expected_start, s);
    }

    #[test]
    fn rank_concat_invariant(
        world in 1usize..6,
        chunks in 1usize..6,
        seg in 1usize..4,
    ) {
        // Concatenating per-rank chunk-c slices in rank order must equal
        // the gathered chunk — the exact thing the all-to-all produces.
        let s = world * chunks * seg;
        let plan = ChunkPlan::new(s, world, chunks).unwrap();
        for c in 0..chunks {
            let mut stitched = Vec::new();
            for r in 0..world {
                let local = plan.local_positions(r);
                stitched.extend_from_slice(&local[plan.local_chunk_range(c)]);
            }
            prop_assert_eq!(stitched, plan.gathered_positions(c));
        }
    }

    #[test]
    fn shard_unshard_identity(
        world in 1usize..6,
        chunks in 1usize..6,
        seg in 1usize..4,
        seed in 0u64..1000,
    ) {
        let s = world * chunks * seg;
        let plan = ChunkPlan::new(s, world, chunks).unwrap();
        let data: Vec<u64> = (0..s as u64).map(|i| i.wrapping_mul(seed | 1)).collect();
        let locals: Vec<Vec<u64>> = (0..world).map(|r| plan.shard(r, &data)).collect();
        prop_assert_eq!(plan.unshard(&locals), data);
    }

    #[test]
    fn causal_monotonicity_across_chunks(
        world in 1usize..6,
        chunks in 2usize..6,
        seg in 1usize..4,
    ) {
        // Every position in gathered chunk j must precede every position
        // in gathered chunk i for j < i — the invariant that keeps the
        // diagonal causal mask valid (paper Figure 6).
        let s = world * chunks * seg;
        let plan = ChunkPlan::new(s, world, chunks).unwrap();
        for j in 0..chunks - 1 {
            let max_j = *plan.gathered_positions(j).iter().max().unwrap();
            let min_next = *plan.gathered_positions(j + 1).iter().min().unwrap();
            prop_assert!(max_j < min_next);
        }
    }

    #[test]
    fn invalid_geometry_rejected(
        s in 1usize..100,
        world in 1usize..8,
        chunks in 1usize..8,
    ) {
        let plan = ChunkPlan::new(s, world, chunks);
        prop_assert_eq!(plan.is_ok(), s % (world * chunks) == 0);
    }
}
