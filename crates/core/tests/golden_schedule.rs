//! Golden-schedule regression tests for the FPDT pipeline simulator.
//!
//! A small fixed (model, cluster, sequence) is simulated at every corner
//! of the `PipelineOpts` ablation grid — offload x double_buffer x
//! copy_streams {0,1,2} x both backward nest orders — and the full event
//! log (task order, stream assignment, start/finish to 1e-9 s) is
//! digested and compared against `tests/golden/schedules.txt`.
//!
//! Any change to task emission order, dependency structure, stream
//! routing, the cost model, or the processor-sharing engine shows up as a
//! digest mismatch. To bless an intentional change:
//!
//! ```text
//! GOLDEN_REGEN=1 cargo test -p fpdt-core --test golden_schedule
//! ```
//!
//! and commit the rewritten golden file with a note on what moved.

use fpdt_core::pipeline::{simulate_block, NestOrder, PipelineOpts, PipelineReport};
use fpdt_model::config::ModelConfig;
use fpdt_sim::hw::ClusterSpec;
use std::fmt::Write as _;
use std::path::PathBuf;

const CHUNKS: usize = 3;
const SEQ: u64 = 12 * 1024;

fn fixture() -> (ModelConfig, ClusterSpec) {
    (ModelConfig::tiny(2, 64, 4, 64), ClusterSpec::a100_80g(1, 2))
}

fn corners() -> Vec<(String, PipelineOpts)> {
    let mut out = Vec::new();
    for offload in [false, true] {
        for double_buffer in [false, true] {
            for copy_streams in [0u8, 1, 2] {
                for nest in [NestOrder::KvOuter, NestOrder::QOuter] {
                    let key = format!(
                        "off{}_db{}_cs{}_{}",
                        offload as u8,
                        double_buffer as u8,
                        copy_streams,
                        match nest {
                            NestOrder::KvOuter => "kv",
                            NestOrder::QOuter => "q",
                        }
                    );
                    out.push((
                        key,
                        PipelineOpts {
                            chunks: CHUNKS,
                            offload,
                            double_buffer,
                            copy_streams,
                            nest,
                        },
                    ));
                }
            }
        }
    }
    out
}

fn run_corner(opts: PipelineOpts) -> PipelineReport {
    let (model, cluster) = fixture();
    simulate_block(&model, &cluster, SEQ, opts).expect("simulation runs")
}

/// Canonical event-log serialization: execution order, stream, times to
/// nanosecond resolution, plus the makespan.
fn canonical(rep: &PipelineReport) -> String {
    let mut s = String::new();
    for r in rep.sim.task_records() {
        writeln!(s, "{}|{}|{:.9}|{:.9}", r.name, r.stream, r.start, r.finish).unwrap();
    }
    writeln!(s, "makespan|{:.9}", rep.sim.makespan).unwrap();
    s
}

fn fnv1a(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden/schedules.txt")
}

#[test]
fn schedules_match_golden_digests() {
    let mut lines = Vec::new();
    for (key, opts) in corners() {
        let rep = run_corner(opts);
        lines.push(format!(
            "{key} {:016x} {:.9}",
            fnv1a(&canonical(&rep)),
            rep.sim.makespan
        ));
    }
    let body = lines.join("\n") + "\n";
    let path = golden_path();
    if std::env::var_os("GOLDEN_REGEN").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &body).unwrap();
        eprintln!("regenerated {}", path.display());
        return;
    }
    let want = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden file {} ({e}); run with GOLDEN_REGEN=1 to create it", path.display()));
    if body != want {
        for (got, exp) in body.lines().zip(want.lines()) {
            if got != exp {
                eprintln!("golden mismatch:\n  expected {exp}\n  actual   {got}");
            }
        }
        panic!(
            "simulated schedules diverged from tests/golden/schedules.txt; \
             if intentional, regenerate with GOLDEN_REGEN=1"
        );
    }
}

#[test]
fn payload_bf16_env_never_changes_schedule_digests() {
    // FPDT_BF16 halves wire bytes on the *runtime* path only; the
    // planner's schedule shape (task emission order, dependency
    // structure, stream routing, cost model) must be completely
    // independent of the payload format. Any future change that threads
    // payload width into task emission trips this digest comparison.
    let all_digests = || -> Vec<(String, u64)> {
        corners()
            .into_iter()
            .map(|(key, opts)| (key, fnv1a(&canonical(&run_corner(opts)))))
            .collect()
    };
    std::env::remove_var("FPDT_BF16");
    let off = all_digests();
    std::env::set_var("FPDT_BF16", "1");
    let on = all_digests();
    std::env::remove_var("FPDT_BF16");
    assert_eq!(off, on, "schedule digests must be payload-format invariant");
}

#[test]
fn kv_outer_issues_u_kv_fetches_q_outer_quadratically_many() {
    let u = CHUNKS;
    let paper = PipelineOpts {
        chunks: u,
        offload: true,
        double_buffer: true,
        copy_streams: 2,
        nest: NestOrder::KvOuter,
    };
    let kv = run_corner(paper);
    let q = run_corner(PipelineOpts {
        nest: NestOrder::QOuter,
        ..paper
    });
    let count = |rep: &PipelineReport, prefix: &str| {
        rep.sim
            .task_records()
            .iter()
            .filter(|r| r.name.starts_with(prefix))
            .count()
    };
    // Per GPU: the paper's Figure-7 order fetches each KV chunk once...
    let gpus = 2;
    assert_eq!(count(&kv, "bwd.fetch_kv."), gpus * u);
    assert_eq!(count(&kv, "bwd.qouter."), 0);
    // ...while the flipped nesting refetches the KV chunk in every inner
    // iteration: u(u+1)/2 of them (the §4.2 traffic blow-up).
    assert_eq!(count(&q, "bwd.qouter.fetch_kv_acc."), gpus * u * (u + 1) / 2);
    assert_eq!(count(&q, "bwd.fetch_kv."), 0);
}

#[test]
fn double_buffering_never_increases_makespan() {
    for (key, opts) in corners() {
        if !opts.double_buffer {
            continue;
        }
        let db = run_corner(opts);
        let serial = run_corner(PipelineOpts {
            double_buffer: false,
            ..opts
        });
        assert!(
            db.sim.makespan <= serial.sim.makespan + 1e-9,
            "{key}: double-buffered {} > serialized {}",
            db.sim.makespan,
            serial.sim.makespan
        );
    }
}

#[test]
fn stream_assignment_follows_copy_stream_knob() {
    let base = PipelineOpts {
        chunks: CHUNKS,
        offload: true,
        double_buffer: true,
        copy_streams: 2,
        nest: NestOrder::KvOuter,
    };
    let three = run_corner(base);
    assert!(three.sim.streams().contains(&"gpu0.h2d".to_string()));
    assert!(three.sim.streams().contains(&"gpu0.d2h".to_string()));
    let shared = run_corner(PipelineOpts {
        copy_streams: 1,
        ..base
    });
    assert!(shared.sim.streams().contains(&"gpu0.copy".to_string()));
    let fused = run_corner(PipelineOpts {
        copy_streams: 0,
        ..base
    });
    // every transfer rides the compute stream
    assert!(fused
        .sim
        .task_records()
        .iter()
        .all(|r| r.stream.ends_with(".compute")));
}
