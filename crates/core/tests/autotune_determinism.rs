//! Autotuning must never change what a run computes — only when.
//!
//! The autotuner's search space is almost entirely *schedule*: prefetch
//! stream, comm stream, and thread budget move work between threads and
//! streams without touching a single float. The two knobs that CAN move
//! numerics are fenced off: `payload_bf16` joins the grid only when the
//! workload opts in (and it is pinned off here), and chunk count changes
//! float association (Figure-14 tolerance, not bitwise) so the bitwise
//! leg pins the candidate list to the default chunk count. Under those
//! pins, a tuned run and a default run must produce bitwise identical
//! losses, gradients, and traffic counters at 1, 2, and 8 kernel-pool
//! threads; with chunk count free, losses must still agree to the same
//! 2e-3 tolerance `figure14_convergence` uses across chunk counts.

use fpdt_comm::{run_group, CommStats};
use fpdt_core::chunk::ChunkPlan;
use fpdt_core::runtime::autotune::{autotune, Workload};
use fpdt_core::runtime::data::Corpus;
use fpdt_core::runtime::exec::DistAttention;
use fpdt_core::runtime::gpt::GptModel;
use fpdt_core::runtime::{train, Mode, RuntimeOptions, TrainConfig};
use fpdt_model::config::ModelConfig;
use fpdt_tensor::par;
use rayon::pool;
use std::sync::{Arc, Mutex, MutexGuard};

static CONFIG_LOCK: Mutex<()> = Mutex::new(());

struct ForcedParallel<'a> {
    _guard: MutexGuard<'a, ()>,
    prev_threshold: usize,
    prev_threads: usize,
}

impl ForcedParallel<'_> {
    fn new(threads: usize) -> Self {
        let guard = CONFIG_LOCK.lock().unwrap();
        ForcedParallel {
            _guard: guard,
            prev_threshold: par::set_par_threshold(1),
            prev_threads: pool::set_threads(threads),
        }
    }
}

impl Drop for ForcedParallel<'_> {
    fn drop(&mut self) {
        pool::set_threads(self.prev_threads);
        par::set_par_threshold(self.prev_threshold);
    }
}

const CHUNKS: usize = 4;

fn fixture_model() -> ModelConfig {
    ModelConfig::tiny(2, 32, 4, 50)
}

/// The bitwise-leg workload: chunk candidates pinned to the default
/// count, bf16 off — every knob the search may flip is pure schedule.
fn pinned_workload() -> Workload {
    Workload {
        world: 2,
        probe_steps: 1,
        chunk_candidates: vec![CHUNKS],
        allow_bf16: false,
        ..Workload::new(fixture_model(), 64)
    }
}

/// One full forward/backward under `opts`; returns every rank's
/// (loss_sum, flat gradients, comm stats). Same fixture as
/// `comm_determinism.rs::grad_run`.
fn grad_run(seed: u64, opts: RuntimeOptions) -> Vec<(f32, Vec<f32>, CommStats)> {
    let model_cfg = fixture_model();
    let seq = 64usize;
    run_group(2, |comm| {
        let comm = Arc::new(comm);
        let plan = ChunkPlan::new(seq, 2, CHUNKS).expect("valid plan");
        let rank = comm.rank();
        let mut corpus = Corpus::new(model_cfg.vocab, 0.05, seed ^ 0x5eed);
        let (gx, gy) = corpus.sample(seq);
        let (tokens, targets, pos) = (
            plan.shard(rank, &gx),
            plan.shard(rank, &gy),
            plan.local_positions(rank),
        );
        let mut model = GptModel::new(&model_cfg, seed);
        let mut exec = DistAttention::with_opts(Arc::clone(&comm), plan, opts.with_offload(true));
        model.zero_grad();
        let stats = model
            .forward_backward(&mut exec, &tokens, &targets, &pos, 2 * CHUNKS, 2)
            .expect("forward/backward succeeds");
        (stats.loss_sum, model.collect_grads(), comm.stats())
    })
}

fn assert_bitwise_equal(
    a: &[(f32, Vec<f32>, CommStats)],
    b: &[(f32, Vec<f32>, CommStats)],
    what: &str,
) {
    for (rank, ((la, ga, ca), (lb, gb, cb))) in a.iter().zip(b).enumerate() {
        assert!(
            la.to_bits() == lb.to_bits(),
            "rank {rank} loss differs ({what}): {la} vs {lb}"
        );
        let ga_bits: Vec<u32> = ga.iter().map(|x| x.to_bits()).collect();
        let gb_bits: Vec<u32> = gb.iter().map(|x| x.to_bits()).collect();
        assert_eq!(ga_bits, gb_bits, "rank {rank} gradient bits differ ({what})");
        assert_eq!(ca, cb, "rank {rank} comm statistics differ ({what})");
    }
}

#[test]
fn tuned_config_is_bitwise_identical_to_default_at_every_thread_budget() {
    // Tune once (the probe trains and microprobes under the config lock,
    // since it moves the process-wide thread pool).
    let workload = pinned_workload();
    let tuned = {
        let _cfg = ForcedParallel::new(2);
        autotune(&workload).best
    };
    assert!(
        !tuned.config.payload_bf16,
        "bf16 must stay out of the grid unless the workload opts in"
    );
    assert_eq!(tuned.config.chunks, CHUNKS, "chunk candidates were pinned");

    let tuned_opts = tuned.config.options();
    let default_opts = RuntimeOptions::from_env()
        .with_offload(true)
        .with_payload_bf16(false);
    for threads in [1usize, 2, 8] {
        let base = {
            let _cfg = ForcedParallel::new(threads);
            grad_run(42, default_opts)
        };
        assert!(
            base.iter().any(|(_, g, _)| g.iter().any(|&x| x != 0.0)),
            "all-zero gradients would make the comparison vacuous"
        );
        let got = {
            let _cfg = ForcedParallel::new(threads);
            grad_run(42, tuned_opts)
        };
        assert_bitwise_equal(&base, &got, &format!("tuned vs default, {threads} threads"));
    }
}

#[test]
fn tuned_training_loop_reproduces_the_default_loss_trajectory_bitwise() {
    // Whole `train` entry point (optimizer + gradient all-reduce
    // included): with chunks pinned, swapping in the tuned RuntimeOptions
    // must not move one bit of the loss curve or one traffic counter.
    let workload = pinned_workload();
    let base_cfg = TrainConfig {
        model: fixture_model(),
        world: 2,
        seq: 64,
        steps: 3,
        mode: Mode::Fpdt {
            chunks: CHUNKS,
            offload: true,
        },
        ..TrainConfig::default()
    };
    let (default_report, tuned_report) = {
        let _cfg = ForcedParallel::new(4);
        let tuned_opts = autotune(&workload).best.config.options();
        let default_report = train(&TrainConfig {
            runtime: RuntimeOptions::from_env()
                .with_offload(true)
                .with_payload_bf16(false),
            ..base_cfg.clone()
        });
        let tuned_report = train(&TrainConfig {
            runtime: tuned_opts,
            ..base_cfg.clone()
        });
        (default_report, tuned_report)
    };
    let a: Vec<u32> = default_report.losses.iter().map(|x| x.to_bits()).collect();
    let b: Vec<u32> = tuned_report.losses.iter().map(|x| x.to_bits()).collect();
    assert_eq!(a, b, "loss trajectories differ between default and tuned");
    assert_eq!(default_report.comm, tuned_report.comm, "comm stats differ");
    // Transfer counts and bytes must match exactly; peak residency is the
    // one legitimately schedule-dependent pool statistic — the tuner may
    // flip FPDT_BALANCE relative to the ambient default, and the balanced
    // tile schedule stages gradients lazily, lowering the high-water mark
    // without adding or removing a single transfer.
    let (d, t) = (default_report.host, tuned_report.host);
    assert_eq!(
        (d.offloads, d.fetches, d.bytes, d.bytes_offloaded, d.bytes_fetched),
        (t.offloads, t.fetches, t.bytes, t.bytes_offloaded, t.bytes_fetched),
        "host transfer stats differ"
    );
}

#[test]
fn free_chunk_count_stays_within_figure14_tolerance() {
    // With the chunk candidates freed, the tuner may legitimately pick a
    // different chunk count; that changes float association, so the
    // contract weakens from bitwise to the same 2e-3 tolerance
    // `figure14_convergence` uses across chunk counts.
    let workload = Workload {
        chunk_candidates: vec![2, 4],
        ..pinned_workload()
    };
    let base_cfg = TrainConfig {
        model: fixture_model(),
        world: 2,
        seq: 64,
        steps: 3,
        mode: Mode::Fpdt {
            chunks: CHUNKS,
            offload: true,
        },
        ..TrainConfig::default()
    };
    let (default_report, tuned_report) = {
        let _cfg = ForcedParallel::new(4);
        let best = autotune(&workload).best;
        assert!(
            workload.chunk_candidates.contains(&best.config.chunks),
            "picked chunk count must come from the candidate list"
        );
        let default_report = train(&TrainConfig {
            runtime: RuntimeOptions::from_env()
                .with_offload(true)
                .with_payload_bf16(false),
            ..base_cfg.clone()
        });
        let tuned_report = train(&TrainConfig {
            mode: Mode::Fpdt {
                chunks: best.config.chunks,
                offload: true,
            },
            runtime: best.config.options(),
            ..base_cfg.clone()
        });
        (default_report, tuned_report)
    };
    for (step, (a, b)) in default_report
        .losses
        .iter()
        .zip(&tuned_report.losses)
        .enumerate()
    {
        assert!(
            (a - b).abs() < 2e-3,
            "step {step} loss drifted past Figure-14 tolerance: {a} vs {b}"
        );
    }
}
