//! Determinism of the real multi-thread runtime (`fpdt_core::runtime`).
//!
//! FPDT's equivalence story (paper §5.6) leans on deterministic,
//! rank-ordered reductions: thread scheduling must never leak into the
//! numbers. These tests run the full multi-thread stack twice from the
//! same seed and demand *bitwise* identical results — losses and raw
//! gradients, not just "close".

use fpdt_core::chunk::ChunkPlan;
use fpdt_core::runtime::data::Corpus;
use fpdt_core::runtime::exec::DistAttention;
use fpdt_core::runtime::gpt::GptModel;
use fpdt_core::runtime::{train, Mode, TrainConfig};
use fpdt_comm::run_group;
use fpdt_model::config::ModelConfig;

/// One full forward/backward of the distributed model; returns every
/// rank's (loss_sum, flat gradient vector).
fn grad_run(seed: u64, world: usize, chunks: usize, offload: bool) -> Vec<(f32, Vec<f32>)> {
    let model_cfg = ModelConfig::tiny(2, 32, 4, 50);
    let seq = 64usize;
    run_group(world, |comm| {
        let plan = ChunkPlan::new(seq, world, chunks).expect("valid plan");
        let rank = comm.rank();
        let mut corpus = Corpus::new(model_cfg.vocab, 0.05, seed ^ 0x5eed);
        let (gx, gy) = corpus.sample(seq);
        let (tokens, targets, pos) = (
            plan.shard(rank, &gx),
            plan.shard(rank, &gy),
            plan.local_positions(rank),
        );
        let mut model = GptModel::new(&model_cfg, seed);
        let mut exec = DistAttention::new(std::sync::Arc::new(comm), plan, offload);
        model.zero_grad();
        let stats = model
            .forward_backward(&mut exec, &tokens, &targets, &pos, 2 * chunks, 2)
            .expect("forward/backward succeeds");
        (stats.loss_sum, model.collect_grads())
    })
}

#[test]
fn seeded_runs_are_bitwise_identical_losses_and_gradients() {
    let a = grad_run(42, 2, 2, true);
    let b = grad_run(42, 2, 2, true);
    for (rank, ((la, ga), (lb, gb))) in a.iter().zip(&b).enumerate() {
        assert!(
            la.to_bits() == lb.to_bits(),
            "rank {rank} loss differs bitwise: {la} vs {lb}"
        );
        assert_eq!(ga.len(), gb.len());
        for (i, (x, y)) in ga.iter().zip(gb).enumerate() {
            assert!(
                x.to_bits() == y.to_bits(),
                "rank {rank} grad[{i}] differs bitwise: {x} vs {y}"
            );
        }
    }
}

#[test]
fn different_seeds_actually_diverge() {
    // Guard against the test above passing vacuously (e.g. all-zero
    // gradients): a different seed must change the numbers.
    let a = grad_run(42, 2, 2, true);
    let b = grad_run(43, 2, 2, true);
    assert!(a[0].0.to_bits() != b[0].0.to_bits(), "seed had no effect");
}

#[test]
fn full_training_runs_are_bitwise_identical() {
    // The end-to-end trainer (gradient all-reduce in rank order, ZeRO
    // off) repeated from one seed: identical loss curve, bit for bit.
    let cfg = TrainConfig {
        steps: 4,
        mode: Mode::Fpdt {
            chunks: 2,
            offload: true,
        },
        ..TrainConfig::small(Mode::Single)
    };
    let a = train(&cfg);
    let b = train(&cfg);
    let abits: Vec<u32> = a.losses.iter().map(|l| l.to_bits()).collect();
    let bbits: Vec<u32> = b.losses.iter().map(|l| l.to_bits()).collect();
    assert_eq!(abits, bbits, "loss curves differ bitwise");
}
