//! The balanced tile schedule must be a pure latency optimisation.
//!
//! `FPDT_BALANCE` re-times *when* each `(q_chunk, kv_chunk)` attention
//! tile runs — interleaving tiles from different query chunks so every
//! pipeline slot carries near-equal FLOPs — but each query chunk's inner
//! KV sweep stays in ascending order, so the online-softmax accumulation
//! never re-associates a single float. This suite proves the contract
//! end to end: a 2-layer / 4-chunk distributed model produces bitwise
//! identical losses, gradients, and [`fpdt_comm::CommStats`] snapshots
//! with the schedule balanced and sequential, at 1, 2, and 8 kernel-pool
//! threads; and the whole training loop matches on every transfer
//! counter (peak residency excepted — the balanced schedule's lazy row
//! staging legitimately lowers the high-water mark).

use fpdt_comm::{run_group, CommStats};
use fpdt_core::chunk::ChunkPlan;
use fpdt_core::runtime::data::Corpus;
use fpdt_core::runtime::exec::DistAttention;
use fpdt_core::runtime::gpt::GptModel;
use fpdt_core::runtime::{train, Mode, RuntimeOptions, TrainConfig};
use fpdt_model::config::ModelConfig;
use fpdt_tensor::par;
use rayon::pool;
use std::sync::{Arc, Mutex, MutexGuard};

static CONFIG_LOCK: Mutex<()> = Mutex::new(());

struct ForcedParallel<'a> {
    _guard: MutexGuard<'a, ()>,
    prev_threshold: usize,
    prev_threads: usize,
}

impl ForcedParallel<'_> {
    fn new(threads: usize) -> Self {
        let guard = CONFIG_LOCK.lock().unwrap();
        ForcedParallel {
            _guard: guard,
            prev_threshold: par::set_par_threshold(1),
            prev_threads: pool::set_threads(threads),
        }
    }
}

impl Drop for ForcedParallel<'_> {
    fn drop(&mut self) {
        pool::set_threads(self.prev_threads);
        par::set_par_threshold(self.prev_threshold);
    }
}

/// One full forward/backward of the distributed model under either tile
/// schedule; returns every rank's (loss_sum, flat gradients, comm
/// stats). Same fixture as `comm_determinism.rs::grad_run`.
fn grad_run(seed: u64, world: usize, balanced: bool) -> Vec<(f32, Vec<f32>, CommStats)> {
    let model_cfg = ModelConfig::tiny(2, 32, 4, 50);
    let seq = 64usize;
    let chunks = 4usize;
    run_group(world, |comm| {
        let comm = Arc::new(comm);
        let plan = ChunkPlan::new(seq, world, chunks).expect("valid plan");
        let rank = comm.rank();
        let mut corpus = Corpus::new(model_cfg.vocab, 0.05, seed ^ 0x5eed);
        let (gx, gy) = corpus.sample(seq);
        let (tokens, targets, pos) = (
            plan.shard(rank, &gx),
            plan.shard(rank, &gy),
            plan.local_positions(rank),
        );
        let mut model = GptModel::new(&model_cfg, seed);
        let opts = RuntimeOptions::from_env()
            .with_offload(true)
            .with_balanced(balanced);
        let mut exec = DistAttention::with_opts(Arc::clone(&comm), plan, opts);
        model.zero_grad();
        let stats = model
            .forward_backward(&mut exec, &tokens, &targets, &pos, 2 * chunks, 2)
            .expect("forward/backward succeeds");
        (stats.loss_sum, model.collect_grads(), comm.stats())
    })
}

fn assert_bitwise_equal(
    a: &[(f32, Vec<f32>, CommStats)],
    b: &[(f32, Vec<f32>, CommStats)],
    what: &str,
) {
    for (rank, ((la, ga, ca), (lb, gb, cb))) in a.iter().zip(b).enumerate() {
        assert!(
            la.to_bits() == lb.to_bits(),
            "rank {rank} loss differs ({what}): {la} vs {lb}"
        );
        let ga_bits: Vec<u32> = ga.iter().map(|x| x.to_bits()).collect();
        let gb_bits: Vec<u32> = gb.iter().map(|x| x.to_bits()).collect();
        assert_eq!(ga_bits, gb_bits, "rank {rank} gradient bits differ ({what})");
        assert_eq!(ca, cb, "rank {rank} comm statistics differ ({what})");
    }
}

#[test]
fn balanced_schedule_is_bitwise_identical_at_every_thread_budget() {
    let reference = {
        let _cfg = ForcedParallel::new(1);
        grad_run(42, 2, false)
    };
    assert!(
        reference.iter().any(|(_, g, _)| g.iter().any(|&x| x != 0.0)),
        "all-zero gradients would make the comparison vacuous"
    );
    assert!(
        reference
            .iter()
            .all(|(_, _, c)| c.op("all_to_all").map(|o| o.sends).unwrap_or(0) > 0),
        "no all-to-all traffic would make the stats comparison vacuous"
    );
    for threads in [1usize, 2, 8] {
        let sequential = {
            let _cfg = ForcedParallel::new(threads);
            grad_run(42, 2, false)
        };
        assert_bitwise_equal(
            &reference,
            &sequential,
            &format!("sequential, {threads} threads"),
        );
        let balanced = {
            let _cfg = ForcedParallel::new(threads);
            grad_run(42, 2, true)
        };
        assert_bitwise_equal(
            &reference,
            &balanced,
            &format!("balanced, {threads} threads"),
        );
    }
}

#[test]
fn training_reports_identical_losses_and_traffic_under_both_schedules() {
    // Whole training loop (gradient all-reduce included) through the
    // public `train` entry point: the schedule knob must change neither
    // the loss trajectory nor a single transfer count or byte counter.
    // Peak host-pool residency is the one legitimately schedule-dependent
    // statistic: the balanced schedule stages gradient rows lazily, so
    // its high-water mark may only be lower, never higher.
    let base = TrainConfig {
        model: ModelConfig::tiny(2, 32, 4, 50),
        world: 2,
        seq: 64,
        steps: 3,
        mode: Mode::Fpdt {
            chunks: 4,
            offload: true,
        },
        ..TrainConfig::default()
    };
    let (balanced, sequential) = {
        let _cfg = ForcedParallel::new(4);
        let balanced = train(&TrainConfig {
            runtime: base.runtime.with_balanced(true),
            ..base.clone()
        });
        let sequential = train(&TrainConfig {
            runtime: base.runtime.with_balanced(false),
            ..base.clone()
        });
        (balanced, sequential)
    };
    let a: Vec<u32> = balanced.losses.iter().map(|x| x.to_bits()).collect();
    let b: Vec<u32> = sequential.losses.iter().map(|x| x.to_bits()).collect();
    assert_eq!(a, b, "loss trajectories differ");
    assert_eq!(balanced.comm, sequential.comm, "comm statistics differ");
    let (bl, sq) = (balanced.host, sequential.host);
    assert_eq!(
        (bl.offloads, bl.fetches, bl.bytes, bl.bytes_offloaded, bl.bytes_fetched),
        (sq.offloads, sq.fetches, sq.bytes, sq.bytes_offloaded, sq.bytes_fetched),
        "host transfer stats differ"
    );
    assert!(
        bl.peak_bytes <= sq.peak_bytes,
        "balanced peak residency must not exceed sequential ({} vs {})",
        bl.peak_bytes,
        sq.peak_bytes
    );
    assert!(
        balanced.comm.op("all_to_all").expect("a2a traffic").bytes_sent > 0,
        "comm counters must actually move"
    );
}
