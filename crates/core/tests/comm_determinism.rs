//! End-to-end bitwise equivalence of the overlapped communication stream.
//!
//! The comm stream must be a pure latency optimisation, exactly like the
//! offload copy stream: posting chunk `i+1`'s all-to-all while chunk `i`
//! computes can reorder *when* wire time is spent but never what any rank
//! receives or how the traffic is counted. This suite proves it end to
//! end: a 2-layer / 4-chunk distributed model produces bitwise identical
//! losses, gradients, AND [`fpdt_comm::CommStats`] snapshots with the
//! stream on, off, and on under different kernel-pool thread budgets —
//! and the executor posts exactly one fused QKV op per chunk.

use fpdt_comm::{run_group, CommStats};
use fpdt_core::chunk::ChunkPlan;
use fpdt_core::runtime::data::Corpus;
use fpdt_core::runtime::exec::{AttentionExec, DistAttention};
use fpdt_core::runtime::gpt::GptModel;
use fpdt_core::runtime::{train, Mode, RuntimeOptions, TrainConfig};
use fpdt_model::config::ModelConfig;
use fpdt_tensor::init;
use fpdt_tensor::par;
use fpdt_tensor::Tensor;
use rayon::pool;
use std::sync::{Arc, Mutex, MutexGuard};

static CONFIG_LOCK: Mutex<()> = Mutex::new(());

struct ForcedParallel<'a> {
    _guard: MutexGuard<'a, ()>,
    prev_threshold: usize,
    prev_threads: usize,
}

impl ForcedParallel<'_> {
    fn new(threads: usize) -> Self {
        let guard = CONFIG_LOCK.lock().unwrap();
        ForcedParallel {
            _guard: guard,
            prev_threshold: par::set_par_threshold(1),
            prev_threads: pool::set_threads(threads),
        }
    }
}

impl Drop for ForcedParallel<'_> {
    fn drop(&mut self) {
        pool::set_threads(self.prev_threads);
        par::set_par_threshold(self.prev_threshold);
    }
}

/// One full forward/backward of the distributed model with the comm
/// stream on or off; returns every rank's (loss_sum, flat gradients,
/// comm stats). Same fixture as `prefetch_determinism.rs::grad_run`.
fn grad_run(seed: u64, world: usize, comm_async: bool) -> Vec<(f32, Vec<f32>, CommStats)> {
    let model_cfg = ModelConfig::tiny(2, 32, 4, 50);
    let seq = 64usize;
    let chunks = 4usize;
    run_group(world, |comm| {
        let comm = Arc::new(comm);
        let plan = ChunkPlan::new(seq, world, chunks).expect("valid plan");
        let rank = comm.rank();
        let mut corpus = Corpus::new(model_cfg.vocab, 0.05, seed ^ 0x5eed);
        let (gx, gy) = corpus.sample(seq);
        let (tokens, targets, pos) = (
            plan.shard(rank, &gx),
            plan.shard(rank, &gy),
            plan.local_positions(rank),
        );
        let mut model = GptModel::new(&model_cfg, seed);
        let opts = RuntimeOptions::from_env()
            .with_offload(true)
            .with_comm_async(comm_async);
        let mut exec = DistAttention::with_opts(Arc::clone(&comm), plan, opts);
        model.zero_grad();
        let stats = model
            .forward_backward(&mut exec, &tokens, &targets, &pos, 2 * chunks, 2)
            .expect("forward/backward succeeds");
        // All handles are resolved before forward/backward return, so the
        // snapshot is complete and deterministic here.
        (stats.loss_sum, model.collect_grads(), comm.stats())
    })
}

fn assert_bitwise_equal(
    a: &[(f32, Vec<f32>, CommStats)],
    b: &[(f32, Vec<f32>, CommStats)],
    what: &str,
) {
    for (rank, ((la, ga, ca), (lb, gb, cb))) in a.iter().zip(b).enumerate() {
        assert!(
            la.to_bits() == lb.to_bits(),
            "rank {rank} loss differs ({what}): {la} vs {lb}"
        );
        let ga_bits: Vec<u32> = ga.iter().map(|x| x.to_bits()).collect();
        let gb_bits: Vec<u32> = gb.iter().map(|x| x.to_bits()).collect();
        assert_eq!(ga_bits, gb_bits, "rank {rank} gradient bits differ ({what})");
        // CommStats equality covers every op's send/recv/byte counters in
        // first-use order (wall-clock wait time is excluded by design).
        assert_eq!(ca, cb, "rank {rank} comm statistics differ ({what})");
    }
}

#[test]
fn comm_stream_on_off_and_thread_budgets_are_bitwise_identical() {
    let reference = {
        let _cfg = ForcedParallel::new(1);
        grad_run(42, 2, false)
    };
    assert!(
        reference.iter().any(|(_, g, _)| g.iter().any(|&x| x != 0.0)),
        "all-zero gradients would make the comparison vacuous"
    );
    assert!(
        reference
            .iter()
            .all(|(_, _, c)| c.op("all_to_all").map(|o| o.sends).unwrap_or(0) > 0),
        "no all-to-all traffic would make the stats comparison vacuous"
    );
    let off_8 = {
        let _cfg = ForcedParallel::new(8);
        grad_run(42, 2, false)
    };
    assert_bitwise_equal(&reference, &off_8, "comm stream off, 8 threads");
    for threads in [1usize, 2, 8] {
        let on = {
            let _cfg = ForcedParallel::new(threads);
            grad_run(42, 2, true)
        };
        assert_bitwise_equal(
            &reference,
            &on,
            &format!("comm stream on, {threads} threads"),
        );
    }
}

#[test]
fn training_reports_identical_losses_and_comm_traffic_either_way() {
    // Whole training loop (gradient all-reduce included) through the
    // public `train` entry point: the comm_async knob must change neither
    // the loss trajectory nor a single traffic counter.
    let base = TrainConfig {
        model: ModelConfig::tiny(2, 32, 4, 50),
        world: 2,
        seq: 64,
        steps: 3,
        mode: Mode::Fpdt {
            chunks: 4,
            offload: true,
        },
        ..TrainConfig::default()
    };
    let (on, off) = {
        let _cfg = ForcedParallel::new(4);
        let on = train(&TrainConfig {
            runtime: base.runtime.with_comm_async(true),
            ..base.clone()
        });
        let off = train(&TrainConfig {
            runtime: base.runtime.with_comm_async(false),
            ..base.clone()
        });
        (on, off)
    };
    let on_bits: Vec<u32> = on.losses.iter().map(|x| x.to_bits()).collect();
    let off_bits: Vec<u32> = off.losses.iter().map(|x| x.to_bits()).collect();
    assert_eq!(on_bits, off_bits, "loss trajectories differ");
    assert_eq!(on.comm, off.comm, "comm statistics differ");
    assert_eq!(on.host, off.host, "host-pool statistics differ");
    assert!(
        on.comm.op("all_to_all").expect("a2a traffic").bytes_sent > 0,
        "comm counters must actually move"
    );
}

#[test]
fn executor_posts_exactly_one_fused_qkv_op_per_chunk() {
    // Schedule audit, under BOTH tile schedules: the forward posts u
    // fused QKV ops + u inverse O ops; the backward adds u dO gathers +
    // u dq + u dk + u dv inverse ops. The balanced schedule may move
    // posts across slots (all fused QKV ops go on the wire up-front),
    // but the per-chunk count and the FIFO's ascending-chunk alignment
    // must hold: any drift here means the double buffering degenerated
    // (0 extra posts) or an op stopped being fused (3u instead of u).
    let u = 4usize;
    let (s, h, d) = (16usize, 2usize, 4usize);
    let mut rng = init::seeded_rng(21);
    let q = init::randn(&mut rng, &[s, h, d], 1.0);
    let k = init::randn(&mut rng, &[s, h, d], 1.0);
    let v = init::randn(&mut rng, &[s, h, d], 1.0);
    let dout = init::randn(&mut rng, &[s / 2, h, d], 1.0);
    for balanced in [false, true] {
        let counts = run_group(2, |comm| {
            let plan = ChunkPlan::new(s, 2, u).unwrap();
            let pos = plan.local_positions(comm.rank());
            let shard = |t: &Tensor| {
                let parts: Vec<Tensor> = pos.iter().map(|&p| t.narrow(0, p, 1).unwrap()).collect();
                let refs: Vec<&Tensor> = parts.iter().collect();
                Tensor::concat(&refs, 0).unwrap()
            };
            let opts = RuntimeOptions::from_env()
                .with_offload(true)
                .with_balanced(balanced);
            let mut ex = DistAttention::with_opts(Arc::new(comm), plan, opts);
            ex.forward(0, &shard(&q), &shard(&k), &shard(&v), &pos)
                .unwrap();
            let after_fwd = ex.comm_posted();
            ex.backward(0, &dout).unwrap();
            (after_fwd, ex.comm_posted())
        });
        for (after_fwd, after_bwd) in counts {
            assert_eq!(
                after_fwd,
                2 * u as u64,
                "forward posts (QKV + O per chunk), balanced={balanced}"
            );
            assert_eq!(
                after_bwd,
                6 * u as u64,
                "backward adds dO + dq + dk + dv per chunk, balanced={balanced}"
            );
        }
    }
}
