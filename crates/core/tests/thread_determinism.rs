//! End-to-end bitwise equivalence of the distributed runtime across
//! kernel-pool thread budgets.
//!
//! The determinism suite (`determinism.rs`) proves seeded runs repeat at
//! one fixed configuration; this suite proves the *kernel backend's*
//! thread count is not part of the numerics: a full forward/backward of
//! the multi-rank model produces bitwise identical losses and gradients
//! whether kernels run sequentially (`FPDT_THREADS=1`) or fan out to 2 or
//! 8 pool workers (with the parallel-split threshold forced to 1 so every
//! kernel really takes the pool path).

use fpdt_core::chunk::ChunkPlan;
use fpdt_core::runtime::data::Corpus;
use fpdt_core::runtime::exec::DistAttention;
use fpdt_core::runtime::gpt::GptModel;
use fpdt_comm::run_group;
use fpdt_model::config::ModelConfig;
use fpdt_tensor::par;
use rayon::pool;
use std::sync::{Mutex, MutexGuard};

static CONFIG_LOCK: Mutex<()> = Mutex::new(());

struct ForcedParallel<'a> {
    _guard: MutexGuard<'a, ()>,
    prev_threshold: usize,
    prev_threads: usize,
}

impl ForcedParallel<'_> {
    fn new(threads: usize) -> Self {
        let guard = CONFIG_LOCK.lock().unwrap();
        ForcedParallel {
            _guard: guard,
            prev_threshold: par::set_par_threshold(1),
            prev_threads: pool::set_threads(threads),
        }
    }
}

impl Drop for ForcedParallel<'_> {
    fn drop(&mut self) {
        pool::set_threads(self.prev_threads);
        par::set_par_threshold(self.prev_threshold);
    }
}

/// One full forward/backward of the distributed model; returns every
/// rank's (loss_sum, flat gradient vector). Same fixture as
/// `determinism.rs::grad_run`.
fn grad_run(seed: u64, world: usize, chunks: usize, offload: bool) -> Vec<(f32, Vec<f32>)> {
    let model_cfg = ModelConfig::tiny(2, 32, 4, 50);
    let seq = 64usize;
    run_group(world, |comm| {
        let plan = ChunkPlan::new(seq, world, chunks).expect("valid plan");
        let rank = comm.rank();
        let mut corpus = Corpus::new(model_cfg.vocab, 0.05, seed ^ 0x5eed);
        let (gx, gy) = corpus.sample(seq);
        let (tokens, targets, pos) = (
            plan.shard(rank, &gx),
            plan.shard(rank, &gy),
            plan.local_positions(rank),
        );
        let mut model = GptModel::new(&model_cfg, seed);
        let mut exec = DistAttention::new(std::sync::Arc::new(comm), plan, offload);
        model.zero_grad();
        let stats = model
            .forward_backward(&mut exec, &tokens, &targets, &pos, 2 * chunks, 2)
            .expect("forward/backward succeeds");
        (stats.loss_sum, model.collect_grads())
    })
}

#[test]
fn losses_and_gradients_are_bitwise_identical_across_thread_budgets() {
    let reference = {
        let _cfg = ForcedParallel::new(1);
        grad_run(42, 2, 2, true)
    };
    assert!(
        reference
            .iter()
            .any(|(_, g)| g.iter().any(|&x| x != 0.0)),
        "all-zero gradients would make the comparison vacuous"
    );
    for threads in [2usize, 8] {
        let got = {
            let _cfg = ForcedParallel::new(threads);
            grad_run(42, 2, 2, true)
        };
        for (rank, ((la, ga), (lb, gb))) in reference.iter().zip(&got).enumerate() {
            assert!(
                la.to_bits() == lb.to_bits(),
                "rank {rank} loss differs between 1 and {threads} threads: {la} vs {lb}"
            );
            assert_eq!(ga.len(), gb.len());
            for (i, (x, y)) in ga.iter().zip(gb).enumerate() {
                assert!(
                    x.to_bits() == y.to_bits(),
                    "rank {rank} grad[{i}] differs between 1 and {threads} threads: {x} vs {y}"
                );
            }
        }
    }
}

#[test]
fn default_threshold_matches_forced_parallel_bits() {
    // The split threshold only gates *whether* a kernel fans out, never
    // what it computes: a run at the default threshold (small kernels stay
    // sequential) must equal a run with everything forced onto the pool.
    let default_cfg = {
        let _g = CONFIG_LOCK.lock().unwrap();
        grad_run(7, 2, 2, false)
    };
    let forced = {
        let _cfg = ForcedParallel::new(8);
        grad_run(7, 2, 2, false)
    };
    for ((la, ga), (lb, gb)) in default_cfg.iter().zip(&forced) {
        assert_eq!(la.to_bits(), lb.to_bits(), "loss bits differ");
        let ga_bits: Vec<u32> = ga.iter().map(|x| x.to_bits()).collect();
        let gb_bits: Vec<u32> = gb.iter().map(|x| x.to_bits()).collect();
        assert_eq!(ga_bits, gb_bits, "gradient bits differ");
    }
}
