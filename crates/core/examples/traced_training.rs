//! Traced training: run the real multi-thread trainer with a
//! `fpdt_trace::Recorder` attached, then print the collective traffic
//! counters and write the wall-clock span timeline as a Chrome trace
//! (open `target/experiments/traced_training.trace.json` in Perfetto).

use fpdt_core::runtime::{train_traced, Mode, TrainConfig};
use fpdt_trace::Recorder;

fn main() {
    let cfg = TrainConfig {
        steps: 4,
        mode: Mode::Fpdt {
            chunks: 2,
            offload: true,
        },
        ..TrainConfig::small(Mode::Single)
    };
    let recorder = Recorder::new();
    let report = train_traced(&cfg, Some(&recorder));

    println!("losses: {:?}", report.losses);
    println!("\ncollective traffic (per op, rank 0):");
    for (name, op) in &report.comm.ops {
        println!(
            "  {name:<14} sends {:>4}  bytes_sent {:>9}",
            op.sends, op.bytes_sent
        );
    }
    println!("  total recv wait {:?}", report.comm.total_recv_wait());

    let spans = recorder.records();
    println!("\n{} spans recorded; busiest prefixes:", spans.len());
    for prefix in ["attn.fwd.", "attn.bwd.", "a2a.", "offload.", "allreduce."] {
        println!("  {prefix:<12} {:>10.1} us", recorder.total_us(prefix));
    }

    let dir = std::path::PathBuf::from("target/experiments");
    std::fs::create_dir_all(&dir).expect("create target/experiments");
    let path = dir.join("traced_training.trace.json");
    std::fs::write(&path, recorder.chrome_trace_json()).expect("write trace");
    println!("\n[wrote {}]", path.display());
}
