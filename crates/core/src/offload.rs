//! The host-memory pool: where FPDT parks idle sequence chunks.
//!
//! In the paper this is pinned CPU DRAM reached over PCIe; in the real
//! runtime it is a keyed store owned by each simulated GPU's thread. The
//! pool tracks bytes and transfer counts so tests can assert the paper's
//! claims — e.g. that at any instant only `O(1/u)` of the sequence lives
//! on "HBM", and that the backward's nested loop fetches each KV chunk
//! exactly once per outer iteration.

use fpdt_tensor::Tensor;
use std::collections::HashMap;

/// What kind of buffer a pooled chunk holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BufKind {
    /// Post-all-to-all query chunk.
    Q,
    /// Post-all-to-all key chunk.
    K,
    /// Post-all-to-all value chunk.
    V,
    /// Attention output chunk (needed for the backward `D` term).
    O,
    /// Log-sum-exp statistics for a query chunk.
    Lse,
    /// Accumulating query-gradient chunk (finalized at outer step `j=i`).
    DQ,
    /// Gathered output-gradient chunk (`dO`) in the backward pass.
    DOut,
    /// Row dot-products `D = rowsum(dO ⊙ O)` per query chunk.
    Dsum,
    /// Block-input hidden chunk (activation checkpoint).
    Hidden,
    /// Any other saved context (norm stats, MLP inputs...).
    Ctx,
}

/// Key identifying one pooled chunk.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ChunkKey {
    /// Transformer layer index.
    pub layer: usize,
    /// Buffer kind.
    pub kind: BufKind,
    /// Chunk index within the layer.
    pub chunk: usize,
}

impl ChunkKey {
    /// Convenience constructor.
    pub fn new(layer: usize, kind: BufKind, chunk: usize) -> Self {
        ChunkKey { layer, kind, chunk }
    }
}

/// Counters the pool maintains for behavioral assertions.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Device-to-host transfers (offloads).
    pub offloads: u64,
    /// Host-to-device transfers (fetches).
    pub fetches: u64,
    /// Bytes currently resident.
    pub bytes: u64,
    /// High-water mark of resident bytes.
    pub peak_bytes: u64,
}

/// A per-rank host-memory pool.
///
/// # Example
///
/// ```
/// use fpdt_core::offload::{BufKind, ChunkKey, HostPool};
/// use fpdt_tensor::Tensor;
///
/// let mut pool = HostPool::new();
/// let key = ChunkKey::new(0, BufKind::K, 2);
/// pool.offload(key, Tensor::zeros(&[4, 2, 8]));
/// assert_eq!(pool.stats().bytes, 4 * 2 * 8 * 4);
/// let k = pool.fetch(&key).expect("chunk was cached");
/// assert_eq!(k.shape(), &[4, 2, 8]);
/// assert_eq!(pool.stats().bytes, 0);
/// ```
#[derive(Debug, Default)]
pub struct HostPool {
    store: HashMap<ChunkKey, Tensor>,
    stats: PoolStats,
}

impl HostPool {
    /// Creates an empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Moves a tensor to host memory (device-to-host copy).
    ///
    /// # Panics
    ///
    /// Panics if the key is already resident — offloading the same chunk
    /// twice without fetching it is a scheduler bug.
    pub fn offload(&mut self, key: ChunkKey, t: Tensor) {
        self.stats.offloads += 1;
        self.stats.bytes += bytes_of(&t);
        self.stats.peak_bytes = self.stats.peak_bytes.max(self.stats.bytes);
        let prev = self.store.insert(key, t);
        assert!(prev.is_none(), "chunk {key:?} offloaded twice");
    }

    /// Moves a tensor back to the device (host-to-device copy), removing
    /// it from the pool. Returns `None` when the key is not resident.
    pub fn fetch(&mut self, key: &ChunkKey) -> Option<Tensor> {
        let t = self.store.remove(key)?;
        self.stats.fetches += 1;
        self.stats.bytes -= bytes_of(&t);
        Some(t)
    }

    /// Reads a chunk without evicting it (a fetch that keeps the host
    /// copy — what the forward does with KV chunks reused by later query
    /// chunks).
    pub fn fetch_keep(&mut self, key: &ChunkKey) -> Option<Tensor> {
        let t = self.store.get(key).cloned()?;
        self.stats.fetches += 1;
        Some(t)
    }

    /// Drops a resident chunk without a host-to-device transfer (freeing
    /// host memory costs no PCIe traffic). Returns whether it was present.
    pub fn discard(&mut self, key: &ChunkKey) -> bool {
        match self.store.remove(key) {
            Some(t) => {
                self.stats.bytes -= bytes_of(&t);
                true
            }
            None => false,
        }
    }

    /// Whether a chunk is resident.
    pub fn contains(&self, key: &ChunkKey) -> bool {
        self.store.contains_key(key)
    }

    /// Number of resident chunks.
    pub fn len(&self) -> usize {
        self.store.len()
    }

    /// Whether the pool is empty.
    pub fn is_empty(&self) -> bool {
        self.store.is_empty()
    }

    /// Transfer and residency counters.
    pub fn stats(&self) -> PoolStats {
        self.stats
    }

    /// Drops everything (end of a training step) but keeps cumulative
    /// transfer counters.
    pub fn clear(&mut self) {
        self.store.clear();
        self.stats.bytes = 0;
    }
}

fn bytes_of(t: &Tensor) -> u64 {
    (t.numel() * std::mem::size_of::<f32>()) as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn offload_fetch_round_trip() {
        let mut pool = HostPool::new();
        let t = Tensor::arange(8).reshape(&[2, 4]).unwrap();
        let key = ChunkKey::new(3, BufKind::V, 1);
        pool.offload(key, t.clone());
        assert!(pool.contains(&key));
        assert_eq!(pool.len(), 1);
        let back = pool.fetch(&key).unwrap();
        assert_eq!(back, t);
        assert!(pool.is_empty());
        assert_eq!(pool.fetch(&key), None);
    }

    #[test]
    fn stats_track_transfers_and_peak() {
        let mut pool = HostPool::new();
        pool.offload(ChunkKey::new(0, BufKind::K, 0), Tensor::zeros(&[10]));
        pool.offload(ChunkKey::new(0, BufKind::V, 0), Tensor::zeros(&[10]));
        assert_eq!(pool.stats().offloads, 2);
        assert_eq!(pool.stats().bytes, 80);
        pool.fetch(&ChunkKey::new(0, BufKind::K, 0)).unwrap();
        assert_eq!(pool.stats().fetches, 1);
        assert_eq!(pool.stats().bytes, 40);
        assert_eq!(pool.stats().peak_bytes, 80);
    }

    #[test]
    fn fetch_keep_leaves_resident() {
        let mut pool = HostPool::new();
        let key = ChunkKey::new(1, BufKind::Q, 0);
        pool.offload(key, Tensor::ones(&[4]));
        let a = pool.fetch_keep(&key).unwrap();
        assert!(pool.contains(&key));
        assert_eq!(a.numel(), 4);
        assert_eq!(pool.stats().fetches, 1);
    }

    #[test]
    fn clear_resets_residency_not_counters() {
        let mut pool = HostPool::new();
        pool.offload(ChunkKey::new(0, BufKind::Hidden, 0), Tensor::zeros(&[5]));
        pool.clear();
        assert!(pool.is_empty());
        assert_eq!(pool.stats().bytes, 0);
        assert_eq!(pool.stats().offloads, 1);
        assert_eq!(pool.stats().peak_bytes, 20);
    }

    #[test]
    #[should_panic(expected = "offloaded twice")]
    fn double_offload_is_a_bug() {
        let mut pool = HostPool::new();
        let key = ChunkKey::new(0, BufKind::K, 0);
        pool.offload(key, Tensor::zeros(&[1]));
        pool.offload(key, Tensor::zeros(&[1]));
    }
}
