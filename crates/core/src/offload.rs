//! The host-memory pool: where FPDT parks idle sequence chunks — plus the
//! asynchronous copy stream that hides its traffic behind compute.
//!
//! In the paper this is pinned CPU DRAM reached over PCIe; in the real
//! runtime it is a keyed store owned by each simulated GPU's thread. The
//! pool tracks bytes and transfer counts so tests can assert the paper's
//! claims — e.g. that at any instant only `O(1/u)` of the sequence lives
//! on "HBM", and that the backward's nested loop fetches each KV chunk
//! exactly once per outer iteration.
//!
//! ## Zero-copy residency, costed transfers
//!
//! Chunks are stored as [`Arc<Tensor>`], so [`HostPool::fetch_keep`] hands
//! back the *same* buffer the pool holds — no data copy, ever. What a real
//! system pays for is the PCIe transfer, which [`OffloadEngine`] models as
//! a bandwidth-bound read pass over the chunk ("the copy"). Synchronous
//! transfers run that pass on the rank's thread; with prefetch enabled it
//! runs on a kernel-pool worker, chained FIFO like a CUDA copy stream, so
//! the transfer overlaps whatever the rank computes next.
//!
//! ## Determinism
//!
//! All pool *bookkeeping* (map inserts/removals, counters) happens
//! synchronously on the owning rank's thread at issue time, in program
//! order — only the costed read pass moves off-thread. Since the data is
//! `Arc`-shared, a prefetched chunk is bit-identical to a synchronously
//! fetched one regardless of when the copy runs, so prefetch on/off (and
//! any `FPDT_THREADS`) cannot change results *by construction*.

use fpdt_tensor::bf16::Bf16Tensor;
use fpdt_tensor::{par, Tensor};
use fpdt_trace::Recorder;
use std::collections::{HashMap, HashSet};
use std::sync::{Arc, Condvar, Mutex};

/// What kind of buffer a pooled chunk holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BufKind {
    /// Post-all-to-all query chunk.
    Q,
    /// Post-all-to-all key chunk.
    K,
    /// Post-all-to-all value chunk.
    V,
    /// Attention output chunk (needed for the backward `D` term).
    O,
    /// Log-sum-exp statistics for a query chunk.
    Lse,
    /// Accumulating query-gradient chunk (finalized at outer step `j=i`).
    DQ,
    /// Gathered output-gradient chunk (`dO`) in the backward pass.
    DOut,
    /// Row dot-products `D = rowsum(dO ⊙ O)` per query chunk.
    Dsum,
    /// Block-input hidden chunk (activation checkpoint).
    Hidden,
    /// Any other saved context (norm stats, MLP inputs...).
    Ctx,
}

/// Key identifying one pooled chunk.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ChunkKey {
    /// Transformer layer index.
    pub layer: usize,
    /// Buffer kind.
    pub kind: BufKind,
    /// Chunk index within the layer.
    pub chunk: usize,
}

impl BufKind {
    /// Stable numeric code — the serialization order checkpoints use.
    /// Appending new kinds at the end keeps existing shard files readable.
    pub fn code(self) -> u8 {
        match self {
            BufKind::Q => 0,
            BufKind::K => 1,
            BufKind::V => 2,
            BufKind::O => 3,
            BufKind::Lse => 4,
            BufKind::DQ => 5,
            BufKind::DOut => 6,
            BufKind::Dsum => 7,
            BufKind::Hidden => 8,
            BufKind::Ctx => 9,
        }
    }

    /// Inverse of [`BufKind::code`].
    pub fn from_code(code: u8) -> Option<Self> {
        Some(match code {
            0 => BufKind::Q,
            1 => BufKind::K,
            2 => BufKind::V,
            3 => BufKind::O,
            4 => BufKind::Lse,
            5 => BufKind::DQ,
            6 => BufKind::DOut,
            7 => BufKind::Dsum,
            8 => BufKind::Hidden,
            9 => BufKind::Ctx,
            _ => return None,
        })
    }
}

impl ChunkKey {
    /// Convenience constructor.
    pub fn new(layer: usize, kind: BufKind, chunk: usize) -> Self {
        ChunkKey { layer, kind, chunk }
    }

    /// Deterministic sort key (`layer`, [`BufKind::code`], `chunk`) — the
    /// order checkpointed residency entries are written in.
    pub fn sort_key(&self) -> (usize, u8, usize) {
        (self.layer, self.kind.code(), self.chunk)
    }
}

/// Counters the pool maintains for behavioral assertions.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Device-to-host transfers (offloads).
    pub offloads: u64,
    /// Host-to-device transfers (fetches).
    pub fetches: u64,
    /// Bytes currently resident.
    pub bytes: u64,
    /// High-water mark of resident bytes.
    pub peak_bytes: u64,
    /// Cumulative device-to-host traffic (bytes ever offloaded).
    pub bytes_offloaded: u64,
    /// Cumulative host-to-device traffic (bytes ever fetched, keep or
    /// consume).
    pub bytes_fetched: u64,
}

impl PoolStats {
    /// Folds a later segment's counters into this snapshot: cumulative
    /// counters add, residency takes the later segment's value, and the
    /// high-water mark takes the max. Accumulating per-segment snapshots
    /// this way makes a resumed run's pool statistics equal an
    /// uninterrupted run's.
    pub fn merge(&mut self, later: &PoolStats) {
        self.offloads += later.offloads;
        self.fetches += later.fetches;
        self.bytes = later.bytes;
        self.peak_bytes = self.peak_bytes.max(later.peak_bytes);
        self.bytes_offloaded += later.bytes_offloaded;
        self.bytes_fetched += later.bytes_fetched;
    }
}

/// How one chunk is laid out in host memory: full-precision `f32` (the
/// zero-copy default) or bf16 (half the bytes, one RNE rounding on
/// offload, widened back to `f32` on fetch).
///
/// The variant is the pool's *wire format* — compute always sees `f32`
/// via [`HostChunk::widen`]. Only KV chunks use bf16 (see
/// [`HostPool::set_payload_bf16`]); everything else stays `f32` so
/// gradients and saved activations keep full precision.
#[derive(Debug, Clone)]
pub enum HostChunk {
    /// Full-precision chunk, `Arc`-shared with the device side.
    F32(Arc<Tensor>),
    /// bf16-rounded chunk (2 bytes/element on the simulated PCIe link).
    Bf16(Arc<Bf16Tensor>),
}

impl HostChunk {
    /// Bytes this chunk occupies in host memory (4 per f32 element, 2 per
    /// bf16 element) — what every [`PoolStats`] byte counter tallies.
    pub fn wire_bytes(&self) -> u64 {
        match self {
            HostChunk::F32(t) => (t.numel() * 4) as u64,
            HostChunk::Bf16(t) => t.wire_bytes(),
        }
    }

    /// Hands back the chunk as `f32` compute data: the pooled buffer
    /// itself for `F32` (zero-copy), a widened copy for `Bf16`.
    pub fn widen(&self) -> Arc<Tensor> {
        match self {
            HostChunk::F32(t) => Arc::clone(t),
            HostChunk::Bf16(t) => {
                Arc::new(t.to_f32().expect("bf16 chunk shape was valid on offload"))
            }
        }
    }

    /// The simulated PCIe transfer: a read pass over the chunk's *stored*
    /// representation plus (when `FPDT_SIM_GBPS` is set) link occupancy
    /// proportional to the wire bytes, so a bf16 chunk streams half the
    /// bytes — and takes half the wall-clock — of its f32 twin.
    fn touch(&self) {
        match self {
            HostChunk::F32(t) => {
                let mut acc = 0.0f32;
                for &x in t.data() {
                    acc += x;
                }
                std::hint::black_box(acc);
            }
            HostChunk::Bf16(t) => {
                let mut acc = 0u16;
                for &x in t.data() {
                    acc = acc.wrapping_add(x);
                }
                std::hint::black_box(acc);
            }
        }
        fpdt_trace::wire::simulate(self.wire_bytes());
    }
}

/// A per-rank host-memory pool. Chunks are `Arc`-shared: fetching hands
/// back the pooled buffer itself, never a copy.
///
/// # Example
///
/// ```
/// use fpdt_core::offload::{BufKind, ChunkKey, HostPool};
/// use fpdt_tensor::Tensor;
///
/// let mut pool = HostPool::new();
/// let key = ChunkKey::new(0, BufKind::K, 2);
/// pool.offload(key, Tensor::zeros(&[4, 2, 8]));
/// assert_eq!(pool.stats().bytes, 4 * 2 * 8 * 4);
/// let k = pool.fetch(&key).expect("chunk was cached");
/// assert_eq!(k.shape(), &[4, 2, 8]);
/// assert_eq!(pool.stats().bytes, 0);
/// assert_eq!(pool.stats().bytes_fetched, 4 * 2 * 8 * 4);
/// ```
#[derive(Debug, Default)]
pub struct HostPool {
    store: HashMap<ChunkKey, HostChunk>,
    stats: PoolStats,
    payload_bf16: bool,
}

impl HostPool {
    /// Creates an empty pool (f32 payloads).
    pub fn new() -> Self {
        Self::default()
    }

    /// Switches the pool's wire format for *KV* chunks: when enabled,
    /// `K`/`V` offloads are rounded to bf16 (halving their bytes in every
    /// [`PoolStats`] counter) and widened back to f32 on fetch. All other
    /// buffer kinds stay full-precision `Arc`-shared f32. Affects chunks
    /// offloaded after the call; gated at the runtime layer by
    /// `RuntimeOptions::payload_bf16` / `FPDT_BF16`.
    pub fn set_payload_bf16(&mut self, on: bool) {
        self.payload_bf16 = on;
    }

    /// Whether KV offloads are currently stored as bf16.
    pub fn payload_bf16(&self) -> bool {
        self.payload_bf16
    }

    /// Moves a tensor to host memory (device-to-host copy).
    ///
    /// # Panics
    ///
    /// Panics if the key is already resident — offloading the same chunk
    /// twice without fetching it is a scheduler bug.
    pub fn offload(&mut self, key: ChunkKey, t: Tensor) {
        self.offload_shared(key, Arc::new(t));
    }

    /// [`HostPool::offload`] for a chunk that is already `Arc`-shared with
    /// the device side — the zero-copy path the executor uses. Returns the
    /// chunk as stored (an `Arc` clone), so callers modeling the transfer
    /// can stream the actual wire representation.
    ///
    /// # Panics
    ///
    /// Same double-offload condition as [`HostPool::offload`].
    pub fn offload_shared(&mut self, key: ChunkKey, t: Arc<Tensor>) -> HostChunk {
        let chunk = if self.payload_bf16 && matches!(key.kind, BufKind::K | BufKind::V) {
            HostChunk::Bf16(Arc::new(Bf16Tensor::from_f32(&t)))
        } else {
            HostChunk::F32(t)
        };
        let b = chunk.wire_bytes();
        self.stats.offloads += 1;
        self.stats.bytes += b;
        self.stats.bytes_offloaded += b;
        self.stats.peak_bytes = self.stats.peak_bytes.max(self.stats.bytes);
        let prev = self.store.insert(key, chunk.clone());
        assert!(prev.is_none(), "chunk {key:?} offloaded twice");
        chunk
    }

    /// Moves a tensor back to the device (host-to-device copy), removing
    /// it from the pool. Returns `None` when the key is not resident.
    pub fn fetch(&mut self, key: &ChunkKey) -> Option<Arc<Tensor>> {
        self.fetch_chunk(key).map(|c| c.widen())
    }

    /// [`HostPool::fetch`] returning the stored wire representation
    /// (counters update identically; widen with [`HostChunk::widen`]).
    pub fn fetch_chunk(&mut self, key: &ChunkKey) -> Option<HostChunk> {
        let c = self.store.remove(key)?;
        let b = c.wire_bytes();
        self.stats.fetches += 1;
        self.stats.bytes -= b;
        self.stats.bytes_fetched += b;
        Some(c)
    }

    /// Reads a chunk without evicting it (a fetch that keeps the host
    /// copy — what the forward does with KV chunks reused by later query
    /// chunks). For f32 chunks this hands back the pooled `Arc` itself:
    /// no data is copied. bf16 chunks widen to a fresh f32 buffer.
    pub fn fetch_keep(&mut self, key: &ChunkKey) -> Option<Arc<Tensor>> {
        self.fetch_keep_chunk(key).map(|c| c.widen())
    }

    /// [`HostPool::fetch_keep`] returning the stored wire representation.
    pub fn fetch_keep_chunk(&mut self, key: &ChunkKey) -> Option<HostChunk> {
        let c = self.store.get(key)?.clone();
        self.stats.fetches += 1;
        self.stats.bytes_fetched += c.wire_bytes();
        Some(c)
    }

    /// Drops a resident chunk without a host-to-device transfer (freeing
    /// host memory costs no PCIe traffic). Returns whether it was present.
    pub fn discard(&mut self, key: &ChunkKey) -> bool {
        match self.store.remove(key) {
            Some(c) => {
                self.stats.bytes -= c.wire_bytes();
                true
            }
            None => false,
        }
    }

    /// Whether a chunk is resident.
    pub fn contains(&self, key: &ChunkKey) -> bool {
        self.store.contains_key(key)
    }

    /// Number of resident chunks.
    pub fn len(&self) -> usize {
        self.store.len()
    }

    /// Whether the pool is empty.
    pub fn is_empty(&self) -> bool {
        self.store.is_empty()
    }

    /// Reads a resident chunk without transferring it: no counters move,
    /// no eviction. This is the checkpoint path — serializing residency
    /// must not perturb the transfer statistics the determinism suite
    /// compares.
    pub fn peek(&self, key: &ChunkKey) -> Option<&HostChunk> {
        self.store.get(key)
    }

    /// Every resident key in deterministic [`ChunkKey::sort_key`] order —
    /// the iteration order checkpoint shards serialize residency in.
    pub fn resident_keys(&self) -> Vec<ChunkKey> {
        let mut keys: Vec<ChunkKey> = self.store.keys().copied().collect();
        keys.sort_by_key(|k| k.sort_key());
        keys
    }

    /// Transfer and residency counters.
    pub fn stats(&self) -> PoolStats {
        self.stats
    }

    /// Drops everything (end of a training step) but keeps cumulative
    /// transfer counters.
    pub fn clear(&mut self) {
        self.store.clear();
        self.stats.bytes = 0;
    }
}

/// Completion state of one asynchronous copy.
#[derive(Debug, Default)]
struct TaskDone {
    done: Mutex<bool>,
    cv: Condvar,
}

impl TaskDone {
    fn signal(&self) {
        *self.done.lock().expect("copy task state") = true;
        self.cv.notify_all();
    }

    fn wait(&self) {
        let mut d = self.done.lock().expect("copy task state");
        while !*d {
            d = self.cv.wait(d).expect("copy task state");
        }
    }
}

/// Signals a [`TaskDone`] when dropped — even if the copy payload panics
/// on the worker, so a [`FetchHandle::wait`] never hangs.
struct SignalOnDrop(Arc<TaskDone>);

impl Drop for SignalOnDrop {
    fn drop(&mut self) {
        self.0.signal();
    }
}

/// An in-flight host-to-device copy issued by [`OffloadEngine::prefetch`].
///
/// The chunk's *data* is already available (it is the pool's shared
/// buffer); [`FetchHandle::wait`] blocks until the modeled transfer has
/// finished streaming, recording the blocked time as an `offload.wait`
/// span. Dropping the handle waits too, so the copy stream stays ordered
/// even on error paths.
#[derive(Debug)]
pub struct FetchHandle {
    data: Arc<Tensor>,
    done: Option<Arc<TaskDone>>,
    key: ChunkKey,
    pending: Option<Arc<Mutex<HashSet<ChunkKey>>>>,
    recorder: Option<Recorder>,
    bytes: u64,
}

impl FetchHandle {
    /// A handle whose transfer already completed (device-resident chunks,
    /// or a copy that ran inline under a single-thread budget).
    pub fn ready(data: Arc<Tensor>) -> Self {
        FetchHandle {
            data,
            done: None,
            key: ChunkKey::new(0, BufKind::Ctx, 0),
            pending: None,
            recorder: None,
            bytes: 0,
        }
    }

    /// Blocks until the chunk has finished streaming in, then returns the
    /// shared buffer.
    pub fn wait(self) -> Arc<Tensor> {
        let data = Arc::clone(&self.data);
        drop(self); // the Drop impl performs the actual wait
        data
    }
}

impl Drop for FetchHandle {
    fn drop(&mut self) {
        if let Some(done) = self.done.take() {
            match &self.recorder {
                Some(r) => {
                    let start = r.now_us();
                    done.wait();
                    r.record("offload.wait", start, r.now_us() - start, Some(self.bytes));
                }
                None => done.wait(),
            }
        }
        if let Some(pending) = &self.pending {
            pending.lock().expect("pending prefetch set").remove(&self.key);
        }
    }
}

/// A [`HostPool`] fronted by an asynchronous copy stream.
///
/// Bookkeeping (residency, counters) stays synchronous on the owning
/// rank's thread; the costed transfer pass runs on the shared kernel pool
/// when `prefetch` is enabled *and* the `device_scope` budget leaves a
/// helper thread (`fpdt_tensor::par::spawn_task`), inline otherwise.
/// Transfers chain FIFO per engine — one copy in flight at a time, like a
/// CUDA copy stream on one PCIe link.
#[derive(Default)]
pub struct OffloadEngine {
    pool: HostPool,
    prefetch: bool,
    last: Option<Arc<TaskDone>>,
    pending: Arc<Mutex<HashSet<ChunkKey>>>,
    recorder: Option<Recorder>,
}

impl OffloadEngine {
    /// An engine over an empty pool; `prefetch` enables the async stream.
    pub fn new(prefetch: bool) -> Self {
        OffloadEngine {
            pool: HostPool::new(),
            prefetch,
            last: None,
            pending: Arc::default(),
            recorder: None,
        }
    }

    /// Switches the pool to bf16 KV payloads (see
    /// [`HostPool::set_payload_bf16`]). The modeled transfer passes then
    /// stream the stored bf16 representation — half the bytes.
    pub fn set_payload_bf16(&mut self, on: bool) {
        self.pool.set_payload_bf16(on);
    }

    /// Attaches a span recorder: every transfer records `offload.put` /
    /// `offload.fetch` / `offload.prefetch` spans with actual byte counts,
    /// and waits record `offload.wait`.
    pub fn set_recorder(&mut self, recorder: Recorder) {
        self.recorder = Some(recorder);
    }

    /// Whether the asynchronous copy stream is enabled.
    pub fn prefetch_enabled(&self) -> bool {
        self.prefetch
    }

    /// Transfer and residency counters (deterministic: bookkeeping happens
    /// at issue time regardless of copy timing).
    pub fn stats(&self) -> PoolStats {
        self.pool.stats()
    }

    /// Whether the pool holds no chunks.
    pub fn is_empty(&self) -> bool {
        self.pool.is_empty()
    }

    /// Whether a chunk is resident.
    pub fn contains(&self, key: &ChunkKey) -> bool {
        self.pool.contains(key)
    }

    /// Offloads a shared chunk (device-to-host). The residency update is
    /// immediate; the costed copy pass streams asynchronously when the
    /// engine prefetches.
    ///
    /// # Panics
    ///
    /// Same double-offload condition as [`HostPool::offload`].
    pub fn put(&mut self, key: ChunkKey, t: Arc<Tensor>) {
        let chunk = self.pool.offload_shared(key, t);
        let bytes = chunk.wire_bytes();
        if self.prefetch {
            let rec = self.recorder.clone();
            self.submit(move || {
                let _s = rec.as_ref().map(|r| r.span("offload.put").bytes(bytes));
                chunk.touch();
            });
        } else {
            let _s = self
                .recorder
                .as_ref()
                .map(|r| r.span("offload.put").bytes(bytes));
            chunk.touch();
        }
    }

    /// Synchronous host-to-device transfer: `consume` evicts the chunk,
    /// otherwise the host copy stays resident. `None` when not resident.
    pub fn fetch(&mut self, key: &ChunkKey, consume: bool) -> Option<Arc<Tensor>> {
        let chunk = if consume {
            self.pool.fetch_chunk(key)
        } else {
            self.pool.fetch_keep_chunk(key)
        }?;
        let _s = self
            .recorder
            .as_ref()
            .map(|r| r.span("offload.fetch").bytes(chunk.wire_bytes()));
        chunk.touch();
        Some(chunk.widen())
    }

    /// Issues an asynchronous host-to-device transfer and returns a
    /// [`FetchHandle`] to wait on — the double-buffer primitive. Counters
    /// update now (so statistics are identical to the synchronous path);
    /// the copy pass runs on the stream. With prefetch disabled this
    /// degrades to [`OffloadEngine::fetch`] behind a ready handle.
    ///
    /// # Panics
    ///
    /// Panics when `key` already has an in-flight prefetch that no one
    /// waited for — double-buffering the same chunk twice is a scheduler
    /// bug, mirroring the pool's double-offload panic.
    pub fn prefetch(&mut self, key: &ChunkKey, consume: bool) -> Option<FetchHandle> {
        if !self.prefetch {
            return self.fetch(key, consume).map(FetchHandle::ready);
        }
        assert!(
            self.pending
                .lock()
                .expect("pending prefetch set")
                .insert(*key),
            "chunk {key:?} prefetched twice without a wait"
        );
        let chunk = if consume {
            self.pool.fetch_chunk(key)
        } else {
            self.pool.fetch_keep_chunk(key)
        };
        let Some(chunk) = chunk else {
            self.pending.lock().expect("pending prefetch set").remove(key);
            return None;
        };
        let bytes = chunk.wire_bytes();
        let rec = self.recorder.clone();
        // Widen on the issuing rank's thread (deterministic program order);
        // the stream only runs the costed pass over the wire repr.
        let data = chunk.widen();
        let done = self.submit(move || {
            let _s = rec.as_ref().map(|r| r.span("offload.prefetch").bytes(bytes));
            chunk.touch();
        });
        Some(FetchHandle {
            data,
            done,
            key: *key,
            pending: Some(Arc::clone(&self.pending)),
            recorder: self.recorder.clone(),
            bytes,
        })
    }

    /// Drops a resident chunk without a transfer. Returns whether it was
    /// present.
    pub fn discard(&mut self, key: &ChunkKey) -> bool {
        self.pool.discard(key)
    }

    /// Blocks until every queued copy has completed (the stream is idle).
    pub fn drain(&mut self) {
        if let Some(d) = self.last.take() {
            d.wait();
        }
    }

    /// Submits one copy pass to the stream: it first waits for the
    /// previous pass (FIFO, one transfer in flight — a single PCIe link),
    /// then runs `f`. Returns the completion state when the pass went
    /// async, `None` when it ran inline (single-thread budget).
    fn submit(&mut self, f: impl FnOnce() + Send + 'static) -> Option<Arc<TaskDone>> {
        let prev = self.last.take();
        let done = Arc::new(TaskDone::default());
        let signal = Arc::clone(&done);
        let task = move || {
            let _signal = SignalOnDrop(signal);
            if let Some(p) = prev {
                p.wait();
            }
            f();
        };
        if par::spawn_task(Box::new(task)) {
            self.last = Some(Arc::clone(&done));
            Some(done)
        } else {
            None
        }
    }
}

impl Drop for OffloadEngine {
    fn drop(&mut self) {
        // Workers only read Arc-shared data, so dropping early is safe;
        // draining just keeps span timelines from outliving their run.
        self.drain();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rayon::pool as thread_pool;
    use std::sync::MutexGuard;

    #[test]
    fn offload_fetch_round_trip() {
        let mut pool = HostPool::new();
        let t = Tensor::arange(8).reshape(&[2, 4]).unwrap();
        let key = ChunkKey::new(3, BufKind::V, 1);
        pool.offload(key, t.clone());
        assert!(pool.contains(&key));
        assert_eq!(pool.len(), 1);
        let back = pool.fetch(&key).unwrap();
        assert_eq!(*back, t);
        assert!(pool.is_empty());
        assert!(pool.fetch(&key).is_none());
    }

    #[test]
    fn stats_track_transfers_peak_and_directions() {
        let mut pool = HostPool::new();
        pool.offload(ChunkKey::new(0, BufKind::K, 0), Tensor::zeros(&[10]));
        pool.offload(ChunkKey::new(0, BufKind::V, 0), Tensor::zeros(&[10]));
        assert_eq!(pool.stats().offloads, 2);
        assert_eq!(pool.stats().bytes, 80);
        assert_eq!(pool.stats().bytes_offloaded, 80);
        pool.fetch(&ChunkKey::new(0, BufKind::K, 0)).unwrap();
        assert_eq!(pool.stats().fetches, 1);
        assert_eq!(pool.stats().bytes, 40);
        assert_eq!(pool.stats().peak_bytes, 80);
        assert_eq!(pool.stats().bytes_fetched, 40);
        // keep-fetches count as host-to-device traffic too
        pool.fetch_keep(&ChunkKey::new(0, BufKind::V, 0)).unwrap();
        assert_eq!(pool.stats().bytes_fetched, 80);
        assert_eq!(pool.stats().bytes_offloaded, 80, "no new offloads");
    }

    #[test]
    fn fetch_keep_is_zero_copy() {
        let mut pool = HostPool::new();
        let key = ChunkKey::new(1, BufKind::Q, 0);
        let t = Arc::new(Tensor::ones(&[4]));
        pool.offload_shared(key, Arc::clone(&t));
        let a = pool.fetch_keep(&key).unwrap();
        let b = pool.fetch_keep(&key).unwrap();
        // Every fetch returns the same allocation the caller offloaded —
        // no clone anywhere in the pool.
        assert!(Arc::ptr_eq(&a, &t));
        assert!(std::ptr::eq(a.data().as_ptr(), b.data().as_ptr()));
        // caller + pool + two keeps = 4 refs, one buffer
        assert_eq!(Arc::strong_count(&t), 4);
        let c = pool.fetch(&key).unwrap();
        assert!(Arc::ptr_eq(&c, &t));
        assert_eq!(pool.stats().fetches, 3);
    }

    #[test]
    fn clear_resets_residency_not_counters() {
        let mut pool = HostPool::new();
        pool.offload(ChunkKey::new(0, BufKind::Hidden, 0), Tensor::zeros(&[5]));
        pool.clear();
        assert!(pool.is_empty());
        assert_eq!(pool.stats().bytes, 0);
        assert_eq!(pool.stats().offloads, 1);
        assert_eq!(pool.stats().peak_bytes, 20);
        assert_eq!(pool.stats().bytes_offloaded, 20);
    }

    #[test]
    fn bf16_kv_traffic_halves_exactly() {
        // KV-only fixture: every byte counter must be exactly half of the
        // f32 run's, with identical transfer counts.
        let run = |bf16: bool| {
            let mut pool = HostPool::new();
            pool.set_payload_bf16(bf16);
            pool.offload(ChunkKey::new(0, BufKind::K, 0), Tensor::ones(&[16]));
            pool.offload(ChunkKey::new(0, BufKind::V, 0), Tensor::ones(&[16]));
            pool.fetch(&ChunkKey::new(0, BufKind::K, 0)).unwrap();
            pool.fetch_keep(&ChunkKey::new(0, BufKind::V, 0)).unwrap();
            pool.stats()
        };
        let (full, half) = (run(false), run(true));
        assert_eq!(full.offloads, half.offloads);
        assert_eq!(full.fetches, half.fetches);
        assert_eq!(full.bytes_offloaded, 2 * half.bytes_offloaded);
        assert_eq!(full.bytes_fetched, 2 * half.bytes_fetched);
        assert_eq!(full.peak_bytes, 2 * half.peak_bytes);
        assert_eq!(full.bytes, 2 * half.bytes);
    }

    #[test]
    fn bf16_mode_leaves_non_kv_chunks_zero_copy() {
        let mut pool = HostPool::new();
        pool.set_payload_bf16(true);
        assert!(pool.payload_bf16());
        let key = ChunkKey::new(0, BufKind::O, 0);
        let t = Arc::new(Tensor::ones(&[8]));
        pool.offload_shared(key, Arc::clone(&t));
        let got = pool.fetch_keep(&key).unwrap();
        assert!(Arc::ptr_eq(&got, &t), "non-KV kinds stay f32 zero-copy");
        assert_eq!(pool.stats().bytes, 32, "full f32 bytes for non-KV");
    }

    #[test]
    fn bf16_kv_values_round_once_through_bf16() {
        use fpdt_tensor::bf16::{bf16_to_f32, f32_to_bf16};
        let mut pool = HostPool::new();
        pool.set_payload_bf16(true);
        let key = ChunkKey::new(0, BufKind::K, 0);
        let vals: Vec<f32> = (0..7).map(|i| 0.1 + i as f32 * 0.013).collect();
        pool.offload(key, Tensor::from_vec(vals.clone(), &[7]).unwrap());
        assert_eq!(pool.stats().bytes, 14, "2 bytes per element");
        let back = pool.fetch(&key).unwrap();
        assert_eq!(back.shape(), &[7]);
        for (got, &x) in back.data().iter().zip(&vals) {
            assert_eq!(*got, bf16_to_f32(f32_to_bf16(x)), "exactly one RNE rounding");
        }
    }

    #[test]
    #[should_panic(expected = "offloaded twice")]
    fn double_offload_is_a_bug() {
        let mut pool = HostPool::new();
        let key = ChunkKey::new(0, BufKind::K, 0);
        pool.offload(key, Tensor::zeros(&[1]));
        pool.offload(key, Tensor::zeros(&[1]));
    }

    // ---- engine tests ----
    //
    // Engine tests that force the async path mutate the global thread
    // budget; serialize them so restores don't race each other.
    static THREADS_LOCK: Mutex<()> = Mutex::new(());

    struct ForcedThreads<'a> {
        _guard: MutexGuard<'a, ()>,
        prev: usize,
    }

    impl ForcedThreads<'_> {
        fn new(n: usize) -> Self {
            let guard = THREADS_LOCK.lock().unwrap();
            ForcedThreads {
                _guard: guard,
                prev: thread_pool::set_threads(n),
            }
        }
    }

    impl Drop for ForcedThreads<'_> {
        fn drop(&mut self) {
            thread_pool::set_threads(self.prev);
        }
    }

    #[test]
    fn prefetch_wait_returns_the_pooled_buffer() {
        let _t = ForcedThreads::new(8);
        let mut eng = OffloadEngine::new(true);
        let key = ChunkKey::new(0, BufKind::K, 0);
        let t = Arc::new(Tensor::arange(64));
        eng.put(key, Arc::clone(&t));
        let h = eng.prefetch(&key, false).expect("resident");
        let got = h.wait();
        assert!(Arc::ptr_eq(&got, &t), "prefetch is zero-copy");
        assert!(eng.contains(&key), "keep-mode leaves the host copy");
        let h2 = eng.prefetch(&key, true).expect("resident");
        assert!(Arc::ptr_eq(&h2.wait(), &t));
        assert!(eng.is_empty());
        assert_eq!(eng.stats().fetches, 2);
        eng.drain();
    }

    #[test]
    #[should_panic(expected = "prefetched twice")]
    fn double_prefetch_without_wait_is_a_bug() {
        let mut eng = OffloadEngine::new(true);
        let key = ChunkKey::new(0, BufKind::V, 3);
        eng.put(key, Arc::new(Tensor::zeros(&[8])));
        let _first = eng.prefetch(&key, false).expect("resident");
        // still un-waited -> scheduler bug
        let _second = eng.prefetch(&key, false);
    }

    #[test]
    fn prefetch_missing_chunk_is_none_and_clears_pending() {
        let mut eng = OffloadEngine::new(true);
        let key = ChunkKey::new(7, BufKind::Q, 1);
        assert!(eng.prefetch(&key, true).is_none());
        // the failed prefetch must not leave `key` marked in flight
        eng.put(key, Arc::new(Tensor::zeros(&[4])));
        let h = eng.prefetch(&key, true).expect("resident now");
        assert_eq!(h.wait().numel(), 4);
    }

    #[test]
    fn sync_and_async_paths_keep_identical_stats() {
        let run = |prefetch: bool| {
            let _t = ForcedThreads::new(8);
            let mut eng = OffloadEngine::new(prefetch);
            for i in 0..4usize {
                eng.put(ChunkKey::new(0, BufKind::K, i), Arc::new(Tensor::ones(&[16])));
            }
            for i in 0..4usize {
                let key = ChunkKey::new(0, BufKind::K, i);
                if prefetch {
                    eng.prefetch(&key, true).expect("resident").wait();
                } else {
                    eng.fetch(&key, true).expect("resident");
                }
            }
            eng.drain();
            eng.stats()
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn bf16_engine_sync_async_stats_match() {
        // bf16 transfers keep the sync/async stats-parity guarantee, and
        // the engine's modeled pass streams the stored (half-size) repr.
        let run = |prefetch: bool| {
            let _t = ForcedThreads::new(8);
            let mut eng = OffloadEngine::new(prefetch);
            eng.set_payload_bf16(true);
            for i in 0..4usize {
                eng.put(ChunkKey::new(0, BufKind::K, i), Arc::new(Tensor::ones(&[16])));
            }
            for i in 0..4usize {
                let key = ChunkKey::new(0, BufKind::K, i);
                if prefetch {
                    eng.prefetch(&key, true).expect("resident").wait();
                } else {
                    eng.fetch(&key, true).expect("resident");
                }
            }
            eng.drain();
            eng.stats()
        };
        let stats = run(false);
        assert_eq!(stats, run(true));
        assert_eq!(stats.bytes_offloaded, 4 * 16 * 2, "bf16 wire bytes");
        assert_eq!(stats.bytes_fetched, 4 * 16 * 2);
    }

    #[test]
    fn handle_drop_without_wait_still_synchronizes() {
        let _t = ForcedThreads::new(8);
        let mut eng = OffloadEngine::new(true);
        let key = ChunkKey::new(2, BufKind::DQ, 0);
        eng.put(key, Arc::new(Tensor::zeros(&[32])));
        drop(eng.prefetch(&key, false));
        // pending cleared -> a fresh prefetch of the same key is legal
        let h = eng.prefetch(&key, true).expect("resident");
        assert_eq!(h.wait().numel(), 32);
        eng.drain();
    }
}
