//! FPDT as a plannable [`Strategy`]: analytic memory model + simulated
//! pipeline timing, comparable head-to-head with the baselines in
//! `fpdt-parallel`. This powers Tables 1/3 and Figures 1/11/12.

use crate::pipeline::{simulate_block, PipelineOpts};
use fpdt_model::memory::{
    loss_spike_bytes, static_bytes, suggested_loss_chunks, BlockActivations, BF16,
};
use fpdt_parallel::zero::ZeroStage;
use fpdt_parallel::{StepEstimate, Strategy, TrainSetup};
use fpdt_sim::cost::CostModel;

/// The Fully Pipelined Distributed Transformer strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fpdt {
    /// Tokens per gathered sequence chunk (paper default: 64K, §5.3).
    pub chunk_tokens: u64,
    /// Cache idle chunks in host memory ("FPDT w. offload").
    pub offload: bool,
    /// Double-buffer prefetching across the three streams.
    pub double_buffer: bool,
    /// ZeRO stage for model state (the paper pairs FPDT with ZeRO-3).
    pub zero: ZeroStage,
}

impl Fpdt {
    /// The paper's configuration: 64K chunks, offload, double buffering,
    /// ZeRO-3 (+ activation checkpointing with CPU offload, which the
    /// memory model assumes).
    pub fn paper_default() -> Self {
        Fpdt {
            chunk_tokens: 64 * 1024,
            offload: true,
            double_buffer: true,
            zero: ZeroStage::Three,
        }
    }

    /// FPDT with chunking only, no host offload ("FPDT w. chunking" in
    /// Figure 11 — OOMs earlier, same MFU).
    pub fn chunking_only() -> Self {
        Fpdt {
            offload: false,
            ..Self::paper_default()
        }
    }

    /// Number of chunks at a given global sequence length.
    pub fn chunk_count(&self, seq: u64) -> usize {
        (seq.div_ceil(self.chunk_tokens)).max(1) as usize
    }

    fn pipeline_opts(&self, seq: u64) -> PipelineOpts {
        PipelineOpts {
            chunks: self.chunk_count(seq),
            offload: self.offload,
            double_buffer: self.double_buffer,
            ..PipelineOpts::paper(1)
        }
    }
}

impl Default for Fpdt {
    fn default() -> Self {
        Self::paper_default()
    }
}

impl Strategy for Fpdt {
    fn name(&self) -> String {
        if self.offload {
            "FPDT w. double buffer".to_string()
        } else {
            "FPDT w. chunking".to_string()
        }
    }

    fn estimate(&self, setup: &TrainSetup) -> StepEstimate {
        let p = setup.world();
        let m = &setup.model;
        let cost = CostModel::new(setup.cluster.clone());
        let seq = setup.seq_len * setup.batch;
        let s_local = seq.div_ceil(p as u64);
        let u = self.chunk_count(seq) as u64;
        let act = BlockActivations::new(m, s_local);
        let unit = BF16 * s_local * m.hidden as u64;
        let chunk_unit = unit / u;

        // --- time: simulate one block's pipelined fwd+bwd ---
        let rep = simulate_block(m, &setup.cluster, seq, self.pipeline_opts(seq))
            .expect("valid pipeline configuration");
        let block_time = rep.fwd_seconds + rep.bwd_seconds;
        // Loss head: chunked vocabulary projection (fwd + bwd GEMMs).
        let loss_time = cost.gemm_time(6.0 * s_local as f64 * m.hidden as f64 * m.vocab as f64);
        // ZeRO parameter traffic serializes with per-layer compute.
        let zero_comm = self.zero.comm_seconds(m, &cost, p);
        let step_time = m.layers as f64 * block_time
            + zero_comm
            + loss_time
            + fpdt_parallel::PER_STEP_FRAMEWORK_SECONDS;

        // --- memory ---
        let static_hbm =
            static_bytes(m, self.zero.shard_spec(p)) + self.zero.live_param_overhead(m);
        let working = if self.offload {
            act.fwd_chunked_offload(u).max(act.bwd_chunked_offload(u))
        } else {
            act.fwd_chunked(u).max(act.bwd_chunked(u))
        };
        // Residual stream chunks in flight (input + output double buffer).
        let residual = 4 * chunk_unit.max(1);
        let loss_hbm = loss_spike_bytes(s_local, m.vocab as u64, suggested_loss_chunks(m));
        let activation_hbm = working + residual + loss_hbm;

        // --- host memory ---
        // With activation checkpointing + CPU offload, host holds one
        // hidden checkpoint per layer plus the *current* block's streamed
        // QKV/output chunks (previous blocks' caches are dropped once the
        // block completes; backward re-materializes them chunk-wise).
        let host_per_gpu = if self.offload {
            m.layers as u64 * unit
                + ((act.offload_host_bytes_per_layer() as f64) + 3.0 * unit as f64) as u64
        } else {
            // checkpoints still offloaded (the paper enables OC everywhere)
            m.layers as u64 * unit
        };
        let host_per_node = host_per_gpu * setup.cluster.node.gpus as u64;

        StepEstimate::from_parts(setup, step_time, static_hbm, activation_hbm, host_per_node)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fpdt_model::config::ModelConfig;
    use fpdt_parallel::ulysses::Ulysses;
    use fpdt_parallel::{max_seq_len, megatron::MegatronSp};
    use fpdt_sim::hw::ClusterSpec;

    const K: u64 = 1024;
    const M: u64 = 1024 * 1024;

    #[test]
    fn abstract_headline_8b_2m_on_4_gpus() {
        // Abstract: "we can now train 8B LLM with 2 million sequence
        // length on only 4 GPUs".
        let best = max_seq_len(
            &Fpdt::paper_default(),
            &ModelConfig::llama3_8b(),
            &ClusterSpec::a100_80g(1, 4),
        )
        .unwrap();
        assert!(best >= 2 * M, "got {}K", best / K);
    }

    #[test]
    fn table1_70b_needs_many_gpus() {
        // Table 1: the 70B model cannot fit on 8x80G at all, trains ~1M on
        // 16 and ~4M on 32.
        let m = ModelConfig::llama_70b();
        let fpdt = Fpdt::paper_default();
        assert_eq!(max_seq_len(&fpdt, &m, &ClusterSpec::a100_80g(2, 4)), None);
        let on16 = max_seq_len(&fpdt, &m, &ClusterSpec::a100_80g(4, 4)).unwrap();
        assert!((512 * K..=2 * M).contains(&on16), "16 GPUs: {}K", on16 / K);
        let on32 = max_seq_len(&fpdt, &m, &ClusterSpec::a100_80g(8, 4)).unwrap();
        assert!(on32 > on16, "more nodes, more context");
        assert!((2 * M..=8 * M).contains(&on32), "32 GPUs: {}K", on32 / K);
    }

    #[test]
    fn fpdt_extends_context_8x_or_more_over_baselines() {
        // The headline claim: up to 16x longer context than Megatron-SP /
        // Ulysses on the same hardware; require at least 4x everywhere.
        for model in [ModelConfig::gpt_2_7b(), ModelConfig::llama3_8b()] {
            let cluster = ClusterSpec::a100_80g(2, 4);
            let fpdt = max_seq_len(&Fpdt::paper_default(), &model, &cluster).unwrap();
            let uly = max_seq_len(&Ulysses::paper_baseline(), &model, &cluster).unwrap();
            let meg = max_seq_len(&MegatronSp::paper_baseline(), &model, &cluster).unwrap();
            assert!(
                fpdt >= 4 * uly,
                "{}: fpdt {}K vs ulysses {}K",
                model.name,
                fpdt / K,
                uly / K
            );
            assert!(
                fpdt >= 4 * meg,
                "{}: fpdt {}K vs megatron {}K",
                model.name,
                fpdt / K,
                meg / K
            );
        }
    }

    #[test]
    fn offload_beats_chunking_only_in_max_context() {
        let m = ModelConfig::gpt_6_7b();
        let cluster = ClusterSpec::a100_80g(1, 4);
        let with = max_seq_len(&Fpdt::paper_default(), &m, &cluster).unwrap();
        let without = max_seq_len(&Fpdt::chunking_only(), &m, &cluster).unwrap();
        assert!(
            with > without,
            "offload {}K vs chunking {}K",
            with / K,
            without / K
        );
    }

    #[test]
    fn mfu_over_half_at_multi_million_context() {
        // Abstract: "maintaining over 55% of MFU" — accept >=0.45 from the
        // simulator, and check it beats the Ulysses baseline at its own
        // maximum length.
        let m = ModelConfig::llama3_8b();
        let cluster = ClusterSpec::a100_80g(1, 4);
        let setup = TrainSetup::new(m, cluster, 2 * M);
        let e = Fpdt::paper_default().estimate(&setup);
        assert!(e.fits);
        assert!(e.mfu > 0.45, "mfu {}", e.mfu);
    }

    #[test]
    fn host_memory_scales_with_context() {
        let m = ModelConfig::llama3_8b();
        let cluster = ClusterSpec::a100_80g(1, 4);
        let short =
            Fpdt::paper_default().estimate(&TrainSetup::new(m.clone(), cluster.clone(), 256 * K));
        let long = Fpdt::paper_default().estimate(&TrainSetup::new(m, cluster, M));
        assert!(long.host_bytes_per_node >= 3 * short.host_bytes_per_node);
    }

    #[test]
    fn chunk_count_rounds_up() {
        let f = Fpdt::paper_default();
        assert_eq!(f.chunk_count(64 * K), 1);
        assert_eq!(f.chunk_count(65 * K), 2);
        assert_eq!(f.chunk_count(2 * M), 32);
        assert_eq!(f.chunk_count(1), 1);
    }

    #[test]
    fn names_distinguish_variants() {
        assert_ne!(Fpdt::paper_default().name(), Fpdt::chunking_only().name());
    }
}
