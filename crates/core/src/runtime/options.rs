//! The single front door for every runtime knob.
//!
//! Before this module, tuning was scattered: the executor carried its own
//! `offload`/`prefetch` pair, `TrainConfig` had its own optional override,
//! the kernel pool read `FPDT_THREADS`, the tensor ops read
//! `FPDT_PAR_THRESHOLD`, and the offload stream read `FPDT_PREFETCH` —
//! each with its own parsing. [`RuntimeOptions`] collapses them into one
//! builder with one documented [`RuntimeOptions::from_env`], so "what is
//! this run actually configured to do?" has a single answer. (The legacy
//! `ExecOpts` pair and its `From` shims are gone; the builder is the one
//! options surface.)
//!
//! Every knob except `payload_bf16` is a *pure system* toggle: losses,
//! gradients, and communication statistics are bitwise identical across
//! all settings — the flags only move work between threads and streams.
//! `payload_bf16` is the one numerics-affecting knob: offloaded KV and
//! all-to-all payloads round through bf16 (half the wire bytes; compute
//! stays f32), so results match the f32 run only to bf16 tolerance while
//! the *schedule* (transfer/message counts, chunk order) stays identical.
//!
//! ## Environment variables
//!
//! | Variable             | Effect                                       | Default |
//! |----------------------|----------------------------------------------|---------|
//! | `FPDT_PREFETCH`      | offload copy stream (`0`/`false`/`off` = no) | on      |
//! | `FPDT_COMM_ASYNC`    | all-to-all comm stream (same syntax)         | on      |
//! | `FPDT_BALANCE`       | causal load-balanced tile schedule (same)    | on      |
//! | `FPDT_BF16`          | bf16 offload/all-to-all payloads (same)      | off     |
//! | `FPDT_THREADS`       | kernel pool thread budget                    | num CPUs|
//! | `FPDT_PAR_THRESHOLD` | min elements before kernels split            | 4096    |
//! | `FPDT_COMM_RETRIES`  | replay budget for transient collective faults| 0       |
//! | `FPDT_FAULT_INJECT`  | transient faults armed per training segment  | 0       |
//! | `FPDT_CKPT_DIR`      | default checkpoint directory (string)        | unset   |

/// Parses the shared flag syntax: unset means `default`; `0`, `false`,
/// or `off` disable; any other value enables.
///
/// The actual `std::env` read lives in [`fpdt_tensor::env`] — the
/// workspace's shared strict-parse primitives — so both layers accept
/// exactly the same spellings. This module stays the one place *runtime*
/// knobs are interpreted; `fpdt-lint`'s `env-outside-options` rule pins
/// raw reads to the documented entry points.
pub(crate) fn env_flag(name: &str, default: bool) -> bool {
    fpdt_tensor::env::flag(name, default)
}

/// Reads a count-valued knob strictly (trimmed decimal `>= 1`), warning
/// once and falling back to `None` on anything malformed.
fn env_usize(name: &str) -> Option<usize> {
    fpdt_tensor::env::usize_knob(name)
}

/// Reads a budget-valued knob strictly (trimmed decimal, `0` allowed),
/// warning once and falling back to `None` on anything malformed.
fn env_budget(name: &str) -> Option<usize> {
    fpdt_tensor::env::budget_knob(name)
}

/// The default checkpoint directory, from `FPDT_CKPT_DIR` (trimmed;
/// empty/whitespace warns once and reads as unset). Lives here — not in
/// [`RuntimeOptions`] — so the options struct stays `Copy` across the
/// autotune grid; `Trainer::checkpoint_default` is the consumer.
pub fn env_ckpt_dir() -> Option<std::path::PathBuf> {
    fpdt_tensor::env::string_knob("FPDT_CKPT_DIR").map(std::path::PathBuf::from)
}

/// Every runtime knob, in one place, with a builder for overrides.
///
/// Construct with [`RuntimeOptions::from_env`] (or `Default`, which is
/// the same), then chain `with_*` calls:
///
/// ```
/// use fpdt_core::runtime::RuntimeOptions;
///
/// let opts = RuntimeOptions::from_env()
///     .with_offload(true)
///     .with_comm_async(false);
/// assert!(opts.offload && !opts.comm_async);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RuntimeOptions {
    /// Cache attention chunks in the host pool ("CPU DRAM") instead of a
    /// device-side map. Observable only through transfer statistics.
    pub offload: bool,
    /// Double-buffer host transfers on the asynchronous copy stream
    /// (paper Figure 13). Only meaningful with `offload`.
    pub prefetch: bool,
    /// Post per-chunk all-to-alls on the asynchronous communication
    /// stream, so chunk `i+1`'s wire time hides behind chunk `i`'s
    /// compute. `FPDT_COMM_ASYNC`.
    pub comm_async: bool,
    /// Causal load-balanced tile schedule (`FPDT_BALANCE`): the executor
    /// decomposes each chunk's attention into `(q_chunk, kv_chunk)` tiles
    /// and equalizes per-slot work — eager fused-QKV posts, cross-chunk
    /// KV prefetch, and a quota-spilled Figure-7 backward. Every
    /// accumulation order is preserved, so results, `PoolStats`, and
    /// `CommStats` are bitwise identical to the sequential schedule.
    pub balanced: bool,
    /// Move HostPool-offloaded KV chunks and all-to-all payloads as bf16
    /// (half the wire bytes; compute stays f32). `FPDT_BF16`. The one
    /// knob that affects numerics — see the module docs.
    pub payload_bf16: bool,
    /// Kernel pool thread budget override (`None` = leave the pool at its
    /// `FPDT_THREADS`-derived setting).
    pub threads: Option<usize>,
    /// Parallel-split threshold override (`None` = leave the tensor ops
    /// at their `FPDT_PAR_THRESHOLD`-derived setting).
    pub par_threshold: Option<usize>,
    /// Replay budget for transient collective faults (`FPDT_COMM_RETRIES`,
    /// default 0 = fail fast): how many extra attempts each collective
    /// gets before the step aborts and rolls back. Recovery re-runs the
    /// identical collective, so results are bitwise unchanged by retries.
    pub comm_retries: usize,
    /// Transient faults armed per training segment (`FPDT_FAULT_INJECT`,
    /// default 0) — the fault-injection harness the recovery CI leg
    /// drives. Each armed fault fails one grad-reduction collective
    /// attempt before any bytes move; with `comm_retries` at least this
    /// large, training completes with identical results.
    pub fault_inject: usize,
}

impl RuntimeOptions {
    /// Reads every `FPDT_*` knob — the one documented parse point (see
    /// the module table). `threads`/`par_threshold` are `Some` only when
    /// their variable is set: the kernel layers already initialize
    /// themselves from the same variables, so `None` means "leave the
    /// pool alone" rather than "reset to default".
    pub fn from_env() -> Self {
        RuntimeOptions {
            offload: false,
            prefetch: env_flag("FPDT_PREFETCH", true),
            comm_async: env_flag("FPDT_COMM_ASYNC", true),
            balanced: env_flag("FPDT_BALANCE", true),
            payload_bf16: env_flag("FPDT_BF16", false),
            threads: env_usize("FPDT_THREADS"),
            par_threshold: env_usize("FPDT_PAR_THRESHOLD"),
            comm_retries: env_budget("FPDT_COMM_RETRIES").unwrap_or(0),
            fault_inject: env_budget("FPDT_FAULT_INJECT").unwrap_or(0),
        }
    }

    /// Sets host offload on or off.
    #[must_use]
    pub fn with_offload(mut self, offload: bool) -> Self {
        self.offload = offload;
        self
    }

    /// Sets the offload copy stream on or off.
    #[must_use]
    pub fn with_prefetch(mut self, prefetch: bool) -> Self {
        self.prefetch = prefetch;
        self
    }

    /// Sets the asynchronous communication stream on or off.
    #[must_use]
    pub fn with_comm_async(mut self, comm_async: bool) -> Self {
        self.comm_async = comm_async;
        self
    }

    /// Sets the causal load-balanced tile schedule on or off.
    #[must_use]
    pub fn with_balanced(mut self, balanced: bool) -> Self {
        self.balanced = balanced;
        self
    }

    /// Sets bf16 offload/all-to-all payloads on or off.
    #[must_use]
    pub fn with_payload_bf16(mut self, payload_bf16: bool) -> Self {
        self.payload_bf16 = payload_bf16;
        self
    }

    /// Overrides the kernel pool thread budget.
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads);
        self
    }

    /// Overrides the parallel-split threshold.
    #[must_use]
    pub fn with_par_threshold(mut self, par_threshold: usize) -> Self {
        self.par_threshold = Some(par_threshold);
        self
    }

    /// Sets the transient-fault replay budget.
    #[must_use]
    pub fn with_comm_retries(mut self, comm_retries: usize) -> Self {
        self.comm_retries = comm_retries;
        self
    }

    /// Arms `fault_inject` transient faults per training segment (the
    /// fault-injection harness; 0 disables).
    #[must_use]
    pub fn with_fault_inject(mut self, fault_inject: usize) -> Self {
        self.fault_inject = fault_inject;
        self
    }

    /// Probes, fits, and searches the runtime knob space for `workload`
    /// (see [`crate::runtime::autotune`]), returning the
    /// predicted-fastest options. The chunk count the search picked
    /// travels separately (it lives in `Mode::Fpdt`, not here) — use
    /// [`crate::runtime::autotune::autotune`] directly when you need the
    /// full [`crate::runtime::AutotuneOutcome`].
    pub fn autotune(workload: &super::autotune::Workload) -> Self {
        super::autotune::autotune(workload).best.config.options()
    }

    /// Pushes `threads`/`par_threshold` overrides into the process-wide
    /// kernel settings, returning the previous `(threads, par_threshold)`
    /// so callers can restore them. `None` fields leave the current
    /// setting untouched (but its previous value is still reported).
    pub fn apply_kernel_globals(&self) -> (usize, usize) {
        let prev_threads = match self.threads {
            Some(n) => rayon::pool::set_threads(n),
            None => rayon::pool::current_threads(),
        };
        let prev_threshold = match self.par_threshold {
            Some(n) => fpdt_tensor::par::set_par_threshold(n),
            None => fpdt_tensor::par::par_threshold(),
        };
        (prev_threads, prev_threshold)
    }
}

impl Default for RuntimeOptions {
    fn default() -> Self {
        Self::from_env()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_chains_every_knob() {
        let opts = RuntimeOptions::from_env()
            .with_offload(true)
            .with_prefetch(false)
            .with_comm_async(false)
            .with_balanced(false)
            .with_payload_bf16(true)
            .with_threads(3)
            .with_par_threshold(1)
            .with_comm_retries(2)
            .with_fault_inject(1);
        assert!(opts.offload && !opts.prefetch && !opts.comm_async);
        assert!(!opts.balanced);
        assert!(opts.payload_bf16);
        assert_eq!(opts.threads, Some(3));
        assert_eq!(opts.par_threshold, Some(1));
        assert_eq!(opts.comm_retries, 2);
        assert_eq!(opts.fault_inject, 1);
    }

    #[test]
    fn retry_budget_env_allows_zero_and_rejects_garbage() {
        std::env::set_var("FPDT_TEST_RETRIES", "0");
        assert_eq!(env_budget("FPDT_TEST_RETRIES"), Some(0), "0 is a budget");
        std::env::set_var("FPDT_TEST_RETRIES", "3");
        assert_eq!(env_budget("FPDT_TEST_RETRIES"), Some(3));
        std::env::set_var("FPDT_TEST_RETRIES", "many");
        assert_eq!(env_budget("FPDT_TEST_RETRIES"), None, "malformed falls back");
        std::env::remove_var("FPDT_TEST_RETRIES");
        assert_eq!(env_budget("FPDT_TEST_RETRIES"), None);
    }

    #[test]
    fn ckpt_dir_env_is_trimmed_and_strict() {
        // env_ckpt_dir reads the real variable; exercise the underlying
        // strict parse on a dedicated name to avoid races, then the real
        // accessor with the variable unset.
        use fpdt_tensor::env::string_knob;
        std::env::set_var("FPDT_TEST_CKPT_DIR", " ckpts/run1 ");
        assert_eq!(string_knob("FPDT_TEST_CKPT_DIR").as_deref(), Some("ckpts/run1"));
        std::env::set_var("FPDT_TEST_CKPT_DIR", "   ");
        assert_eq!(string_knob("FPDT_TEST_CKPT_DIR"), None, "empty is unset");
        std::env::remove_var("FPDT_TEST_CKPT_DIR");
    }

    #[test]
    fn flag_syntax_is_shared() {
        // A dedicated test variable avoids racing other tests that read
        // the real knobs concurrently.
        for (val, want) in [
            (Some("0"), false),
            (Some("false"), false),
            (Some("off"), false),
            (Some("1"), true),
            (Some("yes"), true),
            (None, true),
        ] {
            match val {
                Some(v) => std::env::set_var("FPDT_TEST_FLAG", v),
                None => std::env::remove_var("FPDT_TEST_FLAG"),
            }
            assert_eq!(env_flag("FPDT_TEST_FLAG", true), want, "{val:?}");
        }
        std::env::remove_var("FPDT_TEST_FLAG");
        assert!(!env_flag("FPDT_TEST_FLAG", false), "default respected");
    }

    #[test]
    fn strict_parse_rejects_empty_garbage_zero() {
        // The runtime layer delegates to the shared kernel-layer parser;
        // assert the delegated surface keeps the strict contract.
        use fpdt_tensor::env::parse_usize_strict;
        assert!(parse_usize_strict("").is_err(), "empty");
        assert!(parse_usize_strict("   ").is_err(), "whitespace");
        assert!(parse_usize_strict("eight").is_err(), "garbage");
        assert!(parse_usize_strict("3.5").is_err(), "float");
        assert!(parse_usize_strict("-2").is_err(), "negative");
        assert!(parse_usize_strict("0").is_err(), "zero");
        assert_eq!(parse_usize_strict("8"), Ok(8));
        assert_eq!(parse_usize_strict(" 16 "), Ok(16), "trimmed");
    }

    #[test]
    fn malformed_env_counts_fall_back_to_default() {
        // Dedicated variable names so concurrent tests reading the real
        // knobs are untouched; each malformed shape must read as unset.
        for (i, bad) in ["", "garbage", "0", "-1"].iter().enumerate() {
            let name = format!("FPDT_TEST_COUNT_{i}");
            std::env::set_var(&name, bad);
            assert_eq!(env_usize(&name), None, "{bad:?} must fall back");
            std::env::remove_var(&name);
        }
        std::env::set_var("FPDT_TEST_COUNT_OK", "4");
        assert_eq!(env_usize("FPDT_TEST_COUNT_OK"), Some(4));
        std::env::remove_var("FPDT_TEST_COUNT_OK");
        assert_eq!(env_usize("FPDT_TEST_COUNT_OK"), None, "unset stays None");
    }

    #[test]
    fn kernel_globals_apply_and_restore() {
        let (t0, p0) = RuntimeOptions::from_env().apply_kernel_globals();
        let (t1, p1) = RuntimeOptions::from_env()
            .with_threads(t0)
            .with_par_threshold(p0)
            .apply_kernel_globals();
        // Identity round trip: applying the previous values reports them
        // back unchanged.
        assert_eq!((t0, p0), (t1, p1));
    }
}
