//! Trace-calibrated autotuning: close the planner↔runtime loop.
//!
//! The paper hand-picks chunk count, stream gating, and thread budget for
//! its testbed; PR 6 showed the "right" choice flips with transfer costs
//! (overlap *loses* at small scale until wire time is realistic). This
//! module makes the configuration self-selecting, in three steps:
//!
//! 1. **Probe** ([`calibrate`]): run a few *serial* training steps
//!    (streams off, so every cost is additive and attributable) per
//!    candidate chunk count, recording wall-clock spans with
//!    [`fpdt_trace::Recorder`]. Serial probes are the cheapest runs that
//!    expose every per-chunk cost — the ChunkFlow recipe.
//! 2. **Fit**: turn the span clouds into [`CostConstants`] — copy GB/s
//!    and per-op overhead from `offload.*` spans
//!    ([`fpdt_trace::fit::fit_linear`]), comm GB/s from `comm.inflight`
//!    spans, attention GFLOP/s from the analytic FLOP count over the
//!    measured kernel time. The same struct a [`ClusterSpec`]-derived
//!    model uses, so fitted and paper-calibrated constants share one
//!    pricing path. [`fpdt_sim::hw::ClusterSpec`]
//! 3. **Search** ([`search`]): describe one training step of every
//!    candidate configuration as a [`StepPlan`] — per-chunk copy, comm
//!    and kernel ops with double-buffer dependencies, streams gated per
//!    candidate — and let the calibrated discrete-event engine price it.
//!    The predicted-fastest candidate becomes the tuned
//!    [`RuntimeOptions`].
//!
//! `payload_bf16` is the one numerics-affecting knob, so it joins the
//! search space only when [`Workload::allow_bf16`] opts in; everything
//! else tuning can change is pure schedule. The fitted model serializes
//! to a `calibration.json` artifact ([`Calibration::to_json`]) so a
//! probe is reusable across runs.
//!
//! [`ClusterSpec`]: fpdt_sim::hw::ClusterSpec

use crate::runtime::dist::{train_traced, Mode, TrainConfig};
use crate::runtime::options::RuntimeOptions;
use fpdt_model::config::ModelConfig;
use fpdt_sim::cost::CostConstants;
use fpdt_sim::query::{PlannedWork, StepPlan};
use fpdt_trace::fit::{fit_linear, samples_for, LinearFit};
use fpdt_trace::Recorder;
use serde::{Serialize, Value};
use std::time::Instant;

/// Span prefixes of the offload copy stream (both directions).
const COPY_PREFIXES: &[&str] = &["offload.put", "offload.fetch", "offload.prefetch"];
/// Span prefixes of communication wire occupancy.
const COMM_PREFIXES: &[&str] = &["comm.inflight"];
/// Span prefixes of pure attention kernel time (leaves only — these
/// never contain nested transfer spans).
const ATTN_PREFIXES: &[&str] = &["kernel.attn.", "attn.bwd.tile"];

/// The training job the autotuner optimizes for, plus the candidate grid
/// it may pick from.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Model architecture.
    pub model: ModelConfig,
    /// Global sequence length per step.
    pub seq: usize,
    /// Ranks.
    pub world: usize,
    /// Training steps per probe run (2-3 suffice; the first step warms
    /// caches and is averaged in deliberately, because measured runs pay
    /// it too).
    pub probe_steps: usize,
    /// Candidate chunk counts (`seq` must divide by `world * chunks` for
    /// each).
    pub chunk_candidates: Vec<usize>,
    /// Candidate kernel-pool thread budgets (empty = keep the current
    /// pool size; each extra candidate costs one microprobe, not a full
    /// training run).
    pub thread_candidates: Vec<usize>,
    /// Let the search flip `payload_bf16`. Off by default: bf16 payloads
    /// are the one knob that changes numerics, so callers must opt into
    /// trading exactness for speed (each bf16 chunk candidate adds one
    /// probe run).
    pub allow_bf16: bool,
    /// Seed for probe weights/data.
    pub seed: u64,
}

impl Workload {
    /// A small probe workload over `model`/`seq` with the default
    /// candidate grid: chunk counts 2 and 4, current thread budget,
    /// schedule-only knobs.
    pub fn new(model: ModelConfig, seq: usize) -> Self {
        Workload {
            model,
            seq,
            world: 1,
            probe_steps: 2,
            chunk_candidates: vec![2, 4],
            thread_candidates: Vec::new(),
            allow_bf16: false,
            seed: 42,
        }
    }
}

/// Measured serial per-step profile of one `(chunks, payload_bf16)`
/// cell. Every duration is a per-step average in µs; counts and bytes
/// are per-step averages too.
#[derive(Debug, Clone, Serialize)]
pub struct CellProfile {
    /// Chunk count probed.
    pub chunks: usize,
    /// Whether payloads moved as bf16.
    pub payload_bf16: bool,
    /// Serial step wall time.
    pub step_us: f64,
    /// Offload copy ops per step.
    pub copy_count: f64,
    /// Offload wire bytes per step.
    pub copy_bytes: f64,
    /// Offload busy time per step.
    pub copy_us: f64,
    /// Collective payloads per step.
    pub comm_count: f64,
    /// Collective wire bytes per step.
    pub comm_bytes: f64,
    /// Collective wire occupancy per step.
    pub comm_us: f64,
    /// Pure attention kernel time per step.
    pub attn_us: f64,
    /// Everything else (MLP, optimizer, data, framework) per step.
    pub lump_us: f64,
    /// Fraction of the engine's *ideal* stream saving the runtime
    /// delivered on this chunk count's dual-stream anchor probe, in
    /// `[0, 1]`. Anchored per chunk count because stage granularity
    /// changes how well double buffering hides transfers — a 2-chunk
    /// anchor does not transfer to a 4-chunk pipeline. The bf16 cell
    /// shares its chunk count's f32 anchor.
    pub overlap_efficiency: f64,
    /// The same anchor measured with the balanced tile schedule on.
    /// Anchored separately because the balanced runtime's equal slots
    /// and eager posting typically deliver a larger fraction of the
    /// ideal saving — pricing balanced candidates with the sequential
    /// anchor systematically overestimates their step time and makes
    /// the tuner mis-rank the schedule knob.
    pub balanced_overlap_efficiency: f64,
}

/// A fitted cost model plus the per-cell workload profiles it was fitted
/// from — everything [`search`] needs, serializable as the
/// `calibration.json` artifact.
#[derive(Debug, Clone, Serialize)]
pub struct Calibration {
    /// Fitted rate/overhead constants (copy rate → `pcie_bw`, comm rate
    /// → `nvlink_bw`, kernel rate → `attention_flops`).
    pub constants: CostConstants,
    /// Sequence length probed.
    pub seq: usize,
    /// Steps per probe run.
    pub probe_steps: usize,
    /// Kernel-pool threads during the probe.
    pub probe_threads: usize,
    /// `(threads, duration multiplier)` per thread candidate, measured
    /// by a matmul microprobe relative to `probe_threads`.
    pub thread_rates: Vec<(usize, f64)>,
    /// Mean of the per-cell anchors (see
    /// [`CellProfile::overlap_efficiency`]), kept for reporting; the
    /// search prices each candidate with its own cell's anchor. The
    /// discrete-event engine hides transfer time perfectly behind
    /// compute; real streams pay hand-off latency, imperfect lookahead,
    /// and core contention — the measured anchors scale every async
    /// prediction down to what the runtime can actually do.
    pub overlap_efficiency: f64,
    /// Serial profiles per `(chunks, bf16)` cell.
    pub cells: Vec<CellProfile>,
}

/// One point of the search space.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CandidateConfig {
    /// Sequence chunks per rank.
    pub chunks: usize,
    /// Offload copy stream on/off.
    pub prefetch: bool,
    /// Asynchronous comm stream on/off.
    pub comm_async: bool,
    /// Causal load-balanced tile schedule on/off.
    pub balanced: bool,
    /// bf16 wire payloads on/off.
    pub payload_bf16: bool,
    /// Kernel-pool thread budget.
    pub threads: usize,
}

impl CandidateConfig {
    /// The runtime options this candidate stands for (offload on — the
    /// autotuner tunes the offloaded FPDT pipeline).
    pub fn options(&self) -> RuntimeOptions {
        RuntimeOptions::from_env()
            .with_offload(true)
            .with_prefetch(self.prefetch)
            .with_comm_async(self.comm_async)
            .with_balanced(self.balanced)
            .with_payload_bf16(self.payload_bf16)
            .with_threads(self.threads)
    }
}

/// A candidate with its predicted step makespan.
#[derive(Debug, Clone, Copy)]
pub struct Evaluated {
    /// The configuration.
    pub config: CandidateConfig,
    /// Step makespan the calibrated simulator predicts, µs.
    pub predicted_step_us: f64,
}

/// The autotuner's full result: the calibration it fitted, every
/// candidate it priced, and the predicted-fastest pick.
#[derive(Debug, Clone)]
pub struct AutotuneOutcome {
    /// The fitted model (persist with [`Calibration::to_json`]).
    pub calibration: Calibration,
    /// Every candidate evaluated, in grid order.
    pub evaluated: Vec<Evaluated>,
    /// The predicted-fastest candidate.
    pub best: Evaluated,
}

/// Analytic attention FLOPs of one training step (forward ≈ 2·s²·h per
/// layer causal-halved, backward ≈ 2.5× forward). The absolute constant
/// cancels — it is only the yardstick [`calibrate`] fits
/// `attention_flops` against and [`plan_for`] converts back through — but
/// its *shape* (quadratic in sequence, linear in layers/width, chunk-
/// invariant) is what makes the fitted rate transfer across candidates.
fn attn_flops(model: &ModelConfig, seq: usize) -> f64 {
    3.5 * model.layers as f64 * (seq as f64) * (seq as f64) * model.hidden as f64
}

/// One probe training run at the given knobs, fastest-of-3. Neighbor
/// load on a shared host is strictly additive — a burst only ever slows
/// a run — so the fastest of three is the cleanest estimate of the
/// unloaded step the fitted model should predict (a median still
/// carries whatever load the middle run saw, and any probe bias
/// propagates into every prediction built on it; the overlap anchors
/// are *differences* of two probes, where one inflated side flips the
/// fitted efficiency). The returned recorder belongs to the fastest run
/// so its spans stay internally consistent with the reported wall time.
fn probe_run(
    workload: &Workload,
    steps: usize,
    chunks: usize,
    bf16: bool,
    prefetch: bool,
    comm_async: bool,
    balanced: bool,
) -> (f64, Recorder) {
    let cfg = TrainConfig {
        model: workload.model.clone(),
        world: workload.world,
        seq: workload.seq,
        steps,
        lr: 3e-3,
        seed: workload.seed,
        mode: Mode::Fpdt {
            chunks,
            offload: true,
        },
        // Serial probes pin balanced off (with both streams off the
        // schedules carry identical additive costs, so the sequential
        // one is the canonical decomposition); the dual-stream anchor
        // probes run each schedule for real.
        runtime: RuntimeOptions::from_env()
            .with_prefetch(prefetch)
            .with_comm_async(comm_async)
            .with_balanced(balanced)
            .with_payload_bf16(bf16),
        ..TrainConfig::default()
    };
    let mut runs: Vec<(f64, Recorder)> = (0..3)
        .map(|_| {
            let rec = Recorder::new();
            let t0 = Instant::now();
            train_traced(&cfg, Some(&rec));
            (t0.elapsed().as_secs_f64() * 1e6, rec)
        })
        .collect();
    runs.sort_by(|a, b| a.0.total_cmp(&b.0));
    runs.swap_remove(0)
}

/// Runs the serial probes and fits the cost model.
///
/// One short training run per `(chunk candidate × bf16 setting)` cell
/// with both streams off, so step time decomposes additively into copy,
/// comm, attention, and residual ("lump") time. Rates are fitted over
/// the f32 cells' combined span clouds; two extra *dual-stream* probes
/// per chunk candidate (one per tile schedule) anchor the per-cell
/// overlap efficiencies; thread candidates are priced with a matmul
/// microprobe instead of extra training runs.
///
/// # Panics
///
/// Panics on inconsistent workloads (sequence not divisible by
/// `world * chunks`) — same contract as [`train_traced`].
pub fn calibrate(workload: &Workload) -> Calibration {
    let steps = workload.probe_steps.max(1);
    let mut cells = Vec::new();
    let mut copy_samples: Vec<(u64, f64)> = Vec::new();
    let mut comm_samples: Vec<(u64, f64)> = Vec::new();
    let mut attn_us_f32 = Vec::new();

    let bf16_settings: &[bool] = if workload.allow_bf16 {
        &[false, true]
    } else {
        &[false]
    };
    for &chunks in &workload.chunk_candidates {
        for &bf16 in bf16_settings {
            let (wall_us, rec) = probe_run(workload, steps, chunks, bf16, false, false, false);
            let records = rec.records();
            let per_step = 1.0 / steps as f64;
            let copy = fpdt_trace::fit::aggregate(&records, COPY_PREFIXES);
            let comm = fpdt_trace::fit::aggregate(&records, COMM_PREFIXES);
            let attn = fpdt_trace::fit::aggregate(&records, ATTN_PREFIXES);
            let step_us = wall_us * per_step;
            let (copy_us, comm_us, attn_us) = (
                copy.total_us * per_step,
                comm.total_us * per_step,
                attn.total_us * per_step,
            );
            cells.push(CellProfile {
                chunks,
                payload_bf16: bf16,
                step_us,
                copy_count: copy.count as f64 * per_step,
                copy_bytes: copy.total_bytes as f64 * per_step,
                copy_us,
                comm_count: comm.count as f64 * per_step,
                comm_bytes: comm.total_bytes as f64 * per_step,
                comm_us,
                attn_us,
                lump_us: (step_us - copy_us - comm_us - attn_us).max(0.0),
                overlap_efficiency: 1.0,
                balanced_overlap_efficiency: 1.0,
            });
            if !bf16 {
                copy_samples.extend(samples_for(&records, COPY_PREFIXES));
                comm_samples.extend(samples_for(&records, COMM_PREFIXES));
                attn_us_f32.push(attn_us);
            }
        }
    }

    // Rates: least-squares over the probe span clouds; fall back to the
    // simulated-wire (or PCIe-class) bandwidth when a stream moved no
    // bytes at all.
    let default_gbps = {
        let wire = fpdt_trace::wire::link_gbps();
        if wire > 0.0 {
            wire
        } else {
            32.0
        }
    };
    let copy_fit = fit_linear(&copy_samples).unwrap_or(LinearFit {
        overhead_us: 0.0,
        gbps: default_gbps,
    });
    let comm_fit = fit_linear(&comm_samples).unwrap_or(LinearFit {
        overhead_us: 0.0,
        gbps: default_gbps,
    });
    let mean_attn_us = attn_us_f32.iter().sum::<f64>() / attn_us_f32.len().max(1) as f64;
    let attention_flops = if mean_attn_us > 0.0 {
        attn_flops(&workload.model, workload.seq) / (mean_attn_us * 1e-6)
    } else {
        1e12
    };
    let constants = CostConstants {
        gemm_flops: attention_flops,
        attention_flops,
        kernel_overhead: 0.0,
        nvlink_bw: comm_fit.gbps * 1e9,
        pcie_bw: copy_fit.gbps * 1e9,
        ib_bw: comm_fit.gbps * 1e9,
        link_latency: (copy_fit.overhead_us + comm_fit.overhead_us) / 2.0 * 1e-6,
    };

    // Thread microprobe: relative duration of a pool-parallel matmul at
    // each candidate budget (training runs are not repeated per budget).
    let probe_threads = rayon::pool::current_threads();
    let mut thread_rates = Vec::new();
    let mut candidates: Vec<usize> = workload
        .thread_candidates
        .iter()
        .copied()
        .filter(|&t| t > 0)
        .collect();
    if candidates.is_empty() {
        candidates.push(probe_threads);
    }
    let base_us = matmul_probe_us(probe_threads);
    for t in candidates {
        let scale = if t == probe_threads {
            1.0
        } else {
            (matmul_probe_us(t) / base_us).max(0.05)
        };
        thread_rates.push((t, scale));
    }

    // Overlap anchors: one dual-stream f32 probe PER chunk candidate
    // AND PER tile schedule measures how much of the engine's ideal
    // saving the real streams deliver at that stage granularity (a
    // 2-chunk pipeline's hand-off losses say nothing about a 4-chunk
    // one's, and the balanced schedule's equal slots deliver a
    // different fraction than the sequential ramp). Serial predictions
    // are unaffected (zero ideal saving); each async prediction
    // interpolates by its own cell's matching-schedule factor; the
    // bf16 cell shares its chunk count's f32 anchors.
    for &anchor_chunks in &workload.chunk_candidates {
        let anchor_cell = cells
            .iter()
            .find(|c| c.chunks == anchor_chunks && !c.payload_bf16)
            .cloned();
        let Some(cell) = anchor_cell else { continue };
        let serial_pred = plan_for(&constants, &cell, false, false, false, 1.0)
            .makespan(&constants)
            .expect("serial anchor plan prices")
            * 1e6;
        // The efficiency is a *difference* of two wall times — the one
        // statistic with no tolerance for cross-epoch drift — so pair
        // the dual probes with a FRESH serial probe adjacent in time
        // instead of the cell profile measured an epoch earlier: a
        // host-load shift between the epochs would masquerade as
        // overlap (in)efficiency.
        let (serial_wall_us, _) =
            probe_run(workload, steps, anchor_chunks, false, false, false, false);
        let serial_step_us = serial_wall_us / steps as f64;
        for balanced in [false, true] {
            let dual_pred = plan_for(&constants, &cell, true, true, balanced, 1.0)
                .makespan(&constants)
                .expect("dual anchor plan prices")
                * 1e6;
            let ideal_saving = serial_pred - dual_pred;
            if ideal_saving > 1.0 {
                let (dual_wall_us, _) =
                    probe_run(workload, steps, anchor_chunks, false, true, true, balanced);
                let actual_saving = (serial_step_us - dual_wall_us / steps as f64).max(0.0);
                let efficiency = (actual_saving / ideal_saving).clamp(0.0, 1.0);
                for c in cells.iter_mut().filter(|c| c.chunks == anchor_chunks) {
                    if balanced {
                        // Floored at the sequential anchor: equal slots
                        // + eager posting cannot deliver *less* overlap
                        // than the sequential ramp (the runtime bench
                        // gates that), so a lower reading is a host-load
                        // burst landing on this probe, not a signal.
                        c.balanced_overlap_efficiency = efficiency.max(c.overlap_efficiency);
                    } else {
                        c.overlap_efficiency = efficiency;
                    }
                }
            }
        }
    }
    let overlap_efficiency =
        cells.iter().map(|c| c.overlap_efficiency).sum::<f64>() / cells.len().max(1) as f64;

    Calibration {
        constants,
        seq: workload.seq,
        probe_steps: steps,
        probe_threads,
        thread_rates,
        overlap_efficiency,
        cells,
    }
}

/// Wall-clock µs of a few pool-parallel matmuls at `threads` threads
/// (pool restored afterwards).
fn matmul_probe_us(threads: usize) -> f64 {
    let prev = rayon::pool::set_threads(threads);
    let n = 96usize;
    let a = fpdt_tensor::Tensor::from_vec(
        (0..n * n).map(|i| (i % 17) as f32 * 0.25 - 2.0).collect(),
        &[n, n],
    )
    .expect("probe matrix");
    let b = fpdt_tensor::Tensor::from_vec(
        (0..n * n).map(|i| (i % 13) as f32 * 0.125 - 0.75).collect(),
        &[n, n],
    )
    .expect("probe matrix");
    let t0 = Instant::now();
    for _ in 0..8 {
        std::hint::black_box(fpdt_tensor::ops::matmul(&a, &b).expect("probe matmul"));
    }
    let us = t0.elapsed().as_secs_f64() * 1e6;
    rayon::pool::set_threads(prev);
    us.max(1.0)
}

/// Builds the step plan of one candidate from its measured cell profile:
/// `2 × chunks` pipeline stages — forward chunks then Figure-7 backward
/// columns — each with a copy op, a comm op, and a kernel + residual
/// compute pair that waits on its stage's transfers.
///
/// Per-stage transfer and kernel sizes follow the causal triangle rather
/// than a flat mean: forward chunk `i` keep-fetches a *growing* KV
/// prefix (weight `5 + 2i` pool ops) and computes `i + 1` tiles, while
/// backward column `j` drains a *shrinking* sweep (weight
/// `6 + 6(u - j)`, kernels `2.5 (u - j)` tiles). The weights are
/// normalized against the measured per-step totals, so the serial plan
/// still reproduces the probe exactly — only the per-stage distribution
/// (what double buffering can or cannot hide at each slot) changes.
///
/// With `balanced` the backward stages flatten to their mean — the
/// quota-spilled tile schedule's near-equal slots — and the lookahead
/// dependency disappears: the balanced runtime posts every gather and
/// take-fetch up-front instead of one stage ahead.
pub fn plan_for(
    constants: &CostConstants,
    cell: &CellProfile,
    prefetch: bool,
    comm_async: bool,
    balanced: bool,
    compute_scale: f64,
) -> StepPlan {
    let c = constants;
    let u = cell.chunks.max(1);
    let stages = 2 * u;
    let inv = 1.0 / stages as f64;

    // Triangular per-stage weights (forward rising, backward falling).
    let mut copy_w: Vec<f64> = Vec::with_capacity(stages);
    let mut attn_w: Vec<f64> = Vec::with_capacity(stages);
    for i in 0..u {
        copy_w.push((5 + 2 * i) as f64);
        attn_w.push((i + 1) as f64);
    }
    for j in 0..u {
        copy_w.push((6 + 6 * (u - j)) as f64);
        attn_w.push(2.5 * (u - j) as f64);
    }
    if balanced {
        // The balanced schedule equalizes the backward slots (the forward
        // triangle stays arrival-constrained by each chunk's own QKV, so
        // its compute distribution cannot move).
        let flatten = |w: &mut [f64]| {
            let mean = w.iter().sum::<f64>() / w.len() as f64;
            w.iter_mut().for_each(|x| *x = mean);
        };
        flatten(&mut copy_w[u..]);
        flatten(&mut attn_w[u..]);
    }
    let copy_w_sum: f64 = copy_w.iter().sum();
    let attn_w_sum: f64 = attn_w.iter().sum();

    // Measured stream time re-expressed as engine bytes at the fitted
    // rates, so the priced serial plan reproduces the probe exactly and
    // the async plan differs only by what the streams hide.
    let copy_bytes_total = cell.copy_us * 1e-6 * c.pcie_bw;
    let comm_bytes_per_stage = (cell.comm_us * inv * 1e-6 * c.nvlink_bw) as u64;
    let attn_flops_total = cell.attn_us * 1e-6 * c.attention_flops * compute_scale;
    let lump_per_stage = cell.lump_us * inv * 1e-6 * compute_scale;

    let mut plan = StepPlan::new(prefetch, comm_async);
    let mut attn_ids: Vec<usize> = Vec::new();
    for stage in 0..stages {
        // Double-buffer lookahead of one: the sequential runtime posts
        // stage `i`'s transfers while stage `i-1` computes, never all at
        // t=0, so a stage's transfers wait on the kernel two stages back.
        // This bounds predicted overlap at what Figure-13 double
        // buffering can actually deliver. The balanced schedule's eager
        // posting removes the constraint entirely.
        let buffer_dep: Vec<usize> = if balanced || stage < 2 {
            Vec::new()
        } else {
            vec![attn_ids[stage - 2]]
        };
        let copy_bytes = (copy_bytes_total * copy_w[stage] / copy_w_sum) as u64;
        let mut deps = Vec::new();
        if copy_bytes > 0 {
            deps.push(plan.push(
                "offload",
                PlannedWork::Copy { bytes: copy_bytes },
                &buffer_dep,
            ));
        }
        if comm_bytes_per_stage > 0 {
            deps.push(plan.push(
                "a2a",
                PlannedWork::Comm {
                    bytes: comm_bytes_per_stage,
                },
                &buffer_dep,
            ));
        }
        let attn = plan.push(
            "attn",
            PlannedWork::Kernel {
                flops: attn_flops_total * attn_w[stage] / attn_w_sum,
            },
            &deps,
        );
        attn_ids.push(attn);
        plan.push(
            "lump",
            PlannedWork::Fixed {
                seconds: lump_per_stage,
            },
            &[attn],
        );
    }
    plan
}

/// Prices one candidate under the calibration, µs.
///
/// # Panics
///
/// Panics when the candidate's `(chunks, payload_bf16)` cell or thread
/// budget was not part of the calibration grid, or the plan fails to
/// price (both indicate a caller-side grid mismatch).
pub fn predict_step_us(calibration: &Calibration, config: &CandidateConfig) -> f64 {
    let cell = calibration
        .cells
        .iter()
        .find(|cell| cell.chunks == config.chunks && cell.payload_bf16 == config.payload_bf16)
        .expect("candidate cell was probed");
    let compute_scale = calibration
        .thread_rates
        .iter()
        .find(|(t, _)| *t == config.threads)
        .map(|(_, s)| *s)
        .expect("candidate thread budget was microprobed");
    let price = |prefetch: bool, comm_async: bool, balanced: bool| {
        plan_for(
            &calibration.constants,
            cell,
            prefetch,
            comm_async,
            balanced,
            compute_scale,
        )
        .makespan(&calibration.constants)
        .expect("plan prices")
        * 1e6
    };
    // The engine's saving over fully-serial is *ideal* overlap; scale it
    // by the cell's anchor-measured efficiency for the candidate's own
    // tile schedule before claiming it. The serial baseline is
    // schedule-invariant (the balanced topology moves work between
    // stages, never changes the total), so it is always priced
    // sequential.
    let serial = price(false, false, false);
    let gated = price(config.prefetch, config.comm_async, config.balanced);
    let efficiency = if config.balanced {
        cell.balanced_overlap_efficiency
    } else {
        cell.overlap_efficiency
    };
    serial - efficiency * (serial - gated)
}

/// Prices every point of the workload's candidate grid and returns them
/// with the predicted-fastest first in the `best` slot.
///
/// # Panics
///
/// Same conditions as [`predict_step_us`].
pub fn search(calibration: &Calibration, workload: &Workload) -> (Vec<Evaluated>, Evaluated) {
    let thread_candidates: Vec<usize> = calibration.thread_rates.iter().map(|(t, _)| *t).collect();
    let bf16_settings: &[bool] = if workload.allow_bf16 {
        &[false, true]
    } else {
        &[false]
    };
    let mut evaluated = Vec::new();
    for &chunks in &workload.chunk_candidates {
        for &payload_bf16 in bf16_settings {
            for balanced in [false, true] {
                for prefetch in [false, true] {
                    for comm_async in [false, true] {
                        for &threads in &thread_candidates {
                            let config = CandidateConfig {
                                chunks,
                                prefetch,
                                comm_async,
                                balanced,
                                payload_bf16,
                                threads,
                            };
                            evaluated.push(Evaluated {
                                config,
                                predicted_step_us: predict_step_us(calibration, &config),
                            });
                        }
                    }
                }
            }
        }
    }
    let best = *evaluated
        .iter()
        .min_by(|a, b| a.predicted_step_us.total_cmp(&b.predicted_step_us))
        .expect("grid is nonempty");
    (evaluated, best)
}

/// Probe, fit, and search in one call.
///
/// # Panics
///
/// Same conditions as [`calibrate`].
pub fn autotune(workload: &Workload) -> AutotuneOutcome {
    let calibration = calibrate(workload);
    let (evaluated, best) = search(&calibration, workload);
    AutotuneOutcome {
        calibration,
        evaluated,
        best,
    }
}

impl Calibration {
    /// Serializes the calibration (constants + profiles) as pretty JSON —
    /// the `calibration.json` artifact.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("calibration serializes")
    }

    /// Parses a calibration back from [`Calibration::to_json`] output.
    ///
    /// # Errors
    ///
    /// Returns a description of the first syntax error, missing field,
    /// or malformed entry.
    pub fn from_json(text: &str) -> Result<Self, String> {
        let value = serde_json::from_str(text).map_err(|e| e.to_string())?;
        let constants = CostConstants::from_value(get(&value, "constants")?)?;
        let thread_rates = match get(&value, "thread_rates")? {
            Value::Array(items) => items
                .iter()
                .map(|pair| match pair {
                    Value::Array(ab) if ab.len() == 2 => {
                        Ok((num(&ab[0], "threads")? as usize, num(&ab[1], "rate")?))
                    }
                    _ => Err("thread_rates entries must be [threads, rate]".to_string()),
                })
                .collect::<Result<Vec<_>, String>>()?,
            _ => return Err("thread_rates must be an array".to_string()),
        };
        let cells = match get(&value, "cells")? {
            Value::Array(items) => items
                .iter()
                .map(|cell| {
                    let overlap_efficiency =
                        num(get(cell, "overlap_efficiency")?, "overlap_efficiency")?;
                    if !(0.0..=1.0).contains(&overlap_efficiency) {
                        return Err(
                            "cell overlap_efficiency must be within [0, 1]".to_string()
                        );
                    }
                    // Pre-balanced calibration files lack the second
                    // anchor; fall back to the sequential one.
                    let balanced_overlap_efficiency =
                        match get(cell, "balanced_overlap_efficiency") {
                            Ok(v) => {
                                let x = num(v, "balanced_overlap_efficiency")?;
                                if !(0.0..=1.0).contains(&x) {
                                    return Err("cell balanced_overlap_efficiency must be within [0, 1]"
                                        .to_string());
                                }
                                x
                            }
                            Err(_) => overlap_efficiency,
                        };
                    Ok(CellProfile {
                        chunks: num(get(cell, "chunks")?, "chunks")? as usize,
                        payload_bf16: matches!(get(cell, "payload_bf16")?, Value::Bool(true)),
                        step_us: num(get(cell, "step_us")?, "step_us")?,
                        copy_count: num(get(cell, "copy_count")?, "copy_count")?,
                        copy_bytes: num(get(cell, "copy_bytes")?, "copy_bytes")?,
                        copy_us: num(get(cell, "copy_us")?, "copy_us")?,
                        comm_count: num(get(cell, "comm_count")?, "comm_count")?,
                        comm_bytes: num(get(cell, "comm_bytes")?, "comm_bytes")?,
                        comm_us: num(get(cell, "comm_us")?, "comm_us")?,
                        attn_us: num(get(cell, "attn_us")?, "attn_us")?,
                        lump_us: num(get(cell, "lump_us")?, "lump_us")?,
                        overlap_efficiency,
                        balanced_overlap_efficiency,
                    })
                })
                .collect::<Result<Vec<_>, String>>()?,
            _ => return Err("cells must be an array".to_string()),
        };
        let overlap_efficiency = num(
            get(&value, "overlap_efficiency")?,
            "overlap_efficiency",
        )?;
        if !(0.0..=1.0).contains(&overlap_efficiency) {
            return Err("overlap_efficiency must be within [0, 1]".to_string());
        }
        Ok(Calibration {
            constants,
            seq: num(get(&value, "seq")?, "seq")? as usize,
            probe_steps: num(get(&value, "probe_steps")?, "probe_steps")? as usize,
            probe_threads: num(get(&value, "probe_threads")?, "probe_threads")? as usize,
            thread_rates,
            overlap_efficiency,
            cells,
        })
    }
}

fn get<'a>(value: &'a Value, key: &str) -> Result<&'a Value, String> {
    match value {
        Value::Object(entries) => entries
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
            .ok_or_else(|| format!("missing field `{key}`")),
        _ => Err(format!("expected an object holding `{key}`")),
    }
}

fn num(value: &Value, what: &str) -> Result<f64, String> {
    match value {
        Value::Float(x) if x.is_finite() => Ok(*x),
        Value::UInt(u) => Ok(*u as f64),
        Value::Int(i) => Ok(*i as f64),
        _ => Err(format!("field `{what}` is not a finite number")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_workload() -> Workload {
        Workload {
            probe_steps: 1,
            chunk_candidates: vec![2],
            ..Workload::new(ModelConfig::tiny(1, 32, 4, 50), 32)
        }
    }

    fn synthetic_calibration() -> Calibration {
        Calibration {
            constants: CostConstants {
                gemm_flops: 1e12,
                attention_flops: 1e12,
                kernel_overhead: 0.0,
                nvlink_bw: 1e9,
                pcie_bw: 1e9,
                ib_bw: 1e9,
                link_latency: 0.0,
            },
            seq: 256,
            probe_steps: 2,
            probe_threads: 4,
            thread_rates: vec![(4, 1.0), (1, 2.0)],
            overlap_efficiency: 1.0,
            cells: vec![
                CellProfile {
                    chunks: 4,
                    payload_bf16: false,
                    step_us: 4000.0,
                    copy_count: 40.0,
                    copy_bytes: 1_000_000.0,
                    copy_us: 1000.0,
                    comm_count: 8.0,
                    comm_bytes: 500_000.0,
                    comm_us: 500.0,
                    attn_us: 2000.0,
                    lump_us: 500.0,
                    overlap_efficiency: 1.0,
                    balanced_overlap_efficiency: 1.0,
                },
                CellProfile {
                    chunks: 4,
                    payload_bf16: true,
                    step_us: 3250.0,
                    copy_count: 40.0,
                    copy_bytes: 500_000.0,
                    copy_us: 500.0,
                    comm_count: 8.0,
                    comm_bytes: 250_000.0,
                    comm_us: 250.0,
                    attn_us: 2000.0,
                    lump_us: 500.0,
                    overlap_efficiency: 1.0,
                    balanced_overlap_efficiency: 1.0,
                },
            ],
        }
    }

    #[test]
    fn serial_prediction_reproduces_the_profile_and_async_overlaps() {
        let cal = synthetic_calibration();
        let serial = CandidateConfig {
            chunks: 4,
            prefetch: false,
            comm_async: false,
            balanced: false,
            payload_bf16: false,
            threads: 4,
        };
        let t_serial = predict_step_us(&cal, &serial);
        assert!(
            (t_serial - 4000.0).abs() / 4000.0 < 0.02,
            "serial {t_serial} != probe 4000"
        );
        let dual = CandidateConfig {
            prefetch: true,
            comm_async: true,
            ..serial
        };
        let t_dual = predict_step_us(&cal, &dual);
        assert!(t_dual < t_serial, "streams must hide wire time");
        // Compute (2500 µs) bounds the overlapped step from below.
        assert!(t_dual >= 2500.0 * 0.99, "dual {t_dual}");
    }

    #[test]
    fn search_prefers_bf16_dual_stream_on_the_synthetic_model() {
        let cal = synthetic_calibration();
        let mut workload = tiny_workload();
        workload.chunk_candidates = vec![4];
        workload.allow_bf16 = true;
        let (evaluated, best) = search(&cal, &workload);
        // 4 chunks × 2 bf16 × 2 balanced × 2 × 2 streams × 2 threads.
        assert_eq!(evaluated.len(), 32);
        assert!(best.config.prefetch && best.config.comm_async);
        assert!(best.config.payload_bf16);
        assert_eq!(best.config.threads, 4, "slower 1-thread rate rejected");
        let worst = evaluated
            .iter()
            .map(|e| e.predicted_step_us)
            .fold(0.0f64, f64::max);
        assert!(best.predicted_step_us < worst);
    }

    #[test]
    fn single_thread_scale_slows_compute_prediction() {
        let cal = synthetic_calibration();
        let base = CandidateConfig {
            chunks: 4,
            prefetch: false,
            comm_async: false,
            balanced: false,
            payload_bf16: false,
            threads: 4,
        };
        let slow = CandidateConfig { threads: 1, ..base };
        assert!(predict_step_us(&cal, &slow) > predict_step_us(&cal, &base));
    }

    #[test]
    fn balanced_schedule_prices_no_slower_and_preserves_serial_totals() {
        let cal = synthetic_calibration();
        let seq_dual = CandidateConfig {
            chunks: 4,
            prefetch: true,
            comm_async: true,
            balanced: false,
            payload_bf16: false,
            threads: 4,
        };
        let bal_dual = CandidateConfig {
            balanced: true,
            ..seq_dual
        };
        let t_seq = predict_step_us(&cal, &seq_dual);
        let t_bal = predict_step_us(&cal, &bal_dual);
        assert!(
            t_bal <= t_seq,
            "equal slots + eager posting must not price slower: {t_bal} vs {t_seq}"
        );
        // With both streams off the topologies carry identical total
        // work, so the predictions collapse to the same serial sum.
        let seq_off = CandidateConfig {
            prefetch: false,
            comm_async: false,
            ..seq_dual
        };
        let bal_off = CandidateConfig {
            balanced: true,
            ..seq_off
        };
        let off_seq = predict_step_us(&cal, &seq_off);
        let off_bal = predict_step_us(&cal, &bal_off);
        assert!(
            (off_seq - off_bal).abs() < 1.0,
            "serial totals are schedule-invariant: {off_seq} vs {off_bal}"
        );
    }

    #[test]
    fn calibration_json_round_trips() {
        let cal = synthetic_calibration();
        let back = Calibration::from_json(&cal.to_json()).expect("round trip");
        assert_eq!(back.constants, cal.constants);
        assert_eq!(back.cells.len(), cal.cells.len());
        assert_eq!(back.thread_rates, cal.thread_rates);
        assert!((back.overlap_efficiency - cal.overlap_efficiency).abs() < 1e-12);
        assert!((back.cells[0].overlap_efficiency - 1.0).abs() < 1e-12);
        assert!((back.cells[0].balanced_overlap_efficiency - 1.0).abs() < 1e-12);
        assert!(back.cells[1].payload_bf16);
        assert!((back.cells[0].step_us - cal.cells[0].step_us).abs() < 1e-9);
        assert!(Calibration::from_json("{}").is_err());
        assert!(Calibration::from_json("nonsense").is_err());
    }

    #[test]
    fn end_to_end_probe_fit_search_on_a_tiny_model() {
        // A real (tiny) probe: constants come out positive, the grid is
        // fully priced, and the best candidate is drawn from the grid.
        let workload = tiny_workload();
        let outcome = autotune(&workload);
        let c = &outcome.calibration.constants;
        assert!(c.attention_flops > 0.0 && c.pcie_bw > 0.0 && c.nvlink_bw > 0.0);
        let eff = outcome.calibration.overlap_efficiency;
        assert!((0.0..=1.0).contains(&eff), "efficiency {eff} out of range");
        assert_eq!(outcome.calibration.cells.len(), 1);
        assert_eq!(
            outcome.evaluated.len(),
            8,
            "1 chunk × 2 balanced × 2×2 streams"
        );
        assert!(outcome
            .evaluated
            .iter()
            .any(|e| e.config == outcome.best.config));
        assert!(outcome.best.predicted_step_us > 0.0);
        let opts = outcome.best.config.options();
        assert!(opts.offload, "autotuner tunes the offloaded pipeline");
    }
}
