//! Sharded, versioned checkpoint state — the persistence layer behind the
//! resumable [`Trainer`](crate::runtime::dist::Trainer).
//!
//! Everything that must survive a restart flows through one container, the
//! [`StateDict`]: a set of named tensors (`f32` vectors), counters (`u64`
//! vectors), and strings with a **sorted, versioned, deterministic** binary
//! layout. Determinism is the point — the resume suite asserts that a run
//! interrupted at any step boundary continues bitwise identically, and that
//! is only checkable if saving the same state twice produces the same
//! bytes.
//!
//! The pieces:
//!
//! * [`Checkpointable`] — the state trait. Model parameters
//!   ([`GptModel`]), optimizer moments ([`AdamW`]), the data-stream RNG
//!   ([`Corpus`]), and host-pool residency ([`HostPool`]) all speak it, so
//!   "what is this object's durable state?" has one answer per type.
//! * [`write_shard`] / [`read_shard`] / [`shard_paths`] — per-rank shard
//!   files (`shard-{rank:04}-of-{world:04}.fpdt`) under a checkpoint
//!   directory. Replicated metadata appears in every shard; per-rank
//!   payloads (parameter and moment slices) appear only in their own.
//! * [`CkptError`] — typed failures. A truncated shard, a bad magic, a
//!   missing rank file each get a distinct variant; nothing in this module
//!   panics on malformed input.
//!
//! ## Binary layout (version `FPDTCK02`)
//!
//! ```text
//! magic: 8 bytes "FPDTCK02"
//! count: u64 LE                     -- number of entries
//! entry (count times, sorted by key bytes):
//!   key_len: u64 LE | key: UTF-8 bytes
//!   tag: u8                         -- 0 = f32, 1 = u64, 2 = string
//!   len: u64 LE                     -- element count (bytes for strings)
//!   payload: len * {f32 LE | u64 LE | UTF-8 byte}
//! ```
//!
//! Entries are sorted by key at serialization time regardless of insertion
//! order, so two logically equal dicts are byte-equal on disk.

use crate::offload::{BufKind, ChunkKey, HostPool};
use crate::runtime::data::Corpus;
use crate::runtime::gpt::GptModel;
use fpdt_tensor::nn::AdamW;
use fpdt_tensor::Tensor;
use std::collections::BTreeMap;
use std::fmt;
use std::io::{Read, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Magic prefix of the sharded checkpoint format (version 2; version 1 is
/// the legacy single-file parameter dump in [`GptModel::save_checkpoint`]).
pub const SHARD_MAGIC: &[u8; 8] = b"FPDTCK02";

/// Typed checkpoint failure. Every IO and decode path returns one of
/// these — corrupted or truncated shards must surface as errors the
/// caller can branch on, never as panics or silently wrong state.
#[derive(Debug)]
pub enum CkptError {
    /// Underlying filesystem failure (open, read, write, create).
    Io(std::io::Error),
    /// The file decoded but its contents are inconsistent: truncated
    /// payload, unknown tag, non-UTF-8 key, length mismatch against the
    /// model it is being loaded into.
    Corrupt(String),
    /// A required entry or shard file is absent.
    Missing(String),
    /// The magic header identifies a different (or no) format version.
    Version(String),
}

impl fmt::Display for CkptError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CkptError::Io(e) => write!(f, "checkpoint io error: {e}"),
            CkptError::Corrupt(what) => write!(f, "corrupt checkpoint: {what}"),
            CkptError::Missing(what) => write!(f, "missing checkpoint state: {what}"),
            CkptError::Version(what) => write!(f, "checkpoint version mismatch: {what}"),
        }
    }
}

impl std::error::Error for CkptError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CkptError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for CkptError {
    fn from(e: std::io::Error) -> Self {
        CkptError::Io(e)
    }
}

/// One value in a [`StateDict`].
#[derive(Debug, Clone, PartialEq)]
pub enum StateValue {
    /// Tensor-backed payload (parameters, moments, losses, residency).
    F32(Vec<f32>),
    /// Counter payload (steps, RNG words, shapes, statistics).
    U64(Vec<u64>),
    /// Small identity payload (config names, op tags).
    Str(String),
}

impl StateValue {
    fn tag(&self) -> u8 {
        match self {
            StateValue::F32(_) => 0,
            StateValue::U64(_) => 1,
            StateValue::Str(_) => 2,
        }
    }
}

/// A named, sorted collection of checkpoint state.
///
/// Backed by a `BTreeMap` so iteration — and therefore the serialized
/// byte stream — is key-ordered no matter what order producers inserted
/// in. Accessors return typed errors instead of panicking so a corrupt or
/// stale shard is reported, not fatal.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StateDict {
    entries: BTreeMap<String, StateValue>,
}

impl StateDict {
    /// An empty dict.
    pub fn new() -> Self {
        StateDict::default()
    }

    /// Inserts (or replaces) one entry.
    pub fn insert(&mut self, key: impl Into<String>, value: StateValue) {
        self.entries.insert(key.into(), value);
    }

    /// Copies every entry of `other` into this dict (later wins).
    pub fn extend(&mut self, other: &StateDict) {
        for (k, v) in &other.entries {
            self.entries.insert(k.clone(), v.clone());
        }
    }

    /// Whether an entry exists.
    pub fn contains(&self, key: &str) -> bool {
        self.entries.contains_key(key)
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the dict has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Keys in sorted order.
    pub fn keys(&self) -> impl Iterator<Item = &str> {
        self.entries.keys().map(|k| k.as_str())
    }

    /// A required f32 entry.
    ///
    /// # Errors
    ///
    /// [`CkptError::Missing`] when absent, [`CkptError::Corrupt`] when the
    /// entry holds a different type.
    pub fn f32s(&self, key: &str) -> Result<&[f32], CkptError> {
        match self.entries.get(key) {
            Some(StateValue::F32(v)) => Ok(v),
            Some(_) => Err(CkptError::Corrupt(format!("entry {key:?} is not f32"))),
            None => Err(CkptError::Missing(format!("entry {key:?}"))),
        }
    }

    /// A required u64 entry (same error contract as [`StateDict::f32s`]).
    ///
    /// # Errors
    ///
    /// [`CkptError::Missing`] when absent, [`CkptError::Corrupt`] on a
    /// type mismatch.
    pub fn u64s(&self, key: &str) -> Result<&[u64], CkptError> {
        match self.entries.get(key) {
            Some(StateValue::U64(v)) => Ok(v),
            Some(_) => Err(CkptError::Corrupt(format!("entry {key:?} is not u64"))),
            None => Err(CkptError::Missing(format!("entry {key:?}"))),
        }
    }

    /// A required scalar u64 entry.
    ///
    /// # Errors
    ///
    /// As [`StateDict::u64s`], plus [`CkptError::Corrupt`] when the entry
    /// is not exactly one element.
    pub fn u64_scalar(&self, key: &str) -> Result<u64, CkptError> {
        let v = self.u64s(key)?;
        if v.len() != 1 {
            return Err(CkptError::Corrupt(format!(
                "entry {key:?} has {} elements, expected 1",
                v.len()
            )));
        }
        Ok(v[0])
    }

    /// A required string entry (same error contract as
    /// [`StateDict::f32s`]).
    ///
    /// # Errors
    ///
    /// [`CkptError::Missing`] when absent, [`CkptError::Corrupt`] on a
    /// type mismatch.
    pub fn str(&self, key: &str) -> Result<&str, CkptError> {
        match self.entries.get(key) {
            Some(StateValue::Str(v)) => Ok(v),
            Some(_) => Err(CkptError::Corrupt(format!("entry {key:?} is not a string"))),
            None => Err(CkptError::Missing(format!("entry {key:?}"))),
        }
    }

    /// Serializes to the versioned byte layout (see the module docs).
    /// Deterministic: equal dicts produce equal bytes.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(SHARD_MAGIC);
        out.extend_from_slice(&(self.entries.len() as u64).to_le_bytes());
        for (key, value) in &self.entries {
            out.extend_from_slice(&(key.len() as u64).to_le_bytes());
            out.extend_from_slice(key.as_bytes());
            out.push(value.tag());
            match value {
                StateValue::F32(v) => {
                    out.extend_from_slice(&(v.len() as u64).to_le_bytes());
                    for x in v {
                        out.extend_from_slice(&x.to_le_bytes());
                    }
                }
                StateValue::U64(v) => {
                    out.extend_from_slice(&(v.len() as u64).to_le_bytes());
                    for x in v {
                        out.extend_from_slice(&x.to_le_bytes());
                    }
                }
                StateValue::Str(v) => {
                    out.extend_from_slice(&(v.len() as u64).to_le_bytes());
                    out.extend_from_slice(v.as_bytes());
                }
            }
        }
        out
    }

    /// Decodes the byte layout produced by [`StateDict::to_bytes`].
    ///
    /// # Errors
    ///
    /// [`CkptError::Version`] on a foreign magic, [`CkptError::Corrupt`]
    /// on truncation, unknown tags, or invalid UTF-8.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, CkptError> {
        let mut r = ByteReader { bytes, pos: 0 };
        let magic = r.take(8)?;
        if magic != SHARD_MAGIC {
            return Err(CkptError::Version(format!(
                "expected {:?}, found {:?}",
                String::from_utf8_lossy(SHARD_MAGIC),
                String::from_utf8_lossy(magic)
            )));
        }
        let count = r.u64()? as usize;
        let mut entries = BTreeMap::new();
        for _ in 0..count {
            let key_len = r.u64()? as usize;
            let key = std::str::from_utf8(r.take(key_len)?)
                .map_err(|_| CkptError::Corrupt("non-UTF-8 entry key".into()))?
                .to_string();
            let tag = r.take(1)?[0];
            let len = r.u64()? as usize;
            let value = match tag {
                0 => {
                    let raw = r.take(len.checked_mul(4).ok_or_else(overflow)?)?;
                    StateValue::F32(
                        raw.chunks_exact(4)
                            .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
                            .collect(),
                    )
                }
                1 => {
                    let raw = r.take(len.checked_mul(8).ok_or_else(overflow)?)?;
                    StateValue::U64(
                        raw.chunks_exact(8)
                            .map(|c| {
                                u64::from_le_bytes([
                                    c[0], c[1], c[2], c[3], c[4], c[5], c[6], c[7],
                                ])
                            })
                            .collect(),
                    )
                }
                2 => StateValue::Str(
                    std::str::from_utf8(r.take(len)?)
                        .map_err(|_| CkptError::Corrupt(format!("entry {key:?}: bad UTF-8")))?
                        .to_string(),
                ),
                t => {
                    return Err(CkptError::Corrupt(format!(
                        "entry {key:?}: unknown tag {t}"
                    )))
                }
            };
            entries.insert(key, value);
        }
        if r.pos != bytes.len() {
            return Err(CkptError::Corrupt(format!(
                "{} trailing bytes after {} entries",
                bytes.len() - r.pos,
                count
            )));
        }
        Ok(StateDict { entries })
    }
}

fn overflow() -> CkptError {
    CkptError::Corrupt("entry length overflows".into())
}

struct ByteReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], CkptError> {
        if self.pos + n > self.bytes.len() {
            return Err(CkptError::Corrupt(format!(
                "truncated: need {n} bytes at offset {}, have {}",
                self.pos,
                self.bytes.len() - self.pos
            )));
        }
        let out = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    fn u64(&mut self) -> Result<u64, CkptError> {
        let c = self.take(8)?;
        Ok(u64::from_le_bytes([
            c[0], c[1], c[2], c[3], c[4], c[5], c[6], c[7],
        ]))
    }
}

// ---------------------------------------------------------------------------
// The state trait
// ---------------------------------------------------------------------------

/// Durable state, expressed as a [`StateDict`].
///
/// `state_dict` takes `&mut self` because the model's parameter visitors
/// do (see [`GptModel::for_each_param`]); implementations must not change
/// observable state while exporting. Keys are namespaced per type
/// (`model.*`, `opt.*`, `rng.*`, `pool.*`) so dicts from different objects
/// compose into one shard without collisions.
pub trait Checkpointable {
    /// Exports durable state. Must be deterministic: two calls on equal
    /// state produce equal dicts.
    fn state_dict(&mut self) -> StateDict;

    /// Restores state exported by [`Checkpointable::state_dict`].
    ///
    /// # Errors
    ///
    /// Typed [`CkptError`]s on missing entries or shape mismatches; the
    /// receiver is left unchanged on error where practical.
    fn load_state_dict(&mut self, dict: &StateDict) -> Result<(), CkptError>;
}

/// Model parameters: one flat f32 vector in [`GptModel::for_each_param`]
/// order under `"model.params"`.
impl Checkpointable for GptModel {
    fn state_dict(&mut self) -> StateDict {
        let mut d = StateDict::new();
        d.insert("model.params", StateValue::F32(self.collect_params()));
        d
    }

    fn load_state_dict(&mut self, dict: &StateDict) -> Result<(), CkptError> {
        let flat = dict.f32s("model.params")?;
        if flat.len() != self.param_count() {
            return Err(CkptError::Corrupt(format!(
                "model.params has {} values, model expects {}",
                flat.len(),
                self.param_count()
            )));
        }
        self.set_params(flat);
        Ok(())
    }
}

/// Optimizer moments: the shared step under `"opt.step"`, the sorted
/// parameter ids under `"opt.ids"`, and per-id first/second moments under
/// `"opt.m.{id:08}"` / `"opt.v.{id:08}"`.
impl Checkpointable for AdamW {
    fn state_dict(&mut self) -> StateDict {
        let (step, entries) = self.export_state();
        let mut d = StateDict::new();
        d.insert("opt.step", StateValue::U64(vec![step]));
        d.insert(
            "opt.ids",
            StateValue::U64(entries.iter().map(|(id, _, _)| *id).collect()),
        );
        for (id, m, v) in entries {
            d.insert(format!("opt.m.{id:08}"), StateValue::F32(m));
            d.insert(format!("opt.v.{id:08}"), StateValue::F32(v));
        }
        d
    }

    fn load_state_dict(&mut self, dict: &StateDict) -> Result<(), CkptError> {
        let step = dict.u64_scalar("opt.step")?;
        let ids = dict.u64s("opt.ids")?.to_vec();
        let mut entries = Vec::with_capacity(ids.len());
        for id in ids {
            let m = dict.f32s(&format!("opt.m.{id:08}"))?.to_vec();
            let v = dict.f32s(&format!("opt.v.{id:08}"))?.to_vec();
            if m.len() != v.len() {
                return Err(CkptError::Corrupt(format!(
                    "opt moments for id {id} disagree: {} vs {}",
                    m.len(),
                    v.len()
                )));
            }
            entries.push((id, m, v));
        }
        self.import_state(step, entries);
        Ok(())
    }
}

/// Data-stream RNG: the four xoshiro words under `"rng.state"`, so a
/// resumed run draws the exact token sequence the interrupted run would
/// have.
impl Checkpointable for Corpus {
    fn state_dict(&mut self) -> StateDict {
        let mut d = StateDict::new();
        d.insert(
            "rng.state",
            StateValue::U64(self.rng_state().to_vec()),
        );
        d
    }

    fn load_state_dict(&mut self, dict: &StateDict) -> Result<(), CkptError> {
        let words = dict.u64s("rng.state")?;
        let s: [u64; 4] = words
            .try_into()
            .map_err(|_| CkptError::Corrupt(format!("rng.state has {} words", words.len())))?;
        self.set_rng_state(s);
        Ok(())
    }
}

/// Host-pool residency: every resident chunk in [`ChunkKey::sort_key`]
/// order, as widened f32 data plus shape, under
/// `"pool.chunk.{i:04}.data"` / `".shape"` / `".key"`, with the count
/// under `"pool.count"`. Export moves no transfer counters
/// ([`HostPool::peek`]); restore replays the offloads, so counters do move
/// on load — at step boundaries (where the trainer checkpoints) the pool
/// is drained and both directions are no-ops.
impl Checkpointable for HostPool {
    fn state_dict(&mut self) -> StateDict {
        let mut d = StateDict::new();
        let keys = self.resident_keys();
        d.insert("pool.count", StateValue::U64(vec![keys.len() as u64]));
        for (i, key) in keys.iter().enumerate() {
            let chunk = self.peek(key).expect("key came from resident_keys");
            let wide = chunk.widen();
            d.insert(
                format!("pool.chunk.{i:04}.key"),
                StateValue::U64(vec![
                    key.layer as u64,
                    key.kind.code() as u64,
                    key.chunk as u64,
                ]),
            );
            d.insert(
                format!("pool.chunk.{i:04}.shape"),
                StateValue::U64(wide.shape().iter().map(|&s| s as u64).collect()),
            );
            d.insert(
                format!("pool.chunk.{i:04}.data"),
                StateValue::F32(wide.data().to_vec()),
            );
        }
        d
    }

    fn load_state_dict(&mut self, dict: &StateDict) -> Result<(), CkptError> {
        self.clear();
        let count = dict.u64_scalar("pool.count")? as usize;
        for i in 0..count {
            let raw_key = dict.u64s(&format!("pool.chunk.{i:04}.key"))?;
            if raw_key.len() != 3 {
                return Err(CkptError::Corrupt(format!(
                    "pool chunk {i} key has {} fields",
                    raw_key.len()
                )));
            }
            let kind = BufKind::from_code(raw_key[1] as u8).ok_or_else(|| {
                CkptError::Corrupt(format!("pool chunk {i}: unknown kind {}", raw_key[1]))
            })?;
            let key = ChunkKey::new(raw_key[0] as usize, kind, raw_key[2] as usize);
            let shape: Vec<usize> = dict
                .u64s(&format!("pool.chunk.{i:04}.shape"))?
                .iter()
                .map(|&s| s as usize)
                .collect();
            let data = dict.f32s(&format!("pool.chunk.{i:04}.data"))?.to_vec();
            let t = Tensor::from_vec(data, &shape)
                .map_err(|e| CkptError::Corrupt(format!("pool chunk {i}: {e}")))?;
            self.offload_shared(key, Arc::new(t));
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Shard files
// ---------------------------------------------------------------------------

/// File name of one rank's shard.
pub fn shard_name(rank: usize, world: usize) -> String {
    format!("shard-{rank:04}-of-{world:04}.fpdt")
}

/// Writes one rank's shard into `dir` (created if needed), atomically: the
/// bytes land in a temporary file first and are renamed into place, so a
/// crash mid-write leaves no half-shard under the final name.
///
/// # Errors
///
/// Propagates filesystem failures as [`CkptError::Io`].
pub fn write_shard(
    dir: &Path,
    rank: usize,
    world: usize,
    dict: &StateDict,
) -> Result<PathBuf, CkptError> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join(shard_name(rank, world));
    let tmp = dir.join(format!("{}.tmp", shard_name(rank, world)));
    let mut f = std::fs::File::create(&tmp)?;
    f.write_all(&dict.to_bytes())?;
    f.sync_all()?;
    drop(f);
    std::fs::rename(&tmp, &path)?;
    Ok(path)
}

/// Reads and decodes one shard file.
///
/// # Errors
///
/// [`CkptError::Io`] when unreadable, [`CkptError::Version`] /
/// [`CkptError::Corrupt`] from [`StateDict::from_bytes`].
pub fn read_shard(path: &Path) -> Result<StateDict, CkptError> {
    let mut bytes = Vec::new();
    std::fs::File::open(path)?.read_to_end(&mut bytes)?;
    StateDict::from_bytes(&bytes)
}

/// The complete, validated shard set of a checkpoint directory, in rank
/// order. The world size is read off the `of-{world}` suffix and every
/// rank `0..world` must be present exactly once.
///
/// # Errors
///
/// [`CkptError::Missing`] when the directory holds no shards or a rank
/// file is absent, [`CkptError::Corrupt`] when file names disagree about
/// the world size.
pub fn shard_paths(dir: &Path) -> Result<Vec<PathBuf>, CkptError> {
    let mut world: Option<usize> = None;
    let mut found: BTreeMap<usize, PathBuf> = BTreeMap::new();
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
            continue;
        };
        let Some((rank, w)) = parse_shard_name(name) else {
            continue;
        };
        match world {
            None => world = Some(w),
            Some(prev) if prev != w => {
                return Err(CkptError::Corrupt(format!(
                    "shards disagree about world size: {prev} vs {w}"
                )));
            }
            Some(_) => {}
        }
        if found.insert(rank, path).is_some() {
            return Err(CkptError::Corrupt(format!("duplicate shard for rank {rank}")));
        }
    }
    let world = world.ok_or_else(|| {
        CkptError::Missing(format!("no checkpoint shards under {}", dir.display()))
    })?;
    let mut out = Vec::with_capacity(world);
    for rank in 0..world {
        let path = found.remove(&rank).ok_or_else(|| {
            CkptError::Missing(format!("shard for rank {rank} of {world}"))
        })?;
        out.push(path);
    }
    if let Some((&rank, _)) = found.iter().next() {
        return Err(CkptError::Corrupt(format!(
            "shard rank {rank} out of range for world {world}"
        )));
    }
    Ok(out)
}

fn parse_shard_name(name: &str) -> Option<(usize, usize)> {
    let rest = name.strip_prefix("shard-")?.strip_suffix(".fpdt")?;
    let (rank, world) = rest.split_once("-of-")?;
    Some((rank.parse().ok()?, world.parse().ok()?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use fpdt_model::config::ModelConfig;
    use fpdt_tensor::nn::AdamWConfig;

    fn sample_dict() -> StateDict {
        let mut d = StateDict::new();
        d.insert("zz.last", StateValue::Str("tail".into()));
        d.insert("aa.first", StateValue::F32(vec![1.0, -2.5, 3e-7]));
        d.insert("mm.mid", StateValue::U64(vec![7, 0, u64::MAX]));
        d
    }

    #[test]
    fn byte_layout_round_trips_and_is_sorted() {
        let d = sample_dict();
        let bytes = d.to_bytes();
        assert_eq!(&bytes[..8], SHARD_MAGIC);
        let back = StateDict::from_bytes(&bytes).unwrap();
        assert_eq!(back, d);
        // serialization order is key order, not insertion order
        let keys: Vec<&str> = back.keys().collect();
        assert_eq!(keys, ["aa.first", "mm.mid", "zz.last"]);
        // deterministic: same state, same bytes
        let mut again = StateDict::new();
        for k in ["mm.mid", "zz.last", "aa.first"] {
            // rebuild in a different insertion order
            again.insert(k, d.entries.get(k).unwrap().clone());
        }
        assert_eq!(again.to_bytes(), bytes);
    }

    #[test]
    fn decode_rejects_truncation_version_and_garbage() {
        let bytes = sample_dict().to_bytes();
        // any strict prefix must fail Corrupt (or Version for <8 bytes)
        for cut in [4usize, 9, bytes.len() / 2, bytes.len() - 1] {
            let err = StateDict::from_bytes(&bytes[..cut]).unwrap_err();
            assert!(
                matches!(err, CkptError::Corrupt(_) | CkptError::Version(_)),
                "cut at {cut}: {err}"
            );
        }
        // foreign magic is a version error
        let mut wrong = bytes.clone();
        wrong[..8].copy_from_slice(b"FPDTCK01");
        assert!(matches!(
            StateDict::from_bytes(&wrong).unwrap_err(),
            CkptError::Version(_)
        ));
        // trailing junk is corrupt, not silently ignored
        let mut long = bytes.clone();
        long.push(0);
        assert!(matches!(
            StateDict::from_bytes(&long).unwrap_err(),
            CkptError::Corrupt(_)
        ));
    }

    #[test]
    fn typed_accessors_report_missing_and_mismatched() {
        let d = sample_dict();
        assert!(matches!(d.f32s("nope"), Err(CkptError::Missing(_))));
        assert!(matches!(d.f32s("mm.mid"), Err(CkptError::Corrupt(_))));
        assert!(matches!(d.u64_scalar("mm.mid"), Err(CkptError::Corrupt(_))));
        assert_eq!(d.str("zz.last").unwrap(), "tail");
    }

    #[test]
    fn model_state_round_trips_bitwise() {
        let cfg = ModelConfig::tiny(2, 32, 4, 50);
        let mut a = GptModel::new(&cfg, 3);
        let dict = a.state_dict();
        let mut b = GptModel::new(&cfg, 999); // different init
        b.load_state_dict(&dict).unwrap();
        assert_eq!(a.collect_params(), b.collect_params());
        // wrong architecture is a typed error, not a panic
        let mut small = GptModel::new(&ModelConfig::tiny(1, 16, 2, 20), 0);
        assert!(matches!(
            small.load_state_dict(&dict),
            Err(CkptError::Corrupt(_))
        ));
    }

    #[test]
    fn optimizer_state_round_trips_bitwise() {
        let mut opt = AdamW::new(AdamWConfig::default());
        let mut p0 = vec![1.0f32; 8];
        let mut p1 = vec![-0.5f32; 3];
        for _ in 0..4 {
            opt.begin_step();
            opt.update(0, &mut p0, &[0.1; 8]);
            opt.update(1, &mut p1, &[-0.2; 3]);
        }
        let dict = opt.state_dict();
        let mut fresh = AdamW::new(AdamWConfig::default());
        fresh.load_state_dict(&dict).unwrap();
        // both optimizers now produce identical updates
        let (mut qa, mut qb) = (p0.clone(), p0.clone());
        opt.begin_step();
        opt.update(0, &mut qa, &[0.05; 8]);
        fresh.begin_step();
        fresh.update(0, &mut qb, &[0.05; 8]);
        assert_eq!(
            qa.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
            qb.iter().map(|x| x.to_bits()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn corpus_rng_round_trips_the_stream() {
        let mut a = Corpus::new(50, 0.05, 77);
        let _ = a.sample(32);
        let dict = a.state_dict();
        let mut b = Corpus::new(50, 0.05, 1); // different seed
        b.load_state_dict(&dict).unwrap();
        assert_eq!(a.sample(16), b.sample(16));
    }

    #[test]
    fn host_pool_residency_round_trips_without_count_drift_on_save() {
        let mut pool = HostPool::new();
        pool.offload(
            ChunkKey::new(1, BufKind::K, 0),
            Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).unwrap(),
        );
        pool.offload(
            ChunkKey::new(0, BufKind::Q, 2),
            Tensor::from_vec(vec![-1.0; 6], &[3, 2]).unwrap(),
        );
        let before = pool.stats();
        let dict = pool.state_dict();
        assert_eq!(pool.stats(), before, "export must not move counters");

        let mut restored = HostPool::new();
        restored.load_state_dict(&dict).unwrap();
        assert_eq!(restored.len(), 2);
        let keys = restored.resident_keys();
        assert_eq!(keys, pool.resident_keys(), "sorted key order is stable");
        for key in &keys {
            assert_eq!(
                restored.peek(key).unwrap().widen().data(),
                pool.peek(key).unwrap().widen().data()
            );
        }
    }

    #[test]
    fn shard_files_round_trip_and_validate_the_set() {
        let dir = std::env::temp_dir().join(format!("fpdt-ckpt-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let world = 3;
        for rank in 0..world {
            let mut d = StateDict::new();
            d.insert("meta.rank", StateValue::U64(vec![rank as u64]));
            write_shard(&dir, rank, world, &d).unwrap();
        }
        let paths = shard_paths(&dir).unwrap();
        assert_eq!(paths.len(), world);
        for (rank, path) in paths.iter().enumerate() {
            let d = read_shard(path).unwrap();
            assert_eq!(d.u64_scalar("meta.rank").unwrap(), rank as u64);
        }
        // a missing rank is typed
        std::fs::remove_file(&paths[1]).unwrap();
        assert!(matches!(shard_paths(&dir).unwrap_err(), CkptError::Missing(_)));
        // a truncated shard is corrupt, not a panic
        let bytes = std::fs::read(&paths[0]).unwrap();
        std::fs::write(&paths[0], &bytes[..bytes.len() / 2]).unwrap();
        assert!(matches!(
            read_shard(&paths[0]).unwrap_err(),
            CkptError::Corrupt(_)
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
