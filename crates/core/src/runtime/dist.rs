//! Multi-threaded distributed training — the Figure 14 experiment,
//! grown into a resumable, fault-tolerant [`Trainer`].
//!
//! Every rank is an OS thread owning a full replica of a (tiny) GPT,
//! initialized from the same seed. Sequences shard across ranks through a
//! [`ChunkPlan`] (the rank-ordinal shuffle, labels included); gradients
//! all-reduce in deterministic rank order; each rank then applies an
//! identical AdamW step. FPDT is "a pure system optimization" (paper
//! §5.6): its loss curve must coincide with the baseline's, which
//! [`train`] lets benchmarks and tests verify directly.
//!
//! ## The resumable Trainer
//!
//! [`Trainer`] runs training as a sequence of **segments**: `run_steps(n)`
//! executes `n` micro-steps (whole gradient-accumulation windows) on a
//! fresh thread-device world and commits the resulting state — flat
//! parameters, flat optimizer moments, the data-RNG words, losses, and
//! accumulated traffic counters — back to the host between segments.
//! Because the durable state lives host-side in a world-independent
//! layout, three properties fall out:
//!
//! * **Bitwise resume.** Segment boundaries are exact: running
//!   `run_steps(k)` + `checkpoint` + [`Trainer::resume`] + the remaining
//!   steps produces the identical losses, gradients, and traffic counters
//!   as one uninterrupted run (the resume determinism suite asserts it).
//! * **Elastic worlds.** [`Trainer::resize`] just changes the geometry of
//!   the *next* segment; parameters and moments re-shard automatically
//!   because they are stored flat. After the resize point the trajectory
//!   matches a fresh run at the final geometry.
//! * **Rollback, not poison.** A collective that fails mid-step (after
//!   the [`RuntimeOptions::comm_retries`] replay budget is exhausted)
//!   aborts the segment at the last completed optimizer window: the data
//!   RNG rewinds, gradients are zeroed, and the host pool dies with the
//!   segment's executor. `run_steps` returns a typed [`TrainError`]; the
//!   caller may simply call it again.

use crate::chunk::ChunkPlan;
use crate::offload::PoolStats;
use crate::runtime::ckpt::{self, CkptError, StateDict, StateValue};
use crate::runtime::data::Corpus;
use crate::runtime::exec::{AttentionExec, DistAttention, LocalAttention, RingAttentionExec};
use crate::runtime::gpt::GptModel;
use crate::runtime::options::RuntimeOptions;
use fpdt_comm::{run_group, CommStats, Communicator};
use fpdt_model::config::{Family, ModelConfig};
use fpdt_tensor::nn::{AdamW, AdamWConfig};
use fpdt_trace::Recorder;
use std::fmt;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Which training mode to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// One device, full sequence (the ground-truth trajectory).
    Single,
    /// DeepSpeed Ulysses: sequence parallel, one all-to-all per layer.
    Ulysses,
    /// Ring Attention: contiguous sequence shards, KV blocks rotate around
    /// the ring (full heads everywhere — no head scattering).
    Ring,
    /// FPDT: chunked pipeline with optional host offload.
    Fpdt {
        /// Sequence chunks per rank.
        chunks: usize,
        /// Cache idle chunks in the host pool.
        offload: bool,
    },
}

impl Mode {
    fn chunks(&self) -> usize {
        match self {
            Mode::Single | Mode::Ulysses | Mode::Ring => 1,
            Mode::Fpdt { chunks, .. } => *chunks,
        }
    }

    fn offload(&self) -> bool {
        matches!(self, Mode::Fpdt { offload: true, .. })
    }

    fn as_str(&self) -> String {
        match self {
            Mode::Single => "single".into(),
            Mode::Ulysses => "ulysses".into(),
            Mode::Ring => "ring".into(),
            Mode::Fpdt { chunks, offload } => {
                format!("fpdt:{chunks}:{}", u8::from(*offload))
            }
        }
    }

    fn parse(s: &str) -> Result<Mode, CkptError> {
        match s {
            "single" => Ok(Mode::Single),
            "ulysses" => Ok(Mode::Ulysses),
            "ring" => Ok(Mode::Ring),
            _ => {
                let rest = s
                    .strip_prefix("fpdt:")
                    .ok_or_else(|| CkptError::Corrupt(format!("unknown mode {s:?}")))?;
                let (chunks, offload) = rest
                    .split_once(':')
                    .ok_or_else(|| CkptError::Corrupt(format!("unknown mode {s:?}")))?;
                Ok(Mode::Fpdt {
                    chunks: chunks
                        .parse()
                        .map_err(|_| CkptError::Corrupt(format!("bad chunk count in {s:?}")))?,
                    offload: offload == "1",
                })
            }
        }
    }
}

/// Configuration of a training run.
#[derive(Debug, Clone)]
pub struct TrainConfig {
    /// Model architecture (use [`ModelConfig::tiny`]).
    pub model: ModelConfig,
    /// Ranks (ignored for [`Mode::Single`]).
    pub world: usize,
    /// Global sequence length per step.
    pub seq: usize,
    /// Optimizer steps.
    pub steps: usize,
    /// Learning rate.
    pub lr: f32,
    /// Seed for weights and data.
    pub seed: u64,
    /// Training mode.
    pub mode: Mode,
    /// ZeRO-1: shard optimizer state across ranks — each rank updates only
    /// its slice of the flat parameter vector (reduce-scatter semantics)
    /// and all-gathers the result, exactly like DeepSpeed ZeRO-1. The
    /// trajectory is unchanged (paper §3.2: FPDT composes with ZeRO).
    pub zero_shard: bool,
    /// Activation checkpointing (the paper's "AC."): save only block
    /// inputs in forward, recompute blocks in backward. Also unchanged
    /// numerically.
    pub activation_checkpoint: bool,
    /// Gradient accumulation: micro-steps per optimizer step (>= 1). The
    /// recorded loss is the window mean; all equivalence claims hold
    /// per-window.
    pub grad_accum: usize,
    /// Linear learning-rate warmup over this many optimizer steps
    /// (0 = constant LR). Applied identically in every mode, so the
    /// equivalence claims are schedule-independent.
    pub warmup_steps: usize,
    /// Runtime knobs (offload copy stream, asynchronous comm stream,
    /// kernel threads, comm retry budget, fault injection), defaulting
    /// from the `FPDT_*` environment via [`RuntimeOptions::from_env`]. The
    /// `offload` field is overridden by [`Mode::Fpdt`]'s flag. Every
    /// setting is bitwise-invisible.
    pub runtime: RuntimeOptions,
}

impl Default for TrainConfig {
    fn default() -> Self {
        Self::small(Mode::Single)
    }
}

impl TrainConfig {
    /// A small default suitable for tests and the quickstart example.
    pub fn small(mode: Mode) -> Self {
        TrainConfig {
            model: ModelConfig::tiny(2, 32, 4, 50),
            world: 2,
            seq: 64,
            steps: 10,
            lr: 3e-3,
            seed: 42,
            mode,
            zero_shard: false,
            activation_checkpoint: false,
            grad_accum: 1,
            warmup_steps: 0,
            runtime: RuntimeOptions::from_env(),
        }
    }

    /// Panics on a geometry the mode cannot run (the same contract the
    /// original `train` entry point had).
    fn validate(&self) {
        if matches!(self.mode, Mode::Single) {
            return;
        }
        let world = self.world;
        if !matches!(self.mode, Mode::Ring) {
            // Ring keeps full heads; Ulysses/FPDT scatter them.
            assert!(
                self.model.heads.is_multiple_of(world),
                "heads must divide across ranks"
            );
            assert!(
                self.model.kv_heads.is_multiple_of(world),
                "kv heads must divide across ranks (Ulysses head scattering)"
            );
        }
        assert!(
            self.seq.is_multiple_of(world * self.mode.chunks()),
            "sequence must divide into world x chunks segments"
        );
    }
}

/// Result of a training run.
#[derive(Debug, Clone)]
pub struct TrainReport {
    /// Mean loss per step (identical on every rank).
    pub losses: Vec<f32>,
    /// Host-pool statistics of rank 0 (all zeros unless offloading).
    pub host: PoolStats,
    /// Bytes of Adam moment state held by rank 0 — shrinks by `1/world`
    /// under ZeRO-1 sharding.
    pub opt_state_bytes: usize,
    /// Rank 0's per-collective traffic counters (empty for
    /// [`Mode::Single`]).
    pub comm: fpdt_comm::CommStats,
    /// The last optimizer window's reduced (unscaled) gradients — what the
    /// resume determinism suite compares bit for bit across interrupted
    /// and uninterrupted runs.
    pub grads: Vec<f32>,
}

/// Typed failure of a training segment.
#[derive(Debug)]
pub enum TrainError {
    /// A collective failed beyond the retry budget (or fatally).
    Comm(fpdt_comm::CommError),
    /// The executor failed outside the comm layer (shape bugs and the
    /// like) — carried as text because executor errors are type-erased.
    Exec(String),
    /// Checkpoint save/restore failed.
    Ckpt(CkptError),
}

impl fmt::Display for TrainError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrainError::Comm(e) => write!(f, "training step failed in a collective: {e}"),
            TrainError::Exec(e) => write!(f, "training step failed in the executor: {e}"),
            TrainError::Ckpt(e) => write!(f, "checkpoint failed: {e}"),
        }
    }
}

impl std::error::Error for TrainError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TrainError::Comm(e) => Some(e),
            TrainError::Exec(_) => None,
            TrainError::Ckpt(e) => Some(e),
        }
    }
}

impl From<fpdt_comm::CommError> for TrainError {
    fn from(e: fpdt_comm::CommError) -> Self {
        TrainError::Comm(e)
    }
}

impl From<CkptError> for TrainError {
    fn from(e: CkptError) -> Self {
        TrainError::Ckpt(e)
    }
}

fn exec_error(e: Box<dyn std::error::Error + Send + Sync>) -> TrainError {
    match e.downcast::<fpdt_comm::CommError>() {
        Ok(comm) => TrainError::Comm(*comm),
        Err(other) => TrainError::Exec(other.to_string()),
    }
}

// ---------------------------------------------------------------------------
// Segment machinery
// ---------------------------------------------------------------------------

/// Host-side state handed to a segment: everything a rank needs to rebuild
/// its replica exactly where the previous segment stopped.
struct SegmentIn {
    /// Flat parameters ([`GptModel::for_each_param`] order).
    params: Vec<f32>,
    /// Flat first moments, same order and length as `params`.
    m: Vec<f32>,
    /// Flat second moments.
    v: Vec<f32>,
    /// Optimizer step counter (bias correction).
    opt_step: u64,
    /// Data-stream RNG words.
    rng: [u64; 4],
    /// Micro-steps completed before this segment (drives warmup).
    base_step: usize,
    /// Micro-steps to run (a multiple of `grad_accum`).
    steps: usize,
}

/// One rank's segment result. All replicated fields (params, losses, rng)
/// are identical across ranks by construction; moment vectors are this
/// rank's ZeRO slice (or the full vector when dense).
struct RankOut {
    steps: usize,
    losses: Vec<f32>,
    params: Vec<f32>,
    m: Vec<f32>,
    v: Vec<f32>,
    opt_step: u64,
    opt_bytes: usize,
    rng: [u64; 4],
    grads: Vec<f32>,
    host: PoolStats,
    comm: CommStats,
    err: Option<TrainError>,
}

/// A collective with transient-fault replay: wraps
/// [`Communicator::retrying`] (which tallies the retry counters) and marks
/// each replay with a `recover.retry` trace event.
fn retrying_traced<T>(
    comm: &Communicator,
    budget: usize,
    recorder: Option<&Recorder>,
    mut f: impl FnMut(&Communicator) -> fpdt_comm::Result<T>,
) -> Result<T, TrainError> {
    comm.retrying(budget, |c| {
        let out = f(c);
        if let (Err(e), Some(rec)) = (&out, recorder) {
            if e.is_retryable() {
                rec.event("recover.retry");
            }
        }
        out
    })
    .map_err(TrainError::Comm)
}

/// One rank's place in the segment geometry: its index, the rank count,
/// and the sequence shard plan (None when the whole sequence is local).
struct RankCtx<'a> {
    rank: usize,
    world: usize,
    plan: Option<&'a ChunkPlan>,
}

/// Runs one rank's share of a segment: rebuild the replica from the
/// host-side state, run whole accumulation windows, and on a failed window
/// roll back to the last step boundary (rewind the data RNG, zero the
/// gradients) instead of committing partial state.
fn run_rank_segment(
    cfg: &TrainConfig,
    ctx: &RankCtx<'_>,
    exec: &mut dyn AttentionExec,
    recorder: Option<&Recorder>,
    seg: &SegmentIn,
    mut sync_and_step: impl FnMut(
        &mut GptModel,
        &mut AdamW,
        f32,
        usize,
    ) -> Result<(f32, usize, Vec<f32>), TrainError>,
) -> RankOut {
    let RankCtx { rank, world, plan } = *ctx;
    let mut model = GptModel::new(&cfg.model, cfg.seed);
    if let Some(rec) = recorder {
        model = model.with_recorder(rec.clone());
    }
    model.set_params(&seg.params);
    let mut opt = AdamW::new(AdamWConfig {
        lr: cfg.lr,
        ..Default::default()
    });
    let n = seg.params.len();
    let zero = cfg.zero_shard && world > 1;
    if zero {
        // ZeRO-1: this rank owns one contiguous slice of the flat moment
        // vectors, stored under the single parameter id 0.
        let (lo, hi) = (rank * n / world, (rank + 1) * n / world);
        opt.import_state(
            seg.opt_step,
            vec![(0, seg.m[lo..hi].to_vec(), seg.v[lo..hi].to_vec())],
        );
    } else {
        // Dense: per-tensor moments keyed by visit order, sliced out of
        // the flat vectors by each tensor's length.
        let mut entries = Vec::new();
        let mut off = 0usize;
        let mut id = 0u64;
        model.for_each_param(|p, _| {
            let len = p.numel();
            entries.push((
                id,
                seg.m[off..off + len].to_vec(),
                seg.v[off..off + len].to_vec(),
            ));
            off += len;
            id += 1;
        });
        opt.import_state(seg.opt_step, entries);
    }
    let mut corpus = Corpus::new(cfg.model.vocab, 0.05, cfg.seed ^ 0x5eed);
    corpus.set_rng_state(seg.rng);

    let mlp_chunks = 2 * cfg.mode.chunks();
    let loss_chunks = (cfg.model.vocab / cfg.model.hidden * 2).max(1);
    let accum = cfg.grad_accum.max(1);
    let mut losses = Vec::with_capacity(seg.steps / accum);
    let mut grads = Vec::new();
    let mut done = 0usize;
    let mut err = None;
    'windows: for w in 0..seg.steps / accum {
        let rng_snap = corpus.rng_state();
        model.zero_grad();
        let mut window_loss = 0.0f32;
        let mut window_tokens = 0usize;
        for _micro in 0..accum {
            let (gx, gy) = corpus.sample(cfg.seq);
            let (tokens, targets, pos) = match plan {
                Some(p) => (
                    p.shard(rank, &gx),
                    p.shard(rank, &gy),
                    p.local_positions(rank),
                ),
                None => (gx, gy, (0..cfg.seq).collect()),
            };
            let fb = if cfg.activation_checkpoint {
                model.forward_backward_checkpointed(
                    exec,
                    &tokens,
                    &targets,
                    &pos,
                    mlp_chunks,
                    loss_chunks,
                )
            } else {
                model.forward_backward(exec, &tokens, &targets, &pos, mlp_chunks, loss_chunks)
            };
            match fb {
                Ok(stats) => {
                    window_loss += stats.loss_sum;
                    window_tokens += stats.tokens;
                }
                Err(e) => {
                    err = Some(exec_error(e));
                    corpus.set_rng_state(rng_snap);
                    model.zero_grad();
                    if let Some(rec) = recorder {
                        rec.event("recover.rollback");
                    }
                    break 'windows;
                }
            }
        }
        // linear warmup on the *global* optimizer-step counter, so resumed
        // segments continue the schedule exactly
        if cfg.warmup_steps > 0 {
            let opt_step_no = (seg.base_step + (w + 1) * accum) / accum;
            let frac = (opt_step_no as f32 / cfg.warmup_steps as f32).min(1.0);
            opt.set_lr(cfg.lr * frac);
        }
        match sync_and_step(&mut model, &mut opt, window_loss, window_tokens) {
            Ok((loss_sum, total_tokens, g)) => {
                losses.push(loss_sum / total_tokens as f32);
                grads = g;
                done += accum;
            }
            Err(e) => {
                err = Some(e);
                corpus.set_rng_state(rng_snap);
                model.zero_grad();
                if let Some(rec) = recorder {
                    rec.event("recover.rollback");
                }
                break 'windows;
            }
        }
    }

    let params = model.collect_params();
    let opt_bytes = opt.state_bytes();
    let (opt_step, entries) = opt.export_state();
    let (m, v) = if zero {
        let (_, m, v) = entries.into_iter().next().expect("imported at entry");
        (m, v)
    } else {
        let mut m = Vec::with_capacity(n);
        let mut v = Vec::with_capacity(n);
        for (_, em, ev) in entries {
            m.extend_from_slice(&em);
            v.extend_from_slice(&ev);
        }
        (m, v)
    };
    RankOut {
        steps: done,
        losses,
        params,
        m,
        v,
        opt_step,
        opt_bytes,
        rng: corpus.rng_state(),
        grads,
        host: PoolStats::default(),
        comm: CommStats::default(),
        err,
    }
}

/// Runs one segment at the configured geometry, returning every rank's
/// result in rank order.
fn run_segment(cfg: &TrainConfig, recorder: Option<&Recorder>, seg: &SegmentIn) -> Vec<RankOut> {
    match cfg.mode {
        Mode::Single => {
            let mut exec = LocalAttention::new(1);
            vec![run_rank_segment(
                cfg,
                &RankCtx {
                    rank: 0,
                    world: 1,
                    plan: None,
                },
                &mut exec,
                recorder,
                seg,
                |model, opt, ls, tok| {
                    let flat = model.collect_grads();
                    model.set_grads(&flat, 1.0 / tok as f32);
                    model.optimizer_step(opt);
                    Ok((ls, tok, flat))
                },
            )]
        }
        Mode::Ulysses | Mode::Ring | Mode::Fpdt { .. } => {
            let world = cfg.world;
            let chunks = cfg.mode.chunks();
            let offload = cfg.mode.offload();
            let retries = cfg.runtime.comm_retries;
            run_group(world, |comm| {
                let comm = Arc::new(comm);
                let plan = ChunkPlan::new(cfg.seq, world, chunks).expect("validated by Trainer");
                // SPMD-symmetric fault injection: every rank arms the same
                // faults, so failures (and recoveries) stay collective.
                if cfg.runtime.fault_inject > 0 {
                    comm.inject_fault("all_gather", cfg.runtime.fault_inject);
                }
                let rank = comm.rank();
                let mut dist_exec: Option<DistAttention> = None;
                let mut ring_exec;
                let exec: &mut dyn AttentionExec = if matches!(cfg.mode, Mode::Ring) {
                    ring_exec = RingAttentionExec::new(&comm, cfg.seq);
                    &mut ring_exec
                } else {
                    let opts = cfg.runtime.with_offload(offload);
                    let mut ex = DistAttention::with_opts(Arc::clone(&comm), plan, opts);
                    if let Some(rec) = recorder {
                        ex = ex.with_recorder(rec.clone());
                    }
                    dist_exec = Some(ex);
                    dist_exec.as_mut().expect("just set")
                };
                let sync = |model: &mut GptModel, opt: &mut AdamW, ls: f32, tok: usize| {
                    // deterministic rank-order reductions; gradients go
                    // through the chunked reducer (future-work fix: the
                    // staging transient is capped at two buckets instead
                    // of a flat copy of every gradient)
                    const REDUCE_BUCKET: usize = 1 << 16;
                    let scalars = retrying_traced(&comm, retries, recorder, |c| {
                        c.all_reduce(&[ls, tok as f32])
                    })?;
                    let flat = model.collect_grads();
                    let reduce_span = recorder
                        .map(|r| r.span("allreduce.grads").bytes((flat.len() * 4) as u64));
                    let reduced = retrying_traced(&comm, retries, recorder, |c| {
                        c.all_reduce_chunked(&flat, REDUCE_BUCKET)
                    })?;
                    drop(reduce_span);
                    let scale = 1.0 / scalars[1];
                    if cfg.zero_shard {
                        // ZeRO-1: this rank owns a contiguous slice of
                        // the flat parameter vector; update it with its
                        // own optimizer shard, then all-gather.
                        let mut params = model.collect_params();
                        let n = params.len();
                        let (lo, hi) = (rank * n / world, (rank + 1) * n / world);
                        let gshard: Vec<f32> =
                            reduced[lo..hi].iter().map(|g| g * scale).collect();
                        opt.begin_step();
                        opt.update(0, &mut params[lo..hi], &gshard);
                        let shards = retrying_traced(&comm, retries, recorder, |c| {
                            c.all_gather(&params[lo..hi])
                        })?;
                        let full: Vec<f32> = shards.into_iter().flatten().collect();
                        model.set_params(&full);
                    } else {
                        model.set_grads(&reduced, scale);
                        model.optimizer_step(opt);
                    }
                    Ok((scalars[0], scalars[1] as usize, reduced))
                };
                let ctx = RankCtx {
                    rank,
                    world,
                    plan: Some(&plan),
                };
                let mut out = run_rank_segment(cfg, &ctx, exec, recorder, seg, sync);
                out.host = match cfg.mode {
                    Mode::Ring => PoolStats::default(),
                    _ => dist_exec
                        .as_ref()
                        .map(|e| e.host_stats())
                        .unwrap_or_default(),
                };
                out.comm = comm.stats();
                out
            })
        }
    }
}

// ---------------------------------------------------------------------------
// The Trainer
// ---------------------------------------------------------------------------

/// A resumable, fault-tolerant training session (see the module docs).
///
/// Durable state is held host-side between segments in a world-independent
/// flat layout; `run_steps` executes whole accumulation windows on a fresh
/// thread-device world and commits the results. [`Trainer::checkpoint`]
/// cuts per-rank shards from that host state (no collective involved);
/// [`Trainer::resume`] rebuilds a `Trainer` from a shard directory.
#[derive(Debug)]
pub struct Trainer {
    cfg: TrainConfig,
    recorder: Option<Recorder>,
    params: Vec<f32>,
    opt_m: Vec<f32>,
    opt_v: Vec<f32>,
    opt_step: u64,
    opt_state_bytes: usize,
    rng: [u64; 4],
    step: usize,
    losses: Vec<f32>,
    grads: Vec<f32>,
    host: PoolStats,
    comm: CommStats,
}

impl Trainer {
    /// Initializes a session at step 0 (seeded weights, zero moments).
    ///
    /// # Panics
    ///
    /// Panics on inconsistent configuration (heads not divisible by world,
    /// sequence not divisible by `world * chunks`) — the same contract
    /// [`train`] always had.
    pub fn new(cfg: TrainConfig) -> Self {
        cfg.validate();
        let mut model = GptModel::new(&cfg.model, cfg.seed);
        let params = model.collect_params();
        let n = params.len();
        let rng = Corpus::new(cfg.model.vocab, 0.05, cfg.seed ^ 0x5eed).rng_state();
        Trainer {
            cfg,
            recorder: None,
            params,
            opt_m: vec![0.0; n],
            opt_v: vec![0.0; n],
            opt_step: 0,
            opt_state_bytes: 0,
            rng,
            step: 0,
            losses: Vec::new(),
            grads: Vec::new(),
            host: PoolStats::default(),
            comm: CommStats::default(),
        }
    }

    /// Attaches a span recorder (same instrumentation as [`train_traced`],
    /// plus `recover.retry` / `recover.rollback` events).
    #[must_use]
    pub fn with_recorder(mut self, recorder: Recorder) -> Self {
        self.recorder = Some(recorder);
        self
    }

    /// Micro-steps completed so far.
    pub fn step(&self) -> usize {
        self.step
    }

    /// The session's configuration.
    pub fn config(&self) -> &TrainConfig {
        &self.cfg
    }

    /// Replaces the runtime knobs for subsequent segments (retry budgets,
    /// fault injection, payload precision — all bitwise-invisible except
    /// where documented).
    pub fn set_runtime(&mut self, runtime: RuntimeOptions) {
        self.cfg.runtime = runtime;
    }

    /// Elastically resizes the thread-device world for subsequent
    /// segments. Parameters and moments are stored flat and re-shard
    /// automatically; only the geometry of the next segment changes.
    ///
    /// # Panics
    ///
    /// Panics when the model/sequence cannot divide across the new world
    /// (same divisibility contract as [`Trainer::new`]).
    pub fn resize(&mut self, world: usize) {
        let mut cfg = self.cfg.clone();
        cfg.world = world;
        cfg.validate();
        self.cfg = cfg;
    }

    /// Runs `n` micro-steps (whole accumulation windows) and commits the
    /// resulting state. On a collective failure past the retry budget the
    /// session rolls back to the last completed optimizer window and the
    /// error is returned — call `run_steps` again to retry the remainder.
    ///
    /// # Errors
    ///
    /// [`TrainError::Comm`] for collective failures, [`TrainError::Exec`]
    /// for executor failures.
    ///
    /// # Panics
    ///
    /// Panics when `n` is not a multiple of `grad_accum` — segments must
    /// align to optimizer windows or rollback boundaries would be
    /// ambiguous.
    pub fn run_steps(&mut self, n: usize) -> Result<(), TrainError> {
        let accum = self.cfg.grad_accum.max(1);
        assert!(
            n.is_multiple_of(accum),
            "run_steps({n}) must be a whole number of grad_accum={accum} windows"
        );
        if n == 0 {
            return Ok(());
        }
        let seg = SegmentIn {
            params: self.params.clone(),
            m: self.opt_m.clone(),
            v: self.opt_v.clone(),
            opt_step: self.opt_step,
            rng: self.rng,
            base_step: self.step,
            steps: n,
        };
        let mut outs = run_segment(&self.cfg, self.recorder.as_ref(), &seg);
        let world = outs.len();
        let zero = self.cfg.zero_shard && world > 1;
        let (m, v) = if zero {
            // reassemble the flat moment vectors from every rank's slice
            // (slice bounds are the same integer division the next
            // segment will use, so concatenation is exact at any world)
            let mut m = Vec::with_capacity(self.params.len());
            let mut v = Vec::with_capacity(self.params.len());
            for o in &outs {
                m.extend_from_slice(&o.m);
                v.extend_from_slice(&o.v);
            }
            (m, v)
        } else {
            (std::mem::take(&mut outs[0].m), std::mem::take(&mut outs[0].v))
        };
        let r0 = outs.swap_remove(0);
        self.params = r0.params;
        self.opt_m = m;
        self.opt_v = v;
        self.opt_step = r0.opt_step;
        self.opt_state_bytes = r0.opt_bytes;
        self.rng = r0.rng;
        self.step += r0.steps;
        self.losses.extend(r0.losses);
        if !r0.grads.is_empty() {
            self.grads = r0.grads;
        }
        self.host.merge(&r0.host);
        self.comm.merge(&r0.comm);
        match r0.err {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// The accumulated report — identical to what [`train`] returns for an
    /// uninterrupted run of the same steps.
    pub fn report(&self) -> TrainReport {
        TrainReport {
            losses: self.losses.clone(),
            host: self.host,
            opt_state_bytes: self.opt_state_bytes,
            comm: self.comm.clone(),
            grads: self.grads.clone(),
        }
    }

    /// Replicated (world-independent) metadata every shard carries.
    fn meta_dict(&self) -> StateDict {
        let cfg = &self.cfg;
        let mut d = StateDict::new();
        d.insert("cfg.model.name", StateValue::Str(cfg.model.name.clone()));
        d.insert(
            "cfg.model.family",
            StateValue::Str(
                match cfg.model.family {
                    Family::Gpt => "gpt",
                    Family::Llama => "llama",
                }
                .into(),
            ),
        );
        d.insert(
            "cfg.model.dims",
            StateValue::U64(vec![
                cfg.model.layers as u64,
                cfg.model.hidden as u64,
                cfg.model.heads as u64,
                cfg.model.kv_heads as u64,
                cfg.model.ffn_hidden as u64,
                cfg.model.vocab as u64,
            ]),
        );
        d.insert(
            "cfg.train",
            StateValue::U64(vec![
                cfg.world as u64,
                cfg.seq as u64,
                cfg.steps as u64,
                cfg.grad_accum as u64,
                cfg.warmup_steps as u64,
                u64::from(cfg.zero_shard),
                u64::from(cfg.activation_checkpoint),
                cfg.seed,
            ]),
        );
        d.insert("cfg.lr", StateValue::F32(vec![cfg.lr]));
        d.insert("cfg.mode", StateValue::Str(cfg.mode.as_str()));
        d.insert("trainer.step", StateValue::U64(vec![self.step as u64]));
        d.insert("opt.step", StateValue::U64(vec![self.opt_step]));
        d.insert(
            "opt.state_bytes",
            StateValue::U64(vec![self.opt_state_bytes as u64]),
        );
        d.insert("rng.state", StateValue::U64(self.rng.to_vec()));
        d.insert("trainer.losses", StateValue::F32(self.losses.clone()));
        d.insert("trainer.grads", StateValue::F32(self.grads.clone()));
        d.insert(
            "stats.pool",
            StateValue::U64(vec![
                self.host.offloads,
                self.host.fetches,
                self.host.bytes,
                self.host.peak_bytes,
                self.host.bytes_offloaded,
                self.host.bytes_fetched,
            ]),
        );
        d.insert(
            "stats.comm.ops",
            StateValue::Str(
                self.comm
                    .ops
                    .iter()
                    .map(|(n, _)| n.as_str())
                    .collect::<Vec<_>>()
                    .join("\n"),
            ),
        );
        d.insert(
            "stats.comm.counts",
            StateValue::U64(
                self.comm
                    .ops
                    .iter()
                    .flat_map(|(_, s)| [s.sends, s.recvs, s.bytes_sent, s.bytes_recv])
                    .collect(),
            ),
        );
        d.insert(
            "stats.comm.recovery",
            StateValue::U64(vec![self.comm.faults, self.comm.retries]),
        );
        d
    }

    /// Writes a sharded checkpoint: one `shard-{rank}-of-{world}.fpdt`
    /// per configured rank, each holding the replicated metadata plus that
    /// rank's contiguous slice of the flat parameters and moments. Cut
    /// from host state at a segment boundary, so no collective (and no
    /// live world) is involved.
    ///
    /// # Errors
    ///
    /// Typed [`CkptError`]s for any filesystem failure.
    pub fn checkpoint(&self, dir: &Path) -> Result<(), CkptError> {
        let world = self.cfg.world.max(1);
        let n = self.params.len();
        for rank in 0..world {
            let (lo, hi) = (rank * n / world, (rank + 1) * n / world);
            let mut d = self.meta_dict();
            d.insert("meta.rank", StateValue::U64(vec![rank as u64]));
            d.insert(
                "model.params.shard",
                StateValue::F32(self.params[lo..hi].to_vec()),
            );
            d.insert("opt.m.shard", StateValue::F32(self.opt_m[lo..hi].to_vec()));
            d.insert("opt.v.shard", StateValue::F32(self.opt_v[lo..hi].to_vec()));
            ckpt::write_shard(dir, rank, world, &d)?;
        }
        Ok(())
    }

    /// [`Trainer::checkpoint`] into the `FPDT_CKPT_DIR` directory, when
    /// set. Returns the directory written to, or `None` when the knob is
    /// unset.
    ///
    /// # Errors
    ///
    /// Same as [`Trainer::checkpoint`].
    pub fn checkpoint_default(&self) -> Result<Option<PathBuf>, CkptError> {
        match crate::runtime::options::env_ckpt_dir() {
            Some(dir) => {
                self.checkpoint(&dir)?;
                Ok(Some(dir))
            }
            None => Ok(None),
        }
    }

    /// Rebuilds a session from a sharded checkpoint directory. The
    /// training configuration is restored from the shards; runtime knobs
    /// come from the current `FPDT_*` environment (they are policy, not
    /// state).
    ///
    /// # Errors
    ///
    /// Typed [`CkptError`]s: missing or extra shards, truncation, version
    /// mismatches, replicated metadata that disagrees between shards, or
    /// state that does not fit the recorded architecture.
    pub fn resume(dir: &Path) -> Result<Self, CkptError> {
        let paths = ckpt::shard_paths(dir)?;
        let shards: Vec<StateDict> = paths
            .iter()
            .map(|p| ckpt::read_shard(p))
            .collect::<Result<_, _>>()?;
        let meta = &shards[0];
        let dims = meta.u64s("cfg.model.dims")?;
        if dims.len() != 6 {
            return Err(CkptError::Corrupt(format!(
                "cfg.model.dims has {} fields",
                dims.len()
            )));
        }
        let family = match meta.str("cfg.model.family")? {
            "gpt" => Family::Gpt,
            "llama" => Family::Llama,
            other => {
                return Err(CkptError::Corrupt(format!("unknown model family {other:?}")))
            }
        };
        let model = ModelConfig {
            name: meta.str("cfg.model.name")?.to_string(),
            family,
            layers: dims[0] as usize,
            hidden: dims[1] as usize,
            heads: dims[2] as usize,
            kv_heads: dims[3] as usize,
            ffn_hidden: dims[4] as usize,
            vocab: dims[5] as usize,
        };
        let t = meta.u64s("cfg.train")?;
        if t.len() != 8 {
            return Err(CkptError::Corrupt(format!("cfg.train has {} fields", t.len())));
        }
        if t[0] as usize != shards.len() {
            return Err(CkptError::Corrupt(format!(
                "config world {} disagrees with {} shards",
                t[0],
                shards.len()
            )));
        }
        let lr_entry = meta.f32s("cfg.lr")?;
        let cfg = TrainConfig {
            model,
            world: t[0] as usize,
            seq: t[1] as usize,
            steps: t[2] as usize,
            grad_accum: t[3] as usize,
            warmup_steps: t[4] as usize,
            zero_shard: t[5] != 0,
            activation_checkpoint: t[6] != 0,
            seed: t[7],
            lr: *lr_entry.first().ok_or_else(|| {
                CkptError::Corrupt("cfg.lr is empty".into())
            })?,
            mode: Mode::parse(meta.str("cfg.mode")?)?,
            runtime: RuntimeOptions::from_env(),
        };
        cfg.validate();

        let mut params = Vec::new();
        let mut m = Vec::new();
        let mut v = Vec::new();
        for (rank, shard) in shards.iter().enumerate() {
            if shard.u64_scalar("meta.rank")? != rank as u64 {
                return Err(CkptError::Corrupt(format!(
                    "shard {rank} carries the wrong rank id"
                )));
            }
            for key in ["trainer.step", "opt.step"] {
                if shard.u64_scalar(key)? != meta.u64_scalar(key)? {
                    return Err(CkptError::Corrupt(format!(
                        "replicated {key} disagrees between shards 0 and {rank}"
                    )));
                }
            }
            params.extend_from_slice(shard.f32s("model.params.shard")?);
            m.extend_from_slice(shard.f32s("opt.m.shard")?);
            v.extend_from_slice(shard.f32s("opt.v.shard")?);
        }
        let expected = GptModel::new(&cfg.model, cfg.seed).param_count();
        if params.len() != expected {
            return Err(CkptError::Corrupt(format!(
                "shards hold {} parameters, architecture expects {expected}",
                params.len()
            )));
        }
        if m.len() != expected || v.len() != expected {
            return Err(CkptError::Corrupt(format!(
                "moment vectors ({}, {}) do not match {expected} parameters",
                m.len(),
                v.len()
            )));
        }

        let rng_words = meta.u64s("rng.state")?;
        let rng: [u64; 4] = rng_words.try_into().map_err(|_| {
            CkptError::Corrupt(format!("rng.state has {} words", rng_words.len()))
        })?;
        let pool = meta.u64s("stats.pool")?;
        if pool.len() != 6 {
            return Err(CkptError::Corrupt(format!(
                "stats.pool has {} fields",
                pool.len()
            )));
        }
        let host = PoolStats {
            offloads: pool[0],
            fetches: pool[1],
            bytes: pool[2],
            peak_bytes: pool[3],
            bytes_offloaded: pool[4],
            bytes_fetched: pool[5],
        };
        let op_names: Vec<&str> = {
            let raw = meta.str("stats.comm.ops")?;
            if raw.is_empty() {
                Vec::new()
            } else {
                raw.split('\n').collect()
            }
        };
        let counts = meta.u64s("stats.comm.counts")?;
        if counts.len() != op_names.len() * 4 {
            return Err(CkptError::Corrupt(format!(
                "stats.comm.counts has {} values for {} ops",
                counts.len(),
                op_names.len()
            )));
        }
        let recovery = meta.u64s("stats.comm.recovery")?;
        if recovery.len() != 2 {
            return Err(CkptError::Corrupt(format!(
                "stats.comm.recovery has {} fields",
                recovery.len()
            )));
        }
        let comm = CommStats {
            ops: op_names
                .iter()
                .zip(counts.chunks_exact(4))
                .map(|(name, c)| {
                    (
                        name.to_string(),
                        fpdt_comm::OpStats {
                            sends: c[0],
                            recvs: c[1],
                            bytes_sent: c[2],
                            bytes_recv: c[3],
                        },
                    )
                })
                .collect(),
            recv_wait: std::time::Duration::ZERO,
            faults: recovery[0],
            retries: recovery[1],
        };

        Ok(Trainer {
            step: meta.u64_scalar("trainer.step")? as usize,
            opt_step: meta.u64_scalar("opt.step")?,
            opt_state_bytes: meta.u64_scalar("opt.state_bytes")? as usize,
            losses: meta.f32s("trainer.losses")?.to_vec(),
            grads: meta.f32s("trainer.grads")?.to_vec(),
            cfg,
            recorder: None,
            params,
            opt_m: m,
            opt_v: v,
            rng,
            host,
            comm,
        })
    }
}

/// Runs a training experiment, returning the per-step mean losses.
///
/// A thin wrapper over [`Trainer`]: `Trainer::new(cfg)` + one
/// `run_steps` segment covering every whole accumulation window in
/// `cfg.steps`.
///
/// # Panics
///
/// Panics on inconsistent configuration (heads not divisible by world,
/// sequence not divisible by `world * chunks`) or internal errors — this
/// is an experiment driver, not a library entry point.
pub fn train(cfg: &TrainConfig) -> TrainReport {
    train_traced(cfg, None)
}

/// [`train`] with wall-clock instrumentation: when a [`Recorder`] is
/// given, every rank records spans for its per-chunk all-to-alls,
/// attention chunks, host offload copies, and gradient all-reduces
/// (export with [`Recorder::chrome_trace_json`]).
///
/// # Panics
///
/// Same conditions as [`train`].
pub fn train_traced(cfg: &TrainConfig, recorder: Option<&Recorder>) -> TrainReport {
    let mut trainer = Trainer::new(cfg.clone());
    if let Some(rec) = recorder {
        trainer = trainer.with_recorder(rec.clone());
    }
    let accum = cfg.grad_accum.max(1);
    trainer
        .run_steps(cfg.steps / accum * accum)
        .expect("training step failed");
    trainer.report()
}

/// Test fixture: [`TrainConfig::small`] with f32 payloads pinned. The
/// cross-mode loss comparisons below assume f32 wires at their tight
/// tolerances, so an ambient `FPDT_BF16=1` (the CI bf16 leg) must not
/// leak into them; bf16 numerics get their own dedicated tolerance test.
#[cfg(test)]
fn small_f32(mode: Mode) -> TrainConfig {
    let mut cfg = TrainConfig::small(mode);
    cfg.runtime = cfg.runtime.with_payload_bf16(false);
    cfg
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: &[f32], b: &[f32], tol: f32) -> bool {
        a.len() == b.len()
            && a.iter()
                .zip(b)
                .all(|(x, y)| (x - y).abs() <= tol * (1.0 + x.abs().max(y.abs())))
    }

    #[test]
    fn single_mode_learns() {
        let cfg = TrainConfig {
            steps: 25,
            ..TrainConfig::small(Mode::Single)
        };
        let r = train(&cfg);
        assert_eq!(r.losses.len(), 25);
        assert!(
            r.losses.last().unwrap() < &(r.losses[0] * 0.8),
            "{} -> {}",
            r.losses[0],
            r.losses.last().unwrap()
        );
    }

    #[test]
    fn figure14_fpdt_matches_baseline_losses() {
        // The paper's Figure 14/§5.6 claim: FPDT (with and without
        // offload) is numerically equivalent to the baseline — identical
        // loss curves up to float reassociation.
        let base = TrainConfig {
            steps: 8,
            ..small_f32(Mode::Single)
        };
        let single = train(&base);
        let ulysses = train(&TrainConfig {
            mode: Mode::Ulysses,
            ..base.clone()
        });
        let fpdt = train(&TrainConfig {
            mode: Mode::Fpdt {
                chunks: 4,
                offload: false,
            },
            ..base.clone()
        });
        let fpdt_off = train(&TrainConfig {
            mode: Mode::Fpdt {
                chunks: 4,
                offload: true,
            },
            ..base.clone()
        });

        assert!(
            close(&single.losses, &ulysses.losses, 2e-3),
            "ulysses: {:?} vs {:?}",
            single.losses,
            ulysses.losses
        );
        assert!(
            close(&single.losses, &fpdt.losses, 2e-3),
            "fpdt: {:?} vs {:?}",
            single.losses,
            fpdt.losses
        );
        assert!(
            close(&single.losses, &fpdt_off.losses, 2e-3),
            "fpdt+offload"
        );
        // offload actually exercised the host pool
        assert!(fpdt_off.host.offloads > 0);
        assert_eq!(fpdt.host.offloads, 0);
    }

    #[test]
    fn ranks_agree_bitwise() {
        // With deterministic reductions, reruns are bit-identical.
        let cfg = TrainConfig {
            steps: 5,
            mode: Mode::Fpdt {
                chunks: 2,
                offload: true,
            },
            ..TrainConfig::small(Mode::Single)
        };
        let a = train(&cfg);
        let b = train(&cfg);
        assert_eq!(a.losses, b.losses);
    }

    #[test]
    fn traced_training_records_spans_and_comm_traffic() {
        let cfg = TrainConfig {
            steps: 2,
            mode: Mode::Fpdt {
                chunks: 2,
                offload: true,
            },
            ..TrainConfig::small(Mode::Single)
        };
        let rec = Recorder::new();
        let r = train_traced(&cfg, Some(&rec));
        // Tracing must not perturb the trajectory.
        assert_eq!(r.losses, train(&cfg).losses);
        // Every instrumented phase shows up.
        for prefix in [
            "a2a.",
            "attn.fwd.",
            "attn.bwd.",
            "offload.",
            "allreduce.",
            "block.",
        ] {
            assert!(rec.total_us(prefix) >= 0.0);
            assert!(
                rec.records().iter().any(|s| s.label.starts_with(prefix)),
                "no {prefix} spans"
            );
        }
        // The trace exports and mentions both ranks' threads.
        let trace = rec.chrome_trace_json();
        assert!(trace.contains("\"allreduce.grads\""));
        // Comm counters saw the gradient all-reduce and the per-chunk
        // all-to-alls.
        assert!(r.comm.op("all_gather").is_some(), "{:?}", r.comm);
        assert!(r.comm.op("all_to_all").is_some());
        assert!(r.comm.total_bytes_sent() > 0);
    }

    #[test]
    fn bf16_payload_training_stays_close_with_identical_schedule() {
        // The FPDT_BF16 contract at the training level: same schedule
        // (transfer and message counts; all-to-all bytes exactly halved),
        // losses within bf16 rounding tolerance of the f32 run.
        let base = TrainConfig {
            steps: 6,
            mode: Mode::Fpdt {
                chunks: 4,
                offload: true,
            },
            ..small_f32(Mode::Single)
        };
        let full = train(&base);
        let mut bf_cfg = base.clone();
        bf_cfg.runtime = bf_cfg.runtime.with_payload_bf16(true);
        let half = train(&bf_cfg);
        assert!(
            close(&full.losses, &half.losses, 5e-2),
            "bf16 drift: {:?} vs {:?}",
            full.losses,
            half.losses
        );
        assert!(
            half.losses.last().unwrap() < &half.losses[0],
            "still learns under bf16: {:?}",
            half.losses
        );
        // Schedule shape is invariant.
        assert_eq!(full.host.offloads, half.host.offloads, "offload count");
        assert_eq!(full.host.fetches, half.host.fetches, "fetch count");
        assert!(
            half.host.bytes_offloaded < full.host.bytes_offloaded,
            "KV offload bytes shrink"
        );
        let af = full.comm.op("all_to_all").expect("f32 a2a");
        let ab = half.comm.op("all_to_all").expect("bf16 a2a");
        assert_eq!(af.sends, ab.sends, "same a2a message count");
        assert_eq!(af.recvs, ab.recvs);
        assert_eq!(ab.bytes_sent * 2, af.bytes_sent, "bytes_a2a halve exactly");
        // The gradient all-reduce stays full precision.
        let gf = full.comm.op("all_gather").expect("grad reduce");
        let gb = half.comm.op("all_gather").expect("grad reduce");
        assert_eq!(gf.bytes_sent, gb.bytes_sent, "all-reduce stays f32");
    }

    #[test]
    #[should_panic(expected = "sequence must divide")]
    fn bad_chunking_panics() {
        let cfg = TrainConfig {
            seq: 30,
            mode: Mode::Fpdt {
                chunks: 4,
                offload: false,
            },
            ..TrainConfig::small(Mode::Single)
        };
        train(&cfg);
    }
}

#[cfg(test)]
mod llama_tests {
    use super::*;

    #[test]
    fn llama_family_fpdt_matches_baseline() {
        // The paper trains both GPT and Llama; the equivalence claim must
        // hold under RMSNorm + SwiGLU + grouped-query attention too.
        let base = TrainConfig {
            model: ModelConfig::tiny_llama(2, 32, 4, 2, 48),
            world: 2,
            seq: 64,
            steps: 8,
            lr: 3e-3,
            seed: 7,
            mode: Mode::Single,
            ..small_f32(Mode::Single)
        };
        let single = train(&base);
        assert!(
            single.losses.last().unwrap() < &single.losses[0],
            "llama learns: {:?}",
            single.losses
        );
        for mode in [
            Mode::Ulysses,
            Mode::Fpdt {
                chunks: 4,
                offload: true,
            },
        ] {
            let run = train(&TrainConfig {
                mode,
                ..base.clone()
            });
            for (a, b) in run.losses.iter().zip(&single.losses) {
                assert!((a - b).abs() < 5e-3, "{mode:?}: {a} vs {b}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "kv heads must divide")]
    fn gqa_kv_heads_must_divide_world() {
        let cfg = TrainConfig {
            model: ModelConfig::tiny_llama(1, 32, 4, 2, 48),
            world: 4, // 2 kv heads cannot scatter over 4 ranks
            seq: 64,
            steps: 1,
            lr: 1e-3,
            seed: 0,
            mode: Mode::Ulysses,
            ..TrainConfig::default()
        };
        train(&cfg);
    }
}

#[cfg(test)]
mod zero_tests {
    use super::*;

    #[test]
    fn zero1_sharding_preserves_trajectory_and_shrinks_state() {
        // Paper §3.2: FPDT composes with the ZeRO family. A ZeRO-1
        // sharded optimizer must produce the identical trajectory (Adam
        // is elementwise) while holding 1/world of the moment state.
        let base = TrainConfig {
            steps: 8,
            world: 4,
            mode: Mode::Fpdt {
                chunks: 2,
                offload: true,
            },
            ..TrainConfig::small(Mode::Single)
        };
        let dense = train(&base);
        let sharded = train(&TrainConfig {
            zero_shard: true,
            ..base.clone()
        });
        for (a, b) in sharded.losses.iter().zip(&dense.losses) {
            assert!((a - b).abs() < 1e-4, "{a} vs {b}");
        }
        // rank 0 holds ~1/4 of the moment bytes (flat sharding)
        let ratio = sharded.opt_state_bytes as f64 / dense.opt_state_bytes as f64;
        assert!((0.2..0.3).contains(&ratio), "state ratio {ratio}");
    }

    #[test]
    fn zero1_works_for_ulysses_too() {
        let base = TrainConfig {
            steps: 5,
            ..TrainConfig::small(Mode::Ulysses)
        };
        let dense = train(&base);
        let sharded = train(&TrainConfig {
            zero_shard: true,
            ..base.clone()
        });
        for (a, b) in sharded.losses.iter().zip(&dense.losses) {
            assert!((a - b).abs() < 1e-4);
        }
    }
}

#[cfg(test)]
mod ring_tests {
    use super::*;

    #[test]
    fn ring_attention_matches_baseline_losses() {
        // Ring Attention is also exact (blockwise online attention +
        // rotating gradients): same trajectory as the single-device run.
        let base = TrainConfig {
            steps: 8,
            ..TrainConfig::small(Mode::Single)
        };
        let single = train(&base);
        let ring = train(&TrainConfig {
            mode: Mode::Ring,
            world: 4,
            ..base.clone()
        });
        for (a, b) in ring.losses.iter().zip(&single.losses) {
            assert!((a - b).abs() < 5e-3, "{a} vs {b}");
        }
    }

    #[test]
    fn ring_works_with_odd_head_counts() {
        // Unlike Ulysses, ring attention has no head-divisibility
        // constraint: 3 heads on 2 ranks is fine.
        let cfg = TrainConfig {
            model: ModelConfig::tiny(1, 48, 3, 40),
            world: 2,
            seq: 32,
            steps: 3,
            lr: 1e-3,
            seed: 5,
            mode: Mode::Ring,
            ..TrainConfig::default()
        };
        let r = train(&cfg);
        assert!(r.losses.iter().all(|l| l.is_finite()));
    }
}

#[cfg(test)]
mod ac_tests {
    use super::*;

    #[test]
    fn activation_checkpointing_is_numerically_free() {
        // Recompute-in-backward must not change the trajectory, in any
        // mode — including FPDT with offload, where the recompute streams
        // chunks back through the host pool a second time.
        let base = TrainConfig {
            steps: 6,
            ..small_f32(Mode::Single)
        };
        let plain = train(&base);
        for mode in [
            Mode::Single,
            Mode::Ulysses,
            Mode::Fpdt {
                chunks: 4,
                offload: true,
            },
        ] {
            let ac = train(&TrainConfig {
                mode,
                activation_checkpoint: true,
                ..base.clone()
            });
            for (a, b) in ac.losses.iter().zip(&plain.losses) {
                assert!((a - b).abs() < 5e-3, "{mode:?} AC diverged: {a} vs {b}");
            }
        }
    }

    #[test]
    fn checkpointing_doubles_offload_traffic() {
        // The recompute pass re-offloads every chunk: host transfer counts
        // roughly double relative to the plain run.
        let base = TrainConfig {
            steps: 3,
            mode: Mode::Fpdt {
                chunks: 4,
                offload: true,
            },
            ..TrainConfig::small(Mode::Single)
        };
        let plain = train(&base);
        let ac = train(&TrainConfig {
            activation_checkpoint: true,
            ..base.clone()
        });
        assert!(
            ac.host.offloads > plain.host.offloads * 3 / 2,
            "AC offloads {} vs plain {}",
            ac.host.offloads,
            plain.host.offloads
        );
    }
}

#[cfg(test)]
mod accum_tests {
    use super::*;

    #[test]
    fn accumulation_equivalence_across_modes() {
        // Grad accumulation is a data-layout question orthogonal to the
        // parallel strategy: FPDT with accumulation must match the
        // single-device run with accumulation, window for window.
        let base = TrainConfig {
            steps: 8,
            grad_accum: 2,
            ..small_f32(Mode::Single)
        };
        let single = train(&base);
        assert_eq!(single.losses.len(), 4, "one record per optimizer step");
        let fpdt = train(&TrainConfig {
            mode: Mode::Fpdt {
                chunks: 2,
                offload: true,
            },
            ..base.clone()
        });
        for (a, b) in fpdt.losses.iter().zip(&single.losses) {
            assert!((a - b).abs() < 5e-3, "{a} vs {b}");
        }
    }

    #[test]
    fn accumulation_learns() {
        let cfg = TrainConfig {
            steps: 24,
            grad_accum: 3,
            ..TrainConfig::default()
        };
        let r = train(&cfg);
        assert_eq!(r.losses.len(), 8);
        assert!(r.losses.last().unwrap() < &r.losses[0]);
    }
}


#[cfg(test)]
mod warmup_tests {
    use super::*;

    #[test]
    fn warmup_changes_early_steps_but_still_matches_across_modes() {
        let base = TrainConfig {
            steps: 10,
            warmup_steps: 5,
            ..small_f32(Mode::Single)
        };
        let plain = train(&TrainConfig {
            warmup_steps: 0,
            ..base.clone()
        });
        let warm = train(&base);
        // warmup slows early progress
        assert!(warm.losses[2] >= plain.losses[2] - 1e-4);
        // and the equivalence claim holds under warmup too
        let warm_fpdt = train(&TrainConfig {
            mode: Mode::Fpdt {
                chunks: 4,
                offload: true,
            },
            ..base.clone()
        });
        for (a, b) in warm_fpdt.losses.iter().zip(&warm.losses) {
            assert!((a - b).abs() < 5e-3, "{a} vs {b}");
        }
    }
}
