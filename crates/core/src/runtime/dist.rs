//! Multi-threaded distributed training — the Figure 14 experiment.
//!
//! Every rank is an OS thread owning a full replica of a (tiny) GPT,
//! initialized from the same seed. Sequences shard across ranks through a
//! [`ChunkPlan`] (the rank-ordinal shuffle, labels included); gradients
//! all-reduce in deterministic rank order; each rank then applies an
//! identical AdamW step. FPDT is "a pure system optimization" (paper
//! §5.6): its loss curve must coincide with the baseline's, which
//! [`train`] lets benchmarks and tests verify directly.

use crate::chunk::ChunkPlan;
use crate::offload::PoolStats;
use crate::runtime::data::Corpus;
use crate::runtime::exec::{AttentionExec, DistAttention, LocalAttention, RingAttentionExec};
use crate::runtime::gpt::GptModel;
use crate::runtime::options::RuntimeOptions;
use fpdt_comm::run_group;
use fpdt_model::config::ModelConfig;
use fpdt_tensor::nn::{AdamW, AdamWConfig};
use fpdt_trace::Recorder;
use std::sync::Arc;

/// Which training mode to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// One device, full sequence (the ground-truth trajectory).
    Single,
    /// DeepSpeed Ulysses: sequence parallel, one all-to-all per layer.
    Ulysses,
    /// Ring Attention: contiguous sequence shards, KV blocks rotate around
    /// the ring (full heads everywhere — no head scattering).
    Ring,
    /// FPDT: chunked pipeline with optional host offload.
    Fpdt {
        /// Sequence chunks per rank.
        chunks: usize,
        /// Cache idle chunks in the host pool.
        offload: bool,
    },
}

impl Mode {
    fn chunks(&self) -> usize {
        match self {
            Mode::Single | Mode::Ulysses | Mode::Ring => 1,
            Mode::Fpdt { chunks, .. } => *chunks,
        }
    }

    fn offload(&self) -> bool {
        matches!(self, Mode::Fpdt { offload: true, .. })
    }
}

/// Configuration of a training run.
#[derive(Debug, Clone)]
pub struct TrainConfig {
    /// Model architecture (use [`ModelConfig::tiny`]).
    pub model: ModelConfig,
    /// Ranks (ignored for [`Mode::Single`]).
    pub world: usize,
    /// Global sequence length per step.
    pub seq: usize,
    /// Optimizer steps.
    pub steps: usize,
    /// Learning rate.
    pub lr: f32,
    /// Seed for weights and data.
    pub seed: u64,
    /// Training mode.
    pub mode: Mode,
    /// ZeRO-1: shard optimizer state across ranks — each rank updates only
    /// its slice of the flat parameter vector (reduce-scatter semantics)
    /// and all-gathers the result, exactly like DeepSpeed ZeRO-1. The
    /// trajectory is unchanged (paper §3.2: FPDT composes with ZeRO).
    pub zero_shard: bool,
    /// Activation checkpointing (the paper's "AC."): save only block
    /// inputs in forward, recompute blocks in backward. Also unchanged
    /// numerically.
    pub activation_checkpoint: bool,
    /// Gradient accumulation: micro-steps per optimizer step (>= 1). The
    /// recorded loss is the window mean; all equivalence claims hold
    /// per-window.
    pub grad_accum: usize,
    /// Linear learning-rate warmup over this many optimizer steps
    /// (0 = constant LR). Applied identically in every mode, so the
    /// equivalence claims are schedule-independent.
    pub warmup_steps: usize,
    /// Runtime knobs (offload copy stream, asynchronous comm stream,
    /// kernel threads), defaulting from the `FPDT_*` environment via
    /// [`RuntimeOptions::from_env`]. The `offload` field is overridden by
    /// [`Mode::Fpdt`]'s flag. Every setting is bitwise-invisible.
    pub runtime: RuntimeOptions,
}

impl Default for TrainConfig {
    fn default() -> Self {
        Self::small(Mode::Single)
    }
}

impl TrainConfig {
    /// A small default suitable for tests and the quickstart example.
    pub fn small(mode: Mode) -> Self {
        TrainConfig {
            model: ModelConfig::tiny(2, 32, 4, 50),
            world: 2,
            seq: 64,
            steps: 10,
            lr: 3e-3,
            seed: 42,
            mode,
            zero_shard: false,
            activation_checkpoint: false,
            grad_accum: 1,
            warmup_steps: 0,
            runtime: RuntimeOptions::from_env(),
        }
    }
}

/// Result of a training run.
#[derive(Debug, Clone)]
pub struct TrainReport {
    /// Mean loss per step (identical on every rank).
    pub losses: Vec<f32>,
    /// Host-pool statistics of rank 0 (all zeros unless offloading).
    pub host: PoolStats,
    /// Bytes of Adam moment state held by rank 0 — shrinks by `1/world`
    /// under ZeRO-1 sharding.
    pub opt_state_bytes: usize,
    /// Rank 0's per-collective traffic counters (empty for
    /// [`Mode::Single`]).
    pub comm: fpdt_comm::CommStats,
}

fn training_loop(
    cfg: &TrainConfig,
    rank: usize,
    plan: Option<&ChunkPlan>,
    exec: &mut dyn AttentionExec,
    recorder: Option<&Recorder>,
    mut sync_and_step: impl FnMut(&mut GptModel, &mut AdamW, f32, usize) -> (f32, usize),
) -> (Vec<f32>, usize) {
    let mut model = GptModel::new(&cfg.model, cfg.seed);
    if let Some(rec) = recorder {
        model = model.with_recorder(rec.clone());
    }
    let mut opt = AdamW::new(AdamWConfig {
        lr: cfg.lr,
        ..Default::default()
    });
    let mut corpus = Corpus::new(cfg.model.vocab, 0.05, cfg.seed ^ 0x5eed);
    let mlp_chunks = 2 * cfg.mode.chunks();
    let loss_chunks = (cfg.model.vocab / cfg.model.hidden * 2).max(1);
    let accum = cfg.grad_accum.max(1);
    let mut losses = Vec::with_capacity(cfg.steps / accum + 1);
    let mut window_loss = 0.0f32;
    let mut window_tokens = 0usize;
    for step in 0..cfg.steps {
        if step % accum == 0 {
            model.zero_grad();
            window_loss = 0.0;
            window_tokens = 0;
        }
        let (gx, gy) = corpus.sample(cfg.seq);
        let (tokens, targets, pos) = match plan {
            Some(p) => (
                p.shard(rank, &gx),
                p.shard(rank, &gy),
                p.local_positions(rank),
            ),
            None => (gx, gy, (0..cfg.seq).collect()),
        };
        let stats = if cfg.activation_checkpoint {
            model
                .forward_backward_checkpointed(
                    exec,
                    &tokens,
                    &targets,
                    &pos,
                    mlp_chunks,
                    loss_chunks,
                )
                .expect("checkpointed forward/backward succeeds")
        } else {
            model
                .forward_backward(exec, &tokens, &targets, &pos, mlp_chunks, loss_chunks)
                .expect("forward/backward succeeds")
        };
        window_loss += stats.loss_sum;
        window_tokens += stats.tokens;
        if (step + 1) % accum == 0 {
            // linear warmup on the optimizer-step counter
            if cfg.warmup_steps > 0 {
                let opt_step = (step + 1) / accum;
                let frac = (opt_step as f32 / cfg.warmup_steps as f32).min(1.0);
                opt.set_lr(cfg.lr * frac);
            }
            let (loss_sum, total_tokens) =
                sync_and_step(&mut model, &mut opt, window_loss, window_tokens);
            losses.push(loss_sum / total_tokens as f32);
        }
    }
    (losses, opt.state_bytes())
}

/// Runs a training experiment, returning the per-step mean losses.
///
/// # Panics
///
/// Panics on inconsistent configuration (heads not divisible by world,
/// sequence not divisible by `world * chunks`) or internal errors — this
/// is an experiment driver, not a library entry point.
pub fn train(cfg: &TrainConfig) -> TrainReport {
    train_traced(cfg, None)
}

/// [`train`] with wall-clock instrumentation: when a [`Recorder`] is
/// given, every rank records spans for its per-chunk all-to-alls,
/// attention chunks, host offload copies, and gradient all-reduces
/// (export with [`Recorder::chrome_trace_json`]).
///
/// # Panics
///
/// Same conditions as [`train`].
pub fn train_traced(cfg: &TrainConfig, recorder: Option<&Recorder>) -> TrainReport {
    match cfg.mode {
        Mode::Single => {
            let mut exec = LocalAttention::new(1);
            let (losses, opt_state_bytes) =
                training_loop(cfg, 0, None, &mut exec, recorder, |model, opt, ls, tok| {
                    let flat = model.collect_grads();
                    model.set_grads(&flat, 1.0 / tok as f32);
                    model.optimizer_step(opt);
                    (ls, tok)
                });
            TrainReport {
                losses,
                host: PoolStats::default(),
                opt_state_bytes,
                comm: fpdt_comm::CommStats::default(),
            }
        }
        Mode::Ulysses | Mode::Ring | Mode::Fpdt { .. } => {
            let world = cfg.world;
            if !matches!(cfg.mode, Mode::Ring) {
                // Ring keeps full heads; Ulysses/FPDT scatter them.
                assert!(
                    cfg.model.heads.is_multiple_of(world),
                    "heads must divide across ranks"
                );
                assert!(
                    cfg.model.kv_heads.is_multiple_of(world),
                    "kv heads must divide across ranks (Ulysses head scattering)"
                );
            }
            let chunks = cfg.mode.chunks();
            assert!(
                cfg.seq.is_multiple_of(world * chunks),
                "sequence must divide into world x chunks segments"
            );
            let offload = cfg.mode.offload();
            let mut results = run_group(world, |comm| {
                let comm = Arc::new(comm);
                let plan = ChunkPlan::new(cfg.seq, world, chunks).expect("validated above");
                let mut dist_exec: Option<DistAttention> = None;
                let mut ring_exec;
                let exec: &mut dyn AttentionExec = if matches!(cfg.mode, Mode::Ring) {
                    ring_exec = RingAttentionExec::new(&comm, cfg.seq);
                    &mut ring_exec
                } else {
                    let opts = cfg.runtime.with_offload(offload);
                    let mut ex = DistAttention::with_opts(Arc::clone(&comm), plan, opts);
                    if let Some(rec) = recorder {
                        ex = ex.with_recorder(rec.clone());
                    }
                    dist_exec = Some(ex);
                    dist_exec.as_mut().expect("just set")
                };
                let rank = comm.rank();
                let (losses, opt_bytes) =
                    training_loop(cfg, rank, Some(&plan), exec, recorder, |model, opt, ls, tok| {
                        // deterministic rank-order reductions; gradients go
                        // through the chunked reducer (future-work fix: the
                        // staging transient is capped at two buckets instead
                        // of a flat copy of every gradient)
                        const REDUCE_BUCKET: usize = 1 << 16;
                        let scalars = comm.all_reduce(&[ls, tok as f32]).expect("group alive");
                        let flat = model.collect_grads();
                        let reduce_span = recorder
                            .map(|r| r.span("allreduce.grads").bytes((flat.len() * 4) as u64));
                        let reduced = comm
                            .all_reduce_chunked(&flat, REDUCE_BUCKET)
                            .expect("group alive");
                        drop(reduce_span);
                        let scale = 1.0 / scalars[1];
                        if cfg.zero_shard {
                            // ZeRO-1: this rank owns a contiguous slice of
                            // the flat parameter vector; update it with its
                            // own optimizer shard, then all-gather.
                            let mut params = model.collect_params();
                            let n = params.len();
                            let (lo, hi) = (rank * n / world, (rank + 1) * n / world);
                            let gshard: Vec<f32> =
                                reduced[lo..hi].iter().map(|g| g * scale).collect();
                            opt.begin_step();
                            opt.update(0, &mut params[lo..hi], &gshard);
                            let shards =
                                comm.all_gather(&params[lo..hi]).expect("group alive");
                            let full: Vec<f32> = shards.into_iter().flatten().collect();
                            model.set_params(&full);
                        } else {
                            model.set_grads(&reduced, scale);
                            model.optimizer_step(opt);
                        }
                        (scalars[0], scalars[1] as usize)
                    });
                let host = match cfg.mode {
                    Mode::Ring => PoolStats::default(),
                    _ => dist_exec
                        .as_ref()
                        .map(|e| e.host_stats())
                        .unwrap_or_default(),
                };
                (losses, host, opt_bytes, comm.stats())
            });
            let (losses, host, opt_state_bytes, comm) = results.remove(0);
            TrainReport {
                losses,
                host,
                opt_state_bytes,
                comm,
            }
        }
    }
}

/// Test fixture: [`TrainConfig::small`] with f32 payloads pinned. The
/// cross-mode loss comparisons below assume f32 wires at their tight
/// tolerances, so an ambient `FPDT_BF16=1` (the CI bf16 leg) must not
/// leak into them; bf16 numerics get their own dedicated tolerance test.
#[cfg(test)]
fn small_f32(mode: Mode) -> TrainConfig {
    let mut cfg = TrainConfig::small(mode);
    cfg.runtime = cfg.runtime.with_payload_bf16(false);
    cfg
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: &[f32], b: &[f32], tol: f32) -> bool {
        a.len() == b.len()
            && a.iter()
                .zip(b)
                .all(|(x, y)| (x - y).abs() <= tol * (1.0 + x.abs().max(y.abs())))
    }

    #[test]
    fn single_mode_learns() {
        let cfg = TrainConfig {
            steps: 25,
            ..TrainConfig::small(Mode::Single)
        };
        let r = train(&cfg);
        assert_eq!(r.losses.len(), 25);
        assert!(
            r.losses.last().unwrap() < &(r.losses[0] * 0.8),
            "{} -> {}",
            r.losses[0],
            r.losses.last().unwrap()
        );
    }

    #[test]
    fn figure14_fpdt_matches_baseline_losses() {
        // The paper's Figure 14/§5.6 claim: FPDT (with and without
        // offload) is numerically equivalent to the baseline — identical
        // loss curves up to float reassociation.
        let base = TrainConfig {
            steps: 8,
            ..small_f32(Mode::Single)
        };
        let single = train(&base);
        let ulysses = train(&TrainConfig {
            mode: Mode::Ulysses,
            ..base.clone()
        });
        let fpdt = train(&TrainConfig {
            mode: Mode::Fpdt {
                chunks: 4,
                offload: false,
            },
            ..base.clone()
        });
        let fpdt_off = train(&TrainConfig {
            mode: Mode::Fpdt {
                chunks: 4,
                offload: true,
            },
            ..base.clone()
        });

        assert!(
            close(&single.losses, &ulysses.losses, 2e-3),
            "ulysses: {:?} vs {:?}",
            single.losses,
            ulysses.losses
        );
        assert!(
            close(&single.losses, &fpdt.losses, 2e-3),
            "fpdt: {:?} vs {:?}",
            single.losses,
            fpdt.losses
        );
        assert!(
            close(&single.losses, &fpdt_off.losses, 2e-3),
            "fpdt+offload"
        );
        // offload actually exercised the host pool
        assert!(fpdt_off.host.offloads > 0);
        assert_eq!(fpdt.host.offloads, 0);
    }

    #[test]
    fn ranks_agree_bitwise() {
        // With deterministic reductions, reruns are bit-identical.
        let cfg = TrainConfig {
            steps: 5,
            mode: Mode::Fpdt {
                chunks: 2,
                offload: true,
            },
            ..TrainConfig::small(Mode::Single)
        };
        let a = train(&cfg);
        let b = train(&cfg);
        assert_eq!(a.losses, b.losses);
    }

    #[test]
    fn traced_training_records_spans_and_comm_traffic() {
        let cfg = TrainConfig {
            steps: 2,
            mode: Mode::Fpdt {
                chunks: 2,
                offload: true,
            },
            ..TrainConfig::small(Mode::Single)
        };
        let rec = Recorder::new();
        let r = train_traced(&cfg, Some(&rec));
        // Tracing must not perturb the trajectory.
        assert_eq!(r.losses, train(&cfg).losses);
        // Every instrumented phase shows up.
        for prefix in [
            "a2a.",
            "attn.fwd.",
            "attn.bwd.",
            "offload.",
            "allreduce.",
            "block.",
        ] {
            assert!(rec.total_us(prefix) >= 0.0);
            assert!(
                rec.records().iter().any(|s| s.label.starts_with(prefix)),
                "no {prefix} spans"
            );
        }
        // The trace exports and mentions both ranks' threads.
        let trace = rec.chrome_trace_json();
        assert!(trace.contains("\"allreduce.grads\""));
        // Comm counters saw the gradient all-reduce and the per-chunk
        // all-to-alls.
        assert!(r.comm.op("all_gather").is_some(), "{:?}", r.comm);
        assert!(r.comm.op("all_to_all").is_some());
        assert!(r.comm.total_bytes_sent() > 0);
    }

    #[test]
    fn bf16_payload_training_stays_close_with_identical_schedule() {
        // The FPDT_BF16 contract at the training level: same schedule
        // (transfer and message counts; all-to-all bytes exactly halved),
        // losses within bf16 rounding tolerance of the f32 run.
        let base = TrainConfig {
            steps: 6,
            mode: Mode::Fpdt {
                chunks: 4,
                offload: true,
            },
            ..small_f32(Mode::Single)
        };
        let full = train(&base);
        let mut bf_cfg = base.clone();
        bf_cfg.runtime = bf_cfg.runtime.with_payload_bf16(true);
        let half = train(&bf_cfg);
        assert!(
            close(&full.losses, &half.losses, 5e-2),
            "bf16 drift: {:?} vs {:?}",
            full.losses,
            half.losses
        );
        assert!(
            half.losses.last().unwrap() < &half.losses[0],
            "still learns under bf16: {:?}",
            half.losses
        );
        // Schedule shape is invariant.
        assert_eq!(full.host.offloads, half.host.offloads, "offload count");
        assert_eq!(full.host.fetches, half.host.fetches, "fetch count");
        assert!(
            half.host.bytes_offloaded < full.host.bytes_offloaded,
            "KV offload bytes shrink"
        );
        let af = full.comm.op("all_to_all").expect("f32 a2a");
        let ab = half.comm.op("all_to_all").expect("bf16 a2a");
        assert_eq!(af.sends, ab.sends, "same a2a message count");
        assert_eq!(af.recvs, ab.recvs);
        assert_eq!(ab.bytes_sent * 2, af.bytes_sent, "bytes_a2a halve exactly");
        // The gradient all-reduce stays full precision.
        let gf = full.comm.op("all_gather").expect("grad reduce");
        let gb = half.comm.op("all_gather").expect("grad reduce");
        assert_eq!(gf.bytes_sent, gb.bytes_sent, "all-reduce stays f32");
    }

    #[test]
    #[should_panic(expected = "sequence must divide")]
    fn bad_chunking_panics() {
        let cfg = TrainConfig {
            seq: 30,
            mode: Mode::Fpdt {
                chunks: 4,
                offload: false,
            },
            ..TrainConfig::small(Mode::Single)
        };
        train(&cfg);
    }
}

#[cfg(test)]
mod llama_tests {
    use super::*;

    #[test]
    fn llama_family_fpdt_matches_baseline() {
        // The paper trains both GPT and Llama; the equivalence claim must
        // hold under RMSNorm + SwiGLU + grouped-query attention too.
        let base = TrainConfig {
            model: ModelConfig::tiny_llama(2, 32, 4, 2, 48),
            world: 2,
            seq: 64,
            steps: 8,
            lr: 3e-3,
            seed: 7,
            mode: Mode::Single,
            ..small_f32(Mode::Single)
        };
        let single = train(&base);
        assert!(
            single.losses.last().unwrap() < &single.losses[0],
            "llama learns: {:?}",
            single.losses
        );
        for mode in [
            Mode::Ulysses,
            Mode::Fpdt {
                chunks: 4,
                offload: true,
            },
        ] {
            let run = train(&TrainConfig {
                mode,
                ..base.clone()
            });
            for (a, b) in run.losses.iter().zip(&single.losses) {
                assert!((a - b).abs() < 5e-3, "{mode:?}: {a} vs {b}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "kv heads must divide")]
    fn gqa_kv_heads_must_divide_world() {
        let cfg = TrainConfig {
            model: ModelConfig::tiny_llama(1, 32, 4, 2, 48),
            world: 4, // 2 kv heads cannot scatter over 4 ranks
            seq: 64,
            steps: 1,
            lr: 1e-3,
            seed: 0,
            mode: Mode::Ulysses,
            ..TrainConfig::default()
        };
        train(&cfg);
    }
}

#[cfg(test)]
mod zero_tests {
    use super::*;

    #[test]
    fn zero1_sharding_preserves_trajectory_and_shrinks_state() {
        // Paper §3.2: FPDT composes with the ZeRO family. A ZeRO-1
        // sharded optimizer must produce the identical trajectory (Adam
        // is elementwise) while holding 1/world of the moment state.
        let base = TrainConfig {
            steps: 8,
            world: 4,
            mode: Mode::Fpdt {
                chunks: 2,
                offload: true,
            },
            ..TrainConfig::small(Mode::Single)
        };
        let dense = train(&base);
        let sharded = train(&TrainConfig {
            zero_shard: true,
            ..base.clone()
        });
        for (a, b) in sharded.losses.iter().zip(&dense.losses) {
            assert!((a - b).abs() < 1e-4, "{a} vs {b}");
        }
        // rank 0 holds ~1/4 of the moment bytes (flat sharding)
        let ratio = sharded.opt_state_bytes as f64 / dense.opt_state_bytes as f64;
        assert!((0.2..0.3).contains(&ratio), "state ratio {ratio}");
    }

    #[test]
    fn zero1_works_for_ulysses_too() {
        let base = TrainConfig {
            steps: 5,
            ..TrainConfig::small(Mode::Ulysses)
        };
        let dense = train(&base);
        let sharded = train(&TrainConfig {
            zero_shard: true,
            ..base.clone()
        });
        for (a, b) in sharded.losses.iter().zip(&dense.losses) {
            assert!((a - b).abs() < 1e-4);
        }
    }
}

#[cfg(test)]
mod ring_tests {
    use super::*;

    #[test]
    fn ring_attention_matches_baseline_losses() {
        // Ring Attention is also exact (blockwise online attention +
        // rotating gradients): same trajectory as the single-device run.
        let base = TrainConfig {
            steps: 8,
            ..TrainConfig::small(Mode::Single)
        };
        let single = train(&base);
        let ring = train(&TrainConfig {
            mode: Mode::Ring,
            world: 4,
            ..base.clone()
        });
        for (a, b) in ring.losses.iter().zip(&single.losses) {
            assert!((a - b).abs() < 5e-3, "{a} vs {b}");
        }
    }

    #[test]
    fn ring_works_with_odd_head_counts() {
        // Unlike Ulysses, ring attention has no head-divisibility
        // constraint: 3 heads on 2 ranks is fine.
        let cfg = TrainConfig {
            model: ModelConfig::tiny(1, 48, 3, 40),
            world: 2,
            seq: 32,
            steps: 3,
            lr: 1e-3,
            seed: 5,
            mode: Mode::Ring,
            ..TrainConfig::default()
        };
        let r = train(&cfg);
        assert!(r.losses.iter().all(|l| l.is_finite()));
    }
}

#[cfg(test)]
mod ac_tests {
    use super::*;

    #[test]
    fn activation_checkpointing_is_numerically_free() {
        // Recompute-in-backward must not change the trajectory, in any
        // mode — including FPDT with offload, where the recompute streams
        // chunks back through the host pool a second time.
        let base = TrainConfig {
            steps: 6,
            ..small_f32(Mode::Single)
        };
        let plain = train(&base);
        for mode in [
            Mode::Single,
            Mode::Ulysses,
            Mode::Fpdt {
                chunks: 4,
                offload: true,
            },
        ] {
            let ac = train(&TrainConfig {
                mode,
                activation_checkpoint: true,
                ..base.clone()
            });
            for (a, b) in ac.losses.iter().zip(&plain.losses) {
                assert!((a - b).abs() < 5e-3, "{mode:?} AC diverged: {a} vs {b}");
            }
        }
    }

    #[test]
    fn checkpointing_doubles_offload_traffic() {
        // The recompute pass re-offloads every chunk: host transfer counts
        // roughly double relative to the plain run.
        let base = TrainConfig {
            steps: 3,
            mode: Mode::Fpdt {
                chunks: 4,
                offload: true,
            },
            ..TrainConfig::small(Mode::Single)
        };
        let plain = train(&base);
        let ac = train(&TrainConfig {
            activation_checkpoint: true,
            ..base.clone()
        });
        assert!(
            ac.host.offloads > plain.host.offloads * 3 / 2,
            "AC offloads {} vs plain {}",
            ac.host.offloads,
            plain.host.offloads
        );
    }
}

#[cfg(test)]
mod accum_tests {
    use super::*;

    #[test]
    fn accumulation_equivalence_across_modes() {
        // Grad accumulation is a data-layout question orthogonal to the
        // parallel strategy: FPDT with accumulation must match the
        // single-device run with accumulation, window for window.
        let base = TrainConfig {
            steps: 8,
            grad_accum: 2,
            ..small_f32(Mode::Single)
        };
        let single = train(&base);
        assert_eq!(single.losses.len(), 4, "one record per optimizer step");
        let fpdt = train(&TrainConfig {
            mode: Mode::Fpdt {
                chunks: 2,
                offload: true,
            },
            ..base.clone()
        });
        for (a, b) in fpdt.losses.iter().zip(&single.losses) {
            assert!((a - b).abs() < 5e-3, "{a} vs {b}");
        }
    }

    #[test]
    fn accumulation_learns() {
        let cfg = TrainConfig {
            steps: 24,
            grad_accum: 3,
            ..TrainConfig::default()
        };
        let r = train(&cfg);
        assert_eq!(r.losses.len(), 8);
        assert!(r.losses.last().unwrap() < &r.losses[0]);
    }
}


#[cfg(test)]
mod warmup_tests {
    use super::*;

    #[test]
    fn warmup_changes_early_steps_but_still_matches_across_modes() {
        let base = TrainConfig {
            steps: 10,
            warmup_steps: 5,
            ..small_f32(Mode::Single)
        };
        let plain = train(&TrainConfig {
            warmup_steps: 0,
            ..base.clone()
        });
        let warm = train(&base);
        // warmup slows early progress
        assert!(warm.losses[2] >= plain.losses[2] - 1e-4);
        // and the equivalence claim holds under warmup too
        let warm_fpdt = train(&TrainConfig {
            mode: Mode::Fpdt {
                chunks: 4,
                offload: true,
            },
            ..base.clone()
        });
        for (a, b) in warm_fpdt.losses.iter().zip(&warm.losses) {
            assert!((a - b).abs() < 5e-3, "{a} vs {b}");
        }
    }
}
