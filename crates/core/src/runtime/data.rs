//! Deterministic synthetic corpus for the convergence experiments
//! (paper Figure 14).
//!
//! Tokens follow a noisy Markov chain over the vocabulary: from state `t`
//! the next token is `walk(t)` with high probability, otherwise uniform.
//! A small GPT drives its loss well below the uniform entropy within a
//! few dozen steps, which makes divergence between training modes
//! visible immediately.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A seeded corpus generator.
#[derive(Debug, Clone)]
pub struct Corpus {
    vocab: usize,
    noise: f64,
    rng: SmallRng,
}

impl Corpus {
    /// Creates a generator over `vocab` tokens with transition noise
    /// `noise` (probability of an off-chain token).
    ///
    /// # Panics
    ///
    /// Panics if `vocab < 2` or `noise` is outside `[0, 1]`.
    pub fn new(vocab: usize, noise: f64, seed: u64) -> Self {
        assert!(vocab >= 2, "need at least two tokens");
        assert!((0.0..=1.0).contains(&noise), "noise must be a probability");
        Corpus {
            vocab,
            noise,
            rng: SmallRng::seed_from_u64(seed),
        }
    }

    /// The deterministic "successor" function of the chain.
    fn walk(&self, t: usize) -> usize {
        (t * 5 + 3) % self.vocab
    }

    /// Samples a sequence of `len + 1` tokens and returns
    /// `(inputs, targets)` where `targets[i] = inputs[i + 1]`.
    pub fn sample(&mut self, len: usize) -> (Vec<usize>, Vec<usize>) {
        let mut seq = Vec::with_capacity(len + 1);
        seq.push(self.rng.gen_range(0..self.vocab));
        for i in 0..len {
            let prev = seq[i];
            let next = if self.rng.gen_bool(self.noise) {
                self.rng.gen_range(0..self.vocab)
            } else {
                self.walk(prev)
            };
            seq.push(next);
        }
        let inputs = seq[..len].to_vec();
        let targets = seq[1..].to_vec();
        (inputs, targets)
    }

    /// The raw RNG stream state, for checkpointing the corpus mid-run.
    pub fn rng_state(&self) -> [u64; 4] {
        self.rng.state()
    }

    /// Repositions the token stream at a state captured by
    /// [`Corpus::rng_state`]; subsequent samples continue that stream
    /// exactly.
    pub fn set_rng_state(&mut self, s: [u64; 4]) {
        self.rng = SmallRng::from_state(s);
    }

    /// The chain's conditional entropy in nats — the loss floor a perfect
    /// model converges to.
    pub fn entropy_floor(&self) -> f64 {
        // next token: walk(prev) with prob (1-noise) + noise/vocab, others
        // noise/vocab each.
        let p_hit = (1.0 - self.noise) + self.noise / self.vocab as f64;
        let p_miss = self.noise / self.vocab as f64;
        -(p_hit * p_hit.ln() + (self.vocab as f64 - 1.0) * p_miss * p_miss.ln())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let (a, _) = Corpus::new(50, 0.1, 7).sample(64);
        let (b, _) = Corpus::new(50, 0.1, 7).sample(64);
        let (c, _) = Corpus::new(50, 0.1, 8).sample(64);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn targets_are_shifted_inputs() {
        let (x, y) = Corpus::new(20, 0.2, 1).sample(32);
        assert_eq!(x.len(), 32);
        assert_eq!(y.len(), 32);
        assert_eq!(&x[1..], &y[..31]);
    }

    #[test]
    fn tokens_in_vocab() {
        let (x, y) = Corpus::new(11, 0.5, 2).sample(200);
        assert!(x.iter().chain(&y).all(|&t| t < 11));
    }

    #[test]
    fn low_noise_follows_the_chain() {
        let mut c = Corpus::new(17, 0.0, 3);
        let (x, y) = c.sample(50);
        for (a, b) in x.iter().zip(&y) {
            assert_eq!(*b, (a * 5 + 3) % 17);
        }
    }

    #[test]
    fn rng_state_roundtrip_resumes_stream() {
        let mut c = Corpus::new(50, 0.1, 9);
        c.sample(64);
        let saved = c.rng_state();
        let ahead = c.sample(64);
        let mut resumed = Corpus::new(50, 0.1, 12345);
        resumed.set_rng_state(saved);
        assert_eq!(resumed.sample(64), ahead, "resume continues the stream");
    }

    #[test]
    fn entropy_floor_bounds() {
        let c = Corpus::new(50, 0.1, 0);
        let h = c.entropy_floor();
        assert!(h > 0.0);
        assert!(h < (50.0f64).ln(), "below uniform entropy");
    }
}

/// A long-range **copy task**: the first half of the sequence is random;
/// the second half repeats it verbatim. Predicting the second half
/// requires attending `half` positions back — with FPDT chunking, that is
/// guaranteed to cross chunk boundaries, so a model that learns this task
/// proves the streamed attention carries information across chunks (and
/// across the all-to-all, the shuffle and the host pool).
///
/// Targets for the first half are [`IGNORE`](Self::IGNORE) so the loss
/// measures only the long-range predictions.
#[derive(Debug, Clone)]
pub struct CopyCorpus {
    vocab: usize,
    rng: SmallRng,
}

impl CopyCorpus {
    /// Loss-masked target id.
    pub const IGNORE: usize = usize::MAX;

    /// Creates a generator over `vocab` tokens.
    ///
    /// # Panics
    ///
    /// Panics if `vocab < 2`.
    pub fn new(vocab: usize, seed: u64) -> Self {
        assert!(vocab >= 2, "need at least two tokens");
        CopyCorpus {
            vocab,
            rng: SmallRng::seed_from_u64(seed),
        }
    }

    /// Samples `(inputs, targets)` of length `2 * half`. The prediction at
    /// position `i >= half - 1` is the token at `i + 1 - half` (the copy);
    /// earlier positions are ignored.
    pub fn sample(&mut self, half: usize) -> (Vec<usize>, Vec<usize>) {
        let first: Vec<usize> = (0..half)
            .map(|_| self.rng.gen_range(0..self.vocab))
            .collect();
        let mut inputs = first.clone();
        inputs.extend_from_slice(&first);
        let mut targets = vec![Self::IGNORE; 2 * half];
        targets[half - 1..2 * half - 1].copy_from_slice(&inputs[half..2 * half]);
        (inputs, targets)
    }
}

#[cfg(test)]
mod copy_tests {
    use super::*;

    #[test]
    fn second_half_repeats_first() {
        let (x, _) = CopyCorpus::new(16, 0).sample(8);
        assert_eq!(x.len(), 16);
        assert_eq!(&x[..8], &x[8..]);
    }

    #[test]
    fn targets_are_the_copy_and_first_half_is_masked() {
        let (x, y) = CopyCorpus::new(16, 1).sample(8);
        for (i, &t) in y.iter().take(7).enumerate() {
            assert_eq!(t, CopyCorpus::IGNORE, "position {i} masked");
        }
        for i in 7..15 {
            assert_eq!(y[i], x[i + 1 - 8], "copy target at {i}");
        }
        assert_eq!(y[15], CopyCorpus::IGNORE);
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(
            CopyCorpus::new(16, 5).sample(8),
            CopyCorpus::new(16, 5).sample(8)
        );
    }
}
