//! Pluggable attention executors.
//!
//! A GPT block hands its (RoPE'd) `q/k/v` — shaped `[s_local, heads, d]`
//! with explicit global positions — to an [`AttentionExec`] and gets the
//! attention output back in the same layout. What happens in between is
//! the difference between the training modes:
//!
//! * [`LocalAttention`] — single device, chunked online attention.
//! * [`DistAttention`] — the distributed path: per-chunk Ulysses
//!   all-to-all (heads scatter / sequence gather), streaming online
//!   attention over cached KV chunks, host offload, and the Figure-7
//!   KV-outer/Q-inner backward. With `chunks == 1` this *is* DeepSpeed
//!   Ulysses; with `chunks > 1` it is FPDT.

use super::options::RuntimeOptions;
use crate::chunk::ChunkPlan;
use crate::offload::{BufKind, ChunkKey, FetchHandle, OffloadEngine, PoolStats};
use fpdt_attention::online::{attention_block_bwd, rowwise_dot, OnlineAttention};
use fpdt_attention::{chunked, default_scale};
use fpdt_comm::{AllToAllLayout, CommEngine, Communicator, Pending};
use fpdt_tensor::Tensor;
use fpdt_trace::{Recorder, Span};
use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

/// Executor result type (tensor and communication errors both occur).
pub type ExecResult<T> = Result<T, Box<dyn std::error::Error + Send + Sync>>;

/// An attention implementation a GPT block can call into.
pub trait AttentionExec {
    /// Computes attention for `layer`, saving whatever the backward pass
    /// needs. Inputs are `[s_local, heads, d]`; `pos[t]` is the global
    /// position of local row `t`.
    ///
    /// # Errors
    ///
    /// Shape or communication failures.
    fn forward(
        &mut self,
        layer: usize,
        q: &Tensor,
        k: &Tensor,
        v: &Tensor,
        pos: &[usize],
    ) -> ExecResult<Tensor>;

    /// Consumes the saved state for `layer` and returns `(dq, dk, dv)` in
    /// the local layout.
    ///
    /// # Errors
    ///
    /// Shape or communication failures, or a missing forward for `layer`.
    fn backward(&mut self, layer: usize, dout: &Tensor) -> ExecResult<(Tensor, Tensor, Tensor)>;

    /// Drops the saved state for `layer` without running a backward pass —
    /// what activation checkpointing does after the first forward (the
    /// recompute pass will rebuild it). A no-op when nothing is saved.
    fn discard(&mut self, layer: usize);
}

struct LocalSaved {
    q: Tensor,
    k: Tensor,
    v: Tensor,
    o: Tensor,
    lse: Vec<f32>,
    pos: Vec<usize>,
}

/// Single-device chunked attention (the non-distributed reference mode).
#[derive(Default)]
pub struct LocalAttention {
    /// Number of sequence chunks for the streaming kernels (1 = plain
    /// FlashAttention-style pass).
    pub chunks: usize,
    saved: HashMap<usize, LocalSaved>,
}

impl LocalAttention {
    /// Creates an executor with the given chunk count.
    pub fn new(chunks: usize) -> Self {
        LocalAttention {
            chunks: chunks.max(1),
            saved: HashMap::new(),
        }
    }
}

impl AttentionExec for LocalAttention {
    fn forward(
        &mut self,
        layer: usize,
        q: &Tensor,
        k: &Tensor,
        v: &Tensor,
        pos: &[usize],
    ) -> ExecResult<Tensor> {
        let (o, lse) = chunked::attention_chunked_with_positions(q, k, v, pos, self.chunks, None)?;
        self.saved.insert(
            layer,
            LocalSaved {
                q: q.clone(),
                k: k.clone(),
                v: v.clone(),
                o: o.clone(),
                lse,
                pos: pos.to_vec(),
            },
        );
        Ok(o)
    }

    fn backward(&mut self, layer: usize, dout: &Tensor) -> ExecResult<(Tensor, Tensor, Tensor)> {
        let s = self
            .saved
            .remove(&layer)
            .ok_or_else(|| format!("no saved forward for layer {layer}"))?;
        let g = chunked::attention_chunked_bwd_with_positions(
            &s.q,
            &s.k,
            &s.v,
            &s.o,
            dout,
            &s.lse,
            &s.pos,
            self.chunks,
            None,
        )?;
        Ok((g.dq, g.dk, g.dv))
    }

    fn discard(&mut self, layer: usize) {
        self.saved.remove(&layer);
    }
}

/// Whether the offload copy stream is enabled by default: `FPDT_PREFETCH`
/// set to `0`/`false`/`off` disables it; anything else (including unset)
/// enables it. Results are bitwise identical either way — the knob only
/// moves transfer cost off the critical path.
pub fn prefetch_default() -> bool {
    // Shares RuntimeOptions' flag syntax and env entry point — this module
    // never reads `std::env` itself (`env-outside-options`).
    super::options::env_flag("FPDT_PREFETCH", true)
}

/// A posted all-to-all whose payload has not been needed yet. Posted ops
/// carry the comm layer's typed error so transient faults stay
/// distinguishable (and replayable) until the handle resolves.
type PendingTensor = Pending<fpdt_comm::Result<Tensor>>;
type PendingQkv = Pending<fpdt_comm::Result<(Tensor, Tensor, Tensor)>>;

/// Distributed chunked attention: Ulysses all-to-all per chunk posted on
/// an asynchronous communication stream, streaming online attention, host
/// offload behind an asynchronous double-buffered copy stream, Figure-7
/// backward.
///
/// The comm schedule mirrors the offload schedule: chunk `i+1`'s
/// all-to-all is posted (one fused QKV op per chunk) before chunk `i`'s
/// online-softmax update runs, and output/gradient chunks travel home as
/// [`Pending`] handles resolved only when the caller concatenates. With
/// `comm_async` off every post executes inline at the same program point,
/// so the wire order — and therefore every statistic — is identical.
///
/// With `balanced` on (`FPDT_BALANCE`, the default) the causal tile
/// triangle is re-cut so every pipeline slot carries near-equal work:
/// the forward posts all fused QKV ops up-front and carries each chunk's
/// first KV fetch into the previous chunk's slot, and the backward walks
/// [`balanced_slots`] instead of the row-by-row Figure-7 nest. Every
/// per-index accumulation order — and every pool/comm operation count —
/// is preserved, so results and statistics stay bitwise identical to the
/// sequential schedule.
pub struct DistAttention {
    comm: Arc<Communicator>,
    plan: ChunkPlan,
    opts: RuntimeOptions,
    host: OffloadEngine,
    engine: CommEngine,
    device: HashMap<ChunkKey, Arc<Tensor>>,
    recorder: Option<Recorder>,
    /// Ulysses layouts cached per (shape, world): every chunk of every
    /// layer shares a handful of geometries (Q and, under grouped-query
    /// attention, a narrower KV), each derived once and reused.
    fwd_layouts: HashMap<[usize; 3], AllToAllLayout>,
    inv_layouts: HashMap<[usize; 3], AllToAllLayout>,
}

impl DistAttention {
    /// Creates the executor for one rank with environment-default options.
    pub fn new(comm: Arc<Communicator>, plan: ChunkPlan, offload: bool) -> Self {
        Self::with_opts(comm, plan, RuntimeOptions::from_env().with_offload(offload))
    }

    /// Creates the executor for one rank with explicit options — the one
    /// options surface is [`RuntimeOptions`].
    pub fn with_opts(comm: Arc<Communicator>, plan: ChunkPlan, opts: RuntimeOptions) -> Self {
        let mut host = OffloadEngine::new(opts.offload && opts.prefetch);
        host.set_payload_bf16(opts.payload_bf16);
        let mut engine = CommEngine::new(Arc::clone(&comm), opts.comm_async);
        engine.set_retries(opts.comm_retries);
        DistAttention {
            engine,
            comm,
            plan,
            opts,
            host,
            device: HashMap::new(),
            recorder: None,
            fwd_layouts: HashMap::new(),
            inv_layouts: HashMap::new(),
        }
    }

    /// Attaches a span recorder: every all-to-all post, attention-chunk
    /// computation, host offload copy, and comm-stream occupancy interval
    /// records a wall-clock span.
    #[must_use]
    pub fn with_recorder(mut self, recorder: Recorder) -> Self {
        self.host.set_recorder(recorder.clone());
        self.engine.set_recorder(recorder.clone());
        self.recorder = Some(recorder);
        self
    }

    /// Host-pool transfer statistics (zero when `offload` is off).
    pub fn host_stats(&self) -> PoolStats {
        self.host.stats()
    }

    /// Ops posted on the communication stream so far — the audit counter
    /// behind "exactly one fused QKV all-to-all per chunk".
    pub fn comm_posted(&self) -> u64 {
        self.engine.posted()
    }

    /// Bytes one element occupies on the wire under the current payload
    /// format (2 with `payload_bf16`, else 4).
    fn wire_elem_bytes(&self) -> usize {
        if self.opts.payload_bf16 {
            2
        } else {
            4
        }
    }

    fn span(&self, label: &str, elems: usize) -> Option<Span> {
        let bytes = (elems * self.wire_elem_bytes()) as u64;
        self.recorder.as_ref().map(|r| r.span(label).bytes(bytes))
    }

    fn put(&mut self, key: ChunkKey, t: Arc<Tensor>) {
        if self.opts.offload {
            self.host.put(key, t);
        } else {
            self.device.insert(key, t);
        }
    }

    /// Synchronous fetch: `consume` evicts the cached chunk, otherwise it
    /// stays resident (all paths are zero-copy — the `Arc` is shared).
    fn grab(&mut self, key: ChunkKey, consume: bool) -> ExecResult<Arc<Tensor>> {
        let t = if self.opts.offload {
            self.host.fetch(&key, consume)
        } else if consume {
            self.device.remove(&key)
        } else {
            self.device.get(&key).map(Arc::clone)
        };
        t.ok_or_else(|| format!("missing cached chunk {key:?}").into())
    }

    fn take(&mut self, key: ChunkKey) -> ExecResult<Arc<Tensor>> {
        self.grab(key, true)
    }

    fn keep(&mut self, key: ChunkKey) -> ExecResult<Arc<Tensor>> {
        self.grab(key, false)
    }

    /// Asynchronous fetch: issues the transfer on the copy stream and
    /// returns a handle to wait on. Device-resident chunks (offload off)
    /// and engines without prefetch yield already-completed handles.
    fn grab_handle(&mut self, key: ChunkKey, consume: bool) -> ExecResult<FetchHandle> {
        let h = if self.opts.offload {
            self.host.prefetch(&key, consume)
        } else if consume {
            self.device.remove(&key).map(FetchHandle::ready)
        } else {
            self.device.get(&key).map(Arc::clone).map(FetchHandle::ready)
        };
        h.ok_or_else(|| format!("missing cached chunk {key:?}").into())
    }

    /// Issues the double-buffer prefetch for KV chunk `j` of `layer`.
    fn fetch_kv(
        &mut self,
        layer: usize,
        j: usize,
        consume: bool,
    ) -> ExecResult<(FetchHandle, FetchHandle)> {
        let k = self.grab_handle(ChunkKey::new(layer, BufKind::K, j), consume)?;
        let v = self.grab_handle(ChunkKey::new(layer, BufKind::V, j), consume)?;
        Ok((k, v))
    }

    /// Drops a dead cached chunk without a transfer (freeing memory is not
    /// PCIe traffic, so it must not touch the fetch counters).
    fn discard_one(&mut self, key: ChunkKey) {
        if self.opts.offload {
            self.host.discard(&key);
        } else {
            self.device.remove(&key);
        }
    }

    /// The cached forward (scatter-heads) layout for `shape`, built on
    /// first use and reused across every chunk and layer.
    fn fwd_layout(&mut self, shape: &[usize]) -> ExecResult<AllToAllLayout> {
        let world = self.comm.world();
        cached_layout(&mut self.fwd_layouts, shape, || {
            Ok(AllToAllLayout::scatter_heads(shape, world)?)
        })
    }

    /// The cached inverse (scatter-seq) layout for `shape`.
    fn inv_layout(&mut self, shape: &[usize]) -> ExecResult<AllToAllLayout> {
        let world = self.comm.world();
        cached_layout(&mut self.inv_layouts, shape, || {
            Ok(AllToAllLayout::scatter_seq(shape, world)?)
        })
    }

    /// Posts one chunk's fused QKV forward all-to-all on the comm stream:
    /// exactly one posted op per chunk, three tensors through one wire
    /// slot, so the FIFO stays aligned with the chunk loop. Q and KV may
    /// use different layouts (grouped-query attention narrows KV).
    fn post_qkv(
        &mut self,
        q: &Tensor,
        k: &Tensor,
        v: &Tensor,
        start: usize,
        len: usize,
    ) -> ExecResult<PendingQkv> {
        let qc = q.narrow(0, start, len)?;
        let kc = k.narrow(0, start, len)?;
        let vc = v.narrow(0, start, len)?;
        let lq = self.fwd_layout(qc.shape())?;
        let lkv = self.fwd_layout(kc.shape())?;
        let elems = qc.data().len() + kc.data().len() + vc.data().len();
        let bytes = (elems * self.wire_elem_bytes()) as u64;
        let bf16 = self.opts.payload_bf16;
        let _s = self.span("a2a.scatter_heads", elems);
        Ok(self.engine.post_replayed(bytes, move |comm| {
            let apply = |l: &AllToAllLayout, t: &Tensor| {
                if bf16 {
                    l.apply_bf16(comm, t)
                } else {
                    l.apply(comm, t)
                }
            };
            let qh = apply(&lq, &qc)?;
            let kh = apply(&lkv, &kc)?;
            let vh = apply(&lkv, &vc)?;
            Ok((qh, kh, vh))
        }))
    }

    /// Posts one gathered-layout chunk's forward all-to-all (the backward
    /// pass projecting a `dO` chunk).
    fn post_fwd(&mut self, t: Tensor) -> ExecResult<PendingTensor> {
        let layout = self.fwd_layout(t.shape())?;
        let elems = t.data().len();
        let bytes = (elems * self.wire_elem_bytes()) as u64;
        let bf16 = self.opts.payload_bf16;
        let _s = self.span("a2a.scatter_heads", elems);
        Ok(self.engine.post_replayed(bytes, move |comm| {
            if bf16 {
                layout.apply_bf16(comm, &t)
            } else {
                layout.apply(comm, &t)
            }
        }))
    }

    /// Posts the inverse all-to-all shipping an output or gradient chunk
    /// back to the local layout.
    fn post_inv(&mut self, t: Arc<Tensor>) -> ExecResult<PendingTensor> {
        let layout = self.inv_layout(t.shape())?;
        let elems = t.data().len();
        let bytes = (elems * self.wire_elem_bytes()) as u64;
        let bf16 = self.opts.payload_bf16;
        let _s = self.span("a2a.gather_heads", elems);
        Ok(self.engine.post_replayed(bytes, move |comm| {
            if bf16 {
                layout.apply_bf16(comm, &t)
            } else {
                layout.apply(comm, &t)
            }
        }))
    }

    /// The causal load-balanced backward (`FPDT_BALANCE`): the Figure-7
    /// tile triangle re-cut into `u` near-equal slots while every
    /// accumulator keeps its sequential update order.
    ///
    /// Three moves equalize the slots without touching numerics:
    ///
    /// * the per-chunk `dO` gathers and row-dot staging — a fully exposed
    ///   serial drain in the sequential schedule — fuse into each query
    ///   chunk's first tile, hidden behind other chunks' tiles;
    /// * every KV chunk's take-fetch is issued up-front on the copy
    ///   stream (the keys are distinct, so no chunk is ever fetched
    ///   twice while in flight);
    /// * tiles walk the triangle column-major — KV chunk `j`'s column in
    ///   ascending query order — with [`balanced_slots`] spilling the
    ///   long early columns into the short late slots.
    ///
    /// `dq_i` still accumulates its tiles in ascending `j` and
    /// `dk_j`/`dv_j` theirs in ascending `i` — the same floating-point
    /// order as the sequential nest, hence bitwise-identical gradients.
    /// Every pool/comm operation runs exactly once with the same key, so
    /// [`PoolStats`] and the comm counters are identical too.
    fn backward_balanced(
        &mut self,
        layer: usize,
        dout: &Tensor,
    ) -> ExecResult<(Tensor, Tensor, Tensor)> {
        let u = self.plan.chunks;
        let c_loc = self.plan.chunk_local_len();
        let scale = default_scale(dout.shape()[2]);

        // Post every dO gather before any tile computes: most rows open
        // in slot 0 (the balanced schedule front-loads first-column
        // tiles) and the comm stream drains behind the whole triangle.
        // KV take-fetches stay staggered — column `s+1`'s pair goes on
        // the copy stream at the start of slot `s`, one slot before the
        // column can open — so the per-tile host-pool grabs never queue
        // behind the entire triangle's KV bytes on the FIFO stream.
        let mut dout_pending: Vec<Option<PendingTensor>> = Vec::with_capacity(u);
        for i in 0..u {
            let range = self.plan.local_chunk_range(i);
            dout_pending.push(Some(self.post_fwd(dout.narrow(0, range.start, c_loc)?)?));
        }
        let mut kv_pending: Vec<Option<(FetchHandle, FetchHandle)>> = (0..u).map(|_| None).collect();
        kv_pending[0] = Some(self.fetch_kv(layer, 0, true)?);

        // One KV column's live state: the resident chunk pair and its
        // gradient accumulators (updated in ascending query order).
        struct Col {
            k: Arc<Tensor>,
            v: Arc<Tensor>,
            gpos: Vec<usize>,
            dk: Tensor,
            dv: Tensor,
        }
        let mut cols: Vec<Option<Col>> = (0..u).map(|_| None).collect();
        let mut dq_handles: Vec<Option<PendingTensor>> = (0..u).map(|_| None).collect();
        let mut dk_handles: Vec<Option<PendingTensor>> = (0..u).map(|_| None).collect();
        let mut dv_handles: Vec<Option<PendingTensor>> = (0..u).map(|_| None).collect();

        for (s, slot) in balanced_slots(u).into_iter().enumerate() {
            let _slot = self.span("slot.bwd", 0);
            if s + 1 < u && cols[s + 1].is_none() && kv_pending[s + 1].is_none() {
                kv_pending[s + 1] = Some(self.fetch_kv(layer, s + 1, true)?);
            }
            for (i, j) in slot {
                if j == 0 {
                    // First tile of query chunk i: stage its row inputs —
                    // the sequential schedule's stage-1 body, verbatim,
                    // now lazily fused into the tile sweep.
                    let pending = dout_pending[i].take().ok_or("chunk i's dO was not posted")?;
                    let doh = Arc::new(pending.wait()?);
                    let oi = self.keep(ChunkKey::new(layer, BufKind::O, i))?;
                    let dsum = {
                        let _s = self.span("kernel.attn.rowwise_dot", oi.data().len());
                        rowwise_dot(&oi, &doh)?
                    };
                    let n = dsum.len();
                    let zeros = Tensor::zeros(doh.shape());
                    self.put(ChunkKey::new(layer, BufKind::DOut, i), doh);
                    self.put(
                        ChunkKey::new(layer, BufKind::Dsum, i),
                        Arc::new(Tensor::from_vec(dsum, &[n])?),
                    );
                    self.put(ChunkKey::new(layer, BufKind::DQ, i), Arc::new(zeros));
                }
                if cols[j].is_none() {
                    // First tile of KV column j (its diagonal): land the
                    // chunk and zero its gradient accumulators.
                    let (kh, vh) = kv_pending[j].take().ok_or("KV chunk j was not prefetched")?;
                    let (kj, vj) = (kh.wait(), vh.wait());
                    let dk = Tensor::zeros(kj.shape());
                    let dv = Tensor::zeros(vj.shape());
                    cols[j] = Some(Col {
                        gpos: self.plan.gathered_positions(j),
                        k: kj,
                        v: vj,
                        dk,
                        dv,
                    });
                }
                // The tile body is the sequential inner loop's, unchanged:
                // chunk i's saved state is consumed on its diagonal tile.
                let consume = i == j;
                let qi = self.grab(ChunkKey::new(layer, BufKind::Q, i), consume)?;
                let doh = self.grab(ChunkKey::new(layer, BufKind::DOut, i), consume)?;
                let lse = self.grab(ChunkKey::new(layer, BufKind::Lse, i), consume)?;
                let dsum = self.grab(ChunkKey::new(layer, BufKind::Dsum, i), consume)?;
                if consume {
                    self.discard_one(ChunkKey::new(layer, BufKind::O, i));
                }
                let mut dq_i = unshare(self.take(ChunkKey::new(layer, BufKind::DQ, i))?);
                let gpos_i = self.plan.gathered_positions(i);
                // Closed before the DQ re-put / gradient posts below —
                // transfers must not nest inside compute spans or the
                // overlap metric counts a serial runtime as overlapped.
                let tile = self.span("attn.bwd.tile", qi.data().len());
                let col = cols[j].as_mut().ok_or("KV column j was not staged")?;
                attention_block_bwd(
                    &qi,
                    &col.k,
                    &col.v,
                    &doh,
                    lse.data(),
                    dsum.data(),
                    &gpos_i,
                    &col.gpos,
                    scale,
                    &mut dq_i,
                    &mut col.dk,
                    &mut col.dv,
                )?;
                drop(tile);
                if consume {
                    // The diagonal is row i's last tile: dq_i is final.
                    dq_handles[i] = Some(self.post_inv(Arc::new(dq_i))?);
                } else {
                    self.put(ChunkKey::new(layer, BufKind::DQ, i), Arc::new(dq_i));
                }
                if i + 1 == u {
                    // (u-1, j) is column j's last tile: dK_j/dV_j final.
                    let done = cols[j].take().ok_or("KV column j was not staged")?;
                    dk_handles[j] = Some(self.post_inv(Arc::new(done.dk))?);
                    dv_handles[j] = Some(self.post_inv(Arc::new(done.dv))?);
                }
            }
        }

        let cat = |handles: Vec<Option<PendingTensor>>| -> ExecResult<Tensor> {
            let mut parts = Vec::with_capacity(handles.len());
            for h in handles {
                parts.push(h.ok_or("gradient chunk was never finalized")?.wait()?);
            }
            let refs: Vec<&Tensor> = parts.iter().collect();
            Ok(Tensor::concat(&refs, 0)?)
        };
        Ok((cat(dq_handles)?, cat(dk_handles)?, cat(dv_handles)?))
    }
}

/// Looks up (or builds exactly once) the all-to-all layout for `shape`.
/// Non-3-D shapes fall through to `build`, which reports the shape error.
fn cached_layout(
    map: &mut HashMap<[usize; 3], AllToAllLayout>,
    shape: &[usize],
    build: impl FnOnce() -> ExecResult<AllToAllLayout>,
) -> ExecResult<AllToAllLayout> {
    let Ok(key) = <[usize; 3]>::try_from(shape) else {
        return build();
    };
    if let Some(l) = map.get(&key) {
        return Ok(*l);
    }
    let l = build()?;
    map.insert(key, l);
    Ok(l)
}

/// Takes a pooled chunk back into exclusive ownership for in-place
/// accumulation — free when the pool held the only reference.
fn unshare(t: Arc<Tensor>) -> Tensor {
    Arc::try_unwrap(t).unwrap_or_else(|a| (*a).clone())
}

/// Cuts the causal tile triangle `{(i, j) : j <= i < u}` into `u`
/// near-equal pipeline slots (sizes differ by at most one tile).
///
/// Tiles are queued column-major — KV chunk `j`'s column `(j..u, j)`
/// opens at slot `j`, diagonal first — and each slot `s` takes
/// `ceil(remaining / (u - s))` tiles from the queue front. Because
/// columns are appended in order and the queue is FIFO, the flattened
/// schedule preserves both accumulation orders the kernels rely on: for
/// fixed `i` tiles run in ascending `j`, for fixed `j` in ascending `i`.
/// Query chunk `i`'s first tile is always `(i, 0)` and column `j` always
/// opens with its diagonal `(j, j)` — exactly what the executor's lazy
/// row/column staging keys on.
fn balanced_slots(u: usize) -> Vec<Vec<(usize, usize)>> {
    let mut queue: VecDeque<(usize, usize)> = VecDeque::new();
    let mut slots: Vec<Vec<(usize, usize)>> = Vec::with_capacity(u);
    let mut remaining = u * (u + 1) / 2;
    for s in 0..u {
        for i in s..u {
            queue.push_back((i, s));
        }
        let quota = if s + 1 == u {
            queue.len()
        } else {
            remaining.div_ceil(u - s).min(queue.len())
        };
        let slot: Vec<(usize, usize)> = queue.drain(..quota).collect();
        remaining -= slot.len();
        slots.push(slot);
    }
    slots
}

impl AttentionExec for DistAttention {
    fn forward(
        &mut self,
        layer: usize,
        q: &Tensor,
        k: &Tensor,
        v: &Tensor,
        pos: &[usize],
    ) -> ExecResult<Tensor> {
        let u = self.plan.chunks;
        let c_loc = self.plan.chunk_local_len();
        debug_assert_eq!(pos, self.plan.local_positions(self.comm.rank()).as_slice());
        // Chunk 0's QKV all-to-all goes on the wire before any compute;
        // inside the loop chunk i+1's is posted before chunk i's updates
        // run, so the stream hides each transfer behind the previous
        // chunk's online softmax. The balanced schedule posts every fused
        // QKV up-front instead: the early slots are short (few KV tiles),
        // so a one-chunk lookahead cannot hide the wire time there, but
        // queue depth u can. Either way the FIFO order of fused QKV ops
        // is ascending in i and the per-chunk online-softmax update order
        // never changes, so results are bitwise identical. Output chunks
        // travel home the same way in both modes: the inverse all-to-all
        // is posted as soon as a chunk finalizes and only resolved at the
        // final concat.
        let mut o_handles: Vec<PendingTensor> = Vec::with_capacity(u);
        let mut qkv_queue: VecDeque<PendingQkv> = VecDeque::with_capacity(u);
        let posted_ahead = if self.opts.balanced { u } else { 1.min(u) };
        for i in 0..posted_ahead {
            let range = self.plan.local_chunk_range(i);
            qkv_queue.push_back(self.post_qkv(q, k, v, range.start, c_loc)?);
        }
        // Cross-chunk KV carry (balanced only): chunk i+1's first KV fetch
        // is issued while chunk i is still computing, so no slot opens on
        // an exposed transfer. Same fetch keys and counts as the
        // sequential schedule — the copies just start one slot earlier.
        let mut carry: Option<(FetchHandle, FetchHandle)> = None;
        for i in 0..u {
            let _slot = self.span("slot.fwd", 0);
            let cur = qkv_queue.pop_front().ok_or("chunk i's QKV was not posted")?;
            if !self.opts.balanced && i + 1 < u {
                let range = self.plan.local_chunk_range(i + 1);
                qkv_queue.push_back(self.post_qkv(q, k, v, range.start, c_loc)?);
            }
            // Project chunk through the all-to-all: full heads/local seq ->
            // local heads/gathered seq.
            let (qh, kh, vh) = cur.wait()?;
            let gpos = self.plan.gathered_positions(i);
            let attn_span = self.span("attn.fwd.chunk", qh.data().len());
            let qh = Arc::new(qh);
            let mut st = OnlineAttention::new_shared(Arc::clone(&qh), &gpos, None)?;
            // Stream previously cached KV chunks from host memory,
            // double-buffered: chunk j+1's transfer is issued before chunk
            // j's update runs, so the copy stream hides it behind compute
            // (paper Figure 13).
            let mut next = if i > 0 {
                match carry.take() {
                    Some(h) => Some(h),
                    None => Some(self.fetch_kv(layer, 0, false)?),
                }
            } else {
                None
            };
            for j in 0..i {
                let cur = next.take().ok_or("KV chunk j was not prefetched")?;
                next = if j + 1 < i {
                    Some(self.fetch_kv(layer, j + 1, false)?)
                } else {
                    None
                };
                let (kj, vj) = (cur.0.wait(), cur.1.wait());
                // Balanced carry for chunk i+1, issued on the last inner
                // tile only after `cur` resolved: when i == 1 this tile's
                // handles ARE chunk 0's K/V keys, and the pool treats a
                // second in-flight fetch of a key as a schedule bug.
                if self.opts.balanced && j + 1 == i && i + 1 < u {
                    carry = Some(self.fetch_kv(layer, 0, false)?);
                }
                let _u = self.span("kernel.attn.update", kj.data().len());
                st.update(&kj, &vj, &self.plan.gathered_positions(j))?;
            }
            {
                let _u = self.span("kernel.attn.update", kh.data().len());
                st.update(&kh, &vh, &gpos)?;
            }
            let (oi, lse) = {
                let _f = self.span("kernel.attn.finalize", qh.data().len());
                st.finalize()
            };
            drop(attn_span);
            let oi = Arc::new(oi);
            // Cache everything backward needs (Arc-shared: the O chunk put
            // here is the same buffer the all-to-all below reads).
            self.put(ChunkKey::new(layer, BufKind::Q, i), qh);
            self.put(ChunkKey::new(layer, BufKind::K, i), Arc::new(kh));
            self.put(ChunkKey::new(layer, BufKind::V, i), Arc::new(vh));
            self.put(ChunkKey::new(layer, BufKind::O, i), Arc::clone(&oi));
            let lse_len = oi.shape()[0] * oi.shape()[1];
            self.put(
                ChunkKey::new(layer, BufKind::Lse, i),
                Arc::new(Tensor::from_vec(lse, &[lse_len])?),
            );
            // Chunk 0 has no inner tiles to hang the carry on; its K/V
            // puts just above make chunk 0's cache fetchable, so the carry
            // for chunk 1 is issued here.
            if self.opts.balanced && i == 0 && u > 1 {
                carry = Some(self.fetch_kv(layer, 0, false)?);
            }
            // Gather heads back: the output chunk returns to local layout.
            o_handles.push(self.post_inv(oi)?);
        }
        let mut o_parts: Vec<Tensor> = Vec::with_capacity(u);
        for h in o_handles {
            o_parts.push(h.wait()?);
        }
        let refs: Vec<&Tensor> = o_parts.iter().collect();
        Ok(Tensor::concat(&refs, 0)?)
    }

    fn backward(&mut self, layer: usize, dout: &Tensor) -> ExecResult<(Tensor, Tensor, Tensor)> {
        if self.opts.balanced {
            return self.backward_balanced(layer, dout);
        }
        let u = self.plan.chunks;
        let c_loc = self.plan.chunk_local_len();
        let scale = default_scale(dout.shape()[2]);

        // Stage: gather dO per chunk, compute the D row-dots, zero the dq
        // accumulators. Chunk i+1's gather is posted before chunk i's
        // row-dot runs — the same double-buffer shape as the forward.
        let mut next_dout = Some(self.post_fwd(dout.narrow(0, self.plan.local_chunk_range(0).start, c_loc)?)?);
        for i in 0..u {
            let cur = next_dout.take().ok_or("chunk i's dO was not posted")?;
            if i + 1 < u {
                let range = self.plan.local_chunk_range(i + 1);
                next_dout = Some(self.post_fwd(dout.narrow(0, range.start, c_loc)?)?);
            }
            let doh = Arc::new(cur.wait()?);
            let oi = self.keep(ChunkKey::new(layer, BufKind::O, i))?;
            let dsum = {
                let _s = self.span("kernel.attn.rowwise_dot", oi.data().len());
                rowwise_dot(&oi, &doh)?
            };
            let n = dsum.len();
            let zeros = Tensor::zeros(doh.shape());
            self.put(ChunkKey::new(layer, BufKind::DOut, i), doh);
            self.put(
                ChunkKey::new(layer, BufKind::Dsum, i),
                Arc::new(Tensor::from_vec(dsum, &[n])?),
            );
            self.put(ChunkKey::new(layer, BufKind::DQ, i), Arc::new(zeros));
        }

        // Gradient chunks leave on the stream the moment they are final
        // and are only resolved for the concatenation at the very end, so
        // every inverse all-to-all overlaps the remaining tile sweeps.
        let mut dq_handles: Vec<PendingTensor> = Vec::with_capacity(u);
        let mut dk_handles: Vec<PendingTensor> = Vec::with_capacity(u);
        let mut dv_handles: Vec<PendingTensor> = Vec::with_capacity(u);

        // Figure 7: outer loop on KV chunks, inner on query chunks. Each
        // KV chunk is fetched exactly once per outer iteration, and chunk
        // j+1's transfer is issued before chunk j's inner sweep so the
        // whole sweep hides it.
        let mut next_kv = Some(self.fetch_kv(layer, 0, true)?);
        for j in 0..u {
            let _slot = self.span("slot.bwd", 0);
            let cur = next_kv.take().ok_or("KV chunk j was not prefetched")?;
            next_kv = if j + 1 < u {
                Some(self.fetch_kv(layer, j + 1, true)?)
            } else {
                None
            };
            let (kj, vj) = (cur.0.wait(), cur.1.wait());
            let gpos_j = self.plan.gathered_positions(j);
            let mut dk_j = Tensor::zeros(kj.shape());
            let mut dv_j = Tensor::zeros(vj.shape());
            for i in j..u {
                // Last use of chunk i's saved state is the diagonal tile
                // (i == j): consume it then, otherwise read-and-keep.
                let consume = i == j;
                let qi = self.grab(ChunkKey::new(layer, BufKind::Q, i), consume)?;
                let doh = self.grab(ChunkKey::new(layer, BufKind::DOut, i), consume)?;
                let lse = self.grab(ChunkKey::new(layer, BufKind::Lse, i), consume)?;
                let dsum = self.grab(ChunkKey::new(layer, BufKind::Dsum, i), consume)?;
                // The O cache was only needed for dsum; freeing it is not a
                // transfer, so it must not run through the fetch path.
                if consume {
                    self.discard_one(ChunkKey::new(layer, BufKind::O, i));
                }
                let mut dq_i = unshare(self.take(ChunkKey::new(layer, BufKind::DQ, i))?);
                {
                    // Scoped so the compute span closes before the DQ
                    // re-put below — transfers must not nest inside
                    // compute spans or the overlap metric counts a
                    // serial runtime as overlapped.
                    let _tile = self.span("attn.bwd.tile", qi.data().len());
                    attention_block_bwd(
                        &qi,
                        &kj,
                        &vj,
                        &doh,
                        lse.data(),
                        dsum.data(),
                        &self.plan.gathered_positions(i),
                        &gpos_j,
                        scale,
                        &mut dq_i,
                        &mut dk_j,
                        &mut dv_j,
                    )?;
                }
                if consume {
                    // dq_j is final after its first inner iteration: ship it
                    // home with the same all-to-all as dk_j/dv_j below.
                    dq_handles.push(self.post_inv(Arc::new(dq_i))?);
                } else {
                    self.put(ChunkKey::new(layer, BufKind::DQ, i), Arc::new(dq_i));
                }
            }
            // dK_j/dV_j are final once the inner sweep ends (no later outer
            // iteration touches chunk j): all-to-all back to local layout.
            dk_handles.push(self.post_inv(Arc::new(dk_j))?);
            dv_handles.push(self.post_inv(Arc::new(dv_j))?);
        }

        let cat = |handles: Vec<PendingTensor>| -> ExecResult<Tensor> {
            let parts = handles
                .into_iter()
                .map(Pending::wait)
                .collect::<fpdt_comm::Result<Vec<Tensor>>>()?;
            let refs: Vec<&Tensor> = parts.iter().collect();
            Ok(Tensor::concat(&refs, 0)?)
        };
        Ok((cat(dq_handles)?, cat(dk_handles)?, cat(dv_handles)?))
    }

    fn discard(&mut self, layer: usize) {
        // Drop every cached chunk belonging to this layer (forward saves
        // Q/K/V/O/Lse per chunk).
        for kind in [BufKind::Q, BufKind::K, BufKind::V, BufKind::O, BufKind::Lse] {
            for chunk in 0..self.plan.chunks {
                self.discard_one(ChunkKey::new(layer, kind, chunk));
            }
        }
    }
}

/// Ring Attention (Liu et al., 2023) as a real executor: the sequence is
/// sharded contiguously with **full heads everywhere** (no head scatter);
/// KV blocks rotate around the ring, each hop overlapping one blockwise
/// online-attention update. The backward ring rotates `(K, V, dK, dV)`
/// quadruples so gradients accumulate as the blocks travel and arrive
/// home fully reduced.
pub struct RingAttentionExec<'c> {
    comm: &'c Communicator,
    seq_global: usize,
    saved: HashMap<usize, RingSaved>,
}

struct RingSaved {
    q: Tensor,
    k: Tensor,
    v: Tensor,
    o: Tensor,
    lse: Vec<f32>,
}

impl<'c> RingAttentionExec<'c> {
    /// Creates the executor for one rank of a contiguous sequence shard.
    pub fn new(comm: &'c Communicator, seq_global: usize) -> Self {
        RingAttentionExec {
            comm,
            seq_global,
            saved: HashMap::new(),
        }
    }

    fn owner_positions(&self, owner: usize) -> Vec<usize> {
        let s_local = self.seq_global / self.comm.world();
        (owner * s_local..(owner + 1) * s_local).collect()
    }

    /// Sends a `(k, v)` or `(k, v, dk, dv)` bundle one hop around the ring.
    fn rotate(&self, tensors: Vec<Tensor>) -> ExecResult<Vec<Tensor>> {
        let shapes: Vec<Vec<usize>> = tensors.iter().map(|t| t.shape().to_vec()).collect();
        let mut flat = Vec::new();
        for t in tensors {
            flat.extend_from_slice(t.data());
        }
        let recv = self.comm.ring_exchange(flat)?;
        let mut out = Vec::with_capacity(shapes.len());
        let mut off = 0;
        for sh in shapes {
            let n: usize = sh.iter().product();
            out.push(Tensor::from_vec(recv[off..off + n].to_vec(), &sh)?);
            off += n;
        }
        Ok(out)
    }
}

impl AttentionExec for RingAttentionExec<'_> {
    fn forward(
        &mut self,
        layer: usize,
        q: &Tensor,
        k: &Tensor,
        v: &Tensor,
        pos: &[usize],
    ) -> ExecResult<Tensor> {
        let p = self.comm.world();
        let rank = self.comm.rank();
        // Ring attention requires the plain contiguous shard.
        debug_assert_eq!(pos, self.owner_positions(rank).as_slice());
        let mut st = OnlineAttention::new(q, pos, None)?;
        let mut cur_k = k.clone();
        let mut cur_v = v.clone();
        for step in 0..p {
            let owner = (rank + p - step) % p;
            st.update(&cur_k, &cur_v, &self.owner_positions(owner))?;
            if step + 1 < p {
                let mut rot = self.rotate(vec![cur_k, cur_v])?;
                cur_v = rot.pop().ok_or("ring rotate dropped v")?;
                cur_k = rot.pop().ok_or("ring rotate dropped k")?;
            }
        }
        let (o, lse) = st.finalize();
        self.saved.insert(
            layer,
            RingSaved {
                q: q.clone(),
                k: k.clone(),
                v: v.clone(),
                o: o.clone(),
                lse,
            },
        );
        Ok(o)
    }

    fn backward(&mut self, layer: usize, dout: &Tensor) -> ExecResult<(Tensor, Tensor, Tensor)> {
        let p = self.comm.world();
        let rank = self.comm.rank();
        let s = self
            .saved
            .remove(&layer)
            .ok_or_else(|| format!("no saved ring forward for layer {layer}"))?;
        let scale = default_scale(s.q.shape()[2]);
        let dsum = rowwise_dot(&s.o, dout)?;
        let my_pos = self.owner_positions(rank);

        let mut dq = Tensor::zeros(s.q.shape());
        let mut cur_k = s.k.clone();
        let mut cur_v = s.v.clone();
        let mut cur_dk = Tensor::zeros(s.k.shape());
        let mut cur_dv = Tensor::zeros(s.v.shape());
        for step in 0..p {
            let owner = (rank + p - step) % p;
            attention_block_bwd(
                &s.q,
                &cur_k,
                &cur_v,
                dout,
                &s.lse,
                &dsum,
                &my_pos,
                &self.owner_positions(owner),
                scale,
                &mut dq,
                &mut cur_dk,
                &mut cur_dv,
            )?;
            // Rotate the block AND its accumulating gradients; after p hops
            // every (dk, dv) is home with contributions from all ranks.
            let mut rot = self.rotate(vec![cur_k, cur_v, cur_dk, cur_dv])?;
            cur_dv = rot.pop().ok_or("ring rotate dropped dv")?;
            cur_dk = rot.pop().ok_or("ring rotate dropped dk")?;
            cur_v = rot.pop().ok_or("ring rotate dropped v")?;
            cur_k = rot.pop().ok_or("ring rotate dropped k")?;
        }
        Ok((dq, cur_dk, cur_dv))
    }

    fn discard(&mut self, layer: usize) {
        self.saved.remove(&layer);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fpdt_attention::reference;
    use fpdt_comm::run_group;
    use fpdt_tensor::init;

    fn rand_qkv(seed: u64, s: usize, h: usize, d: usize) -> (Tensor, Tensor, Tensor) {
        let mut rng = init::seeded_rng(seed);
        (
            init::randn(&mut rng, &[s, h, d], 1.0),
            init::randn(&mut rng, &[s, h, d], 1.0),
            init::randn(&mut rng, &[s, h, d], 1.0),
        )
    }

    #[test]
    fn local_executor_round_trip() {
        let (q, k, v) = rand_qkv(0, 16, 2, 4);
        let pos: Vec<usize> = (0..16).collect();
        let mut rng = init::seeded_rng(1);
        let dout = init::randn(&mut rng, &[16, 2, 4], 1.0);

        let mut ex = LocalAttention::new(4);
        let o = ex.forward(0, &q, &k, &v, &pos).unwrap();
        let (dq, dk, dv) = ex.backward(0, &dout).unwrap();

        let want_o = reference::causal_attention(&q, &k, &v).unwrap();
        let (rdq, rdk, rdv) = reference::causal_attention_bwd(&q, &k, &v, &dout).unwrap();
        assert!(o.allclose(&want_o, 1e-4, 1e-5));
        assert!(dq.allclose(&rdq, 1e-3, 1e-4));
        assert!(dk.allclose(&rdk, 1e-3, 1e-4));
        assert!(dv.allclose(&rdv, 1e-3, 1e-4));
        // state consumed
        assert!(ex.backward(0, &dout).is_err());
    }

    /// Full distributed equivalence: p ranks, u chunks, offload on/off —
    /// outputs and gradients must match a single-device reference over the
    /// *global* sequence.
    fn dist_matches_reference(world: usize, chunks: usize, offload: bool) {
        let (s, h, d) = (24, 4, 4);
        let (q, k, v) = rand_qkv(2, s, h, d);
        let mut rng = init::seeded_rng(3);
        let dout = init::randn(&mut rng, &[s, h, d], 1.0);

        // reference on the global sequence
        let want_o = reference::causal_attention(&q, &k, &v).unwrap();
        let (rdq, rdk, rdv) = reference::causal_attention_bwd(&q, &k, &v, &dout).unwrap();

        let plan = ChunkPlan::new(s, world, chunks).unwrap();
        let shard_rows = |t: &Tensor, rank: usize| {
            let parts: Vec<Tensor> = plan
                .local_positions(rank)
                .into_iter()
                .map(|p| t.narrow(0, p, 1).unwrap())
                .collect();
            let refs: Vec<&Tensor> = parts.iter().collect();
            Tensor::concat(&refs, 0).unwrap()
        };

        let results = run_group(world, |comm| {
            let comm = Arc::new(comm);
            let rank = comm.rank();
            let plan = ChunkPlan::new(s, world, chunks).unwrap();
            let pos = plan.local_positions(rank);
            // Pin f32 payloads: this fixture compares against an f32
            // reference at tight tolerances, so an ambient FPDT_BF16=1
            // must not leak in.
            let opts = RuntimeOptions::from_env()
                .with_offload(offload)
                .with_payload_bf16(false);
            let mut ex = DistAttention::with_opts(comm, plan, opts);
            let o = ex
                .forward(
                    0,
                    &shard_rows(&q, rank),
                    &shard_rows(&k, rank),
                    &shard_rows(&v, rank),
                    &pos,
                )
                .unwrap();
            let grads = ex.backward(0, &shard_rows(&dout, rank)).unwrap();
            let stats = ex.host_stats();
            (o, grads, stats)
        });

        for (rank, (o, (dq, dk, dv), stats)) in results.into_iter().enumerate() {
            assert!(
                o.allclose(&shard_rows(&want_o, rank), 1e-3, 1e-4),
                "o rank {rank}"
            );
            assert!(
                dq.allclose(&shard_rows(&rdq, rank), 1e-3, 1e-4),
                "dq rank {rank}"
            );
            assert!(
                dk.allclose(&shard_rows(&rdk, rank), 1e-3, 1e-4),
                "dk rank {rank}"
            );
            assert!(
                dv.allclose(&shard_rows(&rdv, rank), 1e-3, 1e-4),
                "dv rank {rank}"
            );
            if offload {
                assert!(
                    stats.offloads > 0 && stats.fetches > 0,
                    "host pool exercised"
                );
            } else {
                assert_eq!(stats.offloads, 0);
            }
        }
    }

    #[test]
    fn ulysses_mode_matches_reference() {
        // chunks = 1 is exactly DeepSpeed Ulysses
        dist_matches_reference(2, 1, false);
    }

    #[test]
    fn fpdt_chunked_matches_reference() {
        dist_matches_reference(2, 3, false);
    }

    #[test]
    fn fpdt_offload_matches_reference() {
        dist_matches_reference(2, 3, true);
    }

    #[test]
    fn fpdt_four_ranks_matches_reference() {
        dist_matches_reference(4, 2, true);
    }

    #[test]
    fn backward_frees_all_cached_chunks() {
        // After backward, the host pool must be empty — the Figure-7 nest
        // consumes every cached chunk exactly once.
        let (s, h, d) = (16, 2, 4);
        let (q, k, v) = rand_qkv(9, s, h, d);
        let dout = Tensor::ones(&[s / 2, h, d]);
        let empty = run_group(2, |comm| {
            let plan = ChunkPlan::new(s, 2, 4).unwrap();
            let pos = plan.local_positions(comm.rank());
            let shard = |t: &Tensor| {
                let parts: Vec<Tensor> = pos.iter().map(|&p| t.narrow(0, p, 1).unwrap()).collect();
                let refs: Vec<&Tensor> = parts.iter().collect();
                Tensor::concat(&refs, 0).unwrap()
            };
            let mut ex = DistAttention::new(Arc::new(comm), plan, true);
            ex.forward(0, &shard(&q), &shard(&k), &shard(&v), &pos)
                .unwrap();
            ex.backward(0, &dout).unwrap();
            ex.host.is_empty()
        });
        assert!(empty.iter().all(|&e| e));
    }

    #[test]
    fn backward_fetches_each_kv_chunk_exactly_once_per_outer_iteration() {
        // Transfer-count audit of the Figure-7 schedule for u chunks:
        //   forward : each chunk i keep-fetches K and V for j < i
        //             -> 2 * u(u-1)/2 = u(u-1) fetches
        //   backward: u O keeps (staging) + 2u KV takes (each KV chunk
        //             exactly ONCE per outer iteration — the property under
        //             test) + 5 per tile (Q, DOut, Lse, Dsum, DQ) over
        //             u(u+1)/2 tiles.
        // The dead-O drop on the diagonal is a discard, NOT a fetch — if it
        // leaked into the fetch path the backward count would gain +u.
        let u = 4usize;
        let (s, h, d) = (16, 2, 4);
        let (q, k, v) = rand_qkv(11, s, h, d);
        let dout = Tensor::ones(&[s / 2, h, d]);
        let counts = run_group(2, |comm| {
            let plan = ChunkPlan::new(s, 2, u).unwrap();
            let pos = plan.local_positions(comm.rank());
            let shard = |t: &Tensor| {
                let parts: Vec<Tensor> = pos.iter().map(|&p| t.narrow(0, p, 1).unwrap()).collect();
                let refs: Vec<&Tensor> = parts.iter().collect();
                Tensor::concat(&refs, 0).unwrap()
            };
            let mut ex = DistAttention::new(Arc::new(comm), plan, true);
            ex.forward(0, &shard(&q), &shard(&k), &shard(&v), &pos)
                .unwrap();
            let after_fwd = ex.host_stats();
            ex.backward(0, &dout).unwrap();
            (after_fwd, ex.host_stats())
        });
        let tiles = u * (u + 1) / 2;
        for (after_fwd, after_bwd) in counts {
            assert_eq!(after_fwd.fetches, (u * (u - 1)) as u64, "forward fetches");
            assert_eq!(
                after_bwd.fetches - after_fwd.fetches,
                (u + 2 * u + 5 * tiles) as u64,
                "backward fetches (KV exactly once per outer iteration)"
            );
            assert!(after_bwd.bytes_fetched > 0 && after_bwd.bytes_offloaded > 0);
        }
    }

    #[test]
    fn bf16_payloads_halve_a2a_bytes_and_keep_schedule() {
        // FPDT_BF16 changes the wire format, nothing else: identical
        // transfer/message counts, exactly half the all-to-all bytes, and
        // results within bf16 rounding of the f32 run.
        let (s, h, d) = (16, 2, 4);
        let (q, k, v) = rand_qkv(21, s, h, d);
        let mut rng = init::seeded_rng(22);
        let dout = init::randn(&mut rng, &[s / 2, h, d], 1.0);
        let run = |bf16: bool| {
            run_group(2, |comm| {
                let comm = Arc::new(comm);
                let plan = ChunkPlan::new(s, 2, 4).unwrap();
                let pos = plan.local_positions(comm.rank());
                let shard = |t: &Tensor| {
                    let parts: Vec<Tensor> =
                        pos.iter().map(|&p| t.narrow(0, p, 1).unwrap()).collect();
                    let refs: Vec<&Tensor> = parts.iter().collect();
                    Tensor::concat(&refs, 0).unwrap()
                };
                let opts = RuntimeOptions::from_env()
                    .with_offload(true)
                    .with_payload_bf16(bf16);
                let mut ex = DistAttention::with_opts(Arc::clone(&comm), plan, opts);
                let o = ex
                    .forward(0, &shard(&q), &shard(&k), &shard(&v), &pos)
                    .unwrap();
                let (dq, _dk, _dv) = ex.backward(0, &dout).unwrap();
                let host = ex.host_stats();
                drop(ex);
                (o, dq, host, comm.stats())
            })
        };
        let full = run(false);
        let half = run(true);
        for ((o_f, dq_f, host_f, comm_f), (o_b, dq_b, host_b, comm_b)) in
            full.into_iter().zip(half)
        {
            // Numerics: bf16 rounding only, not a different schedule.
            assert!(o_b.allclose(&o_f, 5e-2, 5e-2), "output within bf16 tol");
            assert!(dq_b.allclose(&dq_f, 1e-1, 1e-1), "dq within bf16 tol");
            // Schedule shape: same transfer and message counts.
            assert_eq!(host_f.offloads, host_b.offloads, "offload count");
            assert_eq!(host_f.fetches, host_b.fetches, "fetch count");
            assert!(
                host_b.bytes_offloaded < host_f.bytes_offloaded,
                "KV offload traffic shrinks"
            );
            let af = comm_f.op("all_to_all").expect("f32 a2a ran");
            let ab = comm_b.op("all_to_all").expect("bf16 a2a ran");
            assert_eq!(af.sends, ab.sends, "same message count");
            assert_eq!(af.recvs, ab.recvs);
            assert_eq!(ab.bytes_sent * 2, af.bytes_sent, "bytes_a2a halve exactly");
            assert_eq!(ab.bytes_recv * 2, af.bytes_recv);
        }
    }

    #[test]
    fn balanced_slots_cover_the_triangle_in_accumulation_order() {
        for u in 1..=8usize {
            let slots = balanced_slots(u);
            assert_eq!(slots.len(), u, "one slot per chunk (u={u})");
            let sizes: Vec<usize> = slots.iter().map(Vec::len).collect();
            let min = sizes.iter().copied().min().unwrap();
            let max = sizes.iter().copied().max().unwrap();
            assert!(
                min >= 1 && max - min <= 1,
                "near-equal slot sizes (u={u}): {sizes:?}"
            );
            let flat: Vec<(usize, usize)> = slots.into_iter().flatten().collect();
            assert_eq!(flat.len(), u * (u + 1) / 2, "every tile scheduled (u={u})");
            let mut seen = std::collections::HashSet::new();
            // Row i must sweep KV ascending from 0; column j must sweep
            // queries ascending from its diagonal j.
            let mut next_j = vec![0usize; u];
            let mut next_i: Vec<usize> = (0..u).collect();
            for (i, j) in flat {
                assert!(j <= i && i < u, "causal tile ({i},{j})");
                assert!(seen.insert((i, j)), "tile ({i},{j}) duplicated");
                assert_eq!(j, next_j[i], "row {i} sweeps KV in ascending order");
                assert_eq!(i, next_i[j], "column {j} sweeps queries in ascending order");
                next_j[i] += 1;
                next_i[j] += 1;
            }
        }
    }

    #[test]
    fn balanced_and_sequential_schedules_are_bitwise_identical() {
        // FPDT_BALANCE re-cuts the tile triangle but never reorders any
        // accumulator's updates or adds/removes a transfer: outputs,
        // gradients, and pool statistics must match bit for bit.
        let (s, h, d) = (16, 2, 4);
        let (q, k, v) = rand_qkv(31, s, h, d);
        let mut rng = init::seeded_rng(32);
        let dout = init::randn(&mut rng, &[s / 2, h, d], 1.0);
        let run = |balanced: bool| {
            run_group(2, |comm| {
                let plan = ChunkPlan::new(s, 2, 4).unwrap();
                let pos = plan.local_positions(comm.rank());
                let shard = |t: &Tensor| {
                    let parts: Vec<Tensor> =
                        pos.iter().map(|&p| t.narrow(0, p, 1).unwrap()).collect();
                    let refs: Vec<&Tensor> = parts.iter().collect();
                    Tensor::concat(&refs, 0).unwrap()
                };
                let opts = RuntimeOptions::from_env()
                    .with_offload(true)
                    .with_balanced(balanced);
                let mut ex = DistAttention::with_opts(Arc::new(comm), plan, opts);
                let o = ex
                    .forward(0, &shard(&q), &shard(&k), &shard(&v), &pos)
                    .unwrap();
                let (dq, dk, dv) = ex.backward(0, &dout).unwrap();
                (o, dq, dk, dv, ex.host_stats())
            })
        };
        let bal = run(true);
        let seq = run(false);
        for ((o1, dq1, dk1, dv1, st1), (o2, dq2, dk2, dv2, st2)) in bal.into_iter().zip(seq) {
            assert_eq!(o1.data(), o2.data(), "outputs bitwise");
            assert_eq!(dq1.data(), dq2.data(), "dq bitwise");
            assert_eq!(dk1.data(), dk2.data(), "dk bitwise");
            assert_eq!(dv1.data(), dv2.data(), "dv bitwise");
            // Transfer counts and bytes are identical; peak residency is
            // the one legitimately schedule-dependent statistic, and lazy
            // row staging means the balanced peak never exceeds the
            // sequential stage-1 drain's.
            assert_eq!(st1.offloads, st2.offloads, "offload count");
            assert_eq!(st1.fetches, st2.fetches, "fetch count");
            assert_eq!(st1.bytes, st2.bytes, "resident bytes after drain");
            assert_eq!(st1.bytes_offloaded, st2.bytes_offloaded, "offload bytes");
            assert_eq!(st1.bytes_fetched, st2.bytes_fetched, "fetch bytes");
            assert!(st1.peak_bytes <= st2.peak_bytes, "balanced peak residency");
        }
    }

    #[test]
    fn balanced_schedule_keeps_transfer_and_post_counts() {
        // The balanced schedule reorders work, never adds any: the exact
        // fetch formulas audited for the sequential Figure-7 nest must
        // hold, and the comm stream still sees one fused QKV + one output
        // post per chunk forward (2u) and u dO + 3u gradient posts in the
        // backward (6u cumulative).
        let u = 4usize;
        let (s, h, d) = (16, 2, 4);
        let (q, k, v) = rand_qkv(33, s, h, d);
        let dout = Tensor::ones(&[s / 2, h, d]);
        let counts = run_group(2, |comm| {
            let plan = ChunkPlan::new(s, 2, u).unwrap();
            let pos = plan.local_positions(comm.rank());
            let shard = |t: &Tensor| {
                let parts: Vec<Tensor> = pos.iter().map(|&p| t.narrow(0, p, 1).unwrap()).collect();
                let refs: Vec<&Tensor> = parts.iter().collect();
                Tensor::concat(&refs, 0).unwrap()
            };
            let opts = RuntimeOptions::from_env()
                .with_offload(true)
                .with_balanced(true);
            let mut ex = DistAttention::with_opts(Arc::new(comm), plan, opts);
            ex.forward(0, &shard(&q), &shard(&k), &shard(&v), &pos)
                .unwrap();
            let fwd = (ex.host_stats(), ex.comm_posted());
            ex.backward(0, &dout).unwrap();
            (fwd, ex.host_stats(), ex.comm_posted(), ex.host.is_empty())
        });
        let tiles = u * (u + 1) / 2;
        for ((after_fwd, posted_fwd), after_bwd, posted_bwd, empty) in counts {
            assert_eq!(after_fwd.fetches, (u * (u - 1)) as u64, "forward fetches");
            assert_eq!(posted_fwd, (2 * u) as u64, "one fused QKV + one O post per chunk");
            assert_eq!(
                after_bwd.fetches - after_fwd.fetches,
                (u + 2 * u + 5 * tiles) as u64,
                "backward fetches (KV exactly once per column)"
            );
            assert_eq!(posted_bwd, (6 * u) as u64, "u dO + u dq + u dk + u dv posts");
            assert!(empty, "every cached chunk consumed");
        }
    }

    #[test]
    fn prefetch_on_and_off_are_bitwise_identical() {
        let (s, h, d) = (16, 2, 4);
        let (q, k, v) = rand_qkv(12, s, h, d);
        let mut rng = init::seeded_rng(13);
        let dout = init::randn(&mut rng, &[s / 2, h, d], 1.0);
        let run = |prefetch: bool| {
            run_group(2, |comm| {
                let plan = ChunkPlan::new(s, 2, 4).unwrap();
                let pos = plan.local_positions(comm.rank());
                let shard = |t: &Tensor| {
                    let parts: Vec<Tensor> =
                        pos.iter().map(|&p| t.narrow(0, p, 1).unwrap()).collect();
                    let refs: Vec<&Tensor> = parts.iter().collect();
                    Tensor::concat(&refs, 0).unwrap()
                };
                let opts = RuntimeOptions::from_env()
                    .with_offload(true)
                    .with_prefetch(prefetch);
                let mut ex = DistAttention::with_opts(Arc::new(comm), plan, opts);
                let o = ex
                    .forward(0, &shard(&q), &shard(&k), &shard(&v), &pos)
                    .unwrap();
                // dout is already local-sized ([s/world, h, d]); every rank
                // using the same upstream gradient keeps the fixture simple.
                let (dq, dk, dv) = ex.backward(0, &dout).unwrap();
                (o, dq, dk, dv, ex.host_stats())
            })
        };
        let on = run(true);
        let off = run(false);
        for ((o1, dq1, dk1, dv1, st1), (o2, dq2, dk2, dv2, st2)) in on.into_iter().zip(off) {
            assert_eq!(o1.data(), o2.data(), "outputs bitwise");
            assert_eq!(dq1.data(), dq2.data(), "dq bitwise");
            assert_eq!(dk1.data(), dk2.data(), "dk bitwise");
            assert_eq!(dv1.data(), dv2.data(), "dv bitwise");
            assert_eq!(st1, st2, "transfer statistics identical");
        }
    }
}
