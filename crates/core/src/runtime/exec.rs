//! Pluggable attention executors.
//!
//! A GPT block hands its (RoPE'd) `q/k/v` — shaped `[s_local, heads, d]`
//! with explicit global positions — to an [`AttentionExec`] and gets the
//! attention output back in the same layout. What happens in between is
//! the difference between the training modes:
//!
//! * [`LocalAttention`] — single device, chunked online attention.
//! * [`DistAttention`] — the distributed path: per-chunk Ulysses
//!   all-to-all (heads scatter / sequence gather), streaming online
//!   attention over cached KV chunks, host offload, and the Figure-7
//!   KV-outer/Q-inner backward. With `chunks == 1` this *is* DeepSpeed
//!   Ulysses; with `chunks > 1` it is FPDT.

use crate::chunk::ChunkPlan;
use crate::offload::{BufKind, ChunkKey, HostPool, PoolStats};
use fpdt_attention::online::{attention_block_bwd, rowwise_dot, OnlineAttention};
use fpdt_attention::{chunked, default_scale};
use fpdt_comm::{AllToAllLayout, Communicator};
use fpdt_tensor::Tensor;
use fpdt_trace::{Recorder, Span};
use std::collections::HashMap;

/// Executor result type (tensor and communication errors both occur).
pub type ExecResult<T> = Result<T, Box<dyn std::error::Error + Send + Sync>>;

/// An attention implementation a GPT block can call into.
pub trait AttentionExec {
    /// Computes attention for `layer`, saving whatever the backward pass
    /// needs. Inputs are `[s_local, heads, d]`; `pos[t]` is the global
    /// position of local row `t`.
    ///
    /// # Errors
    ///
    /// Shape or communication failures.
    fn forward(
        &mut self,
        layer: usize,
        q: &Tensor,
        k: &Tensor,
        v: &Tensor,
        pos: &[usize],
    ) -> ExecResult<Tensor>;

    /// Consumes the saved state for `layer` and returns `(dq, dk, dv)` in
    /// the local layout.
    ///
    /// # Errors
    ///
    /// Shape or communication failures, or a missing forward for `layer`.
    fn backward(&mut self, layer: usize, dout: &Tensor) -> ExecResult<(Tensor, Tensor, Tensor)>;

    /// Drops the saved state for `layer` without running a backward pass —
    /// what activation checkpointing does after the first forward (the
    /// recompute pass will rebuild it). A no-op when nothing is saved.
    fn discard(&mut self, layer: usize);
}

struct LocalSaved {
    q: Tensor,
    k: Tensor,
    v: Tensor,
    o: Tensor,
    lse: Vec<f32>,
    pos: Vec<usize>,
}

/// Single-device chunked attention (the non-distributed reference mode).
#[derive(Default)]
pub struct LocalAttention {
    /// Number of sequence chunks for the streaming kernels (1 = plain
    /// FlashAttention-style pass).
    pub chunks: usize,
    saved: HashMap<usize, LocalSaved>,
}

impl LocalAttention {
    /// Creates an executor with the given chunk count.
    pub fn new(chunks: usize) -> Self {
        LocalAttention {
            chunks: chunks.max(1),
            saved: HashMap::new(),
        }
    }
}

impl AttentionExec for LocalAttention {
    fn forward(
        &mut self,
        layer: usize,
        q: &Tensor,
        k: &Tensor,
        v: &Tensor,
        pos: &[usize],
    ) -> ExecResult<Tensor> {
        let (o, lse) = chunked::attention_chunked_with_positions(q, k, v, pos, self.chunks, None)?;
        self.saved.insert(
            layer,
            LocalSaved {
                q: q.clone(),
                k: k.clone(),
                v: v.clone(),
                o: o.clone(),
                lse,
                pos: pos.to_vec(),
            },
        );
        Ok(o)
    }

    fn backward(&mut self, layer: usize, dout: &Tensor) -> ExecResult<(Tensor, Tensor, Tensor)> {
        let s = self
            .saved
            .remove(&layer)
            .ok_or_else(|| format!("no saved forward for layer {layer}"))?;
        let g = chunked::attention_chunked_bwd_with_positions(
            &s.q,
            &s.k,
            &s.v,
            &s.o,
            dout,
            &s.lse,
            &s.pos,
            self.chunks,
            None,
        )?;
        Ok((g.dq, g.dk, g.dv))
    }

    fn discard(&mut self, layer: usize) {
        self.saved.remove(&layer);
    }
}

/// Distributed chunked attention: Ulysses all-to-all per chunk, streaming
/// online attention, host offload, Figure-7 backward.
pub struct DistAttention<'c> {
    comm: &'c Communicator,
    plan: ChunkPlan,
    /// When true, cached chunks live in the [`HostPool`] ("host memory");
    /// otherwise in a device-side map. Numerically identical — the flag
    /// models where the bytes live and is observable via [`Self::host_stats`].
    offload: bool,
    host: HostPool,
    device: HashMap<ChunkKey, Tensor>,
    recorder: Option<Recorder>,
}

impl<'c> DistAttention<'c> {
    /// Creates the executor for one rank.
    pub fn new(comm: &'c Communicator, plan: ChunkPlan, offload: bool) -> Self {
        DistAttention {
            comm,
            plan,
            offload,
            host: HostPool::new(),
            device: HashMap::new(),
            recorder: None,
        }
    }

    /// Attaches a span recorder: every all-to-all, attention-chunk
    /// computation, and host offload copy records a wall-clock span.
    #[must_use]
    pub fn with_recorder(mut self, recorder: Recorder) -> Self {
        self.recorder = Some(recorder);
        self
    }

    /// Host-pool transfer statistics (zero when `offload` is off).
    pub fn host_stats(&self) -> PoolStats {
        self.host.stats()
    }

    fn span(&self, label: &str, elems: usize) -> Option<Span> {
        self.recorder
            .as_ref()
            .map(|r| r.span(label).bytes((elems * 4) as u64))
    }

    fn put(&mut self, key: ChunkKey, t: Tensor) {
        let _s = if self.offload {
            self.span("offload.put", t.data().len())
        } else {
            None
        };
        if self.offload {
            self.host.offload(key, t);
        } else {
            self.device.insert(key, t);
        }
    }

    fn take(&mut self, key: ChunkKey) -> ExecResult<Tensor> {
        let _s = if self.offload {
            self.span("offload.fetch", 0)
        } else {
            None
        };
        let t = if self.offload {
            self.host.fetch(&key)
        } else {
            self.device.remove(&key)
        };
        t.ok_or_else(|| format!("missing cached chunk {key:?}").into())
    }

    fn keep(&mut self, key: ChunkKey) -> ExecResult<Tensor> {
        let t = if self.offload {
            self.host.fetch_keep(&key)
        } else {
            self.device.get(&key).cloned()
        };
        t.ok_or_else(|| format!("missing cached chunk {key:?}").into())
    }

    fn a2a_fwd(&self, t: &Tensor) -> ExecResult<Tensor> {
        let _s = self.span("a2a.scatter_heads", t.data().len());
        AllToAllLayout::scatter_heads_gather_seq(self.comm, t)
    }

    fn a2a_inv(&self, t: &Tensor) -> ExecResult<Tensor> {
        let _s = self.span("a2a.gather_heads", t.data().len());
        AllToAllLayout::scatter_seq_gather_heads(self.comm, t)
    }
}

impl AttentionExec for DistAttention<'_> {
    fn forward(
        &mut self,
        layer: usize,
        q: &Tensor,
        k: &Tensor,
        v: &Tensor,
        pos: &[usize],
    ) -> ExecResult<Tensor> {
        let u = self.plan.chunks;
        let c_loc = self.plan.chunk_local_len();
        debug_assert_eq!(pos, self.plan.local_positions(self.comm.rank()).as_slice());
        let mut o_parts: Vec<Tensor> = Vec::with_capacity(u);
        for i in 0..u {
            let range = self.plan.local_chunk_range(i);
            // Project chunk through the all-to-all: full heads/local seq ->
            // local heads/gathered seq.
            let qh = self.a2a_fwd(&q.narrow(0, range.start, c_loc)?)?;
            let kh = self.a2a_fwd(&k.narrow(0, range.start, c_loc)?)?;
            let vh = self.a2a_fwd(&v.narrow(0, range.start, c_loc)?)?;
            let gpos = self.plan.gathered_positions(i);
            let attn_span = self.span("attn.fwd.chunk", qh.data().len());
            let mut st = OnlineAttention::new(&qh, &gpos, None)?;
            // Stream previously cached KV chunks from host memory.
            for j in 0..i {
                let kj = self.keep(ChunkKey::new(layer, BufKind::K, j))?;
                let vj = self.keep(ChunkKey::new(layer, BufKind::V, j))?;
                let _u = self.span("kernel.attn.update", kj.data().len());
                st.update(&kj, &vj, &self.plan.gathered_positions(j))?;
            }
            {
                let _u = self.span("kernel.attn.update", kh.data().len());
                st.update(&kh, &vh, &gpos)?;
            }
            let (oi, lse) = {
                let _f = self.span("kernel.attn.finalize", qh.data().len());
                st.finalize()
            };
            drop(attn_span);
            // Cache everything backward needs.
            self.put(ChunkKey::new(layer, BufKind::Q, i), qh);
            self.put(ChunkKey::new(layer, BufKind::K, i), kh);
            self.put(ChunkKey::new(layer, BufKind::V, i), vh);
            self.put(ChunkKey::new(layer, BufKind::O, i), oi.clone());
            self.put(
                ChunkKey::new(layer, BufKind::Lse, i),
                Tensor::from_vec(lse, &[oi.shape()[0] * oi.shape()[1]])?,
            );
            // Gather heads back: the output chunk returns to local layout.
            o_parts.push(self.a2a_inv(&oi)?);
        }
        let refs: Vec<&Tensor> = o_parts.iter().collect();
        Ok(Tensor::concat(&refs, 0)?)
    }

    fn backward(&mut self, layer: usize, dout: &Tensor) -> ExecResult<(Tensor, Tensor, Tensor)> {
        let u = self.plan.chunks;
        let c_loc = self.plan.chunk_local_len();
        let scale = default_scale(dout.shape()[2]);

        // Stage: gather dO per chunk, compute the D row-dots, zero the dq
        // accumulators.
        for i in 0..u {
            let range = self.plan.local_chunk_range(i);
            let doh = self.a2a_fwd(&dout.narrow(0, range.start, c_loc)?)?;
            let oi = self.keep(ChunkKey::new(layer, BufKind::O, i))?;
            let dsum = {
                let _s = self.span("kernel.attn.rowwise_dot", oi.data().len());
                rowwise_dot(&oi, &doh)?
            };
            let n = dsum.len();
            self.put(ChunkKey::new(layer, BufKind::DOut, i), doh.clone());
            self.put(
                ChunkKey::new(layer, BufKind::Dsum, i),
                Tensor::from_vec(dsum, &[n])?,
            );
            self.put(
                ChunkKey::new(layer, BufKind::DQ, i),
                Tensor::zeros(doh.shape()),
            );
        }

        let mut dq_parts: Vec<Tensor> = Vec::with_capacity(u);
        let mut dk_parts: Vec<Tensor> = Vec::with_capacity(u);
        let mut dv_parts: Vec<Tensor> = Vec::with_capacity(u);

        // Figure 7: outer loop on KV chunks, inner on query chunks.
        for j in 0..u {
            let kj = self.take(ChunkKey::new(layer, BufKind::K, j))?;
            let vj = self.take(ChunkKey::new(layer, BufKind::V, j))?;
            let gpos_j = self.plan.gathered_positions(j);
            let mut dk_j = Tensor::zeros(kj.shape());
            let mut dv_j = Tensor::zeros(vj.shape());
            for i in j..u {
                // Last use of chunk i's saved state is the diagonal tile
                // (i == j): consume it then, otherwise read-and-keep.
                let consume = i == j;
                let grab = |me: &mut Self, kind| {
                    let key = ChunkKey::new(layer, kind, i);
                    if consume {
                        me.take(key)
                    } else {
                        me.keep(key)
                    }
                };
                let qi = grab(self, BufKind::Q)?;
                let doh = grab(self, BufKind::DOut)?;
                let lse = grab(self, BufKind::Lse)?;
                let dsum = grab(self, BufKind::Dsum)?;
                // the O cache was only needed for dsum; drop it with the rest
                if consume {
                    let _ = self.take(ChunkKey::new(layer, BufKind::O, i))?;
                }
                let mut dq_i = self.take(ChunkKey::new(layer, BufKind::DQ, i))?;
                let _tile = self.span("attn.bwd.tile", qi.data().len());
                attention_block_bwd(
                    &qi,
                    &kj,
                    &vj,
                    &doh,
                    lse.data(),
                    dsum.data(),
                    &self.plan.gathered_positions(i),
                    &gpos_j,
                    scale,
                    &mut dq_i,
                    &mut dk_j,
                    &mut dv_j,
                )?;
                if consume {
                    // dq_j is final after its first inner iteration: ship it
                    // home with the same all-to-all as dk_j/dv_j below.
                    dq_parts.push(self.a2a_inv(&dq_i)?);
                } else {
                    self.put(ChunkKey::new(layer, BufKind::DQ, i), dq_i);
                }
            }
            // dK_j/dV_j are final once the inner sweep ends (no later outer
            // iteration touches chunk j): all-to-all back to local layout.
            dk_parts.push(self.a2a_inv(&dk_j)?);
            dv_parts.push(self.a2a_inv(&dv_j)?);
        }

        let cat = |parts: &[Tensor]| -> ExecResult<Tensor> {
            let refs: Vec<&Tensor> = parts.iter().collect();
            Ok(Tensor::concat(&refs, 0)?)
        };
        Ok((cat(&dq_parts)?, cat(&dk_parts)?, cat(&dv_parts)?))
    }

    fn discard(&mut self, layer: usize) {
        // Drop every cached chunk belonging to this layer (forward saves
        // Q/K/V/O/Lse per chunk).
        for kind in [BufKind::Q, BufKind::K, BufKind::V, BufKind::O, BufKind::Lse] {
            for chunk in 0..self.plan.chunks {
                let key = ChunkKey::new(layer, kind, chunk);
                if self.offload {
                    self.host.discard(&key);
                } else {
                    self.device.remove(&key);
                }
            }
        }
    }
}

/// Ring Attention (Liu et al., 2023) as a real executor: the sequence is
/// sharded contiguously with **full heads everywhere** (no head scatter);
/// KV blocks rotate around the ring, each hop overlapping one blockwise
/// online-attention update. The backward ring rotates `(K, V, dK, dV)`
/// quadruples so gradients accumulate as the blocks travel and arrive
/// home fully reduced.
pub struct RingAttentionExec<'c> {
    comm: &'c Communicator,
    seq_global: usize,
    saved: HashMap<usize, RingSaved>,
}

struct RingSaved {
    q: Tensor,
    k: Tensor,
    v: Tensor,
    o: Tensor,
    lse: Vec<f32>,
}

impl<'c> RingAttentionExec<'c> {
    /// Creates the executor for one rank of a contiguous sequence shard.
    pub fn new(comm: &'c Communicator, seq_global: usize) -> Self {
        RingAttentionExec {
            comm,
            seq_global,
            saved: HashMap::new(),
        }
    }

    fn owner_positions(&self, owner: usize) -> Vec<usize> {
        let s_local = self.seq_global / self.comm.world();
        (owner * s_local..(owner + 1) * s_local).collect()
    }

    /// Sends a `(k, v)` or `(k, v, dk, dv)` bundle one hop around the ring.
    fn rotate(&self, tensors: Vec<Tensor>) -> ExecResult<Vec<Tensor>> {
        let shapes: Vec<Vec<usize>> = tensors.iter().map(|t| t.shape().to_vec()).collect();
        let mut flat = Vec::new();
        for t in tensors {
            flat.extend_from_slice(t.data());
        }
        let recv = self.comm.ring_exchange(flat)?;
        let mut out = Vec::with_capacity(shapes.len());
        let mut off = 0;
        for sh in shapes {
            let n: usize = sh.iter().product();
            out.push(Tensor::from_vec(recv[off..off + n].to_vec(), &sh)?);
            off += n;
        }
        Ok(out)
    }
}

impl AttentionExec for RingAttentionExec<'_> {
    fn forward(
        &mut self,
        layer: usize,
        q: &Tensor,
        k: &Tensor,
        v: &Tensor,
        pos: &[usize],
    ) -> ExecResult<Tensor> {
        let p = self.comm.world();
        let rank = self.comm.rank();
        // Ring attention requires the plain contiguous shard.
        debug_assert_eq!(pos, self.owner_positions(rank).as_slice());
        let mut st = OnlineAttention::new(q, pos, None)?;
        let mut cur_k = k.clone();
        let mut cur_v = v.clone();
        for step in 0..p {
            let owner = (rank + p - step) % p;
            st.update(&cur_k, &cur_v, &self.owner_positions(owner))?;
            if step + 1 < p {
                let mut rot = self.rotate(vec![cur_k, cur_v])?;
                cur_v = rot.pop().expect("v");
                cur_k = rot.pop().expect("k");
            }
        }
        let (o, lse) = st.finalize();
        self.saved.insert(
            layer,
            RingSaved {
                q: q.clone(),
                k: k.clone(),
                v: v.clone(),
                o: o.clone(),
                lse,
            },
        );
        Ok(o)
    }

    fn backward(&mut self, layer: usize, dout: &Tensor) -> ExecResult<(Tensor, Tensor, Tensor)> {
        let p = self.comm.world();
        let rank = self.comm.rank();
        let s = self
            .saved
            .remove(&layer)
            .ok_or_else(|| format!("no saved ring forward for layer {layer}"))?;
        let scale = default_scale(s.q.shape()[2]);
        let dsum = rowwise_dot(&s.o, dout)?;
        let my_pos = self.owner_positions(rank);

        let mut dq = Tensor::zeros(s.q.shape());
        let mut cur_k = s.k.clone();
        let mut cur_v = s.v.clone();
        let mut cur_dk = Tensor::zeros(s.k.shape());
        let mut cur_dv = Tensor::zeros(s.v.shape());
        for step in 0..p {
            let owner = (rank + p - step) % p;
            attention_block_bwd(
                &s.q,
                &cur_k,
                &cur_v,
                dout,
                &s.lse,
                &dsum,
                &my_pos,
                &self.owner_positions(owner),
                scale,
                &mut dq,
                &mut cur_dk,
                &mut cur_dv,
            )?;
            // Rotate the block AND its accumulating gradients; after p hops
            // every (dk, dv) is home with contributions from all ranks.
            let mut rot = self.rotate(vec![cur_k, cur_v, cur_dk, cur_dv])?;
            cur_dv = rot.pop().expect("dv");
            cur_dk = rot.pop().expect("dk");
            cur_v = rot.pop().expect("v");
            cur_k = rot.pop().expect("k");
        }
        Ok((dq, cur_dk, cur_dv))
    }

    fn discard(&mut self, layer: usize) {
        self.saved.remove(&layer);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fpdt_attention::reference;
    use fpdt_comm::run_group;
    use fpdt_tensor::init;

    fn rand_qkv(seed: u64, s: usize, h: usize, d: usize) -> (Tensor, Tensor, Tensor) {
        let mut rng = init::seeded_rng(seed);
        (
            init::randn(&mut rng, &[s, h, d], 1.0),
            init::randn(&mut rng, &[s, h, d], 1.0),
            init::randn(&mut rng, &[s, h, d], 1.0),
        )
    }

    #[test]
    fn local_executor_round_trip() {
        let (q, k, v) = rand_qkv(0, 16, 2, 4);
        let pos: Vec<usize> = (0..16).collect();
        let mut rng = init::seeded_rng(1);
        let dout = init::randn(&mut rng, &[16, 2, 4], 1.0);

        let mut ex = LocalAttention::new(4);
        let o = ex.forward(0, &q, &k, &v, &pos).unwrap();
        let (dq, dk, dv) = ex.backward(0, &dout).unwrap();

        let want_o = reference::causal_attention(&q, &k, &v).unwrap();
        let (rdq, rdk, rdv) = reference::causal_attention_bwd(&q, &k, &v, &dout).unwrap();
        assert!(o.allclose(&want_o, 1e-4, 1e-5));
        assert!(dq.allclose(&rdq, 1e-3, 1e-4));
        assert!(dk.allclose(&rdk, 1e-3, 1e-4));
        assert!(dv.allclose(&rdv, 1e-3, 1e-4));
        // state consumed
        assert!(ex.backward(0, &dout).is_err());
    }

    /// Full distributed equivalence: p ranks, u chunks, offload on/off —
    /// outputs and gradients must match a single-device reference over the
    /// *global* sequence.
    fn dist_matches_reference(world: usize, chunks: usize, offload: bool) {
        let (s, h, d) = (24, 4, 4);
        let (q, k, v) = rand_qkv(2, s, h, d);
        let mut rng = init::seeded_rng(3);
        let dout = init::randn(&mut rng, &[s, h, d], 1.0);

        // reference on the global sequence
        let want_o = reference::causal_attention(&q, &k, &v).unwrap();
        let (rdq, rdk, rdv) = reference::causal_attention_bwd(&q, &k, &v, &dout).unwrap();

        let plan = ChunkPlan::new(s, world, chunks).unwrap();
        let shard_rows = |t: &Tensor, rank: usize| {
            let parts: Vec<Tensor> = plan
                .local_positions(rank)
                .into_iter()
                .map(|p| t.narrow(0, p, 1).unwrap())
                .collect();
            let refs: Vec<&Tensor> = parts.iter().collect();
            Tensor::concat(&refs, 0).unwrap()
        };

        let results = run_group(world, |comm| {
            let rank = comm.rank();
            let plan = ChunkPlan::new(s, world, chunks).unwrap();
            let pos = plan.local_positions(rank);
            let mut ex = DistAttention::new(&comm, plan, offload);
            let o = ex
                .forward(
                    0,
                    &shard_rows(&q, rank),
                    &shard_rows(&k, rank),
                    &shard_rows(&v, rank),
                    &pos,
                )
                .unwrap();
            let grads = ex.backward(0, &shard_rows(&dout, rank)).unwrap();
            let stats = ex.host_stats();
            (o, grads, stats)
        });

        for (rank, (o, (dq, dk, dv), stats)) in results.into_iter().enumerate() {
            assert!(
                o.allclose(&shard_rows(&want_o, rank), 1e-3, 1e-4),
                "o rank {rank}"
            );
            assert!(
                dq.allclose(&shard_rows(&rdq, rank), 1e-3, 1e-4),
                "dq rank {rank}"
            );
            assert!(
                dk.allclose(&shard_rows(&rdk, rank), 1e-3, 1e-4),
                "dk rank {rank}"
            );
            assert!(
                dv.allclose(&shard_rows(&rdv, rank), 1e-3, 1e-4),
                "dv rank {rank}"
            );
            if offload {
                assert!(
                    stats.offloads > 0 && stats.fetches > 0,
                    "host pool exercised"
                );
            } else {
                assert_eq!(stats.offloads, 0);
            }
        }
    }

    #[test]
    fn ulysses_mode_matches_reference() {
        // chunks = 1 is exactly DeepSpeed Ulysses
        dist_matches_reference(2, 1, false);
    }

    #[test]
    fn fpdt_chunked_matches_reference() {
        dist_matches_reference(2, 3, false);
    }

    #[test]
    fn fpdt_offload_matches_reference() {
        dist_matches_reference(2, 3, true);
    }

    #[test]
    fn fpdt_four_ranks_matches_reference() {
        dist_matches_reference(4, 2, true);
    }

    #[test]
    fn backward_frees_all_cached_chunks() {
        // After backward, the host pool must be empty — the Figure-7 nest
        // consumes every cached chunk exactly once.
        let (s, h, d) = (16, 2, 4);
        let (q, k, v) = rand_qkv(9, s, h, d);
        let dout = Tensor::ones(&[s / 2, h, d]);
        let empty = run_group(2, |comm| {
            let plan = ChunkPlan::new(s, 2, 4).unwrap();
            let pos = plan.local_positions(comm.rank());
            let shard = |t: &Tensor| {
                let parts: Vec<Tensor> = pos.iter().map(|&p| t.narrow(0, p, 1).unwrap()).collect();
                let refs: Vec<&Tensor> = parts.iter().collect();
                Tensor::concat(&refs, 0).unwrap()
            };
            let mut ex = DistAttention::new(&comm, plan, true);
            ex.forward(0, &shard(&q), &shard(&k), &shard(&v), &pos)
                .unwrap();
            ex.backward(0, &dout).unwrap();
            ex.host.is_empty()
        });
        assert!(empty.iter().all(|&e| e));
    }
}
