//! A decoder-only Transformer with hand-written backward passes and
//! pluggable attention, covering both families the paper trains:
//!
//! * **GPT** — LayerNorm, biased projections, 4x GELU MLP, MHA;
//! * **Llama** — RMSNorm, bias-free projections, gated SiLU (SwiGLU) MLP,
//!   grouped-query attention.
//!
//! The MLP and the loss head both run chunked (paper §5.4) — token-wise
//! operations chunk without changing results, which the tests verify.

use crate::runtime::exec::{AttentionExec, ExecResult};
use fpdt_model::config::{Family, ModelConfig};
use fpdt_tensor::nn::{AdamW, Embedding, LayerNorm, Linear, RmsNorm};
use fpdt_tensor::ops::{self, LayerNormCtx, RmsNormCtx};
use fpdt_tensor::{init, Tensor};
use fpdt_trace::Recorder;

/// Target id that contributes neither loss nor gradient.
pub const IGNORE_INDEX: usize = usize::MAX;
const ROPE_BASE: f32 = 10_000.0;
const NORM_EPS: f32 = 1e-5;

/// Family-dispatched normalization layer.
#[derive(Debug, Clone)]
enum Norm {
    Layer(LayerNorm),
    Rms(RmsNorm),
}

enum NormCtx {
    Layer(LayerNormCtx),
    Rms(RmsNormCtx),
}

impl Norm {
    fn new(family: Family, dim: usize) -> Self {
        match family {
            Family::Gpt => Norm::Layer(LayerNorm::new(dim, NORM_EPS)),
            Family::Llama => Norm::Rms(RmsNorm::new(dim, NORM_EPS)),
        }
    }

    fn forward(&self, x: &Tensor) -> ExecResult<(Tensor, NormCtx)> {
        Ok(match self {
            Norm::Layer(n) => {
                let (y, c) = n.forward(x)?;
                (y, NormCtx::Layer(c))
            }
            Norm::Rms(n) => {
                let (y, c) = n.forward(x)?;
                (y, NormCtx::Rms(c))
            }
        })
    }

    fn backward(&mut self, x: &Tensor, ctx: &NormCtx, dy: &Tensor) -> ExecResult<Tensor> {
        Ok(match (self, ctx) {
            (Norm::Layer(n), NormCtx::Layer(c)) => n.backward(x, c, dy)?,
            (Norm::Rms(n), NormCtx::Rms(c)) => n.backward(x, c, dy)?,
            _ => return Err("norm context family mismatch".into()),
        })
    }

    fn zero_grad(&mut self) {
        match self {
            Norm::Layer(n) => n.zero_grad(),
            Norm::Rms(n) => n.zero_grad(),
        }
    }

    fn for_each_param(&mut self, f: &mut impl FnMut(&mut Tensor, &mut Tensor)) {
        match self {
            Norm::Layer(n) => {
                f(&mut n.gamma, &mut n.dgamma);
                f(&mut n.beta, &mut n.dbeta);
            }
            Norm::Rms(n) => f(&mut n.gamma, &mut n.dgamma),
        }
    }
}

/// Family-dispatched MLP.
#[derive(Debug, Clone)]
enum Mlp {
    /// `fc2(gelu(fc1(x)))`
    Gelu { fc1: Linear, fc2: Linear },
    /// `down(silu(gate(x)) * up(x))`
    SwiGlu {
        gate: Linear,
        up: Linear,
        down: Linear,
    },
}

struct MlpCtx {
    /// Pre-activation (`fc1` out, or `gate` out).
    a: Tensor,
    /// Post-activation (`gelu` out, or `silu(gate)` out).
    g: Tensor,
    /// SwiGLU only: the `up` projection output.
    u: Option<Tensor>,
}

impl Mlp {
    fn new(cfg: &ModelConfig, rng: &mut rand::rngs::SmallRng) -> Self {
        let (h, f) = (cfg.hidden, cfg.ffn_hidden);
        match cfg.family {
            Family::Gpt => Mlp::Gelu {
                fc1: Linear::new(h, f, true, rng),
                fc2: Linear::new(f, h, true, rng),
            },
            Family::Llama => Mlp::SwiGlu {
                gate: Linear::new(h, f, false, rng),
                up: Linear::new(h, f, false, rng),
                down: Linear::new(f, h, false, rng),
            },
        }
    }

    fn forward(&self, x: &Tensor) -> ExecResult<(Tensor, MlpCtx)> {
        Ok(match self {
            Mlp::Gelu { fc1, fc2 } => {
                let a = fc1.forward(x)?;
                let g = ops::gelu(&a);
                let y = fc2.forward(&g)?;
                (y, MlpCtx { a, g, u: None })
            }
            Mlp::SwiGlu { gate, up, down } => {
                let a = gate.forward(x)?;
                let u = up.forward(x)?;
                let g = ops::silu(&a).mul(&u)?;
                let y = down.forward(&g)?;
                (y, MlpCtx { a, g, u: Some(u) })
            }
        })
    }

    fn backward(&mut self, x: &Tensor, ctx: &MlpCtx, dy: &Tensor) -> ExecResult<Tensor> {
        Ok(match self {
            Mlp::Gelu { fc1, fc2 } => {
                let dg = fc2.backward(&ctx.g, dy)?;
                let da = ops::gelu_bwd(&ctx.a, &dg)?;
                fc1.backward(x, &da)?
            }
            Mlp::SwiGlu { gate, up, down } => {
                let dm = down.backward(&ctx.g, dy)?;
                let u = ctx.u.as_ref().expect("SwiGLU saved `up` output");
                let s = ops::silu(&ctx.a);
                let du = dm.mul(&s)?;
                let ds = dm.mul(u)?;
                let da = ops::silu_bwd(&ctx.a, &ds)?;
                let mut dx = gate.backward(x, &da)?;
                dx.add_assign(&up.backward(x, &du)?)?;
                dx
            }
        })
    }

    fn zero_grad(&mut self) {
        match self {
            Mlp::Gelu { fc1, fc2 } => {
                fc1.zero_grad();
                fc2.zero_grad();
            }
            Mlp::SwiGlu { gate, up, down } => {
                gate.zero_grad();
                up.zero_grad();
                down.zero_grad();
            }
        }
    }

    fn for_each_param(&mut self, f: &mut impl FnMut(&mut Tensor, &mut Tensor)) {
        let visit = |l: &mut Linear, f: &mut dyn FnMut(&mut Tensor, &mut Tensor)| {
            f(&mut l.weight, &mut l.dweight);
            if let (Some(b), Some(db)) = (l.bias.as_mut(), l.dbias.as_mut()) {
                f(b, db);
            }
        };
        match self {
            Mlp::Gelu { fc1, fc2 } => {
                visit(fc1, f);
                visit(fc2, f);
            }
            Mlp::SwiGlu { gate, up, down } => {
                visit(gate, f);
                visit(up, f);
                visit(down, f);
            }
        }
    }
}

/// One Transformer block's parameters.
#[derive(Debug, Clone)]
pub struct Block {
    norm1: Norm,
    q_proj: Linear,
    kv_proj: Linear,
    out_proj: Linear,
    norm2: Norm,
    mlp: Mlp,
    heads: usize,
    kv_heads: usize,
}

/// Saved activations for one block's backward pass.
pub struct BlockCtx {
    x: Tensor,
    n1_ctx: NormCtx,
    n1: Tensor,
    o_merged: Tensor,
    x1: Tensor,
    n2_ctx: NormCtx,
    n2: Tensor,
    mlp: Vec<MlpCtx>,
}

impl Block {
    fn new(cfg: &ModelConfig, rng: &mut rand::rngs::SmallRng) -> Self {
        let h = cfg.hidden;
        let dh = cfg.head_dim();
        let bias = matches!(cfg.family, Family::Gpt);
        Block {
            norm1: Norm::new(cfg.family, h),
            q_proj: Linear::new(h, cfg.heads * dh, bias, rng),
            kv_proj: Linear::new(h, 2 * cfg.kv_heads * dh, bias, rng),
            out_proj: Linear::new(cfg.heads * dh, h, bias, rng),
            norm2: Norm::new(cfg.family, h),
            mlp: Mlp::new(cfg, rng),
            heads: cfg.heads,
            kv_heads: cfg.kv_heads,
        }
    }

    /// Forward for `x: [s, hidden]` with global positions `pos`;
    /// `mlp_chunks` is the MLP chunk count (2x the attention chunks per
    /// paper §5.4).
    fn forward(
        &self,
        layer: usize,
        x: &Tensor,
        pos: &[usize],
        exec: &mut dyn AttentionExec,
        mlp_chunks: usize,
    ) -> ExecResult<(Tensor, BlockCtx)> {
        let s = x.shape()[0];
        let h = x.shape()[1];
        let dh = h / self.heads;
        let (n1, n1_ctx) = self.norm1.forward(x)?;
        let q = ops::rope(
            &self.q_proj.forward(&n1)?.reshape(&[s, self.heads, dh])?,
            pos,
            ROPE_BASE,
        )?;
        let kv = self.kv_proj.forward(&n1)?;
        let kvd = self.kv_heads * dh;
        let k = ops::rope(
            &kv.narrow(1, 0, kvd)?.reshape(&[s, self.kv_heads, dh])?,
            pos,
            ROPE_BASE,
        )?;
        let v = kv.narrow(1, kvd, kvd)?.reshape(&[s, self.kv_heads, dh])?;
        let o = exec.forward(layer, &q, &k, &v, pos)?;
        let o_merged = o.reshape(&[s, h])?;
        let p = self.out_proj.forward(&o_merged)?;
        let x1 = x.add(&p)?;
        let (n2, n2_ctx) = self.norm2.forward(&x1)?;
        // Chunked MLP: token-wise, so chunking is exact.
        let mut mlp_ctxs = Vec::new();
        let mut m_parts = Vec::new();
        for r in chunk_ranges(s, mlp_chunks) {
            let n2c = n2.narrow(0, r.start, r.len())?;
            let (mo, ctx) = self.mlp.forward(&n2c)?;
            m_parts.push(mo);
            mlp_ctxs.push(ctx);
        }
        let mo = concat0(&m_parts)?;
        let x2 = x1.add(&mo)?;
        Ok((
            x2,
            BlockCtx {
                x: x.clone(),
                n1_ctx,
                n1,
                o_merged,
                x1,
                n2_ctx,
                n2,
                mlp: mlp_ctxs,
            },
        ))
    }

    /// Backward for the block; accumulates parameter gradients and
    /// returns `dx`.
    fn backward(
        &mut self,
        layer: usize,
        ctx: &BlockCtx,
        dx2: &Tensor,
        pos: &[usize],
        exec: &mut dyn AttentionExec,
        mlp_chunks: usize,
    ) -> ExecResult<Tensor> {
        let s = dx2.shape()[0];
        let h = dx2.shape()[1];
        let dh = h / self.heads;
        // MLP backward, chunked.
        let mut dn2_parts = Vec::new();
        for (ci, r) in chunk_ranges(s, mlp_chunks).into_iter().enumerate() {
            let dmo = dx2.narrow(0, r.start, r.len())?;
            let n2c = ctx.n2.narrow(0, r.start, r.len())?;
            dn2_parts.push(self.mlp.backward(&n2c, &ctx.mlp[ci], &dmo)?);
        }
        let dn2 = concat0(&dn2_parts)?;
        let mut dx1 = self.norm2.backward(&ctx.x1, &ctx.n2_ctx, &dn2)?;
        dx1.add_assign(dx2)?; // residual

        // Attention backward.
        let do_merged = self.out_proj.backward(&ctx.o_merged, &dx1)?;
        let do_heads = do_merged.reshape(&[s, self.heads, dh])?;
        let (dq, dk, dv) = exec.backward(layer, &do_heads)?;
        let dq = ops::rope_bwd(&dq, pos, ROPE_BASE)?;
        let dk = ops::rope_bwd(&dk, pos, ROPE_BASE)?;
        let kvd = self.kv_heads * dh;
        let dkv = Tensor::concat(&[&dk.reshape(&[s, kvd])?, &dv.reshape(&[s, kvd])?], 1)?;
        let mut dn1 = self.kv_proj.backward(&ctx.n1, &dkv)?;
        dn1.add_assign(
            &self
                .q_proj
                .backward(&ctx.n1, &dq.reshape(&[s, self.heads * dh])?)?,
        )?;
        let mut dx = self.norm1.backward(&ctx.x, &ctx.n1_ctx, &dn1)?;
        dx.add_assign(&dx1)?; // residual
        Ok(dx)
    }

    fn zero_grad(&mut self) {
        self.norm1.zero_grad();
        self.q_proj.zero_grad();
        self.kv_proj.zero_grad();
        self.out_proj.zero_grad();
        self.norm2.zero_grad();
        self.mlp.zero_grad();
    }

    fn for_each_param(&mut self, f: &mut impl FnMut(&mut Tensor, &mut Tensor)) {
        let visit = |l: &mut Linear, f: &mut dyn FnMut(&mut Tensor, &mut Tensor)| {
            f(&mut l.weight, &mut l.dweight);
            if let (Some(b), Some(db)) = (l.bias.as_mut(), l.dbias.as_mut()) {
                f(b, db);
            }
        };
        self.norm1.for_each_param(f);
        visit(&mut self.q_proj, f);
        visit(&mut self.kv_proj, f);
        visit(&mut self.out_proj, f);
        self.norm2.for_each_param(f);
        self.mlp.for_each_param(f);
    }
}

fn chunk_ranges(s: usize, chunks: usize) -> Vec<std::ops::Range<usize>> {
    let chunks = chunks.clamp(1, s.max(1));
    let base = s / chunks;
    let rem = s % chunks;
    let mut out = Vec::with_capacity(chunks);
    let mut start = 0;
    for c in 0..chunks {
        let len = base + usize::from(c < rem);
        if len == 0 {
            continue;
        }
        out.push(start..start + len);
        start += len;
    }
    out
}

fn concat0(parts: &[Tensor]) -> ExecResult<Tensor> {
    let refs: Vec<&Tensor> = parts.iter().collect();
    Ok(Tensor::concat(&refs, 0)?)
}

/// Loss statistics of one forward/backward pass over a local shard.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LossStats {
    /// Sum of per-token negative log-likelihoods (not averaged).
    pub loss_sum: f32,
    /// Tokens that contributed.
    pub tokens: usize,
}

/// The full model (either family, selected by
/// [`ModelConfig::family`](fpdt_model::config::ModelConfig)).
pub struct GptModel {
    cfg: ModelConfig,
    emb: Embedding,
    blocks: Vec<Block>,
    norm_f: Norm,
    head: Linear,
    recorder: Option<Recorder>,
}

impl GptModel {
    /// Builds a model with reproducible initialization: two ranks created
    /// with the same `(cfg, seed)` hold identical parameters.
    pub fn new(cfg: &ModelConfig, seed: u64) -> Self {
        let mut rng = init::seeded_rng(seed);
        let blocks = (0..cfg.layers).map(|_| Block::new(cfg, &mut rng)).collect();
        GptModel {
            cfg: cfg.clone(),
            emb: Embedding::new(cfg.vocab, cfg.hidden, &mut rng),
            blocks,
            norm_f: Norm::new(cfg.family, cfg.hidden),
            head: Linear::new(cfg.hidden, cfg.vocab, false, &mut rng),
            recorder: None,
        }
    }

    /// Attaches a span recorder: each block's forward and backward record
    /// `block.fwd` / `block.bwd` compute spans, which the runtime bench
    /// intersects with the offload copy spans to measure overlap.
    #[must_use]
    pub fn with_recorder(mut self, recorder: Recorder) -> Self {
        self.recorder = Some(recorder);
        self
    }

    /// The configuration this model was built from.
    pub fn config(&self) -> &ModelConfig {
        &self.cfg
    }

    /// Runs forward and backward over a local token shard, accumulating
    /// parameter gradients of the **summed** loss (scale by
    /// `1/total_tokens` before the optimizer step — after any gradient
    /// all-reduce).
    ///
    /// `pos[t]` is the global position of local token `t` (both RoPE and
    /// causal masking use it); `mlp_chunks`/`loss_chunks` control the
    /// §5.4 chunking.
    ///
    /// # Errors
    ///
    /// Propagates shape or communication errors from the layers/executor.
    pub fn forward_backward(
        &mut self,
        exec: &mut dyn AttentionExec,
        tokens: &[usize],
        targets: &[usize],
        pos: &[usize],
        mlp_chunks: usize,
        loss_chunks: usize,
    ) -> ExecResult<LossStats> {
        let s = tokens.len();
        if targets.len() != s || pos.len() != s {
            return Err(format!(
                "tokens/targets/pos length mismatch: {s}/{}/{}",
                targets.len(),
                pos.len()
            )
            .into());
        }
        let rec = self.recorder.clone();
        // ---- forward ----
        let mut x = self.emb.forward(tokens)?;
        let mut ctxs = Vec::with_capacity(self.blocks.len());
        for (layer, block) in self.blocks.iter().enumerate() {
            let _s = rec.as_ref().map(|r| r.span("block.fwd"));
            let (nx, ctx) = block.forward(layer, &x, pos, exec, mlp_chunks)?;
            ctxs.push(ctx);
            x = nx;
        }
        let (xf, nf_ctx) = self.norm_f.forward(&x)?;

        // ---- chunked loss head (paper §5.4) ----
        let mut loss_sum = 0.0f32;
        let mut n_tokens = 0usize;
        let mut dxf_parts = Vec::new();
        for r in chunk_ranges(s, loss_chunks) {
            let xc = xf.narrow(0, r.start, r.len())?;
            let logits = self.head.forward(&xc)?;
            let out = ops::cross_entropy(&logits, &targets[r.clone()], IGNORE_INDEX)?;
            loss_sum += out.loss_sum;
            n_tokens += out.tokens;
            dxf_parts.push(self.head.backward(&xc, &out.dlogits)?);
        }
        let dxf = concat0(&dxf_parts)?;

        // ---- backward ----
        let mut dx = self.norm_f.backward(&x, &nf_ctx, &dxf)?;
        for (layer, block) in self.blocks.iter_mut().enumerate().rev() {
            let _s = rec.as_ref().map(|r| r.span("block.bwd"));
            dx = block.backward(layer, &ctxs[layer], &dx, pos, exec, mlp_chunks)?;
        }
        self.emb.backward(tokens, &dx)?;
        Ok(LossStats {
            loss_sum,
            tokens: n_tokens,
        })
    }

    /// Like [`GptModel::forward_backward`] but with **activation
    /// checkpointing** (the paper's "AC."): the forward keeps only each
    /// block's input hidden state and discards everything else —
    /// including the attention executor's cached chunks — then the
    /// backward re-runs each block's forward (collectives included)
    /// before differentiating it. Numerically identical to the
    /// non-checkpointed path; costs one extra forward.
    ///
    /// # Errors
    ///
    /// Propagates shape or communication errors from the layers/executor.
    pub fn forward_backward_checkpointed(
        &mut self,
        exec: &mut dyn AttentionExec,
        tokens: &[usize],
        targets: &[usize],
        pos: &[usize],
        mlp_chunks: usize,
        loss_chunks: usize,
    ) -> ExecResult<LossStats> {
        let s = tokens.len();
        if targets.len() != s || pos.len() != s {
            return Err("tokens/targets/pos length mismatch".into());
        }
        let rec = self.recorder.clone();
        // ---- forward, saving only block inputs ----
        let mut x = self.emb.forward(tokens)?;
        let mut checkpoints: Vec<Tensor> = Vec::with_capacity(self.blocks.len());
        for (layer, block) in self.blocks.iter().enumerate() {
            checkpoints.push(x.clone());
            let _s = rec.as_ref().map(|r| r.span("block.fwd"));
            let (nx, ctx) = block.forward(layer, &x, pos, exec, mlp_chunks)?;
            drop(ctx); // checkpointing: keep nothing but the input
            exec.discard(layer);
            x = nx;
        }
        let (xf, nf_ctx) = self.norm_f.forward(&x)?;

        // ---- chunked loss head ----
        let mut loss_sum = 0.0f32;
        let mut n_tokens = 0usize;
        let mut dxf_parts = Vec::new();
        for r in chunk_ranges(s, loss_chunks) {
            let xc = xf.narrow(0, r.start, r.len())?;
            let logits = self.head.forward(&xc)?;
            let out = ops::cross_entropy(&logits, &targets[r.clone()], IGNORE_INDEX)?;
            loss_sum += out.loss_sum;
            n_tokens += out.tokens;
            dxf_parts.push(self.head.backward(&xc, &out.dlogits)?);
        }
        let dxf = concat0(&dxf_parts)?;

        // ---- backward with per-block recomputation ----
        let mut dx = self.norm_f.backward(&x, &nf_ctx, &dxf)?;
        for layer in (0..self.blocks.len()).rev() {
            let x_in = &checkpoints[layer];
            // Recompute this block's forward to rebuild the context and
            // the executor's cached chunks (in the real system this is
            // where chunks stream back out to host memory again).
            let ctx = {
                let _s = rec.as_ref().map(|r| r.span("block.fwd"));
                let block = &self.blocks[layer];
                let (_, ctx) = block.forward(layer, x_in, pos, exec, mlp_chunks)?;
                ctx
            };
            let _s = rec.as_ref().map(|r| r.span("block.bwd"));
            dx = self.blocks[layer].backward(layer, &ctx, &dx, pos, exec, mlp_chunks)?;
        }
        self.emb.backward(tokens, &dx)?;
        Ok(LossStats {
            loss_sum,
            tokens: n_tokens,
        })
    }

    /// Clears all gradient accumulators.
    pub fn zero_grad(&mut self) {
        self.emb.zero_grad();
        for b in &mut self.blocks {
            b.zero_grad();
        }
        self.norm_f.zero_grad();
        self.head.zero_grad();
    }

    /// Visits every `(param, grad)` pair in a fixed order.
    pub fn for_each_param(&mut self, mut f: impl FnMut(&mut Tensor, &mut Tensor)) {
        f(&mut self.emb.weight, &mut self.emb.dweight);
        for b in &mut self.blocks {
            b.for_each_param(&mut f);
        }
        self.norm_f.for_each_param(&mut f);
        f(&mut self.head.weight, &mut self.head.dweight);
    }

    /// Flattens all gradients (fixed order) for an all-reduce.
    pub fn collect_grads(&mut self) -> Vec<f32> {
        let mut out = Vec::new();
        self.for_each_param(|_, g| out.extend_from_slice(g.data()));
        out
    }

    /// Flattens all parameters (fixed order) — used by the ZeRO-1 sharded
    /// optimizer path and by tests that copy weights between replicas.
    pub fn collect_params(&mut self) -> Vec<f32> {
        let mut out = Vec::new();
        self.for_each_param(|p, _| out.extend_from_slice(p.data()));
        out
    }

    /// Writes back a flat parameter vector (inverse of
    /// [`GptModel::collect_params`]).
    ///
    /// # Panics
    ///
    /// Panics if `flat` does not match the parameter count.
    pub fn set_params(&mut self, flat: &[f32]) {
        let mut off = 0usize;
        self.for_each_param(|p, _| {
            let n = p.numel();
            p.data_mut().copy_from_slice(&flat[off..off + n]);
            off += n;
        });
        assert_eq!(off, flat.len(), "parameter length mismatch");
    }

    /// Writes back (reduced) gradients, scaled by `scale`.
    ///
    /// # Panics
    ///
    /// Panics if `flat` does not match the parameter count.
    pub fn set_grads(&mut self, flat: &[f32], scale: f32) {
        let mut off = 0usize;
        self.for_each_param(|_, g| {
            let n = g.numel();
            g.data_mut().copy_from_slice(&flat[off..off + n]);
            g.scale_in_place(scale);
            off += n;
        });
        assert_eq!(off, flat.len(), "gradient length mismatch");
    }

    /// Scales all local gradients (single-device normalization path).
    pub fn scale_grads(&mut self, scale: f32) {
        self.for_each_param(|_, g| g.scale_in_place(scale));
    }

    /// Global L2 norm of all gradients.
    pub fn grad_norm(&mut self) -> f32 {
        let mut sq = 0.0f64;
        self.for_each_param(|_, g| {
            sq += g
                .data()
                .iter()
                .map(|&x| (x as f64) * (x as f64))
                .sum::<f64>();
        });
        sq.sqrt() as f32
    }

    /// Clips gradients to a maximum global L2 norm (DeepSpeed defaults to
    /// 1.0). Returns the pre-clip norm.
    pub fn clip_grad_norm(&mut self, max_norm: f32) -> f32 {
        let norm = self.grad_norm();
        if norm > max_norm && norm > 0.0 {
            self.scale_grads(max_norm / norm);
        }
        norm
    }

    /// Applies one AdamW update to every parameter.
    pub fn optimizer_step(&mut self, opt: &mut AdamW) {
        opt.begin_step();
        let mut id = 0u64;
        self.for_each_param(|p, g| {
            opt.update(id, p.data_mut(), g.data());
            id += 1;
        });
    }

    /// Total scalar parameter count.
    pub fn param_count(&mut self) -> usize {
        let mut n = 0;
        self.for_each_param(|p, _| n += p.numel());
        n
    }

    /// Greedy next-token prediction for a prompt (used by examples).
    ///
    /// # Errors
    ///
    /// Propagates shape errors.
    pub fn greedy_next(
        &mut self,
        exec: &mut dyn AttentionExec,
        prompt: &[usize],
    ) -> ExecResult<usize> {
        let s = prompt.len();
        let pos: Vec<usize> = (0..s).collect();
        let mut x = self.emb.forward(prompt)?;
        for (layer, block) in self.blocks.iter().enumerate() {
            let (nx, _) = block.forward(layer, &x, &pos, exec, 1)?;
            exec.discard(layer); // forward-only inference keeps no state
            x = nx;
        }
        let (xf, _) = self.norm_f.forward(&x)?;
        let last = xf.narrow(0, s - 1, 1)?;
        let logits = self.head.forward(&last)?;
        let mut best = 0;
        let mut best_v = f32::NEG_INFINITY;
        for (i, &v) in logits.data().iter().enumerate() {
            if v > best_v {
                best_v = v;
                best = i;
            }
        }
        Ok(best)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::data::Corpus;
    use crate::runtime::exec::LocalAttention;
    use fpdt_tensor::nn::AdamWConfig;

    fn tiny() -> ModelConfig {
        ModelConfig::tiny(2, 32, 4, 50)
    }

    fn tiny_llama() -> ModelConfig {
        ModelConfig::tiny_llama(2, 32, 4, 2, 50)
    }

    #[test]
    fn loss_starts_near_uniform_entropy() {
        for cfg in [tiny(), tiny_llama()] {
            let mut model = GptModel::new(&cfg, 0);
            let mut exec = LocalAttention::new(1);
            let (x, y) = Corpus::new(cfg.vocab, 0.1, 0).sample(32);
            let pos: Vec<usize> = (0..32).collect();
            let stats = model
                .forward_backward(&mut exec, &x, &y, &pos, 1, 1)
                .unwrap();
            let mean = stats.loss_sum / stats.tokens as f32;
            let uniform = (cfg.vocab as f32).ln();
            assert!(
                (mean - uniform).abs() < 1.0,
                "{}: initial loss {mean} vs uniform {uniform}",
                cfg.name
            );
        }
    }

    #[test]
    fn training_reduces_loss_both_families() {
        for cfg in [tiny(), tiny_llama()] {
            let mut model = GptModel::new(&cfg, 1);
            let mut exec = LocalAttention::new(2);
            let mut opt = AdamW::new(AdamWConfig {
                lr: 3e-3,
                ..Default::default()
            });
            let mut corpus = Corpus::new(cfg.vocab, 0.05, 1);
            let pos: Vec<usize> = (0..64).collect();
            let mut first = 0.0;
            let mut last = 0.0;
            for step in 0..30 {
                let (x, y) = corpus.sample(64);
                model.zero_grad();
                let stats = model
                    .forward_backward(&mut exec, &x, &y, &pos, 2, 2)
                    .unwrap();
                let loss = stats.loss_sum / stats.tokens as f32;
                model.scale_grads(1.0 / stats.tokens as f32);
                model.optimizer_step(&mut opt);
                if step == 0 {
                    first = loss;
                }
                last = loss;
            }
            assert!(last < first * 0.7, "{}: loss {first} -> {last}", cfg.name);
        }
    }

    #[test]
    fn chunked_execution_matches_monolithic_exactly_in_loss() {
        // MLP chunking, loss chunking and attention chunking are exact:
        // same seed, same data -> same losses within float tolerance.
        for cfg in [tiny(), tiny_llama()] {
            let (x, y) = Corpus::new(cfg.vocab, 0.1, 3).sample(48);
            let pos: Vec<usize> = (0..48).collect();

            let run = |attn_chunks: usize, mlp_chunks: usize, loss_chunks: usize| {
                let mut model = GptModel::new(&cfg, 7);
                let mut exec = LocalAttention::new(attn_chunks);
                model.zero_grad();
                let stats = model
                    .forward_backward(&mut exec, &x, &y, &pos, mlp_chunks, loss_chunks)
                    .unwrap();
                let grads = model.collect_grads();
                (stats.loss_sum, grads)
            };
            let (l1, g1) = run(1, 1, 1);
            let (l2, g2) = run(4, 8, 6);
            assert!(
                (l1 - l2).abs() < 1e-3 * l1.abs(),
                "{}: {l1} vs {l2}",
                cfg.name
            );
            let max_diff = g1
                .iter()
                .zip(&g2)
                .map(|(a, b)| (a - b).abs())
                .fold(0.0f32, f32::max);
            assert!(max_diff < 1e-2, "{}: max grad diff {max_diff}", cfg.name);
        }
    }

    #[test]
    fn gradients_match_finite_difference_spot_check() {
        for cfg in [
            ModelConfig::tiny(1, 16, 2, 20),
            ModelConfig::tiny_llama(1, 16, 2, 1, 20),
        ] {
            let (x, y) = Corpus::new(cfg.vocab, 0.2, 4).sample(8);
            let pos: Vec<usize> = (0..8).collect();
            let loss_of = |model: &mut GptModel| {
                let mut exec = LocalAttention::new(1);
                let mut m2 = GptModel::new(&cfg, 11);
                let mut flat = Vec::new();
                model.for_each_param(|p, _| flat.extend_from_slice(p.data()));
                let mut off = 0;
                m2.for_each_param(|p, _| {
                    let n = p.numel();
                    p.data_mut().copy_from_slice(&flat[off..off + n]);
                    off += n;
                });
                m2.forward_backward(&mut exec, &x, &y, &pos, 1, 1)
                    .unwrap()
                    .loss_sum
            };
            let mut model = GptModel::new(&cfg, 11);
            let mut exec = LocalAttention::new(1);
            model.zero_grad();
            model
                .forward_backward(&mut exec, &x, &y, &pos, 1, 1)
                .unwrap();
            let grads = model.collect_grads();
            let n = grads.len();
            let eps = 3e-2f32;
            for &probe in &[0usize, n / 3, n / 2, n - 1] {
                let bump = |delta: f32, model: &mut GptModel| {
                    let mut off = 0;
                    model.for_each_param(|p, _| {
                        let len = p.numel();
                        if probe >= off && probe < off + len {
                            p.data_mut()[probe - off] += delta;
                        }
                        off += len;
                    });
                };
                bump(eps, &mut model);
                let fp = loss_of(&mut model);
                bump(-2.0 * eps, &mut model);
                let fm = loss_of(&mut model);
                bump(eps, &mut model); // restore
                let fd = (fp - fm) / (2.0 * eps);
                let got = grads[probe];
                assert!(
                    (fd - got).abs() < 0.05 + 0.15 * fd.abs().max(got.abs()),
                    "{} param {probe}: fd {fd} vs analytic {got}",
                    cfg.name
                );
            }
        }
    }

    #[test]
    fn param_count_matches_config_accounting() {
        // GPT: config ties embeddings, runtime unties -> +vocab*hidden.
        let cfg = tiny();
        let mut model = GptModel::new(&cfg, 0);
        assert_eq!(
            model.param_count() as u64,
            cfg.param_count() + (cfg.vocab * cfg.hidden) as u64
        );
        // Llama: config is already untied -> exact match.
        let cfg = tiny_llama();
        let mut model = GptModel::new(&cfg, 0);
        assert_eq!(model.param_count() as u64, cfg.param_count());
    }

    #[test]
    fn gqa_runtime_trains() {
        // 4 query heads sharing 2 KV heads, end to end.
        let cfg = tiny_llama();
        let mut model = GptModel::new(&cfg, 5);
        let mut exec = LocalAttention::new(4);
        let (x, y) = Corpus::new(cfg.vocab, 0.1, 5).sample(32);
        let pos: Vec<usize> = (0..32).collect();
        let stats = model
            .forward_backward(&mut exec, &x, &y, &pos, 2, 2)
            .unwrap();
        assert!(stats.loss_sum.is_finite());
        assert!(model.collect_grads().iter().all(|g| g.is_finite()));
    }

    #[test]
    fn greedy_next_returns_in_vocab() {
        let cfg = tiny();
        let mut model = GptModel::new(&cfg, 5);
        let mut exec = LocalAttention::new(1);
        let next = model.greedy_next(&mut exec, &[1, 2, 3]).unwrap();
        assert!(next < cfg.vocab);
    }
}

#[cfg(test)]
mod clip_tests {
    use super::*;
    use crate::runtime::data::Corpus;
    use crate::runtime::exec::LocalAttention;

    #[test]
    fn grad_clipping_bounds_the_norm() {
        let cfg = ModelConfig::tiny(1, 16, 2, 20);
        let mut model = GptModel::new(&cfg, 0);
        let mut exec = LocalAttention::new(1);
        let (x, y) = Corpus::new(cfg.vocab, 0.3, 0).sample(16);
        let pos: Vec<usize> = (0..16).collect();
        model.zero_grad();
        model
            .forward_backward(&mut exec, &x, &y, &pos, 1, 1)
            .unwrap();
        let before = model.grad_norm();
        assert!(before > 0.1, "summed-loss grads are large: {before}");
        let returned = model.clip_grad_norm(0.1);
        assert!((returned - before).abs() < 1e-3);
        let after = model.grad_norm();
        assert!((after - 0.1).abs() < 1e-3, "clipped to the cap: {after}");
        // clipping below the cap is a no-op
        let before2 = model.grad_norm();
        model.clip_grad_norm(10.0);
        assert!((model.grad_norm() - before2).abs() < 1e-6);
    }
}

// ---------------------------------------------------------------------------
// Checkpointing
// ---------------------------------------------------------------------------

/// Magic prefix of the checkpoint format (version 1).
const CKPT_MAGIC: &[u8; 8] = b"FPDTCK01";

impl GptModel {
    /// Serializes all parameters to a writer (flat f32 little-endian with a
    /// magic/version header). A `&mut` reference can be passed as the
    /// writer.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the writer.
    pub fn save_checkpoint<W: std::io::Write>(&mut self, mut w: W) -> std::io::Result<()> {
        let flat = self.collect_params();
        w.write_all(CKPT_MAGIC)?;
        w.write_all(&(flat.len() as u64).to_le_bytes())?;
        for v in flat {
            w.write_all(&v.to_le_bytes())?;
        }
        Ok(())
    }

    /// Restores parameters from a reader produced by
    /// [`GptModel::save_checkpoint`]. A `&mut` reference can be passed as
    /// the reader.
    ///
    /// # Errors
    ///
    /// Returns `InvalidData` for a bad magic header or a parameter-count
    /// mismatch with this model's architecture, and propagates I/O errors.
    pub fn load_checkpoint<R: std::io::Read>(&mut self, mut r: R) -> std::io::Result<()> {
        use std::io::{Error, ErrorKind};
        let mut magic = [0u8; 8];
        r.read_exact(&mut magic)?;
        if &magic != CKPT_MAGIC {
            return Err(Error::new(ErrorKind::InvalidData, "not an FPDT checkpoint"));
        }
        let mut len8 = [0u8; 8];
        r.read_exact(&mut len8)?;
        let n = u64::from_le_bytes(len8) as usize;
        if n != self.param_count() {
            return Err(Error::new(
                ErrorKind::InvalidData,
                format!(
                    "checkpoint has {n} params, model has {}",
                    self.param_count()
                ),
            ));
        }
        let mut flat = Vec::with_capacity(n);
        let mut buf = [0u8; 4];
        for _ in 0..n {
            r.read_exact(&mut buf)?;
            flat.push(f32::from_le_bytes(buf));
        }
        self.set_params(&flat);
        Ok(())
    }

    /// Mean loss over `batches` freshly sampled sequences, without
    /// touching gradients — the evaluation loop.
    ///
    /// # Errors
    ///
    /// Propagates shape or communication errors.
    pub fn evaluate(
        &mut self,
        exec: &mut dyn AttentionExec,
        corpus: &mut crate::runtime::data::Corpus,
        seq: usize,
        batches: usize,
    ) -> ExecResult<f32> {
        let pos: Vec<usize> = (0..seq).collect();
        let mut loss = 0.0f32;
        let mut toks = 0usize;
        for _ in 0..batches {
            let (x, y) = corpus.sample(seq);
            // forward_backward computes grads too; zero them afterwards so
            // evaluation leaves the training state untouched.
            let stats = self.forward_backward(exec, &x, &y, &pos, 1, 1)?;
            loss += stats.loss_sum;
            toks += stats.tokens;
        }
        self.zero_grad();
        Ok(loss / toks.max(1) as f32)
    }
}

#[cfg(test)]
mod ckpt_tests {
    use super::*;
    use crate::runtime::data::Corpus;
    use crate::runtime::exec::LocalAttention;
    use fpdt_tensor::nn::AdamWConfig;

    #[test]
    fn checkpoint_round_trip_preserves_outputs() {
        let cfg = ModelConfig::tiny(2, 32, 4, 50);
        let mut model = GptModel::new(&cfg, 9);
        // train a few steps so weights are non-trivial
        let mut exec = LocalAttention::new(2);
        let mut opt = AdamW::new(AdamWConfig {
            lr: 3e-3,
            ..Default::default()
        });
        let mut corpus = Corpus::new(cfg.vocab, 0.1, 9);
        let pos: Vec<usize> = (0..32).collect();
        for _ in 0..5 {
            let (x, y) = corpus.sample(32);
            model.zero_grad();
            let s = model
                .forward_backward(&mut exec, &x, &y, &pos, 1, 1)
                .unwrap();
            model.scale_grads(1.0 / s.tokens as f32);
            model.optimizer_step(&mut opt);
        }
        let mut buf = Vec::new();
        model.save_checkpoint(&mut buf).unwrap();

        let mut fresh = GptModel::new(&cfg, 1234); // different init
        fresh.load_checkpoint(buf.as_slice()).unwrap();
        assert_eq!(fresh.collect_params(), model.collect_params());

        // identical loss on identical data
        let (x, y) = corpus.sample(32);
        let a = model
            .forward_backward(&mut exec, &x, &y, &pos, 1, 1)
            .unwrap();
        let mut exec2 = LocalAttention::new(2);
        let b = fresh
            .forward_backward(&mut exec2, &x, &y, &pos, 1, 1)
            .unwrap();
        assert_eq!(a.loss_sum, b.loss_sum);
    }

    #[test]
    fn checkpoint_rejects_garbage_and_mismatches() {
        let cfg = ModelConfig::tiny(1, 16, 2, 20);
        let mut model = GptModel::new(&cfg, 0);
        assert!(model.load_checkpoint(&b"not a checkpoint"[..]).is_err());

        let mut buf = Vec::new();
        model.save_checkpoint(&mut buf).unwrap();
        let mut bigger = GptModel::new(&ModelConfig::tiny(2, 16, 2, 20), 0);
        assert!(bigger.load_checkpoint(buf.as_slice()).is_err());
    }

    #[test]
    fn evaluate_leaves_gradients_clean_and_tracks_learning() {
        let cfg = ModelConfig::tiny(1, 32, 4, 40);
        let mut model = GptModel::new(&cfg, 2);
        let mut exec = LocalAttention::new(1);
        let mut eval_corpus = Corpus::new(cfg.vocab, 0.05, 777);
        let before = model.evaluate(&mut exec, &mut eval_corpus, 32, 3).unwrap();
        assert_eq!(model.grad_norm(), 0.0, "evaluation must not leak gradients");

        let mut opt = AdamW::new(AdamWConfig {
            lr: 3e-3,
            ..Default::default()
        });
        let mut corpus = Corpus::new(cfg.vocab, 0.05, 2);
        let pos: Vec<usize> = (0..64).collect();
        for _ in 0..25 {
            let (x, y) = corpus.sample(64);
            model.zero_grad();
            let s = model
                .forward_backward(&mut exec, &x, &y, &pos, 1, 1)
                .unwrap();
            model.scale_grads(1.0 / s.tokens as f32);
            model.optimizer_step(&mut opt);
        }
        let mut eval_corpus = Corpus::new(cfg.vocab, 0.05, 777);
        let after = model.evaluate(&mut exec, &mut eval_corpus, 32, 3).unwrap();
        assert!(after < before, "eval loss improves: {before} -> {after}");
    }
}
