//! The real FPDT training runtime: threads as GPUs, channels as NVLink,
//! a keyed host pool as CPU DRAM.
//!
//! * [`data`] — a deterministic synthetic corpus (noisy Markov chain)
//!   that a small GPT learns quickly, so loss curves are informative.
//! * [`gpt`] — a GPT model with hand-written backward passes whose
//!   attention is pluggable: the same block code runs single-device,
//!   Ulysses (one all-to-all over the whole local sequence) and FPDT
//!   (per-chunk all-to-all + streaming attention + host offload +
//!   Figure-7 nested backward).
//! * [`exec`] — those attention executors.
//! * [`dist`] — the multi-threaded trainer that reproduces paper
//!   Figure 14: baseline and FPDT loss curves coincide.
//! * [`options`] — [`RuntimeOptions`], the single builder behind every
//!   runtime knob (offload, prefetch, comm stream, kernel threads).
//! * [`ckpt`] — sharded, versioned checkpoint state: the
//!   [`Checkpointable`](ckpt::Checkpointable) trait plus per-rank shard
//!   files behind the resumable [`dist::Trainer`].
//! * [`autotune`] — trace-calibrated autotuning: probe a short run,
//!   fit the simulator's cost constants from its spans, and search the
//!   knob space for the predicted-fastest configuration.

pub mod autotune;
pub mod ckpt;
pub mod data;
pub mod dist;
pub mod exec;
pub mod gpt;
pub mod options;

pub use autotune::{autotune, AutotuneOutcome, Calibration, CandidateConfig, Workload};
pub use ckpt::{Checkpointable, CkptError, StateDict, StateValue};
pub use dist::{train, train_traced, Mode, TrainConfig, TrainError, TrainReport, Trainer};
pub use options::RuntimeOptions;
