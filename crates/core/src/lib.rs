//! # fpdt-core
//!
//! The Fully Pipelined Distributed Transformer (FPDT) — the paper's
//! primary contribution. FPDT trains ultra-long-context LLMs by chunking
//! the sequence *inside* every Transformer block, running Ulysses-style
//! all-to-alls per chunk, streaming attention with an online-softmax
//! state, caching idle KV/Q chunks in host memory, and hiding the PCIe
//! traffic behind attention compute with a double-buffered three-stream
//! pipeline.
//!
//! The crate has two faces:
//!
//! * **Real execution** ([`runtime`], [`chunk`], [`offload`]): a
//!   thread-per-GPU training runtime that runs FPDT's exact dataflow on
//!   real numbers — chunked QKV projection, per-chunk all-to-all
//!   (`fpdt-comm`), rank-ordinal sequence shuffle (Figure 6), streaming
//!   attention (`fpdt-attention`), a host memory pool standing in for
//!   pinned CPU DRAM, and the KV-outer/Q-inner backward nest (Figure 7).
//!   It reproduces the paper's correctness claims: loss curves identical
//!   to the non-chunked baseline (Figure 14).
//! * **Performance planning** ([`pipeline`], [`strategy`]): a schedule
//!   generator that emits the FPDT pipeline into the `fpdt-sim`
//!   discrete-event engine (three CUDA streams, PCIe contention, double
//!   buffering) plus an analytic memory model, packaged as an
//!   [`fpdt_parallel::Strategy`] so it slots into the same max-context /
//!   MFU harness as the baselines. This reproduces Tables 1/3 and
//!   Figures 1/10/11/12/13.
//!
//! ## Quickstart
//!
//! ```
//! use fpdt_core::strategy::Fpdt;
//! use fpdt_model::config::ModelConfig;
//! use fpdt_parallel::{max_seq_len, Strategy, TrainSetup};
//! use fpdt_sim::hw::ClusterSpec;
//!
//! // How long a context can FPDT train an 8B Llama on 4 A100-80G?
//! let fpdt = Fpdt::paper_default();
//! let best = max_seq_len(&fpdt, &ModelConfig::llama3_8b(), &ClusterSpec::a100_80g(1, 4));
//! assert!(best.unwrap() >= 2 * 1024 * 1024); // ≥ 2M tokens (paper Table 1)
//! ```

#![deny(missing_docs)]

pub mod chunk;
pub mod offload;
pub mod pipeline;
pub mod runtime;
pub mod strategy;
