//! Sequence chunking and the rank-ordinal shuffle of paper Figure 6.
//!
//! The global sequence is cut into `world * chunks` equal *segments*. The
//! data loader hands rank `r` the segments `{ i*world + r : i in
//! 0..chunks }`, concatenated in `i`-order, as its local sequence. When
//! the per-chunk all-to-all later gathers chunk `i` from every rank (in
//! rank order), the gathered chunk is exactly the contiguous global range
//! `[i * world * seg, (i+1) * world * seg)` — so the diagonal causal mask
//! stays valid and NVLink stays load-balanced, with zero runtime cost
//! (the shuffle happens in the loader, labels included).

use fpdt_tensor::TensorError;

/// A validated chunking of a global sequence across ranks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChunkPlan {
    /// Number of sequence-parallel ranks.
    pub world: usize,
    /// Number of pipeline chunks per rank.
    pub chunks: usize,
    /// Global sequence length in tokens.
    pub seq_global: usize,
}

impl ChunkPlan {
    /// Builds a plan; the global length must divide evenly into
    /// `world * chunks` segments.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidSlice`] when divisibility fails or a
    /// count is zero.
    pub fn new(seq_global: usize, world: usize, chunks: usize) -> Result<Self, TensorError> {
        if world == 0 || chunks == 0 || seq_global == 0 {
            return Err(TensorError::InvalidSlice {
                what: "chunk plan dimensions must be positive".into(),
            });
        }
        if !seq_global.is_multiple_of(world * chunks) {
            return Err(TensorError::InvalidSlice {
                what: format!(
                    "sequence {seq_global} not divisible into {world} ranks x {chunks} chunks"
                ),
            });
        }
        Ok(ChunkPlan {
            world,
            chunks,
            seq_global,
        })
    }

    /// Tokens per segment (the unit the loader shuffles).
    pub fn segment_len(&self) -> usize {
        self.seq_global / (self.world * self.chunks)
    }

    /// Tokens held by each rank.
    pub fn local_len(&self) -> usize {
        self.seq_global / self.world
    }

    /// Tokens per local chunk (= segment length).
    pub fn chunk_local_len(&self) -> usize {
        self.segment_len()
    }

    /// Tokens per *gathered* chunk (after the all-to-all).
    pub fn chunk_global_len(&self) -> usize {
        self.seq_global / self.chunks
    }

    /// Global positions of rank `r`'s local sequence, in local order:
    /// segment `i*world + r` for `i in 0..chunks`.
    ///
    /// # Panics
    ///
    /// Panics if `rank >= world`.
    pub fn local_positions(&self, rank: usize) -> Vec<usize> {
        assert!(rank < self.world, "rank {rank} out of {}", self.world);
        let seg = self.segment_len();
        (0..self.chunks)
            .flat_map(|i| {
                let s = (i * self.world + rank) * seg;
                s..s + seg
            })
            .collect()
    }

    /// Global positions of gathered chunk `i` (rank-order concatenation):
    /// the contiguous range `[i * world * seg, (i+1) * world * seg)`.
    ///
    /// # Panics
    ///
    /// Panics if `chunk >= chunks`.
    pub fn gathered_positions(&self, chunk: usize) -> Vec<usize> {
        assert!(chunk < self.chunks, "chunk {chunk} out of {}", self.chunks);
        let len = self.chunk_global_len();
        (chunk * len..(chunk + 1) * len).collect()
    }

    /// Applies the data-loader shuffle: extracts rank `r`'s local slice of
    /// a global per-token array (token ids, labels, loss masks...).
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != seq_global` or `rank >= world`.
    pub fn shard<T: Clone>(&self, rank: usize, data: &[T]) -> Vec<T> {
        assert_eq!(data.len(), self.seq_global, "data length mismatch");
        self.local_positions(rank)
            .into_iter()
            .map(|p| data[p].clone())
            .collect()
    }

    /// Inverse of [`ChunkPlan::shard`]: reassembles a global array from
    /// every rank's local array (rank order).
    ///
    /// # Panics
    ///
    /// Panics if the number of locals or any local length is wrong.
    pub fn unshard<T: Clone + Default>(&self, locals: &[Vec<T>]) -> Vec<T> {
        assert_eq!(locals.len(), self.world, "need one local slice per rank");
        let mut out = vec![T::default(); self.seq_global];
        for (rank, local) in locals.iter().enumerate() {
            assert_eq!(local.len(), self.local_len(), "rank {rank} local length");
            for (j, pos) in self.local_positions(rank).into_iter().enumerate() {
                out[pos] = local[j].clone();
            }
        }
        out
    }

    /// The range of local token indices belonging to local chunk `i`.
    pub fn local_chunk_range(&self, chunk: usize) -> std::ops::Range<usize> {
        let len = self.chunk_local_len();
        chunk * len..(chunk + 1) * len
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_validates() {
        assert!(ChunkPlan::new(16, 2, 2).is_ok());
        assert!(ChunkPlan::new(15, 2, 2).is_err());
        assert!(ChunkPlan::new(0, 2, 2).is_err());
        assert!(ChunkPlan::new(16, 0, 2).is_err());
        assert!(ChunkPlan::new(16, 2, 0).is_err());
    }

    #[test]
    fn figure6_layout_p4_u4() {
        // Paper Figure 6: 4 GPUs, 4 chunks, 16 segments T_0..T_15.
        // GPU r's chunk i must be segment T_{i*4+r}; gathering chunk 1
        // yields T_4, T_5, T_6, T_7 — contiguous in causality.
        let plan = ChunkPlan::new(16, 4, 4).unwrap();
        assert_eq!(plan.segment_len(), 1);
        // GPU 1 holds T_1, T_5, T_9, T_13
        assert_eq!(plan.local_positions(1), vec![1, 5, 9, 13]);
        // gathered chunk 1 = positions 4..8
        assert_eq!(plan.gathered_positions(1), vec![4, 5, 6, 7]);
    }

    #[test]
    fn gathered_chunks_are_contiguous_and_ordered() {
        let plan = ChunkPlan::new(96, 4, 3).unwrap();
        let mut last_end = 0;
        for c in 0..plan.chunks {
            let pos = plan.gathered_positions(c);
            assert_eq!(pos[0], last_end, "chunk {c} starts where previous ended");
            assert!(pos.windows(2).all(|w| w[1] == w[0] + 1));
            last_end = *pos.last().unwrap() + 1;
        }
        assert_eq!(last_end, 96);
    }

    #[test]
    fn gather_in_rank_order_reconstructs_gathered_positions() {
        // Concatenating every rank's chunk-i positions in rank order must
        // equal the gathered chunk's contiguous range — the invariant the
        // all-to-all relies on.
        let plan = ChunkPlan::new(48, 4, 3).unwrap();
        for c in 0..plan.chunks {
            let mut stitched = Vec::new();
            for r in 0..plan.world {
                let local = plan.local_positions(r);
                stitched.extend_from_slice(&local[plan.local_chunk_range(c)]);
            }
            assert_eq!(stitched, plan.gathered_positions(c), "chunk {c}");
        }
    }

    #[test]
    fn shard_unshard_round_trip() {
        let plan = ChunkPlan::new(24, 3, 2).unwrap();
        let data: Vec<u32> = (0..24).collect();
        let locals: Vec<Vec<u32>> = (0..3).map(|r| plan.shard(r, &data)).collect();
        // every token appears exactly once across ranks
        let mut all: Vec<u32> = locals.iter().flatten().copied().collect();
        all.sort_unstable();
        assert_eq!(all, data);
        assert_eq!(plan.unshard(&locals), data);
    }

    #[test]
    fn labels_shuffle_identically_to_tokens() {
        // The loss matches because labels ride the same permutation.
        let plan = ChunkPlan::new(16, 2, 4).unwrap();
        let tokens: Vec<usize> = (100..116).collect();
        let labels: Vec<usize> = (101..117).collect(); // shifted by one, globally
        for r in 0..2 {
            let t = plan.shard(r, &tokens);
            let l = plan.shard(r, &labels);
            for (a, b) in t.iter().zip(&l) {
                assert_eq!(*b, *a + 1, "label stays next-token after shuffle");
            }
        }
    }

    #[test]
    fn sizes_are_consistent() {
        let plan = ChunkPlan::new(1 << 20, 8, 16).unwrap();
        assert_eq!(plan.local_len(), 1 << 17);
        assert_eq!(plan.chunk_local_len() * plan.chunks, plan.local_len());
        assert_eq!(plan.chunk_global_len() * plan.chunks, plan.seq_global);
        assert_eq!(plan.chunk_local_len() * plan.world, plan.chunk_global_len());
    }

    #[test]
    #[should_panic(expected = "rank 5 out of 2")]
    fn rank_bounds_checked() {
        ChunkPlan::new(16, 2, 4).unwrap().local_positions(5);
    }
}
