//! The FPDT pipeline schedule, emitted into the `fpdt-sim` discrete-event
//! engine.
//!
//! One simulated node is built with every GPU's three CUDA streams
//! (compute, host-to-device, device-to-host — paper Figure 7) sharing the
//! node's PCIe link, and the per-layer forward and backward schedules are
//! laid out task by task:
//!
//! * **Forward**: per chunk `i` — QKV projection, all-to-all, then online
//!   attention against KV chunks `0..=i`, fetching previous chunks from
//!   host memory on the copy stream while computing (double buffering),
//!   then offloading chunk `i`'s QKV for the backward.
//! * **Backward** (Figure 7): KV-outer / Q-inner nested loop. `dK_j/dV_j`
//!   finalize after inner sweep `j`; the all-to-all + projection backward
//!   for chunk `j` overlaps the prefetch of KV chunk `j+1`.
//!
//! The simulated makespan drives MFU (Figures 11/12); the HBM pool
//! timeline draws Figure 13; and the `copy_streams`/`double_buffer` knobs
//! are the ablations DESIGN.md calls out.

use fpdt_model::config::ModelConfig;
use fpdt_model::memory::BF16;
use fpdt_sim::cost::CostModel;
use fpdt_sim::engine::{Engine, StreamId, TaskId, Work};
use fpdt_sim::hw::ClusterSpec;
use fpdt_sim::SimError;

/// Backward-pass loop nesting order (DESIGN.md ablation 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum NestOrder {
    /// The paper's Figure-7 order: outer over KV chunks, inner over query
    /// chunks. Each outer iteration fetches ONE KV chunk and streams the
    /// (smaller) query/dO chunks past it.
    #[default]
    KvOuter,
    /// The naive flip: outer over query chunks, inner over KV chunks.
    /// Every inner iteration must fetch a KV chunk — `u(u+1)/2` KV
    /// fetches instead of `u`, so prefetch must cover K *and* V instead
    /// of just the next query (the cost the paper calls out in §4.2).
    QOuter,
}

/// Pipeline configuration knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PipelineOpts {
    /// Number of sequence chunks `u` per layer.
    pub chunks: usize,
    /// Offload idle chunks to host memory.
    pub offload: bool,
    /// Allow the copy stream to run one fetch ahead of compute. Without
    /// it every fetch serializes behind the tile that consumes the
    /// previous one (the paper's non-overlapped strawman).
    pub double_buffer: bool,
    /// Number of dedicated copy streams: 0 (copies ride the compute
    /// stream), 1 (shared H2D+D2H), or 2 (the paper's design).
    pub copy_streams: u8,
    /// Backward nesting order.
    pub nest: NestOrder,
}

impl PipelineOpts {
    /// The paper's configuration: offload + double buffer + 2 copy
    /// streams + KV-outer backward.
    pub fn paper(chunks: usize) -> Self {
        PipelineOpts {
            chunks,
            offload: true,
            double_buffer: true,
            copy_streams: 2,
            nest: NestOrder::KvOuter,
        }
    }

    /// Chunking without offload ("FPDT w. chunking" in Figure 11).
    pub fn chunking_only(chunks: usize) -> Self {
        PipelineOpts {
            offload: false,
            ..Self::paper(chunks)
        }
    }
}

/// Result of simulating one Transformer block (forward + backward).
#[derive(Debug, Clone)]
pub struct PipelineReport {
    /// Simulated seconds for the block's forward pass.
    pub fwd_seconds: f64,
    /// Simulated seconds for the block's backward pass.
    pub bwd_seconds: f64,
    /// Peak HBM bytes attributable to the block's transient chunks.
    pub hbm_peak: u64,
    /// `(time, bytes)` samples of HBM usage across the run (Figure 13).
    pub timeline: Vec<(f64, u64)>,
    /// Number of tasks simulated (diagnostics).
    pub tasks: usize,
    /// Per-task execution records (stream, start, finish) for trace export.
    pub records: Vec<fpdt_sim::engine::TaskRecord>,
    /// The full simulator report (streams, pools, records) — what
    /// `fpdt-trace`'s Chrome exporter and schedule metrics consume.
    pub sim: fpdt_sim::engine::SimReport,
}

struct GpuStreams {
    compute: StreamId,
    h2d: StreamId,
    d2h: StreamId,
}

/// Simulates one FPDT Transformer block (forward then backward) for
/// `model` on `cluster` at global sequence length `seq`, returning
/// timings and the memory timeline.
///
/// # Errors
///
/// Returns a [`SimError`] if the schedule is malformed (should not happen
/// for valid inputs) or `InvalidConfig` for zero chunks.
pub fn simulate_block(
    model: &ModelConfig,
    cluster: &ClusterSpec,
    seq: u64,
    opts: PipelineOpts,
) -> Result<PipelineReport, SimError> {
    if opts.chunks == 0 {
        return Err(SimError::InvalidConfig {
            what: "chunks must be positive".into(),
        });
    }
    let u = opts.chunks;
    let p = cluster.total_gpus() as u64;
    let g = cluster.node.gpus; // GPUs sharing this node's PCIe
    let cost = CostModel::new(cluster.clone());

    // Geometry. Per-GPU bytes of one gathered chunk equal the local-chunk
    // bytes: [chunk_global, hidden/p] == [chunk_local, hidden].
    let tokens_local = seq / p;
    let chunk_local = (tokens_local / u as u64).max(1);
    let chunk_global = (seq / u as u64).max(1);
    let unit = BF16 * chunk_local * model.hidden as u64; // one chunk tensor
    let kv_ratio = model.kv_heads as f64 / model.heads as f64;
    let qkv_bytes = (unit as f64 * (1.0 + 2.0 * kv_ratio)) as u64;
    let kv_bytes = (unit as f64 * 2.0 * kv_ratio) as u64;
    // Heads may not divide the group evenly (56 heads / 16 GPUs); account
    // the per-GPU share fractionally so FLOPs stay exact.
    let heads_local = model.heads as f64 / p as f64;
    let d = model.head_dim() as u64;

    // Durations.
    let t_qkv = cost.gemm_time(2.0 * chunk_local as f64 * model.attention_params() as f64);
    let t_proj =
        cost.gemm_time(2.0 * chunk_local as f64 * (model.hidden as f64 * model.hidden as f64));
    let t_ffn = cost
        .gemm_time(2.0 * (tokens_local / (2 * u as u64)).max(1) as f64 * model.mlp_params() as f64);
    let tile_flops = |diag: bool| {
        let f = 4.0 * chunk_global as f64 * chunk_global as f64 * heads_local * d as f64;
        if diag {
            f / 2.0
        } else {
            f
        }
    };
    let a2a = |bytes: u64| cost.all_to_all_time(bytes, p as usize);

    let mut eng = Engine::new();
    let hbm = eng.add_pool("hbm0", Some(cluster.node.gpu.hbm_bytes));
    let pcie_h2d = eng.add_resource("pcie.h2d", cluster.node.pcie_bw, cluster.node.link_latency);
    let pcie_d2h = eng.add_resource("pcie.d2h", cluster.node.pcie_bw, cluster.node.link_latency);

    let gpus: Vec<GpuStreams> = (0..g)
        .map(|i| {
            let compute = eng.add_stream(&format!("gpu{i}.compute"));
            let (h2d, d2h) = match opts.copy_streams {
                0 => (compute, compute),
                1 => {
                    let c = eng.add_stream(&format!("gpu{i}.copy"));
                    (c, c)
                }
                _ => (
                    eng.add_stream(&format!("gpu{i}.h2d")),
                    eng.add_stream(&format!("gpu{i}.d2h")),
                ),
            };
            GpuStreams { compute, h2d, d2h }
        })
        .collect();

    let mut last_fwd: Vec<TaskId> = Vec::new();
    let track = |gpu: usize| gpu == 0; // memory timeline follows GPU 0

    // ---------- forward ----------
    for (gi, s) in gpus.iter().enumerate() {
        // per-(i,j) tile ids so fetches can depend on earlier tiles
        let mut tile_ids: Vec<Vec<TaskId>> = vec![Vec::new(); u];
        // offload task per chunk: fetches of chunk j require its D2H done
        let mut offload_ids: Vec<Option<TaskId>> = vec![None; u];
        for i in 0..u {
            let qkv = eng.add_task(
                &format!("fwd.qkv.{i}"),
                s.compute,
                Work::Compute { seconds: t_qkv },
            )?;
            let mut b = eng.task(
                &format!("fwd.a2a.{i}"),
                s.compute,
                Work::Compute {
                    seconds: a2a(qkv_bytes),
                },
            );
            b.deps(&[qkv]);
            if track(gi) {
                b.alloc(hbm, 2 * qkv_bytes, "a2a send+recv");
            }
            let a2a_i = b.submit()?;
            let mut prev_tile: Option<TaskId> = None;
            for j in 0..=i {
                let mut deps = vec![a2a_i];
                if let Some(pt) = prev_tile {
                    deps.push(pt);
                }
                if opts.offload && j < i {
                    // fetch KV chunk j from host
                    let mut fb = eng.task(
                        &format!("fwd.fetch.{i}.{j}"),
                        s.h2d,
                        Work::Transfer {
                            bytes: kv_bytes,
                            resource: pcie_h2d,
                        },
                    );
                    // double buffering: fetch j may start once tile j-2 is
                    // done (two buffers); otherwise it waits for tile j-1.
                    let window = if opts.double_buffer { 2 } else { 1 };
                    if j >= window {
                        fb.deps(&[tile_ids[i][j - window]]);
                    }
                    if let Some(off) = offload_ids[j] {
                        fb.deps(&[off]); // chunk j must be in host memory
                    }
                    if track(gi) {
                        fb.alloc(hbm, kv_bytes, "kv fetch buffer");
                    }
                    let fetch = fb.submit()?;
                    deps.push(fetch);
                }
                let mut tb = eng.task(
                    &format!("fwd.attn.{i}.{j}"),
                    s.compute,
                    Work::Compute {
                        seconds: cost.attention_time(tile_flops(j == i)),
                    },
                );
                tb.deps(&deps);
                if track(gi) && opts.offload && j < i {
                    tb.free(hbm, kv_bytes); // fetched buffer released
                }
                let tile = tb.submit()?;
                tile_ids[i].push(tile);
                prev_tile = Some(tile);
            }
            let last_tile = *tile_ids[i].last().expect("at least the diagonal tile");
            if opts.offload {
                // offload this chunk's QKV for the backward pass
                let mut ob = eng.task(
                    &format!("fwd.offload.{i}"),
                    s.d2h,
                    Work::Transfer {
                        bytes: qkv_bytes,
                        resource: pcie_d2h,
                    },
                );
                ob.deps(&[last_tile]);
                if track(gi) {
                    ob.free(hbm, 2 * qkv_bytes); // qkv + send staging released
                }
                offload_ids[i] = Some(ob.submit()?);
            }
            let mut back = eng.task(
                &format!("fwd.a2a_back.proj.{i}"),
                s.compute,
                Work::Compute {
                    seconds: a2a(unit) + t_proj,
                },
            );
            back.deps(&[last_tile]);
            let back = back.submit()?;
            // Without offload the a2a receive buffers stay resident for the
            // whole block (no D2H frees them) — the persistence the memory
            // timeline shows for "FPDT w. chunking".
            if i == u - 1 {
                last_fwd.push(back);
            }
        }
        // FFN at 2u chunks (paper §5.4), on the compute stream.
        for f in 0..2 * u {
            let mut fb = eng.task(
                &format!("fwd.ffn.{f}"),
                s.compute,
                Work::Compute { seconds: t_ffn },
            );
            if track(gi) {
                fb.alloc(hbm, (unit as f64 * 0.5).max(1.0) as u64, "ffn chunk");
                fb.free(hbm, (unit as f64 * 0.5).max(1.0) as u64);
            }
            let t = fb.submit()?;
            if f == 2 * u - 1 {
                last_fwd.push(t);
            }
        }
    }

    // barrier between forward and backward
    let barrier_stream = gpus[0].compute;
    let mut bb = eng.task("fwd.done", barrier_stream, Work::Event);
    bb.deps(&last_fwd);
    let fwd_done = bb.submit()?;

    // ---------- backward (Figure 7) ----------
    for (gi, s) in gpus.iter().enumerate() {
        // FFN gradients first (paper Figure 13 ordering).
        let mut prev = fwd_done;
        for f in 0..2 * u {
            let mut fb = eng.task(
                &format!("bwd.ffn.{f}"),
                s.compute,
                Work::Compute {
                    seconds: 2.0 * t_ffn,
                },
            );
            fb.deps(&[prev]);
            if track(gi) {
                fb.alloc(hbm, unit, "ffn grad chunk");
                fb.free(hbm, unit);
            }
            prev = fb.submit()?;
        }
        if opts.nest == NestOrder::QOuter {
            // Ablation: query-outer nesting at *equal memory*. Every inner
            // iteration fetches a KV chunk (u(u+1)/2 fetches total) AND
            // must round-trip the partial dK_j/dV_j accumulators through
            // host memory (they cannot all stay resident without paying
            // u x the footprint) — the extra traffic §4.2's ordering
            // argument avoids.
            let mut tiles: Vec<TaskId> = Vec::new();
            for i in 0..u {
                let q_fetch = if opts.offload {
                    let mut qb = eng.task(
                        &format!("bwd.qouter.fetch_q.{i}"),
                        s.h2d,
                        Work::Transfer {
                            bytes: 2 * unit,
                            resource: pcie_h2d,
                        },
                    );
                    if track(gi) {
                        qb.alloc(hbm, 2 * unit, "bwd q/do chunk");
                    }
                    Some(qb.submit()?)
                } else {
                    None
                };
                let mut last: Option<TaskId> = None;
                for j in 0..=i {
                    let mut deps = vec![prev];
                    if let Some(qf) = q_fetch {
                        deps.push(qf);
                    }
                    if opts.offload {
                        // KV chunk j plus its partial accumulators in...
                        let mut fb = eng.task(
                            &format!("bwd.qouter.fetch_kv_acc.{i}.{j}"),
                            s.h2d,
                            Work::Transfer {
                                bytes: 2 * kv_bytes,
                                resource: pcie_h2d,
                            },
                        );
                        let window = if opts.double_buffer { 2 } else { 1 };
                        if tiles.len() >= window {
                            fb.deps(&[tiles[tiles.len() - window]]);
                        }
                        if track(gi) {
                            fb.alloc(hbm, 2 * kv_bytes, "bwd kv + acc chunk");
                        }
                        deps.push(fb.submit()?);
                    }
                    let mut tb = eng.task(
                        &format!("bwd.qouter.attn.{i}.{j}"),
                        s.compute,
                        Work::Compute {
                            seconds: cost.attention_time(2.5 * tile_flops(j == i)),
                        },
                    );
                    tb.deps(&deps);
                    let t = tb.submit()?;
                    tiles.push(t);
                    last = Some(t);
                    if opts.offload {
                        // ...and the updated accumulators back out.
                        let mut wb = eng.task(
                            &format!("bwd.qouter.writeback_acc.{i}.{j}"),
                            s.d2h,
                            Work::Transfer {
                                bytes: kv_bytes,
                                resource: pcie_d2h,
                            },
                        );
                        wb.deps(&[t]);
                        if track(gi) {
                            wb.free(hbm, 2 * kv_bytes);
                        }
                        wb.submit()?;
                    }
                }
                let mut cb = eng.task(
                    &format!("bwd.qouter.a2a.projbwd.{i}"),
                    s.compute,
                    Work::Compute {
                        seconds: a2a(unit) + 2.0 * t_qkv + 2.0 * t_proj,
                    },
                );
                cb.deps(&[last.expect("inner loop non-empty")]);
                if track(gi) && opts.offload {
                    cb.free(hbm, 2 * unit);
                }
                prev = cb.submit()?;
            }
            // Ship every dK/dV chunk home at the very end (one final fetch
            // + all-to-all per chunk; in KV-outer this piggybacked on the
            // per-outer-iteration all-to-all).
            for j in 0..u {
                let mut sb = eng.task(
                    &format!("bwd.qouter.ship_dkv.{j}"),
                    s.compute,
                    Work::Compute {
                        seconds: a2a(kv_bytes),
                    },
                );
                sb.deps(&[prev]);
                prev = sb.submit()?;
            }
            continue;
        }

        // Attention: outer over KV chunks, inner over query chunks.
        let mut inner_tiles: Vec<TaskId> = Vec::new();
        // The KV prefetch for outer iteration j+1 overlaps iteration j's
        // all-to-all + projection backward (paper Figure 7): it only needs
        // the previous inner loop's *tiles* to be done, not the a2a.
        let mut prev_last_inner: Option<TaskId> = None;
        for j in 0..u {
            let kv_fetch = if opts.offload {
                let mut fb = eng.task(
                    &format!("bwd.fetch_kv.{j}"),
                    s.h2d,
                    Work::Transfer {
                        bytes: kv_bytes,
                        resource: pcie_h2d,
                    },
                );
                fb.deps(&[prev_last_inner.unwrap_or(prev)]);
                if track(gi) {
                    fb.alloc(hbm, kv_bytes, "bwd kv chunk");
                }
                Some(fb.submit()?)
            } else {
                None
            };
            let mut last_inner: Option<TaskId> = None;
            for (idx, i) in (j..u).enumerate() {
                let mut deps: Vec<TaskId> = vec![prev];
                if let Some(kf) = kv_fetch {
                    deps.push(kf);
                }
                if opts.offload {
                    // fetch q_i, dO_i (double-buffered window on tiles)
                    let mut qb = eng.task(
                        &format!("bwd.fetch_q.{j}.{i}"),
                        s.h2d,
                        Work::Transfer {
                            bytes: 2 * unit,
                            resource: pcie_h2d,
                        },
                    );
                    let window = if opts.double_buffer { 2 } else { 1 };
                    if idx >= window {
                        qb.deps(&[inner_tiles[inner_tiles.len() - window]]);
                    }
                    if track(gi) {
                        qb.alloc(hbm, 2 * unit, "bwd q/do chunk");
                    }
                    deps.push(qb.submit()?);
                }
                let mut tb = eng.task(
                    &format!("bwd.attn.{j}.{i}"),
                    s.compute,
                    Work::Compute {
                        seconds: cost.attention_time(2.5 * tile_flops(j == i)),
                    },
                );
                tb.deps(&deps);
                if track(gi) && opts.offload {
                    tb.free(hbm, 2 * unit);
                }
                let tile = tb.submit()?;
                inner_tiles.push(tile);
                last_inner = Some(tile);
            }
            // dK_j/dV_j (and dq_j) final: all-to-all back + projection
            // backward; overlaps the next outer iteration's KV prefetch
            // because that runs on the copy stream.
            let mut cb = eng.task(
                &format!("bwd.a2a.projbwd.{j}"),
                s.compute,
                Work::Compute {
                    seconds: a2a(qkv_bytes) + 2.0 * t_qkv + 2.0 * t_proj,
                },
            );
            let last_inner = last_inner.expect("inner loop non-empty");
            cb.deps(&[last_inner]);
            if track(gi) && opts.offload {
                cb.free(hbm, kv_bytes);
            }
            prev_last_inner = Some(last_inner);
            prev = cb.submit()?;
        }
    }

    let report = eng.run()?;
    let fwd_seconds = report.finish_time(fwd_done)?;
    let bwd_seconds = report.makespan - fwd_seconds;
    let hbm_peak = report.pools.peak(hbm)?;
    let timeline = report.pools.sampled(hbm, report.makespan, 200)?;
    Ok(PipelineReport {
        fwd_seconds,
        bwd_seconds,
        hbm_peak,
        timeline,
        tasks: eng.task_count(),
        records: report.task_records().to_vec(),
        sim: report,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use fpdt_model::config::ModelConfig;

    const K: u64 = 1024;

    fn block(seq: u64, opts: PipelineOpts) -> PipelineReport {
        simulate_block(
            &ModelConfig::llama3_8b(),
            &ClusterSpec::a100_80g(1, 4),
            seq,
            opts,
        )
        .expect("simulation runs")
    }

    #[test]
    fn double_buffering_hides_fetch_latency() {
        // With small chunks the pipeline is PCIe-bound; double buffering
        // must not be slower, and at the paper's sweet spot it should be
        // at least as fast as the serialized variant.
        let seq = 256 * K;
        let db = block(
            seq,
            PipelineOpts {
                chunks: 16,
                ..PipelineOpts::paper(16)
            },
        );
        let no_db = block(
            seq,
            PipelineOpts {
                chunks: 16,
                double_buffer: false,
                ..PipelineOpts::paper(16)
            },
        );
        assert!(db.fwd_seconds <= no_db.fwd_seconds * 1.001);
        assert!(db.bwd_seconds <= no_db.bwd_seconds * 1.001);
    }

    #[test]
    fn dedicated_copy_streams_beat_compute_stream_copies() {
        // streams=0 serializes every transfer behind compute — the
        // ablation showing why the paper deploys three CUDA streams.
        let seq = 256 * K;
        let three = block(seq, PipelineOpts::paper(8));
        let zero = PipelineOpts {
            copy_streams: 0,
            ..PipelineOpts::paper(8)
        };
        let zero = block(seq, zero);
        assert!(three.fwd_seconds < zero.fwd_seconds);
    }

    #[test]
    fn offload_shrinks_hbm_at_cost_of_traffic() {
        let seq = 512 * K;
        let off = block(seq, PipelineOpts::paper(16));
        let on_dev = block(seq, PipelineOpts::chunking_only(16));
        assert!(
            off.hbm_peak < on_dev.hbm_peak,
            "{} vs {}",
            off.hbm_peak,
            on_dev.hbm_peak
        );
    }

    #[test]
    fn more_chunks_reduce_peak_memory() {
        let seq = 256 * K;
        let few = block(seq, PipelineOpts::paper(2));
        let many = block(seq, PipelineOpts::paper(16));
        assert!(many.hbm_peak < few.hbm_peak);
    }

    #[test]
    fn backward_costs_more_than_forward() {
        let r = block(256 * K, PipelineOpts::paper(8));
        assert!(r.bwd_seconds > r.fwd_seconds);
        assert!(r.tasks > 100);
        assert!(!r.timeline.is_empty());
    }

    #[test]
    fn zero_chunks_rejected() {
        let e = simulate_block(
            &ModelConfig::llama3_8b(),
            &ClusterSpec::a100_80g(1, 4),
            256 * K,
            PipelineOpts {
                chunks: 0,
                ..PipelineOpts::paper(1)
            },
        );
        assert!(matches!(e, Err(SimError::InvalidConfig { .. })));
    }
}

/// Forward-only multi-layer simulation with optional **cross-layer chunk
/// pipelining** — an extension beyond the paper: because every operator in
/// the block is chunk-local (QKV projection, per-chunk all-to-all,
/// attention over the causal prefix, chunked FFN), chunk `i` of layer
/// `L+1` only needs chunk `i` of layer `L`, not the whole layer. Removing
/// the layer barrier lets the next layer's early chunks start while the
/// current layer's late chunks still compute, amortizing the pipeline
/// ramp-up/down bubbles across `layers x u` instead of `u`.
///
/// Returns `(serial_seconds, pipelined_seconds)` for `layers` forward
/// layers.
///
/// # Errors
///
/// Returns [`SimError::InvalidConfig`] for zero chunks/layers.
pub fn simulate_forward_layers(
    model: &ModelConfig,
    cluster: &ClusterSpec,
    seq: u64,
    opts: PipelineOpts,
    layers: usize,
) -> Result<(f64, f64), SimError> {
    if opts.chunks == 0 || layers == 0 {
        return Err(SimError::InvalidConfig {
            what: "chunks and layers must be positive".into(),
        });
    }
    let run = |cross_layer: bool| -> Result<f64, SimError> {
        let u = opts.chunks;
        let p = cluster.total_gpus() as u64;
        let cost = CostModel::new(cluster.clone());
        let tokens_local = seq / p;
        let chunk_local = (tokens_local / u as u64).max(1);
        let chunk_global = (seq / u as u64).max(1);
        let unit = BF16 * chunk_local * model.hidden as u64;
        let kv_ratio = model.kv_heads as f64 / model.heads as f64;
        let qkv_bytes = (unit as f64 * (1.0 + 2.0 * kv_ratio)) as u64;
        let kv_bytes = (unit as f64 * 2.0 * kv_ratio) as u64;
        let heads_local = model.heads as f64 / p as f64;
        let d = model.head_dim() as f64;

        let t_qkv = cost.gemm_time(2.0 * chunk_local as f64 * model.attention_params() as f64);
        let t_proj = cost.gemm_time(2.0 * chunk_local as f64 * (model.hidden as f64).powi(2));
        let t_ffn =
            cost.gemm_time(2.0 * (chunk_local / 2).max(1) as f64 * model.mlp_params() as f64);
        let tile = |diag: bool| {
            let f = 4.0 * chunk_global as f64 * chunk_global as f64 * heads_local * d;
            cost.attention_time(if diag { f / 2.0 } else { f })
        };
        let a2a = |bytes: u64| cost.all_to_all_time(bytes, p as usize);

        let mut eng = Engine::new();
        let compute = eng.add_stream("gpu0.compute");
        let h2d = eng.add_stream("gpu0.h2d");
        let d2h = eng.add_stream("gpu0.d2h");
        let pcie_in = eng.add_resource("pcie.h2d", cluster.node.pcie_bw, cluster.node.link_latency);
        let pcie_out =
            eng.add_resource("pcie.d2h", cluster.node.pcie_bw, cluster.node.link_latency);

        // done[i] = completion task of chunk i in the previous layer
        let mut prev_done: Vec<Option<TaskId>> = vec![None; u];
        for layer in 0..layers {
            let mut offloads: Vec<Option<TaskId>> = vec![None; u];
            let mut tiles: Vec<TaskId> = Vec::new();
            let mut done: Vec<Option<TaskId>> = vec![None; u];
            for i in 0..u {
                let mut qb = eng.task(
                    &format!("l{layer}.qkv.{i}"),
                    compute,
                    Work::Compute { seconds: t_qkv },
                );
                if cross_layer {
                    if let Some(dep) = prev_done[i] {
                        qb.deps(&[dep]);
                    }
                } else if let Some(dep) = prev_done[u - 1] {
                    qb.deps(&[dep]); // layer barrier
                }
                let qkv = qb.submit()?;
                let mut ab = eng.task(
                    &format!("l{layer}.a2a.{i}"),
                    compute,
                    Work::Compute {
                        seconds: a2a(qkv_bytes),
                    },
                );
                ab.deps(&[qkv]);
                let a2a_t = ab.submit()?;
                let mut last = a2a_t;
                #[allow(clippy::needless_range_loop)] // j names tasks and gates the diagonal, not just offloads
                for j in 0..=i {
                    let mut deps = vec![a2a_t, last];
                    if opts.offload && j < i {
                        let mut fb = eng.task(
                            &format!("l{layer}.fetch.{i}.{j}"),
                            h2d,
                            Work::Transfer {
                                bytes: kv_bytes,
                                resource: pcie_in,
                            },
                        );
                        let window = if opts.double_buffer { 2 } else { 1 };
                        if tiles.len() >= window {
                            fb.deps(&[tiles[tiles.len() - window]]);
                        }
                        if let Some(off) = offloads[j] {
                            fb.deps(&[off]);
                        }
                        deps.push(fb.submit()?);
                    }
                    let mut tb = eng.task(
                        &format!("l{layer}.attn.{i}.{j}"),
                        compute,
                        Work::Compute {
                            seconds: tile(j == i),
                        },
                    );
                    tb.deps(&deps);
                    let t = tb.submit()?;
                    tiles.push(t);
                    last = t;
                }
                if opts.offload {
                    let mut ob = eng.task(
                        &format!("l{layer}.offload.{i}"),
                        d2h,
                        Work::Transfer {
                            bytes: qkv_bytes,
                            resource: pcie_out,
                        },
                    );
                    ob.deps(&[last]);
                    offloads[i] = Some(ob.submit()?);
                }
                // chunk output: a2a back + out projection + this chunk's two
                // FFN sub-chunks (paper §5.4: FFN at 2x attention chunks)
                let mut cb = eng.task(
                    &format!("l{layer}.out.{i}"),
                    compute,
                    Work::Compute {
                        seconds: a2a(unit) + t_proj + 2.0 * t_ffn,
                    },
                );
                cb.deps(&[last]);
                done[i] = Some(cb.submit()?);
            }
            prev_done = done;
        }
        Ok(eng.run()?.makespan)
    };
    Ok((run(false)?, run(true)?))
}

#[cfg(test)]
mod cross_layer_tests {
    use super::*;
    use fpdt_model::config::ModelConfig;
    use fpdt_sim::hw::ClusterSpec;

    #[test]
    fn cross_layer_pipelining_never_slower() {
        let m = ModelConfig::llama3_8b();
        let cluster = ClusterSpec::a100_80g(1, 4);
        let (serial, cross) =
            simulate_forward_layers(&m, &cluster, 512 * 1024, PipelineOpts::paper(8), 4).unwrap();
        assert!(cross <= serial * 1.0001, "{cross} vs {serial}");
    }

    #[test]
    fn layer_barriers_are_free_in_fpdt_forward() {
        // A negative result worth knowing: removing the inter-layer
        // barrier recovers (almost) nothing, because (a) the compute
        // stream is serial, so no compute can overlap other compute, and
        // (b) a layer's KV fetches depend on its *own* offloads, so there
        // is nothing to prefetch across the boundary. FPDT's three-stream
        // design already keeps the bottleneck resource saturated.
        let m = ModelConfig::gpt_2_7b();
        let cluster = ClusterSpec::a100_80g(1, 4);
        let (serial, cross) =
            simulate_forward_layers(&m, &cluster, 256 * 1024, PipelineOpts::paper(32), 4).unwrap();
        let gain = 1.0 - cross / serial;
        assert!(
            (0.0..0.01).contains(&gain),
            "barrier removal is ~free: serial {serial} cross {cross}"
        );
    }

    #[test]
    fn rejects_degenerate_inputs() {
        let m = ModelConfig::llama3_8b();
        let cluster = ClusterSpec::a100_80g(1, 4);
        assert!(simulate_forward_layers(&m, &cluster, 1 << 20, PipelineOpts::paper(8), 0).is_err());
        assert!(simulate_forward_layers(&m, &cluster, 1 << 20, PipelineOpts::paper(0), 2).is_err());
    }
}
