//! Ring Attention (Liu et al., 2023): shard the sequence, keep heads
//! whole, and rotate KV blocks around a ring of devices, overlapping each
//! hop with blockwise attention on the block in hand. Implemented as the
//! third comparator (paper §2.2) and as an ablation target: unlike FPDT it
//! needs `p-1` communication rounds per attention call and its overlap
//! breaks when a hop outlasts a block's compute.

use crate::setup::{StepEstimate, Strategy, TrainSetup};
use crate::ulysses::sharded_compute_seconds;
use crate::zero::ZeroStage;
use fpdt_model::flops;
use fpdt_model::memory::{loss_spike_bytes, static_bytes, BlockActivations, BF16};
use fpdt_sim::cost::CostModel;

/// Configuration of the Ring Attention baseline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RingAttention {
    /// ZeRO stage for model state.
    pub zero: ZeroStage,
    /// Re-compute block activations in backward.
    pub activation_checkpoint: bool,
    /// Move checkpoints to host memory.
    pub offload_checkpoint: bool,
    /// Zigzag query-chunk pairing (DISTFLASHATTN / LightSeq): each rank
    /// holds query chunks `i` and `2p-1-i`, so under the causal mask
    /// every rank sweeps the same `(p+1)/(2p)` share of KV blocks instead
    /// of rank `p-1` sweeping everything while rank 0 sweeps one block.
    /// The ring still moves the same KV bytes per hop; only the compute
    /// skew (and the wasted upper-triangle work) disappears.
    pub load_balanced: bool,
}

impl RingAttention {
    /// Defaults matching the other baselines (ZeRO-3 + AC + OC).
    pub fn paper_baseline() -> Self {
        RingAttention {
            zero: ZeroStage::Three,
            activation_checkpoint: true,
            offload_checkpoint: true,
            load_balanced: false,
        }
    }

    /// Load-balanced variant: zigzag chunk assignment on top of the
    /// paper baseline, halving the worst hop's compute skew.
    pub fn zigzag() -> Self {
        RingAttention {
            load_balanced: true,
            ..Self::paper_baseline()
        }
    }
}

impl Default for RingAttention {
    fn default() -> Self {
        Self::paper_baseline()
    }
}

impl Strategy for RingAttention {
    fn name(&self) -> String {
        if self.load_balanced {
            "RingAttention+zigzag+ZeRO-3+AC+OC".to_string()
        } else {
            "RingAttention+ZeRO-3+AC+OC".to_string()
        }
    }

    fn estimate(&self, setup: &TrainSetup) -> StepEstimate {
        let p = setup.world();
        let cost = CostModel::new(setup.cluster.clone());
        let m = &setup.model;
        let s_local = (setup.seq_len * setup.batch).div_ceil(p as u64);
        let act = BlockActivations::new(m, s_local);
        let unit = BF16 * s_local * m.hidden as u64;

        // --- time ---
        // Dense compute is identical to Ulysses; the attention part runs
        // as p ring steps per layer, each hop moving the local KV block to
        // the neighbor while computing on the current one. Per-layer
        // attention time = sum over steps of max(block_compute, hop_time):
        // overlap is perfect only when compute >= hop (the paper's
        // "performance can be unpredictably affected by network latency").
        let compute = sharded_compute_seconds(setup, &cost, self.activation_checkpoint);
        let attn_total_fwd = flops::attention_core_fwd_flops(m, setup.seq_len) / p as f64;
        let passes: f64 = if self.activation_checkpoint { 2.0 } else { 1.0 }; // fwd (+recompute)
        // With zigzag pairing every rank computes the same (p+1)/(2p)
        // causal share of each ring step's block; the naive contiguous
        // assignment is priced as the full block because the slowest rank
        // (the one holding the last query chunk) gates every hop.
        let causal_share = if self.load_balanced {
            (p as f64 + 1.0) / (2.0 * p as f64)
        } else {
            1.0
        };
        let block_fwd = causal_share * cost.attention_time(attn_total_fwd / p as f64);
        let block_bwd = causal_share * cost.attention_time(2.5 * attn_total_fwd / p as f64);
        let kv_bytes = (2.0 * unit as f64 * m.kv_heads as f64 / m.heads as f64) as u64;
        let hop = cost.p2p_time(kv_bytes)
            + if setup.cluster.spans_nodes(p) {
                kv_bytes as f64 / setup.cluster.ib_bw
            } else {
                0.0
            };
        let ring_overhead_per_layer =
            (p as f64 - 1.0) * ((hop - block_fwd).max(0.0) * passes + (hop - block_bwd).max(0.0));
        // the already-counted attention compute stays; only stalls add.
        // `compute` prices the full (non-causal) attention share — what
        // the contiguous assignment actually costs on the critical rank
        // holding the last query chunk; zigzag reclaims the share the
        // causal mask skips. `attn_total_fwd` already spans all layers,
        // and `passes + 2.5` mirrors `sharded_compute_seconds`'s
        // fwd (+recompute) + bwd accounting.
        let attn_saving =
            (1.0 - causal_share) * cost.attention_time(attn_total_fwd * (passes + 2.5));
        let zero_comm = self.zero.comm_seconds(m, &cost, p);
        let step_time = compute
            + zero_comm
            + m.layers as f64 * ring_overhead_per_layer
            + m.layers as f64 * 2.0 * (p as f64) * setup.cluster.node.link_latency
            - attn_saving
            + crate::setup::PER_STEP_FRAMEWORK_SECONDS;

        // --- memory ---
        let static_hbm =
            static_bytes(m, self.zero.shard_spec(p)) + self.zero.live_param_overhead(m);
        let saved = if self.activation_checkpoint {
            if self.offload_checkpoint {
                2 * unit
            } else {
                m.layers as u64 * unit
            }
        } else {
            m.layers as u64 * act.saved_per_layer()
        };
        // Working set: like Ulysses minus the all-to-all receive buffers,
        // plus the in-flight KV block double buffer.
        let working_set =
            act.bwd_monolithic() - 2 * kv_bytes.min(act.bwd_monolithic() / 4) + 2 * kv_bytes;
        let loss = loss_spike_bytes(s_local, m.vocab as u64, 4);
        let host = if self.offload_checkpoint {
            m.layers as u64 * unit * setup.cluster.node.gpus as u64
        } else {
            0
        };
        StepEstimate::from_parts(
            setup,
            step_time,
            static_hbm,
            saved + working_set + loss,
            host,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::setup::max_seq_len;
    use crate::ulysses::Ulysses;
    use fpdt_model::config::ModelConfig;
    use fpdt_sim::hw::ClusterSpec;

    const K: u64 = 1024;

    #[test]
    fn ring_reaches_similar_context_to_ulysses() {
        let m = ModelConfig::llama3_8b();
        let cluster = ClusterSpec::a100_80g(2, 4);
        let ring = max_seq_len(&RingAttention::paper_baseline(), &m, &cluster).unwrap();
        let uly = max_seq_len(&Ulysses::paper_baseline(), &m, &cluster).unwrap();
        let ratio = ring as f64 / uly as f64;
        assert!((0.5..=2.0).contains(&ratio), "ring {ring} vs ulysses {uly}");
    }

    #[test]
    fn ring_and_ulysses_converge_at_long_context() {
        // At short context the two methods differ (Ulysses pays blocking
        // all-to-alls, ring pays per-hop latency); once attention compute
        // dominates, both approach the same attention-bound MFU and the
        // gap shrinks toward zero.
        let m = ModelConfig::llama3_8b();
        let cluster = ClusterSpec::a100_80g(2, 4);
        let ring = RingAttention::paper_baseline();
        let uly = Ulysses::paper_baseline();
        let short = TrainSetup::new(m.clone(), cluster.clone(), 32 * K);
        let long = TrainSetup::new(m, cluster, 512 * K);
        let gap_short = uly.estimate(&short).mfu - ring.estimate(&short).mfu;
        let gap_long = uly.estimate(&long).mfu - ring.estimate(&long).mfu;
        assert!(
            gap_long.abs() < gap_short.abs(),
            "gap shrinks: {gap_short} -> {gap_long}"
        );
    }

    #[test]
    fn zigzag_outruns_the_contiguous_ring_with_identical_memory() {
        // Zigzag only re-times compute: the step gets faster (the causal
        // share drops from 1 to (p+1)/(2p)) while every memory number —
        // same KV blocks, same checkpoints, same ZeRO shards — is
        // untouched.
        let m = ModelConfig::llama3_8b();
        let cluster = ClusterSpec::a100_80g(2, 4);
        let setup = TrainSetup::new(m, cluster, 256 * K);
        let base = RingAttention::paper_baseline().estimate(&setup);
        let zz = RingAttention::zigzag().estimate(&setup);
        assert!(
            zz.step_time < base.step_time,
            "zigzag step {} vs contiguous {}",
            zz.step_time,
            base.step_time
        );
        assert!(zz.mfu > base.mfu, "mfu {} vs {}", zz.mfu, base.mfu);
        assert_eq!(zz.peak_hbm, base.peak_hbm, "memory must be untouched");
        assert_eq!(zz.host_bytes_per_node, base.host_bytes_per_node);
    }

    #[test]
    fn golden_step_estimates_for_both_ring_variants() {
        // Pinned numbers for the comparator table: any cost-model drift
        // that moves either ring row shows up here first. Captured from
        // the implementation at introduction time (gpt-6.7b, 1x4 A100
        // 80G, 256K tokens).
        let m = ModelConfig::gpt_6_7b();
        let cluster = ClusterSpec::a100_80g(1, 4);
        let setup = TrainSetup::new(m, cluster, 256 * K);
        let base = RingAttention::paper_baseline().estimate(&setup);
        let zz = RingAttention::zigzag().estimate(&setup);
        let close = |got: f64, want: f64| (got - want).abs() <= 1e-6 * want.abs();
        assert!(
            close(base.step_time, 128.879840163),
            "base step_time {}",
            base.step_time
        );
        assert!(close(base.mfu, 0.457028711), "base mfu {}", base.mfu);
        assert!(
            close(zz.step_time, 86.882576049),
            "zigzag step_time {}",
            zz.step_time
        );
        assert!(close(zz.mfu, 0.677947062), "zigzag mfu {}", zz.mfu);
    }

    #[test]
    fn mfu_in_sane_range() {
        let m = ModelConfig::gpt_6_7b();
        let cluster = ClusterSpec::a100_80g(1, 4);
        let e = RingAttention::paper_baseline().estimate(&TrainSetup::new(m, cluster, 256 * K));
        assert!((0.1..0.7).contains(&e.mfu), "mfu {}", e.mfu);
    }
}
