//! Ring Attention (Liu et al., 2023): shard the sequence, keep heads
//! whole, and rotate KV blocks around a ring of devices, overlapping each
//! hop with blockwise attention on the block in hand. Implemented as the
//! third comparator (paper §2.2) and as an ablation target: unlike FPDT it
//! needs `p-1` communication rounds per attention call and its overlap
//! breaks when a hop outlasts a block's compute.

use crate::setup::{StepEstimate, Strategy, TrainSetup};
use crate::ulysses::sharded_compute_seconds;
use crate::zero::ZeroStage;
use fpdt_model::flops;
use fpdt_model::memory::{loss_spike_bytes, static_bytes, BlockActivations, BF16};
use fpdt_sim::cost::CostModel;

/// Configuration of the Ring Attention baseline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RingAttention {
    /// ZeRO stage for model state.
    pub zero: ZeroStage,
    /// Re-compute block activations in backward.
    pub activation_checkpoint: bool,
    /// Move checkpoints to host memory.
    pub offload_checkpoint: bool,
}

impl RingAttention {
    /// Defaults matching the other baselines (ZeRO-3 + AC + OC).
    pub fn paper_baseline() -> Self {
        RingAttention {
            zero: ZeroStage::Three,
            activation_checkpoint: true,
            offload_checkpoint: true,
        }
    }
}

impl Default for RingAttention {
    fn default() -> Self {
        Self::paper_baseline()
    }
}

impl Strategy for RingAttention {
    fn name(&self) -> String {
        "RingAttention+ZeRO-3+AC+OC".to_string()
    }

    fn estimate(&self, setup: &TrainSetup) -> StepEstimate {
        let p = setup.world();
        let cost = CostModel::new(setup.cluster.clone());
        let m = &setup.model;
        let s_local = (setup.seq_len * setup.batch).div_ceil(p as u64);
        let act = BlockActivations::new(m, s_local);
        let unit = BF16 * s_local * m.hidden as u64;

        // --- time ---
        // Dense compute is identical to Ulysses; the attention part runs
        // as p ring steps per layer, each hop moving the local KV block to
        // the neighbor while computing on the current one. Per-layer
        // attention time = sum over steps of max(block_compute, hop_time):
        // overlap is perfect only when compute >= hop (the paper's
        // "performance can be unpredictably affected by network latency").
        let compute = sharded_compute_seconds(setup, &cost, self.activation_checkpoint);
        let attn_total_fwd = flops::attention_core_fwd_flops(m, setup.seq_len) / p as f64;
        let passes: f64 = if self.activation_checkpoint { 2.0 } else { 1.0 }; // fwd (+recompute)
        let block_fwd = cost.attention_time(attn_total_fwd / p as f64);
        let block_bwd = cost.attention_time(2.5 * attn_total_fwd / p as f64);
        let kv_bytes = (2.0 * unit as f64 * m.kv_heads as f64 / m.heads as f64) as u64;
        let hop = cost.p2p_time(kv_bytes)
            + if setup.cluster.spans_nodes(p) {
                kv_bytes as f64 / setup.cluster.ib_bw
            } else {
                0.0
            };
        let ring_overhead_per_layer =
            (p as f64 - 1.0) * ((hop - block_fwd).max(0.0) * passes + (hop - block_bwd).max(0.0));
        // the already-counted attention compute stays; only stalls add.
        let zero_comm = self.zero.comm_seconds(m, &cost, p);
        let step_time = compute
            + zero_comm
            + m.layers as f64 * ring_overhead_per_layer
            + m.layers as f64 * 2.0 * (p as f64) * setup.cluster.node.link_latency
            + crate::setup::PER_STEP_FRAMEWORK_SECONDS;

        // --- memory ---
        let static_hbm =
            static_bytes(m, self.zero.shard_spec(p)) + self.zero.live_param_overhead(m);
        let saved = if self.activation_checkpoint {
            if self.offload_checkpoint {
                2 * unit
            } else {
                m.layers as u64 * unit
            }
        } else {
            m.layers as u64 * act.saved_per_layer()
        };
        // Working set: like Ulysses minus the all-to-all receive buffers,
        // plus the in-flight KV block double buffer.
        let working_set =
            act.bwd_monolithic() - 2 * kv_bytes.min(act.bwd_monolithic() / 4) + 2 * kv_bytes;
        let loss = loss_spike_bytes(s_local, m.vocab as u64, 4);
        let host = if self.offload_checkpoint {
            m.layers as u64 * unit * setup.cluster.node.gpus as u64
        } else {
            0
        };
        StepEstimate::from_parts(
            setup,
            step_time,
            static_hbm,
            saved + working_set + loss,
            host,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::setup::max_seq_len;
    use crate::ulysses::Ulysses;
    use fpdt_model::config::ModelConfig;
    use fpdt_sim::hw::ClusterSpec;

    const K: u64 = 1024;

    #[test]
    fn ring_reaches_similar_context_to_ulysses() {
        let m = ModelConfig::llama3_8b();
        let cluster = ClusterSpec::a100_80g(2, 4);
        let ring = max_seq_len(&RingAttention::paper_baseline(), &m, &cluster).unwrap();
        let uly = max_seq_len(&Ulysses::paper_baseline(), &m, &cluster).unwrap();
        let ratio = ring as f64 / uly as f64;
        assert!((0.5..=2.0).contains(&ratio), "ring {ring} vs ulysses {uly}");
    }

    #[test]
    fn ring_and_ulysses_converge_at_long_context() {
        // At short context the two methods differ (Ulysses pays blocking
        // all-to-alls, ring pays per-hop latency); once attention compute
        // dominates, both approach the same attention-bound MFU and the
        // gap shrinks toward zero.
        let m = ModelConfig::llama3_8b();
        let cluster = ClusterSpec::a100_80g(2, 4);
        let ring = RingAttention::paper_baseline();
        let uly = Ulysses::paper_baseline();
        let short = TrainSetup::new(m.clone(), cluster.clone(), 32 * K);
        let long = TrainSetup::new(m, cluster, 512 * K);
        let gap_short = uly.estimate(&short).mfu - ring.estimate(&short).mfu;
        let gap_long = uly.estimate(&long).mfu - ring.estimate(&long).mfu;
        assert!(
            gap_long.abs() < gap_short.abs(),
            "gap shrinks: {gap_short} -> {gap_long}"
        );
    }

    #[test]
    fn mfu_in_sane_range() {
        let m = ModelConfig::gpt_6_7b();
        let cluster = ClusterSpec::a100_80g(1, 4);
        let e = RingAttention::paper_baseline().estimate(&TrainSetup::new(m, cluster, 256 * K));
        assert!((0.1..0.7).contains(&e.mfu), "mfu {}", e.mfu);
    }
}
