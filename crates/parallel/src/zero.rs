//! ZeRO redundancy-optimizer stages (Rajbhandari et al.) — sharding specs
//! plus the collective traffic each stage adds to a training step.

use fpdt_model::config::ModelConfig;
use fpdt_model::memory::{ShardSpec, BF16};
use fpdt_sim::cost::CostModel;
use serde::{Deserialize, Serialize};

/// Which ZeRO stage is enabled (the paper evaluates all three in Table 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ZeroStage {
    /// No sharding (plain DDP).
    None,
    /// Optimizer-state sharding.
    One,
    /// + gradient sharding.
    Two,
    /// + parameter sharding.
    Three,
}

impl ZeroStage {
    /// The sharding divisors this stage implies over `world` ranks.
    pub fn shard_spec(self, world: usize) -> ShardSpec {
        match self {
            ZeroStage::None => ShardSpec::ddp(),
            ZeroStage::One => ShardSpec::zero1(world),
            ZeroStage::Two => ShardSpec::zero2(world),
            ZeroStage::Three => ShardSpec::zero3(world),
        }
    }

    /// Transient HBM bytes ZeRO-3 holds for *gathered* parameters during
    /// compute: the current layer plus a prefetch window of two more, in
    /// bf16. Stages 0-2 keep full parameters resident anyway (already in
    /// the static accounting), so this is zero for them.
    pub fn live_param_overhead(self, model: &ModelConfig) -> u64 {
        match self {
            ZeroStage::Three => 3 * BF16 * model.block_params(),
            _ => 0,
        }
    }

    /// Collective seconds per training step attributable to ZeRO over a
    /// data/sequence-parallel group of `world` GPUs.
    ///
    /// * Stages 0-2: one gradient all-reduce / reduce-scatter (`2P` bytes).
    /// * Stage 3 additionally all-gathers parameters for the forward and
    ///   again for the backward re-materialization.
    ///
    /// DeepSpeed overlaps most of this with compute; callers decide how
    /// much of it lands on the critical path.
    pub fn comm_seconds(self, model: &ModelConfig, cost: &CostModel, world: usize) -> f64 {
        if world <= 1 {
            return 0.0;
        }
        let param_bytes = BF16 * model.param_count();
        match self {
            ZeroStage::None | ZeroStage::One => cost.all_reduce_time(param_bytes, world),
            ZeroStage::Two => cost.reduce_scatter_time(param_bytes, world),
            ZeroStage::Three => {
                cost.reduce_scatter_time(param_bytes, world)
                    + 2.0 * cost.all_gather_time(param_bytes, world)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fpdt_model::memory::static_bytes;
    use fpdt_sim::hw::ClusterSpec;

    #[test]
    fn stage_shard_specs() {
        assert_eq!(ZeroStage::None.shard_spec(8), ShardSpec::ddp());
        assert_eq!(ZeroStage::One.shard_spec(8).optimizer, 8);
        assert_eq!(ZeroStage::Two.shard_spec(8).grads, 8);
        assert_eq!(ZeroStage::Three.shard_spec(8).params, 8);
    }

    #[test]
    fn higher_stages_use_less_memory_more_comm() {
        let m = ModelConfig::llama3_8b();
        let cost = CostModel::new(ClusterSpec::a100_80g(2, 4));
        let mem1 = static_bytes(&m, ZeroStage::One.shard_spec(8));
        let mem3 = static_bytes(&m, ZeroStage::Three.shard_spec(8));
        assert!(mem3 < mem1);
        let c1 = ZeroStage::One.comm_seconds(&m, &cost, 8);
        let c3 = ZeroStage::Three.comm_seconds(&m, &cost, 8);
        assert!(c3 > c1 * 1.2, "stage 3 pays parameter gathers");
    }

    #[test]
    fn single_gpu_is_free() {
        let m = ModelConfig::tiny(2, 64, 4, 100);
        let cost = CostModel::new(ClusterSpec::a100_80g(1, 1));
        assert_eq!(ZeroStage::Three.comm_seconds(&m, &cost, 1), 0.0);
    }
}

/// The gradient-reduction memory spike the paper's Future Work section
/// identifies: "PyTorch can also incur a high memory spike when it reduces
/// the gradients across all GPUs ... in certain cases more significant
/// than the activation's memory spikes."
///
/// The reducer flattens gradients into fp32 buckets before the collective;
/// an unbucketed reduce materializes the full fp32 gradient (4 bytes per
/// parameter) at once, while a bucketed/chunked reducer caps the transient
/// at two in-flight buckets (double buffering, FPDT-style).
pub fn grad_reduce_spike_bytes(model: &ModelConfig, bucket_bytes: Option<u64>) -> u64 {
    match bucket_bytes {
        None => 4 * model.param_count(), // flat fp32 copy of every gradient
        Some(b) => 2 * b,                // two in-flight buckets
    }
}

#[cfg(test)]
mod grad_reduce_tests {
    use super::*;

    #[test]
    fn unbucketed_spike_dwarfs_activations_for_large_models() {
        // For a 70B model the flat fp32 gradient is ~282 GB across the
        // group — per GPU (sharded by 32) still ~8.8 GB of transient, and
        // unsharded it alone exceeds an A100's HBM, which is exactly the
        // paper's warning.
        let m = ModelConfig::llama_70b();
        let spike = grad_reduce_spike_bytes(&m, None);
        assert!(spike > 250 * (1 << 30), "{} GiB", spike >> 30);
    }

    #[test]
    fn bucketing_caps_the_spike() {
        let m = ModelConfig::llama_70b();
        let bucketed = grad_reduce_spike_bytes(&m, Some(500 << 20));
        assert_eq!(bucketed, 1000 << 20);
        assert!(bucketed < grad_reduce_spike_bytes(&m, None) / 100);
    }
}
