//! The strategy abstraction: setup, estimate, and max-context search.

use fpdt_model::config::ModelConfig;
use fpdt_model::{flops, mfu};
use fpdt_sim::hw::ClusterSpec;

/// Fixed framework overhead charged to every GPU: CUDA context, NCCL
/// workspaces, cuBLAS handles, fragmentation floor (~2 GiB in practice).
pub const FRAMEWORK_OVERHEAD_BYTES: u64 = 2 << 30;

/// Allocator fragmentation multiplier applied to *activation* bytes when
/// deciding whether a configuration fits (PyTorch's caching allocator
/// reserves more than it allocates at long context).
pub const FRAG_FACTOR: f64 = 1.2;

/// Fixed per-step seconds of framework work that no strategy hides:
/// optimizer step, gradient-norm reductions, host-side bookkeeping.
pub const PER_STEP_FRAMEWORK_SECONDS: f64 = 0.25;

/// A training configuration to estimate.
#[derive(Debug, Clone)]
pub struct TrainSetup {
    /// The model being trained.
    pub model: ModelConfig,
    /// The hardware it runs on.
    pub cluster: ClusterSpec,
    /// Global sequence length in tokens.
    pub seq_len: u64,
    /// Micro-batch size (the paper fixes 1).
    pub batch: u64,
}

impl TrainSetup {
    /// Convenience constructor with batch 1.
    pub fn new(model: ModelConfig, cluster: ClusterSpec, seq_len: u64) -> Self {
        TrainSetup {
            model,
            cluster,
            seq_len,
            batch: 1,
        }
    }

    /// Number of GPUs in the parallel group.
    pub fn world(&self) -> usize {
        self.cluster.total_gpus()
    }

    /// Model FLOPs of one step at this sequence length (MFU numerator).
    pub fn model_flops(&self) -> f64 {
        self.batch as f64 * flops::model_flops_per_step(&self.model, self.seq_len)
    }

    /// MFU for a given step time on this cluster.
    pub fn mfu_for(&self, step_seconds: f64) -> f64 {
        mfu::mfu(
            &self.model,
            self.seq_len,
            step_seconds / self.batch as f64,
            self.world(),
            self.cluster.node.gpu.peak_flops,
        )
    }
}

/// What a strategy predicts for one training step.
#[derive(Debug, Clone, PartialEq)]
pub struct StepEstimate {
    /// Wall-clock seconds per step.
    pub step_time: f64,
    /// Peak HBM bytes per GPU (allocated, before the fragmentation factor
    /// used in the fit check).
    pub peak_hbm: u64,
    /// Host DRAM bytes per node consumed by offloading.
    pub host_bytes_per_node: u64,
    /// Model FLOPs utilization.
    pub mfu: f64,
    /// Whether the step fits device and host memory.
    pub fits: bool,
}

impl StepEstimate {
    /// Applies the fit check for `setup` to raw byte numbers and fills in
    /// MFU, returning a complete estimate.
    pub fn from_parts(
        setup: &TrainSetup,
        step_time: f64,
        static_hbm: u64,
        activation_hbm: u64,
        host_bytes_per_node: u64,
    ) -> Self {
        let peak_hbm = static_hbm + activation_hbm + FRAMEWORK_OVERHEAD_BYTES;
        let effective = static_hbm as f64
            + activation_hbm as f64 * FRAG_FACTOR
            + FRAMEWORK_OVERHEAD_BYTES as f64;
        let fits = effective <= setup.cluster.node.gpu.hbm_bytes as f64
            && host_bytes_per_node <= setup.cluster.node.host_mem_bytes;
        StepEstimate {
            step_time,
            peak_hbm,
            host_bytes_per_node,
            mfu: setup.mfu_for(step_time),
            fits,
        }
    }
}

/// A long-context training strategy that can be estimated analytically.
pub trait Strategy {
    /// Human-readable name (used in benchmark tables).
    fn name(&self) -> String;

    /// Predicts one training step of `setup`.
    fn estimate(&self, setup: &TrainSetup) -> StepEstimate;
}

/// The sequence-length ladder the paper reports on (32K ... 8M).
pub fn seq_ladder() -> Vec<u64> {
    const K: u64 = 1024;
    vec![
        32 * K,
        64 * K,
        128 * K,
        256 * K,
        512 * K,
        1024 * K,
        2048 * K,
        3072 * K,
        4096 * K,
        6144 * K,
        8192 * K,
    ]
}

/// Longest ladder rung that fits under `strategy`, or `None` when even the
/// shortest does not (the paper's `-` cells).
pub fn max_seq_len<S: Strategy + ?Sized>(
    strategy: &S,
    model: &ModelConfig,
    cluster: &ClusterSpec,
) -> Option<u64> {
    let mut best = None;
    for s in seq_ladder() {
        let setup = TrainSetup::new(model.clone(), cluster.clone(), s);
        if strategy.estimate(&setup).fits {
            best = Some(s);
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Fake {
        cap: u64,
    }
    impl Strategy for Fake {
        fn name(&self) -> String {
            "fake".into()
        }
        fn estimate(&self, setup: &TrainSetup) -> StepEstimate {
            StepEstimate {
                step_time: 1.0,
                peak_hbm: setup.seq_len,
                host_bytes_per_node: 0,
                mfu: 0.5,
                fits: setup.seq_len <= self.cap,
            }
        }
    }

    #[test]
    fn ladder_is_sorted_and_spans_paper_range() {
        let l = seq_ladder();
        assert!(l.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(*l.first().unwrap(), 32 * 1024);
        assert_eq!(*l.last().unwrap(), 8 * 1024 * 1024);
        assert!(l.contains(&(3 * 1024 * 1024)), "Table 1 has 3M cells");
    }

    #[test]
    fn max_seq_picks_last_fitting_rung() {
        let model = ModelConfig::tiny(2, 64, 4, 100);
        let cluster = ClusterSpec::a100_80g(1, 4);
        assert_eq!(
            max_seq_len(&Fake { cap: 600_000 }, &model, &cluster),
            Some(512 * 1024)
        );
        assert_eq!(max_seq_len(&Fake { cap: 0 }, &model, &cluster), None);
        assert_eq!(
            max_seq_len(&Fake { cap: u64::MAX }, &model, &cluster),
            Some(8 * 1024 * 1024)
        );
    }

    #[test]
    fn from_parts_applies_overhead_and_frag() {
        let setup = TrainSetup::new(
            ModelConfig::tiny(2, 64, 4, 100),
            ClusterSpec::a100_80g(1, 4),
            32 * 1024,
        );
        let hbm = setup.cluster.node.gpu.hbm_bytes;
        // activations that fit raw but not after fragmentation
        let act = ((hbm - FRAMEWORK_OVERHEAD_BYTES) as f64 / FRAG_FACTOR) as u64 + (1 << 20);
        let e = StepEstimate::from_parts(&setup, 1.0, 0, act, 0);
        assert!(!e.fits);
        let e = StepEstimate::from_parts(&setup, 1.0, 0, act / 2, 0);
        assert!(e.fits);
        // host overflow also fails
        let e = StepEstimate::from_parts(&setup, 1.0, 0, 0, u64::MAX);
        assert!(!e.fits);
    }

    #[test]
    fn mfu_for_uses_cluster_peak() {
        let setup = TrainSetup::new(ModelConfig::gpt_2_7b(), ClusterSpec::a100_80g(1, 4), 65_536);
        let ideal = setup.model_flops() / (4.0 * 312e12);
        assert!((setup.mfu_for(ideal) - 1.0).abs() < 1e-9);
    }
}
