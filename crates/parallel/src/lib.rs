//! # fpdt-parallel
//!
//! The baseline long-context training strategies the paper compares FPDT
//! against, implemented as analytic *estimators* over the `fpdt-sim`
//! hardware/cost model:
//!
//! * [`megatron::MegatronSp`] — Megatron tensor parallelism with optional
//!   sequence parallelism (Korthikanti et al.): blocking
//!   all-gather/reduce-scatter per layer whose volume scales with the
//!   activation size regardless of device count.
//! * [`ulysses::Ulysses`] — DeepSpeed Ulysses (Jacobs et al.): sequence
//!   sharding with a per-layer head-scatter/sequence-gather all-to-all,
//!   composable with the ZeRO family.
//! * [`ring::RingAttention`] — Ring Attention (Liu et al.): sequence
//!   sharding with KV blocks rotating around a ring, overlapping transfer
//!   with blockwise attention.
//! * [`zero`] — ZeRO-1/2/3 sharding specs and their collective traffic.
//!
//! Every strategy implements the [`Strategy`] trait, producing a
//! [`StepEstimate`] (step time, peak HBM, host bytes, MFU, fits?) for a
//! [`TrainSetup`]; [`max_seq_len`] ladder-searches the longest context
//! that fits — the machinery behind paper Table 1, Table 3 and
//! Figures 1/11/12. The FPDT strategy itself lives in `fpdt-core` and
//! implements the same trait.

#![deny(missing_docs)]

pub mod megatron;
pub mod ring;
mod setup;
pub mod ulysses;
pub mod zero;

pub use setup::{
    max_seq_len, seq_ladder, StepEstimate, Strategy, TrainSetup, FRAG_FACTOR,
    FRAMEWORK_OVERHEAD_BYTES, PER_STEP_FRAMEWORK_SECONDS,
};
