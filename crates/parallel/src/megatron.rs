//! Megatron-SP (Korthikanti et al., 2023): tensor parallelism with
//! sequence parallelism in the norm/dropout regions. Each layer runs two
//! all-gathers and two reduce-scatters per pass whose volume scales with
//! the full activation size `M` *regardless of device count* — the
//! communication property the paper contrasts with Ulysses.

use crate::setup::{StepEstimate, Strategy, TrainSetup};
use crate::ulysses::sharded_compute_seconds;
use fpdt_model::memory::{loss_spike_bytes, static_bytes, BlockActivations, ShardSpec, BF16};
use fpdt_sim::cost::CostModel;

/// Configuration of the Megatron-SP baseline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MegatronSp {
    /// Shard activations along the sequence in the norm regions
    /// (Megatron's "sequence parallelism"; without it those activations
    /// are replicated on every tensor-parallel rank).
    pub sequence_parallel: bool,
    /// Re-compute block activations in backward.
    pub activation_checkpoint: bool,
    /// Move checkpoints to host memory.
    pub offload_checkpoint: bool,
}

impl MegatronSp {
    /// The configuration used as "Megatron-SP" in Figure 11.
    pub fn paper_baseline() -> Self {
        MegatronSp {
            sequence_parallel: true,
            activation_checkpoint: true,
            offload_checkpoint: true,
        }
    }

    /// Plain tensor parallelism (Table 3's first rows).
    pub fn tensor_parallel_only(activation_checkpoint: bool, offload_checkpoint: bool) -> Self {
        MegatronSp {
            sequence_parallel: false,
            activation_checkpoint,
            offload_checkpoint,
        }
    }
}

impl Default for MegatronSp {
    fn default() -> Self {
        Self::paper_baseline()
    }
}

impl Strategy for MegatronSp {
    fn name(&self) -> String {
        let mut n = if self.sequence_parallel {
            "Megatron-SP"
        } else {
            "Megatron-TP"
        }
        .to_string();
        if self.activation_checkpoint {
            n.push_str("+AC");
        }
        if self.offload_checkpoint {
            n.push_str("+OC");
        }
        n
    }

    fn estimate(&self, setup: &TrainSetup) -> StepEstimate {
        let p = setup.world();
        let cost = CostModel::new(setup.cluster.clone());
        let m = &setup.model;
        let s = setup.seq_len * setup.batch;
        // Tensor parallelism shards hidden, not sequence: the "local"
        // token count for activation purposes is the full sequence, with
        // widths divided by p (equivalently: unit bytes / p).
        let s_shard = s.div_ceil(p as u64);
        let act = BlockActivations::new(m, s_shard);
        let unit_full = BF16 * s * m.hidden as u64; // unsharded activation

        // --- time ---
        let compute = sharded_compute_seconds(setup, &cost, self.activation_checkpoint);
        // Per layer, per pass: 2 all-gathers + 2 reduce-scatters, each on
        // the full [s, hidden] activation (volume independent of p).
        let coll_once =
            2.0 * cost.all_gather_time(unit_full, p) + 2.0 * cost.reduce_scatter_time(unit_full, p);
        let passes = if self.activation_checkpoint { 3.0 } else { 2.0 };
        let coll_total = m.layers as f64 * coll_once * passes;
        let oc_seconds = if self.offload_checkpoint {
            2.0 * m.layers as f64 * cost.h2d_time(unit_full / p as u64, setup.cluster.node.gpus)
        } else {
            0.0
        };
        let step_time =
            compute.max(oc_seconds) + coll_total + crate::setup::PER_STEP_FRAMEWORK_SECONDS;

        // --- memory ---
        // Megatron shards params/grads/optimizer by tp.
        let static_hbm = static_bytes(m, ShardSpec::tensor_parallel(p));
        // Replication penalty without sequence parallelism: norm/residual
        // activations (≈3 units of the *full* sequence) live on every rank.
        let replicated = if self.sequence_parallel {
            0
        } else {
            3 * unit_full
        };
        let saved =
            if self.activation_checkpoint {
                if self.offload_checkpoint {
                    2 * (unit_full / p as u64)
                } else {
                    m.layers as u64 * (unit_full / p as u64)
                }
            } else {
                m.layers as u64 * act.saved_per_layer()
            } + if self.activation_checkpoint && !self.sequence_parallel && !self.offload_checkpoint
            {
                // checkpoints themselves are replicated without SP
                m.layers as u64 * unit_full * (p as u64 - 1) / p as u64
            } else {
                0
            };
        let no_ac_replication = if !self.activation_checkpoint {
            m.layers as u64 * replicated
        } else {
            replicated
        };
        let working_set = act.bwd_monolithic();
        // Megatron's vocab-parallel cross entropy shards the logits by tp.
        let loss = loss_spike_bytes(s, m.vocab as u64, 1) / p as u64;
        let activation_hbm = saved + no_ac_replication + working_set + loss;
        let host = if self.offload_checkpoint {
            m.layers as u64 * (unit_full / p as u64) * setup.cluster.node.gpus as u64
        } else {
            0
        };
        StepEstimate::from_parts(setup, step_time, static_hbm, activation_hbm, host)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::setup::max_seq_len;
    use crate::ulysses::Ulysses;
    use fpdt_model::config::ModelConfig;
    use fpdt_sim::hw::ClusterSpec;

    const K: u64 = 1024;

    #[test]
    fn table3_tp_ladder() {
        // Table 3 rows 1-3 (8B Llama, 8 GPUs): TP-only caps around 32K;
        // +AC extends it; +AC+OC extends it further to ~512K.
        let m = ModelConfig::llama3_8b();
        let cluster = ClusterSpec::a100_80g(2, 4);
        let tp = MegatronSp::tensor_parallel_only(false, false);
        let tp_ac = MegatronSp::tensor_parallel_only(true, false);
        let tp_ac_oc = MegatronSp::tensor_parallel_only(true, true);
        let a = max_seq_len(&tp, &m, &cluster).unwrap();
        let b = max_seq_len(&tp_ac, &m, &cluster).unwrap();
        let c = max_seq_len(&tp_ac_oc, &m, &cluster).unwrap();
        assert!(a < b && b < c, "{a} < {b} < {c}");
        assert!((32 * K..=64 * K).contains(&a), "TP-only: {}K", a / K);
        assert!((256 * K..=1024 * K).contains(&c), "TP+AC+OC: {}K", c / K);
    }

    #[test]
    fn megatron_slower_than_ulysses_across_nodes() {
        // Paper §5.2: "Ulysses is generally more efficient than
        // Megatron-SP, as the latter's performance degrades severely when
        // inter-node communication is included."
        let m = ModelConfig::gpt_13b();
        let cluster = ClusterSpec::a100_80g(2, 4);
        let setup = TrainSetup::new(m, cluster, 256 * K);
        let meg = MegatronSp::paper_baseline().estimate(&setup);
        let uly = Ulysses::paper_baseline().estimate(&setup);
        assert!(
            meg.mfu < uly.mfu,
            "megatron {} vs ulysses {}",
            meg.mfu,
            uly.mfu
        );
    }

    #[test]
    fn intra_node_methods_comparable() {
        // Within one node the paper finds similar hardware efficiency.
        let m = ModelConfig::gpt_2_7b();
        let cluster = ClusterSpec::a100_80g(1, 4);
        let setup = TrainSetup::new(m, cluster, 128 * K);
        let meg = MegatronSp::paper_baseline().estimate(&setup);
        let uly = Ulysses::paper_baseline().estimate(&setup);
        let ratio = meg.mfu / uly.mfu;
        assert!((0.4..1.05).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn sequence_parallel_saves_memory() {
        let m = ModelConfig::llama3_8b();
        let cluster = ClusterSpec::a100_80g(2, 4);
        let setup = TrainSetup::new(m, cluster, 128 * K);
        let sp = MegatronSp {
            sequence_parallel: true,
            activation_checkpoint: false,
            offload_checkpoint: false,
        };
        let tp = MegatronSp {
            sequence_parallel: false,
            activation_checkpoint: false,
            offload_checkpoint: false,
        };
        assert!(sp.estimate(&setup).peak_hbm < tp.estimate(&setup).peak_hbm);
    }

    #[test]
    fn names() {
        assert_eq!(MegatronSp::paper_baseline().name(), "Megatron-SP+AC+OC");
        assert_eq!(
            MegatronSp::tensor_parallel_only(false, false).name(),
            "Megatron-TP"
        );
    }
}
