//! DeepSpeed Ulysses (Jacobs et al., 2023): shard the sequence, all-to-all
//! per layer to scatter heads and gather sequence, compute attention on
//! full context with local heads, all-to-all back. Composes with the ZeRO
//! family (paper §3.2) — the strongest baseline in the paper and the
//! substrate FPDT builds on.

use crate::setup::{StepEstimate, Strategy, TrainSetup};
use crate::zero::ZeroStage;
use fpdt_model::flops;
use fpdt_model::memory::{loss_spike_bytes, static_bytes, BlockActivations, BF16};
use fpdt_sim::cost::CostModel;

/// Configuration of the Ulysses baseline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Ulysses {
    /// Which ZeRO stage shards the model state.
    pub zero: ZeroStage,
    /// Re-compute block activations in backward instead of saving them.
    pub activation_checkpoint: bool,
    /// Move checkpoints to host memory (DeepSpeed's "OC").
    pub offload_checkpoint: bool,
    /// Loss-head tiling factor the harness applies (1 = monolithic
    /// logits; real stacks tile mildly, the paper's FPDT tiles by
    /// `vocab/hidden*2`).
    pub loss_chunks: u64,
}

impl Ulysses {
    /// The configuration used as "Ulysses" in Figure 11: ZeRO-3,
    /// activation checkpointing with CPU offload, mild loss tiling.
    pub fn paper_baseline() -> Self {
        Ulysses {
            zero: ZeroStage::Three,
            activation_checkpoint: true,
            offload_checkpoint: true,
            loss_chunks: 4,
        }
    }
}

impl Default for Ulysses {
    fn default() -> Self {
        Self::paper_baseline()
    }
}

/// Shared compute-time helper: dense + attention kernel seconds per GPU
/// for one step (used by Ulysses, Ring and FPDT, which all shard the
/// sequence evenly).
pub(crate) fn sharded_compute_seconds(
    setup: &TrainSetup,
    cost: &CostModel,
    recompute: bool,
) -> f64 {
    let p = setup.world() as u64;
    let m = &setup.model;
    let s = setup.seq_len * setup.batch;
    let dense_total = flops::model_flops_per_step(m, setup.seq_len) * setup.batch as f64
        - 3.5 * flops::attention_core_fwd_flops(m, setup.seq_len) * setup.batch as f64;
    let attn_fwd = flops::attention_core_fwd_flops(m, setup.seq_len) * setup.batch as f64;
    let recompute_mult = if recompute { 1.0 } else { 0.0 };
    // dense: fwd+bwd(2x) (+1 recompute fwd) ; dense_total already = 3x fwd
    let dense = dense_total / 3.0 * (3.0 + recompute_mult);
    let attn = attn_fwd * (3.5 + recompute_mult);
    let _ = s;
    cost.gemm_time(dense / p as f64)
        + cost.attention_time(attn / p as f64)
        + m.layers as f64 * 4.0 * cost.cluster().node.gpu.kernel_overhead
}

impl Strategy for Ulysses {
    fn name(&self) -> String {
        let mut n = format!(
            "Ulysses+ZeRO-{}",
            match self.zero {
                ZeroStage::None => "0",
                ZeroStage::One => "1",
                ZeroStage::Two => "2",
                ZeroStage::Three => "3",
            }
        );
        if self.activation_checkpoint {
            n.push_str("+AC");
        }
        if self.offload_checkpoint {
            n.push_str("+OC");
        }
        n
    }

    fn estimate(&self, setup: &TrainSetup) -> StepEstimate {
        let p = setup.world();
        let cost = CostModel::new(setup.cluster.clone());
        let m = &setup.model;
        let s_local = (setup.seq_len * setup.batch).div_ceil(p as u64);
        let act = BlockActivations::new(m, s_local);
        let unit = BF16 * s_local * m.hidden as u64;

        // --- time ---
        let compute = sharded_compute_seconds(setup, &cost, self.activation_checkpoint);
        // Blocking all-to-alls per layer: fused qkv (3 units, GQA-scaled)
        // + attention output, forward and backward, plus the recompute
        // pass under activation checkpointing.
        let qkv_bytes = act.offload_host_bytes_per_layer(); // == qkv_coeff units
        let a2a_once = cost.all_to_all_time(qkv_bytes, p) + cost.all_to_all_time(unit, p);
        let passes = if self.activation_checkpoint { 3.0 } else { 2.0 };
        let a2a_total = m.layers as f64 * a2a_once * passes;
        // ZeRO parameter/gradient traffic: per-layer gathers serialize with
        // per-layer compute in practice at batch 1, so charge it blocking.
        let zero_comm = self.zero.comm_seconds(m, &cost, p);
        // Checkpoint offload rides PCIe; only the excess over compute bites.
        let oc_seconds = if self.offload_checkpoint {
            2.0 * m.layers as f64 * cost.h2d_time(unit, setup.cluster.node.gpus)
        } else {
            0.0
        };
        let step_time = compute.max(oc_seconds)
            + zero_comm
            + a2a_total
            + crate::setup::PER_STEP_FRAMEWORK_SECONDS;

        // --- memory ---
        let static_hbm =
            static_bytes(m, self.zero.shard_spec(p)) + self.zero.live_param_overhead(m);
        let saved = if self.activation_checkpoint {
            if self.offload_checkpoint {
                2 * unit // double-buffered staging on device
            } else {
                m.layers as u64 * unit
            }
        } else {
            m.layers as u64 * act.saved_per_layer()
        };
        let working_set = act.bwd_monolithic();
        let loss = loss_spike_bytes(s_local, m.vocab as u64, self.loss_chunks);
        let activation_hbm = saved + working_set + loss;
        let host = if self.offload_checkpoint {
            m.layers as u64 * unit * setup.cluster.node.gpus as u64
        } else {
            0
        };
        StepEstimate::from_parts(setup, step_time, static_hbm, activation_hbm, host)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::setup::max_seq_len;
    use fpdt_model::config::ModelConfig;
    use fpdt_sim::hw::ClusterSpec;

    const K: u64 = 1024;

    #[test]
    fn table3_ulysses_zero_rows_cap_at_64k_without_ac() {
        // Table 3: UL + ZeRO-1/2/3 (no AC) max out at 64K on 8 GPUs.
        let m = ModelConfig::llama3_8b();
        let cluster = ClusterSpec::a100_80g(2, 4);
        for zero in [ZeroStage::One, ZeroStage::Two, ZeroStage::Three] {
            let s = Ulysses {
                zero,
                activation_checkpoint: false,
                offload_checkpoint: false,
                loss_chunks: 4,
            };
            let got = max_seq_len(&s, &m, &cluster).unwrap();
            assert!(
                (32 * K..=128 * K).contains(&got),
                "{}: {}K",
                s.name(),
                got / K
            );
        }
    }

    #[test]
    fn table3_ac_oc_extends_to_half_million() {
        // Table 3: UL + AC + OC + ZeRO reaches 512K.
        let m = ModelConfig::llama3_8b();
        let cluster = ClusterSpec::a100_80g(2, 4);
        let s = Ulysses::paper_baseline();
        let got = max_seq_len(&s, &m, &cluster).unwrap();
        assert!((256 * K..=1024 * K).contains(&got), "got {}K", got / K);
    }

    #[test]
    fn zero3_beats_zero1_memory_at_same_seq() {
        let m = ModelConfig::llama3_8b();
        let cluster = ClusterSpec::a100_80g(2, 4);
        let setup = TrainSetup::new(m, cluster, 64 * K);
        let base = Ulysses {
            zero: ZeroStage::One,
            activation_checkpoint: false,
            offload_checkpoint: false,
            loss_chunks: 4,
        };
        let e1 = base.estimate(&setup);
        let e3 = Ulysses {
            zero: ZeroStage::Three,
            ..base
        }
        .estimate(&setup);
        assert!(e3.peak_hbm < e1.peak_hbm);
        // Table 3 magnitude check: ZeRO-1 row measured 58.9G.
        let gib = e1.peak_hbm as f64 / (1u64 << 30) as f64;
        assert!((40.0..75.0).contains(&gib), "{gib} GiB");
    }

    #[test]
    fn mfu_rises_with_sequence_length() {
        // Short sequences are communication-bound; long ones are
        // attention-bound (paper Figure 11's rising curves).
        let m = ModelConfig::llama3_8b();
        let cluster = ClusterSpec::a100_80g(2, 4);
        let s = Ulysses::paper_baseline();
        let short = s.estimate(&TrainSetup::new(m.clone(), cluster.clone(), 64 * K));
        let long = s.estimate(&TrainSetup::new(m, cluster, 512 * K));
        assert!(long.mfu > short.mfu, "{} vs {}", long.mfu, short.mfu);
        assert!((0.25..0.62).contains(&long.mfu), "long mfu {}", long.mfu);
    }

    #[test]
    fn offload_uses_host_memory() {
        let m = ModelConfig::llama3_8b();
        let cluster = ClusterSpec::a100_80g(2, 4);
        let setup = TrainSetup::new(m, cluster, 256 * K);
        let e = Ulysses::paper_baseline().estimate(&setup);
        assert!(e.host_bytes_per_node > 0);
        let e2 = Ulysses {
            offload_checkpoint: false,
            ..Ulysses::paper_baseline()
        }
        .estimate(&setup);
        assert_eq!(e2.host_bytes_per_node, 0);
        assert!(e2.peak_hbm > e.peak_hbm);
    }

    #[test]
    fn name_reflects_options() {
        assert_eq!(Ulysses::paper_baseline().name(), "Ulysses+ZeRO-3+AC+OC");
    }
}
