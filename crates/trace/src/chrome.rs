//! Chrome `trace_event` export: turn a [`SimReport`] into a JSON document
//! that Perfetto (<https://ui.perfetto.dev>) or `chrome://tracing` renders
//! as a per-stream timeline with memory and bandwidth counter tracks.
//!
//! Layout:
//! * pid 0, one tid per simulated stream (registration order) — task
//!   boxes (`ph: "X"`), with byte/resource detail in `args`;
//!   zero-duration `Event` tasks become instant markers (`ph: "i"`).
//! * counter tracks (`ph: "C"`): one per memory pool (live bytes over
//!   time) and one per shared resource (aggregate allocated bandwidth).
//!
//! Times are exported in microseconds, the unit the format expects.

use crate::json::{esc, num};
use fpdt_sim::engine::{SimReport, TaskKind};

const US: f64 = 1e6;

/// Renders a full simulator report as a Chrome-trace JSON document.
pub fn sim_chrome_trace(report: &SimReport) -> String {
    let mut events: Vec<String> = Vec::new();

    events.push(
        "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\"tid\":0,\
         \"args\":{\"name\":\"fpdt-sim\"}}"
            .to_string(),
    );
    for (tid, stream) in report.streams().iter().enumerate() {
        events.push(format!(
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":{tid},\
             \"args\":{{\"name\":{}}}}}",
            esc(stream)
        ));
        events.push(format!(
            "{{\"name\":\"thread_sort_index\",\"ph\":\"M\",\"pid\":0,\"tid\":{tid},\
             \"args\":{{\"sort_index\":{tid}}}}}"
        ));
    }

    let tid_of = |stream: &str| -> usize {
        report
            .streams()
            .iter()
            .position(|s| s == stream)
            .unwrap_or(0)
    };

    for r in report.task_records() {
        let tid = tid_of(&r.stream);
        let cat = r.name.split('.').next().unwrap_or("task");
        let ts = num(r.start * US);
        match r.kind {
            TaskKind::Event => {
                events.push(format!(
                    "{{\"name\":{},\"cat\":{},\"ph\":\"i\",\"s\":\"t\",\
                     \"ts\":{ts},\"pid\":0,\"tid\":{tid}}}",
                    esc(&r.name),
                    esc(cat)
                ));
            }
            TaskKind::Compute | TaskKind::Transfer => {
                let mut args = vec![format!("\"kind\":{}", esc(kind_str(r.kind)))];
                if let Some(b) = r.bytes {
                    args.push(format!("\"bytes\":{b}"));
                }
                if let Some(res) = &r.resource {
                    args.push(format!("\"resource\":{}", esc(res)));
                }
                if !r.shares.is_empty() {
                    let mean = r.bytes.unwrap_or(0) as f64 / r.duration().max(1e-12);
                    args.push(format!("\"mean_bytes_per_s\":{}", num(mean)));
                    args.push(format!("\"bw_slices\":{}", r.shares.len()));
                }
                events.push(format!(
                    "{{\"name\":{},\"cat\":{},\"ph\":\"X\",\"ts\":{ts},\
                     \"dur\":{},\"pid\":0,\"tid\":{tid},\"args\":{{{}}}}}",
                    esc(&r.name),
                    esc(cat),
                    num(r.duration() * US),
                    args.join(",")
                ));
            }
        }
    }

    pool_counters(report, &mut events);
    bandwidth_counters(report, &mut events);

    format!(
        "{{\"traceEvents\":[\n{}\n],\"displayTimeUnit\":\"ms\"}}",
        events.join(",\n")
    )
}

fn kind_str(k: TaskKind) -> &'static str {
    match k {
        TaskKind::Compute => "compute",
        TaskKind::Transfer => "transfer",
        TaskKind::Event => "event",
    }
}

/// One counter track per memory pool: live bytes after every alloc/free.
fn pool_counters(report: &SimReport, events: &mut Vec<String>) {
    for id in report.pools.ids() {
        let name = report.pools.name(id).unwrap_or("pool").to_string();
        let Ok(timeline) = report.pools.timeline(id) else {
            continue;
        };
        // Anchor the counter at zero so the track renders from t=0.
        events.push(counter(&name, 0.0, "bytes", "0"));
        for ev in timeline {
            events.push(counter(&name, ev.time, "bytes", &ev.usage.to_string()));
        }
    }
}

/// One counter track per shared resource: the sum of fair-share rates of
/// all in-flight transfers, stepped at every re-split boundary.
fn bandwidth_counters(report: &SimReport, events: &mut Vec<String>) {
    let mut resources: Vec<String> = Vec::new();
    for r in report.task_records() {
        if let Some(res) = &r.resource {
            if !resources.contains(res) {
                resources.push(res.clone());
            }
        }
    }
    for res in resources {
        // (time, rate delta) at every slice boundary of every transfer.
        let mut deltas: Vec<(f64, f64)> = Vec::new();
        for r in report.task_records() {
            if r.resource.as_deref() != Some(res.as_str()) {
                continue;
            }
            for s in &r.shares {
                deltas.push((s.from, s.rate));
                deltas.push((s.until, -s.rate));
            }
        }
        deltas.sort_by(|a, b| a.0.total_cmp(&b.0));
        let track = format!("{res} bw");
        events.push(counter(&track, 0.0, "bytes_per_s", "0"));
        let mut level = 0.0f64;
        let mut i = 0usize;
        while i < deltas.len() {
            let t = deltas[i].0;
            while i < deltas.len() && deltas[i].0 == t {
                level += deltas[i].1;
                i += 1;
            }
            events.push(counter(&track, t, "bytes_per_s", &num(level.max(0.0))));
        }
    }
}

fn counter(track: &str, time: f64, series: &str, value: &str) -> String {
    format!(
        "{{\"name\":{},\"ph\":\"C\",\"ts\":{},\"pid\":0,\"tid\":0,\
         \"args\":{{\"{series}\":{value}}}}}",
        esc(track),
        num(time * US)
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use fpdt_sim::engine::{Engine, Work};

    fn small_report() -> SimReport {
        let mut e = Engine::new();
        let c = e.add_stream("gpu0.compute");
        let h = e.add_stream("gpu0.h2d");
        let pcie = e.add_resource("pcie.h2d", 100.0, 0.0);
        let hbm = e.add_pool("hbm0", Some(1000));
        let f = e
            .add_task(
                "fwd.fetch.0",
                h,
                Work::Transfer {
                    bytes: 100,
                    resource: pcie,
                },
            )
            .unwrap();
        let mut b = e.task("fwd.attn.0", c, Work::Compute { seconds: 2.0 });
        b.deps(&[f]).alloc(hbm, 64, "kv").free(hbm, 64);
        b.submit().unwrap();
        e.add_task("fwd.done", c, Work::Event).unwrap();
        e.run().unwrap()
    }

    #[test]
    fn trace_has_thread_names_tasks_and_counters() {
        let trace = sim_chrome_trace(&small_report());
        assert!(trace.contains("\"thread_name\""));
        assert!(trace.contains("\"gpu0.h2d\""));
        assert!(trace.contains("\"fwd.attn.0\""));
        assert!(trace.contains("\"ph\":\"X\""));
        assert!(trace.contains("\"ph\":\"i\""), "event task becomes instant");
        assert!(trace.contains("\"hbm0\""));
        assert!(trace.contains("pcie.h2d bw"));
        assert!(trace.contains("\"resource\":\"pcie.h2d\""));
        assert!(trace.ends_with("\"displayTimeUnit\":\"ms\"}"));
    }

    #[test]
    fn timestamps_are_microseconds() {
        let trace = sim_chrome_trace(&small_report());
        // The 2-second compute task must appear as dur 2_000_000 µs.
        assert!(trace.contains("\"dur\":2000000.0"), "{trace}");
    }
}
