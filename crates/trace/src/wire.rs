//! Optional simulated-interconnect occupancy for the real runtime.
//!
//! The thread-based runtime moves tensors with `memcpy`s and channel
//! sends, which cost nanoseconds — nothing like the PCIe and NIC
//! transfers the FPDT paper overlaps, whose duration is proportional to
//! the bytes on the wire. [`simulate`] closes that gap: when
//! `FPDT_SIM_GBPS` is set to a positive bandwidth (GB/s), every call
//! occupies the simulated link for `bytes / bandwidth` of wall-clock
//! time by *sleeping*, exactly like a DMA engine that transfers without
//! consuming host CPU. A transfer executed inline on a rank thread
//! therefore serializes with compute, while the same transfer posted to
//! a copy or comm stream genuinely hides behind compute — even on a
//! single-core host — which is what makes stream on/off tokens/s
//! comparisons in the runtime bench meaningful.
//!
//! Unset (the default) or `0`, the link is infinitely fast and
//! [`simulate`] returns immediately: unit tests and library users pay
//! nothing. A malformed value (empty, garbage, negative, non-finite)
//! warns once to stderr and falls back to disabled rather than silently
//! shaping time in an unintended way. The knob only shapes *time*;
//! payload contents, schedules, and statistics are untouched, so every
//! bitwise-equivalence guarantee holds at any bandwidth.

use std::sync::OnceLock;
use std::time::Duration;

/// Sub-resolution sleeps are skipped: below this the OS timer overhead
/// would dominate the simulated transfer itself.
const MIN_SLEEP_US: f64 = 10.0;

/// Parses an `FPDT_SIM_GBPS` value: `None` (unset) and `"0"` mean
/// disabled (`Ok(0.0)`); a positive finite number is the bandwidth in
/// GB/s.
///
/// # Errors
///
/// Returns a description for values that are empty, unparseable,
/// negative, or non-finite — the caller decides how to surface it
/// ([`link_gbps`] warns once and disables the link).
pub fn parse_gbps(raw: Option<&str>) -> Result<f64, String> {
    let Some(raw) = raw else { return Ok(0.0) };
    let trimmed = raw.trim();
    if trimmed.is_empty() {
        return Err("value is empty".to_string());
    }
    match trimmed.parse::<f64>() {
        Err(_) => Err(format!("`{trimmed}` is not a number")),
        Ok(v) if !v.is_finite() => Err(format!("`{trimmed}` is not finite")),
        Ok(v) if v < 0.0 => Err(format!("`{trimmed}` is negative")),
        Ok(v) => Ok(v),
    }
}

/// The simulated link bandwidth in GB/s from `FPDT_SIM_GBPS`, parsed
/// once. `0.0` means the simulation is disabled; a malformed value warns
/// once to stderr and disables it.
pub fn link_gbps() -> f64 {
    static GBPS: OnceLock<f64> = OnceLock::new();
    *GBPS.get_or_init(|| {
        let raw = std::env::var("FPDT_SIM_GBPS").ok();
        match parse_gbps(raw.as_deref()) {
            Ok(v) => v,
            Err(why) => {
                eprintln!("warning: ignoring malformed FPDT_SIM_GBPS ({why}); link disabled");
                0.0
            }
        }
    })
}

/// Wall-clock microseconds [`simulate`] would sleep for `bytes` at
/// `gbps`: `0.0` when the link is disabled, the transfer is empty, or
/// the duration falls below the sleep resolution.
pub fn sleep_us_for(bytes: u64, gbps: f64) -> f64 {
    if gbps <= 0.0 || bytes == 0 {
        return 0.0;
    }
    let us = bytes as f64 / (gbps * 1e9) * 1e6;
    if us >= MIN_SLEEP_US {
        us
    } else {
        0.0
    }
}

/// Occupies a simulated link of explicit bandwidth for `bytes` — the
/// testable core of [`simulate`], which charges the caller-supplied rate
/// instead of the process-wide `FPDT_SIM_GBPS`.
pub fn simulate_at(bytes: u64, gbps: f64) {
    let us = sleep_us_for(bytes, gbps);
    if us > 0.0 {
        std::thread::sleep(Duration::from_micros(us as u64));
    }
}

/// Occupies the simulated link for `bytes` at the `FPDT_SIM_GBPS`
/// bandwidth (no-op when the simulation is disabled or the transfer is
/// below the sleep resolution).
pub fn simulate(bytes: u64) {
    simulate_at(bytes, link_gbps());
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Recorder;

    #[test]
    fn disabled_link_makes_every_transfer_free() {
        if link_gbps() != 0.0 {
            // Someone exported FPDT_SIM_GBPS into the test run; the
            // default-off claim is not testable in this process.
            return;
        }
        let t0 = std::time::Instant::now();
        simulate(u64::MAX);
        assert!(t0.elapsed() < Duration::from_millis(50));
    }

    #[test]
    fn parse_accepts_unset_zero_and_positive() {
        assert_eq!(parse_gbps(None), Ok(0.0));
        assert_eq!(parse_gbps(Some("0")), Ok(0.0));
        assert_eq!(parse_gbps(Some(" 2.5 ")), Ok(2.5));
        assert_eq!(parse_gbps(Some("32")), Ok(32.0));
    }

    #[test]
    fn parse_rejects_empty_garbage_negative_nonfinite() {
        for bad in ["", "   ", "fast", "1.2.3", "-1", "nan", "inf", "NaN"] {
            assert!(parse_gbps(Some(bad)).is_err(), "{bad:?} accepted");
        }
    }

    #[test]
    fn zero_gbps_and_zero_bytes_never_sleep() {
        // Disabled link: any size is free. Enabled link: empty and
        // sub-resolution transfers are free.
        assert_eq!(sleep_us_for(u64::MAX, 0.0), 0.0);
        assert_eq!(sleep_us_for(0, 1.0), 0.0);
        assert_eq!(sleep_us_for(1, 1.0), 0.0, "1 byte is sub-resolution");
        let t0 = std::time::Instant::now();
        simulate_at(0, 1.0);
        simulate_at(u64::MAX, 0.0);
        assert!(t0.elapsed() < Duration::from_millis(50));
    }

    #[test]
    fn sleep_scales_linearly_so_bf16_halves_the_charge() {
        // The bf16 payload knob charges half the wire bytes; at a fixed
        // bandwidth that must halve the occupancy exactly.
        let full = sleep_us_for(1 << 20, 1.0);
        let half = sleep_us_for(1 << 19, 1.0);
        assert!(full > 0.0);
        assert!((half * 2.0 - full).abs() < 1e-9, "{half} * 2 != {full}");
        // And scaling the bandwidth is equivalent to scaling the bytes.
        assert!((sleep_us_for(1 << 20, 2.0) - half).abs() < 1e-9);
    }

    #[test]
    fn sleep_time_lands_inside_the_posting_span() {
        // Wire occupancy must be attributed to whichever span is open on
        // the charging thread — the runtime opens `comm.inflight` /
        // `offload.*` spans around its `simulate` calls, so the sleep
        // time shows up inside them.
        let rec = Recorder::new();
        let bytes = 1u64 << 20;
        let gbps = 0.05; // 1 MiB at 50 MB/s ≈ 21 ms, robustly measurable
        {
            let _span = rec.span("comm.inflight").bytes(bytes);
            simulate_at(bytes, gbps);
        }
        let records = rec.records();
        assert_eq!(records.len(), 1);
        let want_us = sleep_us_for(bytes, gbps);
        assert!(want_us > 10_000.0, "test transfer too small: {want_us}");
        assert!(
            records[0].dur_us >= want_us * 0.8,
            "span {}us does not contain the {}us sleep",
            records[0].dur_us,
            want_us
        );
        assert_eq!(records[0].bytes, Some(bytes));
    }
}
