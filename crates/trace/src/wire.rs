//! Optional simulated-interconnect occupancy for the real runtime.
//!
//! The thread-based runtime moves tensors with `memcpy`s and channel
//! sends, which cost nanoseconds — nothing like the PCIe and NIC
//! transfers the FPDT paper overlaps, whose duration is proportional to
//! the bytes on the wire. [`simulate`] closes that gap: when
//! `FPDT_SIM_GBPS` is set to a positive bandwidth (GB/s), every call
//! occupies the simulated link for `bytes / bandwidth` of wall-clock
//! time by *sleeping*, exactly like a DMA engine that transfers without
//! consuming host CPU. A transfer executed inline on a rank thread
//! therefore serializes with compute, while the same transfer posted to
//! a copy or comm stream genuinely hides behind compute — even on a
//! single-core host — which is what makes stream on/off tokens/s
//! comparisons in the runtime bench meaningful.
//!
//! Unset (the default) or `0`, the link is infinitely fast and
//! [`simulate`] returns immediately: unit tests and library users pay
//! nothing. The knob only shapes *time*; payload contents, schedules,
//! and statistics are untouched, so every bitwise-equivalence guarantee
//! holds at any bandwidth.

use std::sync::OnceLock;
use std::time::Duration;

/// Sub-resolution sleeps are skipped: below this the OS timer overhead
/// would dominate the simulated transfer itself.
const MIN_SLEEP_US: f64 = 10.0;

/// The simulated link bandwidth in GB/s from `FPDT_SIM_GBPS`, parsed
/// once. `0.0` means the simulation is disabled.
pub fn link_gbps() -> f64 {
    static GBPS: OnceLock<f64> = OnceLock::new();
    *GBPS.get_or_init(|| {
        std::env::var("FPDT_SIM_GBPS")
            .ok()
            .and_then(|v| v.trim().parse::<f64>().ok())
            .filter(|v| v.is_finite() && *v > 0.0)
            .unwrap_or(0.0)
    })
}

/// Occupies the simulated link for `bytes` at the `FPDT_SIM_GBPS`
/// bandwidth (no-op when the simulation is disabled or the transfer is
/// below the sleep resolution).
pub fn simulate(bytes: u64) {
    let gbps = link_gbps();
    if gbps <= 0.0 || bytes == 0 {
        return;
    }
    let us = bytes as f64 / (gbps * 1e9) * 1e6;
    if us >= MIN_SLEEP_US {
        std::thread::sleep(Duration::from_micros(us as u64));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_link_makes_every_transfer_free() {
        if link_gbps() != 0.0 {
            // Someone exported FPDT_SIM_GBPS into the test run; the
            // default-off claim is not testable in this process.
            return;
        }
        let t0 = std::time::Instant::now();
        simulate(u64::MAX);
        assert!(t0.elapsed() < Duration::from_millis(50));
    }
}
