//! Internal JSON string-building helpers. The exporters assemble their
//! documents directly (the structure is flat and fixed), so all that's
//! needed is correct escaping and float formatting.

/// Renders `s` as a quoted JSON string with escapes.
pub(crate) fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Renders a float as a JSON number (`null` for non-finite values).
pub(crate) fn num(x: f64) -> String {
    if x.is_finite() {
        format!("{x:?}")
    } else {
        "null".to_string()
    }
}
