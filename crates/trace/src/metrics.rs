//! Derived schedule metrics: the regression signal distilled from an
//! event log. All quantities are computed from task intervals alone, so
//! they work identically on simulator output and on hand-built logs.

use fpdt_sim::engine::{SimReport, TaskKind, TaskRecord};

/// Busy time of one stream relative to the makespan.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamOccupancy {
    /// Stream name (e.g. `"gpu0.h2d"`).
    pub stream: String,
    /// Total busy seconds (sum of task durations; streams serialize, so
    /// tasks on one stream never overlap).
    pub busy_seconds: f64,
    /// `busy_seconds / makespan`, 0 when the makespan is 0.
    pub occupancy: f64,
}

/// Busy time and traffic of one shared resource (a PCIe direction, a NIC).
#[derive(Debug, Clone, PartialEq)]
pub struct ResourceBusy {
    /// Resource name (e.g. `"pcie.h2d"`).
    pub resource: String,
    /// Seconds during which at least one transfer used the resource
    /// (union of transfer intervals, not a sum).
    pub busy_seconds: f64,
    /// `busy_seconds / makespan`, 0 when the makespan is 0.
    pub busy_fraction: f64,
    /// Total payload bytes moved through the resource.
    pub bytes: u64,
}

/// High-water mark of one memory pool.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PoolPeak {
    /// Pool name (e.g. `"hbm0"`).
    pub pool: String,
    /// Peak bytes ever live in the pool.
    pub peak_bytes: u64,
    /// Whether the peak exceeded the pool's declared capacity.
    pub oom: bool,
}

/// Everything the observability layer distills from one schedule.
#[derive(Debug, Clone, PartialEq)]
pub struct ScheduleMetrics {
    /// End-to-end schedule length, seconds.
    pub makespan: f64,
    /// Per-stream occupancy, in stream registration order (first
    /// appearance order when built from a bare record slice).
    pub streams: Vec<StreamOccupancy>,
    /// Per-resource busy time, in first-appearance order.
    pub resources: Vec<ResourceBusy>,
    /// Seconds during which at least one compute task ran (interval union).
    pub compute_seconds: f64,
    /// Seconds during which at least one transfer ran (interval union).
    pub copy_seconds: f64,
    /// Seconds during which a transfer ran *concurrently with* compute.
    pub overlapped_copy_seconds: f64,
    /// `overlapped_copy_seconds / copy_seconds` — the fraction of copy
    /// time hidden behind compute (the paper's headline property). 0 when
    /// there is no copy time at all.
    pub overlap_ratio: f64,
    /// Memory-pool high-water marks (empty when built from a bare record
    /// slice, which carries no pool state).
    pub pools: Vec<PoolPeak>,
}

impl ScheduleMetrics {
    /// Computes metrics from a bare event log. `makespan` is the schedule
    /// horizon used for fractions; pass the last finish time (or the
    /// simulator's makespan).
    pub fn from_records(records: &[TaskRecord], makespan: f64) -> Self {
        let mut streams: Vec<StreamOccupancy> = Vec::new();
        let mut resources: Vec<ResourceBusy> = Vec::new();
        let mut compute_iv: Vec<(f64, f64)> = Vec::new();
        let mut copy_iv: Vec<(f64, f64)> = Vec::new();
        let mut resource_iv: Vec<Vec<(f64, f64)>> = Vec::new();

        for r in records {
            let dur = r.duration();
            match streams.iter_mut().find(|s| s.stream == r.stream) {
                Some(s) => s.busy_seconds += dur,
                None => streams.push(StreamOccupancy {
                    stream: r.stream.clone(),
                    busy_seconds: dur,
                    occupancy: 0.0,
                }),
            }
            match r.kind {
                TaskKind::Compute => compute_iv.push((r.start, r.finish)),
                TaskKind::Transfer => {
                    copy_iv.push((r.start, r.finish));
                    let res = r.resource.as_deref().unwrap_or("?");
                    let idx = match resources.iter().position(|x| x.resource == res) {
                        Some(i) => i,
                        None => {
                            resources.push(ResourceBusy {
                                resource: res.to_string(),
                                busy_seconds: 0.0,
                                busy_fraction: 0.0,
                                bytes: 0,
                            });
                            resource_iv.push(Vec::new());
                            resources.len() - 1
                        }
                    };
                    resources[idx].bytes += r.bytes.unwrap_or(0);
                    resource_iv[idx].push((r.start, r.finish));
                }
                TaskKind::Event => {}
            }
        }

        let compute_union = union(compute_iv);
        let copy_union = union(copy_iv);
        let compute_seconds = measure(&compute_union);
        let copy_seconds = measure(&copy_union);
        let overlapped_copy_seconds = measure(&intersect(&compute_union, &copy_union));
        let frac = |x: f64| if makespan > 0.0 { x / makespan } else { 0.0 };

        for s in &mut streams {
            s.occupancy = frac(s.busy_seconds);
        }
        for (res, iv) in resources.iter_mut().zip(resource_iv) {
            res.busy_seconds = measure(&union(iv));
            res.busy_fraction = frac(res.busy_seconds);
        }

        ScheduleMetrics {
            makespan,
            streams,
            resources,
            compute_seconds,
            copy_seconds,
            overlapped_copy_seconds,
            overlap_ratio: if copy_seconds > 0.0 {
                overlapped_copy_seconds / copy_seconds
            } else {
                0.0
            },
            pools: Vec::new(),
        }
    }

    /// Computes metrics from a full simulator report: record-derived
    /// numbers plus every registered stream (idle ones included, at zero
    /// occupancy) and memory-pool peaks.
    pub fn from_report(report: &SimReport) -> Self {
        let mut m = Self::from_records(report.task_records(), report.makespan);
        // Registered-but-idle streams still belong in the occupancy table.
        for (i, name) in report.streams().iter().enumerate() {
            if !m.streams.iter().any(|s| &s.stream == name) {
                m.streams.insert(
                    i.min(m.streams.len()),
                    StreamOccupancy {
                        stream: name.clone(),
                        busy_seconds: 0.0,
                        occupancy: 0.0,
                    },
                );
            }
        }
        m.pools = report
            .pools
            .ids()
            .into_iter()
            .map(|id| PoolPeak {
                pool: report.pools.name(id).unwrap_or("?").to_string(),
                peak_bytes: report.pools.peak(id).unwrap_or(0),
                oom: report.pools.oom(id).unwrap_or(false),
            })
            .collect();
        m
    }

    /// Busy fraction of a named resource, if it appeared in the log.
    pub fn resource_busy_fraction(&self, resource: &str) -> Option<f64> {
        self.resources
            .iter()
            .find(|r| r.resource == resource)
            .map(|r| r.busy_fraction)
    }

    /// Occupancy of a named stream, if present.
    pub fn stream_occupancy(&self, stream: &str) -> Option<f64> {
        self.streams
            .iter()
            .find(|s| s.stream == stream)
            .map(|s| s.occupancy)
    }

    /// Largest pool peak, if any pools were tracked — the HBM high-water
    /// mark when the schedule models a single GPU.
    pub fn peak_pool_bytes(&self) -> Option<u64> {
        self.pools.iter().map(|p| p.peak_bytes).max()
    }

    /// Renders the metrics as a JSON object (machine-readable `BENCH_*`
    /// artifact payload).
    pub fn to_json(&self) -> String {
        use crate::json::{esc, num};
        let streams: Vec<String> = self
            .streams
            .iter()
            .map(|s| {
                format!(
                    "{{\"stream\":{},\"busy_seconds\":{},\"occupancy\":{}}}",
                    esc(&s.stream),
                    num(s.busy_seconds),
                    num(s.occupancy)
                )
            })
            .collect();
        let resources: Vec<String> = self
            .resources
            .iter()
            .map(|r| {
                format!(
                    "{{\"resource\":{},\"busy_seconds\":{},\"busy_fraction\":{},\"bytes\":{}}}",
                    esc(&r.resource),
                    num(r.busy_seconds),
                    num(r.busy_fraction),
                    r.bytes
                )
            })
            .collect();
        let pools: Vec<String> = self
            .pools
            .iter()
            .map(|p| {
                format!(
                    "{{\"pool\":{},\"peak_bytes\":{},\"oom\":{}}}",
                    esc(&p.pool),
                    p.peak_bytes,
                    p.oom
                )
            })
            .collect();
        format!(
            "{{\"makespan_seconds\":{},\"compute_seconds\":{},\"copy_seconds\":{},\
             \"overlapped_copy_seconds\":{},\"overlap_ratio\":{},\
             \"streams\":[{}],\"resources\":[{}],\"pools\":[{}]}}",
            num(self.makespan),
            num(self.compute_seconds),
            num(self.copy_seconds),
            num(self.overlapped_copy_seconds),
            num(self.overlap_ratio),
            streams.join(","),
            resources.join(","),
            pools.join(",")
        )
    }
}

/// Merges intervals into a disjoint, sorted union.
pub fn union(mut iv: Vec<(f64, f64)>) -> Vec<(f64, f64)> {
    iv.retain(|&(a, b)| b > a);
    iv.sort_by(|x, y| x.0.total_cmp(&y.0));
    let mut out: Vec<(f64, f64)> = Vec::with_capacity(iv.len());
    for (a, b) in iv {
        match out.last_mut() {
            Some(last) if a <= last.1 => last.1 = last.1.max(b),
            _ => out.push((a, b)),
        }
    }
    out
}

/// Total length of a disjoint interval set.
pub fn measure(iv: &[(f64, f64)]) -> f64 {
    iv.iter().map(|&(a, b)| b - a).sum()
}

/// How evenly a pipeline's per-slot work is spread — the regression
/// signal behind the causal load-balanced tile schedule, where the goal
/// is near-equal slots instead of the triangular `u, u-1, .., 1` ramp.
#[derive(Debug, Clone, PartialEq)]
pub struct SlotBalance {
    /// Number of pipeline slots measured.
    pub slots: usize,
    /// Mean slot duration (same unit as the inputs).
    pub mean: f64,
    /// Coefficient of variation: population standard deviation over the
    /// mean. 0 for perfectly equal slots; `sqrt(1.25)/2.5 ≈ 0.447` for
    /// the triangular `1, 2, 3, 4`.
    pub skew: f64,
    /// Last slot's share of the total — the tail-slot occupancy. `1/slots`
    /// when balanced; under the sequential causal forward the last slot
    /// dominates, under the sequential backward it starves.
    pub tail_fraction: f64,
}

/// Computes [`SlotBalance`] from per-slot durations, in slot order.
/// Degenerate inputs (empty set, zero total) yield all-zero statistics
/// except `slots`, and a single slot is reported as zero skew with a
/// tail fraction of 1.
pub fn slot_balance(durations: &[f64]) -> SlotBalance {
    let slots = durations.len();
    let total: f64 = durations.iter().sum();
    if slots == 0 || total <= 0.0 {
        return SlotBalance {
            slots,
            mean: 0.0,
            skew: 0.0,
            tail_fraction: 0.0,
        };
    }
    let mean = total / slots as f64;
    let var = durations.iter().map(|d| (d - mean) * (d - mean)).sum::<f64>() / slots as f64;
    SlotBalance {
        slots,
        mean,
        skew: var.sqrt() / mean,
        tail_fraction: durations.last().copied().unwrap_or(0.0) / total,
    }
}

/// Intersection of two disjoint, sorted interval sets.
pub fn intersect(a: &[(f64, f64)], b: &[(f64, f64)]) -> Vec<(f64, f64)> {
    let mut out = Vec::new();
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() && j < b.len() {
        let lo = a[i].0.max(b[j].0);
        let hi = a[i].1.min(b[j].1);
        if hi > lo {
            out.push((lo, hi));
        }
        if a[i].1 < b[j].1 {
            i += 1;
        } else {
            j += 1;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use fpdt_sim::engine::TaskRecord;

    #[test]
    fn interval_helpers() {
        let u = union(vec![(2.0, 3.0), (0.0, 1.0), (0.5, 2.5), (5.0, 5.0)]);
        assert_eq!(u, vec![(0.0, 3.0)]);
        assert!((measure(&u) - 3.0).abs() < 1e-12);
        let v = union(vec![(2.5, 4.0)]);
        assert_eq!(intersect(&u, &v), vec![(2.5, 3.0)]);
        assert!(intersect(&u, &[]).is_empty());
    }

    #[test]
    fn empty_log_yields_zeroes() {
        let m = ScheduleMetrics::from_records(&[], 0.0);
        assert_eq!(m.makespan, 0.0);
        assert!(m.streams.is_empty() && m.resources.is_empty());
        assert_eq!(m.overlap_ratio, 0.0);
        assert_eq!(m.copy_seconds, 0.0);
        assert_eq!(m.peak_pool_bytes(), None);
        // and the JSON payload still parses structurally
        assert!(m.to_json().starts_with('{'));
    }

    #[test]
    fn single_stream_compute_only() {
        let recs = vec![
            TaskRecord::compute("a", "gpu0.compute", 0.0, 1.0),
            TaskRecord::compute("b", "gpu0.compute", 1.0, 4.0),
        ];
        let m = ScheduleMetrics::from_records(&recs, 4.0);
        assert_eq!(m.streams.len(), 1);
        assert!((m.stream_occupancy("gpu0.compute").unwrap() - 1.0).abs() < 1e-12);
        assert_eq!(m.copy_seconds, 0.0);
        assert_eq!(m.overlap_ratio, 0.0, "no copies => no overlap to hide");
        assert!((m.compute_seconds - 4.0).abs() < 1e-12);
    }

    #[test]
    fn overlap_ratio_with_known_values() {
        // compute busy [0,4); copy busy [2,6): overlap [2,4) = 2 of 4 copy
        // seconds => ratio 0.5.
        let recs = vec![
            TaskRecord::compute("k", "gpu0.compute", 0.0, 4.0),
            TaskRecord::transfer("x", "gpu0.h2d", 2.0, 6.0, 100, "pcie.h2d"),
        ];
        let m = ScheduleMetrics::from_records(&recs, 6.0);
        assert!((m.overlap_ratio - 0.5).abs() < 1e-12);
        assert!((m.overlapped_copy_seconds - 2.0).abs() < 1e-12);
        assert!((m.resource_busy_fraction("pcie.h2d").unwrap() - 4.0 / 6.0).abs() < 1e-12);
        assert_eq!(m.resources[0].bytes, 100);
        assert!((m.stream_occupancy("gpu0.h2d").unwrap() - 4.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn double_counting_is_avoided_by_unions() {
        // Two concurrent copies on the same resource: busy time is the
        // union (3s), not the sum (5s); bytes do sum.
        let recs = vec![
            TaskRecord::transfer("x", "g0.h2d", 0.0, 2.0, 10, "pcie.h2d"),
            TaskRecord::transfer("y", "g1.h2d", 1.0, 3.0, 30, "pcie.h2d"),
        ];
        let m = ScheduleMetrics::from_records(&recs, 3.0);
        assert!((m.resources[0].busy_seconds - 3.0).abs() < 1e-12);
        assert_eq!(m.resources[0].bytes, 40);
        assert!((m.copy_seconds - 3.0).abs() < 1e-12);
    }

    #[test]
    fn slot_balance_on_perfectly_balanced_slots() {
        let b = slot_balance(&[2.0, 2.0, 2.0, 2.0]);
        assert_eq!(b.slots, 4);
        assert!((b.mean - 2.0).abs() < 1e-12);
        assert!(b.skew.abs() < 1e-12, "equal slots => zero skew");
        assert!((b.tail_fraction - 0.25).abs() < 1e-12, "tail = 1/slots");
    }

    #[test]
    fn slot_balance_on_triangular_slots() {
        // The sequential causal ramp 1,2,3,4: mean 2.5, population
        // variance 1.25 => CV = sqrt(1.25)/2.5, tail = 4/10.
        let b = slot_balance(&[1.0, 2.0, 3.0, 4.0]);
        assert!((b.mean - 2.5).abs() < 1e-12);
        assert!((b.skew - 1.25f64.sqrt() / 2.5).abs() < 1e-12);
        assert!((b.skew - 0.447_213_595_499_958).abs() < 1e-9);
        assert!((b.tail_fraction - 0.4).abs() < 1e-12);
    }

    #[test]
    fn slot_balance_degenerate_cases() {
        // Single chunk: one slot is trivially balanced and is the tail.
        let single = slot_balance(&[7.5]);
        assert_eq!(single.slots, 1);
        assert!(single.skew.abs() < 1e-12);
        assert!((single.tail_fraction - 1.0).abs() < 1e-12);
        // Empty and zero-duration sets never divide by zero.
        let empty = slot_balance(&[]);
        assert_eq!((empty.slots, empty.mean, empty.skew, empty.tail_fraction), (0, 0.0, 0.0, 0.0));
        let zeros = slot_balance(&[0.0, 0.0]);
        assert_eq!((zeros.mean, zeros.skew, zeros.tail_fraction), (0.0, 0.0, 0.0));
    }

    #[test]
    fn events_are_ignored_by_busy_accounting() {
        let mut ev = TaskRecord::compute("sync", "gpu0.compute", 1.0, 1.0);
        ev.kind = fpdt_sim::engine::TaskKind::Event;
        let recs = vec![TaskRecord::compute("k", "gpu0.compute", 0.0, 1.0), ev];
        let m = ScheduleMetrics::from_records(&recs, 1.0);
        assert!((m.compute_seconds - 1.0).abs() < 1e-12);
    }
}
