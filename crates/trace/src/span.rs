//! Wall-clock spans for the real (thread-based) runtime: a lightweight
//! RAII API in the spirit of tracing's spans, recording into a shared
//! buffer that exports to the same Chrome-trace format as the simulator.
//!
//! ```
//! use fpdt_trace::Recorder;
//!
//! let rec = Recorder::new();
//! {
//!     let _s = rec.span("attn.chunk").bytes(1 << 20);
//!     // ... work ...
//! } // recorded on drop
//! assert_eq!(rec.records().len(), 1);
//! ```

use crate::json::{esc, num};
use std::collections::HashMap;
use std::sync::{Arc, Mutex};
use std::thread::ThreadId;
use std::time::Instant;

/// One completed wall-clock span.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRecord {
    /// Span label, dotted by convention (`"a2a.fwd"`, `"offload.fetch"`).
    pub label: String,
    /// Small integer identifying the recording thread.
    pub tid: u64,
    /// Start offset from the recorder's epoch, microseconds.
    pub start_us: f64,
    /// Duration, microseconds.
    pub dur_us: f64,
    /// Optional payload size attached with [`Span::bytes`].
    pub bytes: Option<u64>,
}

#[derive(Debug)]
struct Inner {
    epoch: Instant,
    spans: Mutex<Vec<SpanRecord>>,
    threads: Mutex<HashMap<ThreadId, u64>>,
}

/// A shared, thread-safe span sink. Cloning is cheap and clones record
/// into the same buffer, so one recorder can be handed to every rank.
#[derive(Debug, Clone)]
pub struct Recorder {
    inner: Arc<Inner>,
}

impl Default for Recorder {
    fn default() -> Self {
        Self::new()
    }
}

impl Recorder {
    /// A fresh recorder; its epoch (t=0) is the moment of creation.
    pub fn new() -> Self {
        Recorder {
            inner: Arc::new(Inner {
                epoch: Instant::now(),
                spans: Mutex::new(Vec::new()),
                threads: Mutex::new(HashMap::new()),
            }),
        }
    }

    /// Opens a span; it is recorded when the returned guard drops.
    pub fn span(&self, label: &str) -> Span {
        Span {
            recorder: self.clone(),
            label: label.to_string(),
            bytes: None,
            started: Instant::now(),
        }
    }

    /// Records a span directly (for callers that already measured).
    pub fn record(&self, label: &str, start_us: f64, dur_us: f64, bytes: Option<u64>) {
        let tid = self.tid();
        self.inner.spans.lock().expect("span buffer").push(SpanRecord {
            label: label.to_string(),
            tid,
            start_us,
            dur_us,
            bytes,
        });
    }

    /// Microseconds elapsed since the recorder's epoch.
    pub fn now_us(&self) -> f64 {
        self.inner.epoch.elapsed().as_secs_f64() * 1e6
    }

    /// Snapshot of everything recorded so far.
    pub fn records(&self) -> Vec<SpanRecord> {
        self.inner.spans.lock().expect("span buffer").clone()
    }

    /// Renders the recorded spans as a Chrome-trace JSON document
    /// (pid 1 = "fpdt-runtime", one tid per recording thread).
    pub fn chrome_trace_json(&self) -> String {
        let spans = self.records();
        let mut events: Vec<String> = vec![
            "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,\
             \"args\":{\"name\":\"fpdt-runtime\"}}"
                .to_string(),
        ];
        let mut tids: Vec<u64> = spans.iter().map(|s| s.tid).collect();
        tids.sort_unstable();
        tids.dedup();
        for tid in tids {
            events.push(format!(
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{tid},\
                 \"args\":{{\"name\":\"rank{tid}\"}}}}"
            ));
        }
        for s in &spans {
            let args = match s.bytes {
                Some(b) => format!("{{\"bytes\":{b}}}"),
                None => "{}".to_string(),
            };
            events.push(format!(
                "{{\"name\":{},\"cat\":{},\"ph\":\"X\",\"ts\":{},\"dur\":{},\
                 \"pid\":1,\"tid\":{},\"args\":{}}}",
                esc(&s.label),
                esc(s.label.split('.').next().unwrap_or("span")),
                num(s.start_us),
                num(s.dur_us),
                s.tid,
                args
            ));
        }
        format!(
            "{{\"traceEvents\":[\n{}\n],\"displayTimeUnit\":\"ms\"}}",
            events.join(",\n")
        )
    }

    /// Total duration recorded under labels starting with `prefix`, µs.
    pub fn total_us(&self, prefix: &str) -> f64 {
        self.records()
            .iter()
            .filter(|s| s.label.starts_with(prefix))
            .map(|s| s.dur_us)
            .sum()
    }

    fn tid(&self) -> u64 {
        let mut threads = self.inner.threads.lock().expect("thread table");
        let next = threads.len() as u64;
        *threads.entry(std::thread::current().id()).or_insert(next)
    }
}

/// RAII guard returned by [`Recorder::span`]; records on drop.
#[derive(Debug)]
pub struct Span {
    recorder: Recorder,
    label: String,
    bytes: Option<u64>,
    started: Instant,
}

impl Span {
    /// Attaches a payload size to the span (e.g. collective bytes).
    pub fn bytes(mut self, bytes: u64) -> Self {
        self.bytes = Some(bytes);
        self
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let start_us = self
            .started
            .duration_since(self.recorder.inner.epoch)
            .as_secs_f64()
            * 1e6;
        let dur_us = self.started.elapsed().as_secs_f64() * 1e6;
        self.recorder
            .record(&self.label, start_us, dur_us, self.bytes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_record_on_drop() {
        let rec = Recorder::new();
        {
            let _a = rec.span("a2a.fwd").bytes(4096);
            let _b = rec.span("attn.chunk");
        }
        let mut labels: Vec<String> = rec.records().into_iter().map(|s| s.label).collect();
        labels.sort();
        assert_eq!(labels, ["a2a.fwd", "attn.chunk"]);
        let trace = rec.chrome_trace_json();
        assert!(trace.contains("\"a2a.fwd\""));
        assert!(trace.contains("\"bytes\":4096"));
    }

    #[test]
    fn clones_share_one_buffer_across_threads() {
        let rec = Recorder::new();
        std::thread::scope(|s| {
            for i in 0..4 {
                let r = rec.clone();
                s.spawn(move || {
                    let _sp = r.span(&format!("rank{i}.step"));
                });
            }
        });
        let recs = rec.records();
        assert_eq!(recs.len(), 4);
        // Threads got distinct tids.
        let mut tids: Vec<u64> = recs.iter().map(|r| r.tid).collect();
        tids.sort_unstable();
        tids.dedup();
        assert_eq!(tids.len(), 4);
    }

    #[test]
    fn totals_by_prefix() {
        let rec = Recorder::new();
        rec.record("offload.put", 0.0, 10.0, None);
        rec.record("offload.fetch", 10.0, 5.0, None);
        rec.record("attn.chunk", 0.0, 100.0, None);
        assert!((rec.total_us("offload.") - 15.0).abs() < 1e-9);
    }
}
