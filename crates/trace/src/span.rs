//! Wall-clock spans for the real (thread-based) runtime: a lightweight
//! RAII API in the spirit of tracing's spans, recording into a shared
//! buffer that exports to the same Chrome-trace format as the simulator.
//!
//! ```
//! use fpdt_trace::Recorder;
//!
//! let rec = Recorder::new();
//! {
//!     let _s = rec.span("attn.chunk").bytes(1 << 20);
//!     // ... work ...
//! } // recorded on drop
//! assert_eq!(rec.records().len(), 1);
//! ```

use crate::json::{esc, num};
use std::sync::{Arc, Mutex};
use std::thread::ThreadId;
use std::time::Instant;

/// One completed wall-clock span.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRecord {
    /// Span label, dotted by convention (`"a2a.fwd"`, `"offload.fetch"`).
    pub label: String,
    /// Small integer identifying the recording thread.
    pub tid: u64,
    /// Start offset from the recorder's epoch, microseconds.
    pub start_us: f64,
    /// Duration, microseconds.
    pub dur_us: f64,
    /// Optional payload size attached with [`Span::bytes`].
    pub bytes: Option<u64>,
}

#[derive(Debug)]
struct Inner {
    epoch: Instant,
    spans: Mutex<Vec<SpanRecord>>,
    // tid = position in first-record order. A map keyed by `ThreadId`
    // would iterate in hash order somewhere eventually; a Vec has exactly
    // one order, and `ThreadId` has no `Ord` to offer a BTreeMap anyway.
    threads: Mutex<Vec<ThreadId>>,
}

/// A shared, thread-safe span sink. Cloning is cheap and clones record
/// into the same buffer, so one recorder can be handed to every rank.
#[derive(Debug, Clone)]
pub struct Recorder {
    inner: Arc<Inner>,
}

impl Default for Recorder {
    fn default() -> Self {
        Self::new()
    }
}

impl Recorder {
    /// A fresh recorder; its epoch (t=0) is the moment of creation.
    pub fn new() -> Self {
        Recorder {
            inner: Arc::new(Inner {
                epoch: Instant::now(),
                spans: Mutex::new(Vec::new()),
                threads: Mutex::new(Vec::new()),
            }),
        }
    }

    /// Opens a span; it is recorded when the returned guard drops.
    pub fn span(&self, label: &str) -> Span {
        Span {
            recorder: self.clone(),
            label: label.to_string(),
            bytes: None,
            started: Instant::now(),
        }
    }

    /// Records a span directly (for callers that already measured).
    pub fn record(&self, label: &str, start_us: f64, dur_us: f64, bytes: Option<u64>) {
        let tid = self.tid();
        self.inner.spans.lock().expect("span buffer").push(SpanRecord {
            label: label.to_string(),
            tid,
            start_us,
            dur_us,
            bytes,
        });
    }

    /// Records an instantaneous event: a zero-duration span stamped at the
    /// current time. Recovery paths use this to mark retries and rollbacks
    /// (`recover.retry`, `recover.rollback`) so [`Recorder::count`] can
    /// assert how often fault handling actually fired.
    pub fn event(&self, label: &str) {
        let at = self.now_us();
        self.record(label, at, 0.0, None);
    }

    /// Microseconds elapsed since the recorder's epoch.
    pub fn now_us(&self) -> f64 {
        self.inner.epoch.elapsed().as_secs_f64() * 1e6
    }

    /// Snapshot of everything recorded so far.
    pub fn records(&self) -> Vec<SpanRecord> {
        self.inner.spans.lock().expect("span buffer").clone()
    }

    /// Renders the recorded spans as a Chrome-trace JSON document
    /// (pid 1 = "fpdt-runtime", one tid per recording thread).
    pub fn chrome_trace_json(&self) -> String {
        let spans = self.records();
        let mut events: Vec<String> = vec![
            "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,\
             \"args\":{\"name\":\"fpdt-runtime\"}}"
                .to_string(),
        ];
        let mut tids: Vec<u64> = spans.iter().map(|s| s.tid).collect();
        tids.sort_unstable();
        tids.dedup();
        for tid in tids {
            events.push(format!(
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{tid},\
                 \"args\":{{\"name\":\"rank{tid}\"}}}}"
            ));
        }
        for s in &spans {
            let args = match s.bytes {
                Some(b) => format!("{{\"bytes\":{b}}}"),
                None => "{}".to_string(),
            };
            events.push(format!(
                "{{\"name\":{},\"cat\":{},\"ph\":\"X\",\"ts\":{},\"dur\":{},\
                 \"pid\":1,\"tid\":{},\"args\":{}}}",
                esc(&s.label),
                esc(s.label.split('.').next().unwrap_or("span")),
                num(s.start_us),
                num(s.dur_us),
                s.tid,
                args
            ));
        }
        format!(
            "{{\"traceEvents\":[\n{}\n],\"displayTimeUnit\":\"ms\"}}",
            events.join(",\n")
        )
    }

    /// Total duration recorded under labels starting with `prefix`, µs.
    pub fn total_us(&self, prefix: &str) -> f64 {
        self.records()
            .iter()
            .filter(|s| s.label.starts_with(prefix))
            .map(|s| s.dur_us)
            .sum()
    }

    /// Number of spans recorded under labels starting with `prefix` —
    /// schedule audits ("exactly one `comm.post` per chunk") count spans,
    /// not time.
    pub fn count(&self, prefix: &str) -> usize {
        self.records()
            .iter()
            .filter(|s| s.label.starts_with(prefix))
            .count()
    }

    /// Total payload bytes recorded under labels starting with `prefix`
    /// (spans without a [`Span::bytes`] payload contribute nothing).
    pub fn total_bytes(&self, prefix: &str) -> u64 {
        self.records()
            .iter()
            .filter(|s| s.label.starts_with(prefix))
            .filter_map(|s| s.bytes)
            .sum()
    }

    fn tid(&self) -> u64 {
        let me = std::thread::current().id();
        let mut threads = self.inner.threads.lock().expect("thread table");
        match threads.iter().position(|t| *t == me) {
            Some(i) => i as u64,
            None => {
                threads.push(me);
                (threads.len() - 1) as u64
            }
        }
    }
}

/// RAII guard returned by [`Recorder::span`]; records on drop.
#[derive(Debug)]
pub struct Span {
    recorder: Recorder,
    label: String,
    bytes: Option<u64>,
    started: Instant,
}

impl Span {
    /// Attaches a payload size to the span (e.g. collective bytes).
    pub fn bytes(mut self, bytes: u64) -> Self {
        self.bytes = Some(bytes);
        self
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let start_us = self
            .started
            .duration_since(self.recorder.inner.epoch)
            .as_secs_f64()
            * 1e6;
        let dur_us = self.started.elapsed().as_secs_f64() * 1e6;
        self.recorder
            .record(&self.label, start_us, dur_us, self.bytes);
    }
}

/// Merges a set of `[start, end)` intervals into disjoint sorted spans.
fn merge_intervals(mut iv: Vec<(f64, f64)>) -> Vec<(f64, f64)> {
    iv.sort_by(|a, b| a.0.total_cmp(&b.0));
    let mut out: Vec<(f64, f64)> = Vec::with_capacity(iv.len());
    for (s, e) in iv {
        match out.last_mut() {
            Some(last) if s <= last.1 => last.1 = last.1.max(e),
            _ => out.push((s, e)),
        }
    }
    out
}

fn intervals_for(records: &[SpanRecord], prefixes: &[&str]) -> Vec<(f64, f64)> {
    merge_intervals(
        records
            .iter()
            .filter(|s| prefixes.iter().any(|p| s.label.starts_with(p)))
            .map(|s| (s.start_us, s.start_us + s.dur_us))
            .collect(),
    )
}

/// Sum of `|a ∩ b|` over two sorted disjoint interval lists.
fn intersection(a: &[(f64, f64)], b: &[(f64, f64)]) -> f64 {
    let mut overlap = 0.0f64;
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() && j < b.len() {
        let lo = a[i].0.max(b[j].0);
        let hi = a[i].1.min(b[j].1);
        if hi > lo {
            overlap += hi - lo;
        }
        if a[i].1 <= b[j].1 {
            i += 1;
        } else {
            j += 1;
        }
    }
    overlap
}

/// Fraction of the copy busy time that ran concurrently with compute —
/// the paper's Figure-13 overlap claim, measured on wall-clock spans.
///
/// `copy_prefixes` selects the transfer spans (e.g. `"offload."`),
/// `compute_prefixes` the compute spans (e.g. `"kernel."`). Both sets are
/// merged into disjoint wall-clock intervals; the result is
/// `|copy ∩ compute| / |copy|`, or `0.0` when no copy time was recorded.
/// A perfectly hidden copy stream scores 1.0; a fully synchronous runtime
/// (transfers on the compute thread, between kernels) scores 0.0.
pub fn overlap_fraction(
    records: &[SpanRecord],
    copy_prefixes: &[&str],
    compute_prefixes: &[&str],
) -> f64 {
    let copy = intervals_for(records, copy_prefixes);
    let compute = intervals_for(records, compute_prefixes);
    let copy_busy: f64 = copy.iter().map(|(s, e)| e - s).sum();
    if copy_busy <= 0.0 {
        return 0.0;
    }
    intersection(&copy, &compute) / copy_busy
}

/// [`overlap_fraction`] restricted to *cross-thread* concurrency: a copy
/// span only counts as overlapped while a compute span from a **different
/// thread** is running.
///
/// This is the right metric for streams with an inline fallback. When an
/// asynchronous stream is disabled, its work runs synchronously on the
/// consumer's own thread — often nested inside an enclosing phase span —
/// and the thread-blind [`overlap_fraction`] would score that nesting as
/// perfect overlap. Excluding the span's own thread makes inline work
/// score exactly 0 (one thread cannot overlap itself), matching the CUDA
/// meaning: work on the compute stream hides nothing.
pub fn cross_thread_overlap_fraction(
    records: &[SpanRecord],
    copy_prefixes: &[&str],
    compute_prefixes: &[&str],
) -> f64 {
    let copy_spans: Vec<&SpanRecord> = records
        .iter()
        .filter(|s| copy_prefixes.iter().any(|p| s.label.starts_with(p)))
        .collect();
    let copy_busy: f64 = copy_spans.iter().map(|s| s.dur_us).sum();
    if copy_busy <= 0.0 {
        return 0.0;
    }
    // Per copy-side thread: that thread's merged copy intervals against
    // the union of every *other* thread's compute intervals.
    let mut copy_tids: Vec<u64> = copy_spans.iter().map(|s| s.tid).collect();
    copy_tids.sort_unstable();
    copy_tids.dedup();
    let mut overlap = 0.0f64;
    for tid in copy_tids {
        let copy = merge_intervals(
            copy_spans
                .iter()
                .filter(|s| s.tid == tid)
                .map(|s| (s.start_us, s.start_us + s.dur_us))
                .collect(),
        );
        let compute = merge_intervals(
            records
                .iter()
                .filter(|s| {
                    s.tid != tid && compute_prefixes.iter().any(|p| s.label.starts_with(p))
                })
                .map(|s| (s.start_us, s.start_us + s.dur_us))
                .collect(),
        );
        overlap += intersection(&copy, &compute);
    }
    // busy sums raw durations while overlap comes from interval endpoint
    // arithmetic; clamp the epsilon disagreement so a fully hidden
    // stream reports exactly 1.0.
    (overlap / copy_busy).min(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_record_on_drop() {
        let rec = Recorder::new();
        {
            let _a = rec.span("a2a.fwd").bytes(4096);
            let _b = rec.span("attn.chunk");
        }
        let mut labels: Vec<String> = rec.records().into_iter().map(|s| s.label).collect();
        labels.sort();
        assert_eq!(labels, ["a2a.fwd", "attn.chunk"]);
        let trace = rec.chrome_trace_json();
        assert!(trace.contains("\"a2a.fwd\""));
        assert!(trace.contains("\"bytes\":4096"));
    }

    #[test]
    fn clones_share_one_buffer_across_threads() {
        let rec = Recorder::new();
        std::thread::scope(|s| {
            for i in 0..4 {
                let r = rec.clone();
                s.spawn(move || {
                    let _sp = r.span(&format!("rank{i}.step"));
                });
            }
        });
        let recs = rec.records();
        assert_eq!(recs.len(), 4);
        // Threads got distinct tids.
        let mut tids: Vec<u64> = recs.iter().map(|r| r.tid).collect();
        tids.sort_unstable();
        tids.dedup();
        assert_eq!(tids.len(), 4);
    }

    #[test]
    fn chrome_trace_emission_is_deterministic() {
        // The Chrome-trace document must be byte-identical for identical
        // records: tid assignment is first-record order (not hash order),
        // and every list in the renderer is explicitly ordered. This is
        // the emission-side guard backing the golden schedule digests.
        let render = || {
            let rec = Recorder::new();
            rec.record("comm.post", 0.0, 2.0, Some(8));
            rec.record("kernel.attn.update", 2.0, 5.0, None);
            rec.record("offload.fetch", 7.0, 1.5, Some(4096));
            rec.chrome_trace_json()
        };
        let a = render();
        assert_eq!(a, render(), "same records must render the same bytes");
        // Record order is preserved verbatim in the event stream.
        let (p1, p2) = (
            a.find("comm.post").expect("first span present"),
            a.find("offload.fetch").expect("last span present"),
        );
        assert!(p1 < p2, "events emit in record order");
    }

    #[test]
    fn tids_assign_in_first_record_order() {
        let rec = Recorder::new();
        rec.record("main.first", 0.0, 1.0, None);
        std::thread::scope(|s| {
            s.spawn(|| rec.record("worker.second", 1.0, 1.0, None))
                .join()
                .expect("worker records");
        });
        rec.record("main.third", 2.0, 1.0, None);
        let recs = rec.records();
        assert_eq!(recs[0].tid, 0, "first recording thread gets tid 0");
        assert_eq!(recs[1].tid, 1, "second thread gets the next tid");
        assert_eq!(recs[2].tid, 0, "a thread keeps its tid on reuse");
    }

    #[test]
    fn totals_by_prefix() {
        let rec = Recorder::new();
        rec.record("offload.put", 0.0, 10.0, None);
        rec.record("offload.fetch", 10.0, 5.0, Some(64));
        rec.record("attn.chunk", 0.0, 100.0, Some(128));
        assert!((rec.total_us("offload.") - 15.0).abs() < 1e-9);
        assert_eq!(rec.total_bytes("offload."), 64);
        assert_eq!(rec.total_bytes("attn."), 128);
        assert_eq!(rec.count("offload."), 2);
        assert_eq!(rec.count("comm."), 0);
    }

    fn rec(label: &str, start: f64, dur: f64) -> SpanRecord {
        SpanRecord {
            label: label.to_string(),
            tid: 0,
            start_us: start,
            dur_us: dur,
            bytes: None,
        }
    }

    #[test]
    fn overlap_full_partial_and_none() {
        // copy [0,10) entirely inside compute [0,20) -> 1.0
        let full = vec![rec("offload.prefetch", 0.0, 10.0), rec("kernel.x", 0.0, 20.0)];
        assert!((overlap_fraction(&full, &["offload."], &["kernel."]) - 1.0).abs() < 1e-9);

        // copy [0,10) vs compute [5,15) -> half the copy overlaps
        let part = vec![rec("offload.put", 0.0, 10.0), rec("kernel.x", 5.0, 10.0)];
        assert!((overlap_fraction(&part, &["offload."], &["kernel."]) - 0.5).abs() < 1e-9);

        // strictly sequential -> 0.0; and no copy spans at all -> 0.0
        let none = vec![rec("offload.fetch", 0.0, 10.0), rec("kernel.x", 10.0, 10.0)];
        assert_eq!(overlap_fraction(&none, &["offload."], &["kernel."]), 0.0);
        assert_eq!(overlap_fraction(&[], &["offload."], &["kernel."]), 0.0);
    }

    #[test]
    fn overlap_merges_overlapping_spans_per_set() {
        // Two copy spans that themselves overlap must not double-count:
        // merged copy busy = [0,15), compute = [0,30) -> fraction 1.0.
        let r = vec![
            rec("offload.put", 0.0, 10.0),
            rec("offload.prefetch", 5.0, 10.0),
            rec("kernel.a", 0.0, 30.0),
        ];
        assert!((overlap_fraction(&r, &["offload."], &["kernel."]) - 1.0).abs() < 1e-9);
    }

    fn rec_on(tid: u64, label: &str, start: f64, dur: f64) -> SpanRecord {
        SpanRecord {
            tid,
            ..rec(label, start, dur)
        }
    }

    #[test]
    fn cross_thread_overlap_ignores_same_thread_nesting() {
        // Inline fallback shape: the wire span is nested inside the
        // consumer's own phase span. Thread-blind overlap scores 1.0;
        // the cross-thread metric must score exactly 0.
        let inline = vec![
            rec_on(0, "block.fwd", 0.0, 100.0),
            rec_on(0, "comm.inflight", 10.0, 20.0),
        ];
        assert!((overlap_fraction(&inline, &["comm.inflight"], &["block."]) - 1.0).abs() < 1e-9);
        assert_eq!(
            cross_thread_overlap_fraction(&inline, &["comm.inflight"], &["block."]),
            0.0
        );

        // Same timeline but the wire span rides a worker thread: fully
        // hidden behind the other thread's compute.
        let streamed = vec![
            rec_on(0, "block.fwd", 0.0, 100.0),
            rec_on(1, "comm.inflight", 10.0, 20.0),
        ];
        assert!(
            (cross_thread_overlap_fraction(&streamed, &["comm.inflight"], &["block."]) - 1.0)
                .abs()
                < 1e-9
        );
        assert_eq!(
            cross_thread_overlap_fraction(&[], &["comm.inflight"], &["block."]),
            0.0
        );
    }

    #[test]
    fn cross_thread_overlap_is_per_thread_and_partial() {
        // Worker-thread wire span [0,10) against compute [5,15) on the
        // consumer thread -> half hidden; a second inline span on the
        // consumer thread [20,30) adds busy time but no overlap, so the
        // total fraction is 5/20.
        let r = vec![
            rec_on(0, "attn.fwd.chunk", 5.0, 10.0),
            rec_on(1, "comm.inflight", 0.0, 10.0),
            rec_on(0, "comm.inflight", 20.0, 10.0),
        ];
        assert!(
            (cross_thread_overlap_fraction(&r, &["comm.inflight"], &["attn."]) - 0.25).abs()
                < 1e-9
        );
    }
}
