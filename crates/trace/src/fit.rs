//! Span → cost-constant fitting: turn the wall-clock [`SpanRecord`]s of
//! a probe run into the rate/overhead constants the simulator prices
//! schedules with.
//!
//! Transfers in the instrumented runtime follow an affine cost
//! `dur_us = overhead + bytes / rate`: a fixed per-op cost (span
//! bookkeeping, channel hop, memcpy setup) plus wire time proportional
//! to payload size. [`fit_linear`] recovers both terms from a cloud of
//! `(bytes, dur_us)` samples by least squares; [`samples_for`] collects
//! that cloud from recorded spans by label prefix; [`aggregate`]
//! summarizes a trace per category so callers (and the `calibration.json`
//! artifact) can report what each fit was based on.

use crate::span::SpanRecord;

/// Count/time/bytes totals of one span category.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CategorySummary {
    /// Spans matched.
    pub count: usize,
    /// Summed duration, µs.
    pub total_us: f64,
    /// Summed payload bytes (spans without payloads contribute nothing).
    pub total_bytes: u64,
}

/// An affine transfer-cost fit: `dur_us ≈ overhead_us + bytes / rate`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinearFit {
    /// Fixed per-op overhead, µs (clamped at zero).
    pub overhead_us: f64,
    /// Transfer rate in GB/s implied by the slope.
    pub gbps: f64,
}

impl LinearFit {
    /// The fitted duration of a `bytes`-sized transfer, µs.
    pub fn predict_us(&self, bytes: u64) -> f64 {
        self.overhead_us + bytes as f64 / (self.gbps * 1e9) * 1e6
    }
}

/// Totals for every span whose label starts with one of `prefixes`.
pub fn aggregate(records: &[SpanRecord], prefixes: &[&str]) -> CategorySummary {
    let mut out = CategorySummary::default();
    for s in records {
        if prefixes.iter().any(|p| s.label.starts_with(p)) {
            out.count += 1;
            out.total_us += s.dur_us;
            out.total_bytes += s.bytes.unwrap_or(0);
        }
    }
    out
}

/// Summaries keyed by top-level label segment (`"offload.put"` →
/// `"offload"`), sorted by category name — the per-category breakdown
/// embedded in calibration artifacts.
pub fn summarize_by_category(records: &[SpanRecord]) -> Vec<(String, CategorySummary)> {
    let mut cats: Vec<(String, CategorySummary)> = Vec::new();
    for s in records {
        let cat = s.label.split('.').next().unwrap_or("span").to_string();
        let entry = match cats.iter_mut().find(|(name, _)| *name == cat) {
            Some((_, e)) => e,
            None => {
                cats.push((cat, CategorySummary::default()));
                &mut cats.last_mut().expect("just pushed").1
            }
        };
        entry.count += 1;
        entry.total_us += s.dur_us;
        entry.total_bytes += s.bytes.unwrap_or(0);
    }
    cats.sort_by(|a, b| a.0.cmp(&b.0));
    cats
}

/// `(bytes, dur_us)` samples from every span matching `prefixes` that
/// carries a payload size.
pub fn samples_for(records: &[SpanRecord], prefixes: &[&str]) -> Vec<(u64, f64)> {
    records
        .iter()
        .filter(|s| prefixes.iter().any(|p| s.label.starts_with(p)))
        .filter_map(|s| s.bytes.map(|b| (b, s.dur_us)))
        .collect()
}

/// Least-squares fit of `dur_us = overhead_us + bytes / rate`.
///
/// Degenerate clouds degrade gracefully: with fewer than two distinct
/// byte sizes (no usable slope) the fit charges everything to the rate —
/// zero overhead, `gbps` from the byte-weighted mean — and `None` is
/// returned only when there are no samples or no time at all. A
/// non-positive fitted slope (durations uncorrelated with size) falls
/// back the same way, so the returned rate is always positive and usable
/// as a simulator bandwidth.
pub fn fit_linear(samples: &[(u64, f64)]) -> Option<LinearFit> {
    let n = samples.len() as f64;
    let total_bytes: f64 = samples.iter().map(|(b, _)| *b as f64).sum();
    let total_us: f64 = samples.iter().map(|(_, d)| *d).sum();
    if samples.is_empty() || total_us <= 0.0 || total_bytes <= 0.0 {
        return None;
    }
    let bulk_rate = LinearFit {
        overhead_us: 0.0,
        gbps: total_bytes / total_us * 1e6 / 1e9,
    };
    let mean_b = total_bytes / n;
    let mean_d = total_us / n;
    let sxx: f64 = samples
        .iter()
        .map(|(b, _)| (*b as f64 - mean_b).powi(2))
        .sum();
    if sxx <= 0.0 {
        return Some(bulk_rate); // every sample the same size: no slope
    }
    let sxy: f64 = samples
        .iter()
        .map(|(b, d)| (*b as f64 - mean_b) * (d - mean_d))
        .sum();
    let slope = sxy / sxx; // µs per byte
    if slope <= 0.0 {
        return Some(bulk_rate);
    }
    let overhead_us = (mean_d - slope * mean_b).max(0.0);
    Some(LinearFit {
        overhead_us,
        gbps: 1.0 / slope * 1e6 / 1e9,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(label: &str, dur_us: f64, bytes: Option<u64>) -> SpanRecord {
        SpanRecord {
            label: label.to_string(),
            tid: 0,
            start_us: 0.0,
            dur_us,
            bytes,
        }
    }

    #[test]
    fn exact_affine_cloud_recovers_both_terms() {
        // dur = 5 µs + bytes at 2 GB/s (0.0005 µs per byte).
        let mk = |b: u64| span("offload.put", 5.0 + b as f64 * 0.0005, Some(b));
        let records: Vec<_> = [10_000u64, 50_000, 200_000, 1_000_000]
            .iter()
            .map(|&b| mk(b))
            .collect();
        let fit = fit_linear(&samples_for(&records, &["offload."])).expect("fit");
        assert!((fit.overhead_us - 5.0).abs() < 1e-6, "{fit:?}");
        assert!((fit.gbps - 2.0).abs() < 1e-6, "{fit:?}");
        assert!((fit.predict_us(400_000) - 205.0).abs() < 1e-6);
    }

    #[test]
    fn constant_sizes_fall_back_to_bulk_rate() {
        // All spans the same size: slope is unidentifiable, so the fit
        // must charge everything to a positive bulk rate.
        let records = vec![
            span("comm.inflight", 100.0, Some(100_000)),
            span("comm.inflight", 102.0, Some(100_000)),
        ];
        let fit = fit_linear(&samples_for(&records, &["comm."])).expect("fit");
        assert_eq!(fit.overhead_us, 0.0);
        assert!(fit.gbps > 0.0);
        // bulk rate ≈ 200_000 bytes / 202 µs ≈ 0.00099 GB/s
        assert!((fit.gbps - 200_000.0 / 202.0 * 1e-3).abs() < 1e-9);
    }

    #[test]
    fn degenerate_clouds_return_none() {
        assert!(fit_linear(&[]).is_none());
        assert!(fit_linear(&[(0, 0.0)]).is_none(), "no bytes, no time");
        assert!(fit_linear(&[(100, 0.0)]).is_none(), "no time");
        // Anticorrelated durations still produce a usable positive rate.
        let weird = [(1_000u64, 50.0), (100_000u64, 10.0)];
        let fit = fit_linear(&weird).expect("bulk fallback");
        assert!(fit.gbps > 0.0);
    }

    #[test]
    fn samples_skip_spans_without_payloads() {
        let records = vec![
            span("offload.put", 10.0, Some(64)),
            span("offload.wait", 99.0, None),
            span("kernel.attn", 50.0, Some(1000)),
        ];
        assert_eq!(samples_for(&records, &["offload."]), vec![(64, 10.0)]);
    }

    #[test]
    fn aggregate_and_categories() {
        let records = vec![
            span("offload.put", 10.0, Some(64)),
            span("offload.fetch", 20.0, Some(32)),
            span("comm.inflight", 5.0, Some(16)),
            span("kernel.attn.update", 40.0, None),
        ];
        let off = aggregate(&records, &["offload."]);
        assert_eq!(off.count, 2);
        assert!((off.total_us - 30.0).abs() < 1e-12);
        assert_eq!(off.total_bytes, 96);

        let cats = summarize_by_category(&records);
        let names: Vec<&str> = cats.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, ["comm", "kernel", "offload"]);
        assert_eq!(cats[2].1.count, 2);
    }
}
