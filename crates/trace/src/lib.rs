//! `fpdt-trace`: the workspace's observability layer.
//!
//! The FPDT paper's core claims are about *overlap* — PCIe fetches hidden
//! behind online-attention compute across three CUDA streams. This crate
//! turns the structured event logs produced by [`fpdt_sim::engine`] (and
//! wall-clock spans from the real runtime) into artifacts you can look at
//! and regress against:
//!
//! * [`chrome`] — Chrome `trace_event` JSON (load in Perfetto or
//!   `chrome://tracing`) with one track per stream, memory-pool counters,
//!   and per-resource bandwidth counters.
//! * [`metrics`] — derived numbers: per-stream occupancy, compute/copy
//!   overlap ratio, per-resource (e.g. PCIe) busy fraction, and HBM
//!   high-water marks.
//! * [`span`] — a lightweight RAII [`span::Recorder`] for wall-clock
//!   instrumentation of the real (thread-based) runtime; exports to the
//!   same Chrome format.
//! * [`wire`] — opt-in simulated-interconnect occupancy
//!   (`FPDT_SIM_GBPS`) so the real runtime's transfers take wall-clock
//!   time proportional to their wire bytes.
//! * [`fit`] — span → cost-constant fitting: per-category aggregation
//!   and least-squares `overhead + bytes/rate` fits over recorded spans,
//!   feeding the autotuner's calibrated simulator.
//!
//! [`fpdt_sim::engine`]: fpdt_sim::engine

#![deny(missing_docs)]

pub mod chrome;
pub mod fit;
mod json;
pub mod metrics;
pub mod span;
pub mod wire;

pub use chrome::sim_chrome_trace;
pub use fit::{fit_linear, samples_for, CategorySummary, LinearFit};
pub use metrics::ScheduleMetrics;
pub use span::{cross_thread_overlap_fraction, overlap_fraction, Recorder, Span, SpanRecord};
