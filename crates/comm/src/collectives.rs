//! Collective operations built on the tagged point-to-point layer.
//!
//! All collectives are SPMD: every rank of the group must call the same
//! operation with compatible arguments. Sends are buffered (channels are
//! unbounded), so each collective can post all its sends before draining
//! receives — no deadlock, no ordering games.
//!
//! Every collective starts with a
//! [`fault_check`](crate::Communicator::inject_fault) — an armed transient
//! fault surfaces as [`CommError::Transient`] *before* any message leaves
//! the rank, so replaying the whole collective (see
//! [`Communicator::retrying`]) is idempotent.

use crate::group::Communicator;
use crate::{CommError, Result};
use fpdt_tensor::Tensor;

impl Communicator {
    /// All-to-all: rank `r` sends `parts[p]` to rank `p` and returns the
    /// pieces received from every rank, in rank order.
    ///
    /// # Errors
    ///
    /// Returns [`CommError::WrongPartCount`] unless `parts.len() == world`.
    pub fn all_to_all(&self, parts: Vec<Vec<f32>>) -> Result<Vec<Vec<f32>>> {
        self.fault_check("all_to_all")?;
        if parts.len() != self.world() {
            return Err(CommError::WrongPartCount {
                op: "all_to_all",
                expected: self.world(),
                actual: parts.len(),
            });
        }
        for (peer, part) in parts.into_iter().enumerate() {
            self.send("all_to_all", peer, part)?;
        }
        (0..self.world())
            .map(|peer| self.recv("all_to_all", peer))
            .collect()
    }

    /// All-to-all with bf16 wire payloads: identical data movement and
    /// collective tag to [`Communicator::all_to_all`], but each part is
    /// rounded to bf16 before posting (half the wire bytes) and widened
    /// back to f32 on receive. The `FPDT_BF16` path for FPDT's per-chunk
    /// fused-QKV exchange.
    ///
    /// # Errors
    ///
    /// Returns [`CommError::WrongPartCount`] unless `parts.len() == world`.
    pub fn all_to_all_bf16(&self, parts: Vec<Vec<f32>>) -> Result<Vec<Vec<f32>>> {
        self.fault_check("all_to_all")?;
        if parts.len() != self.world() {
            return Err(CommError::WrongPartCount {
                op: "all_to_all",
                expected: self.world(),
                actual: parts.len(),
            });
        }
        for (peer, part) in parts.iter().enumerate() {
            self.send_bf16("all_to_all", peer, part)?;
        }
        (0..self.world())
            .map(|peer| self.recv("all_to_all", peer))
            .collect()
    }

    /// All-gather: every rank contributes one buffer and receives all
    /// buffers in rank order.
    ///
    /// # Errors
    ///
    /// Returns [`CommError::PeerDisconnected`] when a peer died and
    /// [`CommError::Desync`] when it diverged mid-collective — the same
    /// uniform `Result` surface as every other collective.
    pub fn all_gather(&self, data: &[f32]) -> Result<Vec<Vec<f32>>> {
        self.fault_check("all_gather")?;
        for peer in 0..self.world() {
            self.send("all_gather", peer, data.to_vec())?;
        }
        (0..self.world())
            .map(|peer| self.recv("all_gather", peer))
            .collect()
    }

    /// Reduce-scatter: rank `r` returns the rank-ordered sum of every
    /// rank's `parts[r]`.
    ///
    /// # Errors
    ///
    /// Returns [`CommError::WrongPartCount`] for a bad part count and
    /// [`CommError::LengthMismatch`] when contributions disagree in length.
    pub fn reduce_scatter(&self, parts: Vec<Vec<f32>>) -> Result<Vec<f32>> {
        self.fault_check("reduce_scatter")?;
        if parts.len() != self.world() {
            return Err(CommError::WrongPartCount {
                op: "reduce_scatter",
                expected: self.world(),
                actual: parts.len(),
            });
        }
        for (peer, part) in parts.into_iter().enumerate() {
            self.send("reduce_scatter", peer, part)?;
        }
        let mut acc: Option<Vec<f32>> = None;
        for peer in 0..self.world() {
            let piece = self.recv("reduce_scatter", peer)?;
            match &mut acc {
                None => acc = Some(piece),
                Some(buf) => {
                    if buf.len() != piece.len() {
                        return Err(CommError::LengthMismatch {
                            op: "reduce_scatter",
                            expected: buf.len(),
                            actual: piece.len(),
                        });
                    }
                    for (a, b) in buf.iter_mut().zip(piece) {
                        *a += b;
                    }
                }
            }
        }
        Ok(acc.unwrap_or_default())
    }

    /// All-reduce (sum): every rank returns the identical rank-ordered sum
    /// of all contributions.
    ///
    /// # Errors
    ///
    /// Returns [`CommError::LengthMismatch`] when contributions disagree in
    /// length.
    pub fn all_reduce(&self, data: &[f32]) -> Result<Vec<f32>> {
        let gathered = self.all_gather(data)?;
        let mut acc = vec![0.0f32; data.len()];
        for piece in gathered {
            if piece.len() != acc.len() {
                return Err(CommError::LengthMismatch {
                    op: "all_reduce",
                    expected: acc.len(),
                    actual: piece.len(),
                });
            }
            for (a, b) in acc.iter_mut().zip(piece) {
                *a += b;
            }
        }
        Ok(acc)
    }

    /// Broadcast from `root`: `data` is read on the root only; every rank
    /// returns the root's buffer.
    ///
    /// # Errors
    ///
    /// Returns [`CommError::RankOutOfRange`] for a bad root.
    pub fn broadcast(&self, root: usize, data: Option<Vec<f32>>) -> Result<Vec<f32>> {
        self.fault_check("broadcast")?;
        if root >= self.world() {
            return Err(CommError::RankOutOfRange {
                rank: root,
                world: self.world(),
            });
        }
        if self.rank() == root {
            let data = data.unwrap_or_default();
            for peer in 0..self.world() {
                self.send("broadcast", peer, data.clone())?;
            }
        }
        self.recv("broadcast", root)
    }

    /// Scatter from `root`: the root supplies one buffer per rank; every
    /// rank returns its piece. This is the "one GPU fetches, then scatters"
    /// strategy of paper Figure 10.
    ///
    /// # Errors
    ///
    /// Returns [`CommError::RankOutOfRange`] for a bad root or
    /// [`CommError::WrongPartCount`] for a bad part count at the root.
    pub fn scatter(&self, root: usize, parts: Option<Vec<Vec<f32>>>) -> Result<Vec<f32>> {
        self.fault_check("scatter")?;
        if root >= self.world() {
            return Err(CommError::RankOutOfRange {
                rank: root,
                world: self.world(),
            });
        }
        if self.rank() == root {
            let parts = parts.ok_or(CommError::WrongPartCount {
                op: "scatter",
                expected: self.world(),
                actual: 0,
            })?;
            if parts.len() != self.world() {
                return Err(CommError::WrongPartCount {
                    op: "scatter",
                    expected: self.world(),
                    actual: parts.len(),
                });
            }
            for (peer, part) in parts.into_iter().enumerate() {
                self.send("scatter", peer, part)?;
            }
        }
        self.recv("scatter", root)
    }

    /// Gather to `root`: every rank contributes; the root returns all
    /// buffers in rank order, other ranks return `None`.
    ///
    /// # Errors
    ///
    /// Returns [`CommError::RankOutOfRange`] for a bad root.
    pub fn gather(&self, root: usize, data: Vec<f32>) -> Result<Option<Vec<Vec<f32>>>> {
        self.fault_check("gather")?;
        if root >= self.world() {
            return Err(CommError::RankOutOfRange {
                rank: root,
                world: self.world(),
            });
        }
        self.send("gather", root, data)?;
        if self.rank() == root {
            let out: Result<Vec<Vec<f32>>> = (0..self.world())
                .map(|peer| self.recv("gather", peer))
                .collect();
            Ok(Some(out?))
        } else {
            Ok(None)
        }
    }

    /// One step of a ring exchange: sends `data` to `(rank + 1) % world`
    /// and returns the buffer received from `(rank - 1) % world` — the
    /// primitive Ring Attention rotates KV blocks with.
    ///
    /// # Errors
    ///
    /// Returns [`CommError::PeerDisconnected`] if a neighbor died.
    pub fn ring_exchange(&self, data: Vec<f32>) -> Result<Vec<f32>> {
        self.fault_check("ring_exchange")?;
        let next = (self.rank() + 1) % self.world();
        let prev = (self.rank() + self.world() - 1) % self.world();
        self.send("ring_exchange", next, data)?;
        self.recv("ring_exchange", prev)
    }
}


/// Which way a Ulysses all-to-all reshapes the tensor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum A2aDirection {
    /// `[s_local, h, d]` -> `[s_local * p, h / p, d]`.
    HeadsToSeq,
    /// `[s_global, h_local, d]` -> `[s_global / p, h_local * p, d]`.
    SeqToHeads,
}

/// Precomputed geometry for the Ulysses-style tensor all-to-all: scatter
/// heads / gather sequence (and the inverse) — the communication pattern
/// of paper Figure 2, applied per FPDT chunk.
///
/// Building a layout derives every per-rank slice bound once from the
/// `(shape, world)` pair; [`AllToAllLayout::apply`] then moves payloads
/// with flat strided copies. Because every chunk of every layer shares one
/// shape, the executor builds the layout once and reuses it for the whole
/// run instead of re-deriving split/concat geometry on each call (the
/// per-chunk hot path this type exists for). The one-shot constructors
/// [`AllToAllLayout::scatter_heads_gather_seq`] and
/// [`AllToAllLayout::scatter_seq_gather_heads`] remain for call sites
/// without a chunk loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AllToAllLayout {
    dir: A2aDirection,
    world: usize,
    in_shape: [usize; 3],
    out_shape: [usize; 3],
    /// Elements in each per-peer payload (identical for all peers).
    part_elems: usize,
}

impl AllToAllLayout {
    /// Layout for the forward Ulysses all-to-all: each rank holds
    /// `[s_local, h, d]` (full heads, local sequence) and receives
    /// `[s_local * world, h / world, d]` (full sequence, local heads).
    ///
    /// Rank `r` keeps head group `r`. Received sequence pieces concatenate
    /// in rank order, so the output rows are `rank 0`'s tokens first — the
    /// ordering FPDT's rank-ordinal shuffle is designed around.
    ///
    /// # Errors
    ///
    /// Returns [`CommError::Shape`] unless the shape is 3-D with `h`
    /// divisible by `world`.
    pub fn scatter_heads(shape: &[usize], world: usize) -> Result<Self> {
        let [s_local, h, d] = check_3d("ulysses_all_to_all", shape)?;
        if h % world != 0 {
            return Err(CommError::Shape {
                op: "ulysses_all_to_all",
                what: format!("{h} heads not divisible by {world} ranks"),
            });
        }
        Ok(AllToAllLayout {
            dir: A2aDirection::HeadsToSeq,
            world,
            in_shape: [s_local, h, d],
            out_shape: [s_local * world, h / world, d],
            part_elems: s_local * (h / world) * d,
        })
    }

    /// Layout for the inverse Ulysses all-to-all: each rank holds
    /// `[s_global, h_local, d]` and gets back
    /// `[s_global / world, h_local * world, d]`.
    ///
    /// # Errors
    ///
    /// Returns [`CommError::Shape`] unless the shape is 3-D with
    /// `s_global` divisible by `world`.
    pub fn scatter_seq(shape: &[usize], world: usize) -> Result<Self> {
        let [s_global, h_local, d] = check_3d("ulysses_all_to_all_inv", shape)?;
        if s_global % world != 0 {
            return Err(CommError::Shape {
                op: "ulysses_all_to_all_inv",
                what: format!("sequence {s_global} not divisible by {world} ranks"),
            });
        }
        Ok(AllToAllLayout {
            dir: A2aDirection::SeqToHeads,
            world,
            in_shape: [s_global, h_local, d],
            out_shape: [s_global / world, h_local * world, d],
            part_elems: (s_global / world) * h_local * d,
        })
    }

    /// The input shape this layout was built for.
    pub fn in_shape(&self) -> [usize; 3] {
        self.in_shape
    }

    /// The shape [`AllToAllLayout::apply`] returns.
    pub fn out_shape(&self) -> [usize; 3] {
        self.out_shape
    }

    /// Runs the all-to-all over `x` using the precomputed geometry.
    ///
    /// # Errors
    ///
    /// Returns [`CommError::Shape`] when `x` or the group does not match
    /// the layout, or a communication error if the group is unhealthy.
    pub fn apply(&self, comm: &Communicator, x: &Tensor) -> Result<Tensor> {
        self.apply_with(comm, x, false)
    }

    /// Runs the all-to-all with bf16 wire payloads (identical geometry and
    /// byte ordering to [`AllToAllLayout::apply`], half the wire traffic;
    /// values round through bf16 once). Gated at the runtime layer by
    /// `RuntimeOptions::payload_bf16` / `FPDT_BF16`.
    ///
    /// # Errors
    ///
    /// Same as [`AllToAllLayout::apply`].
    pub fn apply_bf16(&self, comm: &Communicator, x: &Tensor) -> Result<Tensor> {
        self.apply_with(comm, x, true)
    }

    fn apply_with(&self, comm: &Communicator, x: &Tensor, bf16: bool) -> Result<Tensor> {
        if x.shape() != self.in_shape || comm.world() != self.world {
            return Err(CommError::Shape {
                op: "ulysses_all_to_all",
                what: format!(
                    "layout built for {:?} on {} ranks, applied to {:?} on {}",
                    self.in_shape,
                    self.world,
                    x.shape(),
                    comm.world()
                ),
            });
        }
        let p = self.world;
        let src = x.data();
        // Pack one flat payload per peer.
        let bufs: Vec<Vec<f32>> = match self.dir {
            A2aDirection::HeadsToSeq => {
                // Peer j takes head rows [j*h/p, (j+1)*h/p) of every token.
                let [s, h, d] = self.in_shape;
                let (row, part_row) = (h * d, (h / p) * d);
                (0..p)
                    .map(|j| {
                        let mut buf = Vec::with_capacity(self.part_elems);
                        for r in 0..s {
                            let at = r * row + j * part_row;
                            buf.extend_from_slice(&src[at..at + part_row]);
                        }
                        buf
                    })
                    .collect()
            }
            // Peer j takes the contiguous token block [j*s/p, (j+1)*s/p).
            A2aDirection::SeqToHeads => src
                .chunks(self.part_elems)
                .map(<[f32]>::to_vec)
                .collect(),
        };
        let recv = if bf16 {
            comm.all_to_all_bf16(bufs)?
        } else {
            comm.all_to_all(bufs)?
        };
        // Unpack the rank-ordered pieces into the output layout.
        let mut out = Vec::with_capacity(self.part_elems * p);
        match self.dir {
            // Pieces are [s, h/p, d] token blocks; stack along sequence.
            A2aDirection::HeadsToSeq => {
                for piece in &recv {
                    out.extend_from_slice(piece);
                }
            }
            // Pieces are [s/p, h_local, d]; interleave along heads.
            A2aDirection::SeqToHeads => {
                let [s_global, h_local, d] = self.in_shape;
                let part_row = h_local * d;
                for r in 0..s_global / p {
                    for piece in &recv {
                        let at = r * part_row;
                        out.extend_from_slice(&piece[at..at + part_row]);
                    }
                }
            }
        }
        Tensor::from_vec(out, &self.out_shape).map_err(|e| CommError::Shape {
            op: "ulysses_all_to_all",
            what: e.to_string(),
        })
    }

    /// One-shot forward all-to-all: builds the layout for `x` and applies
    /// it. See [`AllToAllLayout::scatter_heads`] for the data movement.
    ///
    /// # Errors
    ///
    /// Returns [`CommError::Shape`] when `h` is not divisible by the world
    /// size, or a communication error if the group is unhealthy.
    pub fn scatter_heads_gather_seq(comm: &Communicator, x: &Tensor) -> Result<Tensor> {
        Self::scatter_heads(x.shape(), comm.world())?.apply(comm, x)
    }

    /// One-shot inverse all-to-all: builds the layout for `x` and applies
    /// it. See [`AllToAllLayout::scatter_seq`] for the data movement.
    ///
    /// # Errors
    ///
    /// Returns [`CommError::Shape`] when the sequence is not divisible by
    /// the world size, or a communication error.
    pub fn scatter_seq_gather_heads(comm: &Communicator, x: &Tensor) -> Result<Tensor> {
        Self::scatter_seq(x.shape(), comm.world())?.apply(comm, x)
    }
}

fn check_3d(op: &'static str, shape: &[usize]) -> Result<[usize; 3]> {
    match shape {
        &[a, b, c] => Ok([a, b, c]),
        _ => Err(CommError::Shape {
            op,
            what: format!("expected a 3-D tensor, got {} dims", shape.len()),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run_group;
    use fpdt_tensor::init;

    #[test]
    fn all_to_all_transposes_rank_data() {
        let out = run_group(3, |comm| {
            let r = comm.rank() as f32;
            // rank r sends value 10*r + dst to dst
            let parts: Vec<Vec<f32>> = (0..3).map(|dst| vec![10.0 * r + dst as f32]).collect();
            comm.all_to_all(parts).unwrap()
        });
        // rank 1 receives from src s: 10*s + 1
        assert_eq!(out[1], vec![vec![1.0], vec![11.0], vec![21.0]]);
    }

    #[test]
    fn all_gather_rank_order() {
        let out = run_group(4, |comm| {
            comm.all_gather(&[comm.rank() as f32 * 2.0]).unwrap()
        });
        for ranks in out {
            assert_eq!(ranks, vec![vec![0.0], vec![2.0], vec![4.0], vec![6.0]]);
        }
    }

    #[test]
    fn reduce_scatter_sums_per_destination() {
        let out = run_group(2, |comm| {
            let r = comm.rank() as f32;
            // each rank contributes [r+1, r+2] to dst 0 and [r*10, r*10] to dst 1
            let parts = vec![vec![r + 1.0, r + 2.0], vec![r * 10.0, r * 10.0]];
            comm.reduce_scatter(parts).unwrap()
        });
        assert_eq!(out[0], vec![3.0, 5.0]); // (1+2, 2+3)
        assert_eq!(out[1], vec![10.0, 10.0]); // (0+10, 0+10)
    }

    #[test]
    fn all_reduce_is_identical_everywhere() {
        let out = run_group(4, |comm| {
            comm.all_reduce(&[comm.rank() as f32, 1.0]).unwrap()
        });
        for ranks in out {
            assert_eq!(ranks, vec![6.0, 4.0]);
        }
    }

    #[test]
    fn all_reduce_deterministic_ordering() {
        // Floating-point summation order is fixed (rank order), so repeated
        // runs produce bitwise-identical results.
        let run = || {
            run_group(4, |comm| {
                let x = [0.1f32 * (comm.rank() as f32 + 1.0), 1e-8];
                comm.all_reduce(&x).unwrap()
            })
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn broadcast_from_nonzero_root() {
        let out = run_group(3, |comm| {
            let payload = (comm.rank() == 2).then(|| vec![42.0]);
            comm.broadcast(2, payload).unwrap()
        });
        for ranks in out {
            assert_eq!(ranks, vec![42.0]);
        }
    }

    #[test]
    fn scatter_and_gather_round_trip() {
        let out = run_group(3, |comm| {
            let parts = (comm.rank() == 0).then(|| vec![vec![0.0], vec![1.0], vec![2.0]]);
            let piece = comm.scatter(0, parts).unwrap();
            comm.gather(0, piece).unwrap()
        });
        assert_eq!(out[0], Some(vec![vec![0.0], vec![1.0], vec![2.0]]));
        assert_eq!(out[1], None);
    }

    #[test]
    fn ring_exchange_rotates() {
        let out = run_group(4, |comm| {
            comm.ring_exchange(vec![comm.rank() as f32]).unwrap()
        });
        // rank r receives from rank r-1
        assert_eq!(out, vec![vec![3.0], vec![0.0], vec![1.0], vec![2.0]]);
    }

    #[test]
    fn ulysses_all_to_all_round_trip() {
        // 2 ranks, each with [s_local=2, h=4, d=3]; forward then inverse
        // must reproduce the original local tensor.
        let out = run_group(2, |comm| {
            let mut rng = init::seeded_rng(100 + comm.rank() as u64);
            let x = init::randn(&mut rng, &[2, 4, 3], 1.0);
            let gathered = AllToAllLayout::scatter_heads_gather_seq(&comm, &x).unwrap();
            assert_eq!(gathered.shape(), &[4, 2, 3]);
            let back = AllToAllLayout::scatter_seq_gather_heads(&comm, &gathered).unwrap();
            (x, back)
        });
        for (orig, back) in out {
            assert!(back.allclose(&orig, 1e-6, 1e-7));
        }
    }

    #[test]
    fn ulysses_head_assignment() {
        // After the forward all-to-all, rank r must hold head group r of
        // every rank's tokens, with rank 0's tokens first.
        let out = run_group(2, |comm| {
            let r = comm.rank() as f32;
            // token value encodes (rank, head): 100*rank + head
            let mut x = Tensor::zeros(&[1, 4, 1]);
            for head in 0..4 {
                x.data_mut()[head] = 100.0 * r + head as f32;
            }
            AllToAllLayout::scatter_heads_gather_seq(&comm, &x).unwrap()
        });
        // rank 0: heads {0,1} of rank0 then rank1 tokens
        assert_eq!(out[0].data(), &[0.0, 1.0, 100.0, 101.0]);
        // rank 1: heads {2,3}
        assert_eq!(out[1].data(), &[2.0, 3.0, 102.0, 103.0]);
    }

    #[test]
    fn layout_built_once_is_reused_across_chunks() {
        // The executor's hot path: one layout per (shape, world), applied
        // to every chunk. Must match the one-shot path bitwise, and reject
        // tensors it was not built for.
        let out = run_group(2, |comm| {
            let fwd = AllToAllLayout::scatter_heads(&[2, 4, 3], comm.world()).unwrap();
            assert_eq!(fwd.in_shape(), [2, 4, 3]);
            assert_eq!(fwd.out_shape(), [4, 2, 3]);
            let inv = AllToAllLayout::scatter_seq(&[4, 2, 3], comm.world()).unwrap();
            let mut rng = init::seeded_rng(7 + comm.rank() as u64);
            let mut chunks = Vec::new();
            for _ in 0..3 {
                let x = init::randn(&mut rng, &[2, 4, 3], 1.0);
                let gathered = fwd.apply(&comm, &x).unwrap();
                let oneshot = AllToAllLayout::scatter_heads_gather_seq(&comm, &x).unwrap();
                assert_eq!(gathered.data(), oneshot.data(), "cached == one-shot");
                let back = inv.apply(&comm, &gathered).unwrap();
                chunks.push((x, back));
            }
            // A mismatched tensor must be rejected before any traffic.
            assert!(fwd.apply(&comm, &Tensor::zeros(&[4, 4, 3])).is_err());
            chunks
        });
        for rank in out {
            for (orig, back) in rank {
                assert!(back.allclose(&orig, 1e-6, 1e-7));
            }
        }
    }

    #[test]
    fn bf16_all_to_all_matches_f32_and_halves_wire_bytes() {
        let out = run_group(2, |comm| {
            // bf16-representable values -> the round trip must be exact.
            let parts: Vec<Vec<f32>> = (0..2)
                .map(|dst| {
                    (0..8)
                        .map(|i| (comm.rank() * 16 + dst * 8 + i) as f32 * 0.5)
                        .collect()
                })
                .collect();
            let full = comm.all_to_all(parts.clone()).unwrap();
            let f32_bytes = comm.stats().op("all_to_all").unwrap().bytes_sent;
            let half = comm.all_to_all_bf16(parts).unwrap();
            let total = comm.stats().op("all_to_all").unwrap().bytes_sent;
            (full, half, f32_bytes, total - f32_bytes)
        });
        for (full, half, f32_bytes, bf16_bytes) in out {
            assert_eq!(full, half, "representable values survive bf16 exactly");
            assert_eq!(bf16_bytes * 2, f32_bytes, "bf16 wire bytes halve exactly");
        }
    }

    #[test]
    fn bf16_all_to_all_rejects_wrong_part_count() {
        run_group(2, |comm| {
            assert!(matches!(
                comm.all_to_all_bf16(vec![vec![1.0]]),
                Err(CommError::WrongPartCount { .. })
            ));
        });
    }

    #[test]
    fn layout_apply_bf16_matches_f32_geometry() {
        // Same data movement as apply(); values round through bf16 once
        // (rel err <= 2^-8), and the counted traffic is exactly half.
        let out = run_group(2, |comm| {
            let fwd = AllToAllLayout::scatter_heads(&[2, 4, 3], comm.world()).unwrap();
            let mut rng = init::seeded_rng(41 + comm.rank() as u64);
            let x = init::randn(&mut rng, &[2, 4, 3], 1.0);
            let full = fwd.apply(&comm, &x).unwrap();
            let f32_bytes = comm.stats().op("all_to_all").unwrap().bytes_sent;
            let half = fwd.apply_bf16(&comm, &x).unwrap();
            let total = comm.stats().op("all_to_all").unwrap().bytes_sent;
            (full, half, f32_bytes, total - f32_bytes)
        });
        for (full, half, f32_bytes, bf16_bytes) in out {
            assert_eq!(half.shape(), full.shape());
            assert!(half.allclose(&full, 1e-2, 1e-2), "one bf16 rounding");
            assert_eq!(bf16_bytes * 2, f32_bytes, "halved traffic");
        }
    }

    #[test]
    fn collective_errors() {
        run_group(2, |comm| {
            assert!(matches!(
                comm.all_to_all(vec![vec![]]),
                Err(CommError::WrongPartCount { .. })
            ));
            assert!(matches!(
                comm.broadcast(7, None),
                Err(CommError::RankOutOfRange { .. })
            ));
            // keep lockstep: run a real broadcast afterwards
            let payload = (comm.rank() == 0).then(|| vec![1.0]);
            comm.broadcast(0, payload).unwrap();
        });
    }
}

impl Communicator {
    /// Chunked (bucketed) all-reduce: reduces `data` in buckets of at most
    /// `bucket` elements, so the transient staging never exceeds two
    /// buckets — the fix for the gradient-reduction memory spike the FPDT
    /// paper's Future Work section identifies. Numerically identical to
    /// [`Communicator::all_reduce`] (same rank-ordered summation per
    /// element).
    ///
    /// # Errors
    ///
    /// Returns [`CommError::LengthMismatch`] when contributions disagree
    /// in length, and propagates disconnections.
    pub fn all_reduce_chunked(&self, data: &[f32], bucket: usize) -> Result<Vec<f32>> {
        let bucket = bucket.max(1);
        let mut out = Vec::with_capacity(data.len());
        for piece in data.chunks(bucket) {
            out.extend(self.all_reduce(piece)?);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod chunked_reduce_tests {
    use crate::run_group;

    #[test]
    fn chunked_all_reduce_equals_monolithic() {
        let out = run_group(4, |comm| {
            let data: Vec<f32> = (0..37)
                .map(|i| (comm.rank() * 100 + i) as f32 * 0.25)
                .collect();
            let whole = comm.all_reduce(&data).unwrap();
            let chunked = comm.all_reduce_chunked(&data, 10).unwrap();
            (whole, chunked)
        });
        for (whole, chunked) in out {
            assert_eq!(whole, chunked, "bitwise identical");
        }
    }

    #[test]
    fn chunked_all_reduce_edge_buckets() {
        run_group(2, |comm| {
            let data = vec![1.0f32; 5];
            // bucket >= len, bucket == 1, bucket == 0 (clamped)
            for b in [16usize, 1, 0] {
                let r = comm.all_reduce_chunked(&data, b).unwrap();
                assert_eq!(r, vec![2.0; 5], "bucket {b}");
            }
        });
    }
}
