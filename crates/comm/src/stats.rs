//! Per-collective traffic counters.
//!
//! Every [`Communicator`](crate::Communicator) tallies, per collective tag
//! (`"all_to_all"`, `"all_gather"`, ...), how many messages it sent and
//! received and how many payload bytes moved each way. The counters answer
//! the paper's accounting questions ("how much does the per-chunk
//! all-to-all actually move?") without a profiler, and feed the
//! `BENCH_*.json` metrics emitted by the bench binaries.
//!
//! Counters are **deterministic**: every payload runs through the single
//! [`StatsCell::tally`] entry point inside `send`/`recv`, so two runs that
//! move the same traffic in the same program order produce equal
//! [`CommStats`] — regardless of thread scheduling, and regardless of
//! whether collectives executed inline or on the asynchronous
//! [`CommEngine`](crate::CommEngine) stream. Wall-clock receive blocking
//! time is kept out of the comparable counters (see
//! [`CommStats::recv_wait`]).

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// Accumulated traffic for one collective tag on one rank.
///
/// Pure message/byte counters, deliberately free of wall-clock fields, so
/// `OpStats` is `Eq` and bitwise-equality assertions ("the async comm
/// stream moves exactly the same traffic") are meaningful.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OpStats {
    /// Messages posted to peers (including self-sends).
    pub sends: u64,
    /// Messages drained from peers.
    pub recvs: u64,
    /// Payload wire bytes sent (4 per f32 element, 2 per bf16 element).
    pub bytes_sent: u64,
    /// Payload bytes received.
    pub bytes_recv: u64,
}

/// Snapshot of one rank's per-op counters, in first-use order.
///
/// Equality compares the deterministic traffic counters only;
/// [`CommStats::recv_wait`] is wall-clock noise and is excluded.
#[derive(Debug, Clone, Default)]
pub struct CommStats {
    /// `(op tag, counters)` pairs ordered by first use on this rank.
    pub ops: Vec<(String, OpStats)>,
    /// Total wall-clock time receives spent blocked, across all
    /// collectives. Timing, not traffic: excluded from `PartialEq`/`Eq`.
    pub recv_wait: Duration,
    /// Injected transient faults that fired on this rank. Recovery
    /// observability, not traffic (a faulted attempt moves zero bytes):
    /// excluded from `PartialEq` so a run that weathered faults still
    /// compares traffic-equal to a clean run.
    pub faults: u64,
    /// Collective replays performed by retry loops on this rank. Excluded
    /// from `PartialEq` for the same reason as [`CommStats::faults`].
    pub retries: u64,
}

impl PartialEq for CommStats {
    fn eq(&self, other: &Self) -> bool {
        self.ops == other.ops
    }
}

impl Eq for CommStats {}

impl CommStats {
    /// Counters for one collective tag, if it ever ran.
    pub fn op(&self, op: &str) -> Option<&OpStats> {
        self.ops.iter().find(|(name, _)| name == op).map(|(_, s)| s)
    }

    /// Total payload bytes sent across all collectives.
    pub fn total_bytes_sent(&self) -> u64 {
        self.ops.iter().map(|(_, s)| s.bytes_sent).sum()
    }

    /// Total payload bytes received across all collectives.
    pub fn total_bytes_recv(&self) -> u64 {
        self.ops.iter().map(|(_, s)| s.bytes_recv).sum()
    }

    /// Total wall-clock time receives spent blocked.
    pub fn total_recv_wait(&self) -> Duration {
        self.recv_wait
    }

    /// Folds another snapshot into this one, op by op.
    ///
    /// Ops unseen so far are appended in `other`'s order, so accumulating
    /// per-segment snapshots from an SPMD program preserves the first-use
    /// order a single uninterrupted run would have produced — which is
    /// what makes a resumed run's accumulated stats compare bitwise-equal
    /// to the uninterrupted run's.
    pub fn merge(&mut self, other: &CommStats) {
        for (name, theirs) in &other.ops {
            match self.ops.iter_mut().find(|(n, _)| n == name) {
                Some((_, ours)) => {
                    ours.sends += theirs.sends;
                    ours.recvs += theirs.recvs;
                    ours.bytes_sent += theirs.bytes_sent;
                    ours.bytes_recv += theirs.bytes_recv;
                }
                None => self.ops.push((name.clone(), *theirs)),
            }
        }
        self.recv_wait += other.recv_wait;
        self.faults += other.faults;
        self.retries += other.retries;
    }
}

/// Which way a payload moved through the wire layer.
#[derive(Debug, Clone, Copy)]
pub(crate) enum Direction {
    /// Payload posted to a peer.
    Sent,
    /// Payload drained from a peer.
    Received,
}

/// Interior-mutable accumulator owned by each `Communicator`. Collectives
/// take `&self`, so the counters sit behind a mutex; contention is nil
/// (at most the rank thread plus its comm-stream worker, which never
/// overlap on the same op by FIFO construction).
#[derive(Debug, Default)]
pub(crate) struct StatsCell {
    // first-use order kept separately so snapshots are deterministic
    order: Mutex<Vec<String>>,
    by_op: Mutex<HashMap<String, OpStats>>,
    recv_wait: Mutex<Duration>,
    faults: AtomicU64,
    retries: AtomicU64,
}

impl StatsCell {
    /// The single tally point. Every payload — any collective, either
    /// direction, either wire precision — is accounted here with its true
    /// wire bytes (`Payload::wire_bytes`), called from `send`/`recv` only,
    /// so byte accounting cannot be bypassed by a new collective and bf16
    /// payloads show up at exactly half the f32 footprint.
    pub(crate) fn tally(&self, op: &str, dir: Direction, bytes: u64) {
        // Counters stay valid across a panic elsewhere (each update below
        // is complete before the guard drops), so a poisoned lock is
        // recovered rather than cascading the failure into the comm path.
        let mut by_op = self.by_op.lock().unwrap_or_else(|e| e.into_inner());
        let s = by_op.entry(op.to_string()).or_insert_with(|| {
            self.order
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .push(op.to_string());
            OpStats::default()
        });
        match dir {
            Direction::Sent => {
                s.sends += 1;
                s.bytes_sent += bytes;
            }
            Direction::Received => {
                s.recvs += 1;
                s.bytes_recv += bytes;
            }
        }
    }

    /// Accumulates receive blocking time (kept apart from the
    /// deterministic counters).
    pub(crate) fn waited(&self, d: Duration) {
        *self.recv_wait.lock().unwrap_or_else(|e| e.into_inner()) += d;
    }

    /// Counts an injected fault firing (recovery observability).
    pub(crate) fn fault_fired(&self) {
        self.faults.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one collective replay by a retry loop.
    pub(crate) fn retried(&self) {
        self.retries.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn snapshot(&self) -> CommStats {
        let order = self.order.lock().unwrap_or_else(|e| e.into_inner());
        let by_op = self.by_op.lock().unwrap_or_else(|e| e.into_inner());
        CommStats {
            // `order` drives the snapshot (deterministic first-use order);
            // the map is keyed lookup only — never iterated.
            ops: order
                .iter()
                .map(|name| (name.clone(), by_op.get(name).copied().unwrap_or_default()))
                .collect(),
            recv_wait: *self.recv_wait.lock().unwrap_or_else(|e| e.into_inner()),
            faults: self.faults.load(Ordering::Relaxed),
            retries: self.retries.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::run_group;

    #[test]
    fn all_gather_traffic_is_counted() {
        let stats = run_group(4, |comm| {
            comm.all_gather(&[1.0, 2.0, 3.0]).expect("group alive");
            comm.stats()
        });
        for s in &stats {
            let ag = s.op("all_gather").expect("ran");
            // 4 sends and 4 recvs of 3 floats each
            assert_eq!(ag.sends, 4);
            assert_eq!(ag.recvs, 4);
            assert_eq!(ag.bytes_sent, 4 * 3 * 4);
            assert_eq!(ag.bytes_recv, 4 * 3 * 4);
            assert_eq!(s.total_bytes_sent(), 48);
        }
    }

    #[test]
    fn ops_are_tracked_separately_in_first_use_order() {
        let stats = run_group(2, |comm| {
            let _ = comm.all_reduce(&[0.0; 8]).unwrap();
            let _ = comm.ring_exchange(vec![0.0; 2]).unwrap();
            comm.stats()
        });
        let names: Vec<&str> = stats[0].ops.iter().map(|(n, _)| n.as_str()).collect();
        // all_reduce is built on all_gather
        assert_eq!(names, ["all_gather", "ring_exchange"]);
        assert_eq!(stats[0].op("ring_exchange").unwrap().bytes_sent, 8);
        assert!(stats[0].op("broadcast").is_none());
    }

    #[test]
    fn equality_ignores_wall_clock_wait() {
        // Two runs of the same traffic compare equal even though their
        // blocking times inevitably differ.
        let run = || {
            run_group(2, |comm| {
                let _ = comm.all_reduce(&[1.0; 16]).unwrap();
                comm.stats()
            })
        };
        let (a, b) = (run(), run());
        assert_eq!(a, b, "deterministic counters");
        // The wait totals are still reported (just not compared).
        let _ = a[0].total_recv_wait();
    }

    #[test]
    fn merged_segments_equal_one_uninterrupted_run() {
        // Stats accumulated across two half-length segments must equal one
        // uninterrupted run's — the property resumable training leans on.
        let run_steps = |steps: usize| {
            run_group(2, |comm| {
                for _ in 0..steps {
                    let _ = comm.all_reduce(&[1.0; 16]).unwrap();
                    let _ = comm.ring_exchange(vec![0.0; 4]).unwrap();
                }
                comm.stats()
            })
        };
        let whole = run_steps(6);
        let (a, b) = (run_steps(3), run_steps(3));
        let mut merged = a[0].clone();
        merged.merge(&b[0]);
        assert_eq!(merged, whole[0]);
        let names: Vec<&str> = merged.ops.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(
            names,
            whole[0].ops.iter().map(|(n, _)| n.as_str()).collect::<Vec<_>>(),
            "first-use order survives the merge"
        );
    }

    #[test]
    fn fault_and_retry_counters_do_not_break_equality() {
        let clean = run_group(1, |comm| {
            let _ = comm.all_reduce(&[1.0; 8]).unwrap();
            comm.stats()
        });
        let faulted = run_group(1, |comm| {
            comm.inject_fault("all_gather", 1);
            comm.retrying(1, |c| c.all_reduce(&[1.0; 8])).unwrap();
            comm.stats()
        });
        assert_eq!(faulted[0].faults, 1);
        assert_eq!(faulted[0].retries, 1);
        assert_eq!(clean[0], faulted[0], "traffic counters unchanged by recovery");
    }
}
