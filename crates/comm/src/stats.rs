//! Per-collective traffic counters.
//!
//! Every [`Communicator`](crate::Communicator) tallies, per collective tag
//! (`"all_to_all"`, `"all_gather"`, ...), how many messages it sent and
//! received, how many payload bytes moved each way, and how long its
//! receives blocked. The counters answer the paper's accounting questions
//! ("how much does the per-chunk all-to-all actually move?") without a
//! profiler, and feed the `BENCH_*.json` metrics emitted by the bench
//! binaries.

use std::collections::HashMap;
use std::sync::Mutex;
use std::time::Duration;

/// Accumulated traffic for one collective tag on one rank.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct OpStats {
    /// Messages posted to peers (including self-sends).
    pub sends: u64,
    /// Messages drained from peers.
    pub recvs: u64,
    /// Payload bytes sent (`f32` elements x 4).
    pub bytes_sent: u64,
    /// Payload bytes received.
    pub bytes_recv: u64,
    /// Wall-clock time receives spent blocked.
    pub recv_wait: Duration,
}

/// Snapshot of one rank's per-op counters, in first-use order.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CommStats {
    /// `(op tag, counters)` pairs ordered by first use on this rank.
    pub ops: Vec<(String, OpStats)>,
}

impl CommStats {
    /// Counters for one collective tag, if it ever ran.
    pub fn op(&self, op: &str) -> Option<&OpStats> {
        self.ops.iter().find(|(name, _)| name == op).map(|(_, s)| s)
    }

    /// Total payload bytes sent across all collectives.
    pub fn total_bytes_sent(&self) -> u64 {
        self.ops.iter().map(|(_, s)| s.bytes_sent).sum()
    }

    /// Total payload bytes received across all collectives.
    pub fn total_bytes_recv(&self) -> u64 {
        self.ops.iter().map(|(_, s)| s.bytes_recv).sum()
    }

    /// Total wall-clock time receives spent blocked.
    pub fn total_recv_wait(&self) -> Duration {
        self.ops.iter().map(|(_, s)| s.recv_wait).sum()
    }
}

/// Interior-mutable accumulator owned by each `Communicator`. Collectives
/// take `&self`, so the counters sit behind a mutex; contention is nil
/// (one owner thread per rank).
#[derive(Debug, Default)]
pub(crate) struct StatsCell {
    // first-use order kept separately so snapshots are deterministic
    order: Mutex<Vec<String>>,
    ops: Mutex<HashMap<String, OpStats>>,
}

impl StatsCell {
    pub(crate) fn on_send(&self, op: &str, elems: usize) {
        self.with(op, |s| {
            s.sends += 1;
            s.bytes_sent += (elems * std::mem::size_of::<f32>()) as u64;
        });
    }

    pub(crate) fn on_recv(&self, op: &str, elems: usize, waited: Duration) {
        self.with(op, |s| {
            s.recvs += 1;
            s.bytes_recv += (elems * std::mem::size_of::<f32>()) as u64;
            s.recv_wait += waited;
        });
    }

    pub(crate) fn snapshot(&self) -> CommStats {
        let order = self.order.lock().expect("stats order");
        let ops = self.ops.lock().expect("stats table");
        CommStats {
            ops: order
                .iter()
                .map(|name| (name.clone(), ops[name]))
                .collect(),
        }
    }

    fn with(&self, op: &str, f: impl FnOnce(&mut OpStats)) {
        let mut ops = self.ops.lock().expect("stats table");
        if !ops.contains_key(op) {
            self.order.lock().expect("stats order").push(op.to_string());
            ops.insert(op.to_string(), OpStats::default());
        }
        f(ops.get_mut(op).expect("just inserted"));
    }
}

#[cfg(test)]
mod tests {
    use crate::run_group;

    #[test]
    fn all_gather_traffic_is_counted() {
        let stats = run_group(4, |comm| {
            comm.all_gather(&[1.0, 2.0, 3.0]);
            comm.stats()
        });
        for s in &stats {
            let ag = s.op("all_gather").expect("ran");
            // 4 sends and 4 recvs of 3 floats each
            assert_eq!(ag.sends, 4);
            assert_eq!(ag.recvs, 4);
            assert_eq!(ag.bytes_sent, 4 * 3 * 4);
            assert_eq!(ag.bytes_recv, 4 * 3 * 4);
            assert_eq!(s.total_bytes_sent(), 48);
        }
    }

    #[test]
    fn ops_are_tracked_separately_in_first_use_order() {
        let stats = run_group(2, |comm| {
            let _ = comm.all_reduce(&[0.0; 8]).unwrap();
            let _ = comm.ring_exchange(vec![0.0; 2]).unwrap();
            comm.stats()
        });
        let names: Vec<&str> = stats[0].ops.iter().map(|(n, _)| n.as_str()).collect();
        // all_reduce is built on all_gather
        assert_eq!(names, ["all_gather", "ring_exchange"]);
        assert_eq!(stats[0].op("ring_exchange").unwrap().bytes_sent, 8);
        assert!(stats[0].op("broadcast").is_none());
    }
}
