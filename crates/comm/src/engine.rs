//! Asynchronous communication stream: one simulated NIC link per rank.
//!
//! A [`CommEngine`] owns a dedicated worker thread that executes posted
//! collectives strictly in FIFO order — the model of a single NIC queue,
//! symmetric to the offload runtime's single-PCIe-link copy stream. The
//! executor posts chunk `i+1`'s QKV all-to-all before chunk `i`'s
//! online-softmax update runs and resolves the returned [`Pending`]
//! handle at the point the gathered tensor is first needed, so the wire
//! time hides behind compute (the second half of paper Figure 13's
//! overlap story; Ulysses comm is the dominant non-compute cost the
//! paper's §2.2 analysis identifies).
//!
//! Design invariants:
//!
//! * **FIFO = program order.** Jobs run on one worker in post order, which
//!   equals the rank thread's program order, which is SPMD-identical on
//!   every rank. Collectives therefore hit the wire in exactly the order
//!   the synchronous runtime would issue them: tag matching, byte
//!   accounting, and [`CommStats`](crate::CommStats) snapshots are
//!   identical with the stream on or off.
//! * **One thread on the wire.** While handles are outstanding, only the
//!   worker touches the communicator's channels; the executor resolves
//!   every handle before issuing its own rank-thread collectives. Two
//!   threads draining one tagged channel would interleave payloads.
//! * **Dedicated worker, not the kernel pool.** A posted collective
//!   *blocks* on peer ranks. Parked on a shared kernel-pool worker it
//!   could starve the very rank it is waiting for (all pool slots held by
//!   blocked receives = deadlock); on a per-rank worker every rank's
//!   op `k` progresses together.
//! * **Panic safety.** A panicking job is caught on the worker, carried
//!   through the handle, and re-raised at [`Pending::wait`]; the worker
//!   survives to drain the remaining queue, so no rank hangs on a
//!   half-dead stream.

use crate::group::Communicator;
use fpdt_trace::Recorder;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{channel, Sender};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

type Job = Box<dyn FnOnce(&Communicator) + Send>;

#[derive(Debug)]
struct Slot<T> {
    value: Mutex<Option<std::thread::Result<T>>>,
    cv: Condvar,
}

/// Handle to a posted collective; resolves when the payload is needed.
///
/// Dropping a handle without waiting discards the result (the op still
/// runs — FIFO ordering on the stream is unaffected). If the job
/// panicked, [`Pending::wait`] re-raises the panic on the caller.
#[derive(Debug)]
pub struct Pending<T> {
    slot: Arc<Slot<T>>,
    recorder: Option<Recorder>,
    bytes: u64,
}

impl<T> Pending<T> {
    /// An already-resolved handle (the synchronous path, and cached or
    /// device-resident data in callers that mix sync and async sources).
    pub fn ready(value: T) -> Self {
        Pending {
            slot: Arc::new(Slot {
                value: Mutex::new(Some(Ok(value))),
                cv: Condvar::new(),
            }),
            recorder: None,
            bytes: 0,
        }
    }

    /// Whether the result is available without blocking.
    pub fn is_ready(&self) -> bool {
        // A poisoned slot means a waiter died mid-wait; the stored result
        // (if any) is still valid, so recover the guard instead of
        // cascading the panic onto this thread.
        self.slot
            .value
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .is_some()
    }

    /// Blocks until the posted collective completes and returns its
    /// result. Blocked time is recorded as a `comm.wait` span — an
    /// already-resolved handle records nothing, so a fully hidden stream
    /// shows zero wait.
    ///
    /// # Panics
    ///
    /// Re-raises the job's panic, if it panicked on the stream.
    pub fn wait(self) -> T {
        // Lock poisoning (a sibling waiter dying with the guard held)
        // must not take this rank down with it: recover the guard — the
        // slot's contents are a plain `Option` and stay coherent.
        let mut value = self.slot.value.lock().unwrap_or_else(|e| e.into_inner());
        let mut blocked: Option<(Recorder, f64, Instant)> = None;
        loop {
            if let Some(out) = value.take() {
                if let Some((rec, start_us, t0)) = blocked {
                    let dur_us = t0.elapsed().as_secs_f64() * 1e6;
                    rec.record("comm.wait", start_us, dur_us, Some(self.bytes));
                }
                return match out {
                    Ok(v) => v,
                    Err(panic) => resume_unwind(panic),
                };
            }
            if blocked.is_none() {
                blocked = self
                    .recorder
                    .as_ref()
                    .map(|r| (r.clone(), r.now_us(), Instant::now()));
            }
            value = self
                .slot
                .cv
                .wait(value)
                .unwrap_or_else(|e| e.into_inner());
        }
    }
}

/// The per-rank asynchronous communication stream.
///
/// Built synchronous (`CommEngine::new(comm, false)`) it executes each
/// posted op inline on the caller — bitwise identical results, handles
/// resolve immediately. Built asynchronous, ops run FIFO on the worker
/// thread while the rank thread computes.
#[derive(Debug)]
pub struct CommEngine {
    comm: Arc<Communicator>,
    sender: Option<Sender<Job>>,
    worker: Option<JoinHandle<()>>,
    recorder: Option<Recorder>,
    posted: AtomicU64,
    retries: usize,
}

impl CommEngine {
    /// Creates the stream for one rank; `r#async` selects worker-thread
    /// execution (the knob behind `RuntimeOptions::comm_async`).
    pub fn new(comm: Arc<Communicator>, r#async: bool) -> Self {
        let (sender, worker) = if r#async {
            let (tx, rx) = channel::<Job>();
            let wire = Arc::clone(&comm);
            let spawned = std::thread::Builder::new()
                .name(format!("fpdt-comm-r{}", comm.rank()))
                .spawn(move || {
                    while let Ok(job) = rx.recv() {
                        job(&wire);
                    }
                });
            match spawned {
                Ok(handle) => (Some(tx), Some(handle)),
                Err(e) => {
                    // Thread exhaustion degrades the stream to the inline
                    // path — slower, never wrong (same FIFO program order).
                    eprintln!(
                        "warning: comm stream worker for rank {} failed to spawn ({e}); \
                         running collectives inline",
                        comm.rank()
                    );
                    (None, None)
                }
            }
        } else {
            (None, None)
        };
        CommEngine {
            comm,
            sender,
            worker,
            recorder: None,
            posted: AtomicU64::new(0),
            retries: 0,
        }
    }

    /// Sets the replay budget for [`CommEngine::post_replayed`] — how many
    /// extra attempts a [retryable](crate::CommError::is_retryable) failure
    /// buys before it surfaces. The knob behind
    /// `RuntimeOptions::comm_retries`.
    pub fn set_retries(&mut self, retries: usize) {
        self.retries = retries;
    }

    /// Attaches a span recorder: posts record `comm.post` on the posting
    /// thread (program order), execution records `comm.inflight` (wire
    /// occupancy — the interval the overlap metric intersects with
    /// compute), and blocked resolutions record `comm.wait`.
    pub fn set_recorder(&mut self, recorder: Recorder) {
        self.recorder = Some(recorder);
    }

    /// Whether ops run on the worker thread (false = inline).
    pub fn is_async(&self) -> bool {
        self.sender.is_some()
    }

    /// The communicator this stream drives.
    pub fn comm(&self) -> &Arc<Communicator> {
        &self.comm
    }

    /// Number of ops posted over the engine's lifetime (sync or async) —
    /// the schedule audit counter ("exactly one QKV post per chunk").
    pub fn posted(&self) -> u64 {
        self.posted.load(Ordering::Relaxed)
    }

    /// Posts one collective to the stream: the single generic payload
    /// entrypoint. `op` receives the communicator on whichever thread
    /// executes (worker when async, caller when sync) and its result
    /// travels back through the returned handle. `bytes` sizes the
    /// `comm.{post,inflight,wait}` spans.
    pub fn post<T, F>(&self, bytes: u64, op: F) -> Pending<T>
    where
        T: Send + 'static,
        F: FnOnce(&Communicator) -> T + Send + 'static,
    {
        self.posted.fetch_add(1, Ordering::Relaxed);
        let _post = self
            .recorder
            .as_ref()
            .map(|r| r.span("comm.post").bytes(bytes));
        let slot = Arc::new(Slot {
            value: Mutex::new(None),
            cv: Condvar::new(),
        });
        let done = Arc::clone(&slot);
        let rec = self.recorder.clone();
        let run = move |comm: &Communicator| {
            let inflight = rec.map(|r| r.span("comm.inflight").bytes(bytes));
            let out = catch_unwind(AssertUnwindSafe(|| op(comm)));
            // Simulated NIC occupancy (`FPDT_SIM_GBPS`, default off):
            // holds the wire for time proportional to the payload bytes,
            // inside the inflight span, on whichever thread executes —
            // serial when sync, hidden behind compute when async.
            fpdt_trace::wire::simulate(bytes);
            drop(inflight);
            // The lock can only be poisoned by a waiter dying mid-wait, in
            // which case nobody is left to read the slot — storing anyway
            // keeps the worker alive for the rest of the queue.
            let mut value = done.value.lock().unwrap_or_else(|e| e.into_inner());
            *value = Some(out);
            done.cv.notify_all();
        };
        match &self.sender {
            // A send only fails when the worker has exited (receiver
            // dropped); the job comes back in the error, so fail over to
            // the caller thread — later posts take the same path, which
            // preserves FIFO program order.
            Some(tx) => {
                if let Err(returned) = tx.send(Box::new(run)) {
                    (returned.0)(&self.comm);
                }
            }
            None => run(&self.comm),
        }
        Pending {
            slot,
            recorder: self.recorder.clone(),
            bytes,
        }
    }

    /// Posts a *replayable* collective: on a
    /// [retryable](crate::CommError::is_retryable) failure the op is
    /// re-invoked on the stream, up to the [`CommEngine::set_retries`]
    /// budget. The closure is `Fn` (not `FnOnce`) precisely so a replay is
    /// possible — it must read its captures by reference and perform the
    /// whole collective each attempt, which is idempotent because
    /// collectives fail only before their first send. Each replay records
    /// a `comm.retry` span and tallies `CommStats::retries`.
    pub fn post_replayed<T, F>(&self, bytes: u64, op: F) -> Pending<crate::Result<T>>
    where
        T: Send + 'static,
        F: Fn(&Communicator) -> crate::Result<T> + Send + 'static,
    {
        let budget = self.retries;
        let rec = self.recorder.clone();
        self.post(bytes, move |comm| {
            comm.retrying(budget, |c| {
                let out = op(c);
                if let Err(e) = &out {
                    if e.is_retryable() {
                        if let Some(r) = &rec {
                            let at = r.now_us();
                            r.record("comm.retry", at, 0.0, Some(bytes));
                        }
                    }
                }
                out
            })
        })
    }
}

impl Drop for CommEngine {
    /// Closes the queue and joins the worker; any still-queued ops run
    /// first, so in-flight handles stay resolvable after the engine dies.
    fn drop(&mut self) {
        self.sender.take();
        if let Some(worker) = self.worker.take() {
            let _ = worker.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CommGroup;

    fn solo_comm() -> Arc<Communicator> {
        Arc::new(CommGroup::new(1).communicators().pop().expect("rank 0"))
    }

    #[test]
    fn handles_resolve_in_any_order_but_execute_fifo() {
        let engine = CommEngine::new(solo_comm(), true);
        let log: Arc<Mutex<Vec<usize>>> = Arc::new(Mutex::new(Vec::new()));
        let handles: Vec<Pending<usize>> = (0..10)
            .map(|i| {
                let log = Arc::clone(&log);
                engine.post(0, move |_| {
                    log.lock().unwrap().push(i);
                    i
                })
            })
            .collect();
        assert_eq!(engine.posted(), 10);
        // Resolve newest-first: execution order must still be post order.
        for (i, h) in handles.into_iter().enumerate().rev() {
            assert_eq!(h.wait(), i);
        }
        assert_eq!(*log.lock().unwrap(), (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn posted_ops_really_use_the_wire() {
        let engine = CommEngine::new(solo_comm(), true);
        let h = engine.post(4, |comm| {
            comm.all_to_all(vec![vec![42.0]]).map(|mut r| r.remove(0))
        });
        assert_eq!(h.wait().unwrap(), vec![42.0]);
        assert_eq!(engine.comm().stats().op("all_to_all").unwrap().sends, 1);
    }

    #[test]
    fn sync_engine_runs_inline_and_counts_posts() {
        let engine = CommEngine::new(solo_comm(), false);
        assert!(!engine.is_async());
        let h = engine.post(0, |comm| comm.rank());
        assert!(h.is_ready(), "sync post resolves before returning");
        assert_eq!(h.wait(), 0);
        assert_eq!(engine.posted(), 1);
    }

    #[test]
    fn panicking_op_reraises_at_wait_and_stream_survives() {
        let engine = CommEngine::new(solo_comm(), true);
        let bad: Pending<()> = engine.post(0, |_| panic!("injected"));
        let good = engine.post(0, |_| 7usize);
        let err = std::panic::catch_unwind(AssertUnwindSafe(|| bad.wait()));
        assert!(err.is_err(), "panic carried through the handle");
        // FIFO continues past the corpse.
        assert_eq!(good.wait(), 7);
    }

    #[test]
    fn dropping_a_handle_does_not_stall_the_stream() {
        let engine = CommEngine::new(solo_comm(), true);
        drop(engine.post(0, |_| 1usize));
        assert_eq!(engine.post(0, |_| 2usize).wait(), 2);
    }

    #[test]
    fn queued_ops_survive_engine_drop() {
        let comm = solo_comm();
        let handle;
        {
            let engine = CommEngine::new(Arc::clone(&comm), true);
            handle = engine.post(0, |_| 11usize);
        } // drop closes the queue and joins the worker
        assert_eq!(handle.wait(), 11);
    }

    #[test]
    fn replayed_post_retries_transient_faults() {
        let comm = solo_comm();
        comm.inject_fault("all_to_all", 2);
        let mut engine = CommEngine::new(Arc::clone(&comm), true);
        engine.set_retries(2);
        let h = engine.post_replayed(4, |comm| {
            comm.all_to_all(vec![vec![9.0]]).map(|mut r| r.remove(0))
        });
        assert_eq!(h.wait().unwrap(), vec![9.0]);
        let stats = comm.stats();
        assert_eq!(stats.faults, 2);
        assert_eq!(stats.retries, 2);
        // The two failed attempts moved no bytes: traffic counts one op.
        assert_eq!(stats.op("all_to_all").unwrap().sends, 1);
    }

    #[test]
    fn replayed_post_surfaces_exhausted_budget() {
        let comm = solo_comm();
        comm.inject_fault("all_to_all", 3);
        let mut engine = CommEngine::new(Arc::clone(&comm), false);
        engine.set_retries(1);
        let h = engine.post_replayed(4, |comm| {
            comm.all_to_all(vec![vec![1.0]]).map(|mut r| r.remove(0))
        });
        assert!(matches!(
            h.wait(),
            Err(crate::CommError::Transient { op: "all_to_all" })
        ));
    }

    #[test]
    fn ready_handle_requires_no_engine() {
        let h = Pending::ready(3.5f32);
        assert!(h.is_ready());
        assert_eq!(h.wait(), 3.5);
    }
}
