use std::error::Error;
use std::fmt;

/// Errors raised by collective operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CommError {
    /// A peer rank index is out of range for the group.
    RankOutOfRange {
        /// Offending rank.
        rank: usize,
        /// Group size.
        world: usize,
    },
    /// The number of buffers supplied to a collective does not equal the
    /// group size.
    WrongPartCount {
        /// Collective name.
        op: &'static str,
        /// Expected part count (= world size).
        expected: usize,
        /// Provided part count.
        actual: usize,
    },
    /// Buffers participating in a reduction have mismatched lengths.
    LengthMismatch {
        /// Collective name.
        op: &'static str,
        /// Length of the first buffer.
        expected: usize,
        /// Conflicting length.
        actual: usize,
    },
    /// A peer disconnected (its thread panicked or dropped its
    /// communicator) while this rank was waiting on it.
    PeerDisconnected {
        /// The peer that went away.
        peer: usize,
    },
    /// Ranks called different collectives, or the same collective a
    /// different number of times (SPMD order violation).
    Desync {
        /// Operation this rank is executing.
        local_op: &'static str,
        /// Operation tag received from the peer.
        remote_op: String,
    },
    /// A tensor handed to a layout-driven collective does not match the
    /// layout's expected shape.
    Shape {
        /// Collective name.
        op: &'static str,
        /// Human-readable shape mismatch description.
        what: String,
    },
    /// A transient wire fault (injected by the fault-tolerance harness, or
    /// a recoverable glitch in a real transport). The collective performed
    /// **no** sends before failing, so replaying it is idempotent — this is
    /// the one variant [`CommError::is_retryable`] accepts.
    Transient {
        /// Collective name.
        op: &'static str,
    },
}

impl CommError {
    /// Whether replaying the failed collective can succeed.
    ///
    /// Only [`CommError::Transient`] qualifies: the fault fired before any
    /// sends, so a retry re-runs the whole collective against clean
    /// channels. Everything else is either a caller bug (shape, part
    /// count, rank range, desync) or a dead peer — replaying those either
    /// fails identically or hangs, so they must abort the step instead.
    pub fn is_retryable(&self) -> bool {
        matches!(self, CommError::Transient { .. })
    }
}

impl fmt::Display for CommError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CommError::RankOutOfRange { rank, world } => {
                write!(f, "rank {rank} out of range for group of {world}")
            }
            CommError::WrongPartCount {
                op,
                expected,
                actual,
            } => {
                write!(f, "{op} requires {expected} buffers, got {actual}")
            }
            CommError::LengthMismatch {
                op,
                expected,
                actual,
            } => {
                write!(
                    f,
                    "{op} buffer length mismatch: {actual} vs expected {expected}"
                )
            }
            CommError::PeerDisconnected { peer } => {
                write!(f, "peer rank {peer} disconnected mid-collective")
            }
            CommError::Desync {
                local_op,
                remote_op,
            } => {
                write!(
                    f,
                    "collective desync: local {local_op} vs remote {remote_op}"
                )
            }
            CommError::Shape { op, what } => {
                write!(f, "{op} shape mismatch: {what}")
            }
            CommError::Transient { op } => {
                write!(f, "transient fault in {op} (retryable)")
            }
        }
    }
}

impl Error for CommError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_nonempty() {
        let errs = [
            CommError::RankOutOfRange { rank: 9, world: 4 },
            CommError::WrongPartCount {
                op: "all_to_all",
                expected: 4,
                actual: 2,
            },
            CommError::LengthMismatch {
                op: "all_reduce",
                expected: 8,
                actual: 4,
            },
            CommError::PeerDisconnected { peer: 1 },
            CommError::Desync {
                local_op: "all_gather",
                remote_op: "barrier".into(),
            },
            CommError::Shape {
                op: "all_to_all",
                what: "expected [2, 4, 8]".into(),
            },
            CommError::Transient { op: "all_reduce" },
        ];
        for e in errs {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn only_transient_is_retryable() {
        assert!(CommError::Transient { op: "all_gather" }.is_retryable());
        for e in [
            CommError::RankOutOfRange { rank: 9, world: 4 },
            CommError::WrongPartCount {
                op: "all_to_all",
                expected: 4,
                actual: 2,
            },
            CommError::LengthMismatch {
                op: "all_reduce",
                expected: 8,
                actual: 4,
            },
            CommError::PeerDisconnected { peer: 1 },
            CommError::Desync {
                local_op: "all_gather",
                remote_op: "barrier".into(),
            },
            CommError::Shape {
                op: "all_to_all",
                what: "rank".into(),
            },
        ] {
            assert!(!e.is_retryable(), "{e} must not be retryable");
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CommError>();
    }
}
