//! # fpdt-comm
//!
//! Collective communication for the FPDT reproduction's *real* runtime,
//! where each simulated GPU is an OS thread. Channels stand in for
//! NVLink/InfiniBand; the collectives preserve the semantics the paper's
//! dataflow relies on:
//!
//! * **SPMD lockstep** — every rank must call the same collectives in the
//!   same order (the NCCL contract). Debug builds verify this with
//!   per-message op/sequence tags and panic on divergence.
//! * **Deterministic reductions** — sums always accumulate in rank order,
//!   so a training run is bit-reproducible regardless of thread timing.
//! * **No in-place all-to-all** — like the paper's Table 2 notes, receive
//!   buffers are fresh allocations, which is what creates the `3·N·d`
//!   vs `6·N·d` transient the chunked design shrinks.
//!
//! The main entry points are [`CommGroup::new`] +
//! [`CommGroup::communicators`] (manual thread management) and [`run_group`]
//! (scoped-thread convenience).
//!
//! ## Example
//!
//! ```
//! use fpdt_comm::run_group;
//!
//! let results = run_group(4, |comm| {
//!     let mine = vec![comm.rank() as f32];
//!     let all = comm.all_gather(&mine).expect("group alive");
//!     all.concat()
//! });
//! assert_eq!(results[2], vec![0.0, 1.0, 2.0, 3.0]);
//! ```
//!
//! Every collective returns `Result<_, CommError>`; for overlapping
//! communication with compute, post collectives on the per-rank
//! [`CommEngine`] stream and resolve the returned [`Pending`] handle when
//! the payload is needed.

#![deny(missing_docs)]

mod collectives;
mod engine;
mod error;
mod group;
mod stats;

pub use collectives::AllToAllLayout;
pub use engine::{CommEngine, Pending};
pub use error::CommError;
pub use group::{run_group, CommGroup, Communicator};
pub use stats::{CommStats, OpStats};

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, CommError>;
