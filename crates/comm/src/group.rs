//! Group construction and point-to-point plumbing.

use crate::stats::{CommStats, Direction, StatsCell};
use crate::{CommError, Result};
use crossbeam::channel::{unbounded, Receiver, Sender};
use std::collections::HashMap;
use std::sync::{Arc, Barrier, Mutex};
use std::time::Instant;

/// Wire representation of one payload: full-precision f32 or bf16-rounded
/// halves (half the bytes). Receivers widen bf16 transparently, so the
/// precision is purely the *sender's* choice per message.
#[derive(Debug)]
pub(crate) enum Payload {
    F32(Vec<f32>),
    Bf16(Vec<u16>),
}

impl Payload {
    /// Bytes this payload occupies on the wire (4 per f32, 2 per bf16).
    pub(crate) fn wire_bytes(&self) -> u64 {
        match self {
            Payload::F32(v) => (v.len() * 4) as u64,
            Payload::Bf16(v) => (v.len() * 2) as u64,
        }
    }

    /// Widens to f32 (exact for bf16; a move for f32).
    pub(crate) fn into_f32(self) -> Vec<f32> {
        match self {
            Payload::F32(v) => v,
            Payload::Bf16(v) => fpdt_tensor::bf16::decode_slice(&v),
        }
    }
}

/// A tagged point-to-point message. Tags catch SPMD order violations early
/// instead of silently mixing payloads from different collectives.
#[derive(Debug)]
pub(crate) struct Message {
    pub op: &'static str,
    pub data: Payload,
}

/// Factory for a fixed-size communicator group.
///
/// Build one group, take its per-rank [`Communicator`]s with
/// [`CommGroup::communicators`], and hand one to each worker thread. For
/// scoped-thread convenience use [`run_group`].
#[derive(Debug)]
pub struct CommGroup {
    world: usize,
    comms: Vec<Option<Communicator>>,
}

impl CommGroup {
    /// Creates a group of `world` ranks with a dedicated FIFO channel per
    /// ordered rank pair.
    ///
    /// # Panics
    ///
    /// Panics if `world == 0`.
    pub fn new(world: usize) -> Self {
        assert!(world > 0, "communicator group must have at least one rank");
        // senders[src][dst] / receivers[dst][src]. Building dst-major lets
        // each receiver row come out of its loop fully formed, so no slot
        // is ever provisional (no Option juggling, nothing to unwrap).
        let mut senders: Vec<Vec<Sender<Message>>> =
            (0..world).map(|_| Vec::with_capacity(world)).collect();
        let mut receivers: Vec<Vec<Receiver<Message>>> = Vec::with_capacity(world);
        for _dst in 0..world {
            let mut row = Vec::with_capacity(world);
            for tx_row in &mut senders {
                let (tx, rx) = unbounded();
                tx_row.push(tx);
                row.push(rx);
            }
            receivers.push(row);
        }
        let barrier = Arc::new(Barrier::new(world));
        let comms = senders
            .into_iter()
            .zip(receivers)
            .enumerate()
            .map(|(rank, (tx_row, rx_row))| {
                Some(Communicator {
                    rank,
                    world,
                    senders: tx_row,
                    receivers: rx_row,
                    barrier: Arc::clone(&barrier),
                    stats: StatsCell::default(),
                    faults: Mutex::new(HashMap::new()),
                })
            })
            .collect();
        CommGroup { world, comms }
    }

    /// Group size.
    pub fn world(&self) -> usize {
        self.world
    }

    /// Takes all per-rank communicators (rank order). Each can be moved to
    /// its worker thread. Calling twice returns an empty vector.
    pub fn communicators(&mut self) -> Vec<Communicator> {
        self.comms.iter_mut().filter_map(Option::take).collect()
    }
}

/// One rank's endpoint in a [`CommGroup`].
///
/// All collectives live in the `collectives` module; this type also exposes
/// raw tagged point-to-point `send`/`recv` used by ring schedules.
#[derive(Debug)]
pub struct Communicator {
    pub(crate) rank: usize,
    pub(crate) world: usize,
    senders: Vec<Sender<Message>>,
    receivers: Vec<Receiver<Message>>,
    barrier: Arc<Barrier>,
    stats: StatsCell,
    /// Armed transient faults per collective tag (fault-tolerance harness).
    faults: Mutex<HashMap<&'static str, usize>>,
}

impl Communicator {
    /// This rank's index in `0..world`.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of ranks in the group.
    pub fn world(&self) -> usize {
        self.world
    }

    /// Sends `data` to `peer` under the collective tag `op`.
    ///
    /// # Errors
    ///
    /// Returns [`CommError::RankOutOfRange`] or
    /// [`CommError::PeerDisconnected`].
    pub fn send(&self, op: &'static str, peer: usize, data: Vec<f32>) -> Result<()> {
        self.send_payload(op, peer, Payload::F32(data))
    }

    /// Sends `data` to `peer` rounded to bf16 on the wire (half the bytes;
    /// the receiver widens transparently). One RNE rounding per element —
    /// the `FPDT_BF16` payload path.
    ///
    /// # Errors
    ///
    /// Same as [`Communicator::send`].
    pub fn send_bf16(&self, op: &'static str, peer: usize, data: &[f32]) -> Result<()> {
        self.send_payload(op, peer, Payload::Bf16(fpdt_tensor::bf16::encode_slice(data)))
    }

    fn send_payload(&self, op: &'static str, peer: usize, data: Payload) -> Result<()> {
        let tx = self.senders.get(peer).ok_or(CommError::RankOutOfRange {
            rank: peer,
            world: self.world,
        })?;
        self.stats.tally(op, Direction::Sent, data.wire_bytes());
        tx.send(Message { op, data })
            .map_err(|_| CommError::PeerDisconnected { peer })
    }

    /// Receives the next message from `peer`, checking its collective tag.
    ///
    /// # Errors
    ///
    /// Returns [`CommError::RankOutOfRange`],
    /// [`CommError::PeerDisconnected`], or [`CommError::Desync`] when the
    /// peer sent a different collective's payload.
    pub fn recv(&self, op: &'static str, peer: usize) -> Result<Vec<f32>> {
        let rx = self.receivers.get(peer).ok_or(CommError::RankOutOfRange {
            rank: peer,
            world: self.world,
        })?;
        let waited = Instant::now();
        let msg = rx
            .recv()
            .map_err(|_| CommError::PeerDisconnected { peer })?;
        self.stats.waited(waited.elapsed());
        self.stats.tally(op, Direction::Received, msg.data.wire_bytes());
        if msg.op != op {
            return Err(CommError::Desync {
                local_op: op,
                remote_op: msg.op.to_string(),
            });
        }
        Ok(msg.data.into_f32())
    }

    /// Blocks until every rank in the group has reached the barrier.
    ///
    /// # Errors
    ///
    /// Returns [`CommError::Transient`] when an armed fault fires (before
    /// this rank enters the barrier, so a retry rejoins cleanly). The
    /// `Result` return also keeps the collectives surface uniform: every
    /// group-wide operation is fallible.
    pub fn barrier(&self) -> Result<()> {
        self.fault_check("barrier")?;
        self.barrier.wait();
        Ok(())
    }

    /// Snapshot of this rank's per-collective traffic counters.
    pub fn stats(&self) -> CommStats {
        self.stats.snapshot()
    }

    /// Arms `times` transient faults on the collective tagged `op`: the
    /// next `times` invocations on **this rank** fail with
    /// [`CommError::Transient`] before performing any sends, then the op
    /// recovers. This is the fault-injection surface the recovery tests
    /// and the `FPDT_FAULT_INJECT` CI leg drive.
    pub fn inject_fault(&self, op: &'static str, times: usize) {
        let mut faults = self.faults.lock().unwrap_or_else(|e| e.into_inner());
        *faults.entry(op).or_insert(0) += times;
    }

    /// Consumes one armed fault for `op`, if any. Called at the *entry* of
    /// every collective — before any message leaves this rank — so a
    /// failed attempt leaves all channels untouched and a whole-collective
    /// replay is idempotent.
    pub(crate) fn fault_check(&self, op: &'static str) -> Result<()> {
        let mut faults = self.faults.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(n) = faults.get_mut(op) {
            if *n > 0 {
                *n -= 1;
                drop(faults);
                self.stats.fault_fired();
                return Err(CommError::Transient { op });
            }
        }
        Ok(())
    }

    /// Runs `f` and replays it on [retryable](CommError::is_retryable)
    /// failures, up to `budget` extra attempts. Because collectives fail
    /// only *before* their first send (see [`Communicator::fault_check`]),
    /// the replay re-runs the whole collective against clean channels;
    /// peers blocked in `recv` simply wait out the retry. Each replay is
    /// tallied on [`CommStats::retries`].
    pub fn retrying<T>(&self, budget: usize, mut f: impl FnMut(&Self) -> Result<T>) -> Result<T> {
        let mut attempts = 0usize;
        loop {
            match f(self) {
                Err(e) if e.is_retryable() && attempts < budget => {
                    attempts += 1;
                    self.stats.retried();
                }
                out => return out,
            }
        }
    }
}

/// Spawns `world` scoped threads, hands each its [`Communicator`], and
/// collects the per-rank return values in rank order.
///
/// While the group runs, the kernel thread budget is split across the
/// `world` device threads (`rayon::pool::device_scope`) so simulated GPUs
/// don't oversubscribe the host: each rank's kernels fan out to at most
/// `budget / world` extra threads.
///
/// Closure panics propagate (the whole call panics), mirroring how a rank
/// failure aborts a distributed job.
pub fn run_group<T, F>(world: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(Communicator) -> T + Send + Sync,
{
    let mut group = CommGroup::new(world);
    let comms = group.communicators();
    let f = &f;
    let _kernel_budget = rayon::pool::device_scope(world);
    std::thread::scope(|s| {
        let handles: Vec<_> = comms
            .into_iter()
            .map(|comm| s.spawn(move || f(comm)))
            .collect();
        handles
            .into_iter()
            // A rank death aborts the whole job, matching real collective
            // semantics (see the doc comment): re-raise the rank thread's
            // panic payload on the caller.
            .map(|h| h.join().unwrap_or_else(|e| std::panic::resume_unwind(e)))
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_to_point_round_trip() {
        let results = run_group(2, |comm| {
            if comm.rank() == 0 {
                comm.send("test", 1, vec![1.0, 2.0]).unwrap();
                comm.recv("test", 1).unwrap()
            } else {
                let got = comm.recv("test", 0).unwrap();
                comm.send("test", 0, vec![got[0] * 10.0, got[1] * 10.0])
                    .unwrap();
                got
            }
        });
        assert_eq!(results[0], vec![10.0, 20.0]);
        assert_eq!(results[1], vec![1.0, 2.0]);
    }

    #[test]
    fn self_send_works() {
        let results = run_group(1, |comm| {
            comm.send("loop", 0, vec![7.0]).unwrap();
            comm.recv("loop", 0).unwrap()
        });
        assert_eq!(results[0], vec![7.0]);
    }

    #[test]
    fn tag_mismatch_is_detected() {
        let results = run_group(2, |comm| {
            if comm.rank() == 0 {
                comm.send("op_a", 1, vec![]).unwrap();
                Ok(())
            } else {
                match comm.recv("op_b", 0) {
                    Err(CommError::Desync { .. }) => Err(()),
                    other => panic!("expected desync, got {other:?}"),
                }
            }
        });
        assert_eq!(results[1], Err(()));
    }

    #[test]
    fn rank_out_of_range() {
        run_group(2, |comm| {
            assert!(matches!(
                comm.send("x", 5, vec![]),
                Err(CommError::RankOutOfRange { rank: 5, world: 2 })
            ));
        });
    }

    #[test]
    fn barrier_synchronizes() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let counter = AtomicUsize::new(0);
        run_group(4, |comm| {
            counter.fetch_add(1, Ordering::SeqCst);
            comm.barrier().unwrap();
            // After the barrier every rank must observe all increments.
            assert_eq!(counter.load(Ordering::SeqCst), 4);
        });
    }

    #[test]
    fn injected_fault_fires_then_clears() {
        run_group(1, |comm| {
            comm.inject_fault("barrier", 2);
            assert!(matches!(
                comm.barrier(),
                Err(CommError::Transient { op: "barrier" })
            ));
            assert!(matches!(
                comm.barrier(),
                Err(CommError::Transient { op: "barrier" })
            ));
            comm.barrier().unwrap();
            assert_eq!(comm.stats().faults, 2);
        });
    }

    #[test]
    fn retrying_replays_transient_faults_within_budget() {
        run_group(1, |comm| {
            comm.inject_fault("barrier", 2);
            comm.retrying(2, |c| c.barrier()).unwrap();
            assert_eq!(comm.stats().retries, 2);
            // Budget exhausted: the last error surfaces.
            comm.inject_fault("barrier", 3);
            assert!(matches!(
                comm.retrying(2, |c| c.barrier()),
                Err(CommError::Transient { op: "barrier" })
            ));
        });
    }

    #[test]
    fn retrying_does_not_replay_fatal_errors() {
        run_group(1, |comm| {
            let mut calls = 0usize;
            let err = comm.retrying(5, |c| {
                calls += 1;
                c.send("x", 9, vec![])
            });
            assert!(matches!(err, Err(CommError::RankOutOfRange { .. })));
            assert_eq!(calls, 1, "fatal errors must not be replayed");
        });
    }

    #[test]
    fn communicators_taken_once() {
        let mut g = CommGroup::new(3);
        assert_eq!(g.world(), 3);
        assert_eq!(g.communicators().len(), 3);
        assert!(g.communicators().is_empty());
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn zero_world_panics() {
        let _ = CommGroup::new(0);
    }
}
