//! Failure injection: collectives must fail loudly and precisely when a
//! peer dies or diverges, never hang or silently corrupt — the property
//! that makes distributed bugs debuggable.

use fpdt_comm::{CommError, CommGroup};
use std::thread;

#[test]
fn recv_from_dead_peer_reports_disconnection() {
    let mut group = CommGroup::new(2);
    let mut comms = group.communicators();
    let c1 = comms.pop().unwrap();
    let c0 = comms.pop().unwrap();
    // Rank 1 dies immediately (drops its endpoint).
    drop(c1);
    // Rank 0's receive must fail with PeerDisconnected, not hang.
    let got = c0.recv("x", 1);
    assert!(
        matches!(got, Err(CommError::PeerDisconnected { peer: 1 })),
        "{got:?}"
    );
}

#[test]
fn send_to_dead_peer_reports_disconnection() {
    let mut group = CommGroup::new(2);
    let mut comms = group.communicators();
    let c1 = comms.pop().unwrap();
    let c0 = comms.pop().unwrap();
    drop(c1);
    assert!(matches!(
        c0.send("x", 1, vec![1.0]),
        Err(CommError::PeerDisconnected { peer: 1 })
    ));
}

#[test]
fn collective_with_dead_rank_fails_not_hangs() {
    let mut group = CommGroup::new(3);
    let comms = group.communicators();
    let mut it = comms.into_iter();
    let c0 = it.next().unwrap();
    let c1 = it.next().unwrap();
    let c2 = it.next().unwrap();
    drop(c2); // rank 2 crashes before the collective

    let h0 = thread::spawn(move || c0.all_reduce(&[1.0]));
    let h1 = thread::spawn(move || c1.all_reduce(&[2.0]));
    // Both survivors must fail within bounded time with a proper error —
    // the whole collective surface returns Result, nothing panics.
    for h in [h0, h1] {
        let result = h.join().expect("no panic on the uniform Result surface");
        assert!(result.is_err());
    }
}

#[test]
fn mixed_collectives_detected_as_desync() {
    let mut group = CommGroup::new(2);
    let comms = group.communicators();
    let mut it = comms.into_iter();
    let c0 = it.next().unwrap();
    let c1 = it.next().unwrap();
    // Rank 0 runs all_gather while rank 1 runs reduce_scatter (genuinely
    // different wire tags): the tag check must catch the SPMD violation
    // on at least one side.
    let h0 = thread::spawn(move || c0.all_gather(&[1.0]).is_err());
    let h1 = thread::spawn(move || c1.reduce_scatter(vec![vec![1.0], vec![2.0]]).is_err());
    let r0 = h0.join().unwrap();
    let r1 = h1.join().unwrap();
    assert!(r0 || r1, "at least one side must detect the desync");
}

#[test]
fn error_messages_identify_the_peer() {
    let e = CommError::PeerDisconnected { peer: 3 };
    assert!(e.to_string().contains('3'));
    let e = CommError::Desync {
        local_op: "all_gather",
        remote_op: "all_reduce".into(),
    };
    assert!(e.to_string().contains("all_gather"));
    assert!(e.to_string().contains("all_reduce"));
}
