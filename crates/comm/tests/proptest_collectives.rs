//! Property-based tests of the collective layer: algebraic identities
//! that must hold for any world size, payload and content.

use fpdt_comm::run_group;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn all_to_all_is_a_transpose(
        world in 1usize..5,
        seed in 0u64..1000,
    ) {
        // all_to_all twice = identity (it transposes the (src, dst) matrix).
        let out = run_group(world, move |comm| {
            let r = comm.rank();
            let parts: Vec<Vec<f32>> = (0..world)
                .map(|dst| vec![(seed as f32) + (r * world + dst) as f32])
                .collect();
            let once = comm.all_to_all(parts.clone()).unwrap();
            let twice = comm.all_to_all(once).unwrap();
            (parts, twice)
        });
        for (orig, round_trip) in out {
            prop_assert_eq!(orig, round_trip);
        }
    }

    #[test]
    fn reduce_scatter_then_all_gather_equals_all_reduce(
        world in 1usize..5,
        n in 1usize..8,
        seed in 0u64..1000,
    ) {
        let out = run_group(world, move |comm| {
            let r = comm.rank();
            let data: Vec<f32> = (0..n * world)
                .map(|i| ((seed as usize + r * 31 + i) % 17) as f32)
                .collect();
            let ar = comm.all_reduce(&data).unwrap();
            // reduce_scatter over equal slices, then all_gather
            let parts: Vec<Vec<f32>> =
                (0..world).map(|p| data[p * n..(p + 1) * n].to_vec()).collect();
            let mine = comm.reduce_scatter(parts).unwrap();
            let stitched: Vec<f32> =
                comm.all_gather(&mine).unwrap().into_iter().flatten().collect();
            (ar, stitched)
        });
        for (ar, rs_ag) in out {
            prop_assert_eq!(ar, rs_ag);
        }
    }

    #[test]
    fn ring_exchange_world_times_is_identity(
        world in 1usize..6,
        seed in 0u64..1000,
    ) {
        let out = run_group(world, move |comm| {
            let orig = vec![seed as f32 + comm.rank() as f32];
            let mut cur = orig.clone();
            for _ in 0..world {
                cur = comm.ring_exchange(cur).unwrap();
            }
            (orig, cur)
        });
        for (orig, back) in out {
            prop_assert_eq!(orig, back);
        }
    }

    #[test]
    fn broadcast_is_idempotent_per_root(
        world in 1usize..5,
        root_sel in 0usize..5,
        payload in proptest::collection::vec(-100.0f32..100.0, 0..8),
    ) {
        let root = root_sel % world;
        let p2 = payload.clone();
        let out = run_group(world, move |comm| {
            let data = (comm.rank() == root).then(|| p2.clone());
            comm.broadcast(root, data).unwrap()
        });
        for got in out {
            prop_assert_eq!(&got, &payload);
        }
    }
}
