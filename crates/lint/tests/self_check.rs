//! The repo lints itself: running the full workspace scan from the test
//! suite must produce zero findings beyond the committed baseline and
//! leave no baseline entry stale. This is the same predicate the
//! `LINT_OK` gate in `scripts/ci.sh` enforces, so `cargo test` catches a
//! violation before CI does.

use std::path::Path;

#[test]
fn workspace_is_clean_modulo_baseline() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let report = fpdt_lint::lint_workspace(&root).expect("workspace scan");
    assert!(report.files_scanned > 50, "scan found the workspace sources");

    let baseline =
        fpdt_lint::baseline::Baseline::load(&root.join("lint-baseline.json")).expect("baseline");
    let (fresh, stale) = baseline.apply(report.findings);

    let rendered: Vec<String> = fresh.iter().map(|f| f.render()).collect();
    assert!(
        fresh.is_empty(),
        "new lint findings (fix or suppress with a reason):\n{}",
        rendered.join("\n")
    );
    assert!(
        stale.is_empty(),
        "stale baseline entries (regenerate with `fpdt-lint --write-baseline`): {stale:?}"
    );
}
