//! One firing and one non-firing fixture per rule, driven through the
//! full per-file pipeline (`lint_source`), plus suppression-grammar and
//! baseline-mechanics coverage. Fixtures are inline strings with
//! synthetic paths so the rule scoping (path prefixes) is exercised too.

use fpdt_lint::baseline::Baseline;
use fpdt_lint::lint_source;

fn rules_fired(path: &str, src: &str) -> Vec<String> {
    lint_source(path, src)
        .into_iter()
        .map(|f| f.rule)
        .collect()
}

// --- env-outside-options ---

#[test]
fn env_read_outside_allowlist_fires() {
    let src = r#"
        pub fn load() -> bool {
            std::env::var("FPDT_SECRET_KNOB").is_ok()
        }
    "#;
    assert_eq!(
        rules_fired("crates/model/src/loader.rs", src),
        ["env-outside-options"]
    );
}

#[test]
fn env_read_at_documented_entry_points_is_allowed() {
    let src = r#"
        pub fn load() -> bool {
            std::env::var("FPDT_SECRET_KNOB").is_ok()
        }
    "#;
    assert!(rules_fired("crates/core/src/runtime/options.rs", src).is_empty());
    assert!(rules_fired("crates/tensor/src/env.rs", src).is_empty());
    assert!(rules_fired("src/bin/fpdt-bench.rs", src).is_empty());
}

#[test]
fn env_mention_in_string_or_comment_never_fires() {
    let src = r#"
        // callers should use std::env::var("FPDT_X") via options
        pub const HINT: &str = "std::env::var(\"FPDT_X\")";
    "#;
    assert!(rules_fired("crates/model/src/loader.rs", src).is_empty());
}

// --- unwrap-in-comm-path ---

#[test]
fn unwrap_in_comm_scope_fires() {
    let src = r#"
        pub fn drain(v: Option<u32>) -> u32 { v.unwrap() }
        pub fn drain2(v: Option<u32>) -> u32 { v.expect("msg") }
    "#;
    assert_eq!(
        rules_fired("crates/comm/src/wire.rs", src),
        ["unwrap-in-comm-path", "unwrap-in-comm-path"]
    );
    assert_eq!(
        rules_fired("crates/core/src/runtime/exec.rs", src).len(),
        2
    );
}

#[test]
fn unwrap_outside_comm_scope_or_in_tests_is_allowed() {
    let src = r#"
        pub fn drain(v: Option<u32>) -> u32 { v.unwrap() }
    "#;
    assert!(rules_fired("crates/model/src/layer.rs", src).is_empty());

    let test_only = r#"
        pub fn ok() {}
        #[cfg(test)]
        mod tests {
            #[test]
            fn t() { Some(1).unwrap(); }
        }
    "#;
    assert!(rules_fired("crates/comm/src/wire.rs", test_only).is_empty());
}

// --- unordered-map-emission ---

#[test]
fn bare_hashmap_iteration_in_emission_path_fires() {
    let src = r#"
        use std::collections::HashMap;
        pub fn emit(counts: &HashMap<String, u64>) -> String {
            let mut out = String::new();
            for (k, v) in counts {
                out.push_str(k);
            }
            out
        }
    "#;
    assert_eq!(
        rules_fired("crates/trace/src/digest.rs", src),
        ["unordered-map-emission"]
    );
}

#[test]
fn sorted_hashmap_iteration_is_allowed() {
    let src = r#"
        use std::collections::HashMap;
        pub fn emit(counts: &HashMap<String, u64>) -> String {
            let mut items: Vec<_> = counts.iter().collect();
            items.sort();
            items.into_iter().map(|(k, _)| k.clone()).collect()
        }
    "#;
    assert!(rules_fired("crates/trace/src/digest.rs", src).is_empty());
    // Vec iteration never fires, whatever it is named.
    let vec_src = r#"
        pub fn emit(counts: &Vec<(String, u64)>) -> usize {
            counts.iter().count()
        }
    "#;
    assert!(rules_fired("crates/trace/src/digest.rs", vec_src).is_empty());
    // And outside the emission scope, map iteration is fine.
    let map_src = r#"
        use std::collections::HashMap;
        pub fn sum(m: &HashMap<u32, u32>) -> u32 { m.values().sum() }
    "#;
    assert!(rules_fired("crates/model/src/init.rs", map_src).is_empty());
}

// --- wallclock-in-kernel ---

#[test]
fn instant_in_tensor_crate_fires() {
    let src = r#"
        use std::time::Instant;
        pub fn gemm_timed() { let t0 = Instant::now(); }
    "#;
    let fired = rules_fired("crates/tensor/src/mk.rs", src);
    assert!(fired.iter().all(|r| r == "wallclock-in-kernel"));
    assert!(!fired.is_empty());
}

#[test]
fn instant_outside_kernel_scope_is_allowed() {
    let src = r#"
        use std::time::Instant;
        pub fn now_us() -> u128 { Instant::now().elapsed().as_micros() }
    "#;
    assert!(rules_fired("crates/trace/src/span.rs", src).is_empty());
}

// --- raw-thread-spawn ---

#[test]
fn raw_thread_spawn_fires() {
    let src = r#"
        pub fn go() {
            std::thread::spawn(|| {});
        }
    "#;
    assert_eq!(
        rules_fired("crates/model/src/pipeline.rs", src),
        ["raw-thread-spawn"]
    );
}

#[test]
fn thread_use_in_owning_engines_is_allowed() {
    let src = r#"
        pub fn go() {
            std::thread::spawn(|| {});
        }
    "#;
    assert!(rules_fired("crates/comm/src/engine.rs", src).is_empty());
    assert!(rules_fired("crates/comm/src/group.rs", src).is_empty());
}

// --- dropped-span-guard ---

#[test]
fn discarded_span_guard_fires() {
    let src = r#"
        pub fn step(tracer: &Tracer) {
            let _ = tracer.span("forward");
            work();
        }
    "#;
    assert_eq!(
        rules_fired("crates/core/src/runtime/mod.rs", src),
        ["dropped-span-guard"]
    );
}

#[test]
fn named_span_guard_is_allowed() {
    let src = r#"
        pub fn step(tracer: &Tracer) {
            let _guard = tracer.span("forward");
            work();
        }
    "#;
    assert!(rules_fired("crates/core/src/runtime/mod.rs", src).is_empty());
    // `let _ =` without a span in the initializer is fine too.
    let no_span = r#"
        pub fn step() { let _ = compute(); }
    "#;
    assert!(rules_fired("crates/core/src/runtime/mod.rs", no_span).is_empty());
}

// --- unchecked-ckpt-io ---

#[test]
fn discarded_ckpt_write_fires() {
    let src = r#"
        pub fn save(dir: &Path, d: &StateDict) {
            let _ = write_shard(dir, 0, 1, d);
        }
    "#;
    assert_eq!(
        rules_fired("crates/core/src/runtime/ckpt.rs", src),
        ["unchecked-ckpt-io"]
    );
}

#[test]
fn ok_erased_ckpt_read_fires() {
    let src = r#"
        pub fn peek(p: &Path) -> Option<StateDict> {
            read_shard(p).ok()
        }
    "#;
    assert_eq!(
        rules_fired("crates/core/src/runtime/dist.rs", src),
        ["unchecked-ckpt-io"]
    );
}

#[test]
fn propagated_ckpt_io_is_allowed() {
    let src = r#"
        pub fn save(dir: &Path, d: &StateDict) -> Result<(), CkptError> {
            write_shard(dir, 0, 1, d)?;
            std::fs::rename(tmp, path)?;
            Ok(())
        }
    "#;
    assert!(rules_fired("crates/core/src/runtime/ckpt.rs", src).is_empty());
    // Non-ckpt Results may still be discarded, and the rule stays scoped:
    // the same discard outside the checkpoint surface is someone else's
    // contract.
    let elsewhere = r#"
        pub fn cleanup(dir: &Path) {
            let _ = std::fs::remove_dir_all(dir);
            let _ = write_shard(dir, 0, 1, d);
        }
    "#;
    assert!(rules_fired("crates/core/src/offload.rs", elsewhere).is_empty());
}

// --- suppressions ---

#[test]
fn suppression_above_the_line_silences_the_finding() {
    let src = r#"
        pub fn drain(v: Option<u32>) -> u32 {
            // fpdt-lint: allow(unwrap-in-comm-path): fixture — value is guaranteed by construction
            v.unwrap()
        }
    "#;
    assert!(rules_fired("crates/comm/src/wire.rs", src).is_empty());
}

#[test]
fn suppression_on_the_same_line_silences_the_finding() {
    let src = r#"
        pub fn drain(v: Option<u32>) -> u32 {
            v.unwrap() // fpdt-lint: allow(unwrap-in-comm-path): fixture — guaranteed present
        }
    "#;
    assert!(rules_fired("crates/comm/src/wire.rs", src).is_empty());
}

#[test]
fn suppression_without_reason_is_malformed_and_does_not_suppress() {
    let src = r#"
        pub fn drain(v: Option<u32>) -> u32 {
            // fpdt-lint: allow(unwrap-in-comm-path)
            v.unwrap()
        }
    "#;
    let mut fired = rules_fired("crates/comm/src/wire.rs", src);
    fired.sort();
    assert_eq!(fired, ["malformed-suppression", "unwrap-in-comm-path"]);
}

#[test]
fn suppression_naming_unknown_rule_is_malformed() {
    let src = r#"
        // fpdt-lint: allow(no-such-rule): whatever
        pub fn f() {}
    "#;
    assert_eq!(rules_fired("crates/model/src/x.rs", src), ["malformed-suppression"]);
}

#[test]
fn suppression_matching_nothing_is_reported_unused() {
    let src = r#"
        // fpdt-lint: allow(unwrap-in-comm-path): left behind after a refactor
        pub fn f() {}
    "#;
    assert_eq!(
        rules_fired("crates/comm/src/wire.rs", src),
        ["unused-suppression"]
    );
}

#[test]
fn prose_mentioning_the_tool_is_not_a_directive() {
    let src = r#"
        //! Checked by `fpdt-lint` (rule env-outside-options).
        // see fpdt-lint for details
        pub fn f() {}
    "#;
    assert!(rules_fired("crates/model/src/x.rs", src).is_empty());
}

// --- baseline mechanics ---

#[test]
fn baseline_roundtrip_and_apply() {
    let src = r#"
        pub fn drain(v: Option<u32>) -> u32 { v.unwrap() }
    "#;
    let findings = lint_source("crates/comm/src/wire.rs", src);
    assert_eq!(findings.len(), 1);

    let bl = Baseline::from_findings(&findings);
    let reparsed = Baseline::parse(&bl.to_json()).expect("own output parses");
    assert_eq!(reparsed.entries, bl.entries);

    // A baselined finding is absorbed; nothing fresh, nothing stale.
    let (fresh, stale) = reparsed.apply(findings.clone());
    assert!(fresh.is_empty() && stale.is_empty());

    // The baseline is line-number free: the same code shifted down
    // three lines still matches its entry.
    let shifted = format!("\n\n\n{src}");
    let moved = lint_source("crates/comm/src/wire.rs", &shifted);
    let (fresh, stale) = reparsed.apply(moved);
    assert!(fresh.is_empty() && stale.is_empty(), "excerpt-keyed match survives line shifts");

    // With the offense fixed, the entry goes stale (gate must fail).
    let (fresh, stale) = reparsed.apply(Vec::new());
    assert!(fresh.is_empty());
    assert_eq!(stale.len(), 1);

    // A second, new finding is not absorbed by the unrelated entry.
    let other = lint_source(
        "crates/comm/src/other.rs",
        "pub fn f(v: Option<u32>) -> u32 { v.unwrap() }\n",
    );
    let (fresh, _) = reparsed.apply(other);
    assert_eq!(fresh.len(), 1);
}

#[test]
fn malformed_baseline_is_an_error_not_an_empty_baseline() {
    assert!(Baseline::parse("not json").is_err());
    assert!(Baseline::parse("{\"version\": 1}").is_err());
    assert!(Baseline::parse("{\"findings\": [{\"rule\": 3}]}").is_err());
}
