//! # fpdt-lint
//!
//! Project-invariant static analysis for the FPDT workspace. The paper's
//! schedule only reproduces bitwise if the runtime stays deterministic,
//! and the fault-tolerance roadmap only works if comm errors propagate —
//! invariants the test suites can confirm *after* a regression lands.
//! This crate catches the violation at the line that introduces it, with
//! a hand-rolled lexer (no third-party parser) so the pass runs anywhere
//! the workspace builds.
//!
//! The rules are listed in [`rules::RULES`]; `fpdt-lint --list-rules`
//! prints them. Scope and allowlists live in [`rules`], next to the rule
//! logic, with a rationale string per exemption.
//!
//! ## Suppressions
//!
//! ```text
//! // fpdt-lint: allow(unwrap-in-comm-path): construction invariant — every slot was just filled
//! ```
//!
//! on the finding's line or the line above. The reason text is
//! **mandatory** (a bare `allow` is itself a `malformed-suppression`
//! finding) and a suppression matching no finding is an
//! `unused-suppression` finding, so suppressions cannot rot.
//!
//! ## Baseline
//!
//! Grandfathered findings live in `lint-baseline.json` (see
//! [`baseline::Baseline`]); the CI gate fails on new findings *and* on
//! stale baseline entries.

#![deny(missing_docs)]

pub mod baseline;
pub mod lexer;
pub mod rules;

use serde::{Serialize, Value};
use std::path::{Path, PathBuf};

/// One rule violation at a source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Rule name (kebab-case, from [`rules::RULES`]).
    pub rule: String,
    /// Workspace-relative path with forward slashes.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// What is wrong and what to do instead.
    pub message: String,
    /// The trimmed source line (the baseline's line-number-free anchor).
    pub excerpt: String,
}

impl Finding {
    /// `file:line:col [rule] message` + excerpt, for human output.
    pub fn render(&self) -> String {
        format!(
            "{}:{}:{} [{}] {}\n    {}",
            self.file, self.line, self.col, self.rule, self.message, self.excerpt
        )
    }
}

impl serde::Serialize for Finding {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("rule".to_string(), Value::Str(self.rule.clone())),
            ("file".to_string(), Value::Str(self.file.clone())),
            ("line".to_string(), Value::UInt(self.line as u64)),
            ("col".to_string(), Value::UInt(self.col as u64)),
            ("message".to_string(), Value::Str(self.message.clone())),
            ("excerpt".to_string(), Value::Str(self.excerpt.clone())),
        ])
    }
}

/// A parsed `fpdt-lint: allow(rule): reason` directive.
#[derive(Debug)]
struct Suppression {
    rule: String,
    line: u32,
    used: bool,
}

/// Lints one file's source text: lex, strip test items, run rules, apply
/// suppressions, and append suppression-hygiene findings. Findings come
/// back sorted by position. This is the whole per-file pipeline — the
/// fixture tests drive it directly with synthetic paths.
pub fn lint_source(path: &str, src: &str) -> Vec<Finding> {
    let lines: Vec<String> = src.lines().map(|l| l.to_string()).collect();
    let lexed = lexer::lex(src);
    let toks = lexer::strip_test_items(&lexed.tokens);

    let mut findings = rules::check_file(path, &lines, &toks);

    // Parse directives out of the comment stream. Only a comment that
    // *starts* with `fpdt-lint` is a directive — prose that merely
    // mentions the tool is ignored, and doc comments never qualify
    // (their captured text starts with the extra `/` or `!`).
    let mut sups: Vec<Suppression> = Vec::new();
    for c in &lexed.comments {
        let body = c.text.trim_start();
        if !body.starts_with("fpdt-lint") {
            continue;
        }
        match parse_directive(body) {
            Ok(rule) => sups.push(Suppression {
                rule,
                line: c.line,
                used: false,
            }),
            Err(why) => findings.push(Finding {
                rule: "malformed-suppression".to_string(),
                file: path.to_string(),
                line: c.line,
                col: 1,
                message: why,
                excerpt: lines
                    .get(c.line as usize - 1)
                    .map(|l| l.trim().to_string())
                    .unwrap_or_default(),
            }),
        }
    }

    // A suppression covers findings of its rule on its own line or the
    // line directly below (directive-above style).
    findings.retain(|f| {
        for s in sups.iter_mut() {
            if s.rule == f.rule && (s.line == f.line || s.line + 1 == f.line) {
                s.used = true;
                return false;
            }
        }
        true
    });

    for s in &sups {
        if !s.used {
            findings.push(Finding {
                rule: "unused-suppression".to_string(),
                file: path.to_string(),
                line: s.line,
                col: 1,
                message: format!(
                    "suppression for `{}` matches no finding on this or the next line; remove it",
                    s.rule
                ),
                excerpt: lines
                    .get(s.line as usize - 1)
                    .map(|l| l.trim().to_string())
                    .unwrap_or_default(),
            });
        }
    }

    findings.sort_by(|a, b| {
        (a.line, a.col, a.rule.as_str()).cmp(&(b.line, b.col, b.rule.as_str()))
    });
    findings
}

/// Parses `fpdt-lint: allow(<rule>): <reason>` starting at `fpdt-lint`.
/// Returns the rule name; the reason is validated but not kept.
fn parse_directive(text: &str) -> Result<String, String> {
    const SYNTAX: &str = "expected `fpdt-lint: allow(<rule>): <reason>`";
    let rest = text
        .strip_prefix("fpdt-lint")
        .unwrap_or(text)
        .trim_start()
        .strip_prefix(':')
        .ok_or(format!("{SYNTAX} (missing `:` after fpdt-lint)"))?
        .trim_start();
    let rest = rest
        .strip_prefix("allow(")
        .ok_or(format!("{SYNTAX} (missing `allow(`)"))?;
    let close = rest
        .find(')')
        .ok_or(format!("{SYNTAX} (unclosed `allow(`)"))?;
    let rule = rest[..close].trim();
    if !rules::is_known_rule(rule) {
        return Err(format!(
            "unknown rule `{rule}` in suppression (run fpdt-lint --list-rules)"
        ));
    }
    let reason = rest[close + 1..]
        .trim_start()
        .strip_prefix(':')
        .ok_or("suppression requires a reason: `fpdt-lint: allow(<rule>): <why>`")?
        .trim();
    if reason.len() < 3 {
        return Err("suppression reason is empty; say why the finding is acceptable".to_string());
    }
    Ok(rule.to_string())
}

/// Result of scanning the whole workspace.
#[derive(Debug)]
pub struct WorkspaceReport {
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// All findings across all files, in (file, position) order.
    pub findings: Vec<Finding>,
}

/// Directory names never descended into: build output, vendored
/// stand-ins, and test/fixture trees (rules apply to non-test code).
const SKIP_DIRS: &[&str] = &["target", "vendor", "tests", "benches", "fixtures", "golden"];

/// The workspace sub-roots that contain first-party source.
const SCAN_ROOTS: &[&str] = &["crates", "src", "examples"];

/// Scans every first-party `.rs` file under `root` (the repo root) and
/// runs the full per-file pipeline on each. Files are visited in sorted
/// path order, so output and JSON artifacts are deterministic.
pub fn lint_workspace(root: &Path) -> std::io::Result<WorkspaceReport> {
    let mut files: Vec<PathBuf> = Vec::new();
    for sub in SCAN_ROOTS {
        let dir = root.join(sub);
        if dir.is_dir() {
            collect_rs_files(&dir, &mut files)?;
        }
    }
    files.sort();

    let mut findings = Vec::new();
    for f in &files {
        let rel = f
            .strip_prefix(root)
            .unwrap_or(f)
            .components()
            .map(|c| c.as_os_str().to_string_lossy())
            .collect::<Vec<_>>()
            .join("/");
        let src = std::fs::read_to_string(f)?;
        findings.extend(lint_source(&rel, &src));
    }
    Ok(WorkspaceReport {
        files_scanned: files.len(),
        findings,
    })
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name().to_string_lossy().to_string();
        if path.is_dir() {
            if !SKIP_DIRS.contains(&name.as_str()) {
                collect_rs_files(&path, out)?;
            }
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Renders the `--json` report document.
pub fn report_json(
    report: &WorkspaceReport,
    fresh: &[Finding],
    stale: &[baseline::BaselineEntry],
    baselined: usize,
) -> String {
    let doc = Value::Object(vec![
        (
            "files_scanned".to_string(),
            Value::UInt(report.files_scanned as u64),
        ),
        (
            "rules".to_string(),
            Value::Array(
                rules::RULES
                    .iter()
                    .map(|r| Value::Str(r.name.to_string()))
                    .collect(),
            ),
        ),
        (
            "findings".to_string(),
            Value::Array(fresh.iter().map(|f| f.to_value()).collect()),
        ),
        (
            "stale_baseline".to_string(),
            Value::Array(stale.iter().map(|e| e.to_value()).collect()),
        ),
        ("baselined".to_string(), Value::UInt(baselined as u64)),
        (
            "ok".to_string(),
            Value::Bool(fresh.is_empty() && stale.is_empty()),
        ),
    ]);
    serde_json::to_string_pretty(&doc).unwrap_or_else(|_| "{}".to_string())
}
