//! The project-invariant rules, each enforcing a contract the test suites
//! can only check after the fact:
//!
//! | rule | invariant |
//! |------|-----------|
//! | `env-outside-options`   | env flags are parsed at documented entry points only |
//! | `unwrap-in-comm-path`   | comm/executor hot paths propagate `CommError`, never panic |
//! | `unordered-map-emission`| trace/digest emission never iterates a `HashMap` unsorted |
//! | `wallclock-in-kernel`   | kernels are clock-free (determinism) |
//! | `raw-thread-spawn`      | threads come from the pool / engines, not ad hoc |
//! | `dropped-span-guard`    | span guards get named bindings (`let _ =` drops instantly) |
//! | `unchecked-ckpt-io`     | checkpoint I/O results are handled, never discarded |
//!
//! Rules pattern-match the **token stream** (string literals and comments
//! never fire) after `#[cfg(test)]` items are stripped — tests are free
//! to unwrap, spawn, and read clocks.

use crate::lexer::{TokKind, Token};
use crate::Finding;

/// Name and one-line rationale for one rule, for `--list-rules` and docs.
#[derive(Debug, Clone, Copy)]
pub struct RuleInfo {
    /// The rule's kebab-case name (used in suppressions and baselines).
    pub name: &'static str,
    /// One-line description of the enforced invariant.
    pub what: &'static str,
}

/// Every enforced rule, including the two suppression-hygiene meta rules.
pub const RULES: &[RuleInfo] = &[
    RuleInfo {
        name: "env-outside-options",
        what: "std::env::var only at documented initialization points (RuntimeOptions::from_env, fpdt_tensor::env, trace wire, bench/bin setup)",
    },
    RuleInfo {
        name: "unwrap-in-comm-path",
        what: "no unwrap()/expect() in crates/comm or runtime/exec.rs — fault tolerance needs CommError propagation",
    },
    RuleInfo {
        name: "unordered-map-emission",
        what: "no bare HashMap iteration in trace-emission/digest paths without a sort",
    },
    RuleInfo {
        name: "wallclock-in-kernel",
        what: "no Instant/SystemTime inside crates/tensor — kernels are deterministic, only fpdt-trace and the wire sim read clocks",
    },
    RuleInfo {
        name: "raw-thread-spawn",
        what: "threads only via par::pool / CommEngine / OffloadEngine, not std::thread directly",
    },
    RuleInfo {
        name: "dropped-span-guard",
        what: "`let _ = ...span...` drops the RAII guard immediately — bind it to a name",
    },
    RuleInfo {
        name: "unchecked-ckpt-io",
        what: "checkpoint I/O results (write_shard, read_shard, checkpoint, load_state_dict, ...) must not be discarded via `let _ =` or `.ok()` — a silently dropped CkptError means a resume from half-written state",
    },
    RuleInfo {
        name: "malformed-suppression",
        what: "fpdt-lint suppressions must name a known rule and give a reason",
    },
    RuleInfo {
        name: "unused-suppression",
        what: "a suppression that matches no finding is stale and must be removed",
    },
];

/// Whether `name` names a real (non-meta) suppressible rule.
pub fn is_known_rule(name: &str) -> bool {
    RULES.iter().any(|r| r.name == name)
}

/// Files allowed to read `std::env` directly, with the rationale recorded
/// next to the exemption (prefix match on the workspace-relative path).
pub const ENV_ALLOWLIST: &[(&str, &str)] = &[
    (
        "crates/core/src/runtime/options.rs",
        "RuntimeOptions::from_env — the documented runtime knob parser",
    ),
    (
        "crates/tensor/src/env.rs",
        "fpdt_tensor::env — the kernel layer's strict parse primitives (fpdt-tensor cannot depend on fpdt-core)",
    ),
    (
        "crates/trace/src/wire.rs",
        "FPDT_SIM_GBPS — fpdt-trace sits below fpdt-core in the dependency graph; the read is strict and warn-once",
    ),
    (
        "crates/bench/src/",
        "bench harness setup — benches configure the very knobs under test",
    ),
    (
        "src/bin/",
        "CLI entrypoints interpret their own invocation environment",
    ),
];

/// Paths where `unwrap()`/`expect()` are forbidden: the collective wire
/// layer and the chunked executor, where every error must become a
/// `CommError`/`ExecResult` for the fault-tolerance roadmap to work.
const UNWRAP_SCOPE: &[&str] = &["crates/comm/src/", "crates/core/src/runtime/exec.rs"];

/// Paths whose output feeds schedule digests or trace artifacts, where a
/// bare `HashMap` iteration order would leak into golden files.
const MAP_EMISSION_SCOPE: &[&str] = &[
    "crates/trace/src/",
    "crates/comm/src/stats.rs",
    "crates/core/src/runtime/exec.rs",
];

/// The clock-free zone: compute kernels.
const WALLCLOCK_SCOPE: &[&str] = &["crates/tensor/src/"];

/// Files allowed to call `std::thread` directly: the two engines that own
/// worker threads (the pool itself lives in the vendored `rayon`, outside
/// the scan).
const THREAD_ALLOWLIST: &[&str] = &["crates/comm/src/engine.rs", "crates/comm/src/group.rs"];

/// The checkpoint persistence surface: everywhere a `CkptError` (or the
/// fs call underneath one) is born. A discarded Result here turns a
/// half-written shard into a later resume-time mystery.
const CKPT_SCOPE: &[&str] = &[
    "crates/core/src/runtime/ckpt.rs",
    "crates/core/src/runtime/dist.rs",
    "src/bin/fpdt-ckpt.rs",
];

/// Fallible checkpoint-I/O calls whose `Result` carries the durability
/// contract (typed `CkptError`s or the `io::Error` beneath them).
const CKPT_IO_IDENTS: &[&str] = &[
    "write_shard",
    "read_shard",
    "shard_paths",
    "checkpoint",
    "checkpoint_default",
    "load_state_dict",
    "create_dir_all",
    "sync_all",
    "rename",
];

fn in_scope(path: &str, prefixes: &[&str]) -> bool {
    prefixes.iter().any(|p| path.starts_with(p))
}

fn finding(rule: &'static str, path: &str, lines: &[String], tok: &Token, message: String) -> Finding {
    let excerpt = lines
        .get(tok.line as usize - 1)
        .map(|l| l.trim().to_string())
        .unwrap_or_default();
    Finding {
        rule: rule.to_string(),
        file: path.to_string(),
        line: tok.line,
        col: tok.col,
        message,
        excerpt,
    }
}

/// Runs every path-applicable rule over one file's stripped token stream.
/// Suppressions are applied by the caller ([`crate::lint_source`]).
pub fn check_file(path: &str, lines: &[String], toks: &[Token]) -> Vec<Finding> {
    let mut out = Vec::new();
    env_outside_options(path, lines, toks, &mut out);
    unwrap_in_comm_path(path, lines, toks, &mut out);
    unordered_map_emission(path, lines, toks, &mut out);
    wallclock_in_kernel(path, lines, toks, &mut out);
    raw_thread_spawn(path, lines, toks, &mut out);
    dropped_span_guard(path, lines, toks, &mut out);
    unchecked_ckpt_io(path, lines, toks, &mut out);
    out
}

/// `env :: var` / `env :: var_os` anywhere outside the allowlist.
fn env_outside_options(path: &str, lines: &[String], toks: &[Token], out: &mut Vec<Finding>) {
    if ENV_ALLOWLIST.iter().any(|(p, _)| path.starts_with(p)) {
        return;
    }
    for i in 0..toks.len() {
        if toks[i].is_ident("env")
            && toks.get(i + 1).is_some_and(|t| t.is_punct(':'))
            && toks.get(i + 2).is_some_and(|t| t.is_punct(':'))
            && toks
                .get(i + 3)
                .is_some_and(|t| t.is_ident("var") || t.is_ident("var_os"))
        {
            out.push(finding(
                "env-outside-options",
                path,
                lines,
                &toks[i],
                "environment read outside the documented initialization points; route the knob \
                 through RuntimeOptions::from_env / fpdt_tensor::env (see DESIGN.md \"Static \
                 invariants\")"
                    .to_string(),
            ));
        }
    }
}

/// `.unwrap()` / `.expect(` in the comm/executor scope.
fn unwrap_in_comm_path(path: &str, lines: &[String], toks: &[Token], out: &mut Vec<Finding>) {
    if !in_scope(path, UNWRAP_SCOPE) {
        return;
    }
    for i in 1..toks.len() {
        if toks[i - 1].is_punct('.')
            && (toks[i].is_ident("unwrap") || toks[i].is_ident("expect"))
            && toks.get(i + 1).is_some_and(|t| t.is_punct('('))
        {
            out.push(finding(
                "unwrap-in-comm-path",
                path,
                lines,
                &toks[i],
                format!(
                    "`{}()` on a fallible comm-path value panics the rank instead of propagating \
                     a CommError; return a Result (or recover poisoned locks with \
                     `unwrap_or_else(|e| e.into_inner())`)",
                    toks[i].text
                ),
            ));
        }
    }
}

const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "into_iter",
    "into_keys",
    "into_values",
    "drain",
];

/// Bare iteration over an identifier declared as a `HashMap`, in emission
/// scope, with no `sort*` in the following tokens.
fn unordered_map_emission(path: &str, lines: &[String], toks: &[Token], out: &mut Vec<Finding>) {
    if !in_scope(path, MAP_EMISSION_SCOPE) {
        return;
    }
    let maps = collect_map_idents(toks);
    if maps.is_empty() {
        return;
    }
    let is_map = |t: &Token| t.kind == TokKind::Ident && maps.contains(&t.text);

    let flag = |idx: usize, out: &mut Vec<Finding>| {
        // Waived when a sort follows closely (collect-then-sort pattern).
        let sorted_after = toks[idx..toks.len().min(idx + 80)]
            .iter()
            .any(|t| t.kind == TokKind::Ident && t.text.starts_with("sort"));
        if !sorted_after {
            out.push(finding(
                "unordered-map-emission",
                path,
                lines,
                &toks[idx],
                format!(
                    "`{}` is a HashMap iterated without a sort in an emission/digest path; its \
                     order is nondeterministic — sort the items, iterate a side order list, or \
                     use a BTreeMap",
                    toks[idx].text
                ),
            ));
        }
    };

    for i in 0..toks.len() {
        // map.iter() / map.keys() / ...
        if is_map(&toks[i])
            && toks.get(i + 1).is_some_and(|t| t.is_punct('.'))
            && toks
                .get(i + 2)
                .is_some_and(|t| t.kind == TokKind::Ident && ITER_METHODS.contains(&t.text.as_str()))
            && toks.get(i + 3).is_some_and(|t| t.is_punct('('))
        {
            flag(i, out);
        }
        // for k in map { / for (k, v) in &map { / for x in self.map {
        if toks[i].is_ident("in") {
            let mut j = i + 1;
            while toks
                .get(j)
                .is_some_and(|t| t.is_punct('&') || t.is_ident("mut"))
            {
                j += 1;
            }
            if toks.get(j).is_some_and(|t| t.is_ident("self"))
                && toks.get(j + 1).is_some_and(|t| t.is_punct('.'))
            {
                j += 2;
            }
            if toks.get(j).is_some_and(is_map) && toks.get(j + 1).is_some_and(|t| t.is_punct('{'))
            {
                flag(j, out);
            }
        }
    }
}

/// Identifiers declared with a `HashMap` type or initializer in this file.
fn collect_map_idents(toks: &[Token]) -> Vec<String> {
    let mut maps: Vec<String> = Vec::new();
    let mut add = |name: &str| {
        if !maps.iter().any(|m| m == name) {
            maps.push(name.to_string());
        }
    };
    for i in 0..toks.len() {
        if toks[i].kind != TokKind::Ident {
            continue;
        }
        // `name: ...HashMap...` — field, param, or typed let. The type
        // region ends at a depth-0 `,` `;` `=` `{` `)` (angle brackets
        // tracked so `Mutex<HashMap<K, V>>` scans past its inner comma).
        if toks.get(i + 1).is_some_and(|t| t.is_punct(':'))
            && !toks.get(i + 2).is_some_and(|t| t.is_punct(':'))
        {
            let mut angle = 0i64;
            let mut j = i + 2;
            while let Some(t) = toks.get(j) {
                match t.kind {
                    TokKind::Punct('<') => angle += 1,
                    TokKind::Punct('>') => angle -= 1,
                    TokKind::Punct(',') | TokKind::Punct(';') | TokKind::Punct('=')
                    | TokKind::Punct('{') | TokKind::Punct(')') | TokKind::Punct('}')
                        if angle <= 0 =>
                    {
                        break;
                    }
                    _ => {}
                }
                if t.is_ident("HashMap") {
                    add(&toks[i].text);
                    break;
                }
                j += 1;
            }
        }
        // `let [mut] name = HashMap::new()` and friends.
        if toks[i].is_ident("let") {
            let mut j = i + 1;
            if toks.get(j).is_some_and(|t| t.is_ident("mut")) {
                j += 1;
            }
            if toks.get(j).is_some_and(|t| t.kind == TokKind::Ident)
                && toks.get(j + 1).is_some_and(|t| t.is_punct('='))
                && toks.get(j + 2).is_some_and(|t| t.is_ident("HashMap"))
            {
                add(&toks[j].text);
            }
        }
    }
    maps
}

/// `Instant` / `SystemTime` mentioned anywhere in kernel code.
fn wallclock_in_kernel(path: &str, lines: &[String], toks: &[Token], out: &mut Vec<Finding>) {
    if !in_scope(path, WALLCLOCK_SCOPE) {
        return;
    }
    for t in toks {
        if t.is_ident("Instant") || t.is_ident("SystemTime") {
            out.push(finding(
                "wallclock-in-kernel",
                path,
                lines,
                t,
                format!(
                    "`{}` inside crates/tensor: kernels must be clock-free so results depend \
                     only on inputs; timing belongs in fpdt-trace or the wire sim",
                    t.text
                ),
            ));
        }
    }
}

/// `thread :: spawn` / `thread :: scope` / `thread :: Builder` outside
/// the two engines that own worker threads.
fn raw_thread_spawn(path: &str, lines: &[String], toks: &[Token], out: &mut Vec<Finding>) {
    if in_scope(path, THREAD_ALLOWLIST) {
        return;
    }
    for i in 0..toks.len() {
        if toks[i].is_ident("thread")
            && toks.get(i + 1).is_some_and(|t| t.is_punct(':'))
            && toks.get(i + 2).is_some_and(|t| t.is_punct(':'))
            && toks.get(i + 3).is_some_and(|t| {
                t.is_ident("spawn") || t.is_ident("scope") || t.is_ident("Builder")
            })
        {
            out.push(finding(
                "raw-thread-spawn",
                path,
                lines,
                &toks[i],
                "raw std::thread use outside the owning engines; go through par::pool, \
                 CommEngine, or OffloadEngine so thread budgets and panic policy stay centralized"
                    .to_string(),
            ));
        }
    }
}

/// `let _ = <expr containing span>;` — the guard drops before the work it
/// was meant to measure.
fn dropped_span_guard(path: &str, lines: &[String], toks: &[Token], out: &mut Vec<Finding>) {
    for i in 0..toks.len() {
        if toks[i].is_ident("let")
            && toks.get(i + 1).is_some_and(|t| t.is_ident("_"))
            && toks.get(i + 2).is_some_and(|t| t.is_punct('='))
        {
            // Scan the initializer to its terminating `;` at brace depth 0.
            let mut depth = 0i64;
            let mut j = i + 3;
            let mut has_span = false;
            while let Some(t) = toks.get(j) {
                match t.kind {
                    TokKind::Punct('{') => depth += 1,
                    TokKind::Punct('}') => depth -= 1,
                    TokKind::Punct(';') if depth <= 0 => break,
                    TokKind::Ident if t.text == "span" => has_span = true,
                    _ => {}
                }
                j += 1;
            }
            if has_span {
                out.push(finding(
                    "dropped-span-guard",
                    path,
                    lines,
                    &toks[i],
                    "`let _ = ...span(...)` drops the RAII guard immediately, recording a \
                     zero-length span; bind it (`let _guard = ...`) so it lives to the end of \
                     scope"
                        .to_string(),
                ));
            }
        }
    }
}

/// In the checkpoint persistence scope: `let _ = <expr containing a
/// ckpt-I/O call>;` or `.ok()` chained directly onto such a call — both
/// swallow the `Result` that carries the durability contract.
fn unchecked_ckpt_io(path: &str, lines: &[String], toks: &[Token], out: &mut Vec<Finding>) {
    if !in_scope(path, CKPT_SCOPE) {
        return;
    }
    let is_ckpt_call = |t: &Token| {
        t.kind == TokKind::Ident && CKPT_IO_IDENTS.contains(&t.text.as_str())
    };
    for i in 0..toks.len() {
        // `let _ = ...write_shard(...)...;` — discarded at the binding.
        if toks[i].is_ident("let")
            && toks.get(i + 1).is_some_and(|t| t.is_ident("_"))
            && toks.get(i + 2).is_some_and(|t| t.is_punct('='))
        {
            let mut depth = 0i64;
            let mut j = i + 3;
            let mut dropped: Option<usize> = None;
            while let Some(t) = toks.get(j) {
                match t.kind {
                    TokKind::Punct('{') => depth += 1,
                    TokKind::Punct('}') => depth -= 1,
                    TokKind::Punct(';') if depth <= 0 => break,
                    _ => {}
                }
                if is_ckpt_call(t) && toks.get(j + 1).is_some_and(|t| t.is_punct('(')) {
                    dropped = Some(j);
                }
                j += 1;
            }
            if let Some(k) = dropped {
                out.push(finding(
                    "unchecked-ckpt-io",
                    path,
                    lines,
                    &toks[k],
                    format!(
                        "`let _ = ...{}(...)` discards a checkpoint I/O Result; propagate the \
                         CkptError (`?`) or handle it — a dropped error here resumes from \
                         half-written state",
                        toks[k].text
                    ),
                ));
            }
        }
        // `write_shard(...).ok()` — the error is erased at the call site.
        if is_ckpt_call(&toks[i]) && toks.get(i + 1).is_some_and(|t| t.is_punct('(')) {
            let mut depth = 0i64;
            let mut j = i + 1;
            while let Some(t) = toks.get(j) {
                match t.kind {
                    TokKind::Punct('(') => depth += 1,
                    TokKind::Punct(')') => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                j += 1;
            }
            if toks.get(j + 1).is_some_and(|t| t.is_punct('.'))
                && toks.get(j + 2).is_some_and(|t| t.is_ident("ok"))
                && toks.get(j + 3).is_some_and(|t| t.is_punct('('))
            {
                out.push(finding(
                    "unchecked-ckpt-io",
                    path,
                    lines,
                    &toks[i],
                    format!(
                        "`{}(...).ok()` erases the checkpoint I/O error; propagate the CkptError \
                         (`?`) or match on it — `.ok()` here hides a failed or partial write",
                        toks[i].text
                    ),
                ));
            }
        }
    }
}
