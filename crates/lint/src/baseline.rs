//! The grandfathering mechanism: `lint-baseline.json` records findings
//! that predate a rule (or are accepted debt), keyed by
//! `(rule, file, excerpt)` — *not* line numbers, so unrelated edits above
//! a baselined line don't invalidate it. The CI gate fails on any finding
//! not absorbed by the baseline **and** on any baseline entry that no
//! longer matches a finding (stale entries hide regressions and must be
//! pruned — regenerate with `fpdt-lint --write-baseline`).

use crate::Finding;
use serde::Value;
use std::path::Path;

/// One grandfathered finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BaselineEntry {
    /// Rule name.
    pub rule: String,
    /// Workspace-relative file path.
    pub file: String,
    /// Trimmed source line of the finding (line-number free anchor).
    pub excerpt: String,
}

/// A parsed baseline file.
#[derive(Debug, Default, Clone)]
pub struct Baseline {
    /// Every grandfathered entry, in file order.
    pub entries: Vec<BaselineEntry>,
}

impl Baseline {
    /// Loads `path`; a missing file is an empty baseline, a malformed one
    /// is an error (CI must not silently treat garbage as "no baseline").
    pub fn load(path: &Path) -> Result<Baseline, String> {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                return Ok(Baseline::default())
            }
            Err(e) => return Err(format!("cannot read {}: {e}", path.display())),
        };
        Self::parse(&text).map_err(|e| format!("{}: {e}", path.display()))
    }

    /// Parses the JSON document produced by [`Baseline::to_json`].
    pub fn parse(text: &str) -> Result<Baseline, String> {
        let value = serde_json::from_str(text).map_err(|e| e.to_string())?;
        let Value::Object(top) = value else {
            return Err("baseline root must be an object".to_string());
        };
        let findings = top
            .iter()
            .find(|(k, _)| k == "findings")
            .map(|(_, v)| v)
            .ok_or("baseline is missing the \"findings\" array")?;
        let Value::Array(items) = findings else {
            return Err("\"findings\" must be an array".to_string());
        };
        let mut entries = Vec::with_capacity(items.len());
        for item in items {
            let Value::Object(fields) = item else {
                return Err("each baseline finding must be an object".to_string());
            };
            let get = |name: &str| -> Result<String, String> {
                match fields.iter().find(|(k, _)| k == name).map(|(_, v)| v) {
                    Some(Value::Str(s)) => Ok(s.clone()),
                    _ => Err(format!("baseline finding is missing string field \"{name}\"")),
                }
            };
            entries.push(BaselineEntry {
                rule: get("rule")?,
                file: get("file")?,
                excerpt: get("excerpt")?,
            });
        }
        Ok(Baseline { entries })
    }

    /// A baseline covering exactly `findings` (the `--write-baseline` path).
    pub fn from_findings(findings: &[Finding]) -> Baseline {
        Baseline {
            entries: findings
                .iter()
                .map(|f| BaselineEntry {
                    rule: f.rule.clone(),
                    file: f.file.clone(),
                    excerpt: f.excerpt.clone(),
                })
                .collect(),
        }
    }

    /// Renders the committed JSON document.
    pub fn to_json(&self) -> String {
        let items: Vec<Value> = self
            .entries
            .iter()
            .map(|e| {
                Value::Object(vec![
                    ("rule".to_string(), Value::Str(e.rule.clone())),
                    ("file".to_string(), Value::Str(e.file.clone())),
                    ("excerpt".to_string(), Value::Str(e.excerpt.clone())),
                ])
            })
            .collect();
        let doc = Value::Object(vec![
            ("version".to_string(), Value::UInt(1)),
            ("findings".to_string(), Value::Array(items)),
        ]);
        serde_json::to_string_pretty(&doc).unwrap_or_else(|_| "{}".to_string()) + "\n"
    }

    /// Splits `findings` against the baseline: each entry absorbs at most
    /// one matching finding. Returns `(new_findings, stale_entries)` —
    /// both must be empty for the CI gate to pass.
    pub fn apply(&self, findings: Vec<Finding>) -> (Vec<Finding>, Vec<BaselineEntry>) {
        let mut unused: Vec<&BaselineEntry> = self.entries.iter().collect();
        let mut fresh = Vec::new();
        for f in findings {
            let hit = unused.iter().position(|e| {
                e.rule == f.rule && e.file == f.file && e.excerpt == f.excerpt
            });
            match hit {
                Some(i) => {
                    unused.remove(i);
                }
                None => fresh.push(f),
            }
        }
        (fresh, unused.into_iter().cloned().collect())
    }
}

impl serde::Serialize for BaselineEntry {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("rule".to_string(), Value::Str(self.rule.clone())),
            ("file".to_string(), Value::Str(self.file.clone())),
            ("excerpt".to_string(), Value::Str(self.excerpt.clone())),
        ])
    }
}
