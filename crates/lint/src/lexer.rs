//! A small hand-rolled Rust lexer: just enough token structure for the
//! rule patterns in [`crate::rules`], with line/column positions and the
//! comment stream kept separate (suppression directives live in comments).
//!
//! The point of lexing — rather than regex-matching raw source — is that
//! rule patterns match **token** sequences: `"std::env::var"` appearing
//! inside a string literal, a comment, or a `#[cfg(test)]` item never
//! fires. The lexer understands:
//!
//! * line comments (`//`, `///`, `//!`) and **nested** block comments,
//! * string literals with escapes, raw strings (`r#"…"#`, any hash
//!   count), byte strings (`b"…"`, `br#"…"#`),
//! * char literals vs lifetimes (`'a'` vs `'a`), raw identifiers
//!   (`r#type`),
//! * identifiers, numbers (including `1.5e-3` / `0xff` / `1_000`), and
//!   single-char punctuation.
//!
//! It does **not** build an AST; [`strip_test_items`] removes
//! `#[test]`/`#[cfg(test)]`-gated items from the token stream by brace
//! matching, which is as much structure as the rules need.

/// Token kind. Literal payloads are not interpreted — rules only ever
/// match identifiers and punctuation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (also raw identifiers, with `r#` stripped).
    Ident,
    /// One punctuation character (`::` is two `:` tokens).
    Punct(char),
    /// String literal of any flavor (plain, raw, byte).
    Str,
    /// Char or byte-char literal.
    Char,
    /// Numeric literal.
    Num,
    /// Lifetime (`'a`) — distinguished from char literals.
    Lifetime,
}

/// One token with its source position (1-based line and column).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// What kind of token this is.
    pub kind: TokKind,
    /// Identifier text (empty for literals and punctuation).
    pub text: String,
    /// 1-based source line.
    pub line: u32,
    /// 1-based source column.
    pub col: u32,
}

impl Token {
    /// Whether this token is the identifier `s`.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }

    /// Whether this token is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct(c)
    }
}

/// One comment with the line it starts on (block comments may span more).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Comment {
    /// Comment text without the `//` / `/*` markers.
    pub text: String,
    /// 1-based line the comment starts on.
    pub line: u32,
}

/// The lexed file: code tokens and comments, separately.
#[derive(Debug, Default)]
pub struct Lexed {
    /// All code tokens in source order.
    pub tokens: Vec<Token>,
    /// All comments in source order.
    pub comments: Vec<Comment>,
}

struct Cursor {
    chars: Vec<char>,
    i: usize,
    line: u32,
    col: u32,
}

impl Cursor {
    fn peek(&self) -> Option<char> {
        self.chars.get(self.i).copied()
    }

    fn peek_at(&self, k: usize) -> Option<char> {
        self.chars.get(self.i + k).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.i += 1;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }
}

fn is_ident_start(c: char) -> bool {
    c == '_' || c.is_alphabetic()
}

fn is_ident_continue(c: char) -> bool {
    c == '_' || c.is_alphanumeric()
}

/// Lexes `src` into tokens and comments. Malformed input (an unterminated
/// string, say) never panics — the lexer consumes to end of file and
/// returns what it saw, which is the right behavior for a linter that
/// must not die on the file it is diagnosing.
pub fn lex(src: &str) -> Lexed {
    let mut cur = Cursor {
        chars: src.chars().collect(),
        i: 0,
        line: 1,
        col: 1,
    };
    let mut out = Lexed::default();

    while let Some(c) = cur.peek() {
        let (line, col) = (cur.line, cur.col);
        if c.is_whitespace() {
            cur.bump();
            continue;
        }

        // Comments.
        if c == '/' && cur.peek_at(1) == Some('/') {
            cur.bump();
            cur.bump();
            let mut text = String::new();
            while let Some(ch) = cur.peek() {
                if ch == '\n' {
                    break;
                }
                text.push(ch);
                cur.bump();
            }
            out.comments.push(Comment { text, line });
            continue;
        }
        if c == '/' && cur.peek_at(1) == Some('*') {
            cur.bump();
            cur.bump();
            let mut depth = 1usize;
            let mut text = String::new();
            while depth > 0 {
                match (cur.peek(), cur.peek_at(1)) {
                    (Some('/'), Some('*')) => {
                        depth += 1;
                        cur.bump();
                        cur.bump();
                        text.push_str("/*");
                    }
                    (Some('*'), Some('/')) => {
                        depth -= 1;
                        cur.bump();
                        cur.bump();
                        if depth > 0 {
                            text.push_str("*/");
                        }
                    }
                    (Some(ch), _) => {
                        text.push(ch);
                        cur.bump();
                    }
                    (None, _) => break, // unterminated: consume to EOF
                }
            }
            out.comments.push(Comment { text, line });
            continue;
        }

        // Raw strings / raw identifiers: r"..." r#"..."# r#ident
        if c == 'r' {
            let mut hashes = 0usize;
            while cur.peek_at(1 + hashes) == Some('#') {
                hashes += 1;
            }
            if cur.peek_at(1 + hashes) == Some('"') {
                for _ in 0..1 + hashes + 1 {
                    cur.bump();
                }
                consume_raw_string_body(&mut cur, hashes);
                out.tokens.push(Token {
                    kind: TokKind::Str,
                    text: String::new(),
                    line,
                    col,
                });
                continue;
            }
            if hashes == 1 && cur.peek_at(2).is_some_and(is_ident_start) {
                cur.bump(); // r
                cur.bump(); // #
                let text = consume_ident(&mut cur);
                out.tokens.push(Token {
                    kind: TokKind::Ident,
                    text,
                    line,
                    col,
                });
                continue;
            }
        }

        // Byte strings and byte chars: b"..." br#"..."# b'x'
        if c == 'b' {
            if cur.peek_at(1) == Some('"') {
                cur.bump();
                cur.bump();
                consume_string_body(&mut cur);
                out.tokens.push(Token {
                    kind: TokKind::Str,
                    text: String::new(),
                    line,
                    col,
                });
                continue;
            }
            if cur.peek_at(1) == Some('r') {
                let mut hashes = 0usize;
                while cur.peek_at(2 + hashes) == Some('#') {
                    hashes += 1;
                }
                if cur.peek_at(2 + hashes) == Some('"') {
                    for _ in 0..2 + hashes + 1 {
                        cur.bump();
                    }
                    consume_raw_string_body(&mut cur, hashes);
                    out.tokens.push(Token {
                        kind: TokKind::Str,
                        text: String::new(),
                        line,
                        col,
                    });
                    continue;
                }
            }
            if cur.peek_at(1) == Some('\'') {
                cur.bump(); // b
                cur.bump(); // '
                consume_char_body(&mut cur);
                out.tokens.push(Token {
                    kind: TokKind::Char,
                    text: String::new(),
                    line,
                    col,
                });
                continue;
            }
        }

        // Plain strings.
        if c == '"' {
            cur.bump();
            consume_string_body(&mut cur);
            out.tokens.push(Token {
                kind: TokKind::Str,
                text: String::new(),
                line,
                col,
            });
            continue;
        }

        // Char literal vs lifetime.
        if c == '\'' {
            cur.bump();
            match cur.peek() {
                Some('\\') => {
                    consume_char_body(&mut cur);
                    out.tokens.push(Token {
                        kind: TokKind::Char,
                        text: String::new(),
                        line,
                        col,
                    });
                }
                Some(ch) if is_ident_start(ch) && cur.peek_at(1) != Some('\'') => {
                    // `'a` in `<'a>` or `&'static` — a lifetime.
                    let text = consume_ident(&mut cur);
                    out.tokens.push(Token {
                        kind: TokKind::Lifetime,
                        text,
                        line,
                        col,
                    });
                }
                Some(_) => {
                    consume_char_body(&mut cur);
                    out.tokens.push(Token {
                        kind: TokKind::Char,
                        text: String::new(),
                        line,
                        col,
                    });
                }
                None => {}
            }
            continue;
        }

        // Identifiers and keywords.
        if is_ident_start(c) {
            let text = consume_ident(&mut cur);
            out.tokens.push(Token {
                kind: TokKind::Ident,
                text,
                line,
                col,
            });
            continue;
        }

        // Numbers (loose: enough to step over any valid literal).
        if c.is_ascii_digit() {
            cur.bump();
            loop {
                match cur.peek() {
                    Some(ch) if is_ident_continue(ch) => {
                        let exp = ch == 'e' || ch == 'E';
                        cur.bump();
                        // exponent sign: 1e-3, 2.5E+10
                        if exp && matches!(cur.peek(), Some('+') | Some('-'))
                            && cur.peek_at(1).is_some_and(|d| d.is_ascii_digit())
                        {
                            cur.bump();
                        }
                    }
                    // A `.` continues the number only for `1.5`, not `0..n`
                    // (range) or `1.pow()` (method call on a literal).
                    Some('.') if cur.peek_at(1).is_some_and(|d| d.is_ascii_digit()) => {
                        cur.bump();
                    }
                    _ => break,
                }
            }
            out.tokens.push(Token {
                kind: TokKind::Num,
                text: String::new(),
                line,
                col,
            });
            continue;
        }

        // Everything else: one punctuation char.
        cur.bump();
        out.tokens.push(Token {
            kind: TokKind::Punct(c),
            text: String::new(),
            line,
            col,
        });
    }

    out
}

fn consume_ident(cur: &mut Cursor) -> String {
    let mut text = String::new();
    while let Some(ch) = cur.peek() {
        if !is_ident_continue(ch) {
            break;
        }
        text.push(ch);
        cur.bump();
    }
    text
}

fn consume_string_body(cur: &mut Cursor) {
    while let Some(ch) = cur.bump() {
        match ch {
            '\\' => {
                cur.bump(); // the escaped char, whatever it is
            }
            '"' => break,
            _ => {}
        }
    }
}

fn consume_raw_string_body(cur: &mut Cursor, hashes: usize) {
    'outer: while let Some(ch) = cur.bump() {
        if ch == '"' {
            for k in 0..hashes {
                if cur.peek_at(k) != Some('#') {
                    continue 'outer;
                }
            }
            for _ in 0..hashes {
                cur.bump();
            }
            break;
        }
    }
}

fn consume_char_body(cur: &mut Cursor) {
    // Called with the cursor just past the opening `'`; handles escapes
    // (`'\n'`, `'\u{7fff}'`) by skipping the char after each backslash.
    while let Some(ch) = cur.bump() {
        match ch {
            '\\' => {
                cur.bump();
            }
            '\'' => break,
            _ => {}
        }
    }
}

/// Removes test-gated items from the token stream: any item annotated
/// `#[test]` or `#[cfg(... test ...)]` (but not `#[cfg(not(test))]`,
/// which gates production code) is dropped along with its attributes and
/// body. Rules therefore apply to non-test code only — tests may
/// `unwrap()` and spawn threads freely.
pub fn strip_test_items(tokens: &[Token]) -> Vec<Token> {
    let mut out = Vec::with_capacity(tokens.len());
    let mut i = 0;
    while i < tokens.len() {
        if tokens[i].is_punct('#') && tokens.get(i + 1).is_some_and(|t| t.is_punct('[')) {
            let end = attr_end(tokens, i);
            if attr_is_test_gate(&tokens[i + 2..end.saturating_sub(1)]) {
                let mut j = end;
                // Further attributes on the same item ride along.
                while j < tokens.len()
                    && tokens[j].is_punct('#')
                    && tokens.get(j + 1).is_some_and(|t| t.is_punct('['))
                {
                    j = attr_end(tokens, j);
                }
                // Skip the item: through the matching `}` of its first
                // top-level brace, or to a `;` for braceless items.
                let mut depth = 0i64;
                while j < tokens.len() {
                    match tokens[j].kind {
                        TokKind::Punct('{') => depth += 1,
                        TokKind::Punct('}') => {
                            depth -= 1;
                            if depth <= 0 {
                                j += 1;
                                break;
                            }
                        }
                        TokKind::Punct(';') if depth == 0 => {
                            j += 1;
                            break;
                        }
                        _ => {}
                    }
                    j += 1;
                }
                i = j;
                continue;
            }
            out.extend_from_slice(&tokens[i..end]);
            i = end;
            continue;
        }
        out.push(tokens[i].clone());
        i += 1;
    }
    out
}

/// Index just past the closing `]` of the attribute starting at `i`
/// (which must point at `#`).
fn attr_end(tokens: &[Token], i: usize) -> usize {
    let mut depth = 0i64;
    let mut j = i + 1;
    while j < tokens.len() {
        match tokens[j].kind {
            TokKind::Punct('[') => depth += 1,
            TokKind::Punct(']') => {
                depth -= 1;
                if depth == 0 {
                    return j + 1;
                }
            }
            _ => {}
        }
        j += 1;
    }
    tokens.len()
}

fn attr_is_test_gate(body: &[Token]) -> bool {
    // `#[test]` exactly.
    if body.len() == 1 && body[0].is_ident("test") {
        return true;
    }
    // `#[cfg(...)]` mentioning `test` — but `not(test)` gates *non*-test
    // code, so any `not` makes us keep the item (conservative).
    if body.first().is_some_and(|t| t.is_ident("cfg")) {
        let has_test = body.iter().any(|t| t.is_ident("test"));
        let has_not = body.iter().any(|t| t.is_ident("not"));
        return has_test && !has_not;
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn comments_are_kept_out_of_the_token_stream() {
        let l = lex("let x = 1; // env::var in a comment\n/* block env::var */ let y;");
        assert!(l.tokens.iter().all(|t| !t.is_ident("env")));
        assert_eq!(l.comments.len(), 2);
        assert!(l.comments[0].text.contains("env::var"));
        assert_eq!(l.comments[0].line, 1);
    }

    #[test]
    fn nested_block_comments_terminate_correctly() {
        let l = lex("/* outer /* inner */ still comment */ fn after() {}");
        assert_eq!(l.comments.len(), 1);
        assert!(l.comments[0].text.contains("inner"));
        assert_eq!(idents("/* /* */ */ real"), ["real"]);
        assert!(l.tokens.iter().any(|t| t.is_ident("after")));
    }

    #[test]
    fn strings_hide_their_contents() {
        let src = r#"call("std::env::var", "quote \" inside", 'x')"#;
        let ids = idents(src);
        assert_eq!(ids, ["call"], "string/char contents must not tokenize");
        let l = lex(src);
        assert_eq!(
            l.tokens.iter().filter(|t| t.kind == TokKind::Str).count(),
            2
        );
        assert_eq!(
            l.tokens.iter().filter(|t| t.kind == TokKind::Char).count(),
            1
        );
    }

    #[test]
    fn raw_and_byte_strings_lex_as_one_token() {
        let src = "a(r\"x\", r#\"has \"quotes\" inside\"#, br##\"double\"# hash\"##, b\"bytes\")";
        let l = lex(src);
        assert_eq!(idents(src), ["a"]);
        assert_eq!(
            l.tokens.iter().filter(|t| t.kind == TokKind::Str).count(),
            4
        );
    }

    #[test]
    fn raw_identifiers_and_lifetimes() {
        let l = lex("fn f<'a>(x: &'a r#type) -> char { 'b' }");
        assert!(l.tokens.iter().any(|t| t.is_ident("type")), "r#type");
        assert_eq!(
            l.tokens
                .iter()
                .filter(|t| t.kind == TokKind::Lifetime)
                .count(),
            2
        );
        assert_eq!(
            l.tokens.iter().filter(|t| t.kind == TokKind::Char).count(),
            1,
            "'b' is a char, not a lifetime"
        );
    }

    #[test]
    fn nested_generics_produce_matched_angle_punct() {
        let src = "let m: Mutex<HashMap<ThreadId, u64>> = x;";
        let l = lex(src);
        let open = l.tokens.iter().filter(|t| t.is_punct('<')).count();
        let close = l.tokens.iter().filter(|t| t.is_punct('>')).count();
        assert_eq!((open, close), (2, 2), "`>>` must lex as two `>` tokens");
        assert!(l.tokens.iter().any(|t| t.is_ident("HashMap")));
    }

    #[test]
    fn numbers_do_not_swallow_ranges_or_methods() {
        let l = lex("for i in 0..10 { x = 1.5e-3 + 0xff + 1_000; }");
        let nums = l.tokens.iter().filter(|t| t.kind == TokKind::Num).count();
        assert_eq!(nums, 5, "0, 10, 1.5e-3, 0xff, 1_000");
        assert!(l.tokens.iter().filter(|t| t.is_punct('.')).count() == 2, "range dots survive");
    }

    #[test]
    fn positions_are_one_based_lines_and_cols() {
        let l = lex("ab\n  cd");
        assert_eq!((l.tokens[0].line, l.tokens[0].col), (1, 1));
        assert_eq!((l.tokens[1].line, l.tokens[1].col), (2, 3));
    }

    #[test]
    fn cfg_test_items_are_stripped() {
        let src = r#"
            fn keep() { env_read(); }
            #[cfg(test)]
            mod tests {
                fn inner() { std::env::var("X"); }
            }
            #[test]
            fn a_test() { thread_spawn(); }
            #[cfg(not(test))]
            fn prod_only() { kept_too(); }
            fn also_keep() {}
        "#;
        let l = lex(src);
        let stripped = strip_test_items(&l.tokens);
        let names: Vec<&str> = stripped
            .iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text.as_str())
            .collect();
        assert!(names.contains(&"keep"));
        assert!(names.contains(&"also_keep"));
        assert!(names.contains(&"prod_only"), "cfg(not(test)) is production");
        assert!(names.contains(&"kept_too"));
        assert!(!names.contains(&"inner"), "cfg(test) mod dropped");
        assert!(!names.contains(&"a_test"), "#[test] fn dropped");
        assert!(!names.contains(&"var"));
    }

    #[test]
    fn strip_handles_semicolon_items_and_extra_attrs() {
        let src = r#"
            #[cfg(test)]
            use crate::test_helpers::Thing;
            #[test]
            #[should_panic]
            fn boom() { let _ = span(); }
            fn keep() {}
        "#;
        let stripped = strip_test_items(&lex(src).tokens);
        let names: Vec<&str> = stripped
            .iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text.as_str())
            .collect();
        // keywords lex as plain idents, so `fn` survives the filter
        assert_eq!(names, ["fn", "keep"]);
    }
}
