//! Makespan queries: translate an abstract per-step op graph into the
//! discrete-event [`engine`](crate::engine) under a set of
//! [`CostConstants`] and ask how long the step takes.
//!
//! This is the bridge the autotuner drives: the runtime layer describes
//! one training step as a [`StepPlan`] — kernels, host copies, collective
//! payloads, and their dependencies — once per candidate configuration,
//! and [`StepPlan::makespan`] prices it under trace-fitted (or
//! paper-calibrated) constants. Stream gating is part of the plan:
//! with `copy_async`/`comm_async` off, the corresponding transfers run
//! inline on the compute stream and serialize with kernels, exactly like
//! the real runtime's inline fallback; with them on, transfers ride their
//! own stream and the engine resolves how much of their wire time hides
//! behind compute.

use crate::cost::CostConstants;
use crate::engine::{Engine, Work};
use crate::{Result, SimError};

/// What one planned op costs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PlannedWork {
    /// An attention-rate kernel of this many floating-point ops (priced
    /// at `kernel_overhead + flops / attention_flops`).
    Kernel {
        /// Floating-point operations in the kernel.
        flops: f64,
    },
    /// A fixed measured duration (e.g. the non-attention residue of a
    /// probe step), seconds.
    Fixed {
        /// Duration in seconds.
        seconds: f64,
    },
    /// A host↔device copy of this many wire bytes (priced at `pcie_bw`
    /// with one `link_latency` preamble).
    Copy {
        /// Payload size in bytes.
        bytes: u64,
    },
    /// A collective payload of this many wire bytes (priced at
    /// `nvlink_bw` with one `link_latency` preamble).
    Comm {
        /// Payload size in bytes.
        bytes: u64,
    },
}

/// One op of a [`StepPlan`].
#[derive(Debug, Clone)]
pub struct PlannedOp {
    /// Display label (becomes the engine task name).
    pub label: String,
    /// The op's cost.
    pub work: PlannedWork,
    /// Indices of earlier ops that must finish first.
    pub deps: Vec<usize>,
}

/// An abstract training step: ops plus the stream gating to price them
/// under.
#[derive(Debug, Clone)]
pub struct StepPlan {
    /// The ops, in submission order (FIFO within each stream).
    pub ops: Vec<PlannedOp>,
    /// Copies ride a dedicated copy stream (`false` = inline on compute).
    pub copy_async: bool,
    /// Collectives ride a dedicated comm stream (`false` = inline).
    pub comm_async: bool,
}

impl StepPlan {
    /// An empty plan with the given stream gating.
    pub fn new(copy_async: bool, comm_async: bool) -> Self {
        StepPlan {
            ops: Vec::new(),
            copy_async,
            comm_async,
        }
    }

    /// Appends an op depending on the listed earlier ops, returning its
    /// index for later `deps` references.
    pub fn push(&mut self, label: &str, work: PlannedWork, deps: &[usize]) -> usize {
        self.ops.push(PlannedOp {
            label: label.to_string(),
            work,
            deps: deps.to_vec(),
        });
        self.ops.len() - 1
    }

    /// Prices the plan under `constants` and returns the step makespan in
    /// seconds.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] when an op depends on a later
    /// or unknown op, and propagates engine failures (e.g. dependency
    /// cycles) unchanged.
    pub fn makespan(&self, constants: &CostConstants) -> Result<f64> {
        let mut eng = Engine::new();
        let compute = eng.add_stream("compute");
        let copy_stream = if self.copy_async {
            eng.add_stream("copy")
        } else {
            compute
        };
        let comm_stream = if self.comm_async {
            eng.add_stream("comm")
        } else {
            compute
        };
        // Each stream gets its own pipe: the runtime's simulated wire
        // (`fpdt_trace::wire`) sleeps per transfer without cross-stream
        // contention, so fair-sharing one resource would be wrong here.
        let pcie = eng.add_resource("pcie", constants.pcie_bw, constants.link_latency);
        let wire = eng.add_resource("wire", constants.nvlink_bw, constants.link_latency);

        let mut ids = Vec::with_capacity(self.ops.len());
        for (i, op) in self.ops.iter().enumerate() {
            let (stream, work) = match op.work {
                PlannedWork::Kernel { flops } => (
                    compute,
                    Work::Compute {
                        seconds: constants.kernel_overhead + flops / constants.attention_flops,
                    },
                ),
                PlannedWork::Fixed { seconds } => (compute, Work::Compute { seconds }),
                PlannedWork::Copy { bytes } => (copy_stream, Work::Transfer { bytes, resource: pcie }),
                PlannedWork::Comm { bytes } => (comm_stream, Work::Transfer { bytes, resource: wire }),
            };
            let mut builder = eng.task(&op.label, stream, work);
            for &d in &op.deps {
                if d >= i {
                    return Err(SimError::InvalidConfig {
                        what: format!("op {i} depends on later op {d}"),
                    });
                }
                builder.deps(&[ids[d]]);
            }
            ids.push(builder.submit()?);
        }
        Ok(eng.run()?.makespan)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hw::ClusterSpec;

    fn constants() -> CostConstants {
        CostConstants {
            gemm_flops: 1e12,
            attention_flops: 1e12,
            kernel_overhead: 0.0,
            nvlink_bw: 1e9,
            pcie_bw: 1e9,
            ib_bw: 1e9,
            link_latency: 0.0,
        }
    }

    #[test]
    fn serial_plan_sums_and_async_plan_overlaps() {
        // One 1s kernel plus a 1 GB copy (1s at 1 GB/s), no dependency.
        let build = |copy_async: bool| {
            let mut plan = StepPlan::new(copy_async, false);
            plan.push("fetch", PlannedWork::Copy { bytes: 1_000_000_000 }, &[]);
            plan.push("attn", PlannedWork::Kernel { flops: 1e12 }, &[]);
            plan
        };
        let serial = build(false).makespan(&constants()).unwrap();
        let overlapped = build(true).makespan(&constants()).unwrap();
        assert!((serial - 2.0).abs() < 1e-9, "serial {serial}");
        assert!((overlapped - 1.0).abs() < 1e-9, "overlapped {overlapped}");
    }

    #[test]
    fn dependencies_serialize_across_streams() {
        let mut plan = StepPlan::new(true, true);
        let fetch = plan.push("fetch", PlannedWork::Copy { bytes: 500_000_000 }, &[]);
        let attn = plan.push("attn", PlannedWork::Kernel { flops: 1e12 }, &[fetch]);
        plan.push("a2a", PlannedWork::Comm { bytes: 250_000_000 }, &[attn]);
        let t = plan.makespan(&constants()).unwrap();
        assert!((t - 1.75).abs() < 1e-9, "chain {t}");
    }

    #[test]
    fn fixed_ops_price_verbatim_and_bad_deps_error() {
        let mut plan = StepPlan::new(false, false);
        plan.push("lump", PlannedWork::Fixed { seconds: 0.25 }, &[]);
        assert!((plan.makespan(&constants()).unwrap() - 0.25).abs() < 1e-12);

        let mut bad = StepPlan::new(false, false);
        bad.ops.push(PlannedOp {
            label: "self".into(),
            work: PlannedWork::Fixed { seconds: 1.0 },
            deps: vec![0],
        });
        assert!(bad.makespan(&constants()).is_err());
    }

    #[test]
    fn paper_constants_price_a_plausible_step() {
        let c = crate::cost::CostConstants::from_cluster(&ClusterSpec::a100_80g(1, 4));
        let mut plan = StepPlan::new(true, true);
        for i in 0..4 {
            let fetch = plan.push("fetch", PlannedWork::Copy { bytes: 1 << 26 }, &[]);
            let a2a = plan.push("a2a", PlannedWork::Comm { bytes: 1 << 24 }, &[]);
            let _ = i;
            plan.push("attn", PlannedWork::Kernel { flops: 1e12 }, &[fetch, a2a]);
        }
        let t = plan.makespan(&c).unwrap();
        assert!(t > 0.0 && t.is_finite());
        // Four ~5.6ms kernels dominate the pipelined copies.
        assert!(t < 0.1, "step {t}");
    }
}
