//! Memory pools: byte-exact allocation tracking with timelines.
//!
//! Each simulated device gets an HBM pool (and each node a host-DRAM
//! pool); schedule tasks allocate/free against them. Peaks answer "does
//! this configuration fit?" (Table 1, Table 3) and timelines draw the
//! backward-pass footprint of paper Figure 13.

use crate::{Result, SimError};

/// Identifies a pool within a [`PoolSet`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PoolId(pub(crate) usize);

/// One allocation or free, timestamped.
#[derive(Debug, Clone, PartialEq)]
pub struct TimelineEvent {
    /// Simulation time, seconds.
    pub time: f64,
    /// Signed byte delta (positive = alloc).
    pub delta: i64,
    /// Label of the allocation ("kv_chunk", "ffn_act", ...). Frees carry
    /// an empty label.
    pub label: String,
    /// Pool usage immediately after this event.
    pub usage: u64,
}

#[derive(Debug, Clone, Default)]
struct Pool {
    name: String,
    capacity: Option<u64>,
    current: u64,
    peak: u64,
    timeline: Vec<TimelineEvent>,
}

/// A set of named memory pools.
#[derive(Debug, Clone, Default)]
pub struct PoolSet {
    pools: Vec<Pool>,
}

impl PoolSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a pool. `capacity` is advisory: exceeding it is *recorded*
    /// (so planners can detect OOM) rather than an error — matching how
    /// the paper reports "OOM" as an experimental outcome.
    pub fn add_pool(&mut self, name: &str, capacity: Option<u64>) -> PoolId {
        self.pools.push(Pool {
            name: name.to_string(),
            capacity,
            ..Pool::default()
        });
        PoolId(self.pools.len() - 1)
    }

    /// Whether `id` belongs to this set.
    pub fn contains(&self, id: PoolId) -> bool {
        id.0 < self.pools.len()
    }

    /// A copy with identical pool definitions but zeroed usage/timelines.
    pub fn clone_reset(&self) -> Self {
        PoolSet {
            pools: self
                .pools
                .iter()
                .map(|p| Pool {
                    name: p.name.clone(),
                    capacity: p.capacity,
                    ..Pool::default()
                })
                .collect(),
        }
    }

    /// Records an allocation.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownId`] for a bad pool id.
    pub fn alloc(&mut self, id: PoolId, bytes: u64, label: &str, time: f64) -> Result<()> {
        let p = self.pools.get_mut(id.0).ok_or(SimError::UnknownId {
            kind: "pool",
            id: id.0,
        })?;
        p.current += bytes;
        p.peak = p.peak.max(p.current);
        p.timeline.push(TimelineEvent {
            time,
            delta: bytes as i64,
            label: label.to_string(),
            usage: p.current,
        });
        Ok(())
    }

    /// Records a free.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownId`] for a bad pool id and
    /// [`SimError::NegativeUsage`] when more bytes are freed than live.
    pub fn free(&mut self, id: PoolId, bytes: u64, time: f64) -> Result<()> {
        let p = self.pools.get_mut(id.0).ok_or(SimError::UnknownId {
            kind: "pool",
            id: id.0,
        })?;
        if bytes > p.current {
            return Err(SimError::NegativeUsage {
                pool: p.name.clone(),
                at: time,
            });
        }
        p.current -= bytes;
        p.timeline.push(TimelineEvent {
            time,
            delta: -(bytes as i64),
            label: String::new(),
            usage: p.current,
        });
        Ok(())
    }

    /// Peak usage of a pool in bytes.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownId`] for a bad pool id.
    pub fn peak(&self, id: PoolId) -> Result<u64> {
        self.pools
            .get(id.0)
            .map(|p| p.peak)
            .ok_or(SimError::UnknownId {
                kind: "pool",
                id: id.0,
            })
    }

    /// Current (end-of-run) usage of a pool in bytes.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownId`] for a bad pool id.
    pub fn current(&self, id: PoolId) -> Result<u64> {
        self.pools
            .get(id.0)
            .map(|p| p.current)
            .ok_or(SimError::UnknownId {
                kind: "pool",
                id: id.0,
            })
    }

    /// Whether the recorded peak exceeded the pool's capacity (OOM).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownId`] for a bad pool id.
    pub fn oom(&self, id: PoolId) -> Result<bool> {
        self.pools
            .get(id.0)
            .map(|p| p.capacity.is_some_and(|c| p.peak > c))
            .ok_or(SimError::UnknownId {
                kind: "pool",
                id: id.0,
            })
    }

    /// Full event timeline of a pool.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownId`] for a bad pool id.
    pub fn timeline(&self, id: PoolId) -> Result<&[TimelineEvent]> {
        self.pools
            .get(id.0)
            .map(|p| p.timeline.as_slice())
            .ok_or(SimError::UnknownId {
                kind: "pool",
                id: id.0,
            })
    }

    /// Usage sampled at `n` evenly spaced instants across `[0, horizon]` —
    /// the series the Figure-13 plot prints.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownId`] for a bad pool id.
    pub fn sampled(&self, id: PoolId, horizon: f64, n: usize) -> Result<Vec<(f64, u64)>> {
        let tl = self.timeline(id)?;
        let mut out = Vec::with_capacity(n);
        let mut idx = 0usize;
        let mut usage = 0u64;
        for i in 0..n {
            let t = if n > 1 {
                horizon * i as f64 / (n - 1) as f64
            } else {
                horizon
            };
            while idx < tl.len() && tl[idx].time <= t {
                usage = tl[idx].usage;
                idx += 1;
            }
            out.push((t, usage));
        }
        Ok(out)
    }

    /// Pool name for diagnostics.
    pub fn name(&self, id: PoolId) -> Option<&str> {
        self.pools.get(id.0).map(|p| p.name.as_str())
    }

    /// All pool ids in registration order, for trace/metric exporters that
    /// walk every pool.
    pub fn ids(&self) -> Vec<PoolId> {
        (0..self.pools.len()).map(PoolId).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peak_tracks_high_water_mark() {
        let mut ps = PoolSet::new();
        let p = ps.add_pool("hbm", Some(100));
        ps.alloc(p, 40, "a", 0.0).unwrap();
        ps.alloc(p, 50, "b", 1.0).unwrap();
        ps.free(p, 40, 2.0).unwrap();
        ps.alloc(p, 10, "c", 3.0).unwrap();
        assert_eq!(ps.peak(p).unwrap(), 90);
        assert_eq!(ps.current(p).unwrap(), 60);
        assert!(!ps.oom(p).unwrap());
    }

    #[test]
    fn oom_flag_when_over_capacity() {
        let mut ps = PoolSet::new();
        let p = ps.add_pool("hbm", Some(50));
        ps.alloc(p, 60, "too big", 0.0).unwrap();
        assert!(ps.oom(p).unwrap());
        // unbounded pool never OOMs
        let q = ps.add_pool("host", None);
        ps.alloc(q, u64::MAX / 2, "huge", 0.0).unwrap();
        assert!(!ps.oom(q).unwrap());
    }

    #[test]
    fn negative_usage_is_an_error() {
        let mut ps = PoolSet::new();
        let p = ps.add_pool("hbm", None);
        ps.alloc(p, 10, "x", 0.0).unwrap();
        assert!(matches!(
            ps.free(p, 11, 1.0),
            Err(SimError::NegativeUsage { .. })
        ));
    }

    #[test]
    fn unknown_pool_errors() {
        let mut ps = PoolSet::new();
        assert!(!ps.contains(PoolId(0)));
        assert!(ps.alloc(PoolId(0), 1, "x", 0.0).is_err());
        assert!(ps.peak(PoolId(0)).is_err());
        assert!(ps.timeline(PoolId(0)).is_err());
        assert_eq!(ps.name(PoolId(0)), None);
    }

    #[test]
    fn timeline_and_sampling() {
        let mut ps = PoolSet::new();
        let p = ps.add_pool("hbm", None);
        ps.alloc(p, 100, "a", 1.0).unwrap();
        ps.free(p, 100, 3.0).unwrap();
        let tl = ps.timeline(p).unwrap();
        assert_eq!(tl.len(), 2);
        assert_eq!(tl[0].usage, 100);
        assert_eq!(tl[1].usage, 0);
        let samples = ps.sampled(p, 4.0, 5).unwrap(); // t = 0,1,2,3,4
        assert_eq!(
            samples.iter().map(|&(_, u)| u).collect::<Vec<_>>(),
            vec![0, 100, 100, 0, 0]
        );
    }

    #[test]
    fn clone_reset_keeps_definitions() {
        let mut ps = PoolSet::new();
        let p = ps.add_pool("hbm", Some(10));
        ps.alloc(p, 5, "x", 0.0).unwrap();
        let fresh = ps.clone_reset();
        assert_eq!(fresh.peak(p).unwrap(), 0);
        assert_eq!(fresh.name(p), Some("hbm"));
    }
}
