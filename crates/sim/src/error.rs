use std::error::Error;
use std::fmt;

/// Errors raised by the simulator.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// A task references an id the engine has not issued.
    UnknownId {
        /// Which kind of id ("task", "stream", "resource", "pool").
        kind: &'static str,
        /// The offending index.
        id: usize,
    },
    /// The dependency graph contains a cycle; the run cannot complete.
    DependencyCycle {
        /// Number of tasks left unscheduled when progress stopped.
        stuck: usize,
    },
    /// A task freed more bytes from a pool than were allocated.
    NegativeUsage {
        /// Pool name.
        pool: String,
        /// Simulation time of the violation.
        at: f64,
    },
    /// A configuration value is invalid (e.g. zero bandwidth).
    InvalidConfig {
        /// What was wrong.
        what: String,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::UnknownId { kind, id } => write!(f, "unknown {kind} id {id}"),
            SimError::DependencyCycle { stuck } => {
                write!(f, "dependency cycle: {stuck} tasks never became ready")
            }
            SimError::NegativeUsage { pool, at } => {
                write!(f, "pool {pool} usage went negative at t={at:.6}s")
            }
            SimError::InvalidConfig { what } => write!(f, "invalid configuration: {what}"),
        }
    }
}

impl Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_nonempty() {
        for e in [
            SimError::UnknownId {
                kind: "task",
                id: 3,
            },
            SimError::DependencyCycle { stuck: 2 },
            SimError::NegativeUsage {
                pool: "hbm0".into(),
                at: 1.5,
            },
            SimError::InvalidConfig {
                what: "zero bandwidth".into(),
            },
        ] {
            assert!(!e.to_string().is_empty());
        }
    }
}
