//! Closed-form duration estimates for kernels, collectives and transfers
//! on a [`ClusterSpec`].
//!
//! These are the per-task durations the strategy schedulers feed into the
//! event engine. The constants come from `hw`; none of the *shapes* the
//! paper reports (e.g. the 32-64K chunk-size crossover of Figure 10) are
//! hard-coded — they emerge from FLOPs vs bytes arithmetic.

use crate::hw::ClusterSpec;
use serde::Serialize;
use serde_json::Value;

/// The scalar rate/overhead constants every closed-form estimate reads,
/// decoupled from the topology they were derived from.
///
/// Two producers share this one struct (and therefore one code path
/// through [`CostModel`]): [`CostConstants::from_cluster`] derives the
/// paper-calibrated testbed values from a [`ClusterSpec`], and the
/// trace-fitting layer in `fpdt-trace`/`fpdt-core` fills the same fields
/// from measured runtime spans. [`CostConstants::to_json`] /
/// [`CostConstants::from_json`] round-trip the struct through the
/// `calibration.json` artifact so a fitted model is reusable across runs.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct CostConstants {
    /// Effective GEMM throughput, FLOP/s.
    pub gemm_flops: f64,
    /// Effective fused-attention throughput, FLOP/s.
    pub attention_flops: f64,
    /// Fixed launch/scheduling overhead per kernel, seconds.
    pub kernel_overhead: f64,
    /// Intra-node peer (NVLink) bandwidth, bytes/s. Trace fitting maps the
    /// measured communication-stream rate here.
    pub nvlink_bw: f64,
    /// Host↔device (PCIe) bandwidth, bytes/s. Trace fitting maps the
    /// measured offload copy-stream rate here.
    pub pcie_bw: f64,
    /// Inter-node (InfiniBand) bandwidth per GPU, bytes/s.
    pub ib_bw: f64,
    /// Per-message link latency, seconds.
    pub link_latency: f64,
}

impl CostConstants {
    /// The paper-calibrated constants of a cluster specification — exactly
    /// the numbers [`CostModel::new`] used before constants became
    /// pluggable, so schedules built from a spec are unchanged.
    pub fn from_cluster(cluster: &ClusterSpec) -> Self {
        let node = &cluster.node;
        CostConstants {
            gemm_flops: node.gpu.gemm_flops(),
            attention_flops: node.gpu.attention_flops(),
            kernel_overhead: node.gpu.kernel_overhead,
            nvlink_bw: node.nvlink_bw,
            pcie_bw: node.pcie_bw,
            ib_bw: cluster.ib_bw,
            link_latency: node.link_latency,
        }
    }

    /// Serializes the constants as pretty JSON (the `calibration.json`
    /// payload).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("constants serialize")
    }

    /// Parses constants back from [`CostConstants::to_json`] output.
    ///
    /// # Errors
    ///
    /// Returns a description of the first syntax error, missing field, or
    /// non-finite/non-positive rate.
    pub fn from_json(text: &str) -> Result<Self, String> {
        let value = serde_json::from_str(text).map_err(|e| e.to_string())?;
        Self::from_value(&value)
    }

    /// Extracts constants from an already-parsed JSON object (used by
    /// consumers embedding them in a larger document).
    ///
    /// # Errors
    ///
    /// Same conditions as [`CostConstants::from_json`].
    pub fn from_value(value: &Value) -> Result<Self, String> {
        let field = |name: &str| -> Result<f64, String> {
            let Value::Object(entries) = value else {
                return Err("cost constants must be a JSON object".to_string());
            };
            let v = entries
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| v)
                .ok_or_else(|| format!("missing field `{name}`"))?;
            let x = match v {
                Value::Float(x) => *x,
                Value::UInt(u) => *u as f64,
                Value::Int(i) => *i as f64,
                _ => return Err(format!("field `{name}` is not a number")),
            };
            if !x.is_finite() || x < 0.0 {
                return Err(format!("field `{name}` must be finite and >= 0"));
            }
            Ok(x)
        };
        let c = CostConstants {
            gemm_flops: field("gemm_flops")?,
            attention_flops: field("attention_flops")?,
            kernel_overhead: field("kernel_overhead")?,
            nvlink_bw: field("nvlink_bw")?,
            pcie_bw: field("pcie_bw")?,
            ib_bw: field("ib_bw")?,
            link_latency: field("link_latency")?,
        };
        for (name, rate) in [
            ("gemm_flops", c.gemm_flops),
            ("attention_flops", c.attention_flops),
            ("nvlink_bw", c.nvlink_bw),
            ("pcie_bw", c.pcie_bw),
            ("ib_bw", c.ib_bw),
        ] {
            if rate <= 0.0 {
                return Err(format!("rate `{name}` must be > 0"));
            }
        }
        Ok(c)
    }
}

/// Analytic cost model over a cluster: topology from the [`ClusterSpec`],
/// rates and overheads from a pluggable [`CostConstants`].
#[derive(Debug, Clone)]
pub struct CostModel {
    cluster: ClusterSpec,
    constants: CostConstants,
}

impl CostModel {
    /// Wraps a cluster specification with its own paper-calibrated
    /// constants ([`CostConstants::from_cluster`]).
    pub fn new(cluster: ClusterSpec) -> Self {
        let constants = CostConstants::from_cluster(&cluster);
        CostModel { cluster, constants }
    }

    /// Wraps a cluster specification with externally supplied (e.g.
    /// trace-fitted) constants.
    pub fn with_constants(cluster: ClusterSpec, constants: CostConstants) -> Self {
        CostModel { cluster, constants }
    }

    /// The wrapped cluster.
    pub fn cluster(&self) -> &ClusterSpec {
        &self.cluster
    }

    /// The constants every estimate reads.
    pub fn constants(&self) -> &CostConstants {
        &self.constants
    }

    /// Duration of a GEMM-shaped kernel of `flops` floating-point ops.
    pub fn gemm_time(&self, flops: f64) -> f64 {
        self.constants.kernel_overhead + flops / self.constants.gemm_flops
    }

    /// Duration of a fused attention kernel of `flops` ops.
    pub fn attention_time(&self, flops: f64) -> f64 {
        self.constants.kernel_overhead + flops / self.constants.attention_flops
    }

    /// Effective per-GPU bandwidth for a collective over `group` GPUs
    /// (groups fill nodes in order). Within a node this is NVLink; across
    /// nodes each GPU drives its own IB rail.
    fn group_bw(&self, group: usize) -> f64 {
        if self.cluster.spans_nodes(group) {
            self.constants.ib_bw
        } else {
            self.constants.nvlink_bw
        }
    }

    /// All-to-all where each GPU holds `bytes_per_gpu` and exchanges
    /// `(p-1)/p` of it. Intra-node traffic rides NVLink; for multi-node
    /// groups the inter-node fraction rides the shared IB NIC and the two
    /// overlap (max, not sum).
    pub fn all_to_all_time(&self, bytes_per_gpu: u64, group: usize) -> f64 {
        if group <= 1 {
            return 0.0;
        }
        let c = &self.constants;
        let p = group as f64;
        let b = bytes_per_gpu as f64;
        let lat = c.link_latency;
        if !self.cluster.spans_nodes(group) {
            return lat + b * (p - 1.0) / p / c.nvlink_bw;
        }
        let gpn = self.cluster.node.gpus.min(group) as f64;
        let intra = b * (gpn - 1.0) / p / c.nvlink_bw;
        let inter = b * (p - gpn) / p / c.ib_bw;
        lat * (p.log2().ceil()) + intra.max(inter)
    }

    /// Ring all-gather producing `gathered_bytes` on every GPU of the
    /// group.
    pub fn all_gather_time(&self, gathered_bytes: u64, group: usize) -> f64 {
        if group <= 1 {
            return 0.0;
        }
        let p = group as f64;
        let lat = self.constants.link_latency * (p - 1.0);
        lat + gathered_bytes as f64 * (p - 1.0) / p / self.group_bw(group)
    }

    /// Ring reduce-scatter over an input of `bytes` per GPU.
    pub fn reduce_scatter_time(&self, bytes: u64, group: usize) -> f64 {
        // Same traffic pattern as all-gather.
        self.all_gather_time(bytes, group)
    }

    /// Ring all-reduce (reduce-scatter + all-gather) over `bytes` per GPU.
    pub fn all_reduce_time(&self, bytes: u64, group: usize) -> f64 {
        2.0 * self.all_gather_time(bytes, group)
    }

    /// Host↔device copy of `bytes` when `sharing` GPUs of the node copy
    /// simultaneously (paper: "all GPUs will share the PCIe bandwidth").
    /// Concurrent DMA engines also contend for PCIe lanes, which the paper
    /// identifies as the overhead making this strategy "worse at smaller
    /// data sizes" — modeled as one arbitration latency per active engine.
    /// Use `sharing = 1` for an uncontended copy; the event engine models
    /// dynamic bandwidth contention exactly, this closed form is for
    /// Figure 10.
    pub fn h2d_time(&self, bytes: u64, sharing: usize) -> f64 {
        let c = &self.constants;
        let sharing = sharing.max(1) as f64;
        c.link_latency * sharing + bytes as f64 / (c.pcie_bw / sharing)
    }

    /// The "one GPU fetches all, then scatters" strategy of Figure 10:
    /// a single uncontended PCIe copy of `group * bytes` followed by an
    /// NVLink scatter, plus a synchronization barrier.
    pub fn h2d_via_scatter_time(&self, bytes: u64, group: usize) -> f64 {
        let c = &self.constants;
        let fetch = c.link_latency + (bytes as f64 * group as f64) / c.pcie_bw;
        let scatter =
            c.link_latency + bytes as f64 * (group as f64 - 1.0) / group as f64 / c.nvlink_bw;
        fetch + scatter + c.link_latency
    }

    /// Direct NVLink peer-to-peer copy.
    pub fn p2p_time(&self, bytes: u64) -> f64 {
        self.constants.link_latency + bytes as f64 / self.constants.nvlink_bw
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hw::ClusterSpec;

    fn model() -> CostModel {
        CostModel::new(ClusterSpec::a100_80g(1, 4))
    }

    #[test]
    fn gemm_time_scales_linearly() {
        let m = model();
        let t1 = m.gemm_time(1e12);
        let t2 = m.gemm_time(2e12);
        let overhead = m.cluster().node.gpu.kernel_overhead;
        assert!(((t2 - overhead) / (t1 - overhead) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn attention_slower_than_gemm_per_flop() {
        let m = model();
        assert!(m.attention_time(1e12) > m.gemm_time(1e12));
    }

    #[test]
    fn single_gpu_collectives_are_free() {
        let m = model();
        assert_eq!(m.all_to_all_time(1 << 30, 1), 0.0);
        assert_eq!(m.all_gather_time(1 << 30, 1), 0.0);
    }

    #[test]
    fn internode_collectives_slower() {
        let multi = CostModel::new(ClusterSpec::a100_80g(2, 4));
        let intra = multi.all_to_all_time(1 << 30, 4);
        let inter = multi.all_to_all_time(1 << 30, 8);
        assert!(inter > 2.0 * intra, "intra {intra} inter {inter}");
    }

    #[test]
    fn figure10_crossover_between_32k_and_64k() {
        // Paper §4.2: "latencies of both [fetch] methods are overpassed by
        // attention computation at around 32k to 64k". Configuration: one
        // node, 4 GPUs, h_local = 8 heads of d=128 per GPU, bf16.
        let m = model();
        let h = 8u64;
        let d = 128u64;
        let crossed_at = |bwd: bool| {
            let mut prev = false;
            for log_s in 10..20 {
                let s = 1u64 << log_s;
                let flops = if bwd {
                    5 * s * s * h * d
                } else {
                    2 * s * s * h * d
                };
                let attn = m.attention_time(flops as f64);
                let fetch = m.h2d_time(3 * s * h * d * 2, 4);
                let now = attn > fetch;
                if now && !prev {
                    return Some(s);
                }
                prev = now;
            }
            None
        };
        let fwd_cross = crossed_at(false).expect("fwd crossover exists");
        assert!(
            (16_384..=131_072).contains(&fwd_cross),
            "fwd crossover at {fwd_cross}"
        );
        let bwd_cross = crossed_at(true).expect("bwd crossover exists");
        assert!(bwd_cross <= fwd_cross, "bwd kernel crosses earlier");
    }

    #[test]
    fn alltoall_is_much_faster_than_fetch_intranode() {
        // Paper Figure 10: "Alltoall is much faster since this is only the
        // intra-node communication using NVLink."
        let m = model();
        let bytes = 3 * 65_536 * 8 * 128 * 2; // a 64K qkv chunk
        assert!(m.all_to_all_time(bytes, 4) < m.h2d_time(bytes, 4) / 3.0);
    }

    #[test]
    fn scatter_strategy_wins_only_for_small_transfers() {
        // Figure 10's two fetch strategies: per-GPU HtoD loses at small
        // sizes (lane contention), and the difference becomes negligible
        // as the sequence grows.
        let m = model();
        let small = 1u64 << 16;
        let large = 1u64 << 30;
        assert!(
            m.h2d_time(small, 4) > m.h2d_via_scatter_time(small, 4),
            "per-GPU fetch worse at small sizes"
        );
        let rel =
            (m.h2d_time(large, 4) - m.h2d_via_scatter_time(large, 4)).abs() / m.h2d_time(large, 4);
        assert!(rel < 0.1, "negligible at large sizes: {rel}");
    }

    #[test]
    fn constants_json_round_trip() {
        let c = CostConstants::from_cluster(&ClusterSpec::a100_80g(2, 4));
        let back = CostConstants::from_json(&c.to_json()).expect("round trip");
        assert_eq!(back, c);
    }

    #[test]
    fn from_json_rejects_bad_documents() {
        assert!(CostConstants::from_json("not json").is_err());
        assert!(CostConstants::from_json("{}").is_err(), "missing fields");
        let c = CostConstants::from_cluster(&ClusterSpec::a100_80g(1, 4));
        let zeroed = c.to_json().replace(
            &format!("\"pcie_bw\": {:?}", c.pcie_bw),
            "\"pcie_bw\": 0.0",
        );
        assert!(CostConstants::from_json(&zeroed).is_err(), "zero rate");
    }

    #[test]
    fn with_constants_is_the_same_code_path() {
        // Paper-calibrated and externally fitted constants must flow
        // through identical arithmetic: wrapping a spec's own derived
        // constants reproduces CostModel::new exactly.
        let spec = ClusterSpec::a100_80g(2, 4);
        let derived = CostModel::new(spec.clone());
        let explicit =
            CostModel::with_constants(spec.clone(), CostConstants::from_cluster(&spec));
        for bytes in [1u64 << 16, 1 << 24, 1 << 30] {
            assert_eq!(derived.h2d_time(bytes, 4), explicit.h2d_time(bytes, 4));
            assert_eq!(
                derived.all_to_all_time(bytes, 8),
                explicit.all_to_all_time(bytes, 8)
            );
        }
        assert_eq!(derived.gemm_time(1e12), explicit.gemm_time(1e12));

        // And a doubled copy rate must feed straight into the estimate.
        let mut fast = CostConstants::from_cluster(&spec);
        fast.pcie_bw *= 2.0;
        let tuned = CostModel::with_constants(spec, fast);
        assert!(tuned.h2d_time(1 << 30, 1) < derived.h2d_time(1 << 30, 1));
    }

    #[test]
    fn allreduce_is_twice_allgather() {
        let m = model();
        assert!(
            (m.all_reduce_time(1 << 20, 4) - 2.0 * m.all_gather_time(1 << 20, 4)).abs() < 1e-12
        );
    }
}
