//! Hardware specifications, calibrated to the paper's testbed (§5.1):
//! nodes of four A100-80G GPUs on 3rd-gen NVLink, PCIe Gen-4 x16 to host
//! (32 GB/s unidirectional, shared), 1 TB host memory, and 200 Gbps HDR
//! InfiniBand between nodes.

use serde::{Deserialize, Serialize};

/// One GPU's compute and memory capabilities.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GpuSpec {
    /// Marketing name, e.g. `"A100-80G"`.
    pub name: String,
    /// HBM capacity in bytes.
    pub hbm_bytes: u64,
    /// Peak dense bf16 throughput in FLOP/s (A100: 312e12).
    pub peak_flops: f64,
    /// Achievable fraction of peak for large GEMMs.
    pub gemm_efficiency: f64,
    /// Achievable fraction of peak for fused attention kernels.
    pub attention_efficiency: f64,
    /// Fixed kernel launch + scheduling overhead per kernel, seconds.
    pub kernel_overhead: f64,
}

impl GpuSpec {
    /// NVIDIA A100 with the given HBM size in GiB (40 or 80 in the paper).
    pub fn a100(hbm_gib: u64) -> Self {
        GpuSpec {
            name: format!("A100-{hbm_gib}G"),
            hbm_bytes: hbm_gib * (1 << 30),
            peak_flops: 312e12,
            gemm_efficiency: 0.68,
            attention_efficiency: 0.58,
            kernel_overhead: 8e-6,
        }
    }

    /// Effective GEMM throughput in FLOP/s.
    pub fn gemm_flops(&self) -> f64 {
        self.peak_flops * self.gemm_efficiency
    }

    /// Effective attention-kernel throughput in FLOP/s.
    pub fn attention_flops(&self) -> f64 {
        self.peak_flops * self.attention_efficiency
    }
}

/// One multi-GPU host.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NodeSpec {
    /// GPUs per node.
    pub gpus: usize,
    /// The GPU model installed.
    pub gpu: GpuSpec,
    /// Per-GPU NVLink peer bandwidth, bytes/s (paper: "more than
    /// 100 GB/s of peer-to-peer bandwidth").
    pub nvlink_bw: f64,
    /// Host↔device PCIe bandwidth per direction, bytes/s, **shared by all
    /// GPUs in the node** (paper: PCIe Gen-4 x16, 32 GB/s unidirectional).
    pub pcie_bw: f64,
    /// Host DRAM capacity in bytes (paper: 1 TB).
    pub host_mem_bytes: u64,
    /// Per-message link latency in seconds (applies to every transfer).
    pub link_latency: f64,
}

impl NodeSpec {
    /// The paper's node: 4x A100 (40 or 80 GiB), NVLink-3, PCIe Gen-4,
    /// 1 TB host memory.
    pub fn dgx_a100(hbm_gib: u64, gpus: usize) -> Self {
        NodeSpec {
            gpus,
            gpu: GpuSpec::a100(hbm_gib),
            nvlink_bw: 150e9,
            pcie_bw: 32e9,
            host_mem_bytes: 1 << 40,
            link_latency: 15e-6,
        }
    }
}

/// A cluster of identical nodes joined by InfiniBand.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterSpec {
    /// Node description.
    pub node: NodeSpec,
    /// Node count.
    pub nodes: usize,
    /// Per-GPU InfiniBand bandwidth, bytes/s (paper: 200 Gbps HDR =
    /// 25 GB/s; DGX-style nodes provision one HCA rail per GPU).
    pub ib_bw: f64,
}

impl ClusterSpec {
    /// The paper's cluster: `nodes` x (4x A100-80G) with HDR InfiniBand.
    pub fn a100_80g(nodes: usize, gpus_per_node: usize) -> Self {
        ClusterSpec {
            node: NodeSpec::dgx_a100(80, gpus_per_node),
            nodes,
            ib_bw: 25e9,
        }
    }

    /// Same topology with 40 GiB GPUs (Table 1's left half).
    pub fn a100_40g(nodes: usize, gpus_per_node: usize) -> Self {
        ClusterSpec {
            node: NodeSpec::dgx_a100(40, gpus_per_node),
            nodes,
            ib_bw: 25e9,
        }
    }

    /// Total GPU count.
    pub fn total_gpus(&self) -> usize {
        self.nodes * self.node.gpus
    }

    /// Aggregate peak FLOP/s across the cluster (the MFU denominator).
    pub fn peak_flops(&self) -> f64 {
        self.total_gpus() as f64 * self.node.gpu.peak_flops
    }

    /// True when a communicator group of `group` GPUs (filled node by
    /// node) crosses node boundaries.
    pub fn spans_nodes(&self, group: usize) -> bool {
        group > self.node.gpus
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a100_presets() {
        let g40 = GpuSpec::a100(40);
        let g80 = GpuSpec::a100(80);
        assert_eq!(g40.hbm_bytes, 40 * (1 << 30));
        assert_eq!(g80.hbm_bytes, 2 * g40.hbm_bytes);
        assert_eq!(g80.peak_flops, 312e12);
        assert!(g80.gemm_flops() < g80.peak_flops);
        assert!(g80.attention_flops() < g80.gemm_flops());
    }

    #[test]
    fn cluster_accounting() {
        let c = ClusterSpec::a100_80g(8, 4);
        assert_eq!(c.total_gpus(), 32);
        assert_eq!(c.peak_flops(), 32.0 * 312e12);
        assert!(!c.spans_nodes(4));
        assert!(c.spans_nodes(8));
    }

    #[test]
    fn paper_testbed_constants() {
        let n = NodeSpec::dgx_a100(80, 4);
        assert_eq!(n.pcie_bw, 32e9, "PCIe Gen-4 x16 unidirectional");
        assert_eq!(n.host_mem_bytes, 1 << 40, "1 TB host memory");
        assert!(n.nvlink_bw > 100e9, "NVLink >100 GB/s p2p");
        let c = ClusterSpec::a100_80g(2, 4);
        assert_eq!(c.ib_bw, 25e9, "200 Gbps HDR");
    }

    #[test]
    fn specs_are_cloneable_and_comparable() {
        let c = ClusterSpec::a100_40g(1, 4);
        assert_eq!(c.clone(), c);
        assert_ne!(ClusterSpec::a100_80g(1, 4), c);
    }
}
