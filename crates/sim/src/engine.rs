//! Processor-sharing discrete-event engine.
//!
//! The model mirrors CUDA semantics closely enough for the paper's
//! pipeline arguments to hold:
//!
//! * **Streams** serialize: a task starts only after the previous task
//!   submitted to the same stream has finished (plus any explicit deps).
//!   FPDT's three streams — compute, host-to-device, device-to-host —
//!   are just three stream ids per simulated GPU.
//! * **Resources** are shared pipes (a node's PCIe link, its IB NIC).
//!   Concurrent transfers on one resource split its bandwidth equally and
//!   re-split whenever a transfer starts or ends — the fair-share behavior
//!   behind the paper's observation that per-GPU H2D copies contend.
//! * **Memory effects**: a task may allocate bytes in a [`memory`] pool at
//!   start and free at end; the engine timestamps these into the pool's
//!   timeline (paper Figures 12/13).
//!
//! [`memory`]: crate::memory

use crate::memory::{PoolId, PoolSet};
use crate::{Result, SimError};
use std::collections::HashMap;

/// Identifies a task in an [`Engine`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TaskId(pub(crate) usize);

/// Identifies a serializing stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct StreamId(pub(crate) usize);

/// Identifies a shared bandwidth resource.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ResourceId(pub(crate) usize);

/// What a task does.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Work {
    /// Occupies its stream for a fixed duration (a kernel).
    Compute {
        /// Duration in seconds.
        seconds: f64,
    },
    /// Moves bytes over a shared resource (a DMA copy or collective hop).
    Transfer {
        /// Payload size in bytes.
        bytes: u64,
        /// The pipe the bytes flow through.
        resource: ResourceId,
    },
    /// Zero-duration synchronization point.
    Event,
}

#[derive(Debug, Clone)]
struct Task {
    name: String,
    stream: StreamId,
    work: Work,
    deps: Vec<TaskId>,
    allocs: Vec<(PoolId, u64, String)>,
    frees: Vec<(PoolId, u64)>,
    start: f64,
    finish: f64,
    done: bool,
}

#[derive(Debug)]
struct Running {
    task: usize,
    /// For `Compute`/`Event`: absolute completion time. Unused for transfers.
    ends_at: f64,
    /// For `Transfer`: bytes still to move (including latency preamble).
    remaining: f64,
    resource: Option<usize>,
}

/// Builder returned by [`Engine::task`]; finish with
/// [`TaskBuilder::submit`].
#[derive(Debug)]
pub struct TaskBuilder<'e> {
    engine: &'e mut Engine,
    task: Task,
}

impl<'e> TaskBuilder<'e> {
    /// Adds explicit dependencies (in addition to stream ordering).
    pub fn deps(&mut self, deps: &[TaskId]) -> &mut Self {
        self.task.deps.extend_from_slice(deps);
        self
    }

    /// Allocates `bytes` in `pool` when the task starts.
    pub fn alloc(&mut self, pool: PoolId, bytes: u64, label: &str) -> &mut Self {
        self.task.allocs.push((pool, bytes, label.to_string()));
        self
    }

    /// Frees `bytes` from `pool` when the task finishes.
    pub fn free(&mut self, pool: PoolId, bytes: u64) -> &mut Self {
        self.task.frees.push((pool, bytes));
        self
    }

    /// Registers the task, returning its id.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownId`] when a dependency, stream, resource
    /// or pool id was not issued by this engine.
    pub fn submit(&mut self) -> Result<TaskId> {
        let t = std::mem::replace(
            &mut self.task,
            Task {
                name: String::new(),
                stream: StreamId(0),
                work: Work::Event,
                deps: Vec::new(),
                allocs: Vec::new(),
                frees: Vec::new(),
                start: 0.0,
                finish: 0.0,
                done: false,
            },
        );
        self.engine.validate_and_push(t)
    }
}

/// The kind of work an executed task performed, for trace export.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TaskKind {
    /// A fixed-duration kernel on its stream.
    Compute,
    /// A byte move over a shared resource.
    Transfer,
    /// A zero-duration synchronization point.
    Event,
}

/// One constant-rate slice of a transfer's fair-share bandwidth: between
/// [`from`](BwShare::from) and [`until`](BwShare::until) the transfer moved
/// bytes at exactly [`rate`](BwShare::rate). The engine re-splits resource
/// bandwidth whenever any transfer starts or ends, so a contended copy's
/// timeline is a sequence of these slices.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BwShare {
    /// Interval start, seconds.
    pub from: f64,
    /// Interval end, seconds.
    pub until: f64,
    /// Bandwidth granted during the interval, bytes/s.
    pub rate: f64,
}

/// One executed task, for timeline/trace export.
#[derive(Debug, Clone, PartialEq)]
pub struct TaskRecord {
    /// Task name as submitted.
    pub name: String,
    /// Name of the stream it ran on.
    pub stream: String,
    /// Start time, seconds.
    pub start: f64,
    /// Finish time, seconds.
    pub finish: f64,
    /// What the task did.
    pub kind: TaskKind,
    /// Payload size for transfers, `None` otherwise.
    pub bytes: Option<u64>,
    /// Resource name the bytes flowed through, `None` for non-transfers.
    pub resource: Option<String>,
    /// Fair-share bandwidth timeline for transfers (adjacent equal-rate
    /// slices coalesced). Empty for non-transfers.
    pub shares: Vec<BwShare>,
}

impl TaskRecord {
    /// A compute record with no transfer detail — convenient for building
    /// synthetic event logs in tests and tools.
    pub fn compute(name: &str, stream: &str, start: f64, finish: f64) -> Self {
        TaskRecord {
            name: name.to_string(),
            stream: stream.to_string(),
            start,
            finish,
            kind: TaskKind::Compute,
            bytes: None,
            resource: None,
            shares: Vec::new(),
        }
    }

    /// A transfer record moving `bytes` over `resource` at a single
    /// constant rate implied by the duration.
    pub fn transfer(
        name: &str,
        stream: &str,
        start: f64,
        finish: f64,
        bytes: u64,
        resource: &str,
    ) -> Self {
        let rate = if finish > start {
            bytes as f64 / (finish - start)
        } else {
            0.0
        };
        TaskRecord {
            name: name.to_string(),
            stream: stream.to_string(),
            start,
            finish,
            kind: TaskKind::Transfer,
            bytes: Some(bytes),
            resource: Some(resource.to_string()),
            shares: vec![BwShare {
                from: start,
                until: finish,
                rate,
            }],
        }
    }

    /// Task duration in seconds.
    pub fn duration(&self) -> f64 {
        (self.finish - self.start).max(0.0)
    }
}

/// The result of a simulation run.
#[derive(Debug, Clone)]
pub struct SimReport {
    /// Total simulated time from 0 to the last task completion, seconds.
    pub makespan: f64,
    finishes: HashMap<usize, (f64, f64)>,
    /// Final state of all memory pools (peaks, timelines).
    pub pools: PoolSet,
    names: HashMap<usize, String>,
    records: Vec<TaskRecord>,
    streams: Vec<String>,
}

impl SimReport {
    /// Start time of a task.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownId`] for an id not in this run.
    pub fn start_time(&self, id: TaskId) -> Result<f64> {
        self.finishes
            .get(&id.0)
            .map(|&(s, _)| s)
            .ok_or(SimError::UnknownId {
                kind: "task",
                id: id.0,
            })
    }

    /// Finish time of a task.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownId`] for an id not in this run.
    pub fn finish_time(&self, id: TaskId) -> Result<f64> {
        self.finishes
            .get(&id.0)
            .map(|&(_, f)| f)
            .ok_or(SimError::UnknownId {
                kind: "task",
                id: id.0,
            })
    }

    /// Name recorded for a task (diagnostics).
    pub fn task_name(&self, id: TaskId) -> Option<&str> {
        self.names.get(&id.0).map(String::as_str)
    }

    /// Every executed task with its stream and times, in submission order —
    /// the raw material for Gantt charts and Chrome traces.
    pub fn task_records(&self) -> &[TaskRecord] {
        &self.records
    }

    /// Stream names in registration order — gives trace exporters a stable
    /// track ordering independent of which streams happened to run tasks.
    pub fn streams(&self) -> &[String] {
        &self.streams
    }
}

/// The discrete-event engine. See the [module docs](self) for the model.
#[derive(Debug, Default)]
pub struct Engine {
    tasks: Vec<Task>,
    streams: Vec<String>,
    resources: Vec<(String, f64, f64)>, // (name, bandwidth B/s, latency s)
    pools: PoolSet,
}

impl Engine {
    /// Creates an empty engine.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a serializing stream (e.g. `"gpu3.h2d"`).
    pub fn add_stream(&mut self, name: &str) -> StreamId {
        self.streams.push(name.to_string());
        StreamId(self.streams.len() - 1)
    }

    /// Registers a shared bandwidth resource. `latency` is charged to every
    /// transfer as a fixed preamble.
    pub fn add_resource(&mut self, name: &str, bandwidth: f64, latency: f64) -> ResourceId {
        self.resources.push((name.to_string(), bandwidth, latency));
        ResourceId(self.resources.len() - 1)
    }

    /// Registers a memory pool; see [`PoolSet::add_pool`].
    pub fn add_pool(&mut self, name: &str, capacity: Option<u64>) -> PoolId {
        self.pools.add_pool(name, capacity)
    }

    /// Starts building a task on `stream`. Use the returned builder for
    /// dependencies and memory effects; call `submit` to register.
    pub fn task(&mut self, name: &str, stream: StreamId, work: Work) -> TaskBuilder<'_> {
        TaskBuilder {
            task: Task {
                name: name.to_string(),
                stream,
                work,
                deps: Vec::new(),
                allocs: Vec::new(),
                frees: Vec::new(),
                start: 0.0,
                finish: 0.0,
                done: false,
            },
            engine: self,
        }
    }

    /// Shorthand for a task with no deps and no memory effects.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownId`] for a bad stream/resource id.
    pub fn add_task(&mut self, name: &str, stream: StreamId, work: Work) -> Result<TaskId> {
        self.task(name, stream, work).submit()
    }

    fn validate_and_push(&mut self, t: Task) -> Result<TaskId> {
        if t.stream.0 >= self.streams.len() {
            return Err(SimError::UnknownId {
                kind: "stream",
                id: t.stream.0,
            });
        }
        if let Work::Transfer { resource, .. } = t.work {
            if resource.0 >= self.resources.len() {
                return Err(SimError::UnknownId {
                    kind: "resource",
                    id: resource.0,
                });
            }
        }
        for d in &t.deps {
            if d.0 >= self.tasks.len() {
                return Err(SimError::UnknownId {
                    kind: "task",
                    id: d.0,
                });
            }
        }
        for (p, _, _) in &t.allocs {
            if !self.pools.contains(*p) {
                return Err(SimError::UnknownId {
                    kind: "pool",
                    id: p.0,
                });
            }
        }
        for (p, _) in &t.frees {
            if !self.pools.contains(*p) {
                return Err(SimError::UnknownId {
                    kind: "pool",
                    id: p.0,
                });
            }
        }
        self.tasks.push(t);
        Ok(TaskId(self.tasks.len() - 1))
    }

    /// Number of registered tasks.
    pub fn task_count(&self) -> usize {
        self.tasks.len()
    }

    /// Executes the task graph to completion.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::DependencyCycle`] if tasks remain blocked
    /// forever, [`SimError::NegativeUsage`] when frees exceed allocations,
    /// or [`SimError::InvalidConfig`] for a non-positive resource
    /// bandwidth used by a transfer.
    pub fn run(&mut self) -> Result<SimReport> {
        for (name, bw, _) in &self.resources {
            if *bw <= 0.0 {
                return Err(SimError::InvalidConfig {
                    what: format!("resource {name} has non-positive bandwidth {bw}"),
                });
            }
        }
        let n = self.tasks.len();
        let mut pools = self.pools.clone_reset();
        // stream cursor: index of next unstarted task per stream, in
        // submission order per stream.
        let mut stream_queues: Vec<Vec<usize>> = vec![Vec::new(); self.streams.len()];
        for (i, t) in self.tasks.iter().enumerate() {
            stream_queues[t.stream.0].push(i);
        }
        let mut stream_pos = vec![0usize; self.streams.len()];
        let mut done = vec![false; n];
        let mut running: Vec<Running> = Vec::new();
        let mut completed = 0usize;
        let mut now = 0.0f64;
        // Per-task fair-share bandwidth history (transfers only).
        let mut shares: Vec<Vec<BwShare>> = vec![Vec::new(); n];

        let dep_ready = |done: &[bool], t: &Task| t.deps.iter().all(|d| done[d.0]);

        loop {
            // Start every stream-head task whose deps are satisfied.
            let mut started_any = true;
            while started_any {
                started_any = false;
                for s in 0..self.streams.len() {
                    let pos = stream_pos[s];
                    if pos >= stream_queues[s].len() {
                        continue;
                    }
                    let ti = stream_queues[s][pos];
                    // Already running?
                    if running.iter().any(|r| r.task == ti) {
                        continue;
                    }
                    if !dep_ready(&done, &self.tasks[ti]) {
                        continue;
                    }
                    // Start it.
                    let t = &mut self.tasks[ti];
                    t.start = now;
                    for (p, bytes, label) in &t.allocs {
                        pools.alloc(*p, *bytes, label, now)?;
                    }
                    let r = match t.work {
                        Work::Compute { seconds } => Running {
                            task: ti,
                            ends_at: now + seconds.max(0.0),
                            remaining: 0.0,
                            resource: None,
                        },
                        Work::Event => Running {
                            task: ti,
                            ends_at: now,
                            remaining: 0.0,
                            resource: None,
                        },
                        Work::Transfer { bytes, resource } => {
                            let (_, bw, lat) = self.resources[resource.0];
                            // Fold latency into an equivalent byte preamble
                            // so processor sharing applies uniformly.
                            let eff = bytes as f64 + lat * bw;
                            Running {
                                task: ti,
                                ends_at: f64::INFINITY,
                                remaining: eff,
                                resource: Some(resource.0),
                            }
                        }
                    };
                    running.push(r);
                    started_any = true;
                }
            }

            if running.is_empty() {
                if completed == n {
                    break;
                }
                return Err(SimError::DependencyCycle {
                    stuck: n - completed,
                });
            }

            // Current fair-share rate per resource.
            let mut active_per_resource: HashMap<usize, usize> = HashMap::new();
            for r in &running {
                if let Some(res) = r.resource {
                    *active_per_resource.entry(res).or_insert(0) += 1;
                }
            }
            let rate = |res: usize| -> f64 {
                let (_, bw, _) = self.resources[res];
                bw / active_per_resource[&res] as f64
            };

            // Time to next completion.
            let mut dt = f64::INFINITY;
            for r in &running {
                let until = match r.resource {
                    None => r.ends_at - now,
                    Some(res) => r.remaining / rate(res),
                };
                dt = dt.min(until.max(0.0));
            }
            debug_assert!(dt.is_finite());
            now += dt;

            // Advance transfers and collect completions.
            let mut finished: Vec<usize> = Vec::new();
            for r in &mut running {
                match r.resource {
                    None => {
                        if r.ends_at <= now + 1e-15 {
                            finished.push(r.task);
                        }
                    }
                    Some(res) => {
                        let rate = rate(res);
                        if dt > 0.0 {
                            // Extend the share timeline, coalescing with the
                            // previous slice when the rate is unchanged.
                            match shares[r.task].last_mut() {
                                Some(last) if (last.rate - rate).abs() <= 1e-9 * rate => {
                                    last.until = now;
                                }
                                _ => shares[r.task].push(BwShare {
                                    from: now - dt,
                                    until: now,
                                    rate,
                                }),
                            }
                        }
                        r.remaining -= rate * dt;
                        if r.remaining <= 1e-9 {
                            finished.push(r.task);
                        }
                    }
                }
            }
            running.retain(|r| !finished.contains(&r.task));
            for ti in finished {
                let t = &mut self.tasks[ti];
                t.finish = now;
                t.done = true;
                done[ti] = true;
                completed += 1;
                // advance that task's stream cursor
                let s = t.stream.0;
                stream_pos[s] += 1;
                for (p, bytes) in &self.tasks[ti].frees.clone() {
                    pools.free(*p, *bytes, now)?;
                }
            }
        }

        let finishes = self
            .tasks
            .iter()
            .enumerate()
            .map(|(i, t)| (i, (t.start, t.finish)))
            .collect();
        let names = self
            .tasks
            .iter()
            .enumerate()
            .map(|(i, t)| (i, t.name.clone()))
            .collect();
        let records = self
            .tasks
            .iter()
            .zip(shares)
            .map(|(t, shares)| {
                let (kind, bytes, resource) = match t.work {
                    Work::Compute { .. } => (TaskKind::Compute, None, None),
                    Work::Event => (TaskKind::Event, None, None),
                    Work::Transfer { bytes, resource } => (
                        TaskKind::Transfer,
                        Some(bytes),
                        Some(self.resources[resource.0].0.clone()),
                    ),
                };
                TaskRecord {
                    name: t.name.clone(),
                    stream: self.streams[t.stream.0].clone(),
                    start: t.start,
                    finish: t.finish,
                    kind,
                    bytes,
                    resource,
                    shares,
                }
            })
            .collect();
        Ok(SimReport {
            makespan: now,
            finishes,
            pools,
            names,
            records,
            streams: self.streams.clone(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_compute_task() {
        let mut e = Engine::new();
        let s = e.add_stream("c");
        let t = e.add_task("k", s, Work::Compute { seconds: 2.0 }).unwrap();
        let r = e.run().unwrap();
        assert_eq!(r.makespan, 2.0);
        assert_eq!(r.finish_time(t).unwrap(), 2.0);
        assert_eq!(r.start_time(t).unwrap(), 0.0);
        assert_eq!(r.task_name(t), Some("k"));
    }

    #[test]
    fn stream_serializes_tasks() {
        let mut e = Engine::new();
        let s = e.add_stream("c");
        let _a = e.add_task("a", s, Work::Compute { seconds: 1.0 }).unwrap();
        let b = e.add_task("b", s, Work::Compute { seconds: 1.0 }).unwrap();
        let r = e.run().unwrap();
        assert_eq!(r.start_time(b).unwrap(), 1.0);
        assert_eq!(r.makespan, 2.0);
    }

    #[test]
    fn parallel_streams_overlap() {
        let mut e = Engine::new();
        let s1 = e.add_stream("c1");
        let s2 = e.add_stream("c2");
        e.add_task("a", s1, Work::Compute { seconds: 3.0 }).unwrap();
        e.add_task("b", s2, Work::Compute { seconds: 2.0 }).unwrap();
        let r = e.run().unwrap();
        assert_eq!(r.makespan, 3.0);
    }

    #[test]
    fn dependency_across_streams() {
        let mut e = Engine::new();
        let copy = e.add_stream("h2d");
        let comp = e.add_stream("compute");
        let pcie = e.add_resource("pcie", 10.0, 0.0); // 10 B/s
        let f = e
            .add_task(
                "fetch",
                copy,
                Work::Transfer {
                    bytes: 20,
                    resource: pcie,
                },
            )
            .unwrap();
        let mut b = e.task("attn", comp, Work::Compute { seconds: 1.0 });
        b.deps(&[f]);
        let k = b.submit().unwrap();
        let r = e.run().unwrap();
        assert!((r.start_time(k).unwrap() - 2.0).abs() < 1e-9);
        assert!((r.makespan - 3.0).abs() < 1e-9);
    }

    #[test]
    fn fair_share_bandwidth_contention() {
        // Two simultaneous 10-byte transfers on a 10 B/s pipe take 2s
        // (each gets 5 B/s), not 1s.
        let mut e = Engine::new();
        let s1 = e.add_stream("g0.h2d");
        let s2 = e.add_stream("g1.h2d");
        let pcie = e.add_resource("pcie", 10.0, 0.0);
        e.add_task(
            "x0",
            s1,
            Work::Transfer {
                bytes: 10,
                resource: pcie,
            },
        )
        .unwrap();
        e.add_task(
            "x1",
            s2,
            Work::Transfer {
                bytes: 10,
                resource: pcie,
            },
        )
        .unwrap();
        let r = e.run().unwrap();
        assert!((r.makespan - 2.0).abs() < 1e-9, "makespan {}", r.makespan);
    }

    #[test]
    fn staggered_transfers_rebalance() {
        // t0: A starts alone (10 B/s). t=0.5: B arrives; both share 5 B/s.
        // A has 5 bytes left at t=0.5 -> finishes at t=1.5.
        // B (10 bytes) then gets full bandwidth for its remaining 5 bytes:
        // 0.5..1.5 at 5 B/s moves 5, remaining 5 at 10 B/s = 0.5 -> t=2.0.
        let mut e = Engine::new();
        let s1 = e.add_stream("g0.h2d");
        let s2 = e.add_stream("g1.h2d");
        let s2b = e.add_stream("g1.pre");
        let pcie = e.add_resource("pcie", 10.0, 0.0);
        let a = e
            .add_task(
                "a",
                s1,
                Work::Transfer {
                    bytes: 10,
                    resource: pcie,
                },
            )
            .unwrap();
        let delay = e
            .add_task("delay", s2b, Work::Compute { seconds: 0.5 })
            .unwrap();
        let mut bb = e.task(
            "b",
            s2,
            Work::Transfer {
                bytes: 10,
                resource: pcie,
            },
        );
        bb.deps(&[delay]);
        let b = bb.submit().unwrap();
        let r = e.run().unwrap();
        assert!((r.finish_time(a).unwrap() - 1.5).abs() < 1e-9);
        assert!((r.finish_time(b).unwrap() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn transfer_latency_preamble() {
        let mut e = Engine::new();
        let s = e.add_stream("h2d");
        let link = e.add_resource("link", 100.0, 0.25); // latency worth 25 bytes
        let t = e
            .add_task(
                "x",
                s,
                Work::Transfer {
                    bytes: 75,
                    resource: link,
                },
            )
            .unwrap();
        let r = e.run().unwrap();
        assert!((r.finish_time(t).unwrap() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn event_tasks_are_instant() {
        let mut e = Engine::new();
        let s = e.add_stream("c");
        let a = e.add_task("a", s, Work::Compute { seconds: 1.0 }).unwrap();
        let mut b = e.task("sync", s, Work::Event);
        b.deps(&[a]);
        let ev = b.submit().unwrap();
        let r = e.run().unwrap();
        assert_eq!(r.finish_time(ev).unwrap(), 1.0);
    }

    #[test]
    fn memory_alloc_free_tracked() {
        let mut e = Engine::new();
        let s = e.add_stream("c");
        let hbm = e.add_pool("hbm0", Some(100));
        let mut a = e.task("big", s, Work::Compute { seconds: 1.0 });
        a.alloc(hbm, 60, "activations").free(hbm, 60);
        a.submit().unwrap();
        let mut b = e.task("bigger", s, Work::Compute { seconds: 1.0 });
        b.alloc(hbm, 80, "spike");
        b.submit().unwrap();
        let r = e.run().unwrap();
        assert_eq!(r.pools.peak(hbm).unwrap(), 80);
        // first task freed its 60 before the second allocated
        assert_eq!(r.pools.current(hbm).unwrap(), 80);
    }

    #[test]
    fn unknown_ids_rejected() {
        let mut e = Engine::new();
        let s = e.add_stream("c");
        assert!(matches!(
            e.add_task("x", StreamId(9), Work::Event),
            Err(SimError::UnknownId { kind: "stream", .. })
        ));
        assert!(matches!(
            e.add_task(
                "x",
                s,
                Work::Transfer {
                    bytes: 1,
                    resource: ResourceId(3)
                }
            ),
            Err(SimError::UnknownId {
                kind: "resource",
                ..
            })
        ));
        let mut b = e.task("x", s, Work::Event);
        b.deps(&[TaskId(42)]);
        assert!(matches!(
            b.submit(),
            Err(SimError::UnknownId { kind: "task", .. })
        ));
    }

    #[test]
    fn zero_bandwidth_rejected_at_run() {
        let mut e = Engine::new();
        let s = e.add_stream("c");
        let bad = e.add_resource("dead", 0.0, 0.0);
        e.add_task(
            "x",
            s,
            Work::Transfer {
                bytes: 1,
                resource: bad,
            },
        )
        .unwrap();
        assert!(matches!(e.run(), Err(SimError::InvalidConfig { .. })));
    }

    #[test]
    fn diamond_dependency_graph() {
        //    a
        //   / \
        //  b   c     (parallel streams)
        //   \ /
        //    d
        let mut e = Engine::new();
        let s1 = e.add_stream("s1");
        let s2 = e.add_stream("s2");
        let a = e.add_task("a", s1, Work::Compute { seconds: 1.0 }).unwrap();
        let mut bb = e.task("b", s1, Work::Compute { seconds: 2.0 });
        bb.deps(&[a]);
        let b = bb.submit().unwrap();
        let mut cc = e.task("c", s2, Work::Compute { seconds: 3.0 });
        cc.deps(&[a]);
        let c = cc.submit().unwrap();
        let mut dd = e.task("d", s1, Work::Compute { seconds: 1.0 });
        dd.deps(&[b, c]);
        let d = dd.submit().unwrap();
        let r = e.run().unwrap();
        assert_eq!(r.start_time(d).unwrap(), 4.0); // waits for c at t=1+3
        assert_eq!(r.makespan, 5.0);
    }

    #[test]
    fn empty_engine_runs() {
        let mut e = Engine::new();
        let r = e.run().unwrap();
        assert_eq!(r.makespan, 0.0);
        assert_eq!(e.task_count(), 0);
    }
}

impl SimReport {
    /// Busy fraction of a stream over the makespan (0.0 when the stream
    /// never ran or the makespan is zero) — e.g. how saturated the H2D
    /// copy stream was during an FPDT block.
    pub fn stream_utilization(&self, stream: &str) -> f64 {
        if self.makespan <= 0.0 {
            return 0.0;
        }
        let busy: f64 = self
            .records
            .iter()
            .filter(|r| r.stream == stream)
            .map(|r| (r.finish - r.start).max(0.0))
            .sum();
        busy / self.makespan
    }
}

#[cfg(test)]
mod record_tests {
    use super::*;

    #[test]
    fn records_carry_work_detail() {
        let mut e = Engine::new();
        let c = e.add_stream("compute");
        let h = e.add_stream("h2d");
        let pcie = e.add_resource("pcie.h2d", 10.0, 0.0);
        e.add_task("k", c, Work::Compute { seconds: 1.0 }).unwrap();
        e.add_task(
            "x",
            h,
            Work::Transfer {
                bytes: 20,
                resource: pcie,
            },
        )
        .unwrap();
        let r = e.run().unwrap();
        let k = &r.task_records()[0];
        assert_eq!(k.kind, TaskKind::Compute);
        assert_eq!((k.bytes, k.resource.as_deref()), (None, None));
        assert!(k.shares.is_empty());
        let x = &r.task_records()[1];
        assert_eq!(x.kind, TaskKind::Transfer);
        assert_eq!(x.bytes, Some(20));
        assert_eq!(x.resource.as_deref(), Some("pcie.h2d"));
        // Uncontended: one coalesced slice at full bandwidth.
        assert_eq!(x.shares.len(), 1);
        assert!((x.shares[0].rate - 10.0).abs() < 1e-9);
        assert!((x.shares[0].from - x.start).abs() < 1e-12);
        assert!((x.shares[0].until - x.finish).abs() < 1e-12);
        assert_eq!(r.streams(), ["compute".to_string(), "h2d".to_string()]);
    }

    #[test]
    fn shares_split_under_contention() {
        // Same staggered scenario as `staggered_transfers_rebalance`:
        // a runs alone at 10 B/s for 0.5s, shares 5 B/s until t=1.5;
        // b shares 5 B/s until a ends, then finishes alone at 10 B/s.
        let mut e = Engine::new();
        let s1 = e.add_stream("g0.h2d");
        let s2 = e.add_stream("g1.h2d");
        let s2b = e.add_stream("g1.pre");
        let pcie = e.add_resource("pcie", 10.0, 0.0);
        e.add_task(
            "a",
            s1,
            Work::Transfer {
                bytes: 10,
                resource: pcie,
            },
        )
        .unwrap();
        let delay = e
            .add_task("delay", s2b, Work::Compute { seconds: 0.5 })
            .unwrap();
        let mut bb = e.task(
            "b",
            s2,
            Work::Transfer {
                bytes: 10,
                resource: pcie,
            },
        );
        bb.deps(&[delay]);
        bb.submit().unwrap();
        let r = e.run().unwrap();
        let a = &r.task_records()[0];
        let b = &r.task_records()[2];
        let slices =
            |rec: &TaskRecord| -> Vec<(f64, f64, f64)> {
                rec.shares.iter().map(|s| (s.from, s.until, s.rate)).collect()
            };
        let close = |got: &[(f64, f64, f64)], want: &[(f64, f64, f64)]| {
            assert_eq!(got.len(), want.len(), "{got:?} vs {want:?}");
            for (g, w) in got.iter().zip(want) {
                assert!(
                    (g.0 - w.0).abs() < 1e-9 && (g.1 - w.1).abs() < 1e-9 && (g.2 - w.2).abs() < 1e-9,
                    "{got:?} vs {want:?}"
                );
            }
        };
        close(&slices(a), &[(0.0, 0.5, 10.0), (0.5, 1.5, 5.0)]);
        close(&slices(b), &[(0.5, 1.5, 5.0), (1.5, 2.0, 10.0)]);
        // Bytes moved per the share timeline equal the payload.
        for rec in [a, b] {
            let moved: f64 = rec
                .shares
                .iter()
                .map(|s| (s.until - s.from) * s.rate)
                .sum();
            assert!((moved - 10.0).abs() < 1e-6, "moved {moved}");
        }
    }
}

#[cfg(test)]
mod utilization_tests {
    use super::*;

    #[test]
    fn utilization_reflects_busy_time() {
        let mut e = Engine::new();
        let a = e.add_stream("a");
        let b = e.add_stream("b");
        e.add_task("x", a, Work::Compute { seconds: 4.0 }).unwrap();
        e.add_task("y", b, Work::Compute { seconds: 1.0 }).unwrap();
        let r = e.run().unwrap();
        assert!((r.stream_utilization("a") - 1.0).abs() < 1e-9);
        assert!((r.stream_utilization("b") - 0.25).abs() < 1e-9);
        assert_eq!(r.stream_utilization("missing"), 0.0);
        // records expose names/streams
        assert_eq!(r.task_records().len(), 2);
        assert_eq!(r.task_records()[0].name, "x");
        assert_eq!(r.task_records()[0].stream, "a");
    }
}
