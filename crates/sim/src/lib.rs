//! # fpdt-sim
//!
//! A discrete-event simulator of a GPU training cluster, calibrated to the
//! FPDT paper's testbed (A100 nodes, NVLink-3 intra-node, PCIe Gen-4 to
//! host, HDR InfiniBand between nodes).
//!
//! The simulator has three layers:
//!
//! * [`hw`] — hardware specifications: GPU compute throughput and HBM,
//!   link bandwidths, node/cluster topology, with presets matching the
//!   paper's experimental setup (§5.1).
//! * [`cost`] — closed-form duration estimates for GEMMs, attention tiles,
//!   collectives and host↔device transfers on a given [`hw::ClusterSpec`].
//! * [`engine`] — a processor-sharing discrete-event engine: tasks run on
//!   named per-device *streams* (compute, H2D copy, D2H copy — the three
//!   CUDA streams of paper Figure 7), serialize within a stream, respect
//!   explicit dependencies, and share *resources* (e.g. a node's PCIe
//!   link) with fair bandwidth splitting. [`memory`] pools track
//!   allocations tasks make, producing the peak usage and timelines of
//!   paper Figures 12 and 13.
//!
//! The parallelism strategies in `fpdt-parallel` and the FPDT pipeline in
//! `fpdt-core` emit task graphs into this engine; MFU falls out as
//! `model FLOPs / (makespan × peak FLOPs × #GPUs)`.
//!
//! ## Example
//!
//! ```
//! use fpdt_sim::engine::{Engine, Work};
//!
//! # fn main() -> Result<(), fpdt_sim::SimError> {
//! let mut eng = Engine::new();
//! let compute = eng.add_stream("gpu0.compute");
//! let copy = eng.add_stream("gpu0.h2d");
//! let pcie = eng.add_resource("pcie", 32e9, 0.0);
//!
//! let fetch = eng.add_task("fetch", copy, Work::Transfer { bytes: 32_000_000_000, resource: pcie })?;
//! let mut attn = eng.task("attn", compute, Work::Compute { seconds: 0.5 });
//! attn.deps(&[fetch]);
//! let attn = attn.submit()?;
//! let report = eng.run()?;
//! assert!(report.finish_time(attn)? >= 1.5); // 1s transfer + 0.5s compute
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]

pub mod cost;
pub mod engine;
mod error;
pub mod hw;
pub mod memory;
pub mod query;

pub use error::SimError;

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, SimError>;
