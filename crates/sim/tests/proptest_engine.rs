//! Property-based tests of the discrete-event engine: conservation and
//! ordering laws that must hold for arbitrary task graphs.

use fpdt_sim::engine::{Engine, Work};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn serial_chain_time_is_additive(
        durations in proptest::collection::vec(0.001f64..2.0, 1..12),
    ) {
        let mut e = Engine::new();
        let s = e.add_stream("chain");
        for (i, &d) in durations.iter().enumerate() {
            e.add_task(&format!("t{i}"), s, Work::Compute { seconds: d }).unwrap();
        }
        let r = e.run().unwrap();
        let total: f64 = durations.iter().sum();
        prop_assert!((r.makespan - total).abs() < 1e-9);
    }

    #[test]
    fn parallel_streams_take_the_max(
        durations in proptest::collection::vec(0.001f64..2.0, 1..8),
    ) {
        let mut e = Engine::new();
        for (i, &d) in durations.iter().enumerate() {
            let s = e.add_stream(&format!("s{i}"));
            e.add_task(&format!("t{i}"), s, Work::Compute { seconds: d }).unwrap();
        }
        let r = e.run().unwrap();
        let max = durations.iter().cloned().fold(0.0f64, f64::max);
        prop_assert!((r.makespan - max).abs() < 1e-9);
    }

    #[test]
    fn shared_bandwidth_conserves_total_bytes(
        sizes in proptest::collection::vec(1u64..10_000, 1..8),
    ) {
        // N concurrent transfers on one pipe finish no earlier than
        // total_bytes / bandwidth, and the LAST finisher hits it exactly
        // (work conservation under processor sharing).
        let bw = 1000.0;
        let mut e = Engine::new();
        let pipe = e.add_resource("pipe", bw, 0.0);
        for (i, &b) in sizes.iter().enumerate() {
            let s = e.add_stream(&format!("s{i}"));
            e.add_task(&format!("x{i}"), s, Work::Transfer { bytes: b, resource: pipe })
                .unwrap();
        }
        let r = e.run().unwrap();
        let total: u64 = sizes.iter().sum();
        let ideal = total as f64 / bw;
        prop_assert!((r.makespan - ideal).abs() < 1e-6 * ideal.max(1.0),
            "makespan {} vs ideal {}", r.makespan, ideal);
    }

    #[test]
    fn dependencies_are_respected(
        chain in proptest::collection::vec(0.01f64..1.0, 2..8),
    ) {
        // A dependency chain across separate streams behaves like a
        // serial chain.
        let mut e = Engine::new();
        let mut prev = None;
        for (i, &d) in chain.iter().enumerate() {
            let s = e.add_stream(&format!("s{i}"));
            let mut b = e.task(&format!("t{i}"), s, Work::Compute { seconds: d });
            if let Some(p) = prev {
                b.deps(&[p]);
            }
            prev = Some(b.submit().unwrap());
        }
        let r = e.run().unwrap();
        let total: f64 = chain.iter().sum();
        prop_assert!((r.makespan - total).abs() < 1e-9);
    }

    #[test]
    fn memory_peak_bounds_current(
        allocs in proptest::collection::vec(1u64..1000, 1..10),
    ) {
        let mut e = Engine::new();
        let s = e.add_stream("c");
        let pool = e.add_pool("hbm", None);
        for (i, &a) in allocs.iter().enumerate() {
            let mut b = e.task(&format!("t{i}"), s, Work::Compute { seconds: 0.1 });
            b.alloc(pool, a, "x");
            if i % 2 == 1 {
                b.free(pool, a);
            }
            b.submit().unwrap();
        }
        let r = e.run().unwrap();
        let peak = r.pools.peak(pool).unwrap();
        let end = r.pools.current(pool).unwrap();
        prop_assert!(peak >= end);
        let total: u64 = allocs.iter().sum();
        prop_assert!(peak <= total);
    }
}
