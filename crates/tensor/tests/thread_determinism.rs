//! Bitwise equivalence of every tensor kernel across kernel-pool thread
//! budgets (1, 2, and 8 threads).
//!
//! The kernel contract is determinism-by-fixed-partition: items are a
//! fixed partition of disjoint output data and all accumulation inside an
//! item (and in every cross-item reduction) happens sequentially in a
//! fixed order, so the thread count may change *who* computes an item but
//! never *what* it computes. These tests force the parallel path with
//! `FPDT_PAR_THRESHOLD = 1` and compare raw output bits.

use fpdt_tensor::{init, ops, par};
use rayon::pool;
use std::sync::{Mutex, MutexGuard};

/// Serializes tests that reconfigure the global pool/threshold, and
/// restores both on drop.
static CONFIG_LOCK: Mutex<()> = Mutex::new(());

struct ForcedParallel<'a> {
    _guard: MutexGuard<'a, ()>,
    prev_threshold: usize,
    prev_threads: usize,
}

impl ForcedParallel<'_> {
    fn new(threads: usize) -> Self {
        let guard = CONFIG_LOCK.lock().unwrap();
        ForcedParallel {
            _guard: guard,
            prev_threshold: par::set_par_threshold(1),
            prev_threads: pool::set_threads(threads),
        }
    }
}

impl Drop for ForcedParallel<'_> {
    fn drop(&mut self) {
        pool::set_threads(self.prev_threads);
        par::set_par_threshold(self.prev_threshold);
    }
}

fn bits(t: &[f32]) -> Vec<u32> {
    t.iter().map(|v| v.to_bits()).collect()
}

/// Runs `f` under thread budgets 1, 2, and 8 (threshold forced to 1 so
/// every kernel takes the pool path) and asserts the flattened outputs
/// are bitwise identical.
fn assert_thread_invariant(name: &str, f: impl Fn() -> Vec<f32>) {
    let reference = {
        let _cfg = ForcedParallel::new(1);
        f()
    };
    assert!(
        reference.iter().any(|&v| v != 0.0),
        "{name}: all-zero output would make the comparison vacuous"
    );
    for threads in [2usize, 8] {
        let got = {
            let _cfg = ForcedParallel::new(threads);
            f()
        };
        assert_eq!(
            bits(&reference),
            bits(&got),
            "{name}: output differs between 1 and {threads} threads"
        );
    }
}

#[test]
fn matmul_family_is_thread_invariant() {
    let mut rng = init::seeded_rng(7);
    // Straddles MC=32 rows and stays irregular in every dimension.
    let a = init::randn(&mut rng, &[67, 43], 1.0);
    let b = init::randn(&mut rng, &[43, 35], 1.0);
    let dc = init::randn(&mut rng, &[67, 35], 1.0);
    assert_thread_invariant("matmul", || {
        ops::matmul(&a, &b).unwrap().data().to_vec()
    });
    assert_thread_invariant("matmul_bwd", || {
        let (da, db) = ops::matmul_bwd(&a, &b, &dc).unwrap();
        let mut out = da.data().to_vec();
        out.extend_from_slice(db.data());
        out
    });
}

#[test]
fn softmax_and_cross_entropy_are_thread_invariant() {
    let mut rng = init::seeded_rng(8);
    let x = init::randn(&mut rng, &[33, 19], 2.0);
    let dy = init::randn(&mut rng, &[33, 19], 1.0);
    assert_thread_invariant("softmax_rows", || {
        ops::softmax_rows(&x).data().to_vec()
    });
    assert_thread_invariant("softmax_rows_bwd", || {
        let y = ops::softmax_rows(&x);
        ops::softmax_rows_bwd(&y, &dy).unwrap().data().to_vec()
    });
    let logits = init::randn(&mut rng, &[31, 23], 1.5);
    let targets: Vec<usize> = (0..31)
        .map(|i| if i % 5 == 0 { usize::MAX } else { (i * 3) % 23 })
        .collect();
    assert_thread_invariant("cross_entropy", || {
        let out = ops::cross_entropy(&logits, &targets, usize::MAX).unwrap();
        let mut flat = out.dlogits.data().to_vec();
        flat.push(out.loss_sum);
        flat.push(out.tokens as f32);
        flat
    });
}

#[test]
fn norms_are_thread_invariant() {
    let mut rng = init::seeded_rng(9);
    // 70 columns straddles the COL_BLOCK=64 reduction boundary.
    let x = init::randn(&mut rng, &[21, 70], 1.0);
    let gamma = init::randn(&mut rng, &[70], 0.5);
    let beta = init::randn(&mut rng, &[70], 0.5);
    let dy = init::randn(&mut rng, &[21, 70], 1.0);
    assert_thread_invariant("layernorm", || {
        let (y, ctx) = ops::layernorm(&x, &gamma, &beta, 1e-5).unwrap();
        let mut flat = y.data().to_vec();
        flat.extend_from_slice(&ctx.mean);
        flat.extend_from_slice(&ctx.rstd);
        flat
    });
    assert_thread_invariant("layernorm_bwd", || {
        let (_, ctx) = ops::layernorm(&x, &gamma, &beta, 1e-5).unwrap();
        let (dx, dg, db) = ops::layernorm_bwd(&x, &gamma, &ctx, &dy).unwrap();
        let mut flat = dx.data().to_vec();
        flat.extend_from_slice(dg.data());
        flat.extend_from_slice(db.data());
        flat
    });
    assert_thread_invariant("rmsnorm", || {
        let (y, ctx) = ops::rmsnorm(&x, &gamma, 1e-6).unwrap();
        let mut flat = y.data().to_vec();
        flat.extend_from_slice(&ctx.rrms);
        flat
    });
    assert_thread_invariant("rmsnorm_bwd", || {
        let (_, ctx) = ops::rmsnorm(&x, &gamma, 1e-6).unwrap();
        let (dx, dg) = ops::rmsnorm_bwd(&x, &gamma, &ctx, &dy).unwrap();
        let mut flat = dx.data().to_vec();
        flat.extend_from_slice(dg.data());
        flat
    });
}

#[test]
fn elementwise_kernels_are_thread_invariant() {
    let mut rng = init::seeded_rng(10);
    // > ELEM_BLOCK = 4096 elements so the block split actually happens.
    let x = init::randn(&mut rng, &[9001], 1.5);
    let dy = init::randn(&mut rng, &[9001], 1.0);
    assert_thread_invariant("gelu", || ops::gelu(&x).data().to_vec());
    assert_thread_invariant("gelu_bwd", || {
        ops::gelu_bwd(&x, &dy).unwrap().data().to_vec()
    });
    assert_thread_invariant("silu", || ops::silu(&x).data().to_vec());
    assert_thread_invariant("silu_bwd", || {
        ops::silu_bwd(&x, &dy).unwrap().data().to_vec()
    });
    let xb = init::randn(&mut rng, &[37, 70], 1.0);
    let bias = init::randn(&mut rng, &[70], 1.0);
    assert_thread_invariant("add_bias", || {
        ops::add_bias(&xb, &bias).unwrap().data().to_vec()
    });
    assert_thread_invariant("add_bias_bwd", || {
        ops::add_bias_bwd(&xb, 70).data().to_vec()
    });
}

#[test]
fn parallel_path_actually_differs_from_gated_path_in_schedule_only() {
    // Sanity: with the default threshold a tiny matmul stays sequential;
    // forcing threshold 1 must not change its bits either.
    let mut rng = init::seeded_rng(11);
    let a = init::randn(&mut rng, &[5, 4], 1.0);
    let b = init::randn(&mut rng, &[4, 3], 1.0);
    let gated = ops::matmul(&a, &b).unwrap();
    let forced = {
        let _cfg = ForcedParallel::new(8);
        ops::matmul(&a, &b).unwrap()
    };
    assert_eq!(bits(gated.data()), bits(forced.data()));
}
