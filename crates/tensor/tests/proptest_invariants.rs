//! Property-based invariants of the tensor core: slicing round-trips,
//! linearity of the kernels, and gradient consistency.

use fpdt_tensor::{init, ops, Tensor};
use proptest::prelude::*;

/// Textbook triple loop, the oracle for the tiled/packed gemm.
fn naive_matmul(a: &Tensor, b: &Tensor, m: usize, k: usize, n: usize) -> Tensor {
    let mut c = vec![0.0f32; m * n];
    for i in 0..m {
        for l in 0..k {
            let av = a.data()[i * k + l];
            for j in 0..n {
                c[i * n + j] += av * b.data()[l * n + j];
            }
        }
    }
    Tensor::from_vec(c, &[m, n]).unwrap()
}

/// Maps a sampled index to a dimension that straddles a gemm tile
/// boundary (`MC = 32`, `KC = 256`, `NC = 512`) or is degenerate.
fn edge_dim(tile: usize, idx: usize) -> usize {
    [1, 2, 3, tile - 1, tile, tile + 1][idx % 6]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn tiled_matmul_matches_naive(
        seed in 0u64..1000,
        mi in 0usize..6,
        ki in 0usize..6,
        ni in 0usize..6,
    ) {
        let (m, k, n) = (edge_dim(32, mi), edge_dim(256, ki), edge_dim(64, ni));
        let mut rng = init::seeded_rng(seed);
        let a = init::randn(&mut rng, &[m, k], 1.0);
        let b = init::randn(&mut rng, &[k, n], 1.0);
        let got = ops::matmul(&a, &b).unwrap();
        let want = naive_matmul(&a, &b, m, k, n);
        prop_assert!(got.allclose(&want, 1e-3, 1e-4));
    }

    #[test]
    fn tiled_matmul_bwd_matches_naive_transposes(
        seed in 0u64..1000,
        mi in 0usize..6,
        ki in 0usize..6,
        ni in 0usize..6,
    ) {
        // dA = dC Bᵀ and dB = Aᵀ dC; validate the gemm_nt / gemm_tn tiles
        // against naive matmuls of explicitly transposed operands.
        let (m, k, n) = (edge_dim(32, mi), edge_dim(64, ki), edge_dim(64, ni));
        let mut rng = init::seeded_rng(seed);
        let a = init::randn(&mut rng, &[m, k], 1.0);
        let b = init::randn(&mut rng, &[k, n], 1.0);
        let dc = init::randn(&mut rng, &[m, n], 1.0);
        let (da, db) = ops::matmul_bwd(&a, &b, &dc).unwrap();
        let bt = b.transpose2().unwrap();
        let at = a.transpose2().unwrap();
        let want_da = naive_matmul(&dc, &bt, m, n, k);
        let want_db = naive_matmul(&at, &dc, k, m, n);
        prop_assert!(da.allclose(&want_da, 1e-3, 1e-4));
        prop_assert!(db.allclose(&want_db, 1e-3, 1e-4));
    }

    #[test]
    fn split_concat_identity(
        seed in 0u64..1000,
        outer in 1usize..4,
        axis_len in 1usize..7,
        inner in 1usize..4,
        axis in 0usize..3,
    ) {
        let mut rng = init::seeded_rng(seed);
        let t = init::randn(&mut rng, &[outer, axis_len, inner], 1.0);
        let parts = t.shape()[axis];
        let pieces = t.split(axis, parts).unwrap();
        let refs: Vec<&Tensor> = pieces.iter().collect();
        let back = Tensor::concat(&refs, axis).unwrap();
        prop_assert_eq!(back, t);
    }

    #[test]
    fn narrow_agrees_with_split(
        seed in 0u64..1000,
        parts in 1usize..5,
        pick in 0usize..5,
    ) {
        let mut rng = init::seeded_rng(seed);
        let axis_len = parts * 3;
        let t = init::randn(&mut rng, &[2, axis_len, 2], 1.0);
        let pieces = t.split(1, parts).unwrap();
        let i = pick % parts;
        let via_narrow = t.narrow(1, i * 3, 3).unwrap();
        prop_assert_eq!(&pieces[i], &via_narrow);
    }

    #[test]
    fn matmul_distributes_over_addition(
        seed in 0u64..1000,
        m in 1usize..6,
        k in 1usize..6,
        n in 1usize..6,
    ) {
        let mut rng = init::seeded_rng(seed);
        let a = init::randn(&mut rng, &[m, k], 1.0);
        let b = init::randn(&mut rng, &[m, k], 1.0);
        let c = init::randn(&mut rng, &[k, n], 1.0);
        let lhs = ops::matmul(&a.add(&b).unwrap(), &c).unwrap();
        let rhs = ops::matmul(&a, &c).unwrap().add(&ops::matmul(&b, &c).unwrap()).unwrap();
        prop_assert!(lhs.allclose(&rhs, 1e-3, 1e-4));
    }

    #[test]
    fn matmul_identity_is_noop(
        seed in 0u64..1000,
        m in 1usize..8,
        n in 1usize..8,
    ) {
        let mut rng = init::seeded_rng(seed);
        let a = init::randn(&mut rng, &[m, n], 1.0);
        let got = ops::matmul(&a, &Tensor::eye(n)).unwrap();
        prop_assert!(got.allclose(&a, 1e-5, 1e-6));
    }

    #[test]
    fn transpose_respects_matmul(
        seed in 0u64..1000,
        m in 1usize..5,
        k in 1usize..5,
        n in 1usize..5,
    ) {
        // (A B)^T = B^T A^T
        let mut rng = init::seeded_rng(seed);
        let a = init::randn(&mut rng, &[m, k], 1.0);
        let b = init::randn(&mut rng, &[k, n], 1.0);
        let lhs = ops::matmul(&a, &b).unwrap().transpose2().unwrap();
        let rhs = ops::matmul(&b.transpose2().unwrap(), &a.transpose2().unwrap()).unwrap();
        prop_assert!(lhs.allclose(&rhs, 1e-3, 1e-4));
    }

    #[test]
    fn softmax_rows_are_distributions(
        seed in 0u64..1000,
        rows in 1usize..6,
        cols in 1usize..10,
        scale in 0.1f32..20.0,
    ) {
        let mut rng = init::seeded_rng(seed);
        let x = init::randn(&mut rng, &[rows, cols], scale);
        let y = ops::softmax_rows(&x);
        for row in y.data().chunks(cols) {
            let s: f32 = row.iter().sum();
            prop_assert!((s - 1.0).abs() < 1e-4);
            prop_assert!(row.iter().all(|&p| (0.0..=1.0 + 1e-6).contains(&p)));
        }
    }

    #[test]
    fn layernorm_is_scale_invariant(
        seed in 0u64..1000,
        alpha in 0.5f32..8.0,
    ) {
        // LN(a * x) == LN(x) for gamma=1, beta=0 (mean/var both scale).
        let mut rng = init::seeded_rng(seed);
        let x = init::randn(&mut rng, &[3, 16], 1.0);
        let g = Tensor::ones(&[16]);
        let b = Tensor::zeros(&[16]);
        let (y1, _) = ops::layernorm(&x, &g, &b, 1e-6).unwrap();
        let (y2, _) = ops::layernorm(&x.scale(alpha), &g, &b, 1e-6).unwrap();
        prop_assert!(y1.allclose(&y2, 1e-2, 1e-3));
    }

    #[test]
    fn rope_is_norm_preserving_and_invertible(
        seed in 0u64..1000,
        p0 in 0usize..512,
        p1 in 0usize..512,
    ) {
        let mut rng = init::seeded_rng(seed);
        let x = init::randn(&mut rng, &[2, 2, 8], 1.0);
        let pos = [p0, p1];
        let y = ops::rope(&x, &pos, 10_000.0).unwrap();
        prop_assert!((x.norm() - y.norm()).abs() < 1e-3);
        let back = ops::rope_bwd(&y, &pos, 10_000.0).unwrap();
        prop_assert!(back.allclose(&x, 1e-3, 1e-4));
    }

    #[test]
    fn cross_entropy_chunking_is_exact(
        seed in 0u64..1000,
        rows_half in 1usize..5,
        vocab in 2usize..12,
    ) {
        let rows = rows_half * 2;
        let mut rng = init::seeded_rng(seed);
        let logits = init::randn(&mut rng, &[rows, vocab], 2.0);
        let targets: Vec<usize> = (0..rows).map(|i| (i * 7 + seed as usize) % vocab).collect();
        let full = ops::cross_entropy(&logits, &targets, usize::MAX).unwrap();
        let top = logits.narrow(0, 0, rows / 2).unwrap();
        let bot = logits.narrow(0, rows / 2, rows / 2).unwrap();
        let a = ops::cross_entropy(&top, &targets[..rows / 2], usize::MAX).unwrap();
        let b = ops::cross_entropy(&bot, &targets[rows / 2..], usize::MAX).unwrap();
        prop_assert!((full.loss_sum - (a.loss_sum + b.loss_sum)).abs() < 1e-3);
        prop_assert_eq!(full.tokens, a.tokens + b.tokens);
    }
}
