//! Bitwise equivalence of the AVX2/FMA microkernels against the portable
//! scalar fallback, across odd/remainder shapes and kernel-pool thread
//! budgets (1, 2, and 8 threads).
//!
//! Both backends run the same generic kernel over an 8-lane vector trait:
//! identical register blocking, identical remainder handling, and a fixed
//! 8-lane reduction tree, so every result must match the scalar backend
//! *bitwise* — the backend is a pure performance knob. These tests pin
//! that contract on the raw `mk` primitives (explicit-backend `_on`
//! entry points) and on the full `ops` gemm family with the process-wide
//! backend forced.
//!
//! On hardware without AVX2 the SIMD legs are skipped; the scalar legs
//! still exercise the dispatch plumbing.

use fpdt_tensor::mk::{self, Backend, Panel};
use fpdt_tensor::{init, ops, par};
use proptest::prelude::*;
use rayon::pool;
use std::sync::{Mutex, MutexGuard};

/// Serializes tests that touch process-wide kernel state (backend
/// override, thread budget, parallel threshold).
static CONFIG_LOCK: Mutex<()> = Mutex::new(());

/// Forces a kernel backend (and optionally a thread budget with the
/// parallel threshold dropped to 1) for the guard's lifetime, restoring
/// the previous configuration on drop.
struct ForcedKernels<'a> {
    _guard: MutexGuard<'a, ()>,
    prev_backend: Option<Backend>,
    prev_threshold: usize,
    prev_threads: usize,
}

impl ForcedKernels<'_> {
    fn new(backend: Backend, threads: usize) -> Self {
        let guard = CONFIG_LOCK.lock().unwrap();
        ForcedKernels {
            _guard: guard,
            prev_backend: mk::set_backend(Some(backend)),
            prev_threshold: par::set_par_threshold(1),
            prev_threads: pool::set_threads(threads),
        }
    }
}

impl Drop for ForcedKernels<'_> {
    fn drop(&mut self) {
        pool::set_threads(self.prev_threads);
        par::set_par_threshold(self.prev_threshold);
        mk::set_backend(self.prev_backend);
    }
}

fn bits(t: &[f32]) -> Vec<u32> {
    t.iter().map(|v| v.to_bits()).collect()
}

/// Backends to compare: scalar always, AVX2 when the CPU has it.
fn backends() -> Vec<Backend> {
    let mut out = vec![Backend::Scalar];
    if mk::avx2_available() {
        out.push(Backend::Avx2);
    }
    out
}

fn randv(seed: u64, n: usize) -> Vec<f32> {
    let mut rng = init::seeded_rng(seed);
    init::randn(&mut rng, &[n.max(1)], 1.0).data()[..n].to_vec()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// `dot`/`axpy`/`scale`/`dscale` hit the 8-lane body plus a scalar
    /// tail; lengths below 8 are tail-only. All must match bitwise.
    #[test]
    fn vector_primitives_match_scalar_bitwise(len in 0usize..70, seed in 0u64..1_000) {
        let a = randv(seed, len);
        let b = randv(seed.wrapping_add(1), len);
        let s = 0.37f32 + (seed % 7) as f32;
        let reference = {
            let be = Backend::Scalar;
            let mut ax = a.clone();
            mk::axpy_on(be, &mut ax, s, &b);
            let mut sc = a.clone();
            mk::scale_on(be, &mut sc, s);
            let mut ds = a.clone();
            mk::dscale_on(be, &mut ds, s);
            (mk::dot_on(be, &a, &b).to_bits(), bits(&ax), bits(&sc), bits(&ds))
        };
        for be in backends() {
            let mut ax = a.clone();
            mk::axpy_on(be, &mut ax, s, &b);
            let mut sc = a.clone();
            mk::scale_on(be, &mut sc, s);
            let mut ds = a.clone();
            mk::dscale_on(be, &mut ds, s);
            let got = (mk::dot_on(be, &a, &b).to_bits(), bits(&ax), bits(&sc), bits(&ds));
            prop_assert_eq!(&reference, &got, "backend {:?} diverged at len {}", be, len);
        }
    }

    /// A raw panel with irregular geometry: rows spanning 4-row tiles plus
    /// a remainder, columns spanning 16-wide and 8-wide vector tiles plus
    /// a scalar tail, including `kc == 0` (pure C pass-through).
    #[test]
    fn gemm_panel_matches_scalar_bitwise(
        rows in 1usize..10,
        kc in 0usize..20,
        nc in 1usize..40,
        seed in 0u64..1_000,
    ) {
        let a = randv(seed, rows * kc.max(1));
        let bp = randv(seed.wrapping_add(1), kc.max(1) * nc);
        let c0 = randv(seed.wrapping_add(2), rows * nc);
        let run = |be: Backend| {
            let mut c = c0.clone();
            let p = Panel {
                a: &a,
                a_off: 0,
                a_stride: kc,
                bp: &bp,
                b_stride: nc,
                b_col0: 0,
                kc,
                nc,
                rows,
                c_stride: nc,
                c_col0: 0,
            };
            mk::gemm_panel_on(be, &p, &mut c);
            bits(&c)
        };
        let reference = run(Backend::Scalar);
        for be in backends() {
            prop_assert_eq!(&reference, &run(be), "backend {:?} diverged", be);
        }
    }

    /// The strided row-dot kernel behind `gemm_nt`: every `b` row offset
    /// and stride combination must reduce through the same fixed tree.
    #[test]
    fn dot_rows_matches_scalar_bitwise(
        n in 1usize..12,
        k in 1usize..40,
        kc in 1usize..20,
        seed in 0u64..1_000,
    ) {
        let kc = kc.min(k);
        let pc = (k - kc) / 2; // panel offset inside the depth dimension
        let a_row = randv(seed, k);
        let b = randv(seed.wrapping_add(1), n * k);
        let run = |be: Backend| {
            let mut c_row = randv(seed.wrapping_add(2), n);
            mk::dot_rows_on(be, &mut c_row, &a_row[pc..], &b, 0, k, pc, kc);
            bits(&c_row)
        };
        let reference = run(Backend::Scalar);
        for be in backends() {
            prop_assert_eq!(&reference, &run(be), "backend {:?} diverged", be);
        }
    }

    /// The full gemm family through `ops`, with the process-wide backend
    /// forced: blocked panels, packing, and remainder tiles all compose to
    /// the same bits, at 1, 2, and 8 kernel threads alike.
    #[test]
    fn gemm_family_matches_scalar_bitwise_at_any_thread_count(
        m in 1usize..24,
        k in 1usize..40,
        n in 1usize..24,
        seed in 0u64..200,
    ) {
        let a = randv(seed, m * k);
        let b = randv(seed.wrapping_add(1), k * n);
        let at: Vec<f32> = (0..k * m).map(|i| a[(i % m) * k + i / m]).collect();
        let bt: Vec<f32> = (0..n * k).map(|i| b[(i % k) * n + i / k]).collect();
        let run = |be: Backend, threads: usize| {
            let _cfg = ForcedKernels::new(be, threads);
            let mut c = vec![0.0f32; m * n];
            ops::gemm(m, k, n, &a, &b, &mut c);
            let mut c_nt = vec![0.0f32; m * n];
            ops::gemm_nt(m, k, n, &a, &bt, &mut c_nt);
            let mut c_tn = vec![0.0f32; m * n];
            ops::gemm_tn(m, k, n, &at, &b, &mut c_tn);
            (bits(&c), bits(&c_nt), bits(&c_tn))
        };
        let reference = run(Backend::Scalar, 1);
        for be in backends() {
            for threads in [1usize, 2, 8] {
                prop_assert_eq!(
                    &reference,
                    &run(be, threads),
                    "backend {:?} at {} threads diverged",
                    be,
                    threads
                );
            }
        }
    }
}

/// GQA-shaped matmuls (odd head counts, head dims straddling the 8-lane
/// width) plus the backward pass, forced through both backends at every
/// thread budget.
#[test]
fn matmul_and_backward_match_scalar_bitwise() {
    // (m, k, n) covering 4-row tile remainders, sub-8 and 8+tail columns.
    let shapes = [(67usize, 43usize, 35usize), (5, 7, 3), (33, 96, 17)];
    for (si, &(m, k, n)) in shapes.iter().enumerate() {
        let mut rng = init::seeded_rng(90 + si as u64);
        let a = init::randn(&mut rng, &[m, k], 1.0);
        let b = init::randn(&mut rng, &[k, n], 1.0);
        let dc = init::randn(&mut rng, &[m, n], 1.0);
        let run = |be: Backend, threads: usize| {
            let _cfg = ForcedKernels::new(be, threads);
            let c = ops::matmul(&a, &b).unwrap();
            let (da, db) = ops::matmul_bwd(&a, &b, &dc).unwrap();
            let mut flat = c.data().to_vec();
            flat.extend_from_slice(da.data());
            flat.extend_from_slice(db.data());
            bits(&flat)
        };
        let reference = run(Backend::Scalar, 1);
        assert!(
            reference.iter().any(|&v| v != 0),
            "all-zero output would make the comparison vacuous"
        );
        for be in backends() {
            for threads in [1usize, 2, 8] {
                assert_eq!(
                    reference,
                    run(be, threads),
                    "shape {m}x{k}x{n}: backend {be:?} at {threads} threads diverged"
                );
            }
        }
    }
}

/// The backend override itself round-trips and reports availability
/// consistently with what dispatch actually uses.
#[test]
fn backend_override_round_trips() {
    let _guard = CONFIG_LOCK.lock().unwrap();
    let prev = mk::set_backend(Some(Backend::Scalar));
    assert_eq!(mk::backend(), Backend::Scalar);
    if mk::avx2_available() {
        mk::set_backend(Some(Backend::Avx2));
        assert_eq!(mk::backend(), Backend::Avx2);
    }
    mk::set_backend(None);
    // Auto mode picks AVX2 exactly when the CPU supports it.
    assert_eq!(mk::backend() == Backend::Avx2, mk::avx2_available());
    mk::set_backend(prev);
}
