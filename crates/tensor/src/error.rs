use std::error::Error;
use std::fmt;

/// Error type for tensor construction and shape-checked operations.
///
/// Every fallible public function in this crate returns
/// [`TensorError`](crate::TensorError) so callers can report exactly which
/// shape contract was violated.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TensorError {
    /// The provided buffer length does not match the product of the shape.
    LengthMismatch {
        /// Number of elements implied by the requested shape.
        expected: usize,
        /// Number of elements actually provided.
        actual: usize,
    },
    /// Two operands have incompatible shapes for the requested operation.
    ShapeMismatch {
        /// Operation name, e.g. `"matmul"`.
        op: &'static str,
        /// Shape of the left-hand operand.
        lhs: Vec<usize>,
        /// Shape of the right-hand operand.
        rhs: Vec<usize>,
    },
    /// An axis index is out of range for the tensor's rank.
    AxisOutOfRange {
        /// Requested axis.
        axis: usize,
        /// Rank of the tensor.
        ndim: usize,
    },
    /// A split/narrow request does not evenly divide or exceeds the axis.
    InvalidSlice {
        /// Human-readable description of the violated constraint.
        what: String,
    },
    /// A rank other than the one required by the operation was supplied.
    RankMismatch {
        /// Operation name.
        op: &'static str,
        /// Required rank.
        expected: usize,
        /// Provided rank.
        actual: usize,
    },
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::LengthMismatch { expected, actual } => {
                write!(
                    f,
                    "buffer length {actual} does not match shape product {expected}"
                )
            }
            TensorError::ShapeMismatch { op, lhs, rhs } => {
                write!(f, "incompatible shapes for {op}: {lhs:?} vs {rhs:?}")
            }
            TensorError::AxisOutOfRange { axis, ndim } => {
                write!(f, "axis {axis} out of range for rank-{ndim} tensor")
            }
            TensorError::InvalidSlice { what } => write!(f, "invalid slice: {what}"),
            TensorError::RankMismatch {
                op,
                expected,
                actual,
            } => {
                write!(f, "{op} requires rank-{expected} tensor, got rank {actual}")
            }
        }
    }
}

impl Error for TensorError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase() {
        let errs = [
            TensorError::LengthMismatch {
                expected: 4,
                actual: 3,
            },
            TensorError::ShapeMismatch {
                op: "matmul",
                lhs: vec![2, 3],
                rhs: vec![2, 3],
            },
            TensorError::AxisOutOfRange { axis: 5, ndim: 2 },
            TensorError::InvalidSlice {
                what: "start 3 past end".into(),
            },
            TensorError::RankMismatch {
                op: "layernorm",
                expected: 2,
                actual: 1,
            },
        ];
        for e in errs {
            let s = e.to_string();
            assert!(!s.is_empty());
            assert!(s.chars().next().unwrap().is_lowercase());
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TensorError>();
    }
}
