//! bfloat16 payload codec for offload and communication traffic.
//!
//! FPDT's testbed moves activations over PCIe and the all-to-all fabric in
//! bf16 (half the bytes of f32) while every kernel computes in full f32.
//! This module provides the storage format: round-to-nearest-even
//! narrowing on the way out, exact widening (`u16 << 16`) on the way back.
//! Conversion is a pure elementwise function, so it is deterministic and
//! schedule-invariant — enabling bf16 payloads can change numerics (one
//! rounding per transfer) but never the shape or order of the pipeline.

use crate::{Result, Tensor};

/// Narrows one `f32` to bf16 bits with round-to-nearest-even.
///
/// NaN inputs are quieted (the top mantissa bit is forced) so a payload
/// NaN can never round to infinity; infinities and signs pass through
/// exactly, and f32 subnormals land on the nearest bf16 subnormal.
#[inline]
pub fn f32_to_bf16(x: f32) -> u16 {
    let bits = x.to_bits();
    if x.is_nan() {
        return ((bits >> 16) as u16) | 0x0040;
    }
    let round = 0x7fff + ((bits >> 16) & 1);
    ((bits.wrapping_add(round)) >> 16) as u16
}

/// Widens bf16 bits back to `f32` — exact, every bf16 value is
/// representable.
#[inline]
pub fn bf16_to_f32(b: u16) -> f32 {
    f32::from_bits((b as u32) << 16)
}

/// A shaped buffer of bf16 values: the wire/host format for offloaded KV
/// chunks and all-to-all payloads under `FPDT_BF16`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Bf16Tensor {
    data: Vec<u16>,
    shape: Vec<usize>,
}

impl Bf16Tensor {
    /// Rounds an `f32` tensor to bf16 (RNE per element).
    pub fn from_f32(t: &Tensor) -> Self {
        Bf16Tensor {
            data: t.data().iter().map(|&x| f32_to_bf16(x)).collect(),
            shape: t.shape().to_vec(),
        }
    }

    /// Widens back to an `f32` [`Tensor`] with the original shape.
    pub fn to_f32(&self) -> Result<Tensor> {
        Tensor::from_vec(self.data.iter().map(|&b| bf16_to_f32(b)).collect(), &self.shape)
    }

    /// Raw bf16 payload bits.
    pub fn data(&self) -> &[u16] {
        &self.data
    }

    /// Tensor shape.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Number of elements.
    pub fn numel(&self) -> usize {
        self.data.len()
    }

    /// Bytes this payload occupies on the wire / in the host pool
    /// (2 per element — half the f32 footprint).
    pub fn wire_bytes(&self) -> u64 {
        (self.numel() * 2) as u64
    }
}

/// Rounds a whole `f32` slice to bf16 bits (the comm wire encoder).
pub fn encode_slice(xs: &[f32]) -> Vec<u16> {
    xs.iter().map(|&x| f32_to_bf16(x)).collect()
}

/// Widens a bf16 bit slice back to `f32` (the comm wire decoder).
pub fn decode_slice(bs: &[u16]) -> Vec<f32> {
    bs.iter().map(|&b| bf16_to_f32(b)).collect()
}

/// `f32` values that survive a bf16 round trip unchanged (≤ 8 mantissa
/// bits): the round trip is the identity on these, which the codec tests
/// rely on.
pub fn round_trip(x: f32) -> f32 {
    bf16_to_f32(f32_to_bf16(x))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_values_round_trip() {
        for x in [0.0f32, -0.0, 1.0, -1.0, 0.5, 2.0, 96.0, -0.09375, 3.140625] {
            assert_eq!(round_trip(x).to_bits(), x.to_bits(), "{x}");
        }
    }

    #[test]
    fn rounds_to_nearest_even() {
        // 1.0 + 2^-9 sits exactly between bf16 neighbours 1.0 and 1.0 + 2^-8;
        // RNE picks the even mantissa (1.0).
        let halfway = f32::from_bits(0x3f80_8000);
        assert_eq!(round_trip(halfway), 1.0);
        // 1.0 + 3 * 2^-9 is halfway between 1.0 + 2^-8 and 1.0 + 2^-7;
        // RNE picks 1.0 + 2^-7 (even mantissa).
        let halfway_up = f32::from_bits(0x3f81_8000);
        assert_eq!(round_trip(halfway_up).to_bits(), f32::from_bits(0x3f82_0000).to_bits());
        // Anything above the midpoint rounds up.
        let above = f32::from_bits(0x3f80_8001);
        assert_eq!(round_trip(above).to_bits(), f32::from_bits(0x3f81_0000).to_bits());
    }

    #[test]
    fn relative_error_is_bounded_by_half_ulp() {
        // bf16 has 8 significand bits: |x - rt(x)| <= 2^-9 * 2^exp.
        for i in 0..1000 {
            let x = (i as f32 * 0.7371).sin() * 100.0;
            let rt = round_trip(x);
            assert!((x - rt).abs() <= x.abs() * (1.0 / 256.0) + f32::MIN_POSITIVE);
        }
    }

    #[test]
    fn subnormals_narrow_to_nearest_bf16_subnormal() {
        // The smallest f32 subnormal underflows to zero in bf16...
        assert_eq!(round_trip(f32::MIN_POSITIVE / 2.0_f32.powi(23)).to_bits(), 0);
        // ...while a value at the bf16 subnormal grid survives exactly.
        let bf16_subnormal = f32::from_bits(0x0040_0000);
        assert_eq!(round_trip(bf16_subnormal).to_bits(), bf16_subnormal.to_bits());
        // Sign of an underflowed negative subnormal is preserved (-0.0).
        let neg = -f32::from_bits(1);
        assert_eq!(round_trip(neg).to_bits(), (-0.0f32).to_bits());
    }

    #[test]
    fn inf_and_nan_are_preserved() {
        assert_eq!(round_trip(f32::INFINITY), f32::INFINITY);
        assert_eq!(round_trip(f32::NEG_INFINITY), f32::NEG_INFINITY);
        assert!(round_trip(f32::NAN).is_nan());
        // A signalling-ish NaN with a low-only payload must stay NaN, not
        // truncate to infinity.
        let snan = f32::from_bits(0x7f80_0001);
        assert!(round_trip(snan).is_nan());
        // Large finite values halfway past bf16::MAX round up to infinity
        // (correct RNE overflow), not to garbage.
        let near_max = f32::from_bits(0x7f7f_ffff); // f32::MAX
        assert_eq!(round_trip(near_max), f32::INFINITY);
    }

    #[test]
    fn tensor_round_trip_preserves_shape_and_halves_bytes() {
        let t = Tensor::from_vec((0..24).map(|i| i as f32 * 0.3).collect(), &[2, 3, 4]).unwrap();
        let b = Bf16Tensor::from_f32(&t);
        assert_eq!(b.shape(), &[2, 3, 4]);
        assert_eq!(b.numel(), 24);
        assert_eq!(b.wire_bytes(), 48);
        let back = b.to_f32().unwrap();
        assert_eq!(back.shape(), t.shape());
        for (x, y) in t.data().iter().zip(back.data()) {
            assert!((x - y).abs() <= x.abs() / 256.0);
        }
    }

    #[test]
    fn slice_codec_matches_scalar_codec() {
        let xs: Vec<f32> = (0..50).map(|i| (i as f32).exp2() - 3.0).collect();
        let enc = encode_slice(&xs);
        assert_eq!(enc, xs.iter().map(|&x| f32_to_bf16(x)).collect::<Vec<_>>());
        let dec = decode_slice(&enc);
        assert_eq!(dec, xs.iter().map(|&x| round_trip(x)).collect::<Vec<_>>());
    }
}
