//! Runtime-dispatched SIMD microkernels (AVX2/FMA with a portable scalar
//! fallback) shared by the gemm panels in [`crate::ops`] and the
//! online-softmax kernels in `fpdt-attention`.
//!
//! Every kernel is written **once**, generically over the 8-lane vector
//! trait `V8`, and instantiated twice: for [`Backend::Scalar`] the lanes
//! are a plain `[f32; 8]` whose fused multiply-adds go through
//! [`f32::mul_add`], and for [`Backend::Avx2`] they are a `__m256` inside
//! a `#[target_feature(enable = "avx2,fma")]` wrapper. Both instantiations
//! therefore execute the *identical* blocking, remainder handling, and
//! reduction tree, and `f32::mul_add` is IEEE-754 fusedMultiplyAdd exactly
//! like `vfmadd`, so the two backends are **bitwise identical** by
//! construction — the property the kernel-equivalence suite locks down.
//!
//! Dispatch order:
//!
//! 1. a process-wide override installed with [`set_backend`] (tests and
//!    benches force one path with this),
//! 2. the `FPDT_SIMD` environment variable (`0`/`off`/`scalar` forces the
//!    fallback; anything else means auto),
//! 3. CPU detection (`avx2` + `fma`), cached after the first query.
//!
//! Compiling with the `scalar-only` cargo feature removes the AVX2 path
//! entirely (fallback-parity builds); [`avx2_available`] then reports
//! `false` and every dispatch lands on the scalar kernels.
//!
//! Because the backends are bitwise identical, the choice is a pure
//! performance knob: it can never change a loss, a gradient, or a golden
//! digest.

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;

/// Which microkernel instantiation executes the vectorizable inner loops.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Backend {
    /// Portable `[f32; 8]` lanes using `f32::mul_add` (always available).
    Scalar,
    /// AVX2 + FMA `__m256` lanes (x86-64 with runtime CPU support).
    Avx2,
}

/// Whether the AVX2/FMA instantiation can run on this build and CPU.
pub fn avx2_available() -> bool {
    #[cfg(all(target_arch = "x86_64", not(feature = "scalar-only")))]
    {
        static AVAIL: OnceLock<bool> = OnceLock::new();
        *AVAIL.get_or_init(|| {
            std::is_x86_feature_detected!("avx2") && std::is_x86_feature_detected!("fma")
        })
    }
    #[cfg(not(all(target_arch = "x86_64", not(feature = "scalar-only"))))]
    {
        false
    }
}

/// 0 = no override (env/CPU dispatch), 1 = forced scalar, 2 = forced AVX2.
static OVERRIDE: AtomicU8 = AtomicU8::new(0);

/// Installs (or with `None`, clears) a process-wide backend override and
/// returns the previous override. Equivalence tests and the kernels bench
/// pin each path with this; a forced [`Backend::Avx2`] silently degrades
/// to scalar when [`avx2_available`] is `false`.
pub fn set_backend(b: Option<Backend>) -> Option<Backend> {
    let code = match b {
        None => 0,
        Some(Backend::Scalar) => 1,
        Some(Backend::Avx2) => 2,
    };
    match OVERRIDE.swap(code, Ordering::Relaxed) {
        1 => Some(Backend::Scalar),
        2 => Some(Backend::Avx2),
        _ => None,
    }
}

fn default_backend() -> Backend {
    static DEFAULT: OnceLock<Backend> = OnceLock::new();
    *DEFAULT.get_or_init(|| {
        // `FPDT_SIMD` accepts `scalar` on top of the shared off spellings;
        // the read itself goes through the crate's one env entry point.
        let enabled =
            crate::env::flag_with_off_values("FPDT_SIMD", true, &["0", "off", "false", "scalar"]);
        if enabled && avx2_available() {
            Backend::Avx2
        } else {
            Backend::Scalar
        }
    })
}

/// The backend the dispatched kernels will use right now.
pub fn backend() -> Backend {
    match OVERRIDE.load(Ordering::Relaxed) {
        1 => Backend::Scalar,
        2 => {
            if avx2_available() {
                Backend::Avx2
            } else {
                Backend::Scalar
            }
        }
        _ => default_backend(),
    }
}

/// 8-lane f32 vector: the single abstraction both backends implement.
/// Methods are `unsafe` because `loadu`/`storeu` take raw pointers; every
/// implementation must be a pure lane-wise IEEE-754 operation so that the
/// two instantiations stay bitwise identical.
trait V8: Copy {
    unsafe fn zero() -> Self;
    unsafe fn splat(x: f32) -> Self;
    unsafe fn loadu(p: *const f32) -> Self;
    unsafe fn storeu(self, p: *mut f32);
    /// `self + a * b`, fused (single rounding) per lane.
    unsafe fn fma(self, a: Self, b: Self) -> Self;
    unsafe fn mul(self, o: Self) -> Self;
    unsafe fn add(self, o: Self) -> Self;
    unsafe fn div(self, o: Self) -> Self;
    /// Horizontal sum with the fixed tree
    /// `((x0+x4)+(x2+x6)) + ((x1+x5)+(x3+x7))` — the lane pairing the
    /// AVX2 `extractf128`/`movehl`/`shuffle` sequence produces.
    unsafe fn reduce(self) -> f32;
}

#[derive(Clone, Copy)]
struct Sc([f32; 8]);

impl V8 for Sc {
    #[inline(always)]
    unsafe fn zero() -> Self {
        Sc([0.0; 8])
    }
    #[inline(always)]
    unsafe fn splat(x: f32) -> Self {
        Sc([x; 8])
    }
    #[inline(always)]
    unsafe fn loadu(p: *const f32) -> Self {
        let mut v = [0.0f32; 8];
        for (i, lane) in v.iter_mut().enumerate() {
            *lane = *p.add(i);
        }
        Sc(v)
    }
    #[inline(always)]
    unsafe fn storeu(self, p: *mut f32) {
        for (i, lane) in self.0.iter().enumerate() {
            *p.add(i) = *lane;
        }
    }
    #[inline(always)]
    unsafe fn fma(self, a: Self, b: Self) -> Self {
        let mut v = [0.0f32; 8];
        for (i, lane) in v.iter_mut().enumerate() {
            *lane = a.0[i].mul_add(b.0[i], self.0[i]);
        }
        Sc(v)
    }
    #[inline(always)]
    unsafe fn mul(self, o: Self) -> Self {
        let mut v = [0.0f32; 8];
        for (i, lane) in v.iter_mut().enumerate() {
            *lane = self.0[i] * o.0[i];
        }
        Sc(v)
    }
    #[inline(always)]
    unsafe fn add(self, o: Self) -> Self {
        let mut v = [0.0f32; 8];
        for (i, lane) in v.iter_mut().enumerate() {
            *lane = self.0[i] + o.0[i];
        }
        Sc(v)
    }
    #[inline(always)]
    unsafe fn div(self, o: Self) -> Self {
        let mut v = [0.0f32; 8];
        for (i, lane) in v.iter_mut().enumerate() {
            *lane = self.0[i] / o.0[i];
        }
        Sc(v)
    }
    #[inline(always)]
    unsafe fn reduce(self) -> f32 {
        let x = self.0;
        // lo + hi halves, then the movehl pairing, then the final shuffle.
        let w = [x[0] + x[4], x[1] + x[5], x[2] + x[6], x[3] + x[7]];
        let u = [w[0] + w[2], w[1] + w[3]];
        u[0] + u[1]
    }
}

#[cfg(all(target_arch = "x86_64", not(feature = "scalar-only")))]
mod avx {
    use super::V8;
    use std::arch::x86_64::*;

    #[derive(Clone, Copy)]
    pub(super) struct Vx(__m256);

    impl V8 for Vx {
        #[inline(always)]
        unsafe fn zero() -> Self {
            Vx(_mm256_setzero_ps())
        }
        #[inline(always)]
        unsafe fn splat(x: f32) -> Self {
            Vx(_mm256_set1_ps(x))
        }
        #[inline(always)]
        unsafe fn loadu(p: *const f32) -> Self {
            Vx(_mm256_loadu_ps(p))
        }
        #[inline(always)]
        unsafe fn storeu(self, p: *mut f32) {
            _mm256_storeu_ps(p, self.0)
        }
        #[inline(always)]
        unsafe fn fma(self, a: Self, b: Self) -> Self {
            Vx(_mm256_fmadd_ps(a.0, b.0, self.0))
        }
        #[inline(always)]
        unsafe fn mul(self, o: Self) -> Self {
            Vx(_mm256_mul_ps(self.0, o.0))
        }
        #[inline(always)]
        unsafe fn add(self, o: Self) -> Self {
            Vx(_mm256_add_ps(self.0, o.0))
        }
        #[inline(always)]
        unsafe fn div(self, o: Self) -> Self {
            Vx(_mm256_div_ps(self.0, o.0))
        }
        #[inline(always)]
        unsafe fn reduce(self) -> f32 {
            let lo = _mm256_castps256_ps128(self.0);
            let hi = _mm256_extractf128_ps(self.0, 1);
            let w = _mm_add_ps(lo, hi);
            let u = _mm_add_ps(w, _mm_movehl_ps(w, w));
            let s = _mm_add_ss(u, _mm_shuffle_ps(u, u, 0b01));
            _mm_cvtss_f32(s)
        }
    }
}

// ---------------------------------------------------------------------------
// Generic kernel bodies (written once, instantiated per backend).
// ---------------------------------------------------------------------------

#[inline(always)]
unsafe fn dot_g<V: V8>(a: &[f32], b: &[f32]) -> f32 {
    let n = a.len().min(b.len());
    let (pa, pb) = (a.as_ptr(), b.as_ptr());
    let mut acc0 = V::zero();
    let mut acc1 = V::zero();
    let mut acc2 = V::zero();
    let mut acc3 = V::zero();
    let mut i = 0;
    while i + 32 <= n {
        acc0 = acc0.fma(V::loadu(pa.add(i)), V::loadu(pb.add(i)));
        acc1 = acc1.fma(V::loadu(pa.add(i + 8)), V::loadu(pb.add(i + 8)));
        acc2 = acc2.fma(V::loadu(pa.add(i + 16)), V::loadu(pb.add(i + 16)));
        acc3 = acc3.fma(V::loadu(pa.add(i + 24)), V::loadu(pb.add(i + 24)));
        i += 32;
    }
    while i + 8 <= n {
        acc0 = acc0.fma(V::loadu(pa.add(i)), V::loadu(pb.add(i)));
        i += 8;
    }
    let mut s = acc0.add(acc1).add(acc2.add(acc3)).reduce();
    while i < n {
        s = (*pa.add(i)).mul_add(*pb.add(i), s);
        i += 1;
    }
    s
}

#[inline(always)]
unsafe fn axpy_g<V: V8>(dst: &mut [f32], s: f32, src: &[f32]) {
    let n = dst.len().min(src.len());
    let dp = dst.as_mut_ptr();
    let sp = src.as_ptr();
    let sv = V::splat(s);
    let mut i = 0;
    while i + 8 <= n {
        V8::fma(V::loadu(dp.add(i) as *const f32), sv, V::loadu(sp.add(i))).storeu(dp.add(i));
        i += 8;
    }
    while i < n {
        *dp.add(i) = s.mul_add(*sp.add(i), *dp.add(i));
        i += 1;
    }
}

#[inline(always)]
unsafe fn scale_g<V: V8>(dst: &mut [f32], s: f32) {
    let n = dst.len();
    let dp = dst.as_mut_ptr();
    let sv = V::splat(s);
    let mut i = 0;
    while i + 8 <= n {
        V::loadu(dp.add(i) as *const f32).mul(sv).storeu(dp.add(i));
        i += 8;
    }
    while i < n {
        *dp.add(i) *= s;
        i += 1;
    }
}

#[inline(always)]
unsafe fn dscale_g<V: V8>(dst: &mut [f32], d: f32) {
    let n = dst.len();
    let dp = dst.as_mut_ptr();
    let dv = V::splat(d);
    let mut i = 0;
    while i + 8 <= n {
        V::loadu(dp.add(i) as *const f32).div(dv).storeu(dp.add(i));
        i += 8;
    }
    while i < n {
        *dp.add(i) /= d;
        i += 1;
    }
}

/// One register-blocked gemm panel job: the geometry of a
/// `C_block += A_rows · B_panel` accumulation over a `kc`-deep panel.
///
/// * row `r` of the block reads `a[a_off + r * a_stride ..][..kc]`,
/// * depth `l` of the panel reads `bp[l * b_stride + b_col0 ..][..nc]`,
/// * row `r` of the destination writes
///   `c[r * c_stride + c_col0 ..][..nc]` (the slice handed to
///   [`gemm_panel`]).
///
/// Both `gemm` (packed B scratch) and `gemm_tn` (strided rows of the
/// original B) describe their inner loops with this one struct, so a
/// single microkernel serves every layout.
#[derive(Clone, Copy)]
pub struct Panel<'a> {
    /// Source matrix providing the block's A rows.
    pub a: &'a [f32],
    /// Offset of the block's first A row within `a`.
    pub a_off: usize,
    /// Stride between consecutive A rows.
    pub a_stride: usize,
    /// B panel (packed scratch or a view of the original matrix).
    pub bp: &'a [f32],
    /// Stride between consecutive depth rows of the panel.
    pub b_stride: usize,
    /// First panel column to read at each depth.
    pub b_col0: usize,
    /// Panel depth (number of `l` terms accumulated per element).
    pub kc: usize,
    /// Panel width (columns of C written).
    pub nc: usize,
    /// Rows of C in this block.
    pub rows: usize,
    /// Stride between consecutive C rows.
    pub c_stride: usize,
    /// First C column written in each row.
    pub c_col0: usize,
}

impl Panel<'_> {
    fn check(&self, c_len: usize) {
        if self.rows == 0 || self.nc == 0 {
            return;
        }
        assert!(self.a_off + (self.rows - 1) * self.a_stride + self.kc <= self.a.len());
        if self.kc > 0 {
            assert!((self.kc - 1) * self.b_stride + self.b_col0 + self.nc <= self.bp.len());
        }
        assert!((self.rows - 1) * self.c_stride + self.c_col0 + self.nc <= c_len);
    }
}

/// `MR x (NV * 8)` register tile: load C, accumulate `kc` fused terms in
/// ascending-`l` order, store back. The ascending-`l` per-element order is
/// what keeps results independent of tile position and thread count.
#[inline(always)]
unsafe fn tile_g<V: V8, const MR: usize, const NV: usize>(
    p: &Panel<'_>,
    c: *mut f32,
    r0: usize,
    j0: usize,
) {
    let mut acc = [[V::zero(); NV]; MR];
    for (ri, row) in acc.iter_mut().enumerate() {
        let base = (r0 + ri) * p.c_stride + p.c_col0 + j0;
        for (vi, v) in row.iter_mut().enumerate() {
            *v = V::loadu(c.add(base + vi * 8) as *const f32);
        }
    }
    let ap = p.a.as_ptr();
    let bp = p.bp.as_ptr();
    for l in 0..p.kc {
        let brow = bp.add(l * p.b_stride + p.b_col0 + j0);
        let mut bv = [V::zero(); NV];
        for (vi, v) in bv.iter_mut().enumerate() {
            *v = V::loadu(brow.add(vi * 8));
        }
        for (ri, row) in acc.iter_mut().enumerate() {
            let av = V::splat(*ap.add(p.a_off + (r0 + ri) * p.a_stride + l));
            for (vi, v) in row.iter_mut().enumerate() {
                *v = v.fma(av, bv[vi]);
            }
        }
    }
    for (ri, row) in acc.iter().enumerate() {
        let base = (r0 + ri) * p.c_stride + p.c_col0 + j0;
        for (vi, v) in row.iter().enumerate() {
            v.storeu(c.add(base + vi * 8));
        }
    }
}

/// Scalar column remainder (`nc % 8` trailing columns), shared verbatim by
/// both backends: same `mul_add`, same ascending-`l` order.
#[inline(always)]
unsafe fn tail_cols(p: &Panel<'_>, c: *mut f32, r0: usize, mr: usize, j0: usize) {
    for ri in 0..mr {
        let a_base = p.a_off + (r0 + ri) * p.a_stride;
        let c_base = (r0 + ri) * p.c_stride + p.c_col0;
        for j in j0..p.nc {
            let mut s = *c.add(c_base + j);
            for l in 0..p.kc {
                s = (*p.a.as_ptr().add(a_base + l))
                    .mul_add(*p.bp.as_ptr().add(l * p.b_stride + p.b_col0 + j), s);
            }
            *c.add(c_base + j) = s;
        }
    }
}

#[inline(always)]
unsafe fn gemm_panel_g<V: V8>(p: &Panel<'_>, c: &mut [f32]) {
    let cp = c.as_mut_ptr();
    let mut r = 0;
    while r + 4 <= p.rows {
        let mut j = 0;
        while j + 16 <= p.nc {
            tile_g::<V, 4, 2>(p, cp, r, j);
            j += 16;
        }
        while j + 8 <= p.nc {
            tile_g::<V, 4, 1>(p, cp, r, j);
            j += 8;
        }
        tail_cols(p, cp, r, 4, j);
        r += 4;
    }
    while r < p.rows {
        let mut j = 0;
        while j + 16 <= p.nc {
            tile_g::<V, 1, 2>(p, cp, r, j);
            j += 16;
        }
        while j + 8 <= p.nc {
            tile_g::<V, 1, 1>(p, cp, r, j);
            j += 8;
        }
        tail_cols(p, cp, r, 1, j);
        r += 1;
    }
}

/// `c_row[j] += a_row · b_row_j` for `nc` consecutive rows of a strided B
/// (the `gemm_nt` inner product sweep), four B rows per register block so
/// each `a_row` load is shared.
#[inline(always)]
unsafe fn dot_rows_g<V: V8>(
    c_row: &mut [f32],
    a_row: &[f32],
    b: &[f32],
    b_row0: usize,
    b_stride: usize,
    b_off: usize,
    kc: usize,
) {
    let nc = c_row.len();
    let ap = a_row.as_ptr();
    let bp = b.as_ptr();
    let mut j = 0;
    while j + 4 <= nc {
        let base = [
            (b_row0 + j) * b_stride + b_off,
            (b_row0 + j + 1) * b_stride + b_off,
            (b_row0 + j + 2) * b_stride + b_off,
            (b_row0 + j + 3) * b_stride + b_off,
        ];
        let mut acc = [V::zero(); 4];
        let mut l = 0;
        while l + 8 <= kc {
            let av = V::loadu(ap.add(l));
            for (t, a) in acc.iter_mut().enumerate() {
                *a = a.fma(av, V::loadu(bp.add(base[t] + l)));
            }
            l += 8;
        }
        for (t, a) in acc.iter().enumerate() {
            let mut s = a.reduce();
            let mut ll = l;
            while ll < kc {
                s = (*ap.add(ll)).mul_add(*bp.add(base[t] + ll), s);
                ll += 1;
            }
            c_row[j + t] += s;
        }
        j += 4;
    }
    while j < nc {
        let base = (b_row0 + j) * b_stride + b_off;
        let mut acc = V::zero();
        let mut l = 0;
        while l + 8 <= kc {
            acc = acc.fma(V::loadu(ap.add(l)), V::loadu(bp.add(base + l)));
            l += 8;
        }
        let mut s = acc.reduce();
        while l < kc {
            s = (*ap.add(l)).mul_add(*bp.add(base + l), s);
            l += 1;
        }
        c_row[j] += s;
        j += 1;
    }
}

// ---------------------------------------------------------------------------
// Backend instantiations. The AVX2 wrappers carry
// `#[target_feature(enable = "avx2,fma")]` so the whole inlined generic
// body compiles to vector code; callers guard with `avx2_available()`.
// ---------------------------------------------------------------------------

macro_rules! instantiate {
    ($scalar:ident, $avx2:ident, $generic:ident, ($($arg:ident: $ty:ty),*) -> $ret:ty) => {
        fn $scalar($($arg: $ty),*) -> $ret {
            unsafe { $generic::<Sc>($($arg),*) }
        }
        #[cfg(all(target_arch = "x86_64", not(feature = "scalar-only")))]
        #[target_feature(enable = "avx2,fma")]
        unsafe fn $avx2($($arg: $ty),*) -> $ret {
            $generic::<avx::Vx>($($arg),*)
        }
    };
}

instantiate!(dot_scalar, dot_avx2, dot_g, (a: &[f32], b: &[f32]) -> f32);
instantiate!(axpy_scalar, axpy_avx2, axpy_g, (dst: &mut [f32], s: f32, src: &[f32]) -> ());
instantiate!(scale_scalar, scale_avx2, scale_g, (dst: &mut [f32], s: f32) -> ());
instantiate!(dscale_scalar, dscale_avx2, dscale_g, (dst: &mut [f32], d: f32) -> ());
instantiate!(gemm_panel_scalar, gemm_panel_avx2, gemm_panel_g,
    (p: &Panel<'_>, c: &mut [f32]) -> ());
instantiate!(dot_rows_scalar, dot_rows_avx2, dot_rows_g,
    (c_row: &mut [f32], a_row: &[f32], b: &[f32], b_row0: usize, b_stride: usize,
     b_off: usize, kc: usize) -> ());

macro_rules! dispatch {
    ($be:expr, $scalar:ident, $avx2:ident, ($($arg:expr),*)) => {{
        match $be {
            Backend::Scalar => $scalar($($arg),*),
            Backend::Avx2 => {
                #[cfg(all(target_arch = "x86_64", not(feature = "scalar-only")))]
                {
                    if avx2_available() {
                        unsafe { $avx2($($arg),*) }
                    } else {
                        $scalar($($arg),*)
                    }
                }
                #[cfg(not(all(target_arch = "x86_64", not(feature = "scalar-only"))))]
                {
                    $scalar($($arg),*)
                }
            }
        }
    }};
}

/// Dot product on an explicit backend (extent mismatch truncates to the
/// shorter slice). Used by the equivalence suites to compare both paths in
/// one process.
pub fn dot_on(be: Backend, a: &[f32], b: &[f32]) -> f32 {
    dispatch!(be, dot_scalar, dot_avx2, (a, b))
}

/// Dot product on the dispatched backend ([`backend`]).
#[inline]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    dot_on(backend(), a, b)
}

/// `dst[i] += s * src[i]` (fused) on an explicit backend.
pub fn axpy_on(be: Backend, dst: &mut [f32], s: f32, src: &[f32]) {
    dispatch!(be, axpy_scalar, axpy_avx2, (dst, s, src))
}

/// `dst[i] += s * src[i]` (fused) over the overlap of the two slices.
#[inline]
pub fn axpy(dst: &mut [f32], s: f32, src: &[f32]) {
    axpy_on(backend(), dst, s, src)
}

/// `dst[i] *= s` on an explicit backend.
pub fn scale_on(be: Backend, dst: &mut [f32], s: f32) {
    dispatch!(be, scale_scalar, scale_avx2, (dst, s))
}

/// `dst[i] *= s` (the online-softmax rescale).
#[inline]
pub fn scale(dst: &mut [f32], s: f32) {
    scale_on(backend(), dst, s)
}

/// `dst[i] /= d` on an explicit backend.
pub fn dscale_on(be: Backend, dst: &mut [f32], d: f32) {
    dispatch!(be, dscale_scalar, dscale_avx2, (dst, d))
}

/// `dst[i] /= d` (the online-softmax finalize divide; kept a true IEEE
/// division, never a reciprocal multiply, in both backends).
#[inline]
pub fn dscale(dst: &mut [f32], d: f32) {
    dscale_on(backend(), dst, d)
}

/// Register-blocked panel accumulation (`C_block += A_rows · B_panel`,
/// see [`Panel`]) on an explicit backend.
pub fn gemm_panel_on(be: Backend, p: &Panel<'_>, c: &mut [f32]) {
    p.check(c.len());
    dispatch!(be, gemm_panel_scalar, gemm_panel_avx2, (p, c))
}

/// Register-blocked panel accumulation on the dispatched backend.
#[inline]
pub fn gemm_panel(p: &Panel<'_>, c: &mut [f32]) {
    gemm_panel_on(backend(), p, c)
}

/// `c_row[j] += a_row · b_row_j` over `c_row.len()` strided B rows on an
/// explicit backend: B row `j` is `b[(b_row0+j)*b_stride + b_off ..][..kc]`.
#[allow(clippy::too_many_arguments)]
pub fn dot_rows_on(
    be: Backend,
    c_row: &mut [f32],
    a_row: &[f32],
    b: &[f32],
    b_row0: usize,
    b_stride: usize,
    b_off: usize,
    kc: usize,
) {
    assert!(kc <= a_row.len());
    if !c_row.is_empty() && kc > 0 {
        assert!((b_row0 + c_row.len() - 1) * b_stride + b_off + kc <= b.len());
    }
    dispatch!(
        be,
        dot_rows_scalar,
        dot_rows_avx2,
        (c_row, a_row, b, b_row0, b_stride, b_off, kc)
    )
}

/// `c_row[j] += a_row · b_row_j` on the dispatched backend (the `gemm_nt`
/// inner sweep).
#[inline]
pub fn dot_rows(
    c_row: &mut [f32],
    a_row: &[f32],
    b: &[f32],
    b_row0: usize,
    b_stride: usize,
    b_off: usize,
    kc: usize,
) {
    dot_rows_on(backend(), c_row, a_row, b, b_row0, b_stride, b_off, kc)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn both(f: impl Fn(Backend)) {
        f(Backend::Scalar);
        if avx2_available() {
            f(Backend::Avx2);
        }
    }

    #[test]
    fn dot_matches_naive_on_every_backend() {
        let a: Vec<f32> = (0..67).map(|i| (i as f32 * 0.37).sin()).collect();
        let b: Vec<f32> = (0..67).map(|i| (i as f32 * 0.11).cos()).collect();
        let naive: f32 = a.iter().zip(&b).map(|(&x, &y)| x * y).sum();
        both(|be| {
            assert!((dot_on(be, &a, &b) - naive).abs() < 1e-4, "{be:?}");
        });
    }

    #[test]
    fn backends_are_bitwise_identical_on_awkward_lengths() {
        for n in [0usize, 1, 7, 8, 9, 15, 16, 31, 32, 33, 63, 64, 65] {
            let a: Vec<f32> = (0..n).map(|i| (i as f32 * 1.7).sin() * 3.0).collect();
            let b: Vec<f32> = (0..n).map(|i| (i as f32 * 0.9).cos() * 2.0).collect();
            if avx2_available() {
                assert_eq!(
                    dot_on(Backend::Scalar, &a, &b).to_bits(),
                    dot_on(Backend::Avx2, &a, &b).to_bits(),
                    "dot length {n}"
                );
                let mut d1 = a.clone();
                let mut d2 = a.clone();
                axpy_on(Backend::Scalar, &mut d1, 1.25, &b);
                axpy_on(Backend::Avx2, &mut d2, 1.25, &b);
                assert_eq!(
                    d1.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                    d2.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                    "axpy length {n}"
                );
                let mut s1 = a.clone();
                let mut s2 = a.clone();
                scale_on(Backend::Scalar, &mut s1, 0.3);
                scale_on(Backend::Avx2, &mut s2, 0.3);
                assert_eq!(s1, s2, "scale length {n}");
                dscale_on(Backend::Scalar, &mut s1, 0.7);
                dscale_on(Backend::Avx2, &mut s2, 0.7);
                assert_eq!(s1, s2, "dscale length {n}");
            }
        }
    }

    #[test]
    fn override_round_trips_and_wins() {
        let prev = set_backend(Some(Backend::Scalar));
        assert_eq!(backend(), Backend::Scalar);
        assert_eq!(set_backend(prev), Some(Backend::Scalar));
    }

    #[test]
    fn gemm_panel_matches_naive_accumulation() {
        // 9 rows x 21 cols x depth 5 exercises the 4-row, 16/8-col and
        // scalar-tail paths at once.
        let (rows, nc, kc) = (9usize, 21usize, 5usize);
        let a: Vec<f32> = (0..rows * kc).map(|i| (i as f32 * 0.3).sin()).collect();
        let bp: Vec<f32> = (0..kc * nc).map(|i| (i as f32 * 0.7).cos()).collect();
        let mut want = vec![0.5f32; rows * nc];
        for r in 0..rows {
            for j in 0..nc {
                let mut s = want[r * nc + j];
                for l in 0..kc {
                    s = a[r * kc + l].mul_add(bp[l * nc + j], s);
                }
                want[r * nc + j] = s;
            }
        }
        both(|be| {
            let mut c = vec![0.5f32; rows * nc];
            let p = Panel {
                a: &a,
                a_off: 0,
                a_stride: kc,
                bp: &bp,
                b_stride: nc,
                b_col0: 0,
                kc,
                nc,
                rows,
                c_stride: nc,
                c_col0: 0,
            };
            gemm_panel_on(be, &p, &mut c);
            for (g, w) in c.iter().zip(&want) {
                assert!((g - w).abs() < 1e-4, "{be:?}: {g} vs {w}");
            }
        });
    }

    #[test]
    fn dot_rows_matches_per_row_dots() {
        let (nc, kc, stride) = (11usize, 19usize, 23usize);
        let a: Vec<f32> = (0..kc).map(|i| (i as f32 * 0.21).sin()).collect();
        let b: Vec<f32> = (0..(nc + 2) * stride).map(|i| (i as f32 * 0.13).cos()).collect();
        both(|be| {
            let mut c = vec![0.25f32; nc];
            dot_rows_on(be, &mut c, &a, &b, 2, stride, 3, kc);
            for (j, got) in c.iter().enumerate() {
                let row = &b[(2 + j) * stride + 3..(2 + j) * stride + 3 + kc];
                let want: f32 = 0.25 + a.iter().zip(row).map(|(&x, &y)| x * y).sum::<f32>();
                assert!((got - want).abs() < 1e-4, "{be:?} j={j}");
            }
        });
    }
}
