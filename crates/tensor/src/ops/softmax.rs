//! Numerically stable softmax and fused softmax-cross-entropy.
//!
//! The fused loss mirrors the paper's observation (§5.4) that the final
//! vocabulary projection + softmax is itself a memory spike: callers chunk
//! the rows of `logits` and invoke [`cross_entropy`] per chunk, summing the
//! returned token counts and losses.

use crate::{par, Result, Tensor, TensorError};

/// Row-wise softmax over the last axis. Rows are independent, so the
/// kernel fans out over them (bitwise deterministic at any thread count).
pub fn softmax_rows(x: &Tensor) -> Tensor {
    let d = (*x.shape().last().unwrap_or(&1)).max(1);
    let mut out = x.clone();
    let work = x.numel();
    par::run_rows(out.data_mut(), d, work, |_, row| {
        let m = row.iter().fold(f32::NEG_INFINITY, |a, &b| a.max(b));
        let mut sum = 0.0;
        for v in row.iter_mut() {
            *v = (*v - m).exp();
            sum += *v;
        }
        for v in row.iter_mut() {
            *v /= sum;
        }
    });
    out
}

/// Backward pass of [`softmax_rows`]: given `y = softmax(x)` and `dy`,
/// returns `dx = y * (dy - sum(dy * y))` per row.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] when `y` and `dy` differ in shape.
pub fn softmax_rows_bwd(y: &Tensor, dy: &Tensor) -> Result<Tensor> {
    if y.shape() != dy.shape() {
        return Err(TensorError::ShapeMismatch {
            op: "softmax_rows_bwd",
            lhs: y.shape().to_vec(),
            rhs: dy.shape().to_vec(),
        });
    }
    let d = (*y.shape().last().unwrap_or(&1)).max(1);
    let mut dx = Tensor::zeros(y.shape());
    let yd = y.data();
    let dyd = dy.data();
    par::run_rows(dx.data_mut(), d, yd.len(), |r, dxs| {
        let ys = &yd[r * d..r * d + dxs.len()];
        let dys = &dyd[r * d..r * d + dxs.len()];
        let dot = par::dot(ys, dys);
        for i in 0..dxs.len() {
            dxs[i] = ys[i] * (dys[i] - dot);
        }
    });
    Ok(dx)
}

/// Result of a fused softmax-cross-entropy evaluation.
#[derive(Debug, Clone)]
pub struct CrossEntropyOutput {
    /// Sum of per-token negative log-likelihoods (not yet averaged).
    pub loss_sum: f32,
    /// Number of tokens that contributed (targets != `ignore_index`).
    pub tokens: usize,
    /// Gradient of `loss_sum` with respect to the logits.
    pub dlogits: Tensor,
}

/// Fused, numerically stable softmax + cross-entropy over `[n, vocab]`
/// logits with `usize` targets. Targets equal to `ignore_index` contribute
/// neither loss nor gradient.
///
/// The returned gradient is of the *summed* loss; divide by
/// [`CrossEntropyOutput::tokens`] (possibly accumulated across chunks) for a
/// mean-reduced loss, exactly as the chunked loss in FPDT does.
///
/// # Errors
///
/// Returns [`TensorError::RankMismatch`] unless `logits` is rank 2, and
/// [`TensorError::ShapeMismatch`] when `targets.len()` differs from the row
/// count or a target is out of vocabulary range.
pub fn cross_entropy(
    logits: &Tensor,
    targets: &[usize],
    ignore_index: usize,
) -> Result<CrossEntropyOutput> {
    if logits.ndim() != 2 {
        return Err(TensorError::RankMismatch {
            op: "cross_entropy",
            expected: 2,
            actual: logits.ndim(),
        });
    }
    let (n, v) = (logits.shape()[0], logits.shape()[1]);
    if targets.len() != n {
        return Err(TensorError::ShapeMismatch {
            op: "cross_entropy",
            lhs: vec![n, v],
            rhs: vec![targets.len()],
        });
    }
    if let Some(&t) = targets.iter().find(|&&t| t != ignore_index && t >= v) {
        return Err(TensorError::ShapeMismatch {
            op: "cross_entropy",
            lhs: vec![n, v],
            rhs: vec![t],
        });
    }
    let mut dlogits = Tensor::zeros(&[n, v]);
    let mut losses = vec![0.0f32; n];
    let xs = logits.data();
    par::run_rows2(
        dlogits.data_mut(),
        v,
        &mut losses,
        1,
        n.saturating_mul(v),
        |r, drow, loss| {
            let t = targets[r];
            if t == ignore_index {
                return;
            }
            let row = &xs[r * v..(r + 1) * v];
            let m = row.iter().fold(f32::NEG_INFINITY, |a, &b| a.max(b));
            let mut sum = 0.0f32;
            for &x in row {
                sum += (x - m).exp();
            }
            let log_z = m + sum.ln();
            loss[0] = log_z - row[t];
            for (i, &x) in row.iter().enumerate() {
                drow[i] = (x - log_z).exp();
            }
            drow[t] -= 1.0;
        },
    );
    // Reduce in ascending row order; ignored rows contribute an exact 0.0,
    // so this matches the old skip-and-accumulate loop bit for bit.
    let mut loss_sum = 0.0f32;
    let mut tokens = 0usize;
    for (r, &l) in losses.iter().enumerate() {
        loss_sum += l;
        tokens += usize::from(targets[r] != ignore_index);
    }
    Ok(CrossEntropyOutput {
        loss_sum,
        tokens,
        dlogits,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init;

    #[test]
    fn softmax_rows_sum_to_one() {
        let mut rng = init::seeded_rng(30);
        let x = init::randn(&mut rng, &[5, 7], 4.0);
        let y = softmax_rows(&x);
        for row in y.data().chunks(7) {
            let s: f32 = row.iter().sum();
            assert!((s - 1.0).abs() < 1e-5);
            assert!(row.iter().all(|&v| v >= 0.0));
        }
    }

    #[test]
    fn softmax_is_shift_invariant() {
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[1, 3]).unwrap();
        let y1 = softmax_rows(&x);
        let y2 = softmax_rows(&x.map(|v| v + 100.0));
        assert!(y1.allclose(&y2, 1e-5, 1e-6));
    }

    #[test]
    fn softmax_handles_extreme_logits() {
        let x = Tensor::from_vec(vec![1e4, -1e4, 0.0], &[1, 3]).unwrap();
        let y = softmax_rows(&x);
        assert!(y.data().iter().all(|v| v.is_finite()));
        assert!((y.data()[0] - 1.0).abs() < 1e-5);
    }

    #[test]
    fn softmax_bwd_finite_difference() {
        let mut rng = init::seeded_rng(31);
        let x = init::randn(&mut rng, &[2, 5], 1.0);
        let dy = init::randn(&mut rng, &[2, 5], 1.0);
        let y = softmax_rows(&x);
        let dx = softmax_rows_bwd(&y, &dy).unwrap();
        let eps = 1e-3;
        for i in 0..x.numel() {
            let mut xp = x.clone();
            xp.data_mut()[i] += eps;
            let mut xm = x.clone();
            xm.data_mut()[i] -= eps;
            let fd = (softmax_rows(&xp).mul(&dy).unwrap().sum()
                - softmax_rows(&xm).mul(&dy).unwrap().sum())
                / (2.0 * eps);
            assert!((fd - dx.data()[i]).abs() < 1e-2, "i={i}");
        }
    }

    #[test]
    fn cross_entropy_uniform_logits() {
        let v = 8;
        let logits = Tensor::zeros(&[3, v]);
        let out = cross_entropy(&logits, &[0, 3, 7], usize::MAX).unwrap();
        assert_eq!(out.tokens, 3);
        let per_tok = out.loss_sum / 3.0;
        assert!((per_tok - (v as f32).ln()).abs() < 1e-5);
    }

    #[test]
    fn cross_entropy_ignores_masked_tokens() {
        let logits = Tensor::zeros(&[2, 4]);
        let out = cross_entropy(&logits, &[1, usize::MAX], usize::MAX).unwrap();
        assert_eq!(out.tokens, 1);
        // masked row has zero gradient
        assert!(out.dlogits.data()[4..].iter().all(|&g| g == 0.0));
    }

    #[test]
    fn cross_entropy_gradient_finite_difference() {
        let mut rng = init::seeded_rng(32);
        let logits = init::randn(&mut rng, &[3, 6], 1.0);
        let targets = [2usize, 0, 5];
        let out = cross_entropy(&logits, &targets, usize::MAX).unwrap();
        let eps = 1e-2;
        for i in 0..logits.numel() {
            let mut lp = logits.clone();
            lp.data_mut()[i] += eps;
            let mut lm = logits.clone();
            lm.data_mut()[i] -= eps;
            let fp = cross_entropy(&lp, &targets, usize::MAX).unwrap().loss_sum;
            let fm = cross_entropy(&lm, &targets, usize::MAX).unwrap().loss_sum;
            let fd = (fp - fm) / (2.0 * eps);
            assert!(
                (fd - out.dlogits.data()[i]).abs() < 1e-2,
                "i={i} fd={fd} got={}",
                out.dlogits.data()[i]
            );
        }
    }

    #[test]
    fn cross_entropy_chunked_equals_monolithic() {
        // This is the §5.4 loss-chunking argument in miniature.
        let mut rng = init::seeded_rng(33);
        let logits = init::randn(&mut rng, &[8, 10], 1.0);
        let targets: Vec<usize> = (0..8).map(|i| i % 10).collect();
        let full = cross_entropy(&logits, &targets, usize::MAX).unwrap();
        let mut loss = 0.0;
        let mut toks = 0;
        let mut grads = Vec::new();
        for c in 0..4 {
            let part = logits.narrow(0, c * 2, 2).unwrap();
            let out = cross_entropy(&part, &targets[c * 2..c * 2 + 2], usize::MAX).unwrap();
            loss += out.loss_sum;
            toks += out.tokens;
            grads.push(out.dlogits);
        }
        let refs: Vec<&Tensor> = grads.iter().collect();
        let dl = Tensor::concat(&refs, 0).unwrap();
        assert_eq!(toks, full.tokens);
        assert!((loss - full.loss_sum).abs() < 1e-4);
        assert!(dl.allclose(&full.dlogits, 1e-5, 1e-6));
    }

    #[test]
    fn cross_entropy_errors() {
        let logits = Tensor::zeros(&[2, 3]);
        assert!(cross_entropy(&logits, &[0], usize::MAX).is_err());
        assert!(cross_entropy(&logits, &[0, 9], usize::MAX).is_err());
        assert!(cross_entropy(&Tensor::zeros(&[6]), &[0], usize::MAX).is_err());
    }
}
