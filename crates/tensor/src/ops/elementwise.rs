//! Elementwise activations and bias broadcasting with gradients.

use crate::{par, Result, Tensor, TensorError};

const SQRT_2_OVER_PI: f32 = 0.797_884_6;
const GELU_COEFF: f32 = 0.044_715;

/// Block size for splitting flat elementwise kernels across the pool; the
/// math is purely per-element so any partition gives identical bits.
const ELEM_BLOCK: usize = 4096;

/// Column-block size for reductions over leading axes (`add_bias_bwd`,
/// the norm `dgamma`/`dbeta` sums): columns are independent, and within a
/// column rows are always accumulated in ascending order.
const COL_BLOCK: usize = 64;

/// GELU activation (tanh approximation, as used by GPT-2/3 and Llama's
/// reference implementations of `gelu_new`).
pub fn gelu(x: &Tensor) -> Tensor {
    let mut out = x.clone();
    par::run_rows(out.data_mut(), ELEM_BLOCK, x.numel(), |_, blk| {
        for v in blk.iter_mut() {
            *v = 0.5 * *v * (1.0 + (SQRT_2_OVER_PI * (*v + GELU_COEFF * *v * *v * *v)).tanh());
        }
    });
    out
}

/// Gradient of [`gelu`]: returns `dx` given the forward input and `dy`.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] when `x` and `dy` differ in shape.
pub fn gelu_bwd(x: &Tensor, dy: &Tensor) -> Result<Tensor> {
    if x.shape() != dy.shape() {
        return Err(TensorError::ShapeMismatch {
            op: "gelu_bwd",
            lhs: x.shape().to_vec(),
            rhs: dy.shape().to_vec(),
        });
    }
    let mut out = Tensor::zeros(x.shape());
    let xs = x.data();
    let dys = dy.data();
    par::run_rows(out.data_mut(), ELEM_BLOCK, x.numel(), |blk_i, blk| {
        let off = blk_i * ELEM_BLOCK;
        for (j, o) in blk.iter_mut().enumerate() {
            let (v, g) = (xs[off + j], dys[off + j]);
            let u = SQRT_2_OVER_PI * (v + GELU_COEFF * v * v * v);
            let t = u.tanh();
            let du = SQRT_2_OVER_PI * (1.0 + 3.0 * GELU_COEFF * v * v);
            let d = 0.5 * (1.0 + t) + 0.5 * v * (1.0 - t * t) * du;
            *o = d * g;
        }
    });
    Ok(out)
}

/// SiLU/swish activation `x * sigmoid(x)` (Llama MLP gate).
pub fn silu(x: &Tensor) -> Tensor {
    let mut out = x.clone();
    par::run_rows(out.data_mut(), ELEM_BLOCK, x.numel(), |_, blk| {
        for v in blk.iter_mut() {
            *v /= 1.0 + (-*v).exp();
        }
    });
    out
}

/// Gradient of [`silu`].
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] when `x` and `dy` differ in shape.
pub fn silu_bwd(x: &Tensor, dy: &Tensor) -> Result<Tensor> {
    if x.shape() != dy.shape() {
        return Err(TensorError::ShapeMismatch {
            op: "silu_bwd",
            lhs: x.shape().to_vec(),
            rhs: dy.shape().to_vec(),
        });
    }
    let mut out = Tensor::zeros(x.shape());
    let xs = x.data();
    let dys = dy.data();
    par::run_rows(out.data_mut(), ELEM_BLOCK, x.numel(), |blk_i, blk| {
        let off = blk_i * ELEM_BLOCK;
        for (j, o) in blk.iter_mut().enumerate() {
            let (v, g) = (xs[off + j], dys[off + j]);
            let s = 1.0 / (1.0 + (-v).exp());
            *o = g * (s + v * s * (1.0 - s));
        }
    });
    Ok(out)
}

/// Adds a rank-1 bias across the last axis of `x`.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] unless `bias.numel()` equals the
/// last extent of `x`.
pub fn add_bias(x: &Tensor, bias: &Tensor) -> Result<Tensor> {
    let d = *x.shape().last().unwrap_or(&0);
    if bias.numel() != d {
        return Err(TensorError::ShapeMismatch {
            op: "add_bias",
            lhs: x.shape().to_vec(),
            rhs: bias.shape().to_vec(),
        });
    }
    let mut out = x.clone();
    let bs = bias.data();
    par::run_rows(out.data_mut(), d, x.numel(), |_, row| {
        for (o, &b) in row.iter_mut().zip(bs) {
            *o += b;
        }
    });
    Ok(out)
}

/// Gradient of [`add_bias`] with respect to the bias: sums `dy` over all
/// leading axes. (`dx` is just `dy` and needs no helper.)
///
/// Parallel over *column* blocks; within a column the rows are reduced in
/// ascending order, so the sums match the sequential kernel bit for bit.
pub fn add_bias_bwd(dy: &Tensor, d: usize) -> Tensor {
    let mut db = Tensor::zeros(&[d]);
    if d == 0 {
        return db;
    }
    let dys = dy.data();
    par::run_rows(db.data_mut(), COL_BLOCK, dys.len(), |cb, dbs| {
        let c0 = cb * COL_BLOCK;
        for row in dys.chunks(d) {
            // `axpy` truncates to the overlap, which also covers a ragged
            // final row exactly like the old zip-based loop did.
            par::axpy(dbs, 1.0, &row[c0.min(row.len())..]);
        }
    });
    db
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init;

    #[test]
    fn gelu_known_values() {
        let x = Tensor::from_vec(vec![0.0, 1.0, -1.0, 3.0], &[4]).unwrap();
        let y = gelu(&x);
        assert!((y.data()[0]).abs() < 1e-7);
        assert!((y.data()[1] - 0.8412).abs() < 1e-3);
        assert!((y.data()[2] + 0.1588).abs() < 1e-3);
        assert!((y.data()[3] - 2.9964).abs() < 1e-3);
    }

    #[test]
    fn gelu_bwd_finite_difference() {
        let mut rng = init::seeded_rng(10);
        let x = init::randn(&mut rng, &[32], 1.5);
        let dy = Tensor::ones(&[32]);
        let dx = gelu_bwd(&x, &dy).unwrap();
        let eps = 1e-3;
        for i in 0..x.numel() {
            let mut xp = x.clone();
            xp.data_mut()[i] += eps;
            let mut xm = x.clone();
            xm.data_mut()[i] -= eps;
            let fd = (gelu(&xp).sum() - gelu(&xm).sum()) / (2.0 * eps);
            assert!(
                (fd - dx.data()[i]).abs() < 1e-2,
                "i={i} fd={fd} dx={}",
                dx.data()[i]
            );
        }
    }

    #[test]
    fn silu_bwd_finite_difference() {
        let mut rng = init::seeded_rng(11);
        let x = init::randn(&mut rng, &[32], 1.5);
        let dy = Tensor::ones(&[32]);
        let dx = silu_bwd(&x, &dy).unwrap();
        let eps = 1e-3;
        for i in 0..x.numel() {
            let mut xp = x.clone();
            xp.data_mut()[i] += eps;
            let mut xm = x.clone();
            xm.data_mut()[i] -= eps;
            let fd = (silu(&xp).sum() - silu(&xm).sum()) / (2.0 * eps);
            assert!((fd - dx.data()[i]).abs() < 1e-2, "i={i}");
        }
    }

    #[test]
    fn bias_broadcast_and_grad() {
        let x = Tensor::arange(6).reshape(&[2, 3]).unwrap();
        let b = Tensor::from_vec(vec![10.0, 20.0, 30.0], &[3]).unwrap();
        let y = add_bias(&x, &b).unwrap();
        assert_eq!(y.data(), &[10.0, 21.0, 32.0, 13.0, 24.0, 35.0]);
        let db = add_bias_bwd(&Tensor::ones(&[2, 3]), 3);
        assert_eq!(db.data(), &[2.0, 2.0, 2.0]);
        assert!(add_bias(&x, &Tensor::zeros(&[4])).is_err());
    }

    #[test]
    fn shape_mismatch_errors() {
        let x = Tensor::zeros(&[2]);
        let dy = Tensor::zeros(&[3]);
        assert!(gelu_bwd(&x, &dy).is_err());
        assert!(silu_bwd(&x, &dy).is_err());
    }
}
