//! Layer normalization and RMS normalization with hand-derived backward
//! passes, applied over the last axis.
//!
//! All kernels fan out over independent rows (or, for the `dgamma` /
//! `dbeta` reductions, independent column blocks with rows accumulated in
//! ascending order), so results are bitwise identical at any thread count.

use crate::{par, Result, Tensor, TensorError};

/// Column-block size for the parameter-gradient reductions.
const COL_BLOCK: usize = 64;

/// Saved forward state required by [`layernorm_bwd`].
#[derive(Debug, Clone)]
pub struct LayerNormCtx {
    /// Per-row mean.
    pub mean: Vec<f32>,
    /// Per-row reciprocal standard deviation.
    pub rstd: Vec<f32>,
}

/// Saved forward state required by [`rmsnorm_bwd`].
#[derive(Debug, Clone)]
pub struct RmsNormCtx {
    /// Per-row reciprocal root-mean-square.
    pub rrms: Vec<f32>,
}

fn check_last_dim(op: &'static str, x: &Tensor, gamma: &Tensor) -> Result<usize> {
    let d = *x.shape().last().unwrap_or(&0);
    if gamma.numel() != d || d == 0 {
        return Err(TensorError::ShapeMismatch {
            op,
            lhs: x.shape().to_vec(),
            rhs: gamma.shape().to_vec(),
        });
    }
    Ok(d)
}

/// Layer normalization over the last axis:
/// `y = gamma * (x - mean) / sqrt(var + eps) + beta`.
///
/// Returns the output and the context needed by [`layernorm_bwd`].
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] unless `gamma` and `beta` have the
/// extent of the last axis of `x`.
pub fn layernorm(
    x: &Tensor,
    gamma: &Tensor,
    beta: &Tensor,
    eps: f32,
) -> Result<(Tensor, LayerNormCtx)> {
    let d = check_last_dim("layernorm", x, gamma)?;
    if beta.numel() != d {
        return Err(TensorError::ShapeMismatch {
            op: "layernorm",
            lhs: x.shape().to_vec(),
            rhs: beta.shape().to_vec(),
        });
    }
    let rows = x.numel() / d;
    let mut out = x.clone();
    let mut mean = vec![0.0f32; rows];
    let mut rstd = vec![0.0f32; rows];
    let (gs, bs) = (gamma.data(), beta.data());
    par::run_rows3(
        out.data_mut(),
        d,
        &mut mean,
        1,
        &mut rstd,
        1,
        x.numel(),
        |_, row, mean, rstd| {
            let m = row.iter().sum::<f32>() / d as f32;
            let var = row.iter().map(|&v| (v - m) * (v - m)).sum::<f32>() / d as f32;
            let r = 1.0 / (var + eps).sqrt();
            for (v, (&g, &b)) in row.iter_mut().zip(gs.iter().zip(bs)) {
                *v = (*v - m) * r * g + b;
            }
            mean[0] = m;
            rstd[0] = r;
        },
    );
    Ok((out, LayerNormCtx { mean, rstd }))
}

/// Backward pass of [`layernorm`]. Returns `(dx, dgamma, dbeta)`.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] when the saved input, `gamma` or
/// `dy` disagree in shape.
pub fn layernorm_bwd(
    x: &Tensor,
    gamma: &Tensor,
    ctx: &LayerNormCtx,
    dy: &Tensor,
) -> Result<(Tensor, Tensor, Tensor)> {
    let d = check_last_dim("layernorm_bwd", x, gamma)?;
    if x.shape() != dy.shape() {
        return Err(TensorError::ShapeMismatch {
            op: "layernorm_bwd",
            lhs: x.shape().to_vec(),
            rhs: dy.shape().to_vec(),
        });
    }
    let rows = x.numel() / d;
    let mut dx = Tensor::zeros(x.shape());
    let mut dgamma = Tensor::zeros(&[d]);
    let mut dbeta = Tensor::zeros(&[d]);
    let (xd, dyd, gd) = (x.data(), dy.data(), gamma.data());
    let work = x.numel();
    // xhat_i = (x_i - m) * rs ; y = g*xhat + b
    // dx = rs/d * (d*dxhat - sum(dxhat) - xhat * sum(dxhat*xhat))
    par::run_rows(dx.data_mut(), d, work, |r, dxs| {
        let xs = &xd[r * d..(r + 1) * d];
        let dys = &dyd[r * d..(r + 1) * d];
        let (m, rs) = (ctx.mean[r], ctx.rstd[r]);
        let mut sum_dxhat = 0.0;
        let mut sum_dxhat_xhat = 0.0;
        for i in 0..d {
            let xhat = (xs[i] - m) * rs;
            let dxhat = dys[i] * gd[i];
            sum_dxhat += dxhat;
            sum_dxhat_xhat += dxhat * xhat;
        }
        for i in 0..d {
            let xhat = (xs[i] - m) * rs;
            let dxhat = dys[i] * gd[i];
            dxs[i] = rs * (dxhat - (sum_dxhat + xhat * sum_dxhat_xhat) / d as f32);
        }
    });
    // Parameter gradients: parallel over column blocks, rows ascending
    // inside each column — the same per-column addition order as the old
    // row-major accumulation loop.
    par::run_rows2(
        dgamma.data_mut(),
        COL_BLOCK,
        dbeta.data_mut(),
        COL_BLOCK,
        work,
        |cb, dgs, dbs| {
            let c0 = cb * COL_BLOCK;
            for r in 0..rows {
                let (m, rs) = (ctx.mean[r], ctx.rstd[r]);
                for (j, (dg, db)) in dgs.iter_mut().zip(dbs.iter_mut()).enumerate() {
                    let i = c0 + j;
                    let (xv, dyv) = (xd[r * d + i], dyd[r * d + i]);
                    let xhat = (xv - m) * rs;
                    *dg += dyv * xhat;
                    *db += dyv;
                }
            }
        },
    );
    Ok((dx, dgamma, dbeta))
}

/// RMS normalization over the last axis (`y = gamma * x / rms(x)`), the
/// variant used by Llama.
///
/// Returns the output and the context needed by [`rmsnorm_bwd`].
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] unless `gamma` has the extent of
/// the last axis of `x`.
pub fn rmsnorm(x: &Tensor, gamma: &Tensor, eps: f32) -> Result<(Tensor, RmsNormCtx)> {
    let d = check_last_dim("rmsnorm", x, gamma)?;
    let mut out = x.clone();
    let rows = x.numel() / d;
    let mut rrms = vec![0.0f32; rows];
    let gs = gamma.data();
    par::run_rows2(out.data_mut(), d, &mut rrms, 1, x.numel(), |_, row, rr| {
        let ms = row.iter().map(|&v| v * v).sum::<f32>() / d as f32;
        let r = 1.0 / (ms + eps).sqrt();
        for (v, &g) in row.iter_mut().zip(gs) {
            *v = *v * r * g;
        }
        rr[0] = r;
    });
    Ok((out, RmsNormCtx { rrms }))
}

/// Backward pass of [`rmsnorm`]. Returns `(dx, dgamma)`.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] when the saved input, `gamma` or
/// `dy` disagree in shape.
pub fn rmsnorm_bwd(
    x: &Tensor,
    gamma: &Tensor,
    ctx: &RmsNormCtx,
    dy: &Tensor,
) -> Result<(Tensor, Tensor)> {
    let d = check_last_dim("rmsnorm_bwd", x, gamma)?;
    if x.shape() != dy.shape() {
        return Err(TensorError::ShapeMismatch {
            op: "rmsnorm_bwd",
            lhs: x.shape().to_vec(),
            rhs: dy.shape().to_vec(),
        });
    }
    let rows = x.numel() / d;
    let mut dx = Tensor::zeros(x.shape());
    let mut dgamma = Tensor::zeros(&[d]);
    let (xd, dyd, gd) = (x.data(), dy.data(), gamma.data());
    let work = x.numel();
    // y_i = g_i * x_i * rr, rr = (mean(x^2)+eps)^{-1/2}
    // dx_i = rr*g_i*dy_i - x_i * rr^3/d * sum_j dy_j g_j x_j
    par::run_rows(dx.data_mut(), d, work, |r, dxs| {
        let xs = &xd[r * d..(r + 1) * d];
        let dys = &dyd[r * d..(r + 1) * d];
        let rr = ctx.rrms[r];
        let mut dot = 0.0;
        for i in 0..d {
            dot += dys[i] * gd[i] * xs[i];
        }
        for i in 0..d {
            dxs[i] = rr * gd[i] * dys[i] - xs[i] * rr * rr * rr * dot / d as f32;
        }
    });
    par::run_rows(dgamma.data_mut(), COL_BLOCK, work, |cb, dgs| {
        let c0 = cb * COL_BLOCK;
        for r in 0..rows {
            let rr = ctx.rrms[r];
            for (j, dg) in dgs.iter_mut().enumerate() {
                let i = c0 + j;
                *dg += dyd[r * d + i] * xd[r * d + i] * rr;
            }
        }
    });
    Ok((dx, dgamma))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init;

    #[test]
    fn layernorm_output_is_normalized() {
        let mut rng = init::seeded_rng(20);
        let x = init::randn(&mut rng, &[4, 16], 3.0);
        let g = Tensor::ones(&[16]);
        let b = Tensor::zeros(&[16]);
        let (y, _) = layernorm(&x, &g, &b, 1e-5).unwrap();
        for row in y.data().chunks(16) {
            let m: f32 = row.iter().sum::<f32>() / 16.0;
            let v: f32 = row.iter().map(|&t| (t - m) * (t - m)).sum::<f32>() / 16.0;
            assert!(m.abs() < 1e-4);
            assert!((v - 1.0).abs() < 1e-2);
        }
    }

    #[test]
    fn layernorm_bwd_finite_difference() {
        let mut rng = init::seeded_rng(21);
        let x = init::randn(&mut rng, &[3, 8], 1.0);
        let g = init::randn(&mut rng, &[8], 1.0);
        let b = init::randn(&mut rng, &[8], 1.0);
        let dy = init::randn(&mut rng, &[3, 8], 1.0);
        let (_, ctx) = layernorm(&x, &g, &b, 1e-5).unwrap();
        let (dx, dgamma, dbeta) = layernorm_bwd(&x, &g, &ctx, &dy).unwrap();
        let eps = 1e-3;
        let loss = |x: &Tensor, g: &Tensor, b: &Tensor| {
            let (y, _) = layernorm(x, g, b, 1e-5).unwrap();
            y.mul(&dy).unwrap().sum()
        };
        for i in 0..x.numel() {
            let mut xp = x.clone();
            xp.data_mut()[i] += eps;
            let mut xm = x.clone();
            xm.data_mut()[i] -= eps;
            let fd = (loss(&xp, &g, &b) - loss(&xm, &g, &b)) / (2.0 * eps);
            assert!(
                (fd - dx.data()[i]).abs() < 2e-2,
                "dx[{i}] fd {fd} got {}",
                dx.data()[i]
            );
        }
        for i in 0..8 {
            let mut gp = g.clone();
            gp.data_mut()[i] += eps;
            let mut gm = g.clone();
            gm.data_mut()[i] -= eps;
            let fd = (loss(&x, &gp, &b) - loss(&x, &gm, &b)) / (2.0 * eps);
            assert!((fd - dgamma.data()[i]).abs() < 2e-2);
            let mut bp = b.clone();
            bp.data_mut()[i] += eps;
            let mut bm = b.clone();
            bm.data_mut()[i] -= eps;
            let fd = (loss(&x, &g, &bp) - loss(&x, &g, &bm)) / (2.0 * eps);
            assert!((fd - dbeta.data()[i]).abs() < 2e-2);
        }
    }

    #[test]
    fn rmsnorm_unit_rms() {
        let mut rng = init::seeded_rng(22);
        let x = init::randn(&mut rng, &[4, 16], 2.0);
        let g = Tensor::ones(&[16]);
        let (y, _) = rmsnorm(&x, &g, 1e-6).unwrap();
        for row in y.data().chunks(16) {
            let ms: f32 = row.iter().map(|&t| t * t).sum::<f32>() / 16.0;
            assert!((ms - 1.0).abs() < 1e-2, "rms^2 {ms}");
        }
    }

    #[test]
    fn rmsnorm_bwd_finite_difference() {
        let mut rng = init::seeded_rng(23);
        let x = init::randn(&mut rng, &[2, 8], 1.0);
        let g = init::randn(&mut rng, &[8], 1.0);
        let dy = init::randn(&mut rng, &[2, 8], 1.0);
        let (_, ctx) = rmsnorm(&x, &g, 1e-6).unwrap();
        let (dx, dgamma) = rmsnorm_bwd(&x, &g, &ctx, &dy).unwrap();
        let eps = 1e-3;
        let loss = |x: &Tensor, g: &Tensor| {
            let (y, _) = rmsnorm(x, g, 1e-6).unwrap();
            y.mul(&dy).unwrap().sum()
        };
        for i in 0..x.numel() {
            let mut xp = x.clone();
            xp.data_mut()[i] += eps;
            let mut xm = x.clone();
            xm.data_mut()[i] -= eps;
            let fd = (loss(&xp, &g) - loss(&xm, &g)) / (2.0 * eps);
            assert!((fd - dx.data()[i]).abs() < 2e-2, "dx[{i}]");
        }
        for i in 0..8 {
            let mut gp = g.clone();
            gp.data_mut()[i] += eps;
            let mut gm = g.clone();
            gm.data_mut()[i] -= eps;
            let fd = (loss(&x, &gp) - loss(&x, &gm)) / (2.0 * eps);
            assert!((fd - dgamma.data()[i]).abs() < 2e-2, "dgamma[{i}]");
        }
    }

    #[test]
    fn shape_errors() {
        let x = Tensor::zeros(&[2, 4]);
        let bad = Tensor::zeros(&[3]);
        let ok = Tensor::zeros(&[4]);
        assert!(layernorm(&x, &bad, &ok, 1e-5).is_err());
        assert!(layernorm(&x, &ok, &bad, 1e-5).is_err());
        assert!(rmsnorm(&x, &bad, 1e-5).is_err());
    }
}
