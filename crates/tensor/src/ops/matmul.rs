//! Cache-blocked, parallel matrix multiplication and its gradients.
//!
//! Three raw-slice kernels cover every layout the Transformer needs without
//! materializing transposes:
//!
//! * [`gemm`]    — `C += A · B`      (`A: [m,k]`, `B: [k,n]`)
//! * [`gemm_nt`] — `C += A · Bᵀ`     (`A: [m,k]`, `B: [n,k]`)
//! * [`gemm_tn`] — `C += Aᵀ · B`     (`A: [k,m]`, `B: [k,n]`)
//!
//! Each kernel tiles the iteration space (`MC`/`KC`/`NC` panels, with B-
//! or A-panel packing where the source layout is strided) and fans the
//! row-block loop out to the kernel pool through [`crate::par::run_rows`].
//! The split threshold is the shared `FPDT_PAR_THRESHOLD` tunable, not a
//! per-file constant. Inside each panel the inner loops are the
//! register-blocked SIMD microkernels from [`crate::mk`] (4x16 FMA tiles
//! for `gemm`/`gemm_tn`, 4-row dot sweeps for `gemm_nt`), runtime
//! dispatched between AVX2 and the bitwise-identical scalar fallback.
//! Determinism: every `C` element accumulates its `k` contributions in
//! ascending-`l` order regardless of tile shape, backend, or thread count,
//! so results are bitwise identical from `FPDT_THREADS=1` to N.

use crate::{mk, par, Result, Tensor, TensorError};

/// Rows of `C` per parallel work item (the fan-out grain).
const MC: usize = 32;
/// Depth (`k`) extent of one packed panel.
const KC: usize = 256;
/// Column extent of one packed B panel (`gemm`) or B-row block (`gemm_nt`).
const NC: usize = 512;

/// `c += a @ b` where `a` is `[m, k]`, `b` is `[k, n]`, `c` is `[m, n]`,
/// all row-major slices.
///
/// # Panics
///
/// Panics (via debug assertions on slice indexing) if the slice lengths do
/// not match the stated dimensions.
pub fn gemm(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(c.len(), m * n);
    if m == 0 || k == 0 || n == 0 {
        return;
    }
    let work = m.saturating_mul(k).saturating_mul(n);
    for jc in (0..n).step_by(NC) {
        let nc = NC.min(n - jc);
        for pc in (0..k).step_by(KC) {
            let kc = KC.min(k - pc);
            // Pack the B panel once per (jc, pc): contiguous nc-wide rows
            // shared read-only by every row block below.
            par::with_scratch(kc * nc, |bp| {
                for l in 0..kc {
                    let src = (pc + l) * n + jc;
                    bp[l * nc..(l + 1) * nc].copy_from_slice(&b[src..src + nc]);
                }
                let bp = &*bp;
                par::run_rows(c, MC * n, work, |blk, c_blk| {
                    let i0 = blk * MC;
                    mk::gemm_panel(
                        &mk::Panel {
                            a,
                            a_off: i0 * k + pc,
                            a_stride: k,
                            bp,
                            b_stride: nc,
                            b_col0: 0,
                            kc,
                            nc,
                            rows: c_blk.len() / n,
                            c_stride: n,
                            c_col0: jc,
                        },
                        c_blk,
                    );
                });
            });
        }
    }
}

/// `c += a @ b^T` where `a` is `[m, k]`, `b` is `[n, k]`, `c` is `[m, n]`.
pub fn gemm_nt(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), n * k);
    debug_assert_eq!(c.len(), m * n);
    if m == 0 || k == 0 || n == 0 {
        return;
    }
    let work = m.saturating_mul(k).saturating_mul(n);
    // B rows are already contiguous in k; blocking (pc, jc) keeps one
    // nc x kc panel of B hot in cache across all rows of the block.
    for pc in (0..k).step_by(KC) {
        let kc = KC.min(k - pc);
        for jc in (0..n).step_by(NC) {
            let nc = NC.min(n - jc);
            par::run_rows(c, MC * n, work, |blk, c_blk| {
                let i0 = blk * MC;
                for r in 0..c_blk.len() / n {
                    let a_row = &a[(i0 + r) * k + pc..(i0 + r) * k + pc + kc];
                    let c_row = &mut c_blk[r * n + jc..r * n + jc + nc];
                    // Four B rows per register block share each a_row load.
                    mk::dot_rows(c_row, a_row, b, jc, k, pc, kc);
                }
            });
        }
    }
}

/// `c += a^T @ b` where `a` is `[k, m]`, `b` is `[k, n]`, `c` is `[m, n]`.
pub fn gemm_tn(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    debug_assert_eq!(a.len(), k * m);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(c.len(), m * n);
    if m == 0 || k == 0 || n == 0 {
        return;
    }
    let work = m.saturating_mul(k).saturating_mul(n);
    for pc in (0..k).step_by(KC) {
        let kc = KC.min(k - pc);
        par::run_rows(c, MC * n, work, |blk, c_blk| {
            let i0 = blk * MC;
            let rows = c_blk.len() / n;
            // Pack this block's A columns into row-major form (per-task
            // scratch): turns the stride-m walk into unit stride.
            par::with_scratch(rows * kc, |ap| {
                for (l, lg) in (pc..pc + kc).enumerate() {
                    let src = &a[lg * m + i0..lg * m + i0 + rows];
                    for (r, &v) in src.iter().enumerate() {
                        ap[r * kc + l] = v;
                    }
                }
                mk::gemm_panel(
                    &mk::Panel {
                        a: ap,
                        a_off: 0,
                        a_stride: kc,
                        bp: &b[pc * n..(pc + kc) * n],
                        b_stride: n,
                        b_col0: 0,
                        kc,
                        nc: n,
                        rows,
                        c_stride: n,
                        c_col0: 0,
                    },
                    c_blk,
                );
            });
        });
    }
}

/// Shape-checked matrix product.
///
/// Accepts `[m, k] @ [k, n]` as well as a batched left operand
/// `[..., m, k] @ [k, n]` (the common "activation times weight" case), and
/// fully batched `[..., m, k] @ [..., k, n]` with identical leading
/// dimensions.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] when inner or batch dimensions
/// disagree, and [`TensorError::RankMismatch`] for rank-0/1 operands.
///
/// ```
/// use fpdt_tensor::{Tensor, ops::matmul};
/// # fn main() -> Result<(), fpdt_tensor::TensorError> {
/// let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2])?;
/// let b = Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0], &[2, 2])?;
/// assert_eq!(matmul(&a, &b)?.data(), a.data());
/// # Ok(())
/// # }
/// ```
pub fn matmul(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    let (ash, bsh) = (a.shape(), b.shape());
    if ash.len() < 2 {
        return Err(TensorError::RankMismatch {
            op: "matmul",
            expected: 2,
            actual: ash.len(),
        });
    }
    if bsh.len() < 2 {
        return Err(TensorError::RankMismatch {
            op: "matmul",
            expected: 2,
            actual: bsh.len(),
        });
    }
    let (m, k) = (ash[ash.len() - 2], ash[ash.len() - 1]);
    let (kb, n) = (bsh[bsh.len() - 2], bsh[bsh.len() - 1]);
    let batch_a: usize = ash[..ash.len() - 2].iter().product();
    let batch_b: usize = bsh[..bsh.len() - 2].iter().product();
    let mismatch = || TensorError::ShapeMismatch {
        op: "matmul",
        lhs: ash.to_vec(),
        rhs: bsh.to_vec(),
    };
    if k != kb {
        return Err(mismatch());
    }
    if bsh.len() == 2 {
        // [batch*m, k] @ [k, n]
        let mut out = vec![0.0; batch_a * m * n];
        gemm(batch_a * m, k, n, a.data(), b.data(), &mut out);
        let mut shape = ash[..ash.len() - 2].to_vec();
        shape.push(m);
        shape.push(n);
        return Tensor::from_vec(out, &shape);
    }
    if batch_a != batch_b || ash[..ash.len() - 2] != bsh[..bsh.len() - 2] {
        return Err(mismatch());
    }
    let mut out = vec![0.0; batch_a * m * n];
    for bi in 0..batch_a {
        gemm(
            m,
            k,
            n,
            &a.data()[bi * m * k..(bi + 1) * m * k],
            &b.data()[bi * k * n..(bi + 1) * k * n],
            &mut out[bi * m * n..(bi + 1) * m * n],
        );
    }
    let mut shape = ash[..ash.len() - 2].to_vec();
    shape.push(m);
    shape.push(n);
    Tensor::from_vec(out, &shape)
}

/// Gradient of [`matmul`]: given `dc = dL/dc` for `c = a @ b`, returns
/// `(da, db)`.
///
/// For the batched-left / 2-D-right case, `db` is summed over the batch,
/// matching the weight-gradient reduction in a linear layer.
///
/// # Errors
///
/// Returns the same shape errors as [`matmul`] when the saved operands and
/// the upstream gradient disagree.
pub fn matmul_bwd(a: &Tensor, b: &Tensor, dc: &Tensor) -> Result<(Tensor, Tensor)> {
    let (ash, bsh) = (a.shape(), b.shape());
    let (m, k) = (ash[ash.len() - 2], ash[ash.len() - 1]);
    let n = bsh[bsh.len() - 1];
    let batch_a: usize = ash[..ash.len() - 2].iter().product();
    let expect_dc: usize = batch_a * m * n;
    if dc.numel() != expect_dc {
        return Err(TensorError::ShapeMismatch {
            op: "matmul_bwd",
            lhs: ash.to_vec(),
            rhs: dc.shape().to_vec(),
        });
    }
    if bsh.len() == 2 {
        // da = dc @ b^T   : [batch*m, n] x [k, n]^T -> [batch*m, k]
        let mut da = vec![0.0; batch_a * m * k];
        gemm_nt(batch_a * m, n, k, dc.data(), b.data(), &mut da);
        // db = a^T @ dc   : [batch*m, k]^T x [batch*m, n] -> [k, n]
        let mut db = vec![0.0; k * n];
        gemm_tn(k, batch_a * m, n, a.data(), dc.data(), &mut db);
        return Ok((Tensor::from_vec(da, ash)?, Tensor::from_vec(db, bsh)?));
    }
    let mut da = vec![0.0; a.numel()];
    let mut db = vec![0.0; b.numel()];
    for bi in 0..batch_a {
        let a_s = &a.data()[bi * m * k..(bi + 1) * m * k];
        let b_s = &b.data()[bi * k * n..(bi + 1) * k * n];
        let dc_s = &dc.data()[bi * m * n..(bi + 1) * m * n];
        gemm_nt(m, n, k, dc_s, b_s, &mut da[bi * m * k..(bi + 1) * m * k]);
        gemm_tn(k, m, n, a_s, dc_s, &mut db[bi * k * n..(bi + 1) * k * n]);
    }
    Ok((Tensor::from_vec(da, ash)?, Tensor::from_vec(db, bsh)?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init;

    fn naive(a: &Tensor, b: &Tensor) -> Tensor {
        let (m, k) = (a.shape()[0], a.shape()[1]);
        let n = b.shape()[1];
        let mut c = Tensor::zeros(&[m, n]);
        for i in 0..m {
            for j in 0..n {
                let mut s = 0.0;
                for l in 0..k {
                    s += a.at(&[i, l]) * b.at(&[l, j]);
                }
                c.set(&[i, j], s);
            }
        }
        c
    }

    #[test]
    fn matmul_matches_naive() {
        let mut rng = init::seeded_rng(0);
        let a = init::randn(&mut rng, &[13, 7], 1.0);
        let b = init::randn(&mut rng, &[7, 11], 1.0);
        let fast = matmul(&a, &b).unwrap();
        assert!(fast.allclose(&naive(&a, &b), 1e-4, 1e-5));
    }

    #[test]
    fn matmul_large_parallel_path() {
        let mut rng = init::seeded_rng(1);
        let a = init::randn(&mut rng, &[64, 64], 1.0);
        let b = init::randn(&mut rng, &[64, 64], 1.0);
        let fast = matmul(&a, &b).unwrap();
        assert!(fast.allclose(&naive(&a, &b), 1e-3, 1e-4));
    }

    #[test]
    fn batched_left_two_d_right() {
        let mut rng = init::seeded_rng(2);
        let a = init::randn(&mut rng, &[3, 4, 5], 1.0);
        let b = init::randn(&mut rng, &[5, 2], 1.0);
        let c = matmul(&a, &b).unwrap();
        assert_eq!(c.shape(), &[3, 4, 2]);
        // spot-check one batch against 2-D matmul
        let a1 = a.narrow(0, 1, 1).unwrap().reshape(&[4, 5]).unwrap();
        let c1 = matmul(&a1, &b).unwrap();
        let got = c.narrow(0, 1, 1).unwrap().reshape(&[4, 2]).unwrap();
        assert!(got.allclose(&c1, 1e-5, 1e-6));
    }

    #[test]
    fn fully_batched() {
        let mut rng = init::seeded_rng(3);
        let a = init::randn(&mut rng, &[2, 3, 4], 1.0);
        let b = init::randn(&mut rng, &[2, 4, 5], 1.0);
        let c = matmul(&a, &b).unwrap();
        assert_eq!(c.shape(), &[2, 3, 5]);
        for bi in 0..2 {
            let ai = a.narrow(0, bi, 1).unwrap().reshape(&[3, 4]).unwrap();
            let bi_t = b.narrow(0, bi, 1).unwrap().reshape(&[4, 5]).unwrap();
            let want = matmul(&ai, &bi_t).unwrap();
            let got = c.narrow(0, bi, 1).unwrap().reshape(&[3, 5]).unwrap();
            assert!(got.allclose(&want, 1e-5, 1e-6));
        }
    }

    #[test]
    fn shape_errors() {
        let a = Tensor::zeros(&[2, 3]);
        let b = Tensor::zeros(&[4, 5]);
        assert!(matmul(&a, &b).is_err());
        assert!(matmul(&Tensor::zeros(&[3]), &a).is_err());
        let a3 = Tensor::zeros(&[2, 2, 3]);
        let b3 = Tensor::zeros(&[3, 3, 4]);
        assert!(matmul(&a3, &b3).is_err());
    }

    /// Finite-difference check of matmul_bwd.
    #[test]
    fn backward_matches_finite_difference() {
        let mut rng = init::seeded_rng(4);
        let a = init::randn(&mut rng, &[3, 4], 1.0);
        let b = init::randn(&mut rng, &[4, 2], 1.0);
        // L = sum(c)
        let dc = Tensor::ones(&[3, 2]);
        let (da, db) = matmul_bwd(&a, &b, &dc).unwrap();
        let eps = 1e-3;
        for idx in 0..a.numel() {
            let mut ap = a.clone();
            ap.data_mut()[idx] += eps;
            let mut am = a.clone();
            am.data_mut()[idx] -= eps;
            let fd =
                (matmul(&ap, &b).unwrap().sum() - matmul(&am, &b).unwrap().sum()) / (2.0 * eps);
            assert!(
                (fd - da.data()[idx]).abs() < 1e-2,
                "da[{idx}]: fd {fd} vs {}",
                da.data()[idx]
            );
        }
        for idx in 0..b.numel() {
            let mut bp = b.clone();
            bp.data_mut()[idx] += eps;
            let mut bm = b.clone();
            bm.data_mut()[idx] -= eps;
            let fd =
                (matmul(&a, &bp).unwrap().sum() - matmul(&a, &bm).unwrap().sum()) / (2.0 * eps);
            assert!(
                (fd - db.data()[idx]).abs() < 1e-2,
                "db[{idx}]: fd {fd} vs {}",
                db.data()[idx]
            );
        }
    }

    #[test]
    fn backward_batched_sums_weight_grad() {
        let mut rng = init::seeded_rng(5);
        let a = init::randn(&mut rng, &[2, 3, 4], 1.0);
        let b = init::randn(&mut rng, &[4, 5], 1.0);
        let dc = Tensor::ones(&[2, 3, 5]);
        let (_, db) = matmul_bwd(&a, &b, &dc).unwrap();
        // db should equal sum over batches of per-batch db
        let mut want = Tensor::zeros(&[4, 5]);
        for bi in 0..2 {
            let ai = a.narrow(0, bi, 1).unwrap().reshape(&[3, 4]).unwrap();
            let dci = Tensor::ones(&[3, 5]);
            let (_, dbi) = matmul_bwd(&ai, &b, &dci).unwrap();
            want.add_assign(&dbi).unwrap();
        }
        assert!(db.allclose(&want, 1e-4, 1e-5));
    }

    #[test]
    fn gemm_variants_agree() {
        let mut rng = init::seeded_rng(6);
        let a = init::randn(&mut rng, &[5, 3], 1.0);
        let b = init::randn(&mut rng, &[3, 4], 1.0);
        let want = matmul(&a, &b).unwrap();

        // gemm_nt with b^T
        let bt = b.transpose2().unwrap();
        let mut c = vec![0.0; 5 * 4];
        gemm_nt(5, 3, 4, a.data(), bt.data(), &mut c);
        assert!(Tensor::from_vec(c, &[5, 4])
            .unwrap()
            .allclose(&want, 1e-5, 1e-6));

        // gemm_tn with a^T
        let at = a.transpose2().unwrap();
        let mut c = vec![0.0; 5 * 4];
        gemm_tn(5, 3, 4, at.data(), b.data(), &mut c);
        assert!(Tensor::from_vec(c, &[5, 4])
            .unwrap()
            .allclose(&want, 1e-5, 1e-6));
    }
}
