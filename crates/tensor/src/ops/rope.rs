//! Rotary position embeddings (RoPE).
//!
//! FPDT processes the sequence in chunks, so RoPE must be applied with
//! *global* token positions rather than chunk-local offsets — [`rope`]
//! therefore takes an explicit position per row. The backward pass is a
//! rotation by the negative angle (rotations are orthogonal).

use crate::{Result, Tensor, TensorError};

fn rotate(x: &Tensor, positions: &[usize], base: f32, sign: f32) -> Result<Tensor> {
    if x.ndim() != 3 {
        return Err(TensorError::RankMismatch {
            op: "rope",
            expected: 3,
            actual: x.ndim(),
        });
    }
    let (s, h, d) = (x.shape()[0], x.shape()[1], x.shape()[2]);
    if positions.len() != s {
        return Err(TensorError::ShapeMismatch {
            op: "rope",
            lhs: x.shape().to_vec(),
            rhs: vec![positions.len()],
        });
    }
    if d % 2 != 0 {
        return Err(TensorError::InvalidSlice {
            what: format!("rope head dim {d} must be even"),
        });
    }
    let half = d / 2;
    // inverse frequencies: base^(-2i/d)
    let inv_freq: Vec<f32> = (0..half)
        .map(|i| base.powf(-2.0 * i as f32 / d as f32))
        .collect();
    let mut out = x.clone();
    for (t, &pos) in positions.iter().enumerate() {
        for head in 0..h {
            let off = (t * h + head) * d;
            let row = &mut out.data_mut()[off..off + d];
            for i in 0..half {
                let theta = sign * pos as f32 * inv_freq[i];
                let (sin, cos) = theta.sin_cos();
                let (a, b) = (row[2 * i], row[2 * i + 1]);
                row[2 * i] = a * cos - b * sin;
                row[2 * i + 1] = a * sin + b * cos;
            }
        }
    }
    Ok(out)
}

/// Applies rotary position embedding to a `[seq, heads, head_dim]` tensor,
/// rotating each consecutive pair of features by `pos * base^(-2i/d)`.
///
/// `positions[t]` is the *global* position of row `t`; FPDT chunks pass
/// their shuffled global positions here.
///
/// # Errors
///
/// Returns a rank/shape error unless `x` is rank 3 with an even head dim
/// and `positions.len() == seq`.
pub fn rope(x: &Tensor, positions: &[usize], base: f32) -> Result<Tensor> {
    rotate(x, positions, base, 1.0)
}

/// Backward pass of [`rope`]: rotates the upstream gradient by the negative
/// angles (the Jacobian of a rotation is its transpose).
///
/// # Errors
///
/// Same conditions as [`rope`].
pub fn rope_bwd(dy: &Tensor, positions: &[usize], base: f32) -> Result<Tensor> {
    rotate(dy, positions, base, -1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init;

    const BASE: f32 = 10_000.0;

    #[test]
    fn position_zero_is_identity() {
        let mut rng = init::seeded_rng(40);
        let x = init::randn(&mut rng, &[1, 2, 8], 1.0);
        let y = rope(&x, &[0], BASE).unwrap();
        assert!(y.allclose(&x, 1e-6, 1e-7));
    }

    #[test]
    fn rope_preserves_norm() {
        let mut rng = init::seeded_rng(41);
        let x = init::randn(&mut rng, &[4, 2, 8], 1.0);
        let y = rope(&x, &[0, 5, 10, 1000], BASE).unwrap();
        assert!((x.norm() - y.norm()).abs() < 1e-3);
    }

    #[test]
    fn bwd_inverts_fwd() {
        let mut rng = init::seeded_rng(42);
        let x = init::randn(&mut rng, &[3, 2, 8], 1.0);
        let pos = [7, 20, 33];
        let y = rope(&x, &pos, BASE).unwrap();
        let back = rope_bwd(&y, &pos, BASE).unwrap();
        assert!(back.allclose(&x, 1e-4, 1e-5));
    }

    #[test]
    fn dot_products_depend_only_on_relative_position() {
        // The defining property of RoPE: <rope(q, m), rope(k, n)> depends
        // only on (m - n) for a fixed pair (q, k).
        let mut rng = init::seeded_rng(43);
        let q = init::randn(&mut rng, &[1, 1, 16], 1.0);
        let k = init::randn(&mut rng, &[1, 1, 16], 1.0);
        let dot = |m: usize, n: usize| {
            let qr = rope(&q, &[m], BASE).unwrap();
            let kr = rope(&k, &[n], BASE).unwrap();
            qr.data()
                .iter()
                .zip(kr.data())
                .map(|(&a, &b)| a * b)
                .sum::<f32>()
        };
        let d1 = dot(10, 3);
        let d2 = dot(107, 100);
        assert!((d1 - d2).abs() < 1e-3, "{d1} vs {d2}");
    }

    #[test]
    fn chunked_positions_match_global() {
        // Applying rope to a full sequence equals applying it per chunk
        // with global positions — the invariant FPDT relies on.
        let mut rng = init::seeded_rng(44);
        let x = init::randn(&mut rng, &[8, 2, 8], 1.0);
        let pos: Vec<usize> = (0..8).collect();
        let full = rope(&x, &pos, BASE).unwrap();
        let mut parts = Vec::new();
        for c in 0..4 {
            let chunk = x.narrow(0, c * 2, 2).unwrap();
            parts.push(rope(&chunk, &pos[c * 2..c * 2 + 2], BASE).unwrap());
        }
        let refs: Vec<&Tensor> = parts.iter().collect();
        let stitched = Tensor::concat(&refs, 0).unwrap();
        assert!(stitched.allclose(&full, 1e-6, 1e-7));
    }

    #[test]
    fn rope_errors() {
        let x = Tensor::zeros(&[2, 2, 7]); // odd head dim
        assert!(rope(&x, &[0, 1], BASE).is_err());
        let x = Tensor::zeros(&[2, 2, 8]);
        assert!(rope(&x, &[0], BASE).is_err()); // wrong positions len
        assert!(rope(&Tensor::zeros(&[4, 4]), &[0], BASE).is_err()); // rank
    }
}
