//! Forward and backward kernels for every operation a Transformer block
//! needs.
//!
//! Each forward function has a matching `*_bwd` that consumes the saved
//! forward context and the upstream gradient, mirroring how the FPDT
//! backward pass re-materializes per-chunk state. No tape or graph is
//! involved: `fpdt-core`'s runtime calls these in the right order.

mod elementwise;
mod matmul;
mod norm;
mod rope;
mod softmax;

pub use elementwise::{add_bias, add_bias_bwd, gelu, gelu_bwd, silu, silu_bwd};
pub use matmul::{gemm, gemm_nt, gemm_tn, matmul, matmul_bwd};
pub use norm::{layernorm, layernorm_bwd, rmsnorm, rmsnorm_bwd, LayerNormCtx, RmsNormCtx};
pub use rope::{rope, rope_bwd};
pub use softmax::{cross_entropy, softmax_rows, softmax_rows_bwd, CrossEntropyOutput};
