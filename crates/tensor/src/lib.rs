//! # fpdt-tensor
//!
//! A deliberately small, row-major, `f32` tensor library that backs the
//! numerical side of the FPDT reproduction.
//!
//! The crate provides:
//!
//! * [`Tensor`] — a contiguous, row-major, arbitrarily-ranked `f32` tensor
//!   with shape-checked constructors, axis splitting/concatenation (the
//!   primitive FPDT's sequence chunking is built on), and elementwise math.
//! * [`ops`] — free functions implementing forward *and* backward passes of
//!   every operation a GPT/Llama block needs: blocked parallel matmul,
//!   layer norm, GELU, softmax, rotary position embeddings and fused
//!   softmax-cross-entropy. Backward passes are hand-derived (no tape); the
//!   training runtime in `fpdt-core` wires them together.
//! * [`nn`] — stateful layers (`Linear`, `LayerNorm`, `Embedding`) plus an
//!   [`nn::AdamW`] optimizer with optional parameter sharding, mirroring how
//!   ZeRO partitions optimizer state.
//! * [`init`] — reproducible random initialization.
//!
//! Everything computes in `f32`. The paper's byte accounting assumes bf16
//! activations; the *analytic* crates (`fpdt-model`, `fpdt-sim`) account in
//! bf16 bytes while this crate focuses on numerical correctness.
//!
//! ## Example
//!
//! ```
//! use fpdt_tensor::{Tensor, ops};
//!
//! # fn main() -> Result<(), fpdt_tensor::TensorError> {
//! let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2])?;
//! let b = Tensor::eye(2);
//! let c = ops::matmul(&a, &b)?;
//! assert_eq!(c.data(), a.data());
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]

mod error;
pub mod bf16;
pub mod env;
pub mod init;
pub mod mk;
pub mod nn;
pub mod ops;
pub mod par;
mod tensor;

pub use error::TensorError;
pub use tensor::Tensor;

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, TensorError>;
