//! The kernel layer's single environment-variable initialization point.
//!
//! `fpdt-tensor` sits at the bottom of the workspace dependency graph, so
//! it cannot call into `fpdt_core::runtime::RuntimeOptions` — but its two
//! knobs (`FPDT_SIMD`, `FPDT_PAR_THRESHOLD`) still deserve the same strict
//! parse-or-warn discipline as the runtime flags. This module is the one
//! place in the crate allowed to touch `std::env` (`fpdt-lint` rule
//! `env-outside-options` enforces that mechanically), and
//! `RuntimeOptions::from_env` reuses these primitives so the flag syntax
//! stays identical across layers:
//!
//! * flags: unset means the default; `0`, `false`, or `off` (trimmed)
//!   disable; anything else enables. [`flag_with_off_values`] lets a knob
//!   accept extra disabling spellings (`FPDT_SIMD=scalar`).
//! * counts: strict trimmed decimal `>= 1`; anything else warns **once**
//!   per variable and falls back to the default instead of silently
//!   training under a configuration the operator did not ask for.

use std::collections::HashSet;
use std::sync::{Mutex, OnceLock};

/// Parses the shared flag syntax: unset means `default`; `0`, `false`,
/// or `off` disable; any other value enables.
pub fn flag(name: &str, default: bool) -> bool {
    flag_with_off_values(name, default, &["0", "false", "off"])
}

/// [`flag`] with a custom set of disabling spellings, for knobs whose
/// "off" direction has a domain name (`FPDT_SIMD=scalar`). The value is
/// trimmed before comparison; unset still means `default`.
pub fn flag_with_off_values(name: &str, default: bool, off_values: &[&str]) -> bool {
    match std::env::var(name) {
        Err(_) => default,
        Ok(v) => !off_values.contains(&v.trim()),
    }
}

/// Strictly validates a count-valued knob: trimmed decimal, nonzero.
///
/// Returns the reason a value is unusable so [`usize_knob`] can warn —
/// an operator who exports `FPDT_THREADS=eight` (or `=0`) should hear
/// about the typo once instead of silently training on the default.
pub fn parse_usize_strict(raw: &str) -> Result<usize, String> {
    let trimmed = raw.trim();
    if trimmed.is_empty() {
        return Err("value is empty".to_string());
    }
    match trimmed.parse::<usize>() {
        Err(_) => Err(format!("`{trimmed}` is not a positive integer")),
        Ok(0) => Err("`0` is not a usable value (must be >= 1)".to_string()),
        Ok(v) => Ok(v),
    }
}

/// Warns about a malformed variable at most once per process.
pub fn warn_once(name: &str, why: &str) {
    static WARNED: OnceLock<Mutex<HashSet<String>>> = OnceLock::new();
    let mut warned = WARNED
        .get_or_init(|| Mutex::new(HashSet::new()))
        .lock()
        .unwrap_or_else(|e| e.into_inner());
    if warned.insert(name.to_string()) {
        eprintln!("warning: ignoring malformed {name} ({why}); using the default");
    }
}

/// Reads a count-valued knob under [`parse_usize_strict`]: `None` when the
/// variable is unset *or* malformed (after a one-time warning).
pub fn usize_knob(name: &str) -> Option<usize> {
    let raw = std::env::var(name).ok()?;
    match parse_usize_strict(&raw) {
        Ok(v) => Some(v),
        Err(why) => {
            warn_once(name, &why);
            None
        }
    }
}

/// Reads a budget-valued knob: like [`usize_knob`] but `0` is a usable
/// value (a retry budget of zero means "fail fast", not "unset").
pub fn budget_knob(name: &str) -> Option<usize> {
    let raw = std::env::var(name).ok()?;
    let trimmed = raw.trim();
    if trimmed == "0" {
        return Some(0);
    }
    match parse_usize_strict(trimmed) {
        Ok(v) => Some(v),
        Err(why) => {
            warn_once(name, &why);
            None
        }
    }
}

/// Reads a string-valued knob (e.g. a checkpoint directory): trimmed,
/// `None` when unset; an all-whitespace value warns once and reads as
/// unset rather than pointing the run at an empty path.
pub fn string_knob(name: &str) -> Option<String> {
    let raw = std::env::var(name).ok()?;
    let trimmed = raw.trim();
    if trimmed.is_empty() {
        warn_once(name, "value is empty");
        return None;
    }
    Some(trimmed.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flag_syntax_is_shared() {
        for (val, want) in [
            (Some("0"), false),
            (Some("false"), false),
            (Some(" off "), false),
            (Some("1"), true),
            (Some("yes"), true),
            (None, true),
        ] {
            match val {
                Some(v) => std::env::set_var("FPDT_TENSOR_TEST_FLAG", v),
                None => std::env::remove_var("FPDT_TENSOR_TEST_FLAG"),
            }
            assert_eq!(flag("FPDT_TENSOR_TEST_FLAG", true), want, "{val:?}");
        }
        std::env::remove_var("FPDT_TENSOR_TEST_FLAG");
        assert!(!flag("FPDT_TENSOR_TEST_FLAG", false), "default respected");
    }

    #[test]
    fn extra_off_values_extend_not_replace_the_match() {
        let off = &["0", "off", "false", "scalar"];
        std::env::set_var("FPDT_TENSOR_TEST_SIMD", "scalar");
        assert!(!flag_with_off_values("FPDT_TENSOR_TEST_SIMD", true, off));
        std::env::set_var("FPDT_TENSOR_TEST_SIMD", "avx2");
        assert!(flag_with_off_values("FPDT_TENSOR_TEST_SIMD", true, off));
        std::env::remove_var("FPDT_TENSOR_TEST_SIMD");
        assert!(flag_with_off_values("FPDT_TENSOR_TEST_SIMD", true, off));
    }

    #[test]
    fn strict_parse_rejects_empty_garbage_zero() {
        assert!(parse_usize_strict("").is_err(), "empty");
        assert!(parse_usize_strict("   ").is_err(), "whitespace");
        assert!(parse_usize_strict("eight").is_err(), "garbage");
        assert!(parse_usize_strict("3.5").is_err(), "float");
        assert!(parse_usize_strict("-2").is_err(), "negative");
        assert!(parse_usize_strict("0").is_err(), "zero");
        assert_eq!(parse_usize_strict("8"), Ok(8));
        assert_eq!(parse_usize_strict(" 16 "), Ok(16), "trimmed");
    }

    #[test]
    fn malformed_counts_read_as_unset() {
        for (i, bad) in ["", "garbage", "0", "-1"].iter().enumerate() {
            let name = format!("FPDT_TENSOR_TEST_COUNT_{i}");
            std::env::set_var(&name, bad);
            assert_eq!(usize_knob(&name), None, "{bad:?} must fall back");
            std::env::remove_var(&name);
        }
        std::env::set_var("FPDT_TENSOR_TEST_COUNT_OK", "4");
        assert_eq!(usize_knob("FPDT_TENSOR_TEST_COUNT_OK"), Some(4));
        std::env::remove_var("FPDT_TENSOR_TEST_COUNT_OK");
        assert_eq!(usize_knob("FPDT_TENSOR_TEST_COUNT_OK"), None);
    }

    #[test]
    fn budget_knob_allows_zero_but_not_garbage() {
        std::env::set_var("FPDT_TENSOR_TEST_BUDGET", "0");
        assert_eq!(budget_knob("FPDT_TENSOR_TEST_BUDGET"), Some(0));
        std::env::set_var("FPDT_TENSOR_TEST_BUDGET", " 3 ");
        assert_eq!(budget_knob("FPDT_TENSOR_TEST_BUDGET"), Some(3));
        std::env::set_var("FPDT_TENSOR_TEST_BUDGET", "lots");
        assert_eq!(budget_knob("FPDT_TENSOR_TEST_BUDGET"), None);
        std::env::remove_var("FPDT_TENSOR_TEST_BUDGET");
        assert_eq!(budget_knob("FPDT_TENSOR_TEST_BUDGET"), None);
    }

    #[test]
    fn string_knob_trims_and_rejects_empty() {
        std::env::set_var("FPDT_TENSOR_TEST_DIR", "  /tmp/ck  ");
        assert_eq!(string_knob("FPDT_TENSOR_TEST_DIR").as_deref(), Some("/tmp/ck"));
        std::env::set_var("FPDT_TENSOR_TEST_DIR", "   ");
        assert_eq!(string_knob("FPDT_TENSOR_TEST_DIR"), None, "empty reads as unset");
        std::env::remove_var("FPDT_TENSOR_TEST_DIR");
        assert_eq!(string_knob("FPDT_TENSOR_TEST_DIR"), None);
    }
}
