use crate::{Result, TensorError};
use serde::{Deserialize, Serialize};

/// A contiguous, row-major, arbitrarily-ranked `f32` tensor.
///
/// `Tensor` is the carrier type for all real numerics in the FPDT
/// reproduction: activations, parameters, gradients and sequence chunks.
/// It is intentionally simple — contiguous storage, copy-on-slice — because
/// FPDT's chunk pipeline is expressed entirely in terms of axis splitting,
/// concatenation and dense kernels.
///
/// # Example
///
/// ```
/// use fpdt_tensor::Tensor;
///
/// # fn main() -> Result<(), fpdt_tensor::TensorError> {
/// let t = Tensor::from_vec(vec![0.0, 1.0, 2.0, 3.0, 4.0, 5.0], &[2, 3])?;
/// let halves = t.split(1, 3)?;
/// assert_eq!(halves.len(), 3);
/// assert_eq!(halves[0].data(), &[0.0, 3.0]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tensor {
    data: Vec<f32>,
    shape: Vec<usize>,
}

impl Default for Tensor {
    fn default() -> Self {
        Tensor {
            data: Vec::new(),
            shape: vec![0],
        }
    }
}

impl Tensor {
    /// Creates a tensor filled with zeros.
    ///
    /// ```
    /// # use fpdt_tensor::Tensor;
    /// let z = Tensor::zeros(&[2, 4]);
    /// assert_eq!(z.numel(), 8);
    /// ```
    pub fn zeros(shape: &[usize]) -> Self {
        Tensor {
            data: vec![0.0; shape.iter().product()],
            shape: shape.to_vec(),
        }
    }

    /// Creates a tensor filled with ones.
    pub fn ones(shape: &[usize]) -> Self {
        Self::full(shape, 1.0)
    }

    /// Creates a tensor filled with `value`.
    pub fn full(shape: &[usize], value: f32) -> Self {
        Tensor {
            data: vec![value; shape.iter().product()],
            shape: shape.to_vec(),
        }
    }

    /// Creates the `n x n` identity matrix.
    pub fn eye(n: usize) -> Self {
        let mut t = Self::zeros(&[n, n]);
        for i in 0..n {
            t.data[i * n + i] = 1.0;
        }
        t
    }

    /// Creates a rank-1 tensor `[0, 1, ..., n-1]`.
    pub fn arange(n: usize) -> Self {
        Tensor {
            data: (0..n).map(|i| i as f32).collect(),
            shape: vec![n],
        }
    }

    /// Wraps an existing buffer in a tensor of the given shape.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::LengthMismatch`] if `data.len()` differs from
    /// the product of `shape`.
    pub fn from_vec(data: Vec<f32>, shape: &[usize]) -> Result<Self> {
        let expected: usize = shape.iter().product();
        if data.len() != expected {
            return Err(TensorError::LengthMismatch {
                expected,
                actual: data.len(),
            });
        }
        Ok(Tensor {
            data,
            shape: shape.to_vec(),
        })
    }

    /// The shape of the tensor.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Number of axes.
    pub fn ndim(&self) -> usize {
        self.shape.len()
    }

    /// Total number of elements.
    pub fn numel(&self) -> usize {
        self.data.len()
    }

    /// Immutable view of the underlying row-major buffer.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the underlying row-major buffer.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor, returning its buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Returns a copy with a new shape covering the same elements.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::LengthMismatch`] if the element counts differ.
    pub fn reshape(&self, shape: &[usize]) -> Result<Self> {
        let expected: usize = shape.iter().product();
        if expected != self.data.len() {
            return Err(TensorError::LengthMismatch {
                expected,
                actual: self.data.len(),
            });
        }
        Ok(Tensor {
            data: self.data.clone(),
            shape: shape.to_vec(),
        })
    }

    /// In-place variant of [`Tensor::reshape`]; avoids the copy.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::LengthMismatch`] if the element counts differ.
    pub fn reshape_in_place(&mut self, shape: &[usize]) -> Result<()> {
        let expected: usize = shape.iter().product();
        if expected != self.data.len() {
            return Err(TensorError::LengthMismatch {
                expected,
                actual: self.data.len(),
            });
        }
        self.shape = shape.to_vec();
        Ok(())
    }

    /// Element access by multi-dimensional index (test/debug helper).
    ///
    /// # Panics
    ///
    /// Panics if `idx` has the wrong rank or is out of bounds.
    pub fn at(&self, idx: &[usize]) -> f32 {
        self.data[self.offset(idx)]
    }

    /// Sets the element at a multi-dimensional index (test/debug helper).
    ///
    /// # Panics
    ///
    /// Panics if `idx` has the wrong rank or is out of bounds.
    pub fn set(&mut self, idx: &[usize], value: f32) {
        let off = self.offset(idx);
        self.data[off] = value;
    }

    fn offset(&self, idx: &[usize]) -> usize {
        assert_eq!(idx.len(), self.shape.len(), "index rank mismatch");
        let mut off = 0;
        for (i, (&ix, &dim)) in idx.iter().zip(&self.shape).enumerate() {
            assert!(
                ix < dim,
                "index {ix} out of bounds for axis {i} (len {dim})"
            );
            off = off * dim + ix;
        }
        off
    }

    /// Decomposes the shape around `axis` into `(outer, len, inner)` extents.
    fn axis_extents(&self, axis: usize) -> Result<(usize, usize, usize)> {
        if axis >= self.shape.len() {
            return Err(TensorError::AxisOutOfRange {
                axis,
                ndim: self.shape.len(),
            });
        }
        let outer: usize = self.shape[..axis].iter().product();
        let len = self.shape[axis];
        let inner: usize = self.shape[axis + 1..].iter().product();
        Ok((outer, len, inner))
    }

    /// Copies out the sub-tensor `[.., start..start+len, ..]` along `axis`.
    ///
    /// This is the primitive FPDT uses to carve a local sequence into
    /// pipeline chunks.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::AxisOutOfRange`] or
    /// [`TensorError::InvalidSlice`] when the range exceeds the axis.
    pub fn narrow(&self, axis: usize, start: usize, len: usize) -> Result<Self> {
        let (outer, axis_len, inner) = self.axis_extents(axis)?;
        if start + len > axis_len {
            return Err(TensorError::InvalidSlice {
                what: format!(
                    "range {start}..{} exceeds axis length {axis_len}",
                    start + len
                ),
            });
        }
        let mut out = Vec::with_capacity(outer * len * inner);
        for o in 0..outer {
            let base = (o * axis_len + start) * inner;
            out.extend_from_slice(&self.data[base..base + len * inner]);
        }
        let mut shape = self.shape.clone();
        shape[axis] = len;
        Ok(Tensor { data: out, shape })
    }

    /// Splits the tensor into `parts` equal pieces along `axis`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidSlice`] if `parts` does not evenly
    /// divide the axis, or [`TensorError::AxisOutOfRange`].
    pub fn split(&self, axis: usize, parts: usize) -> Result<Vec<Self>> {
        let (_, axis_len, _) = self.axis_extents(axis)?;
        if parts == 0 || axis_len % parts != 0 {
            return Err(TensorError::InvalidSlice {
                what: format!("cannot split axis of length {axis_len} into {parts} parts"),
            });
        }
        let step = axis_len / parts;
        (0..parts)
            .map(|p| self.narrow(axis, p * step, step))
            .collect()
    }

    /// Concatenates tensors along `axis`. All other axes must match.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidSlice`] for an empty input list and
    /// [`TensorError::ShapeMismatch`] when non-`axis` extents differ.
    pub fn concat(tensors: &[&Tensor], axis: usize) -> Result<Self> {
        let first = *tensors.first().ok_or_else(|| TensorError::InvalidSlice {
            what: "concat of zero tensors".into(),
        })?;
        let (outer, _, inner) = first.axis_extents(axis)?;
        let mut total_axis = 0;
        for t in tensors {
            if t.ndim() != first.ndim()
                || t.shape[..axis] != first.shape[..axis]
                || t.shape[axis + 1..] != first.shape[axis + 1..]
            {
                return Err(TensorError::ShapeMismatch {
                    op: "concat",
                    lhs: first.shape.clone(),
                    rhs: t.shape.clone(),
                });
            }
            total_axis += t.shape[axis];
        }
        let mut shape = first.shape.clone();
        shape[axis] = total_axis;
        let mut data = Vec::with_capacity(outer * total_axis * inner);
        for o in 0..outer {
            for t in tensors {
                let len = t.shape[axis];
                let base = o * len * inner;
                data.extend_from_slice(&t.data[base..base + len * inner]);
            }
        }
        Ok(Tensor { data, shape })
    }

    /// Transposes a rank-2 tensor.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] unless the tensor is rank 2.
    pub fn transpose2(&self) -> Result<Self> {
        if self.ndim() != 2 {
            return Err(TensorError::RankMismatch {
                op: "transpose2",
                expected: 2,
                actual: self.ndim(),
            });
        }
        let (r, c) = (self.shape[0], self.shape[1]);
        let mut out = vec![0.0; r * c];
        for i in 0..r {
            for j in 0..c {
                out[j * r + i] = self.data[i * c + j];
            }
        }
        Ok(Tensor {
            data: out,
            shape: vec![c, r],
        })
    }

    /// Swaps the last two axes of a tensor of rank >= 2.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] for rank < 2.
    pub fn swap_last_two(&self) -> Result<Self> {
        let nd = self.ndim();
        if nd < 2 {
            return Err(TensorError::RankMismatch {
                op: "swap_last_two",
                expected: 2,
                actual: nd,
            });
        }
        let r = self.shape[nd - 2];
        let c = self.shape[nd - 1];
        let batch: usize = self.shape[..nd - 2].iter().product();
        let mut out = vec![0.0; self.data.len()];
        for b in 0..batch {
            let base = b * r * c;
            for i in 0..r {
                for j in 0..c {
                    out[base + j * r + i] = self.data[base + i * c + j];
                }
            }
        }
        let mut shape = self.shape.clone();
        shape.swap(nd - 2, nd - 1);
        Ok(Tensor { data: out, shape })
    }

    /// Elementwise addition of two same-shaped tensors.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when shapes differ.
    pub fn add(&self, other: &Tensor) -> Result<Self> {
        self.zip_map(other, "add", |a, b| a + b)
    }

    /// Elementwise subtraction.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when shapes differ.
    pub fn sub(&self, other: &Tensor) -> Result<Self> {
        self.zip_map(other, "sub", |a, b| a - b)
    }

    /// Elementwise (Hadamard) product.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when shapes differ.
    pub fn mul(&self, other: &Tensor) -> Result<Self> {
        self.zip_map(other, "mul", |a, b| a * b)
    }

    /// In-place `self += other`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when shapes differ.
    pub fn add_assign(&mut self, other: &Tensor) -> Result<()> {
        if self.shape != other.shape {
            return Err(TensorError::ShapeMismatch {
                op: "add_assign",
                lhs: self.shape.clone(),
                rhs: other.shape.clone(),
            });
        }
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
        Ok(())
    }

    /// In-place `self += alpha * other` (BLAS `axpy`).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when shapes differ.
    pub fn axpy(&mut self, alpha: f32, other: &Tensor) -> Result<()> {
        if self.shape != other.shape {
            return Err(TensorError::ShapeMismatch {
                op: "axpy",
                lhs: self.shape.clone(),
                rhs: other.shape.clone(),
            });
        }
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += alpha * b;
        }
        Ok(())
    }

    /// Returns a copy scaled by `alpha`.
    pub fn scale(&self, alpha: f32) -> Self {
        self.map(|x| x * alpha)
    }

    /// In-place scaling by `alpha`.
    pub fn scale_in_place(&mut self, alpha: f32) {
        for x in &mut self.data {
            *x *= alpha;
        }
    }

    /// Fills the buffer with zeros, keeping the shape.
    pub fn zero_(&mut self) {
        self.data.fill(0.0);
    }

    /// Applies `f` elementwise, producing a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Self {
        Tensor {
            data: self.data.iter().map(|&x| f(x)).collect(),
            shape: self.shape.clone(),
        }
    }

    fn zip_map(
        &self,
        other: &Tensor,
        op: &'static str,
        f: impl Fn(f32, f32) -> f32,
    ) -> Result<Self> {
        if self.shape != other.shape {
            return Err(TensorError::ShapeMismatch {
                op,
                lhs: self.shape.clone(),
                rhs: other.shape.clone(),
            });
        }
        Ok(Tensor {
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(&a, &b)| f(a, b))
                .collect(),
            shape: self.shape.clone(),
        })
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Arithmetic mean of all elements (0 for an empty tensor).
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Largest absolute element (0 for an empty tensor).
    pub fn max_abs(&self) -> f32 {
        self.data.iter().fold(0.0f32, |m, &x| m.max(x.abs()))
    }

    /// Frobenius norm.
    pub fn norm(&self) -> f32 {
        self.data.iter().map(|&x| x * x).sum::<f32>().sqrt()
    }

    /// `true` when `self` and `other` have the same shape and every element
    /// differs by at most `atol + rtol * |other|`.
    pub fn allclose(&self, other: &Tensor, rtol: f32, atol: f32) -> bool {
        self.shape == other.shape
            && self
                .data
                .iter()
                .zip(&other.data)
                .all(|(&a, &b)| (a - b).abs() <= atol + rtol * b.abs())
    }
}

impl std::fmt::Display for Tensor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Tensor{:?}[{} elems]", self.shape, self.data.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_have_expected_contents() {
        assert!(Tensor::zeros(&[2, 3]).data().iter().all(|&x| x == 0.0));
        assert!(Tensor::ones(&[4]).data().iter().all(|&x| x == 1.0));
        assert_eq!(Tensor::full(&[2], 7.5).data(), &[7.5, 7.5]);
        let e = Tensor::eye(3);
        assert_eq!(e.at(&[1, 1]), 1.0);
        assert_eq!(e.at(&[1, 2]), 0.0);
        assert_eq!(Tensor::arange(4).data(), &[0.0, 1.0, 2.0, 3.0]);
    }

    #[test]
    fn from_vec_checks_length() {
        assert!(Tensor::from_vec(vec![1.0; 6], &[2, 3]).is_ok());
        assert_eq!(
            Tensor::from_vec(vec![1.0; 5], &[2, 3]).unwrap_err(),
            TensorError::LengthMismatch {
                expected: 6,
                actual: 5
            }
        );
    }

    #[test]
    fn reshape_round_trips() {
        let t = Tensor::arange(12).reshape(&[3, 4]).unwrap();
        let u = t.reshape(&[2, 6]).unwrap();
        assert_eq!(u.shape(), &[2, 6]);
        assert_eq!(u.data(), t.data());
        assert!(t.reshape(&[5, 5]).is_err());
    }

    #[test]
    fn narrow_middle_axis() {
        // shape [2, 4, 3]
        let t = Tensor::arange(24).reshape(&[2, 4, 3]).unwrap();
        let n = t.narrow(1, 1, 2).unwrap();
        assert_eq!(n.shape(), &[2, 2, 3]);
        // first outer block, rows 1..3 of original
        assert_eq!(&n.data()[..6], &[3.0, 4.0, 5.0, 6.0, 7.0, 8.0]);
        // second outer block starts at 12 + 3
        assert_eq!(&n.data()[6..12], &[15.0, 16.0, 17.0, 18.0, 19.0, 20.0]);
    }

    #[test]
    fn split_concat_round_trip() {
        let t = Tensor::arange(24).reshape(&[2, 4, 3]).unwrap();
        for axis in 0..3 {
            let parts = t.shape()[axis];
            let pieces = t.split(axis, parts).unwrap();
            let refs: Vec<&Tensor> = pieces.iter().collect();
            let back = Tensor::concat(&refs, axis).unwrap();
            assert_eq!(back, t, "axis {axis}");
        }
    }

    #[test]
    fn split_rejects_uneven() {
        let t = Tensor::arange(6).reshape(&[2, 3]).unwrap();
        assert!(t.split(1, 2).is_err());
        assert!(t.split(0, 0).is_err());
        assert!(t.split(3, 1).is_err());
    }

    #[test]
    fn concat_rejects_mismatched() {
        let a = Tensor::zeros(&[2, 3]);
        let b = Tensor::zeros(&[3, 3]);
        assert!(Tensor::concat(&[&a, &b], 1).is_err());
        assert!(Tensor::concat(&[], 0).is_err());
    }

    #[test]
    fn transpose2_is_involution() {
        let t = Tensor::arange(6).reshape(&[2, 3]).unwrap();
        let tt = t.transpose2().unwrap();
        assert_eq!(tt.shape(), &[3, 2]);
        assert_eq!(tt.at(&[2, 1]), t.at(&[1, 2]));
        assert_eq!(tt.transpose2().unwrap(), t);
        assert!(Tensor::arange(3).transpose2().is_err());
    }

    #[test]
    fn swap_last_two_batched() {
        let t = Tensor::arange(12).reshape(&[2, 2, 3]).unwrap();
        let s = t.swap_last_two().unwrap();
        assert_eq!(s.shape(), &[2, 3, 2]);
        assert_eq!(s.at(&[1, 2, 0]), t.at(&[1, 0, 2]));
    }

    #[test]
    fn elementwise_math() {
        let a = Tensor::from_vec(vec![1.0, 2.0], &[2]).unwrap();
        let b = Tensor::from_vec(vec![3.0, 5.0], &[2]).unwrap();
        assert_eq!(a.add(&b).unwrap().data(), &[4.0, 7.0]);
        assert_eq!(b.sub(&a).unwrap().data(), &[2.0, 3.0]);
        assert_eq!(a.mul(&b).unwrap().data(), &[3.0, 10.0]);
        let mut c = a.clone();
        c.axpy(2.0, &b).unwrap();
        assert_eq!(c.data(), &[7.0, 12.0]);
        assert!(a.add(&Tensor::zeros(&[3])).is_err());
    }

    #[test]
    fn reductions() {
        let t = Tensor::from_vec(vec![-3.0, 4.0], &[2]).unwrap();
        assert_eq!(t.sum(), 1.0);
        assert_eq!(t.mean(), 0.5);
        assert_eq!(t.max_abs(), 4.0);
        assert!((t.norm() - 5.0).abs() < 1e-6);
    }

    #[test]
    fn allclose_tolerances() {
        let a = Tensor::from_vec(vec![1.0, 2.0], &[2]).unwrap();
        let b = Tensor::from_vec(vec![1.0 + 1e-6, 2.0 - 1e-6], &[2]).unwrap();
        assert!(a.allclose(&b, 1e-5, 1e-5));
        assert!(!a.allclose(&Tensor::zeros(&[2]), 1e-5, 1e-5));
        assert!(!a.allclose(&Tensor::zeros(&[3]), 1.0, 1e9));
    }

    #[test]
    fn default_is_empty_but_debug_nonempty() {
        let d = Tensor::default();
        assert_eq!(d.numel(), 0);
        assert!(!format!("{d:?}").is_empty());
        assert!(!format!("{d}").is_empty());
    }
}
