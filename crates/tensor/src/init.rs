//! Reproducible random initialization helpers.
//!
//! All experiments in the reproduction seed their RNGs explicitly so the
//! loss-curve comparisons (paper Figure 14) are deterministic across runs.

use crate::Tensor;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Creates a [`SmallRng`] from a `u64` seed.
///
/// ```
/// let mut rng = fpdt_tensor::init::seeded_rng(42);
/// let t = fpdt_tensor::init::randn(&mut rng, &[4, 4], 0.02);
/// assert_eq!(t.shape(), &[4, 4]);
/// ```
pub fn seeded_rng(seed: u64) -> SmallRng {
    SmallRng::seed_from_u64(seed)
}

/// Samples a tensor with i.i.d. normal entries of the given standard
/// deviation (Box-Muller over the crate RNG; mean 0).
pub fn randn(rng: &mut SmallRng, shape: &[usize], std: f32) -> Tensor {
    let n: usize = shape.iter().product();
    let mut data = Vec::with_capacity(n);
    while data.len() < n {
        // Box-Muller transform: two uniforms -> two normals.
        let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
        let u2: f32 = rng.gen_range(0.0..1.0);
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f32::consts::PI * u2;
        data.push(r * theta.cos() * std);
        if data.len() < n {
            data.push(r * theta.sin() * std);
        }
    }
    Tensor::from_vec(data, shape).expect("length matches by construction")
}

/// Samples a tensor with i.i.d. uniform entries in `[lo, hi)`.
pub fn uniform(rng: &mut SmallRng, shape: &[usize], lo: f32, hi: f32) -> Tensor {
    let n: usize = shape.iter().product();
    let data: Vec<f32> = (0..n).map(|_| rng.gen_range(lo..hi)).collect();
    Tensor::from_vec(data, shape).expect("length matches by construction")
}

/// Xavier/Glorot-scaled normal init for a `[fan_in, fan_out]` weight.
pub fn xavier(rng: &mut SmallRng, fan_in: usize, fan_out: usize) -> Tensor {
    let std = (2.0 / (fan_in + fan_out) as f32).sqrt();
    randn(rng, &[fan_in, fan_out], std)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn randn_is_deterministic_per_seed() {
        let a = randn(&mut seeded_rng(7), &[16], 1.0);
        let b = randn(&mut seeded_rng(7), &[16], 1.0);
        let c = randn(&mut seeded_rng(8), &[16], 1.0);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn randn_statistics_are_plausible() {
        let t = randn(&mut seeded_rng(1), &[10_000], 2.0);
        let mean = t.mean();
        let var = t
            .data()
            .iter()
            .map(|&x| (x - mean) * (x - mean))
            .sum::<f32>()
            / (t.numel() - 1) as f32;
        assert!(mean.abs() < 0.1, "mean {mean}");
        assert!((var.sqrt() - 2.0).abs() < 0.1, "std {}", var.sqrt());
    }

    #[test]
    fn randn_odd_length() {
        assert_eq!(randn(&mut seeded_rng(3), &[7], 1.0).numel(), 7);
    }

    #[test]
    fn uniform_respects_bounds() {
        let t = uniform(&mut seeded_rng(2), &[1000], -0.5, 0.5);
        assert!(t.data().iter().all(|&x| (-0.5..0.5).contains(&x)));
    }

    #[test]
    fn xavier_std_shrinks_with_fan() {
        let wide = xavier(&mut seeded_rng(4), 1024, 1024);
        let narrow = xavier(&mut seeded_rng(4), 4, 4);
        assert!(wide.max_abs() < narrow.max_abs());
    }
}
