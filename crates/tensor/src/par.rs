//! Kernel parallelism policy shared by every compute kernel in the
//! workspace: the split threshold, the row-dispatch helper, reusable
//! per-thread scratch buffers, and the deterministic `dot`/`axpy`
//! micro-kernels.
//!
//! The actual thread pool lives in the vendored `rayon` crate
//! (`rayon::pool`); this module decides *when* going parallel pays off and
//! keeps the decision in one place instead of a per-file constant.
//!
//! Determinism: every helper here preserves the kernel contract that makes
//! results bitwise identical at any thread count — items are a fixed
//! partition of disjoint data and all accumulation inside an item is
//! sequential in a fixed order.

use rayon::prelude::*;
use std::cell::RefCell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

/// Default minimum amount of work (roughly multiply-adds, or elements for
/// bandwidth-bound ops) before a kernel fans out to the pool. Matches the
/// former per-file `m * k * n > 1 << 16` gate in the matmul kernels.
pub const DEFAULT_PAR_THRESHOLD: usize = 1 << 16;

fn threshold_cell() -> &'static AtomicUsize {
    static THRESHOLD: OnceLock<AtomicUsize> = OnceLock::new();
    THRESHOLD.get_or_init(|| {
        // Strict parse with a one-time warning on garbage — the shared
        // discipline from `crate::env`, the crate's one env read point.
        let n = crate::env::usize_knob("FPDT_PAR_THRESHOLD").unwrap_or(DEFAULT_PAR_THRESHOLD);
        AtomicUsize::new(n)
    })
}

/// Current parallel-split threshold (initialized from `FPDT_PAR_THRESHOLD`,
/// default [`DEFAULT_PAR_THRESHOLD`]).
pub fn par_threshold() -> usize {
    threshold_cell().load(Ordering::Relaxed)
}

/// Overrides the split threshold at runtime (tests and benchmarks force
/// both paths with this); returns the previous value.
pub fn set_par_threshold(n: usize) -> usize {
    threshold_cell().swap(n, Ordering::Relaxed)
}

/// Whether a kernel with `items` independent pieces totalling `work`
/// scalar operations should fan out to the pool.
pub fn parallel_worthwhile(items: usize, work: usize) -> bool {
    items >= 2 && work >= par_threshold()
}

/// Runs `f` asynchronously on the kernel pool when the per-device thread
/// budget (`rayon::pool::per_call_threads`) leaves room for a helper,
/// inline on the caller otherwise. Returns `true` when the task went
/// async — the caller must then synchronize through its own completion
/// state (the pool offers no join handle). The offload copy stream rides
/// on this, so transfers respect the same `device_scope` budgets as the
/// kernels.
pub fn spawn_task(f: Box<dyn FnOnce() + Send + 'static>) -> bool {
    if rayon::pool::per_call_threads() > 1 {
        rayon::pool::spawn(f);
        true
    } else {
        f();
        false
    }
}

/// Dispatches `body(i, row)` over fixed `row_len` rows of `data` —
/// parallel when [`parallel_worthwhile`] says the `work` estimate covers
/// the fan-out cost, sequential otherwise. Both paths visit the same
/// partition, so the choice never changes the numbers.
///
/// This is the shared dispatch block that used to be copy-pasted per
/// kernel.
pub fn run_rows<F>(data: &mut [f32], row_len: usize, work: usize, body: F)
where
    F: Fn(usize, &mut [f32]) + Sync,
{
    let row_len = row_len.max(1);
    if parallel_worthwhile(data.len() / row_len, work) {
        data.par_chunks_mut(row_len)
            .enumerate()
            .for_each(|(i, row)| body(i, row));
    } else {
        data.chunks_mut(row_len)
            .enumerate()
            .for_each(|(i, row)| body(i, row));
    }
}

/// Two-slice variant of [`run_rows`]: rows of `a` (length `ra`) and `b`
/// (length `rb`) advance in lock step, for kernels whose per-item state
/// spans two buffers (e.g. gradient pairs, output + per-row statistic).
pub fn run_rows2<F>(a: &mut [f32], ra: usize, b: &mut [f32], rb: usize, work: usize, body: F)
where
    F: Fn(usize, &mut [f32], &mut [f32]) + Sync,
{
    let (ra, rb) = (ra.max(1), rb.max(1));
    if parallel_worthwhile(a.len() / ra, work) {
        a.par_chunks_mut(ra)
            .zip(b.par_chunks_mut(rb))
            .enumerate()
            .for_each(|(i, (x, y))| body(i, x, y));
    } else {
        a.chunks_mut(ra)
            .zip(b.chunks_mut(rb))
            .enumerate()
            .for_each(|(i, (x, y))| body(i, x, y));
    }
}

/// Three-slice variant of [`run_rows`] (e.g. the online-attention
/// accumulator's `(acc, m, l)` triple).
#[allow(clippy::too_many_arguments)]
pub fn run_rows3<F>(
    a: &mut [f32],
    ra: usize,
    b: &mut [f32],
    rb: usize,
    c: &mut [f32],
    rc: usize,
    work: usize,
    body: F,
) where
    F: Fn(usize, &mut [f32], &mut [f32], &mut [f32]) + Sync,
{
    let (ra, rb, rc) = (ra.max(1), rb.max(1), rc.max(1));
    if parallel_worthwhile(a.len() / ra, work) {
        a.par_chunks_mut(ra)
            .zip(b.par_chunks_mut(rb))
            .zip(c.par_chunks_mut(rc))
            .enumerate()
            .for_each(|(i, ((x, y), z))| body(i, x, y, z));
    } else {
        a.chunks_mut(ra)
            .zip(b.chunks_mut(rb))
            .zip(c.chunks_mut(rc))
            .enumerate()
            .for_each(|(i, ((x, y), z))| body(i, x, y, z));
    }
}

thread_local! {
    static SCRATCH: RefCell<Vec<Vec<f32>>> = const { RefCell::new(Vec::new()) };
}

/// Hands `f` a zeroed scratch buffer of length `len`, reusing a
/// thread-local allocation across calls (kills the per-chunk `vec!`
/// allocations in the attention backward nest). Reentrant: nested calls
/// get distinct buffers.
pub fn with_scratch<R>(len: usize, f: impl FnOnce(&mut [f32]) -> R) -> R {
    let mut buf = SCRATCH
        .with(|s| s.borrow_mut().pop())
        .unwrap_or_default();
    buf.clear();
    buf.resize(len, 0.0);
    let r = f(&mut buf);
    SCRATCH.with(|s| s.borrow_mut().push(buf));
    r
}

/// Dot product with four independent 8-lane accumulators combined in a
/// fixed order — deterministic, and dispatched to the SIMD microkernel
/// layer ([`crate::mk`]), whose scalar and AVX2 instantiations are bitwise
/// identical. Extent mismatch truncates to the shorter slice.
#[inline]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    crate::mk::dot(a, b)
}

/// `dst[i] += s * src[i]` (fused multiply-add) over the overlap of the two
/// slices, dispatched to [`crate::mk`].
#[inline]
pub fn axpy(dst: &mut [f32], s: f32, src: &[f32]) {
    crate::mk::axpy(dst, s, src)
}

/// `dst[i] *= s` (the online-softmax accumulator rescale), dispatched to
/// [`crate::mk`].
#[inline]
pub fn scale(dst: &mut [f32], s: f32) {
    crate::mk::scale(dst, s)
}

/// `dst[i] /= d` (the online-softmax finalize divide — a true IEEE
/// division in both backends), dispatched to [`crate::mk`].
#[inline]
pub fn dscale(dst: &mut [f32], d: f32) {
    crate::mk::dscale(dst, d)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn threshold_round_trip() {
        let prev = set_par_threshold(123);
        assert_eq!(par_threshold(), 123);
        assert!(parallel_worthwhile(2, 123));
        assert!(!parallel_worthwhile(2, 122));
        assert!(!parallel_worthwhile(1, usize::MAX));
        set_par_threshold(prev);
    }

    #[test]
    fn spawn_task_runs_exactly_once_inline_or_async() {
        let (tx, rx) = std::sync::mpsc::channel();
        let _went_async = spawn_task(Box::new(move || {
            tx.send(42u32).expect("receiver alive");
        }));
        assert_eq!(
            rx.recv_timeout(std::time::Duration::from_secs(10)),
            Ok(42)
        );
        assert!(rx.try_recv().is_err(), "task ran exactly once");
    }

    #[test]
    fn run_rows_visits_every_row_once() {
        let mut data = vec![0.0f32; 35];
        run_rows(&mut data, 5, usize::MAX, |i, row| {
            for v in row.iter_mut() {
                *v += 1.0 + i as f32;
            }
        });
        for (i, v) in data.iter().enumerate() {
            assert_eq!(*v, 1.0 + (i / 5) as f32);
        }
    }

    #[test]
    fn scratch_is_zeroed_and_reentrant() {
        with_scratch(8, |a| {
            assert!(a.iter().all(|&v| v == 0.0));
            a[0] = 7.0;
            with_scratch(4, |b| {
                assert!(b.iter().all(|&v| v == 0.0));
            });
            assert_eq!(a[0], 7.0);
        });
        // reused buffer must be re-zeroed
        with_scratch(8, |a| assert!(a.iter().all(|&v| v == 0.0)));
    }

    #[test]
    fn dot_matches_naive_and_axpy_accumulates() {
        let a: Vec<f32> = (0..13).map(|i| i as f32 * 0.5).collect();
        let b: Vec<f32> = (0..13).map(|i| 1.0 - i as f32 * 0.25).collect();
        let naive: f32 = a.iter().zip(&b).map(|(&x, &y)| x * y).sum();
        assert!((dot(&a, &b) - naive).abs() < 1e-4);
        let mut dst = vec![1.0f32; 4];
        axpy(&mut dst, 2.0, &[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(dst, vec![3.0, 5.0, 7.0, 9.0]);
    }
}
