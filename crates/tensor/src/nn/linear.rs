use crate::{init, ops, Result, Tensor};
use rand::rngs::SmallRng;

/// A dense layer `y = x @ W + b` with `W: [in_features, out_features]`.
///
/// Gradients accumulate into `dweight`/`dbias` across calls to
/// [`Linear::backward`], which is exactly what FPDT's chunked backward needs:
/// each sequence chunk contributes a partial weight gradient.
///
/// # Example
///
/// ```
/// use fpdt_tensor::{init, nn::Linear, Tensor};
/// # fn main() -> Result<(), fpdt_tensor::TensorError> {
/// let mut rng = init::seeded_rng(0);
/// let layer = Linear::new(4, 2, true, &mut rng);
/// let x = Tensor::ones(&[3, 4]);
/// let y = layer.forward(&x)?;
/// assert_eq!(y.shape(), &[3, 2]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Linear {
    /// Weight matrix `[in_features, out_features]`.
    pub weight: Tensor,
    /// Optional bias `[out_features]`.
    pub bias: Option<Tensor>,
    /// Accumulated weight gradient.
    pub dweight: Tensor,
    /// Accumulated bias gradient.
    pub dbias: Option<Tensor>,
}

impl Linear {
    /// Creates a layer with Xavier-initialized weights and zero bias.
    pub fn new(in_features: usize, out_features: usize, bias: bool, rng: &mut SmallRng) -> Self {
        Linear {
            weight: init::xavier(rng, in_features, out_features),
            bias: bias.then(|| Tensor::zeros(&[out_features])),
            dweight: Tensor::zeros(&[in_features, out_features]),
            dbias: bias.then(|| Tensor::zeros(&[out_features])),
        }
    }

    /// Input feature count.
    pub fn in_features(&self) -> usize {
        self.weight.shape()[0]
    }

    /// Output feature count.
    pub fn out_features(&self) -> usize {
        self.weight.shape()[1]
    }

    /// Number of scalar parameters.
    pub fn param_count(&self) -> usize {
        self.weight.numel() + self.bias.as_ref().map_or(0, Tensor::numel)
    }

    /// Computes `x @ W (+ b)` for `x: [..., in_features]`.
    ///
    /// # Errors
    ///
    /// Propagates shape errors from the underlying matmul.
    pub fn forward(&self, x: &Tensor) -> Result<Tensor> {
        let y = ops::matmul(x, &self.weight)?;
        match &self.bias {
            Some(b) => ops::add_bias(&y, b),
            None => Ok(y),
        }
    }

    /// Accumulates parameter gradients and returns `dx`.
    ///
    /// `x` must be the same activation passed to the matching
    /// [`Linear::forward`] call (FPDT re-materializes it per chunk).
    ///
    /// # Errors
    ///
    /// Propagates shape errors from the underlying matmul.
    pub fn backward(&mut self, x: &Tensor, dy: &Tensor) -> Result<Tensor> {
        let (dx, dw) = ops::matmul_bwd(x, &self.weight, dy)?;
        self.dweight.add_assign(&dw)?;
        let out = self.out_features();
        if let Some(db) = &mut self.dbias {
            let grad = ops::add_bias_bwd(dy, out);
            db.add_assign(&grad)?;
        }
        Ok(dx)
    }

    /// Clears accumulated gradients.
    pub fn zero_grad(&mut self) {
        self.dweight.zero_();
        if let Some(db) = &mut self.dbias {
            db.zero_();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_shapes_and_bias() {
        let mut rng = init::seeded_rng(50);
        let mut layer = Linear::new(3, 2, true, &mut rng);
        layer.weight = Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0, 1.0, 1.0], &[3, 2]).unwrap();
        layer.bias = Some(Tensor::from_vec(vec![0.5, -0.5], &[2]).unwrap());
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[1, 3]).unwrap();
        let y = layer.forward(&x).unwrap();
        // y0 = 1*1 + 2*0 + 3*1 + 0.5 = 4.5 ; y1 = 0 + 2 + 3 - 0.5 = 4.5
        assert_eq!(y.data(), &[4.5, 4.5]);
    }

    #[test]
    fn backward_accumulates_over_chunks() {
        let mut rng = init::seeded_rng(51);
        let x = init::randn(&mut rng, &[4, 3], 1.0);
        let dy = init::randn(&mut rng, &[4, 2], 1.0);

        let mut whole = Linear::new(3, 2, true, &mut rng);
        let mut chunked = whole.clone();

        whole.backward(&x, &dy).unwrap();
        for c in 0..2 {
            let xc = x.narrow(0, c * 2, 2).unwrap();
            let dyc = dy.narrow(0, c * 2, 2).unwrap();
            chunked.backward(&xc, &dyc).unwrap();
        }
        assert!(chunked.dweight.allclose(&whole.dweight, 1e-5, 1e-6));
        assert!(chunked.dbias.as_ref().unwrap().allclose(
            whole.dbias.as_ref().unwrap(),
            1e-5,
            1e-6
        ));
    }

    #[test]
    fn zero_grad_resets() {
        let mut rng = init::seeded_rng(52);
        let mut layer = Linear::new(3, 2, true, &mut rng);
        let x = Tensor::ones(&[2, 3]);
        let dy = Tensor::ones(&[2, 2]);
        layer.backward(&x, &dy).unwrap();
        assert!(layer.dweight.max_abs() > 0.0);
        layer.zero_grad();
        assert_eq!(layer.dweight.max_abs(), 0.0);
        assert_eq!(layer.dbias.as_ref().unwrap().max_abs(), 0.0);
    }

    #[test]
    fn param_count() {
        let mut rng = init::seeded_rng(53);
        assert_eq!(Linear::new(3, 2, true, &mut rng).param_count(), 8);
        assert_eq!(Linear::new(3, 2, false, &mut rng).param_count(), 6);
    }
}
