use std::collections::HashMap;

/// Hyper-parameters for [`AdamW`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdamWConfig {
    /// Learning rate.
    pub lr: f32,
    /// First-moment decay.
    pub beta1: f32,
    /// Second-moment decay.
    pub beta2: f32,
    /// Denominator fuzz.
    pub eps: f32,
    /// Decoupled weight decay.
    pub weight_decay: f32,
}

impl Default for AdamWConfig {
    fn default() -> Self {
        AdamWConfig {
            lr: 1e-3,
            beta1: 0.9,
            beta2: 0.95,
            eps: 1e-8,
            weight_decay: 0.0,
        }
    }
}

/// Decoupled-weight-decay Adam operating on raw parameter slices.
///
/// The optimizer keys its `(m, v)` moments by an integer *parameter id* the
/// caller assigns. This makes ZeRO-style sharding trivial: a rank that owns
/// only elements `lo..hi` of a flat parameter registers the id once and
/// passes just its shard — the optimizer never sees (or allocates state
/// for) the rest, which is exactly the paper's "optimizer states are
/// partitioned" memory saving, realized for real in the runtime.
///
/// # Example
///
/// ```
/// use fpdt_tensor::nn::{AdamW, AdamWConfig};
///
/// let mut opt = AdamW::new(AdamWConfig { lr: 0.1, ..Default::default() });
/// let mut w = vec![1.0_f32, -1.0];
/// let g = vec![1.0_f32, -1.0];
/// for _ in 0..10 {
///     opt.begin_step();
///     opt.update(0, &mut w, &g);
/// }
/// assert!(w[0] < 1.0 && w[1] > -1.0);
/// ```
#[derive(Debug, Clone)]
pub struct AdamW {
    cfg: AdamWConfig,
    step: u64,
    moments: HashMap<u64, (Vec<f32>, Vec<f32>)>,
}

/// One exported moment pair: `(param id, m, v)`.
pub type MomentEntry = (u64, Vec<f32>, Vec<f32>);

impl AdamW {
    /// Creates an optimizer with the given hyper-parameters.
    pub fn new(cfg: AdamWConfig) -> Self {
        AdamW {
            cfg,
            step: 0,
            moments: HashMap::new(),
        }
    }

    /// Current hyper-parameters.
    pub fn config(&self) -> AdamWConfig {
        self.cfg
    }

    /// Sets the learning rate (e.g. for warmup schedules).
    pub fn set_lr(&mut self, lr: f32) {
        self.cfg.lr = lr;
    }

    /// Number of optimizer steps taken so far.
    pub fn steps(&self) -> u64 {
        self.step
    }

    /// Bytes of optimizer state currently held (f32 moments).
    pub fn state_bytes(&self) -> usize {
        self.moments
            .values()
            .map(|(m, v)| (m.len() + v.len()) * 4)
            .sum()
    }

    /// Advances the shared step counter. Call once per training step,
    /// before the per-parameter [`AdamW::update`] calls.
    pub fn begin_step(&mut self) {
        self.step += 1;
    }

    /// Applies one AdamW update to `param` given `grad`, using the moment
    /// buffers registered under `param_id`.
    ///
    /// # Panics
    ///
    /// Panics if `param` and `grad` lengths differ, or if `param_id` was
    /// previously used with a different length (both indicate caller bugs,
    /// not recoverable conditions).
    pub fn update(&mut self, param_id: u64, param: &mut [f32], grad: &[f32]) {
        assert_eq!(param.len(), grad.len(), "param/grad length mismatch");
        assert!(self.step > 0, "call begin_step before update");
        let (m, v) = self
            .moments
            .entry(param_id)
            .or_insert_with(|| (vec![0.0; param.len()], vec![0.0; param.len()]));
        assert_eq!(
            m.len(),
            param.len(),
            "param {param_id} re-registered with new length"
        );
        let AdamWConfig {
            lr,
            beta1,
            beta2,
            eps,
            weight_decay,
        } = self.cfg;
        let bc1 = 1.0 - beta1.powi(self.step as i32);
        let bc2 = 1.0 - beta2.powi(self.step as i32);
        for i in 0..param.len() {
            m[i] = beta1 * m[i] + (1.0 - beta1) * grad[i];
            v[i] = beta2 * v[i] + (1.0 - beta2) * grad[i] * grad[i];
            let mhat = m[i] / bc1;
            let vhat = v[i] / bc2;
            param[i] -= lr * (mhat / (vhat.sqrt() + eps) + weight_decay * param[i]);
        }
    }

    /// Exports the full optimizer state — the step counter plus every
    /// registered `(id, m, v)` moment pair, sorted by id so the layout is
    /// deterministic regardless of `HashMap` iteration order.
    pub fn export_state(&self) -> (u64, Vec<MomentEntry>) {
        let mut entries: Vec<_> = self
            .moments
            .iter()
            .map(|(&id, (m, v))| (id, m.clone(), v.clone()))
            .collect();
        entries.sort_by_key(|e| e.0);
        (self.step, entries)
    }

    /// Replaces the optimizer state with one captured by
    /// [`AdamW::export_state`]. Hyper-parameters are untouched — they come
    /// from the training config, not the checkpoint.
    pub fn import_state(&mut self, step: u64, entries: Vec<MomentEntry>) {
        self.step = step;
        self.moments.clear();
        for (id, m, v) in entries {
            assert_eq!(m.len(), v.len(), "moment buffers for {id} differ in length");
            self.moments.insert(id, (m, v));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn converges_on_quadratic() {
        // minimize f(w) = 0.5 * (w - 3)^2
        let mut opt = AdamW::new(AdamWConfig {
            lr: 0.1,
            ..Default::default()
        });
        let mut w = vec![0.0f32];
        for _ in 0..500 {
            let g = vec![w[0] - 3.0];
            opt.begin_step();
            opt.update(0, &mut w, &g);
        }
        assert!((w[0] - 3.0).abs() < 1e-2, "w={}", w[0]);
    }

    #[test]
    fn weight_decay_shrinks_params() {
        let mut opt = AdamW::new(AdamWConfig {
            lr: 0.01,
            weight_decay: 0.5,
            ..Default::default()
        });
        let mut w = vec![5.0f32];
        for _ in 0..100 {
            opt.begin_step();
            opt.update(0, &mut w, &[0.0]);
        }
        assert!(w[0] < 5.0);
    }

    #[test]
    fn sharded_update_matches_full() {
        // Two optimizers each owning half the parameter vector must match a
        // single optimizer owning the whole thing.
        let cfg = AdamWConfig {
            lr: 0.05,
            ..Default::default()
        };
        let mut full = AdamW::new(cfg);
        let mut lo = AdamW::new(cfg);
        let mut hi = AdamW::new(cfg);
        let mut w_full = vec![1.0f32, 2.0, 3.0, 4.0];
        let mut w_shard = w_full.clone();
        for step in 0..20 {
            let g: Vec<f32> = w_full
                .iter()
                .map(|&x| x * 0.5 + step as f32 * 0.01)
                .collect();
            full.begin_step();
            full.update(0, &mut w_full, &g);
            let gs: Vec<f32> = w_shard
                .iter()
                .map(|&x| x * 0.5 + step as f32 * 0.01)
                .collect();
            lo.begin_step();
            lo.update(0, &mut w_shard[..2], &gs[..2]);
            hi.begin_step();
            hi.update(0, &mut w_shard[2..], &gs[2..]);
        }
        for (a, b) in w_full.iter().zip(&w_shard) {
            assert!((a - b).abs() < 1e-6);
        }
        // State is split: each shard holds half the bytes of the full state.
        assert_eq!(lo.state_bytes() + hi.state_bytes(), full.state_bytes());
    }

    #[test]
    fn state_bytes_accounting() {
        let mut opt = AdamW::new(AdamWConfig::default());
        opt.begin_step();
        let mut w = vec![0.0f32; 10];
        opt.update(0, &mut w, &[0.0; 10]);
        assert_eq!(opt.state_bytes(), 10 * 2 * 4);
    }

    #[test]
    fn exported_state_resumes_bitwise() {
        // Optimize for k steps, export, keep going in both the original and
        // a resumed copy: trajectories must agree bit for bit.
        let cfg = AdamWConfig {
            lr: 0.05,
            ..Default::default()
        };
        let mut opt = AdamW::new(cfg);
        let mut w = vec![1.0f32, -2.0, 0.5];
        for _ in 0..7 {
            let g: Vec<f32> = w.iter().map(|&x| x * 0.3 - 0.1).collect();
            opt.begin_step();
            opt.update(3, &mut w, &g);
        }
        let (step, entries) = opt.export_state();
        assert_eq!(step, 7);
        assert_eq!(entries.len(), 1);
        let mut resumed = AdamW::new(cfg);
        resumed.import_state(step, entries);
        let mut w2 = w.clone();
        for _ in 0..7 {
            let g: Vec<f32> = w.iter().map(|&x| x * 0.3 - 0.1).collect();
            opt.begin_step();
            opt.update(3, &mut w, &g);
            let g2: Vec<f32> = w2.iter().map(|&x| x * 0.3 - 0.1).collect();
            resumed.begin_step();
            resumed.update(3, &mut w2, &g2);
        }
        assert_eq!(w, w2, "resumed trajectory must match bitwise");
        assert_eq!(opt.steps(), resumed.steps());
    }

    #[test]
    fn export_orders_ids() {
        let mut opt = AdamW::new(AdamWConfig::default());
        opt.begin_step();
        for id in [9u64, 2, 5, 0] {
            let mut w = vec![0.0f32; 2];
            opt.update(id, &mut w, &[1.0; 2]);
        }
        let (_, entries) = opt.export_state();
        let ids: Vec<u64> = entries.iter().map(|e| e.0).collect();
        assert_eq!(ids, vec![0, 2, 5, 9]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        let mut opt = AdamW::new(AdamWConfig::default());
        opt.begin_step();
        let mut w = vec![0.0f32; 2];
        opt.update(0, &mut w, &[0.0]);
    }
}
