//! Stateful neural-network layers and an AdamW optimizer.
//!
//! Layers own their parameters and gradient accumulators; activations flow
//! through as values together with explicit backward contexts, so the FPDT
//! runtime can re-run forward chunks (activation checkpointing) and drive
//! backward in its own chunk order.

mod adamw;
mod embedding;
mod layernorm;
mod linear;
mod rmsnorm;

pub use adamw::{AdamW, AdamWConfig};
pub use embedding::Embedding;
pub use layernorm::LayerNorm;
pub use linear::Linear;
pub use rmsnorm::RmsNorm;
