use crate::ops::{self, LayerNormCtx};
use crate::{Result, Tensor};

/// A layer-norm layer owning its `gamma`/`beta` parameters and gradients.
#[derive(Debug, Clone)]
pub struct LayerNorm {
    /// Scale parameter `[dim]`.
    pub gamma: Tensor,
    /// Shift parameter `[dim]`.
    pub beta: Tensor,
    /// Accumulated gradient of `gamma`.
    pub dgamma: Tensor,
    /// Accumulated gradient of `beta`.
    pub dbeta: Tensor,
    eps: f32,
}

impl LayerNorm {
    /// Creates a layer norm over the last axis of extent `dim`
    /// (`gamma = 1`, `beta = 0`).
    pub fn new(dim: usize, eps: f32) -> Self {
        LayerNorm {
            gamma: Tensor::ones(&[dim]),
            beta: Tensor::zeros(&[dim]),
            dgamma: Tensor::zeros(&[dim]),
            dbeta: Tensor::zeros(&[dim]),
            eps,
        }
    }

    /// Normalized dimension.
    pub fn dim(&self) -> usize {
        self.gamma.numel()
    }

    /// Number of scalar parameters.
    pub fn param_count(&self) -> usize {
        2 * self.dim()
    }

    /// Normalizes `x` over its last axis, returning output plus the
    /// backward context.
    ///
    /// # Errors
    ///
    /// Propagates shape errors from [`ops::layernorm`].
    pub fn forward(&self, x: &Tensor) -> Result<(Tensor, LayerNormCtx)> {
        ops::layernorm(x, &self.gamma, &self.beta, self.eps)
    }

    /// Accumulates parameter gradients and returns `dx`.
    ///
    /// # Errors
    ///
    /// Propagates shape errors from [`ops::layernorm_bwd`].
    pub fn backward(&mut self, x: &Tensor, ctx: &LayerNormCtx, dy: &Tensor) -> Result<Tensor> {
        let (dx, dg, db) = ops::layernorm_bwd(x, &self.gamma, ctx, dy)?;
        self.dgamma.add_assign(&dg)?;
        self.dbeta.add_assign(&db)?;
        Ok(dx)
    }

    /// Clears accumulated gradients.
    pub fn zero_grad(&mut self) {
        self.dgamma.zero_();
        self.dbeta.zero_();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init;

    #[test]
    fn forward_backward_round_trip() {
        let mut rng = init::seeded_rng(70);
        let mut ln = LayerNorm::new(8, 1e-5);
        let x = init::randn(&mut rng, &[4, 8], 2.0);
        let (y, ctx) = ln.forward(&x).unwrap();
        assert_eq!(y.shape(), x.shape());
        let dy = Tensor::ones(&[4, 8]);
        let dx = ln.backward(&x, &ctx, &dy).unwrap();
        assert_eq!(dx.shape(), x.shape());
        // dbeta is the column-sum of dy
        assert!(ln.dbeta.allclose(&Tensor::full(&[8], 4.0), 1e-5, 1e-6));
        ln.zero_grad();
        assert_eq!(ln.dgamma.max_abs(), 0.0);
    }

    #[test]
    fn chunked_backward_accumulates() {
        let mut rng = init::seeded_rng(71);
        let x = init::randn(&mut rng, &[4, 8], 1.0);
        let dy = init::randn(&mut rng, &[4, 8], 1.0);
        let mut whole = LayerNorm::new(8, 1e-5);
        let mut chunked = LayerNorm::new(8, 1e-5);
        let (_, ctx) = whole.forward(&x).unwrap();
        whole.backward(&x, &ctx, &dy).unwrap();
        for c in 0..2 {
            let xc = x.narrow(0, c * 2, 2).unwrap();
            let dyc = dy.narrow(0, c * 2, 2).unwrap();
            let (_, ctxc) = chunked.forward(&xc).unwrap();
            chunked.backward(&xc, &ctxc, &dyc).unwrap();
        }
        assert!(chunked.dgamma.allclose(&whole.dgamma, 1e-4, 1e-5));
        assert!(chunked.dbeta.allclose(&whole.dbeta, 1e-4, 1e-5));
    }

    #[test]
    fn param_count() {
        assert_eq!(LayerNorm::new(16, 1e-5).param_count(), 32);
    }
}
